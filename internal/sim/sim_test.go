package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func TestRunsInTimeOrder(t *testing.T) {
	e := New()
	var got []int
	e.At(30, "c", func() { got = append(got, 3) })
	e.At(10, "a", func() { got = append(got, 1) })
	e.At(20, "b", func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %d", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
}

func TestSameTickFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, "x", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick order = %v", got)
		}
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	e := New()
	var trace []simtime.Time
	e.At(1, "outer", func() {
		trace = append(trace, e.Now())
		e.After(4, "inner", func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 5 {
		t.Errorf("trace = %v", trace)
	}
}

func TestScheduleAtNowRunsThisTick(t *testing.T) {
	e := New()
	ran := false
	e.At(3, "a", func() {
		e.At(3, "b", func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Error("same-time follow-up event did not run")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, "a", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, "late", func() {})
	})
	e.Run()
}

func TestAfterNegativePanics(t *testing.T) {
	e := New()
	e.At(10, "a", func() {
		defer func() {
			if recover() == nil {
				t.Error("negative After did not panic")
			}
		}()
		e.After(-1, "neg", func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	h := e.At(5, "x", func() { ran = true })
	if !h.Cancel() {
		t.Error("first Cancel returned false")
	}
	if h.Cancel() {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Fired() != 0 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New()
	h := e.At(1, "x", func() {})
	e.Run()
	if h.Cancel() {
		t.Error("Cancel after fire returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []simtime.Time
	for _, at := range []simtime.Time{5, 10, 15} {
		at := at
		e.At(at, "x", func() { got = append(got, at) })
	}
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Errorf("Now = %d, want 10", e.Now())
	}
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("events before 10: %v (event at 10 must remain pending)", got)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(got) != 3 {
		t.Errorf("after Run, events = %v", got)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("Now = %d", e.Now())
	}
	// RunUntil never moves the clock backwards.
	e.RunUntil(50)
	if e.Now() != 100 {
		t.Errorf("clock moved backwards to %d", e.Now())
	}
}

func TestPendingSkipsCancelled(t *testing.T) {
	e := New()
	e.At(1, "a", func() {})
	h := e.At(2, "b", func() {})
	h.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestQuickEventTimesNonDecreasing(t *testing.T) {
	// However events are scheduled (including from inside events), observed
	// firing times never decrease and every uncancelled event fires.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		e := New()
		var last simtime.Time = -1
		fired := 0
		want := 0
		n := r.IntBetween(1, 30)
		for i := 0; i < n; i++ {
			at := simtime.Time(r.Intn(100))
			want++
			e.At(at, "ev", func() {
				if e.Now() < last {
					fired = -1 << 30
					return
				}
				last = e.Now()
				fired++
				if r.Bool(0.3) {
					want++
					e.After(simtime.Time(r.Intn(10)), "child", func() {
						if e.Now() < last {
							fired = -1 << 30
							return
						}
						last = e.Now()
						fired++
					})
				}
			})
		}
		e.Run()
		return fired == want && uint64(want) == e.Fired()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
