// Package sim is a deterministic discrete-event simulation engine: a clock
// in integer model ticks and a priority queue of callbacks. Events at the
// same tick fire in scheduling order (FIFO), so a run is a pure function of
// its inputs — a requirement for the reproducible experiment harness.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/simtime"
)

// Engine is the simulation clock and event queue. The zero value is ready
// to use at time 0.
type Engine struct {
	now    simtime.Time
	queue  eventHeap
	seq    uint64
	events uint64 // fired so far
}

// Handle identifies a scheduled event and allows cancelling it.
type Handle struct{ ev *event }

type event struct {
	at        simtime.Time
	seq       uint64
	name      string
	fn        func()
	cancelled bool
}

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current model time.
func (e *Engine) Now() simtime.Time { return e.now }

// Fired returns how many events have executed, a cheap progress metric.
func (e *Engine) Fired() uint64 { return e.events }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at model time t. Scheduling strictly in the past
// panics: it always indicates a logic error in the caller. Scheduling at
// the current time is allowed and runs after already-queued events of this
// tick.
func (e *Engine) At(t simtime.Time, name string, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %d, now is %d", name, t, e.now))
	}
	ev := &event{at: t, seq: e.seq, name: name, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d ticks from now. Negative d panics.
func (e *Engine) After(d simtime.Time, name string, fn func()) Handle {
	return e.At(e.now+d, name, fn)
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op; it reports whether the cancellation
// took effect.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.cancelled || h.ev.fn == nil {
		return false
	}
	h.ev.cancelled = true
	return true
}

// Step fires the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil // mark fired
		e.events++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains and returns the final time.
func (e *Engine) Run() simtime.Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires every event scheduled strictly before t, then advances the
// clock to t (events exactly at t remain pending).
func (e *Engine) RunUntil(t simtime.Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at >= t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) peek() *event {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return ev
	}
	return nil
}

// eventHeap orders by (time, sequence): stable FIFO within a tick.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
