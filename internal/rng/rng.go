// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// The simulator must produce byte-identical experiment output for a given
// seed regardless of Go version, so we implement splitmix64 (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014) instead of
// depending on math/rand's unspecified stream. Splitting lets independent
// subsystems (workload generation, per-job randomness, environment events)
// draw from decorrelated streams without sharing mutable state.
package rng

import "math"

// Source is a deterministic splitmix64 generator. The zero value is a valid
// generator seeded with 0; prefer New for explicit seeding.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent generator from the current state, keyed by
// label so that identical call sites with different labels produce
// decorrelated streams. The parent stream advances once.
func (s *Source) Split(label uint64) *Source {
	return &Source{state: s.Uint64() ^ (label * 0x9e3779b97f4a7c15)}
}

// SplitN pre-splits n child streams, advancing the parent n times. It is
// exactly equivalent to calling Split(0), Split(1), …, Split(n-1) in
// order, which is how the sequential experiment loops derive their per-unit
// streams — so a caller that pre-splits before fanning units out across
// goroutines hands every unit the byte-identical stream it would have seen
// sequentially, regardless of goroutine scheduling.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split(uint64(i))
	}
	return out
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded draws.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n with non-positive n")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int64(hi)
		}
	}
}

// IntBetween returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (s *Source) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("rng: IntBetween with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Int64Between returns a uniform int64 in [lo, hi] inclusive.
// It panics if hi < lo.
func (s *Source) Int64Between(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Int64Between with hi < lo")
	}
	return lo + s.Int64n(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Between returns a uniform float64 in [lo, hi).
// It panics if hi < lo.
func (s *Source) Float64Between(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Float64Between with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exp returns an exponentially distributed value with the given mean,
// suitable for Poisson inter-arrival times. Mean must be positive.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	// Draw u in (0,1] so that log(u) is finite.
	u := 1.0 - s.Float64()
	return -mean * math.Log(u)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}
