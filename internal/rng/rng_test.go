package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitNMatchesSequentialSplits(t *testing.T) {
	// SplitN must reproduce the lazy Split(0..n-1) loop exactly: same child
	// streams, same final parent state.
	a, b := New(99), New(99)
	pre := a.SplitN(16)
	for i := 0; i < 16; i++ {
		lazy := b.Split(uint64(i))
		for d := 0; d < 50; d++ {
			if got, want := pre[i].Uint64(), lazy.Uint64(); got != want {
				t.Fatalf("child %d draw %d: SplitN %d != Split %d", i, d, got, want)
			}
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("parent streams diverged after SplitN vs sequential splits")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	parent2 := New(7)
	c2 := parent2.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams with different labels collided %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(99)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared style sanity check: 10 buckets, 100k draws, each bucket
	// should be within 5% of expectation.
	s := New(12345)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for b, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d: %d draws, want ~%d", b, c, want)
		}
	}
}

func TestIntBetweenInclusive(t *testing.T) {
	s := New(5)
	sawLo, sawHi := false, false
	for i := 0; i < 2000; i++ {
		v := s.IntBetween(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntBetween(3,6) = %d", v)
		}
		sawLo = sawLo || v == 3
		sawHi = sawHi || v == 6
	}
	if !sawLo || !sawHi {
		t.Errorf("bounds never drawn: lo=%v hi=%v", sawLo, sawHi)
	}
}

func TestIntBetweenDegenerate(t *testing.T) {
	if v := New(1).IntBetween(5, 5); v != 5 {
		t.Errorf("IntBetween(5,5) = %d", v)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(77)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64BetweenRange(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		v := s.Float64Between(0.33, 0.66)
		if v < 0.33 || v >= 0.66 {
			t.Fatalf("Float64Between = %v", v)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	s := New(3)
	for i := 0; i < 50; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(31)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := s.Exp(10)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("Exp(10) sample mean = %v", mean)
	}
}

func TestQuickInt64nBounds(t *testing.T) {
	s := New(1234)
	f := func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := s.Int64n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64, k uint8) bool {
		a, b := New(seed), New(seed)
		n := int(k%32) + 1
		for i := 0; i < n; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return a.Float64() == b.Float64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
