// Package atomicfile writes files atomically and durably: content goes to
// a temporary file in the target directory, is fsynced, renamed over the
// destination, and the directory entry is fsynced too. A crash at any
// point leaves either the old file or the complete new one — never a
// truncated hybrid. The drain snapshot and the journal's compaction
// snapshots both ride on this helper.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with whatever write produces. The
// temporary file is created next to path (same filesystem, so the rename
// is atomic) and removed on any failure.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: rename: %w", err)
	}
	if err = SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// SyncDir fsyncs a directory so entry operations (create, rename, remove)
// performed in it survive a power loss. Filesystems that refuse to fsync
// directories are tolerated: the error is swallowed because the data file
// itself was already synced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems (and some CI sandboxes) reject directory fsync;
		// the rename is still atomic, only its durability window widens.
		return nil
	}
	return nil
}
