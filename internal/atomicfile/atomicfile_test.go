package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf(`{"gen":%d}`, i)
		if err := WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, want)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("generation %d: %q", i, got)
		}
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory not clean: %v", entries)
	}
}

func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "old")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half-writ")
		return fmt.Errorf("writer exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("error not surfaced: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file leaked: %v", entries)
	}
}
