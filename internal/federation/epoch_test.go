package federation

import (
	"context"
	"testing"
	"time"

	"repro/internal/metasched"
	"repro/internal/service"
)

// TestEpochGatedResurrection pins the tombstone-epoch state machine on one
// shard: a revoked key refuses handoff replays at or below the tombstone's
// epoch, resurrects for a strictly higher one, and a stale revoke cannot
// yank the resurrected placement.
func TestEpochGatedResurrection(t *testing.T) {
	svc, err := service.New(service.Config{Env: testEnv(), Sched: metasched.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	job := testJob("epoch-job", 60)
	handoff := func(epoch int) *HandoffResult {
		return ApplyHandoff(svc, &Handoff{Key: job.Name, Origin: "test", Job: job, Strategy: "S1", Epoch: epoch})
	}
	revoke := func(epoch int) *RevokeResult {
		return ApplyRevoke(svc, &RevokeRequest{Key: job.Name, Origin: "test", Reason: "test", Epoch: epoch})
	}

	// First placement at epoch 0, then a confirmed revocation at epoch 0.
	if res := handoff(0); !res.Accepted {
		t.Fatalf("first handoff = %+v", res)
	}
	if res := revoke(0); res.Outcome != RevokeOutcomeRevoked {
		t.Fatalf("revoke = %+v", res)
	}

	// A stale replay of the revoked binding (same epoch) is refused.
	if res := handoff(0); res.Accepted || !res.Duplicate || res.State != service.StateRevoked {
		t.Fatalf("stale replay = %+v", res)
	}

	// A deliberate re-handoff at a higher epoch resurrects the tombstone.
	if res := handoff(1); !res.Accepted || res.State != service.StateQueued {
		t.Fatalf("resurrecting handoff = %+v", res)
	}
	if rec, _ := svc.Job(job.Name); rec.Epoch != 1 {
		t.Fatalf("placement epoch = %d, want 1", rec.Epoch)
	}

	// A stale revoke (duplicated RPC from the epoch-0 round) must NOT yank
	// the epoch-1 placement.
	if res := revoke(0); res.Outcome != RevokeOutcomeInFlight {
		t.Fatalf("stale revoke = %+v", res)
	}
	if rec, _ := svc.Job(job.Name); rec.State != service.StateQueued {
		t.Fatalf("record after stale revoke = %+v", rec)
	}

	// A current-epoch revoke takes it back and raises the tombstone.
	if res := revoke(1); res.Outcome != RevokeOutcomeRevoked {
		t.Fatalf("current revoke = %+v", res)
	}
	if res := handoff(1); res.Accepted {
		t.Fatalf("replay at tombstone epoch accepted: %+v", res)
	}
	if res := handoff(2); !res.Accepted {
		t.Fatalf("epoch-2 resurrection = %+v", res)
	}
}

// TestRevokeRaisesTombstoneEpoch pins the re-revocation path: revoking an
// existing tombstone at a higher epoch raises the tombstone, so replays of
// the binding that was just revoked stay refused.
func TestRevokeRaisesTombstoneEpoch(t *testing.T) {
	svc, err := service.New(service.Config{Env: testEnv(), Sched: metasched.Config{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Revoke-before-arrival plants a tombstone at epoch 0; the job was
	// meanwhile rebound here at epoch 2 and revoked again — the second
	// revoke must raise the tombstone to 2.
	if res := ApplyRevoke(svc, &RevokeRequest{Key: "k", Origin: "test", Epoch: 0}); res.Outcome != RevokeOutcomeRevoked {
		t.Fatalf("tombstone plant = %+v", res)
	}
	if res := ApplyRevoke(svc, &RevokeRequest{Key: "k", Origin: "test", Epoch: 2}); res.Outcome != RevokeOutcomeRevoked {
		t.Fatalf("tombstone raise = %+v", res)
	}
	if rec, _ := svc.Job("k"); rec.Epoch != 2 {
		t.Fatalf("tombstone epoch = %d, want 2", rec.Epoch)
	}
	// The stale epoch-2 frame of the revoked binding is refused; epoch 3
	// resurrects.
	job := testJob("k", 60)
	if res := ApplyHandoff(svc, &Handoff{Key: "k", Origin: "test", Job: job, Strategy: "S1", Epoch: 2}); res.Accepted {
		t.Fatalf("stale frame accepted over raised tombstone: %+v", res)
	}
	if res := ApplyHandoff(svc, &Handoff{Key: "k", Origin: "test", Job: job, Strategy: "S1", Epoch: 3}); !res.Accepted {
		t.Fatalf("epoch-3 resurrection = %+v", res)
	}
}

// TestBanSaturationClearsAndResurrects drives the router end of the final
// recovery rung: when every shard holds a tombstone for a job, the router
// clears its bans and re-walks the ring, and the epoch mechanism lets the
// job resurrect and complete instead of wedging forever.
func TestBanSaturationClearsAndResurrects(t *testing.T) {
	var rt *Router
	shards := newFedShards(t, 2, &rt)
	for _, s := range shards {
		s.svc.Start()
	}
	f0 := &flakyShard{LocalShard: shards[0].local}
	f1 := &flakyShard{LocalShard: shards[1].local}
	f0.setBroken(true)
	f1.setBroken(true)
	r, err := New(Config{
		Shards:            []ShardClient{f0, f1},
		Seed:              13,
		RetryBudget:       2,
		RetryBase:         5 * time.Millisecond,
		HeartbeatInterval: time.Hour, // isolate from the death sweep
	})
	if err != nil {
		t.Fatal(err)
	}
	rt = r
	r.Start()
	defer r.Close()

	if _, err := r.Submit(testJob("saturate-me", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	// Both shards refuse handoffs, so both bindings exhaust their budgets
	// and both revokes plant tombstones: the banned set saturates.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := r.Metrics(); m.Reallocated >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bans never saturated: %+v", r.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Heal the fleet: the next dispatch clears the bans and resurrects the
	// job on some shard.
	f0.setBroken(false)
	f1.setBroken(false)
	waitQuiesced(t, r, 10*time.Second)

	view, _ := r.Job("saturate-me")
	if view.State != service.StateCompleted {
		t.Fatalf("job = %+v, want completed", view)
	}
	if view.Epoch < 2 {
		t.Fatalf("job completed at epoch %d, want >= 2 (two revocation rounds)", view.Epoch)
	}
	// Exactly-once: one shard completed it, the other holds only a
	// refused tombstone.
	executions := 0
	for i, s := range shards {
		rec, ok := s.svc.Job("saturate-me")
		if !ok {
			continue
		}
		switch rec.State {
		case service.StateCompleted:
			executions++
		case service.StateRevoked:
		default:
			t.Fatalf("shard %d ledger = %+v", i, rec)
		}
	}
	if executions != 1 {
		t.Fatalf("job executed %d times", executions)
	}
	// The late stale frame of the LAST revoked binding is still refused on
	// whichever shard holds a tombstone.
	for _, f := range []*flakyShard{f0, f1} {
		rec, ok := f.LocalShard.Service().Job("saturate-me")
		if !ok || rec.State != service.StateRevoked {
			continue
		}
		res, err := f.Handoff(context.Background(), &Handoff{
			Key: "saturate-me", Origin: "test", Job: testJob("saturate-me", 60),
			Strategy: "S1", Epoch: rec.Epoch,
		})
		if err != nil || res.Accepted {
			t.Fatalf("stale frame at tombstone accepted: (%+v, %v)", res, err)
		}
	}
	for _, s := range shards {
		_ = s.svc.Drain(context.Background())
	}
}
