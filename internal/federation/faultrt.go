package federation

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// FaultPlan is a seeded network-fault mix for one router→shard link. The
// four faults map onto the partition behaviours that break naive handoff
// protocols:
//
//   - Drop: the request is lost before the shard sees it (clean failure).
//   - AckLoss: the shard PROCESSES the request but the response is lost —
//     the "in doubt" case idempotency keys and confirmed revocation exist
//     for.
//   - Dup: the frame is delivered twice (a retrying proxy); the shard's
//     duplicate guard must collapse it.
//   - Delay: the request is held up to DelayMax first, reordering it
//     against younger traffic.
type FaultPlan struct {
	Seed     uint64
	Drop     float64
	AckLoss  float64
	Dup      float64
	Delay    float64
	DelayMax time.Duration
}

// FaultTransport injects FaultPlan faults under an http.Client, plus a
// switchable full partition (Sever). Faults draw from one seeded stream,
// so a chaos cycle's fault mix is reproducible from its seed.
type FaultTransport struct {
	next    http.RoundTripper
	plan    FaultPlan
	severed atomic.Bool

	mu sync.Mutex
	r  *rng.Source

	// Injected counts every fault fired, by kind.
	drops, ackLosses, dups, delays atomic.Uint64
}

// NewFaultTransport wraps next (nil = http.DefaultTransport).
func NewFaultTransport(plan FaultPlan, next http.RoundTripper) *FaultTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &FaultTransport{next: next, plan: plan, r: rng.New(plan.Seed).Split(fnv1a("faultrt"))}
}

// Sever switches the full partition on or off.
func (t *FaultTransport) Sever(on bool) { t.severed.Store(on) }

// Severed reports the partition switch.
func (t *FaultTransport) Severed() bool { return t.severed.Load() }

// Counts returns (drops, ackLosses, dups, delays) injected so far.
func (t *FaultTransport) Counts() (uint64, uint64, uint64, uint64) {
	return t.drops.Load(), t.ackLosses.Load(), t.dups.Load(), t.delays.Load()
}

func (t *FaultTransport) draw() (drop, ackLoss, dup bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	drop = t.r.Float64() < t.plan.Drop
	ackLoss = t.r.Float64() < t.plan.AckLoss
	dup = t.r.Float64() < t.plan.Dup
	if t.r.Float64() < t.plan.Delay && t.plan.DelayMax > 0 {
		delay = time.Duration(t.r.Float64() * float64(t.plan.DelayMax))
	}
	return
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.severed.Load() {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultrt: link severed")
	}
	drop, ackLoss, dup, delay := t.draw()
	if delay > 0 {
		t.delays.Add(1)
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	if drop {
		t.drops.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultrt: request dropped")
	}

	// Buffer the body so it can be replayed for duplication.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		clone := req.Clone(req.Context())
		if body != nil {
			clone.Body = io.NopCloser(bytes.NewReader(body))
			clone.ContentLength = int64(len(body))
		}
		return t.next.RoundTrip(clone)
	}

	if dup {
		// First delivery: processed by the shard, answer discarded.
		t.dups.Add(1)
		if resp, err := send(); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := send()
	if err != nil {
		return nil, err
	}
	if ackLoss {
		// The shard processed this delivery; the caller never learns.
		t.ackLosses.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("faultrt: response lost after processing")
	}
	return resp, nil
}
