package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metasched"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// TestHTTPFederationEndToEnd drives the whole wire path in process: two
// shards behind real HTTP servers with the member glue, a router talking
// to them through HTTPShard clients, clients submitting through the
// router's HTTP API, join handshakes and terminal notices flowing back
// over the router's own endpoint. The chaos harness covers the same path
// across processes; this test keeps it honest (and covered) at unit
// speed.
func TestHTTPFederationEndToEnd(t *testing.T) {
	// The members need the router's URL before the router exists, so the
	// router's server delegates through a late-bound handler.
	var routerHandler atomic.Value // http.HandlerFunc
	rts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		routerHandler.Load().(http.HandlerFunc)(w, req)
	}))
	defer rts.Close()
	routerHandler.Store(http.HandlerFunc(http.NotFound))

	type shardProc struct {
		svc    *service.Server
		member *Member
		ts     *httptest.Server
	}
	shards := make([]*shardProc, 2)
	fleet := make([]ShardClient, 2)
	for i := range shards {
		name := fmt.Sprintf("s%d", i)
		member := NewMember(MemberConfig{
			Shard: name, Router: rts.URL,
			RetryBase: 10 * time.Millisecond, RetryCap: 100 * time.Millisecond,
			Seed: uint64(i) + 1, Telemetry: telemetry.NewRegistry(),
		})
		svc, err := service.New(service.Config{
			Env:        testEnv(),
			Sched:      metasched.Config{Seed: uint64(i) + 1},
			QueueCap:   64,
			OnTerminal: member.Terminal,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc.Start()
		member.Bind(svc)
		member.Start()
		ts := httptest.NewServer(member.Handler(svc.Handler()))
		defer ts.Close()
		shards[i] = &shardProc{svc: svc, member: member, ts: ts}
		fleet[i] = NewHTTPShard(name, ts.URL, &http.Client{Timeout: 2 * time.Second})
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range shards {
			s.member.Close()
			_ = s.svc.Drain(ctx)
		}
	}()

	r, err := New(Config{
		Shards:            fleet,
		Seed:              21,
		Telemetry:         telemetry.NewRegistry(),
		HeartbeatInterval: 50 * time.Millisecond,
		RetryBase:         10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerHandler.Store(http.HandlerFunc(r.Handler().ServeHTTP))
	r.Start()
	defer r.Close()
	client := rts.Client()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Post(rts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	submit := func(id string, deadline int64) *http.Response {
		t.Helper()
		job := testJob(id, deadline)
		body, _ := json.Marshal(SubmitRequest{Job: job, Strategy: "S1"})
		resp, _ := post(string(body))
		return resp
	}

	// A wave of accepts, spread across both shards by the ring.
	ids := []string{}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("http-job-%d", i)
		if resp := submit(id, 60); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", id, resp.StatusCode)
		}
		ids = append(ids, id)
	}
	// The error surface: duplicate (409), malformed (400). An infeasible
	// deadline is accepted asynchronously (202) and rejected by the shard.
	if resp := submit(ids[0], 60); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status = %d", resp.StatusCode)
	}
	if resp, _ := post("{nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed status = %d", resp.StatusCode)
	}
	if resp := submit("http-doomed", 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("infeasible submit status = %d, want async 202", resp.StatusCode)
	}

	// Everything terminal, via the router's own HTTP surface.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(rts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var views []JobView
		if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		done := 0
		for _, v := range views {
			if v.State == service.StateCompleted || v.State == service.StateRejected {
				done++
			}
		}
		if done == len(ids)+1 { // + the infeasible rejection
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs terminal", done, len(ids)+1)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Read-side endpoints.
	var view JobView
	if err := httpGetJSON(t, client, rts.URL+"/v1/jobs/"+ids[0], &view); err != nil {
		t.Fatal(err)
	}
	if view.State != service.StateCompleted {
		t.Fatalf("job view = %+v", view)
	}
	if resp, err := client.Get(rts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d", resp.StatusCode)
		}
	}
	var met Metrics
	if err := httpGetJSON(t, client, rts.URL+"/v1/metrics", &met); err != nil {
		t.Fatal(err)
	}
	if met.Accepted != uint64(len(ids))+1 || met.Completed != uint64(len(ids)) {
		t.Fatalf("metrics = %+v", met)
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := client.Get(rts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v %d", path, err, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The shard-client RPCs the happy path never needed: a direct Record
	// probe and a confirmed revoke of a never-seen key (tombstone plant)
	// over real HTTP.
	rec, ok, err := fleet[0].Record(context.Background(), ids[0])
	found := ok && rec.State == service.StateCompleted
	rec1, ok1, err1 := fleet[1].Record(context.Background(), ids[0])
	if err != nil || err1 != nil {
		t.Fatalf("record probes: %v %v", err, err1)
	}
	if !found && !(ok1 && rec1.State == service.StateCompleted) {
		t.Fatalf("%s on neither shard ledger", ids[0])
	}
	res, err := fleet[0].Revoke(context.Background(), &RevokeRequest{Key: "never-seen", Origin: "test", Reason: "test", Epoch: 0})
	if err != nil || res.Outcome != RevokeOutcomeRevoked {
		t.Fatalf("wire revoke = (%+v, %v)", res, err)
	}
	if rec, ok := shards[0].svc.Job("never-seen"); !ok || rec.State != service.StateRevoked {
		t.Fatalf("tombstone missing: %+v", rec)
	}

	// The heartbeat probe over real HTTP, and the router's view of it:
	// both shards pinged alive.
	pr, err := fleet[1].Ping(context.Background())
	if err != nil || pr.Shard != "s1" || pr.Draining {
		t.Fatalf("ping = (%+v, %v)", pr, err)
	}
	if err := httpGetJSON(t, client, rts.URL+"/v1/metrics", &met); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s0", "s1"} {
		if st, ok := met.Shards[name]; !ok || !st.Alive {
			t.Fatalf("shard %s not alive in router metrics: %+v", name, met.Shards)
		}
	}
}

func httpGetJSON(t *testing.T, client *http.Client, url string, out any) error {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestFaultTransportInjection pins the chaos harness's network: seeded
// fault draws are reproducible, duplication really delivers twice,
// ack-loss processes then fails, and a severed link refuses everything
// until unsevered.
func TestFaultTransportInjection(t *testing.T) {
	var served atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	rt := NewFaultTransport(FaultPlan{
		Seed: 5, Drop: 0.2, AckLoss: 0.2, Dup: 0.2, Delay: 0.3, DelayMax: 2 * time.Millisecond,
	}, nil)
	client := &http.Client{Transport: rt, Timeout: 2 * time.Second}

	okCount := 0
	for i := 0; i < 200; i++ {
		resp, err := client.Post(backend.URL, "text/plain", strings.NewReader("frame"))
		if err != nil {
			continue
		}
		resp.Body.Close()
		okCount++
	}
	drops, ackLosses, dups, delays := rt.Counts()
	if drops == 0 || ackLosses == 0 || dups == 0 || delays == 0 {
		t.Fatalf("fault mix never fired: drops=%d ackLosses=%d dups=%d delays=%d", drops, ackLosses, dups, delays)
	}
	// Every non-dropped request is processed; dups add one extra delivery
	// each, and ack-losses are processed even though the caller errored.
	wantServed := 200 - int(drops) + int(dups)
	if got := int(served.Load()); got != wantServed {
		t.Fatalf("backend served %d, want %d (drops=%d dups=%d)", got, wantServed, drops, dups)
	}
	if okCount == 0 || okCount == 200 {
		t.Fatalf("okCount = %d, want a mix", okCount)
	}

	// Severed link: everything fails, nothing reaches the backend.
	rt.Sever(true)
	if !rt.Severed() {
		t.Fatal("Severed() = false after Sever(true)")
	}
	before := served.Load()
	if _, err := client.Get(backend.URL); err == nil {
		t.Fatal("request succeeded across a severed link")
	}
	if served.Load() != before {
		t.Fatal("severed request reached the backend")
	}
	rt.Sever(false)
	resp, err := client.Get(backend.URL)
	if err != nil {
		// A fault draw can still legitimately fail it; retry a few times.
		for i := 0; i < 20 && err != nil; i++ {
			resp, err = client.Get(backend.URL)
		}
		if err != nil {
			t.Fatalf("unsevered link never recovered: %v", err)
		}
	}
	resp.Body.Close()
}
