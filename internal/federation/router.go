package federation

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/breaker"
	"repro/internal/faults"
	"repro/internal/jobio"
	"repro/internal/journal"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// Router-side job states. Terminal states reuse the service vocabulary so
// one journal fold function (service.Terminal) covers both tiers.
const (
	// StateQueued — accepted by the router, not yet bound to a shard.
	StateQueued = service.StateQueued
	// StateHanded — bound to Shard; the handed record is journaled BEFORE
	// the first send, so a restarted router knows which shard may own an
	// in-doubt handoff.
	StateHanded = "handed"
	// StateRevoking — in doubt: the router wants the job back but has not
	// yet received a confirmed revocation. A job leaves this state only
	// through a shard's durable answer (revoked / inflight / terminal).
	StateRevoking = "revoking"
)

// routerTerminal reports router-level terminal states.
func routerTerminal(state string) bool { return service.Terminal(state) }

// Config configures a Router.
type Config struct {
	// Origin names this router in handoffs and revocations. Default
	// "gridfront".
	Origin string
	// Shards is the fleet. Required, at least one.
	Shards []ShardClient
	// Replicas is the consistent-hash virtual point count (DefaultReplicas
	// when ≤ 0).
	Replicas int
	// Journal, when non-nil, makes router placement state durable.
	Journal *journal.Journal
	// Telemetry exports grid_fed_* metrics. nil disables.
	Telemetry *telemetry.Registry
	// Breaker configures the per-shard circuit breakers. Breaker time is
	// wall milliseconds since router start, so OpenBase=512 means ~0.5s.
	Breaker breaker.Config
	// HeartbeatInterval is the shard ping period (default 250ms);
	// DeadAfter consecutive missed heartbeats declare a shard dead
	// (default 4) and sweep its bound jobs into revocation.
	HeartbeatInterval time.Duration
	DeadAfter         int
	// RetryBudget is the handoff attempts per binding before the router
	// gives the job up as in doubt and starts revocation (default 3).
	RetryBudget int
	// RetryBase/RetryCap bound the jittered exponential backoff between
	// handoff attempts (defaults 100ms / 2s) and between revocation
	// attempts.
	RetryBase time.Duration
	RetryCap  time.Duration
	// HandoffTimeout bounds one handoff or revoke RPC (default 2s); it is
	// also the deadline propagated inside the handoff frame.
	HandoffTimeout time.Duration
	// JitterFrac spreads the backoff (default 0.2); Seed drives all router
	// randomness.
	JitterFrac float64
	Seed       uint64
	// Workers is the dispatcher pool size (default 4). Sync mode uses
	// none.
	Workers int
	// Sync dispatches synchronously inside Submit and starts no background
	// loops — the deterministic single-shard mode the differential suite
	// pins against a plain service.Server.
	Sync bool
	// Logf receives operational log lines. nil discards.
	Logf func(format string, args ...any)
}

func (c Config) origin() string {
	if c.Origin == "" {
		return "gridfront"
	}
	return c.Origin
}

func (c Config) heartbeat() time.Duration {
	if c.HeartbeatInterval <= 0 {
		return 250 * time.Millisecond
	}
	return c.HeartbeatInterval
}

func (c Config) deadAfter() int {
	if c.DeadAfter <= 0 {
		return 4
	}
	return c.DeadAfter
}

func (c Config) retryBudget() int {
	if c.RetryBudget <= 0 {
		return 3
	}
	return c.RetryBudget
}

func (c Config) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return 100 * time.Millisecond
	}
	return c.RetryBase
}

func (c Config) retryCap() time.Duration {
	if c.RetryCap <= 0 {
		return 2 * time.Second
	}
	return c.RetryCap
}

func (c Config) handoffTimeout() time.Duration {
	if c.HandoffTimeout <= 0 {
		return 2 * time.Second
	}
	return c.HandoffTimeout
}

func (c Config) jitterFrac() float64 {
	if c.JitterFrac == 0 {
		return 0.2
	}
	return c.JitterFrac
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 4
	}
	return c.Workers
}

// jobRecord is the router's ledger entry for one job.
type jobRecord struct {
	ID       string
	Strategy string
	Priority int
	State    string
	Shard    string
	Reason   string
	Seq      uint64

	wire         *jobio.Job
	attempts     int             // dispatch attempts across all bindings
	epoch        int             // reallocation round; +1 per confirmed revocation
	banned       map[string]bool // shards holding a tombstone for this key
	revokeActive bool            // a revocation loop owns this job
	submitted    time.Time       // for the end-to-end latency histogram
}

// JobView is the JSON face of a router ledger entry.
type JobView struct {
	ID       string `json:"id"`
	Strategy string `json:"strategy"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	Shard    string `json:"shard,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Epoch    int    `json:"epoch,omitempty"`
	Seq      uint64 `json:"seq"`
}

func (j *jobRecord) view() JobView {
	return JobView{ID: j.ID, Strategy: j.Strategy, Priority: j.Priority,
		State: j.State, Shard: j.Shard, Reason: j.Reason, Epoch: j.epoch, Seq: j.Seq}
}

// shardHealth is the router's liveness view of one shard.
type shardHealth struct {
	alive  bool
	missed int
}

// ShardStatus is the JSON face of a shard's health.
type ShardStatus struct {
	Alive   bool   `json:"alive"`
	Missed  int    `json:"missed"`
	Breaker string `json:"breaker"`
}

// Metrics is the router's counter snapshot.
type Metrics struct {
	Submitted    uint64                 `json:"submitted"`
	Accepted     uint64                 `json:"accepted"`
	Completed    uint64                 `json:"completed"`
	Rejected     uint64                 `json:"rejected"`
	Drained      uint64                 `json:"drained"`
	Handoffs     uint64                 `json:"handoffs"`
	Retries      uint64                 `json:"handoffRetries"`
	Reallocated  uint64                 `json:"reallocated"`
	Revocations  uint64                 `json:"revocations"`
	ShardDeaths  uint64                 `json:"shardDeaths"`
	Pending      int                    `json:"pending"`
	Handed       int                    `json:"handed"`
	Revoking     int                    `json:"revoking"`
	Draining     bool                   `json:"draining"`
	Shards       map[string]ShardStatus `json:"shards"`
	JournalError uint64                 `json:"journalErrors,omitempty"`
}

// Router is the front tier: it accepts jobs, partitions them across shards
// by consistent hashing, detects shard failure by heartbeat, and walks the
// recovery ladder — retry with backoff, circuit-break, then confirmed
// revocation and reallocation to a surviving shard. Its placement state is
// journaled write-ahead, so a SIGKILL'd router resumes every in-doubt
// handoff instead of losing or duplicating it.
type Router struct {
	cfg     Config
	ring    *Ring
	clients map[string]ShardClient
	brk     *breaker.Set
	start   time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	records map[string]*jobRecord
	pending []string
	health  map[string]*shardHealth
	seq     uint64
	met     Metrics
	closed  bool

	rngMu sync.Mutex
	r     *rng.Source

	stopc chan struct{}
	wg    sync.WaitGroup

	th routerTelemetry
}

type routerTelemetry struct {
	submitted, accepted, completed, rejected *telemetry.Counter
	handoffs, handoffFailures, retries       *telemetry.Counter
	reallocated, revocations, deaths         *telemetry.Counter
	journalErrors                            *telemetry.Counter
	pending                                  *telemetry.Gauge
	alive                                    map[string]*telemetry.Gauge
	handoffLatency                           *telemetry.Histogram
	jobLatency                               *telemetry.Histogram
}

// New builds a router over cfg.Shards. Call Restore before Start when a
// journal recovery is available.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("federation: router needs at least one shard")
	}
	names := make([]string, 0, len(cfg.Shards))
	clients := make(map[string]ShardClient, len(cfg.Shards))
	for _, sc := range cfg.Shards {
		if _, dup := clients[sc.Name()]; dup {
			return nil, fmt.Errorf("federation: duplicate shard %q", sc.Name())
		}
		clients[sc.Name()] = sc
		names = append(names, sc.Name())
	}
	ring, err := NewRing(names, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	bcfg := cfg.Breaker
	if bcfg.Seed == 0 {
		bcfg.Seed = cfg.Seed
	}
	r := &Router{
		cfg:     cfg,
		ring:    ring,
		clients: clients,
		brk:     breaker.NewSet(bcfg),
		start:   time.Now(),
		records: make(map[string]*jobRecord),
		health:  make(map[string]*shardHealth, len(names)),
		r:       rng.New(cfg.Seed).Split(fnv1a("router")),
		stopc:   make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, n := range names {
		// Shards start alive: jobs dispatch immediately and the first
		// heartbeat round corrects optimism within one interval.
		r.health[n] = &shardHealth{alive: true}
	}
	if reg := cfg.Telemetry; reg != nil {
		r.th.submitted = reg.Counter("grid_fed_submitted_total", "jobs submitted to the router")
		r.th.accepted = reg.Counter("grid_fed_accepted_total", "jobs accepted by the router")
		r.th.completed = reg.Counter("grid_fed_completed_total", "federated jobs completed")
		r.th.rejected = reg.Counter("grid_fed_rejected_total", "federated jobs rejected")
		r.th.handoffs = reg.Counter("grid_fed_handoffs_total", "handoff attempts sent to shards")
		r.th.handoffFailures = reg.Counter("grid_fed_handoff_failures_total", "handoff attempts that failed in transport")
		r.th.retries = reg.Counter("grid_fed_handoff_retries_total", "handoff retries after the first attempt")
		r.th.reallocated = reg.Counter("grid_fed_reallocations_total", "jobs moved to another shard after confirmed revocation")
		r.th.revocations = reg.Counter("grid_fed_revocations_total", "confirmed revocations (incl. tombstones)")
		r.th.deaths = reg.Counter("grid_fed_shard_deaths_total", "shards declared dead by the heartbeat detector")
		r.th.journalErrors = reg.Counter("grid_fed_journal_errors_total", "router journal append failures")
		r.th.pending = reg.Gauge("grid_fed_jobs_pending", "router jobs awaiting dispatch")
		r.th.handoffLatency = reg.Histogram("grid_fed_handoff_latency_seconds",
			"latency of one successful handoff RPC",
			[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5})
		r.th.jobLatency = reg.Histogram("grid_fed_job_latency_seconds",
			"submit-to-terminal latency of federated jobs",
			[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60})
		r.th.alive = make(map[string]*telemetry.Gauge, len(names))
		for _, n := range names {
			g := reg.Gauge("grid_fed_shard_alive", "1 when the shard passes heartbeats", telemetry.L("shard", n))
			g.Set(1)
			r.th.alive[n] = g
		}
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// now maps wall time onto breaker ticks: milliseconds since router start.
func (r *Router) now() simtime.Time {
	return simtime.Time(time.Since(r.start) / time.Millisecond)
}

// backoff computes the jittered exponential wait for a 1-based attempt.
func (r *Router) backoff(attempt int) time.Duration {
	base := r.cfg.retryBase() / time.Millisecond
	if base < 1 {
		base = 1
	}
	capMS := r.cfg.retryCap() / time.Millisecond
	ms := faults.ExpBackoff(simtime.Time(base), attempt, simtime.Time(capMS))
	r.rngMu.Lock()
	ms = faults.Jitter(ms, r.cfg.jitterFrac(), r.r)
	r.rngMu.Unlock()
	return time.Duration(ms) * time.Millisecond
}

func (r *Router) journal(rec journal.Record) {
	if r.cfg.Journal == nil {
		return
	}
	if _, err := r.cfg.Journal.Append(rec); err != nil {
		r.met.JournalError++
		if r.th.journalErrors != nil {
			r.th.journalErrors.Inc()
		}
		r.logf("federation: journal append %s/%s: %v", rec.Job, rec.State, err)
	}
}

// Start launches the dispatcher pool and the per-shard heartbeat loops.
// No-op in Sync mode.
func (r *Router) Start() {
	if r.cfg.Sync {
		return
	}
	for i := 0; i < r.cfg.workers(); i++ {
		r.wg.Add(1)
		go r.dispatchLoop()
	}
	for name := range r.clients {
		r.wg.Add(1)
		go r.heartbeatLoop(name)
	}
}

// Submit accepts one job into the federation. Validation failures and
// duplicates are refused with the same SubmitError codes a plain service
// uses. In Sync mode the handoff happens inline and shard-side rejections
// surface directly; in async mode the job is journaled and queued, and its
// fate is visible via Job/Jobs.
func (r *Router) Submit(wire jobio.Job, strategyName string, priority int) (JobView, error) {
	if r.th.submitted != nil {
		r.th.submitted.Inc()
	}
	typ, err := strategy.ParseType(strategyName)
	if err != nil {
		r.countSubmit(false)
		return JobView{}, &service.SubmitError{Code: service.CodeInvalid, Reason: err.Error()}
	}
	if _, err := wire.ToJob(); err != nil {
		r.countSubmit(false)
		return JobView{}, &service.SubmitError{Code: service.CodeInvalid, Reason: err.Error()}
	}

	r.mu.Lock()
	r.met.Submitted++
	if r.met.Draining {
		r.mu.Unlock()
		return JobView{}, &service.SubmitError{Code: service.CodeDraining,
			Reason: "router is draining; not accepting work", RetryAfter: time.Second}
	}
	if r.cfg.Sync {
		// Sync mode forwards everything — including duplicates — so the
		// single shard observes the exact submission stream a plain
		// server would (its Submitted counter and duplicate answers are
		// part of the differential pin).
		r.mu.Unlock()
		return r.submitSync(wire, typ.String(), priority)
	}
	if _, dup := r.records[wire.Name]; dup {
		r.mu.Unlock()
		return JobView{}, &service.SubmitError{Code: service.CodeDuplicate,
			Reason: fmt.Sprintf("job %q was already submitted", wire.Name)}
	}
	rec := r.newRecordLocked(wire.Name, typ.String(), priority, StateQueued)
	rec.wire = &wire
	// Write-ahead: the accept is durable before the job exists only in
	// memory, so an acknowledged submission survives a router SIGKILL.
	r.journal(journal.Record{Job: wire.Name, State: StateQueued,
		Strategy: typ.String(), Priority: priority, Wire: &wire})
	r.met.Accepted++
	r.pushLocked(wire.Name)
	view := rec.view()
	r.mu.Unlock()
	if r.th.accepted != nil {
		r.th.accepted.Inc()
	}
	return view, nil
}

func (r *Router) countSubmit(accepted bool) {
	r.mu.Lock()
	r.met.Submitted++
	if accepted {
		r.met.Accepted++
	}
	r.mu.Unlock()
}

// submitSync is the deterministic shards=1 path: one inline handoff, the
// shard's answer mapped straight back to the caller so a federated
// single-shard deployment is observationally identical to a plain server.
func (r *Router) submitSync(wire jobio.Job, strategyName string, priority int) (JobView, error) {
	shard := r.ring.Owner(wire.Name)
	client := r.clients[shard]
	h := &Handoff{Key: wire.Name, Origin: r.cfg.origin(), Attempt: 1,
		Job: wire, Strategy: strategyName, Priority: priority}
	res, err := client.Handoff(context.Background(), h)
	if err != nil {
		return JobView{}, &service.SubmitError{Code: service.CodeInternal, Reason: err.Error()}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case res.Duplicate:
		view := JobView{}
		if rec, ok := r.records[wire.Name]; ok {
			view = rec.view()
		}
		return view, &service.SubmitError{Code: service.CodeDuplicate,
			Reason: fmt.Sprintf("job %q was already submitted", wire.Name)}
	case res.Accepted:
		rec := r.newRecordLocked(wire.Name, strategyName, priority, StateHanded)
		rec.Shard = shard
		r.journal(journal.Record{Job: wire.Name, State: StateHanded,
			Strategy: strategyName, Priority: priority, Wire: &wire, Shard: shard})
		r.met.Accepted++
		if routerTerminal(res.State) {
			r.terminalLocked(rec, res.State, res.Reason, shard)
		}
		if r.th.accepted != nil {
			r.th.accepted.Inc()
		}
		return rec.view(), nil
	case res.Code == service.CodeInfeasible:
		// The shard ledgered a terminal rejection; mirror it so fates
		// match a plain server's.
		rec := r.newRecordLocked(wire.Name, strategyName, priority, service.StateRejected)
		rec.Shard = shard
		rec.Reason = res.Reason
		r.journal(journal.Record{Job: wire.Name, State: service.StateRejected,
			Reason: res.Reason, Strategy: strategyName, Priority: priority, Shard: shard})
		r.met.Rejected++
		if r.th.rejected != nil {
			r.th.rejected.Inc()
		}
		return rec.view(), &service.SubmitError{Code: service.CodeInfeasible, Reason: res.Reason}
	default: // overloaded, draining, internal, invalid — not ledgered
		return JobView{}, &service.SubmitError{Code: res.Code, Reason: res.Reason,
			RetryAfter: time.Duration(res.RetryAfter) * time.Second}
	}
}

// newRecordLocked creates the ledger entry. Caller holds r.mu.
func (r *Router) newRecordLocked(id, strategyName string, priority int, state string) *jobRecord {
	r.seq++
	rec := &jobRecord{ID: id, Strategy: strategyName, Priority: priority,
		State: state, Seq: r.seq, submitted: time.Now()}
	r.records[id] = rec
	return rec
}

// pushLocked queues a job for dispatch. Caller holds r.mu.
func (r *Router) pushLocked(id string) {
	r.pending = append(r.pending, id)
	if r.th.pending != nil {
		r.th.pending.Set(float64(len(r.pending)))
	}
	r.cond.Signal()
}

// push is pushLocked for timers and RPC outcomes.
func (r *Router) push(id string) {
	r.mu.Lock()
	if !r.closed {
		r.pushLocked(id)
	}
	r.mu.Unlock()
}

// requeueLater re-queues id after d — the "no eligible shard right now"
// path, paced by the heartbeat interval.
func (r *Router) requeueLater(id string, d time.Duration) {
	t := time.AfterFunc(d, func() { r.push(id) })
	go func() {
		<-r.stopc
		t.Stop()
	}()
}

// dispatchLoop is one worker: pop a pending job, dispatch it to the first
// eligible shard on its preference list, with a bounded retry budget.
func (r *Router) dispatchLoop() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.pending) == 0 && !r.closed {
			r.cond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		id := r.pending[0]
		r.pending = r.pending[1:]
		if r.th.pending != nil {
			r.th.pending.Set(float64(len(r.pending)))
		}
		r.mu.Unlock()
		r.dispatch(id)
	}
}

// eligibleLocked returns the first shard on the preference list that is
// not banned for this job, currently alive, and admitted by its breaker.
func (r *Router) eligibleLocked(rec *jobRecord) (string, bool) {
	now := r.now()
	for _, s := range r.ring.Walk(rec.ID) {
		if rec.banned[s] {
			continue
		}
		if h := r.health[s]; h == nil || !h.alive {
			continue
		}
		if !r.brk.Allow(s, now) {
			continue
		}
		return s, true
	}
	return "", false
}

// dispatch binds one queued job to a shard and runs the handoff attempts.
func (r *Router) dispatch(id string) {
	r.mu.Lock()
	rec, ok := r.records[id]
	if !ok || rec.State != StateQueued {
		r.mu.Unlock()
		return
	}
	if rec.wire == nil {
		// Adopted or recovered without a wire form: nothing to send. Leave
		// it queued; a join from the owning shard resolves it.
		r.mu.Unlock()
		return
	}
	shard, ok := r.eligibleLocked(rec)
	if !ok && len(rec.banned) >= len(r.ring.Shards()) {
		// Every shard holds a tombstone for this key. Each ban was taken
		// only after a confirmed revocation (or a shard's own durable
		// tombstone answer), so the job is provably running nowhere — the
		// one situation where re-walking the ring is safe. The handoff
		// carries an epoch above every tombstone's, which lets the target
		// resurrect its tombstone instead of refusing the key forever.
		r.logf("federation: %s banned on every shard; clearing bans at epoch %d", id, rec.epoch)
		rec.banned = nil
		shard, ok = r.eligibleLocked(rec)
	}
	if !ok {
		r.mu.Unlock()
		r.requeueLater(id, r.cfg.heartbeat())
		return
	}
	// Journal the binding BEFORE the first byte leaves: if the router is
	// SIGKILL'd mid-handoff, its next incarnation knows shard may own the
	// job and reconciles instead of double-placing.
	rec.State = StateHanded
	realloc := rec.Shard != ""
	from := rec.Shard
	rec.Shard = shard
	epoch := rec.epoch
	r.journal(journal.Record{Job: id, State: StateHanded, Shard: shard, Epoch: epoch})
	wire := *rec.wire
	strategyName, priority := rec.Strategy, rec.Priority
	r.mu.Unlock()

	client := r.clients[shard]
	budget := r.cfg.retryBudget()
	for attempt := 1; attempt <= budget; attempt++ {
		if attempt > 1 {
			if r.th.retries != nil {
				r.th.retries.Inc()
			}
			r.mu.Lock()
			r.met.Retries++
			r.mu.Unlock()
			if !r.sleep(r.backoff(attempt - 1)) {
				return
			}
		}
		h := &Handoff{
			Key: id, Origin: r.cfg.origin(), Attempt: attempt,
			Deadline: time.Now().Add(r.cfg.handoffTimeout()).UnixMilli(),
			Job:      wire, Strategy: strategyName, Priority: priority,
			Realloc: realloc, FromShard: from, Epoch: epoch,
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.handoffTimeout())
		began := time.Now()
		res, err := client.Handoff(ctx, h)
		cancel()
		if r.th.handoffs != nil {
			r.th.handoffs.Inc()
		}
		r.mu.Lock()
		r.met.Handoffs++
		r.mu.Unlock()
		if err != nil {
			if r.th.handoffFailures != nil {
				r.th.handoffFailures.Inc()
			}
			r.brk.Get(shard).Failure(r.now())
			r.logf("federation: handoff %s→%s attempt %d: %v", id, shard, attempt, err)
			continue
		}
		r.brk.Get(shard).Success(r.now())
		if r.th.handoffLatency != nil {
			r.th.handoffLatency.Observe(time.Since(began).Seconds())
		}
		if r.resolveHandoff(rec, shard, res) {
			return
		}
		// Retryable shard answer (overloaded / draining / expired):
		// consume budget and try again.
	}
	// Budget exhausted: the job is in doubt at shard (an attempt may have
	// been processed with its ack lost). Walk the last recovery-ladder
	// rung: confirmed revocation, then reallocation to a survivor.
	r.beginRevoke(id, "handoff retry budget exhausted")
}

// resolveHandoff applies a durable shard answer. Returns false when the
// answer is retryable.
func (r *Router) resolveHandoff(rec *jobRecord, shard string, res *HandoffResult) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.State != StateHanded || rec.Shard != shard {
		// A concurrent death sweep moved the job to revoking; the
		// revocation loop owns it now.
		return true
	}
	switch {
	case res.Accepted:
		if routerTerminal(res.State) {
			// Duplicate of an already-finished accept: mirror it.
			r.terminalLocked(rec, res.State, res.Reason, shard)
		}
		return true
	case res.Duplicate && (res.State == service.StateRevoked || res.State == service.StateDrained):
		// Our own tombstone (or a drained shutdown remnant): this key was
		// voided at this shard earlier, so the binding is void. Ban the
		// shard and reallocate.
		r.banAndRequeueLocked(rec, shard, "tombstone at "+shard)
		return true
	case res.Code == service.CodeInvalid || res.Code == service.CodeInfeasible:
		r.terminalLocked(rec, service.StateRejected, res.Reason, shard)
		return true
	default:
		return false // overloaded, draining, expired, internal: retry
	}
}

// banAndRequeueLocked voids the current binding (already proven safe: the
// shard holds a tombstone or confirmed the revoke) and requeues the job.
// Caller holds r.mu.
func (r *Router) banAndRequeueLocked(rec *jobRecord, shard, why string) {
	if rec.banned == nil {
		rec.banned = make(map[string]bool)
	}
	rec.banned[shard] = true
	rec.State = StateQueued
	rec.Shard = ""
	rec.Reason = ""
	// Each voided binding starts a new reallocation epoch: the next
	// handoff must outrank every tombstone this job left behind.
	rec.epoch++
	r.journal(journal.Record{Job: rec.ID, State: StateQueued, Reason: why, Epoch: rec.epoch})
	r.met.Reallocated++
	if r.th.reallocated != nil {
		r.th.reallocated.Inc()
	}
	r.logf("federation: reallocating %s (%s)", rec.ID, why)
	r.pushLocked(rec.ID)
}

// terminalLocked mirrors a shard-terminal state into the router ledger.
// Caller holds r.mu.
func (r *Router) terminalLocked(rec *jobRecord, state, reason, shard string) {
	if routerTerminal(rec.State) {
		return
	}
	rec.State = state
	rec.Reason = reason
	if shard != "" {
		rec.Shard = shard
	}
	r.journal(journal.Record{Job: rec.ID, State: state, Reason: reason, Shard: rec.Shard})
	switch state {
	case service.StateCompleted:
		r.met.Completed++
		if r.th.completed != nil {
			r.th.completed.Inc()
		}
	case service.StateRejected:
		r.met.Rejected++
		if r.th.rejected != nil {
			r.th.rejected.Inc()
		}
	case service.StateDrained:
		r.met.Drained++
	}
	if r.th.jobLatency != nil && !rec.submitted.IsZero() {
		r.th.jobLatency.Observe(time.Since(rec.submitted).Seconds())
	}
}

// beginRevoke moves a bound job into the revoking state and starts its
// revocation loop (at most one per job).
func (r *Router) beginRevoke(id, why string) {
	r.mu.Lock()
	rec, ok := r.records[id]
	if !ok || routerTerminal(rec.State) || rec.State == StateQueued {
		r.mu.Unlock()
		return
	}
	if rec.State != StateRevoking {
		rec.State = StateRevoking
		rec.Reason = why
		r.journal(journal.Record{Job: id, State: StateRevoking, Reason: why, Shard: rec.Shard, Epoch: rec.epoch})
	}
	if rec.revokeActive {
		r.mu.Unlock()
		return
	}
	rec.revokeActive = true
	r.mu.Unlock()
	r.wg.Add(1)
	go r.revokeLoop(id, why)
}

// revokeLoop retries the revocation RPC until the shard gives a durable
// answer. A SIGKILL'd shard answers after restart from its journal; a
// shard that never returns leaves the job in-doubt forever — by design,
// since reallocating without confirmation is the double-execution bug
// this protocol exists to prevent.
func (r *Router) revokeLoop(id, why string) {
	defer r.wg.Done()
	for attempt := 1; ; attempt++ {
		r.mu.Lock()
		rec, ok := r.records[id]
		if !ok || rec.State != StateRevoking {
			if ok {
				rec.revokeActive = false
			}
			r.mu.Unlock()
			return
		}
		shard := rec.Shard
		epoch := rec.epoch
		r.mu.Unlock()

		client := r.clients[shard]
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.handoffTimeout())
		res, err := client.Revoke(ctx, &RevokeRequest{Key: id, Origin: r.cfg.origin(), Reason: why, Epoch: epoch})
		cancel()
		if err == nil && r.resolveRevoke(id, shard, res) {
			return
		}
		if err != nil {
			r.logf("federation: revoke %s@%s attempt %d: %v", id, shard, attempt, err)
		}
		if !r.sleep(r.backoff(attempt)) {
			return
		}
	}
}

// resolveRevoke applies a confirmed revocation answer. Returns false when
// the loop should keep trying (cannot happen today — every outcome is
// durable — but kept for future protocol versions).
func (r *Router) resolveRevoke(id, shard string, res *RevokeResult) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[id]
	if !ok || rec.State != StateRevoking {
		if ok {
			rec.revokeActive = false
		}
		return true
	}
	rec.revokeActive = false
	switch res.Outcome {
	case RevokeOutcomeRevoked:
		r.met.Revocations++
		if r.th.revocations != nil {
			r.th.revocations.Inc()
		}
		r.banAndRequeueLocked(rec, shard, "revoked from "+shard)
	case RevokeOutcomeTerminal:
		r.terminalLocked(rec, res.State, res.Reason, shard)
	case RevokeOutcomeInFlight:
		// The shard's engine owns it; rebind and wait for the terminal
		// notice. A later death sweeps it back into revocation.
		rec.State = StateHanded
		r.journal(journal.Record{Job: id, State: StateHanded, Shard: shard, Epoch: rec.epoch})
	default:
		rec.revokeActive = true
		return false
	}
	return true
}

// heartbeatLoop pings one shard forever, driving the failure detector and
// the shard's breaker.
func (r *Router) heartbeatLoop(name string) {
	defer r.wg.Done()
	client := r.clients[name]
	t := time.NewTicker(r.cfg.heartbeat())
	defer t.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.heartbeat())
		_, err := client.Ping(ctx)
		cancel()
		if err != nil {
			r.brk.Get(name).Failure(r.now())
			r.noteMiss(name)
			continue
		}
		r.brk.Get(name).Success(r.now())
		r.noteAlive(name)
	}
}

func (r *Router) noteMiss(name string) {
	r.mu.Lock()
	h := r.health[name]
	h.missed++
	dead := h.alive && h.missed >= r.cfg.deadAfter()
	if dead {
		h.alive = false
		r.met.ShardDeaths++
	}
	var sweep []string
	if dead {
		for id, rec := range r.records {
			if rec.State == StateHanded && rec.Shard == name {
				sweep = append(sweep, id)
			}
		}
		sort.Strings(sweep)
	}
	r.mu.Unlock()
	if !dead {
		return
	}
	if g := r.th.alive[name]; g != nil {
		g.Set(0)
	}
	if r.th.deaths != nil {
		r.th.deaths.Inc()
	}
	r.logf("federation: shard %s declared dead after %d missed heartbeats; revoking %d bound jobs",
		name, r.cfg.deadAfter(), len(sweep))
	for _, id := range sweep {
		r.beginRevoke(id, "shard "+name+" declared dead")
	}
}

func (r *Router) noteAlive(name string) {
	r.mu.Lock()
	h := r.health[name]
	h.missed = 0
	revived := !h.alive
	h.alive = true
	r.mu.Unlock()
	if revived {
		if g := r.th.alive[name]; g != nil {
			g.Set(1)
		}
		r.logf("federation: shard %s is back", name)
		// Queued jobs whose only eligible shard just returned are sitting
		// on requeue timers; nothing to do — the timer re-pushes them.
	}
}

// sleep waits d or until the router stops.
func (r *Router) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.stopc:
		return false
	}
}

// HandleJoin is the router side of a shard's rejoin handshake: replay the
// shard's terminal catch-up ledger, then rule on every held job — resume
// what the shard still owns, revoke what moved or finished elsewhere.
func (r *Router) HandleJoin(req *JoinRequest) *JoinResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range req.Terminal {
		r.applyTerminalLocked(&TerminalNotice{Shard: req.Shard, Job: t.ID, State: t.State, Reason: t.Reason})
	}
	resp := &JoinResponse{Decisions: make(map[string]string, len(req.Held))}
	for _, h := range req.Held {
		rec, ok := r.records[h.ID]
		switch {
		case !ok:
			// A job this router never saw (journal lost, or the shard
			// predates it): adopt the binding rather than orphan the job.
			rec = r.newRecordLocked(h.ID, "", 0, StateHanded)
			rec.Shard = req.Shard
			r.journal(journal.Record{Job: h.ID, State: StateHanded, Shard: req.Shard,
				Reason: "adopted from shard join"})
			resp.Decisions[h.ID] = JoinResume
		case rec.State == StateHanded && rec.Shard == req.Shard:
			resp.Decisions[h.ID] = JoinResume
		case rec.State == StateQueued:
			// We intended to place it and the shard already holds it:
			// adopt the existing binding.
			rec.State = StateHanded
			rec.Shard = req.Shard
			r.journal(journal.Record{Job: h.ID, State: StateHanded, Shard: req.Shard})
			resp.Decisions[h.ID] = JoinResume
		default:
			// Bound elsewhere, being revoked, or already terminal: the
			// shard must not run it. Its own revoked ledger entry (not
			// this advisory answer) is what frees the key. The current
			// epoch rides along so the tombstone refuses stale replays
			// but yields to a genuinely newer re-handoff.
			resp.Decisions[h.ID] = fmt.Sprintf("%s@%d", JoinRevoke, rec.epoch)
		}
	}
	r.logf("federation: join from %s: %d held ruled, %d terminal replayed",
		req.Shard, len(req.Held), len(req.Terminal))
	return resp
}

// HandleTerminal applies one terminal notice from a shard. Idempotent.
func (r *Router) HandleTerminal(n *TerminalNotice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applyTerminalLocked(n)
}

// applyTerminalLocked is the idempotent core of terminal-notice handling.
// Caller holds r.mu; the journal append inside makes the notice durable
// before the HTTP 200 that stops the shard's redelivery.
func (r *Router) applyTerminalLocked(n *TerminalNotice) {
	rec, ok := r.records[n.Job]
	if !ok {
		return // not ours (e.g. a key another router placed)
	}
	if routerTerminal(rec.State) {
		return
	}
	switch n.State {
	case service.StateRevoked:
		// Shard-terminal only: the job itself lives on (we revoked it
		// there); the revocation loop owns the transition.
		return
	case service.StateDrained:
		// The shard shut down without running it: ownership released, so
		// reallocate — unless the binding already moved.
		if rec.Shard == n.Shard && (rec.State == StateHanded || rec.State == StateRevoking) {
			r.met.Revocations++
			if r.th.revocations != nil {
				r.th.revocations.Inc()
			}
			r.banAndRequeueLocked(rec, n.Shard, "drained at "+n.Shard)
		}
		return
	default:
		if rec.Shard != "" && rec.Shard != n.Shard {
			// A shard we revoked away from still finished it first — that
			// can only be an inflight answer we rebound after, so the
			// notice is authoritative for that shard's execution.
			r.logf("federation: terminal notice for %s from %s but bound to %s", n.Job, n.Shard, rec.Shard)
			return
		}
		r.terminalLocked(rec, n.State, n.Reason, n.Shard)
	}
}

// Restore rebuilds the router ledger from a journal recovery. Queued jobs
// go back to dispatch; handed jobs are reconciled against their shard
// (terminal → mirrored, still owned → kept, unknown → revoked and
// reallocated); revoking jobs resume their revocation loop. Call before
// Start.
func (r *Router) Restore(rec *journal.Recovery) (int, error) {
	if rec == nil {
		return 0, nil
	}
	r.mu.Lock()
	n := 0
	var reconcile, revoking []string
	for _, js := range rec.Jobs {
		if _, dup := r.records[js.Job]; dup {
			continue
		}
		jr := r.newRecordLocked(js.Job, js.Strategy, js.Priority, js.State)
		jr.Shard = js.Shard
		jr.Reason = js.Reason
		jr.wire = js.Wire
		jr.epoch = js.Epoch
		jr.submitted = time.Time{}
		n++
		switch {
		case routerTerminal(js.State):
			// Done; nothing to do.
		case js.State == StateQueued:
			jr.Shard = ""
			r.pushLocked(js.Job)
		case js.State == StateRevoking:
			revoking = append(revoking, js.Job)
		default: // handed
			if _, known := r.clients[js.Shard]; !known {
				// Bound to a shard no longer in the fleet: requeue.
				jr.Shard = ""
				jr.State = StateQueued
				r.pushLocked(js.Job)
				continue
			}
			reconcile = append(reconcile, js.Job)
		}
	}
	r.mu.Unlock()
	for _, id := range revoking {
		r.beginRevoke(id, "recovered in-doubt revocation")
	}
	for _, id := range reconcile {
		r.wg.Add(1)
		go r.reconcile(id)
	}
	r.logf("federation: restored %d jobs (%d to reconcile, %d revoking)", n, len(reconcile), len(revoking))
	return n, nil
}

// reconcile resolves one recovered "handed" binding against the shard's
// durable ledger.
func (r *Router) reconcile(id string) {
	defer r.wg.Done()
	for attempt := 1; ; attempt++ {
		r.mu.Lock()
		rec, ok := r.records[id]
		if !ok || rec.State != StateHanded {
			r.mu.Unlock()
			return // a death sweep or notice got there first
		}
		shard := rec.Shard
		r.mu.Unlock()

		client := r.clients[shard]
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.handoffTimeout())
		srec, found, err := client.Record(ctx, id)
		cancel()
		if err == nil {
			if !found {
				// The shard never durably saw the handoff: revoke (plants
				// a tombstone against the in-flight frame) and reallocate.
				r.beginRevoke(id, "recovered handoff unknown at "+shard)
				return
			}
			if service.Terminal(srec.State) {
				if srec.State == service.StateRevoked {
					r.beginRevoke(id, "recovered handoff revoked at "+shard)
					return
				}
				r.HandleTerminal(&TerminalNotice{Shard: shard, Job: id, State: srec.State, Reason: srec.Reason})
				return
			}
			return // still owned and in progress; terminal notice will come
		}
		r.logf("federation: reconcile %s@%s attempt %d: %v", id, shard, attempt, err)
		if !r.sleep(r.backoff(attempt)) {
			return
		}
	}
}

// Job returns one router ledger entry.
func (r *Router) Job(id string) (JobView, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[id]
	if !ok {
		return JobView{}, false
	}
	return rec.view(), true
}

// Jobs returns the ledger sorted by submission order.
func (r *Router) Jobs() []JobView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobView, 0, len(r.records))
	for _, rec := range r.records {
		out = append(out, rec.view())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Metrics snapshots the router counters and per-shard health.
func (r *Router) Metrics() Metrics {
	r.mu.Lock()
	m := r.met
	m.Pending = len(r.pending)
	m.Handed, m.Revoking = 0, 0
	for _, rec := range r.records {
		switch rec.State {
		case StateHanded:
			m.Handed++
		case StateRevoking:
			m.Revoking++
		}
	}
	health := make(map[string]*shardHealth, len(r.health))
	for n, h := range r.health {
		c := *h
		health[n] = &c
	}
	r.mu.Unlock()
	now := r.now()
	m.Shards = make(map[string]ShardStatus, len(health))
	for n, h := range health {
		m.Shards[n] = ShardStatus{Alive: h.alive, Missed: h.missed, Breaker: r.brk.Get(n).State(now).String()}
	}
	return m
}

// Quiesced reports whether every ledgered job is terminal.
func (r *Router) Quiesced() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range r.records {
		if !routerTerminal(rec.State) {
			return false
		}
	}
	return true
}

// Drain stops admission, waits for in-flight jobs to settle (until ctx),
// marks what never dispatched as drained, and stops the loops.
func (r *Router) Drain(ctx context.Context) error {
	r.mu.Lock()
	r.met.Draining = true
	r.mu.Unlock()

	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
wait:
	for !r.Quiesced() {
		select {
		case <-ctx.Done():
			break wait
		case <-tick.C:
		}
	}

	r.mu.Lock()
	for _, rec := range r.records {
		if rec.State == StateQueued {
			r.terminalLocked(rec, service.StateDrained, "router shutdown before dispatch", "")
		}
	}
	r.mu.Unlock()
	r.Close()
	return ctx.Err()
}

// Close stops the background loops without waiting for jobs.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stopc)
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}
