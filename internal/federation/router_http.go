package federation

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobio"
	"repro/internal/service"
)

// SubmitRequest mirrors the service wire shape, so clients (and gridload)
// talk to a router exactly as they talk to a single gridd.
type SubmitRequest struct {
	jobio.Job
	Strategy string `json:"strategy,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

type errorBody struct {
	Error  string `json:"error"`
	Code   string `json:"code,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the router's HTTP API — the client-facing subset is
// shape-compatible with a shard's:
//
//	POST /v1/jobs                — submit (202, or the service error codes)
//	GET  /v1/jobs                — router ledger
//	GET  /v1/jobs/{id}           — one ledger entry
//	GET  /v1/metrics             — router counters (JSON)
//	GET  /metrics                — Prometheus text format
//	GET  /healthz                — liveness + per-shard health
//	GET  /readyz                 — 503 while draining
//	POST /v1/federation/join     — shard rejoin handshake
//	POST /v1/federation/terminal — shard terminal notice
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, r.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		view, ok := r.Job(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job", Reason: id})
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, r.Metrics())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		if r.cfg.Telemetry == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.cfg.Telemetry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "metrics": r.Metrics()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if r.Metrics().Draining {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /v1/federation/join", r.handleJoin)
	mux.HandleFunc("POST /v1/federation/terminal", r.handleTerminal)
	return mux
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var sr SubmitRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request", Code: service.CodeInvalid, Reason: err.Error()})
		return
	}
	view, err := r.Submit(sr.Job, sr.Strategy, sr.Priority)
	if err != nil {
		var se *service.SubmitError
		if !errors.As(err, &se) {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		status := http.StatusBadRequest
		switch se.Code {
		case service.CodeDuplicate:
			status = http.StatusConflict
		case service.CodeInfeasible:
			status = http.StatusUnprocessableEntity
		case service.CodeOverloaded:
			status = http.StatusTooManyRequests
		case service.CodeDraining:
			status = http.StatusServiceUnavailable
		case service.CodeInternal:
			status = http.StatusInternalServerError
		}
		if se.RetryAfter > 0 {
			secs := int((se.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, status, errorBody{Error: "rejected", Code: se.Code, Reason: se.Reason})
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (r *Router) handleJoin(w http.ResponseWriter, req *http.Request) {
	var jr JoinRequest
	if err := json.NewDecoder(req.Body).Decode(&jr); err != nil || jr.Shard == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad join request"})
		return
	}
	writeJSON(w, http.StatusOK, r.HandleJoin(&jr))
}

func (r *Router) handleTerminal(w http.ResponseWriter, req *http.Request) {
	var n TerminalNotice
	if err := json.NewDecoder(req.Body).Decode(&n); err != nil || n.Job == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad terminal notice"})
		return
	}
	// The journal append inside happens before this 200: acknowledging an
	// unpersisted terminal would let a router crash lose the only copy.
	r.HandleTerminal(&n)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
