package federation

import (
	"fmt"
	"testing"
)

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty shard name accepted")
	}
}

func TestRingWalkCoversEveryShardOnce(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3"}
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job-%d", i)
		walk := r.Walk(key)
		if len(walk) != len(shards) {
			t.Fatalf("walk(%s) = %v", key, walk)
		}
		seen := map[string]bool{}
		for _, s := range walk {
			if seen[s] {
				t.Fatalf("walk(%s) repeats %s: %v", key, s, walk)
			}
			seen[s] = true
		}
		if walk[0] != r.Owner(key) {
			t.Fatalf("owner(%s) = %s but walk starts %s", key, r.Owner(key), walk[0])
		}
	}
}

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	a, _ := NewRing([]string{"s2", "s0", "s1"}, 32)
	b, _ := NewRing([]string{"s0", "s1", "s2"}, 32) // order must not matter
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("job-%d", i)
		wa, wb := a.Walk(key), b.Walk(key)
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("walk(%s) differs: %v vs %v", key, wa, wb)
			}
		}
	}
}

// TestRingStabilityUnderShardLoss pins the consistent-hashing property the
// recovery ladder relies on: removing one shard must not move any key
// whose owner survives.
func TestRingStabilityUnderShardLoss(t *testing.T) {
	full, _ := NewRing([]string{"s0", "s1", "s2"}, 0)
	reduced, _ := NewRing([]string{"s0", "s1"}, 0)
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%d", i)
		was := full.Owner(key)
		now := reduced.Owner(key)
		if was != "s2" && was != now {
			t.Fatalf("key %s moved %s→%s though its owner survived", key, was, now)
		}
		if was == "s2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys ever owned by s2; distribution is broken")
	}
	// Equivalently: the survivor a dead shard's key falls to is the next
	// shard on the full ring's walk — exactly what dispatch does.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%d", i)
		if full.Owner(key) != "s2" {
			continue
		}
		walk := full.Walk(key)
		if reduced.Owner(key) != walk[1] {
			t.Fatalf("key %s: reduced owner %s, full walk fallback %s", key, reduced.Owner(key), walk[1])
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3"}
	r, _ := NewRing(shards, 0)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("job-%d", i))]++
	}
	for _, s := range shards {
		// Perfectly even would be n/4; insist each shard gets at least a
		// third of its fair share — a weak bound that catches gross skew
		// (e.g. all keys on one shard) without overfitting the hash.
		if counts[s] < n/12 {
			t.Fatalf("shard %s got %d of %d keys: %v", s, counts[s], n, counts)
		}
	}
}

func TestRingSingleShardOwnsEverything(t *testing.T) {
	r, _ := NewRing([]string{"only"}, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("job-%d", i)
		if r.Owner(key) != "only" || len(r.Walk(key)) != 1 {
			t.Fatalf("single-shard ring misroutes %s", key)
		}
	}
}
