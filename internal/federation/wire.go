// Package federation splits the paper's job flow across N metascheduler
// shards behind a thin front tier: a consistent-hash router (cmd/gridfront)
// partitions jobs across gridd shards over a small versioned HTTP wire
// protocol — idempotency-keyed handoffs, confirmed revocations and
// terminal-state notifications — with heartbeat-based shard failure
// detection feeding per-shard circuit breakers and a final recovery-ladder
// rung that reallocates a dead or exhausted shard's jobs to survivors.
// Handoffs are journaled on both sides (internal/journal), so a SIGKILL'd
// shard or router recovers in-flight handoffs exactly once through the
// existing duplicate guard. DESIGN.md §13 states the failure model and the
// exactly-once argument.
package federation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/jobio"
)

// Frame layout: magic "GFED" | 1-byte version | uint32 BE payload length |
// JSON payload | uint32 BE CRC32 (IEEE) of the payload. The CRC catches
// truncation and corruption before JSON ever runs; the version byte gates
// compatibility explicitly instead of by JSON-shape accident.
const (
	// Version is the wire protocol version this build speaks.
	Version = 1

	frameMagic    = "GFED"
	frameHeader   = 4 + 1 + 4 // magic + version + length
	frameTrailer  = 4         // crc
	maxFrameBytes = 16 << 20  // refuse absurd lengths before allocating
)

// The codec's typed errors, distinguishable by errors.Is.
var (
	ErrTruncated    = errors.New("federation: truncated frame")
	ErrBadMagic     = errors.New("federation: bad frame magic")
	ErrBadVersion   = errors.New("federation: unsupported protocol version")
	ErrBadCRC       = errors.New("federation: frame crc mismatch")
	ErrFrameTooBig  = errors.New("federation: frame exceeds size limit")
	ErrDuplicateKey = errors.New("federation: duplicate idempotency key in batch")
)

// Handoff is one job handoff (or cross-shard reallocation) from the router
// to a shard. Key is the idempotency key: retries, duplicated frames and
// re-sent batches all carry the same Key, and the shard's durable ledger
// collapses them into at most one accepted job.
type Handoff struct {
	// Key is the idempotency key — the job's globally unique name.
	Key string `json:"key"`
	// Origin names the router making the handoff.
	Origin string `json:"origin"`
	// Attempt counts delivery attempts for this binding, 1-based.
	Attempt int `json:"attempt,omitempty"`
	// Deadline, when non-zero, is the wall-clock instant (Unix
	// milliseconds) after which the router no longer wants an answer; a
	// shard drops expired handoffs instead of doing stale work.
	Deadline int64 `json:"deadlineUnixMilli,omitempty"`
	// Job is the full wire form of the job.
	Job jobio.Job `json:"job"`
	// Strategy and Priority carry the service-level submission fields.
	Strategy string `json:"strategy,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Realloc marks a cross-shard reallocation (the job was revoked from
	// FromShard after its owner died or exhausted its retry budget) as
	// opposed to a first placement.
	Realloc   bool   `json:"realloc,omitempty"`
	FromShard string `json:"fromShard,omitempty"`
	// Epoch is the router's reallocation round for this job: 0 for the
	// first binding, +1 after every confirmed revocation. A shard holding
	// a revoked tombstone for Key refuses handoffs whose Epoch is at or
	// below the tombstone's (stale replays of a revoked binding) but
	// resurrects the tombstone for a higher Epoch — the router only mints
	// one after confirming the job runs nowhere.
	Epoch int `json:"epoch,omitempty"`
}

// Validate checks the semantic invariants a decoded handoff must satisfy.
func (h *Handoff) Validate() error {
	if h.Key == "" {
		return fmt.Errorf("federation: handoff has empty idempotency key")
	}
	if h.Job.Name != h.Key {
		return fmt.Errorf("federation: handoff key %q does not match job name %q", h.Key, h.Job.Name)
	}
	return h.Job.Validate()
}

// HandoffResult is the shard's answer, returned as plain JSON in the HTTP
// response body.
type HandoffResult struct {
	Key string `json:"key"`
	// Accepted means the shard now durably owns the job (a fresh accept,
	// or a duplicate of an earlier accept — idempotent either way).
	Accepted bool `json:"accepted"`
	// Duplicate is set when the key was already in the shard's ledger;
	// State then reports the existing record's state. A duplicate in state
	// "revoked" is a tombstone: the router revoked this key here earlier,
	// so the job must NOT be considered accepted.
	Duplicate bool   `json:"duplicate,omitempty"`
	State     string `json:"state,omitempty"`
	// Code and Reason mirror service.SubmitError on a definitive or
	// retryable rejection.
	Code       string `json:"code,omitempty"`
	Reason     string `json:"reason,omitempty"`
	RetryAfter int    `json:"retryAfterSeconds,omitempty"`
}

// RevokeRequest asks a shard to give a job back (or never accept it).
type RevokeRequest struct {
	Key    string `json:"key"`
	Origin string `json:"origin"`
	Reason string `json:"reason,omitempty"`
	// Epoch is the reallocation round being revoked; the shard stamps it
	// into the tombstone (see Handoff.Epoch).
	Epoch int `json:"epoch,omitempty"`
}

// Revoke outcomes.
const (
	// RevokeOutcomeRevoked — the shard will never execute the job: it was
	// still queued (now revoked), held from recovery (now revoked), or
	// never seen (a tombstone was planted under the key).
	RevokeOutcomeRevoked = "revoked"
	// RevokeOutcomeInFlight — the shard's engine already owns the job; it
	// will reach a terminal state here and cannot be taken back.
	RevokeOutcomeInFlight = "inflight"
	// RevokeOutcomeTerminal — the job already finished here; State/Reason
	// carry the result.
	RevokeOutcomeTerminal = "terminal"
)

// RevokeResult is the shard's confirmed answer to a revocation.
type RevokeResult struct {
	Key     string `json:"key"`
	Outcome string `json:"outcome"` // revoked | inflight | terminal
	State   string `json:"state,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// JoinJob is one ledger entry in a shard's join handshake.
type JoinJob struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
}

// JoinRequest is the rejoin handshake a shard sends its router on startup:
// Held lists recovered non-terminal jobs parked until the router rules on
// each; Terminal is the catch-up ledger of results whose notifications may
// have been lost while the shard was down.
type JoinRequest struct {
	Shard    string    `json:"shard"`
	Held     []JoinJob `json:"held,omitempty"`
	Terminal []JoinJob `json:"terminal,omitempty"`
}

// Join decisions.
const (
	JoinResume = "resume" // the shard still owns the job: requeue it
	// JoinRevoke — ownership moved while the shard was down: drop it. The
	// router appends "@N" with its reallocation epoch so the resulting
	// tombstone refuses stale handoff replays (see Handoff.Epoch).
	JoinRevoke = "revoke"
)

// JoinResponse maps each held job ID to a decision. The response is advice
// the shard acts on; the router only treats a job as reclaimed once a
// confirmed Revoke round-trip (or this shard's own revoked ledger entry)
// proves the shard will not run it.
type JoinResponse struct {
	Decisions map[string]string `json:"decisions"`
}

// TerminalNotice tells the router a job reached a terminal state on a
// shard. Idempotent: the router ignores repeats and stale mismatches.
type TerminalNotice struct {
	Shard  string `json:"shard"`
	Job    string `json:"job"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
}

// appendFrame frames one JSON payload.
func appendFrame(dst, payload []byte) []byte {
	dst = append(dst, frameMagic...)
	dst = append(dst, byte(Version))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return dst
}

// readFrame parses one frame at the head of b, returning the payload and
// the remaining bytes.
func readFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < frameHeader {
		return nil, nil, ErrTruncated
	}
	if string(b[:4]) != frameMagic {
		return nil, nil, ErrBadMagic
	}
	if v := b[4]; v != Version {
		return nil, nil, fmt.Errorf("%w: got %d, speak %d", ErrBadVersion, v, Version)
	}
	n := binary.BigEndian.Uint32(b[5:9])
	if n > maxFrameBytes {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	total := frameHeader + int(n) + frameTrailer
	if len(b) < total {
		return nil, nil, ErrTruncated
	}
	payload = b[frameHeader : frameHeader+int(n)]
	want := binary.BigEndian.Uint32(b[frameHeader+int(n):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, nil, fmt.Errorf("%w: frame says %08x, content is %08x", ErrBadCRC, want, got)
	}
	return payload, b[total:], nil
}
