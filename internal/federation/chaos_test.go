package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/metasched"
	"repro/internal/service"
)

// The federation partition/chaos harness. The test binary re-execs itself
// as a miniature gridd shard or gridfront router (TestMain dispatches on
// GRIDFED_CHILD). The parent runs seeded cycles of:
//
//   - job bursts submitted to the router,
//   - SIGKILL + restart of shards and of the router itself (same journal
//     directories, same fixed ports),
//   - seeded network faults on every router↔shard link (drop, delay,
//     duplicate, ack-loss) plus scheduled full-partition (sever) windows,
//
// and asserts the two federation invariants at the end, with faults off:
//
//  1. zero accepted-job loss — every ID the router 202'd reaches a
//     terminal state in the router ledger;
//  2. zero double-execution — each such job has a non-revoked terminal
//     record on AT MOST one shard, and exactly one when it completed or
//     was rejected.
//
// Availability during partitions is pinned by TestDeadShardSweep at the
// unit level (a survivor admits while a peer is dead); here it shows up
// as the run converging at all.

const (
	fedChildEnv  = "GRIDFED_CHILD" // "shard" | "router"
	fedDirEnv    = "GRIDFED_DIR"
	fedAddrEnv   = "GRIDFED_ADDR"   // fixed listen address
	fedRouterEnv = "GRIDFED_ROUTER" // router base URL (shard children)
	fedShardsEnv = "GRIDFED_SHARDS" // "s0=url,s1=url" (router child)
	fedNameEnv   = "GRIDFED_NAME"
	fedSeedEnv   = "GRIDFED_SEED"
	fedFaultsEnv = "GRIDFED_FAULTS" // "1" arms fault injection + sever windows
)

func TestMain(m *testing.M) {
	switch os.Getenv(fedChildEnv) {
	case "shard":
		fedShardChild()
		return
	case "router":
		fedRouterChild()
		return
	}
	os.Exit(m.Run())
}

func childEnvSeed() uint64 {
	n, _ := strconv.ParseUint(os.Getenv(fedSeedEnv), 10, 64)
	if n == 0 {
		n = 1
	}
	return n
}

func childListen(addr string) net.Listener {
	// The port is fixed across incarnations so peers can find this
	// process again after a SIGKILL; retry briefly while the kernel
	// releases the dead incarnation's socket.
	var lastErr error
	for i := 0; i < 100; i++ {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "child: listen %s: %v\n", addr, lastErr)
	os.Exit(1)
	return nil
}

// fedShardChild is one re-exec'd metascheduler shard: journal + held
// recovery + lease-gated engine + federation member endpoints.
func fedShardChild() {
	name := os.Getenv(fedNameEnv)
	dir := os.Getenv(fedDirEnv)
	routerURL := os.Getenv(fedRouterEnv)
	seed := childEnvSeed()

	jnl, recovered, err := journal.Open(journal.Options{
		Dir: dir, Fsync: journal.FsyncAlways, IsTerminal: service.Terminal,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard %s: journal: %v\n", name, err)
		os.Exit(1)
	}
	lease := NewLease(400 * time.Millisecond)
	var client *http.Client
	if os.Getenv(fedFaultsEnv) == "1" {
		// The shard→router direction gets mild ack-loss/dup faults too:
		// terminal notices and join handshakes must survive redelivery.
		client = &http.Client{Timeout: 2 * time.Second, Transport: NewFaultTransport(FaultPlan{
			Seed: seed + fnv1a(name), Drop: 0.05, AckLoss: 0.05, Dup: 0.05,
		}, nil)}
	}
	member := NewMember(MemberConfig{
		Shard: name, Router: routerURL, Lease: lease, Client: client,
		RetryBase: 50 * time.Millisecond, RetryCap: time.Second, Seed: seed,
		Logf: func(f string, a ...any) { fmt.Fprintf(os.Stderr, "shard %s: "+f+"\n", append([]any{name}, a...)...) },
	})
	svc, err := service.New(service.Config{
		Env:           testEnv(),
		Sched:         metasched.Config{Seed: seed},
		QueueCap:      256,
		Journal:       jnl,
		HoldRecovered: true,
		Gate:          lease.Fresh,
		OnTerminal:    member.Terminal,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard %s: new: %v\n", name, err)
		os.Exit(1)
	}
	lease.OnRefresh(svc.Kick)
	if _, err := svc.Restore(recovered); err != nil {
		fmt.Fprintf(os.Stderr, "shard %s: restore: %v\n", name, err)
		os.Exit(1)
	}
	svc.Start()
	member.Bind(svc)
	member.Start()

	l := childListen(os.Getenv(fedAddrEnv))
	go http.Serve(l, member.Handler(svc.Handler()))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	<-sigc
	member.Close()
	if err := svc.Drain(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "shard %s: drain: %v\n", name, err)
		os.Exit(1)
	}
	if err := jnl.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "shard %s: close journal: %v\n", name, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// fedRouterChild is the re-exec'd front tier: journaled router over HTTP
// shards, with per-link fault transports and a seeded sever scheduler.
func fedRouterChild() {
	dir := os.Getenv(fedDirEnv)
	seed := childEnvSeed()
	faultsOn := os.Getenv(fedFaultsEnv) == "1"

	jnl, recovered, err := journal.Open(journal.Options{
		Dir: dir, Fsync: journal.FsyncAlways, IsTerminal: service.Terminal,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "router: journal: %v\n", err)
		os.Exit(1)
	}
	var shards []ShardClient
	var links []*FaultTransport
	for _, kv := range strings.Split(os.Getenv(fedShardsEnv), ",") {
		name, url, ok := strings.Cut(kv, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "router: bad shard spec %q\n", kv)
			os.Exit(1)
		}
		client := &http.Client{}
		if faultsOn {
			ft := NewFaultTransport(FaultPlan{
				Seed: seed + fnv1a(name), Drop: 0.1, AckLoss: 0.1, Dup: 0.1,
				Delay: 0.2, DelayMax: 150 * time.Millisecond,
			}, nil)
			links = append(links, ft)
			client.Transport = ft
		}
		shards = append(shards, NewHTTPShard(name, url, client))
	}
	r, err := New(Config{
		Shards:            shards,
		Journal:           jnl,
		Seed:              seed,
		HeartbeatInterval: 100 * time.Millisecond,
		DeadAfter:         5,
		RetryBudget:       3,
		RetryBase:         50 * time.Millisecond,
		RetryCap:          500 * time.Millisecond,
		HandoffTimeout:    time.Second,
		Logf:              func(f string, a ...any) { fmt.Fprintf(os.Stderr, "router: "+f+"\n", a...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "router: new: %v\n", err)
		os.Exit(1)
	}
	if _, err := r.Restore(recovered); err != nil {
		fmt.Fprintf(os.Stderr, "router: restore: %v\n", err)
		os.Exit(1)
	}
	r.Start()

	if faultsOn && len(links) > 0 {
		// Seeded partition scheduler: sever one link at a time for a
		// window shorter than the death timeout about half the time, and
		// longer (forcing a death + revoke sweep) the rest.
		go func() {
			pr := rand.New(rand.NewSource(int64(seed)))
			for {
				time.Sleep(time.Duration(200+pr.Intn(400)) * time.Millisecond)
				ft := links[pr.Intn(len(links))]
				ft.Sever(true)
				time.Sleep(time.Duration(200+pr.Intn(600)) * time.Millisecond)
				ft.Sever(false)
			}
		}()
	}

	l := childListen(os.Getenv(fedAddrEnv))
	go http.Serve(l, r.Handler())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	<-sigc
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "router: drain: %v\n", err)
		os.Exit(1)
	}
	if err := jnl.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "router: close journal: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// fedProc is one child process managed by the parent.
type fedProc struct {
	cmd  *exec.Cmd
	addr string
	out  bytes.Buffer
}

func (p *fedProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	p.cmd.Wait()
}

func spawnFed(t *testing.T, role, name, dir, addr string, extraEnv ...string) *fedProc {
	t.Helper()
	p := &fedProc{addr: addr}
	p.cmd = exec.Command(os.Args[0], "-test.run=NONE")
	p.cmd.Env = append(os.Environ(),
		fedChildEnv+"="+role, fedNameEnv+"="+name, fedDirEnv+"="+dir, fedAddrEnv+"="+addr)
	p.cmd.Env = append(p.cmd.Env, extraEnv...)
	p.cmd.Stdout = &p.out
	p.cmd.Stderr = &p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("spawn %s: %v", role, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.kill(t)
	t.Fatalf("%s %s never became healthy; output:\n%s", role, name, p.out.String())
	return nil
}

// freeAddr reserves a distinct loopback port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func fedSubmit(addr, id string, deadline int64) (int, error) {
	body, _ := json.Marshal(SubmitRequest{Job: testJob(id, deadline), Strategy: "S1"})
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func fedJobs(t *testing.T, addr string) map[string]JobView {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/jobs")
	if err != nil {
		t.Fatalf("list jobs: %v", err)
	}
	defer resp.Body.Close()
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatalf("decode jobs: %v", err)
	}
	out := make(map[string]JobView, len(views))
	for _, v := range views {
		out[v.ID] = v
	}
	return out
}

func shardJobs(t *testing.T, addr string) map[string]service.Record {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/jobs")
	if err != nil {
		t.Fatalf("list shard jobs: %v", err)
	}
	defer resp.Body.Close()
	var recs []service.Record
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatalf("decode shard jobs: %v", err)
	}
	out := make(map[string]service.Record, len(recs))
	for _, r := range recs {
		out[r.ID] = r
	}
	return out
}

func TestFederationPartitionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos harness skipped in -short")
	}
	cycles := 20
	if v := os.Getenv("GRIDFED_CHAOS_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("GRIDFED_CHAOS_CYCLES: %v", err)
		}
		cycles = n
	}
	seed := int64(1)
	if v := os.Getenv("GRIDFED_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("GRIDFED_CHAOS_SEED: %v", err)
		}
		seed = n
	}
	rng := rand.New(rand.NewSource(seed))

	const nShards = 2
	shardDirs := make([]string, nShards)
	shardAddrs := make([]string, nShards)
	shardNames := make([]string, nShards)
	var specs []string
	for i := 0; i < nShards; i++ {
		shardDirs[i] = t.TempDir()
		shardAddrs[i] = freeAddr(t)
		shardNames[i] = fmt.Sprintf("s%d", i)
		specs = append(specs, shardNames[i]+"=http://"+shardAddrs[i])
	}
	routerDir := t.TempDir()
	routerAddr := freeAddr(t)
	routerURL := "http://" + routerAddr
	shardSpec := strings.Join(specs, ",")

	seedEnv := fedSeedEnv + "=" + strconv.FormatInt(seed, 10)
	spawnShard := func(i int, faults string) *fedProc {
		return spawnFed(t, "shard", shardNames[i], shardDirs[i], shardAddrs[i],
			fedRouterEnv+"="+routerURL, seedEnv, fedFaultsEnv+"="+faults)
	}
	spawnRouter := func(faults string) *fedProc {
		return spawnFed(t, "router", "router", routerDir, routerAddr,
			fedShardsEnv+"="+shardSpec, seedEnv, fedFaultsEnv+"="+faults)
	}

	shards := make([]*fedProc, nShards)
	for i := range shards {
		shards[i] = spawnShard(i, "1")
	}
	router := spawnRouter("1")

	accepted := map[string]bool{}
	var acceptedOrder []string

	for cycle := 0; cycle < cycles; cycle++ {
		// A seeded burst of jobs; roughly one in six is infeasible so the
		// rejected path stays under chaos too.
		for i, n := 0, 2+rng.Intn(4); i < n; i++ {
			id := fmt.Sprintf("c%d-j%d", cycle, i)
			deadline := int64(60)
			if rng.Intn(6) == 0 {
				deadline = 1
			}
			code, err := fedSubmit(routerAddr, id, deadline)
			if err != nil {
				continue // torn by a concurrent router kill: never acknowledged
			}
			switch code {
			case http.StatusAccepted:
				accepted[id] = true
				acceptedOrder = append(acceptedOrder, id)
			case http.StatusServiceUnavailable, http.StatusTooManyRequests:
				// backpressure: owes us nothing
			default:
				t.Fatalf("cycle %d: submit %s = %d\nrouter output:\n%s", cycle, id, code, router.out.String())
			}
		}
		// Duplicate probe: an accepted ID must stay refused across any
		// combination of restarts and partitions.
		if len(acceptedOrder) > 0 {
			dup := acceptedOrder[rng.Intn(len(acceptedOrder))]
			if code, err := fedSubmit(routerAddr, dup, 60); err == nil &&
				code != http.StatusConflict && code != http.StatusServiceUnavailable {
				t.Fatalf("cycle %d: resubmit of %s = %d, want 409", cycle, dup, code)
			}
		}

		time.Sleep(time.Duration(rng.Intn(120)) * time.Millisecond)

		switch action := rng.Intn(10); {
		case action < 5: // SIGKILL + restart one shard
			i := rng.Intn(nShards)
			shards[i].kill(t)
			time.Sleep(time.Duration(rng.Intn(200)) * time.Millisecond)
			shards[i] = spawnShard(i, "1")
		case action < 7: // SIGKILL + restart the router
			router.kill(t)
			// Zero accepted-job loss, part one: a 202 means the accept
			// was fsynced into the router journal before the response.
			rec, err := journal.Recover(routerDir)
			if err != nil {
				t.Fatalf("cycle %d: router journal unreadable: %v", cycle, err)
			}
			onDisk := map[string]bool{}
			for _, js := range rec.Jobs {
				onDisk[js.Job] = true
			}
			for id := range accepted {
				if !onDisk[id] {
					t.Fatalf("cycle %d: accepted job %s missing from router journal after SIGKILL", cycle, id)
				}
			}
			router = spawnRouter("1")
		case action == 7: // shard and router die together
			i := rng.Intn(nShards)
			shards[i].kill(t)
			router.kill(t)
			router = spawnRouter("1")
			shards[i] = spawnShard(i, "1")
		default: // no kill this cycle; partitions and faults keep running
		}
	}

	// Heal the fleet: restart everything with fault injection off and let
	// the recovery ladder finish its work.
	router.kill(t)
	for i := range shards {
		shards[i].kill(t)
		shards[i] = spawnShard(i, "0")
	}
	router = spawnRouter("0")

	deadline := time.Now().Add(120 * time.Second)
	for {
		views := fedJobs(t, routerAddr)
		pending := 0
		for id := range accepted {
			v, ok := views[id]
			if !ok {
				t.Fatalf("accepted job %s lost from router ledger", id)
			}
			if !service.Terminal(v.State) {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			for id := range accepted {
				if v := views[id]; !service.Terminal(v.State) {
					t.Logf("stuck: %+v", v)
				}
			}
			t.Fatalf("%d accepted jobs still non-terminal\nrouter output:\n%s", pending, router.out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Zero double-execution: each accepted job has a non-revoked terminal
	// record on at most one shard — exactly one when it completed or was
	// rejected — and the router fate matches that shard's ledger.
	views := fedJobs(t, routerAddr)
	ledgers := make([]map[string]service.Record, nShards)
	for i := range shards {
		ledgers[i] = shardJobs(t, shardAddrs[i])
	}
	execStates := map[string]bool{service.StateCompleted: true, service.StateRejected: true}
	for id := range accepted {
		v := views[id]
		var holders []string
		for i := range ledgers {
			if rec, ok := ledgers[i][id]; ok && execStates[rec.State] {
				holders = append(holders, shardNames[i])
				if execStates[v.State] && rec.State != v.State {
					t.Errorf("job %s: router says %q, shard %s says %q", id, v.State, shardNames[i], rec.State)
				}
			}
		}
		if len(holders) > 1 {
			t.Errorf("job %s executed on %d shards: %v", id, len(holders), holders)
		}
		if execStates[v.State] && len(holders) != 1 {
			t.Errorf("job %s is %q at the router but on %d shard ledgers", id, v.State, len(holders))
		}
	}

	// Graceful teardown: the router drains clean, then the shards.
	if err := router.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := router.cmd.Wait(); err != nil {
		t.Fatalf("router drain failed: %v\noutput:\n%s", err, router.out.String())
	}
	for i, p := range shards {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("shard %d drain failed: %v\noutput:\n%s", i, err, p.out.String())
		}
	}
	t.Logf("chaos: %d cycles, %d accepted, all terminal exactly once", cycles, len(accepted))
}
