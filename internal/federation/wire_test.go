package federation

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/jobio"
)

func testJob(name string, deadline int64) jobio.Job {
	return jobio.Job{
		Name:     name,
		Deadline: deadline,
		Tasks: []jobio.Task{
			{Name: "A", BaseTime: 2, Volume: 10},
			{Name: "B", BaseTime: 3, Volume: 15},
		},
		Edges: []jobio.Edge{{Name: "d", From: "A", To: "B", BaseTime: 1, Volume: 5}},
	}
}

func testHandoff(key string) *Handoff {
	return &Handoff{Key: key, Origin: "gridfront", Attempt: 1,
		Job: testJob(key, 60), Strategy: "S1", Priority: 2}
}

func TestHandoffRoundTrip(t *testing.T) {
	h := testHandoff("j1")
	h.Realloc = true
	h.FromShard = "shard-0"
	h.Deadline = 1234567890
	frame, err := EncodeHandoff(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHandoff(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != "j1" || got.Job.Name != "j1" || got.Strategy != "S1" ||
		got.Priority != 2 || !got.Realloc || got.FromShard != "shard-0" ||
		got.Deadline != 1234567890 || len(got.Job.Tasks) != 2 {
		t.Fatalf("round trip mangled the handoff: %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	frame, err := EncodeHandoff(testHandoff("j1"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   error
	}{
		{"truncated header", func(b []byte) []byte { return b[:4] }, ErrTruncated},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-8] }, ErrTruncated},
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { c := clone(b); c[4] = 99; return c }, ErrBadVersion},
		{"flipped payload bit", func(b []byte) []byte { c := clone(b); c[frameHeader+3] ^= 0x40; return c }, ErrBadCRC},
		{"flipped crc", func(b []byte) []byte { c := clone(b); c[len(c)-1] ^= 0x01; return c }, ErrBadCRC},
		{"absurd length", func(b []byte) []byte {
			c := clone(b)
			c[5], c[6], c[7], c[8] = 0xff, 0xff, 0xff, 0xff
			return c
		}, ErrFrameTooBig},
	}
	for _, tc := range cases {
		if _, err := DecodeHandoff(tc.mangle(frame)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Trailing garbage after a valid frame is refused too.
	if _, err := DecodeHandoff(append(clone(frame), 0xde, 0xad)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestDecodeRejectsSemanticViolations(t *testing.T) {
	// Key/name mismatch.
	h := testHandoff("j1")
	h.Job.Name = "other"
	frame, err := EncodeHandoff(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeHandoff(frame); err == nil {
		t.Error("key/name mismatch accepted")
	}
	// Empty key.
	h2 := testHandoff("")
	frame2, err := EncodeHandoff(h2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeHandoff(frame2); err == nil {
		t.Error("empty idempotency key accepted")
	}
}

func TestBatchRoundTripAndDuplicateRefusal(t *testing.T) {
	hs := []Handoff{*testHandoff("a"), *testHandoff("b"), *testHandoff("c")}
	b, err := EncodeBatch(hs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Key != "a" || got[2].Key != "c" {
		t.Fatalf("batch round trip = %d frames", len(got))
	}
	// Duplicated idempotency key: refused at encode...
	if _, err := EncodeBatch([]Handoff{*testHandoff("a"), *testHandoff("a")}); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("encode dup = %v, want ErrDuplicateKey", err)
	}
	// ...and at decode, when a buggy or malicious peer concatenates frames.
	single, _ := EncodeHandoff(testHandoff("a"))
	if _, err := DecodeBatch(append(clone(single), single...)); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("decode dup = %v, want ErrDuplicateKey", err)
	}
	// A torn tail inside a batch is a truncation, not a partial success.
	if _, err := DecodeBatch(b[:len(b)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("torn batch = %v, want ErrTruncated", err)
	}
	// Empty batch decodes to nothing.
	if got, err := DecodeBatch(nil); err != nil || len(got) != 0 {
		t.Errorf("empty batch = (%v, %v)", got, err)
	}
}

// FuzzHandoffDecode throws mutated frames at both decoders. The decoders
// must never panic, and anything DecodeBatch accepts must re-encode and
// re-decode to the same batch (the codec is a bijection on valid inputs).
func FuzzHandoffDecode(f *testing.F) {
	single, err := EncodeHandoff(testHandoff("fuzz-seed"))
	if err != nil {
		f.Fatal(err)
	}
	batch, err := EncodeBatch([]Handoff{*testHandoff("a"), *testHandoff("b")})
	if err != nil {
		f.Fatal(err)
	}
	dup := append(clone(single), single...)
	badVersion := clone(single)
	badVersion[4] = 7
	mismatched, _ := EncodeHandoff(&Handoff{Key: "k", Job: testJob("not-k", 60)})

	f.Add(single)
	f.Add(batch)
	f.Add(dup)
	f.Add(badVersion)
	f.Add(single[:len(single)/2]) // truncated
	f.Add(mismatched)
	f.Add([]byte("GFED"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := DecodeHandoff(data); err == nil {
			re, err := EncodeHandoff(h)
			if err != nil {
				t.Fatalf("decoded handoff does not re-encode: %v", err)
			}
			h2, err := DecodeHandoff(re)
			if err != nil {
				t.Fatalf("re-encoded handoff does not decode: %v", err)
			}
			if h2.Key != h.Key || h2.Job.Name != h.Job.Name {
				t.Fatalf("round trip changed key %q→%q", h.Key, h2.Key)
			}
		}
		hs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		seen := make(map[string]struct{}, len(hs))
		for i := range hs {
			if _, dup := seen[hs[i].Key]; dup {
				t.Fatalf("DecodeBatch accepted duplicate key %q", hs[i].Key)
			}
			seen[hs[i].Key] = struct{}{}
			if hs[i].Key == "" || hs[i].Key != hs[i].Job.Name {
				t.Fatalf("DecodeBatch accepted invalid handoff %+v", hs[i])
			}
		}
		re, err := EncodeBatch(hs)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		hs2, err := DecodeBatch(re)
		if err != nil || len(hs2) != len(hs) {
			t.Fatalf("batch round trip = (%d, %v), want %d", len(hs2), err, len(hs))
		}
	})
}

func TestFrameAppendIsPureConcatenation(t *testing.T) {
	a, _ := EncodeHandoff(testHandoff("a"))
	b, _ := EncodeHandoff(testHandoff("b"))
	batch, _ := EncodeBatch([]Handoff{*testHandoff("a"), *testHandoff("b")})
	if !bytes.Equal(batch, append(clone(a), b...)) {
		t.Fatal("batch encoding is not frame concatenation")
	}
}
