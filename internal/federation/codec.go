package federation

import (
	"encoding/json"
	"fmt"
)

// EncodeHandoff renders one handoff as a single wire frame.
func EncodeHandoff(h *Handoff) ([]byte, error) {
	payload, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("federation: encode handoff: %w", err)
	}
	return appendFrame(make([]byte, 0, frameHeader+len(payload)+frameTrailer), payload), nil
}

// DecodeHandoff parses exactly one framed handoff. Trailing bytes after
// the frame are an error — a single-handoff body is a single frame.
func DecodeHandoff(b []byte) (*Handoff, error) {
	payload, rest, err := readFrame(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("federation: %d trailing bytes after handoff frame", len(rest))
	}
	var h Handoff
	if err := json.Unmarshal(payload, &h); err != nil {
		return nil, fmt.Errorf("federation: bad handoff payload: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// EncodeBatch renders a reallocation batch as concatenated frames.
// Duplicate idempotency keys are refused at encode time too: a batch is a
// set of distinct jobs by construction.
func EncodeBatch(hs []Handoff) ([]byte, error) {
	seen := make(map[string]struct{}, len(hs))
	var out []byte
	for i := range hs {
		h := &hs[i]
		if _, dup := seen[h.Key]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateKey, h.Key)
		}
		seen[h.Key] = struct{}{}
		payload, err := json.Marshal(h)
		if err != nil {
			return nil, fmt.Errorf("federation: encode batch: %w", err)
		}
		out = appendFrame(out, payload)
	}
	return out, nil
}

// DecodeBatch parses a concatenation of handoff frames, refusing
// truncation, bad versions, corrupt frames and duplicated idempotency
// keys anywhere in the batch.
func DecodeBatch(b []byte) ([]Handoff, error) {
	var out []Handoff
	seen := make(map[string]struct{})
	for len(b) > 0 {
		payload, rest, err := readFrame(b)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", len(out), err)
		}
		var h Handoff
		if err := json.Unmarshal(payload, &h); err != nil {
			return nil, fmt.Errorf("frame %d: federation: bad handoff payload: %w", len(out), err)
		}
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("frame %d: %w", len(out), err)
		}
		if _, dup := seen[h.Key]; dup {
			return nil, fmt.Errorf("frame %d: %w: %q", len(out), ErrDuplicateKey, h.Key)
		}
		seen[h.Key] = struct{}{}
		out = append(out, h)
		b = rest
	}
	return out, nil
}
