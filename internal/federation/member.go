package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Lease tracks the freshness of router contact on a shard. The service's
// dequeue gate closes when the lease goes stale, so a shard partitioned
// away from its router stops STARTING new jobs (already-started ones
// finish) — which keeps its queue revocable and lets the router reallocate
// it. Every router contact (ping, handoff, revoke) refreshes the lease.
//
// Safety does not depend on the lease: a shard that raced a job into its
// engine before the lease expired simply answers "inflight" to the revoke
// and the router leaves the job bound. The lease only shrinks that window.
type Lease struct {
	timeout time.Duration
	last    atomic.Int64 // unix nanos of the most recent router contact
	kick    atomic.Value // func(): re-evaluate the service gate
}

// NewLease returns a lease that is fresh now. timeout ≤ 0 never expires
// (standalone mode).
func NewLease(timeout time.Duration) *Lease {
	l := &Lease{timeout: timeout}
	l.last.Store(time.Now().UnixNano())
	return l
}

// OnRefresh registers the callback run after every refresh — the service's
// Kick, so a gated engine loop wakes up.
func (l *Lease) OnRefresh(f func()) { l.kick.Store(f) }

// Refresh records router contact now.
func (l *Lease) Refresh() {
	l.last.Store(time.Now().UnixNano())
	if f, ok := l.kick.Load().(func()); ok && f != nil {
		f()
	}
}

// Fresh reports whether the shard has heard from its router recently
// enough to keep starting new work.
func (l *Lease) Fresh() bool {
	if l == nil || l.timeout <= 0 {
		return true
	}
	return time.Since(time.Unix(0, l.last.Load())) < l.timeout
}

// MemberConfig configures a shard's federation glue.
type MemberConfig struct {
	// Shard is this shard's name in the fleet. Required.
	Shard string
	// Router is the router's base URL. Empty runs the member in standalone
	// mode: the federation endpoints still serve (so a router can adopt
	// the shard later) but no join handshake or terminal notifications are
	// sent.
	Router string
	// Lease, when non-nil, is refreshed on every router contact.
	Lease *Lease
	// Client is the HTTP client for join/terminal calls. nil uses a
	// 5-second-timeout default.
	Client *http.Client
	// RetryBase/RetryCap bound the jittered exponential backoff between
	// join and terminal-notification attempts. Defaults 100ms / 5s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// JitterFrac spreads the backoff (default 0.2); Seed drives it.
	JitterFrac float64
	Seed       uint64
	// Telemetry exports grid_fed_member_* counters. nil disables.
	Telemetry *telemetry.Registry
	// Logf receives operational log lines. nil discards.
	Logf func(format string, args ...any)
}

func (c MemberConfig) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return 100 * time.Millisecond
	}
	return c.RetryBase
}

func (c MemberConfig) retryCap() time.Duration {
	if c.RetryCap <= 0 {
		return 5 * time.Second
	}
	return c.RetryCap
}

func (c MemberConfig) jitterFrac() float64 {
	if c.JitterFrac == 0 {
		return 0.2
	}
	return c.JitterFrac
}

// Member is the shard-side half of the federation protocol: it serves the
// handoff/revoke/ping endpoints in front of a service.Server, runs the
// rejoin handshake for held recovered jobs, and pushes terminal-state
// notifications to the router. Create it BEFORE the service so its
// Terminal method can be wired as service.Config.OnTerminal, then Bind the
// server and Start.
type Member struct {
	cfg MemberConfig
	svc *service.Server
	r   *rng.Source // notifier/join goroutines only

	mu      sync.Mutex
	cond    *sync.Cond
	notices []TerminalNotice
	closed  bool

	wg sync.WaitGroup

	handoffs, revokes, notifies, joins *telemetry.Counter
}

// NewMember builds the member. Bind must be called before Handler or
// Start.
func NewMember(cfg MemberConfig) *Member {
	m := &Member{cfg: cfg, r: rng.New(cfg.Seed).Split(fnv1a(cfg.Shard))}
	m.cond = sync.NewCond(&m.mu)
	if reg := cfg.Telemetry; reg != nil {
		l := telemetry.L("shard", cfg.Shard)
		m.handoffs = reg.Counter("grid_fed_member_handoffs_total", "handoff frames processed by the shard", l)
		m.revokes = reg.Counter("grid_fed_member_revokes_total", "revoke requests processed by the shard", l)
		m.notifies = reg.Counter("grid_fed_member_terminal_notices_total", "terminal notices delivered to the router", l)
		m.joins = reg.Counter("grid_fed_member_joins_total", "join handshakes completed", l)
	}
	return m
}

func (m *Member) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

func (m *Member) client() *http.Client {
	if m.cfg.Client != nil {
		return m.cfg.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Bind attaches the service the member fronts.
func (m *Member) Bind(svc *service.Server) { m.svc = svc }

// Terminal is the service.Config.OnTerminal hook: it enqueues a terminal
// notice for the router. It runs under the service's lock and returns
// immediately; delivery happens on the notifier goroutine.
func (m *Member) Terminal(rec service.Record) {
	if m.cfg.Router == "" {
		return
	}
	m.mu.Lock()
	m.notices = append(m.notices, TerminalNotice{
		Shard: m.cfg.Shard, Job: rec.ID, State: rec.State, Reason: rec.Reason,
	})
	m.cond.Signal()
	m.mu.Unlock()
}

// Start launches the join handshake and the terminal notifier. Call after
// Bind (and after service.Restore, so Held is complete).
func (m *Member) Start() {
	if m.cfg.Router == "" {
		return
	}
	m.wg.Add(2)
	go m.joinLoop()
	go m.notifyLoop()
}

// Close stops the background loops. In-memory notices not yet delivered
// are dropped — the join handshake of the next incarnation re-delivers
// the terminal ledger.
func (m *Member) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// backoff computes the jittered exponential wait for the given 1-based
// attempt.
func (m *Member) backoff(attempt int) time.Duration {
	base := m.cfg.retryBase() / time.Millisecond
	cap := m.cfg.retryCap() / time.Millisecond
	if base < 1 {
		base = 1
	}
	ms := faults.ExpBackoff(simtime.Time(base), attempt, simtime.Time(cap))
	m.mu.Lock()
	ms = faults.Jitter(ms, m.cfg.jitterFrac(), m.r)
	m.mu.Unlock()
	return time.Duration(ms) * time.Millisecond
}

// sleep waits d or until Close.
func (m *Member) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	done := make(chan struct{})
	go func() {
		m.mu.Lock()
		for !m.closed {
			m.cond.Wait()
		}
		m.mu.Unlock()
		close(done)
	}()
	select {
	case <-t.C:
		return !m.isClosed()
	case <-done:
		return false
	}
}

func (m *Member) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// joinLoop runs the rejoin handshake until one round trip succeeds AND no
// held jobs remain. Held jobs stay parked (never executed) until the
// router's decisions dispose of them, so a lost response is safe: the next
// attempt repeats the same question.
func (m *Member) joinLoop() {
	defer m.wg.Done()
	for attempt := 1; ; attempt++ {
		if m.isClosed() {
			return
		}
		if err := m.joinOnce(); err != nil {
			m.logf("federation: join attempt %d: %v", attempt, err)
			if !m.sleep(m.backoff(attempt)) {
				return
			}
			continue
		}
		if m.joins != nil {
			m.joins.Inc()
		}
		if len(m.svc.Held()) == 0 {
			return
		}
		// Decisions missing for some held jobs (or the router asked us to
		// wait): ask again.
		if !m.sleep(m.backoff(attempt)) {
			return
		}
	}
}

// joinOnce sends one join handshake and applies the router's decisions.
func (m *Member) joinOnce() error {
	req := JoinRequest{Shard: m.cfg.Shard}
	for _, id := range m.svc.Held() {
		rec, ok := m.svc.Job(id)
		if !ok {
			continue
		}
		req.Held = append(req.Held, JoinJob{ID: id, State: rec.State, Reason: rec.Reason})
	}
	for _, rec := range m.svc.Jobs() {
		if service.Terminal(rec.State) {
			req.Terminal = append(req.Terminal, JoinJob{ID: rec.ID, State: rec.State, Reason: rec.Reason})
		}
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	resp, err := m.client().Post(m.cfg.Router+"/v1/federation/join", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("join: router answered %d", resp.StatusCode)
	}
	var jr JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return err
	}
	if m.cfg.Lease != nil {
		m.cfg.Lease.Refresh()
	}
	var resume []string
	for id, decision := range jr.Decisions {
		if decision == JoinResume {
			resume = append(resume, id)
			continue
		}
		cmd, arg, _ := strings.Cut(decision, "@")
		if cmd != JoinRevoke {
			m.logf("federation: join: unknown decision %q for %s", decision, id)
			continue
		}
		// The optional "@N" suffix carries the router's reallocation epoch;
		// the tombstone keeps it so stale handoff replays stay refused.
		epoch, _ := strconv.Atoi(arg)
		if _, err := m.svc.RevokeEpoch(id, "join: ownership moved while shard was down", epoch); err != nil && !errors.Is(err, service.ErrInFlight) {
			m.logf("federation: join revoke %s: %v", id, err)
		}
	}
	if n := m.svc.ResumeHeld(resume); n > 0 {
		m.logf("federation: join resumed %d held jobs, %d still parked", n, len(m.svc.Held()))
	}
	return nil
}

// notifyLoop delivers terminal notices in order, retrying with backoff.
// Delivery is at-least-once; the router's terminal handler is idempotent.
func (m *Member) notifyLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.notices) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		n := m.notices[0]
		m.mu.Unlock()

		attempt := 1
		for {
			if err := m.deliver(n); err == nil {
				break
			} else {
				m.logf("federation: terminal notice %s attempt %d: %v", n.Job, attempt, err)
			}
			if !m.sleep(m.backoff(attempt)) {
				return
			}
			attempt++
		}
		if m.notifies != nil {
			m.notifies.Inc()
		}
		m.mu.Lock()
		m.notices = m.notices[1:]
		m.mu.Unlock()
	}
}

func (m *Member) deliver(n TerminalNotice) error {
	body, err := json.Marshal(&n)
	if err != nil {
		return err
	}
	resp, err := m.client().Post(m.cfg.Router+"/v1/federation/terminal", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("terminal: router answered %d", resp.StatusCode)
	}
	if m.cfg.Lease != nil {
		m.cfg.Lease.Refresh()
	}
	return nil
}

// PingResponse is the shard's heartbeat answer.
type PingResponse struct {
	Shard      string `json:"shard"`
	Version    int    `json:"version"`
	Draining   bool   `json:"draining"`
	QueueDepth int    `json:"queueDepth"`
	Held       int    `json:"held"`
}

// Handler wraps next (the service's HTTP API) with the federation
// endpoints:
//
//	POST /v1/federation/handoff — framed job handoff (idempotent by key)
//	POST /v1/federation/revoke  — confirmed revocation / tombstone
//	GET  /v1/federation/ping    — heartbeat; refreshes the router lease
func (m *Member) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", next)
	mux.HandleFunc("POST /v1/federation/handoff", m.handleHandoff)
	mux.HandleFunc("POST /v1/federation/revoke", m.handleRevoke)
	mux.HandleFunc("GET /v1/federation/ping", m.handlePing)
	return mux
}

func (m *Member) refreshLease() {
	if m.cfg.Lease != nil {
		m.cfg.Lease.Refresh()
	}
}

func (m *Member) handleHandoff(w http.ResponseWriter, r *http.Request) {
	m.refreshLease()
	if m.handoffs != nil {
		m.handoffs.Inc()
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFrameBytes+frameHeader+frameTrailer+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, HandoffResult{Code: "bad_frame", Reason: err.Error()})
		return
	}
	h, err := DecodeHandoff(body)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrBadVersion) {
			status = http.StatusUpgradeRequired
		}
		writeJSON(w, status, HandoffResult{Code: "bad_frame", Reason: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, *ApplyHandoff(m.svc, h))
}

func (m *Member) handleRevoke(w http.ResponseWriter, r *http.Request) {
	m.refreshLease()
	if m.revokes != nil {
		m.revokes.Inc()
	}
	var req RevokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Key == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad revoke request"})
		return
	}
	writeJSON(w, http.StatusOK, *ApplyRevoke(m.svc, &req))
}

func (m *Member) handlePing(w http.ResponseWriter, r *http.Request) {
	m.refreshLease()
	met := m.svc.Metrics()
	writeJSON(w, http.StatusOK, PingResponse{
		Shard: m.cfg.Shard, Version: Version,
		Draining: met.Draining, QueueDepth: met.QueueDepth, Held: met.Held,
	})
}

// ApplyHandoff maps one decoded handoff onto a service submission. Shared
// by the HTTP handler and the in-process LocalShard, so both transports
// have identical semantics.
func ApplyHandoff(svc *service.Server, h *Handoff) *HandoffResult {
	if h.Deadline > 0 && time.Now().UnixMilli() > h.Deadline {
		// Stale handoff: the router stopped waiting. Refusing (retryably)
		// instead of accepting keeps "accepted" synonymous with "the
		// router may learn about it".
		return &HandoffResult{Key: h.Key, Code: "expired", Reason: "handoff deadline passed", RetryAfter: 1}
	}
	rec, err := svc.Submit(h.Job, h.Strategy, h.Priority)
	if err == nil {
		return &HandoffResult{Key: h.Key, Accepted: true, State: rec.State}
	}
	var se *service.SubmitError
	if !errors.As(err, &se) {
		return &HandoffResult{Key: h.Key, Code: service.CodeInternal, Reason: err.Error(), RetryAfter: 1}
	}
	if se.Code != service.CodeDuplicate {
		return handoffError(h.Key, se)
	}
	existing, ok := svc.Job(h.Key)
	if !ok { // cannot happen: duplicate implies a ledger entry
		return &HandoffResult{Key: h.Key, Code: service.CodeInternal, Reason: "duplicate without ledger entry", RetryAfter: 1}
	}
	switch existing.State {
	case service.StateRevoked, service.StateDrained:
		// A tombstone: the key was revoked here (or drained away) before
		// this handoff arrived. A handoff whose epoch outranks the
		// tombstone's is a deliberate router decision made AFTER the
		// revocation round that planted it — the job provably runs nowhere
		// — so the tombstone resurrects into a fresh admission. Anything
		// else is a stale replay of a revoked binding and is refused: the
		// job belongs elsewhere now.
		if h.Epoch > existing.Epoch {
			rec, rerr := svc.Resurrect(h.Job, h.Strategy, h.Priority, h.Epoch)
			if rerr == nil {
				return &HandoffResult{Key: h.Key, Accepted: true, State: rec.State}
			}
			if errors.Is(rerr, service.ErrNotRevoked) && rec != nil {
				// Lost a race with a concurrent resurrection of the same
				// key: answer for the record as it stands now.
				return &HandoffResult{
					Key: h.Key, Duplicate: true, State: rec.State,
					Accepted: rec.State != service.StateRevoked && rec.State != service.StateDrained,
					Code:     se.Code,
				}
			}
			return handoffError(h.Key, rerr)
		}
		return &HandoffResult{Key: h.Key, Duplicate: true, State: existing.State, Code: se.Code}
	default:
		// Duplicate of a live or finished accept — idempotent.
		return &HandoffResult{Key: h.Key, Duplicate: true, Accepted: true, State: existing.State, Code: se.Code}
	}
}

// handoffError maps a submission error onto the wire result. Retryable
// codes carry a RetryAfter hint; invalid/infeasible are definitive.
func handoffError(key string, err error) *HandoffResult {
	var se *service.SubmitError
	if !errors.As(err, &se) {
		return &HandoffResult{Key: key, Code: service.CodeInternal, Reason: err.Error(), RetryAfter: 1}
	}
	switch se.Code {
	case service.CodeOverloaded, service.CodeDraining, service.CodeInternal:
		retry := int(se.RetryAfter / time.Second)
		if retry < 1 {
			retry = 1
		}
		return &HandoffResult{Key: key, Code: se.Code, Reason: se.Reason, RetryAfter: retry}
	default: // invalid, infeasible — definitive
		return &HandoffResult{Key: key, Code: se.Code, Reason: se.Reason}
	}
}

// ApplyRevoke maps a revocation onto the service, returning the confirmed
// outcome. Shared by the HTTP handler and LocalShard.
func ApplyRevoke(svc *service.Server, req *RevokeRequest) *RevokeResult {
	rec, err := svc.RevokeEpoch(req.Key, fmt.Sprintf("revoked by %s: %s", req.Origin, req.Reason), req.Epoch)
	if errors.Is(err, service.ErrInFlight) {
		return &RevokeResult{Key: req.Key, Outcome: RevokeOutcomeInFlight, State: rec.State}
	}
	if err != nil {
		return &RevokeResult{Key: req.Key, Outcome: RevokeOutcomeInFlight, State: rec.State, Reason: err.Error()}
	}
	if rec.State == service.StateRevoked {
		return &RevokeResult{Key: req.Key, Outcome: RevokeOutcomeRevoked, State: rec.State, Reason: rec.Reason}
	}
	return &RevokeResult{Key: req.Key, Outcome: RevokeOutcomeTerminal, State: rec.State, Reason: rec.Reason}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
