package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/jobio"
	"repro/internal/metasched"
	"repro/internal/service"
)

// The shards=1 differential suite: a federated deployment with one shard
// (Sync router + LocalShard) must be observationally identical to a plain
// service.Server — same submit outcomes, same ledger, same engine trace
// bytes, same metrics — over seeded mixed workloads. This is the pin that
// lets federation ship without perturbing the single-node paper results.

// diffOp is one scripted action against both deployments.
type diffOp struct {
	submit   *SubmitRequest
	process  int  // Process(n) on the engine when > 0
	quiesce  bool // run the engine dry
	resubmit int  // with resubmitOp: resubmit the i-th earlier job
	kind     string
}

const resubmitOp = "resubmit"

// diffWorkload generates a seeded mixed workload: feasible jobs across
// strategies and priorities, infeasible deadlines, invalid payloads,
// duplicate resubmissions, and interleaved engine progress.
func diffWorkload(seed int64, n int) []diffOp {
	r := rand.New(rand.NewSource(seed))
	strategies := []string{"S1", "S2", "S3"}
	var ops []diffOp
	for i := 0; i < n; i++ {
		switch k := r.Intn(10); {
		case k < 6: // feasible job
			ops = append(ops, diffOp{submit: &SubmitRequest{
				Job:      testJob(fmt.Sprintf("seed%d-job%d", seed, i), int64(10+r.Intn(90))),
				Strategy: strategies[r.Intn(len(strategies))],
				Priority: r.Intn(3),
			}})
		case k == 6: // infeasible deadline
			ops = append(ops, diffOp{submit: &SubmitRequest{
				Job:      testJob(fmt.Sprintf("seed%d-inf%d", seed, i), int64(1+r.Intn(3))),
				Strategy: "S1",
			}})
		case k == 7: // invalid strategy
			ops = append(ops, diffOp{submit: &SubmitRequest{
				Job:      testJob(fmt.Sprintf("seed%d-bad%d", seed, i), 60),
				Strategy: "NOPE",
			}})
		case k == 8: // duplicate of an earlier submission
			ops = append(ops, diffOp{kind: resubmitOp, resubmit: r.Intn(i + 1)})
		default: // let the engine make progress
			ops = append(ops, diffOp{process: 1 + r.Intn(4)})
		}
	}
	ops = append(ops, diffOp{quiesce: true})
	return ops
}

// diffDeployment is either side of the comparison behind one interface.
type diffDeployment struct {
	submit  func(jobio.Job, string, int) (string, error)
	svc     *service.Server // the engine to drive
	trace   *bytes.Buffer
	metrics func() service.Metrics
}

func newPlainDeployment(t *testing.T, seed uint64) *diffDeployment {
	t.Helper()
	var trace bytes.Buffer
	svc, err := service.New(service.Config{
		Env:   testEnv(),
		Sched: metasched.Config{Seed: seed, Tracer: metasched.NewJSONLTracer(&trace)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &diffDeployment{
		submit: func(w jobio.Job, s string, p int) (string, error) {
			rec, err := svc.Submit(w, s, p)
			if rec == nil {
				return "", err
			}
			return rec.State, err
		},
		svc: svc, trace: &trace, metrics: svc.Metrics,
	}
}

func newFederatedDeployment(t *testing.T, seed uint64) *diffDeployment {
	t.Helper()
	var trace bytes.Buffer
	var rt *Router
	svc, err := service.New(service.Config{
		Env:   testEnv(),
		Sched: metasched.Config{Seed: seed, Tracer: metasched.NewJSONLTracer(&trace)},
		OnTerminal: func(rec service.Record) {
			rt.HandleTerminal(&TerminalNotice{Shard: "s0", Job: rec.ID, State: rec.State, Reason: rec.Reason})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Shards: []ShardClient{NewLocalShard("s0", svc)}, Seed: seed, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt = r
	return &diffDeployment{
		submit: func(w jobio.Job, s string, p int) (string, error) {
			view, err := r.Submit(w, s, p)
			return view.State, err
		},
		svc: svc, trace: &trace, metrics: svc.Metrics,
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	var se *service.SubmitError
	if errors.As(err, &se) {
		return fmt.Sprintf("%s|%s", se.Code, se.Reason)
	}
	return "other|" + err.Error()
}

func TestSingleShardFederationIsByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plain := newPlainDeployment(t, uint64(seed))
			fed := newFederatedDeployment(t, uint64(seed))
			ops := diffWorkload(seed, 60)

			var submitted []SubmitRequest
			for i, op := range ops {
				switch {
				case op.submit != nil:
					submitted = append(submitted, *op.submit)
					_, perr := plain.submit(op.submit.Job, op.submit.Strategy, op.submit.Priority)
					_, ferr := fed.submit(op.submit.Job, op.submit.Strategy, op.submit.Priority)
					if errString(perr) != errString(ferr) {
						t.Fatalf("op %d: submit outcome diverged:\nplain: %s\nfed:   %s", i, errString(perr), errString(ferr))
					}
				case op.kind == resubmitOp:
					if op.resubmit >= len(submitted) {
						continue
					}
					req := submitted[op.resubmit]
					_, perr := plain.submit(req.Job, req.Strategy, req.Priority)
					_, ferr := fed.submit(req.Job, req.Strategy, req.Priority)
					if errString(perr) != errString(ferr) {
						t.Fatalf("op %d: duplicate probe diverged:\nplain: %s\nfed:   %s", i, errString(perr), errString(ferr))
					}
				case op.process > 0:
					pn := plain.svc.Process(op.process)
					fn := fed.svc.Process(op.process)
					if pn != fn {
						t.Fatalf("op %d: Process(%d) = %d vs %d", i, op.process, pn, fn)
					}
				case op.quiesce:
					plain.svc.Quiesce()
					fed.svc.Quiesce()
				}
			}

			// Job fates: the full ledgers must match record for record.
			pj, fj := plain.svc.Jobs(), fed.svc.Jobs()
			if len(pj) != len(fj) {
				t.Fatalf("ledger sizes diverged: %d vs %d", len(pj), len(fj))
			}
			for i := range pj {
				if pj[i] != fj[i] {
					t.Fatalf("record %d diverged:\nplain: %+v\nfed:   %+v", i, pj[i], fj[i])
				}
			}

			// Traces: the engine event stream must be byte-identical.
			if !bytes.Equal(plain.trace.Bytes(), fed.trace.Bytes()) {
				t.Fatalf("trace bytes diverged (%d vs %d bytes)",
					plain.trace.Len(), fed.trace.Len())
			}

			// Reports: the counters snapshot must serialize identically.
			pm, _ := json.Marshal(plain.metrics())
			fm, _ := json.Marshal(fed.metrics())
			if !bytes.Equal(pm, fm) {
				t.Fatalf("metrics diverged:\nplain: %s\nfed:   %s", pm, fm)
			}
		})
	}
}

// TestSyncRouterMirrorsShardFates checks the router's OWN ledger agrees
// with the shard after a sync run — every accepted job's router fate is
// the shard fate.
func TestSyncRouterMirrorsShardFates(t *testing.T) {
	var rt *Router
	var svc *service.Server
	var err error
	svc, err = service.New(service.Config{
		Env:   testEnv(),
		Sched: metasched.Config{Seed: 42},
		OnTerminal: func(rec service.Record) {
			rt.HandleTerminal(&TerminalNotice{Shard: "s0", Job: rec.ID, State: rec.State, Reason: rec.Reason})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Shards: []ShardClient{NewLocalShard("s0", svc)}, Seed: 42, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt = r
	for i := 0; i < 20; i++ {
		if _, err := r.Submit(testJob(fmt.Sprintf("job-%d", i), 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	svc.Process(-1)
	svc.Quiesce()
	for _, view := range r.Jobs() {
		srec, ok := svc.Job(view.ID)
		if !ok {
			t.Fatalf("router job %s missing from shard", view.ID)
		}
		if view.State != srec.State {
			t.Fatalf("job %s: router %q vs shard %q", view.ID, view.State, srec.State)
		}
	}
}
