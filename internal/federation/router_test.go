package federation

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/metasched"
	"repro/internal/resource"
	"repro/internal/service"
)

// testEnv builds the usual two-domain, four-tier environment.
func testEnv() *resource.Environment {
	perfs := []float64{1.0, 0.5, 0.33, 0.27}
	var nodes []*resource.Node
	id := 0
	for d := 0; d < 2; d++ {
		for _, p := range perfs {
			nodes = append(nodes, resource.NewNode(resource.NodeID(id),
				fmt.Sprintf("n%d", id), p, p, fmt.Sprintf("dom-%d", d)))
			id++
		}
	}
	return resource.NewEnvironment(nodes)
}

// fedShard is one in-process shard: an auto-mode service whose terminal
// stream feeds the router directly, standing in for the HTTP member.
type fedShard struct {
	name  string
	svc   *service.Server
	local *LocalShard
}

// newFedShards builds n shards whose OnTerminal hooks deliver to the
// router bound later via bind().
func newFedShards(t *testing.T, n int, rt **Router) []*fedShard {
	t.Helper()
	shards := make([]*fedShard, n)
	for i := range shards {
		name := fmt.Sprintf("s%d", i)
		svc, err := service.New(service.Config{
			Env:   testEnv(),
			Sched: metasched.Config{Seed: uint64(i) + 1},
			OnTerminal: func(rec service.Record) {
				if r := *rt; r != nil {
					go r.HandleTerminal(&TerminalNotice{Shard: name, Job: rec.ID, State: rec.State, Reason: rec.Reason})
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = &fedShard{name: name, svc: svc, local: NewLocalShard(name, svc)}
	}
	return shards
}

func waitQuiesced(t *testing.T, r *Router, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !r.Quiesced() {
		if time.Now().After(deadline) {
			for _, j := range r.Jobs() {
				if !routerTerminal(j.State) {
					t.Logf("stuck: %+v", j)
				}
			}
			t.Fatal("router never quiesced")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAsyncDispatchAcrossShards pushes jobs through a three-shard fleet
// and checks every job completes on exactly the shard the ring owns it to.
func TestAsyncDispatchAcrossShards(t *testing.T) {
	var rt *Router
	shards := newFedShards(t, 3, &rt)
	var clients []ShardClient
	for _, s := range shards {
		clients = append(clients, s.local)
		s.svc.Start()
	}
	r, err := New(Config{Shards: clients, Seed: 7, HeartbeatInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt = r
	r.Start()
	defer r.Close()

	const n = 30
	for i := 0; i < n; i++ {
		if _, err := r.Submit(testJob(fmt.Sprintf("job-%d", i), 60), "S1", 0); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitQuiesced(t, r, 10*time.Second)

	ring, _ := NewRing([]string{"s0", "s1", "s2"}, 0)
	completed := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("job-%d", i)
		view, ok := r.Job(id)
		if !ok || view.State != service.StateCompleted {
			t.Fatalf("job %s = %+v, want completed", id, view)
		}
		if view.Shard != ring.Owner(id) {
			t.Errorf("job %s ran on %s, ring owner %s", id, view.Shard, ring.Owner(id))
		}
		// Exactly one shard's ledger has the job.
		holders := 0
		for _, s := range shards {
			if _, ok := s.svc.Job(id); ok {
				holders++
			}
		}
		if holders != 1 {
			t.Errorf("job %s is on %d shards", id, holders)
		}
		completed++
	}
	if m := r.Metrics(); m.Completed != uint64(completed) || m.Reallocated != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	for _, s := range shards {
		_ = s.svc.Drain(context.Background())
	}
}

// flakyShard scripts transport failures: handoffs fail while broken, but
// revokes answer from the (empty) ledger — the "shard unreachable for
// placement" case.
type flakyShard struct {
	*LocalShard
	mu     sync.Mutex
	broken bool
	tried  int
}

func (f *flakyShard) setBroken(b bool) {
	f.mu.Lock()
	f.broken = b
	f.mu.Unlock()
}

func (f *flakyShard) Handoff(ctx context.Context, h *Handoff) (*HandoffResult, error) {
	f.mu.Lock()
	f.tried++
	broken := f.broken
	f.mu.Unlock()
	if broken {
		return nil, fmt.Errorf("flaky: connection refused")
	}
	return f.LocalShard.Handoff(ctx, h)
}

func (f *flakyShard) Ping(ctx context.Context) (*PingResponse, error) {
	f.mu.Lock()
	broken := f.broken
	f.mu.Unlock()
	if broken {
		return nil, fmt.Errorf("flaky: connection refused")
	}
	return f.LocalShard.Ping(ctx)
}

// TestRetryExhaustionReallocatesThroughRevoke pins the last rung of the
// recovery ladder: a shard that fails every handoff attempt loses the job
// — but only AFTER a confirmed revoke planted a tombstone there — and a
// survivor runs it.
func TestRetryExhaustionReallocatesThroughRevoke(t *testing.T) {
	var rt *Router
	shards := newFedShards(t, 2, &rt)
	for _, s := range shards {
		s.svc.Start()
	}
	flaky := &flakyShard{LocalShard: shards[0].local}
	flaky.setBroken(true)
	r, err := New(Config{
		Shards:            []ShardClient{flaky, shards[1].local},
		Seed:              11,
		RetryBudget:       2,
		RetryBase:         5 * time.Millisecond,
		HeartbeatInterval: time.Hour, // isolate: no death sweep in this test
	})
	if err != nil {
		t.Fatal(err)
	}
	rt = r
	r.Start()
	defer r.Close()

	// Find an ID the ring assigns to the flaky shard s0.
	ring, _ := NewRing([]string{"s0", "s1"}, 0)
	id := ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("job-%d", i)
		if ring.Owner(cand) == "s0" {
			id = cand
			break
		}
	}
	if _, err := r.Submit(testJob(id, 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	// Handoffs to s0 fail; revoke still answers (the shard process is up,
	// only the handoff path is severed) and plants a tombstone.
	waitQuiesced(t, r, 10*time.Second)

	view, _ := r.Job(id)
	if view.State != service.StateCompleted || view.Shard != "s1" {
		t.Fatalf("job = %+v, want completed on s1", view)
	}
	// The tombstone is durable at s0: a late handoff replay is refused.
	flaky.setBroken(false)
	res, err := flaky.Handoff(context.Background(), &Handoff{Key: id, Origin: "test", Job: testJob(id, 60), Strategy: "S1"})
	if err != nil || res.Accepted || !res.Duplicate || res.State != service.StateRevoked {
		t.Fatalf("late replay after tombstone = (%+v, %v)", res, err)
	}
	if m := r.Metrics(); m.Reallocated != 1 || m.Revocations != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if got, _ := shards[1].svc.Job(id); got.State != service.StateCompleted {
		t.Fatalf("s1 ledger = %+v", got)
	}
}

// TestDeadShardSweep pins heartbeat death detection: a shard that stops
// answering pings gets its bound jobs revoked and reallocated, and the
// survivors keep admitting within one heartbeat timeout.
func TestDeadShardSweep(t *testing.T) {
	var rt *Router
	shards := newFedShards(t, 2, &rt)
	for _, s := range shards {
		s.svc.Start()
	}
	flaky := &flakyShard{LocalShard: shards[0].local}
	gate := make(chan struct{})
	// s0 accepts handoffs but its engine is stalled behind the service
	// gate, so accepted jobs sit queued (revocable) when it "dies".
	stalled, err := service.New(service.Config{
		Env: testEnv(), Sched: metasched.Config{Seed: 9},
		Gate: func() bool {
			select { // closed until gate closes
			case <-gate:
				return false
			default:
				return false
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stalled.Start()
	flaky.LocalShard = NewLocalShard("s0", stalled)

	r, err := New(Config{
		Shards:            []ShardClient{flaky, shards[1].local},
		Seed:              13,
		HeartbeatInterval: 20 * time.Millisecond,
		DeadAfter:         3,
		RetryBase:         5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt = r
	r.Start()
	defer r.Close()

	ring, _ := NewRing([]string{"s0", "s1"}, 0)
	var s0jobs, s1jobs []string
	for i := 0; len(s0jobs) < 3 || len(s1jobs) < 3; i++ {
		id := fmt.Sprintf("job-%d", i)
		if ring.Owner(id) == "s0" {
			s0jobs = append(s0jobs, id)
		} else {
			s1jobs = append(s1jobs, id)
		}
		if _, err := r.Submit(testJob(id, 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	// Give dispatch a moment to bind s0's jobs, then kill its network.
	time.Sleep(100 * time.Millisecond)
	flaky.setBroken(true)

	// Death after 3 missed beats; revokes then fail too (broken), so jobs
	// stay safely in revoking until the shard "restarts".
	time.Sleep(150 * time.Millisecond)
	if m := r.Metrics(); !m.Shards["s0"].Alive {
		// expected
	} else {
		t.Fatalf("s0 still alive after missed heartbeats: %+v", m.Shards)
	}
	// Survivor keeps serving while s0 is dead.
	extra := "extra-s1"
	for i := 0; ; i++ {
		cand := fmt.Sprintf("extra-%d", i)
		if ring.Owner(cand) == "s1" {
			extra = cand
			break
		}
	}
	if _, err := r.Submit(testJob(extra, 60), "S1", 0); err != nil {
		t.Fatal(err)
	}

	// Shard restarts: network back, ledger intact, engine still stalled —
	// revokes now confirm and the jobs move to s1.
	flaky.setBroken(false)
	waitQuiesced(t, r, 15*time.Second)

	for _, id := range append(append([]string{}, s0jobs...), extra) {
		view, _ := r.Job(id)
		if view.State != service.StateCompleted || view.Shard != "s1" {
			t.Fatalf("job %s = %+v, want completed on s1", id, view)
		}
		// s0 must hold a revoked entry or nothing — never an execution.
		if rec, ok := stalled.Job(id); ok && rec.State != service.StateRevoked {
			t.Fatalf("s0 ledger for %s = %q", id, rec.State)
		}
	}
	if m := r.Metrics(); m.ShardDeaths != 1 {
		t.Fatalf("ShardDeaths = %d, want 1", m.ShardDeaths)
	}
}

// TestRouterJournalRecovery SIGKILL-simulates the router: a journaled
// binding survives, reconciles against the shard ledger, and in-doubt
// jobs resolve through revocation — never by double placement.
func TestRouterJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	openJournal := func() (*journal.Journal, *journal.Recovery) {
		j, rec, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncNever, IsTerminal: service.Terminal})
		if err != nil {
			t.Fatal(err)
		}
		return j, rec
	}

	var rt *Router
	shards := newFedShards(t, 2, &rt)
	for _, s := range shards {
		s.svc.Start()
	}
	clients := []ShardClient{shards[0].local, shards[1].local}

	j1, _ := openJournal()
	r1, err := New(Config{Shards: clients, Seed: 3, Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	rt = r1
	r1.Start()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := r1.Submit(testJob(fmt.Sprintf("job-%d", i), 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiesced(t, r1, 10*time.Second)
	// Submit one more and "crash" immediately: the accept is journaled
	// queued, dispatch may or may not have started.
	if _, err := r1.Submit(testJob("in-doubt", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	r1.Close() // SIGKILL stand-in: no drain, no terminal wait
	j1.Close()

	j2, recovered := openJournal()
	defer j2.Close()
	r2, err := New(Config{Shards: clients, Seed: 3, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	rt = r2
	restored, err := r2.Restore(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if restored != n+1 {
		t.Fatalf("restored %d records, want %d", restored, n+1)
	}
	r2.Start()
	defer r2.Close()
	waitQuiesced(t, r2, 10*time.Second)

	for i := 0; i < n; i++ {
		id := fmt.Sprintf("job-%d", i)
		view, ok := r2.Job(id)
		if !ok || view.State != service.StateCompleted {
			t.Fatalf("job %s after recovery = %+v", id, view)
		}
	}
	view, _ := r2.Job("in-doubt")
	if view.State != service.StateCompleted {
		t.Fatalf("in-doubt job = %+v, want completed", view)
	}
	// Exactly-once: the in-doubt job exists on exactly one shard as a
	// non-revoked record.
	executions := 0
	for _, s := range shards {
		if rec, ok := s.svc.Job("in-doubt"); ok && rec.State == service.StateCompleted {
			executions++
		}
	}
	if executions != 1 {
		t.Fatalf("in-doubt job executed on %d shards", executions)
	}
}

// TestJoinHandshakeDecisions pins the router's rulings over a rejoining
// shard's held jobs.
func TestJoinHandshakeDecisions(t *testing.T) {
	var rt *Router
	shards := newFedShards(t, 2, &rt)
	r, err := New(Config{Shards: []ShardClient{shards[0].local, shards[1].local}, Seed: 5, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt = r

	// Seed the ledger by hand with the interesting states.
	r.mu.Lock()
	owned := r.newRecordLocked("owned", "S1", 0, StateHanded)
	owned.Shard = "s0"
	moved := r.newRecordLocked("moved", "S1", 0, StateHanded)
	moved.Shard = "s1"
	done := r.newRecordLocked("done", "S1", 0, service.StateCompleted)
	done.Shard = "s0"
	queued := r.newRecordLocked("intent", "S1", 0, StateQueued)
	_ = queued
	r.mu.Unlock()

	resp := r.HandleJoin(&JoinRequest{Shard: "s0", Held: []JoinJob{
		{ID: "owned", State: service.StateQueued},
		{ID: "moved", State: service.StateQueued},
		{ID: "done", State: service.StateQueued},
		{ID: "intent", State: service.StateQueued},
		{ID: "stranger", State: service.StateQueued},
	}})
	want := map[string]string{
		"owned":    JoinResume,        // still bound here
		"moved":    JoinRevoke + "@0", // bound to s1 meanwhile; epoch rides along
		"done":     JoinRevoke + "@0", // already terminal
		"intent":   JoinResume,        // router queued, shard already holds: adopt
		"stranger": JoinResume,        // unknown: adopt rather than orphan
	}
	for id, decision := range want {
		if resp.Decisions[id] != decision {
			t.Errorf("decision[%s] = %q, want %q", id, resp.Decisions[id], decision)
		}
	}
	// The adoption is ledgered.
	if view, ok := r.Job("stranger"); !ok || view.State != StateHanded || view.Shard != "s0" {
		t.Errorf("adopted stranger = %+v", view)
	}
	if view, _ := r.Job("intent"); view.State != StateHanded || view.Shard != "s0" {
		t.Errorf("adopted intent = %+v", view)
	}
}

// TestTerminalNoticeIdempotentAndDrainedReallocates covers the notice
// handler's edge cases.
func TestTerminalNoticeEdgeCases(t *testing.T) {
	var rt *Router
	shards := newFedShards(t, 2, &rt)
	r, err := New(Config{Shards: []ShardClient{shards[0].local, shards[1].local}, Seed: 5, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt = r

	r.mu.Lock()
	a := r.newRecordLocked("a", "S1", 0, StateHanded)
	a.Shard = "s0"
	b := r.newRecordLocked("b", "S1", 0, StateHanded)
	b.Shard = "s0"
	r.mu.Unlock()

	// Unknown job: ignored.
	r.HandleTerminal(&TerminalNotice{Shard: "s0", Job: "ghost", State: service.StateCompleted})
	// Revoked is shard-terminal, not job-terminal.
	r.HandleTerminal(&TerminalNotice{Shard: "s0", Job: "a", State: service.StateRevoked})
	if view, _ := r.Job("a"); view.State != StateHanded {
		t.Fatalf("revoked notice moved a to %q", view.State)
	}
	// Completed lands once; the repeat is a no-op.
	r.HandleTerminal(&TerminalNotice{Shard: "s0", Job: "a", State: service.StateCompleted, Reason: "ok"})
	r.HandleTerminal(&TerminalNotice{Shard: "s0", Job: "a", State: service.StateRejected, Reason: "late duplicate"})
	if view, _ := r.Job("a"); view.State != service.StateCompleted || view.Reason != "ok" {
		t.Fatalf("a = %+v", view)
	}
	if m := r.Metrics(); m.Completed != 1 {
		t.Fatalf("Completed = %d after duplicate notices", m.Completed)
	}
	// Drained releases ownership: the job requeues, banned from s0.
	r.HandleTerminal(&TerminalNotice{Shard: "s0", Job: "b", State: service.StateDrained})
	if view, _ := r.Job("b"); view.State != StateQueued || view.Shard != "" {
		t.Fatalf("b after drained notice = %+v", view)
	}
	r.mu.Lock()
	banned := r.records["b"].banned["s0"]
	r.mu.Unlock()
	if !banned {
		t.Fatal("drained shard not banned for b")
	}
}
