package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/service"
)

// ShardClient is the router's view of one metascheduler shard. Two
// implementations exist: HTTPShard speaks the wire protocol to a remote
// gridd process, and LocalShard drives an in-process service.Server — the
// single-shard differential suite uses the latter so shards=1 federation
// is byte-comparable to a plain server.
type ShardClient interface {
	// Name is the shard's ring name.
	Name() string
	// Handoff delivers one framed job handoff and returns the shard's
	// durable answer. A transport error means "unknown outcome": the shard
	// may or may not have accepted — exactly the case idempotency keys and
	// confirmed revocation exist for.
	Handoff(ctx context.Context, h *Handoff) (*HandoffResult, error)
	// Revoke asks the shard to give a job back; see the RevokeOutcome
	// constants for the three confirmed answers.
	Revoke(ctx context.Context, req *RevokeRequest) (*RevokeResult, error)
	// Record fetches the shard's ledger entry for a job; ok=false means
	// the shard has never durably seen it.
	Record(ctx context.Context, id string) (service.Record, bool, error)
	// Ping is the heartbeat probe.
	Ping(ctx context.Context) (*PingResponse, error)
}

// LocalShard adapts an in-process service.Server to ShardClient. The
// handoff still round-trips through the wire codec so local and remote
// shards exercise identical encode/validate/decode paths.
type LocalShard struct {
	name string
	svc  *service.Server
}

// NewLocalShard wraps svc as the named shard.
func NewLocalShard(name string, svc *service.Server) *LocalShard {
	return &LocalShard{name: name, svc: svc}
}

// Name implements ShardClient.
func (l *LocalShard) Name() string { return l.name }

// Service returns the wrapped server.
func (l *LocalShard) Service() *service.Server { return l.svc }

// Handoff implements ShardClient via the shared ApplyHandoff semantics,
// after a codec round trip.
func (l *LocalShard) Handoff(ctx context.Context, h *Handoff) (*HandoffResult, error) {
	frame, err := EncodeHandoff(h)
	if err != nil {
		return nil, err
	}
	decoded, err := DecodeHandoff(frame)
	if err != nil {
		return nil, err
	}
	return ApplyHandoff(l.svc, decoded), nil
}

// Revoke implements ShardClient.
func (l *LocalShard) Revoke(ctx context.Context, req *RevokeRequest) (*RevokeResult, error) {
	return ApplyRevoke(l.svc, req), nil
}

// Record implements ShardClient.
func (l *LocalShard) Record(ctx context.Context, id string) (service.Record, bool, error) {
	rec, ok := l.svc.Job(id)
	return rec, ok, nil
}

// Ping implements ShardClient.
func (l *LocalShard) Ping(ctx context.Context) (*PingResponse, error) {
	met := l.svc.Metrics()
	return &PingResponse{
		Shard: l.name, Version: Version,
		Draining: met.Draining, QueueDepth: met.QueueDepth, Held: met.Held,
	}, nil
}

// HTTPShard talks the wire protocol to a remote shard.
type HTTPShard struct {
	name   string
	base   string // e.g. http://127.0.0.1:8081
	client *http.Client
}

// NewHTTPShard builds a client for the shard at base. client nil uses
// http.DefaultClient; the router injects fault transports here in the
// chaos harness.
func NewHTTPShard(name, base string, client *http.Client) *HTTPShard {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPShard{name: name, base: base, client: client}
}

// Name implements ShardClient.
func (s *HTTPShard) Name() string { return s.name }

// Handoff implements ShardClient. Any HTTP status still carrying a
// decodable HandoffResult is a durable shard answer, not a transport
// error.
func (s *HTTPShard) Handoff(ctx context.Context, h *Handoff) (*HandoffResult, error) {
	frame, err := EncodeHandoff(h)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/federation/handoff", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var res HandoffResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res); err != nil {
		return nil, fmt.Errorf("federation: shard %s handoff answered %d with undecodable body: %w", s.name, resp.StatusCode, err)
	}
	return &res, nil
}

// Revoke implements ShardClient.
func (s *HTTPShard) Revoke(ctx context.Context, rreq *RevokeRequest) (*RevokeResult, error) {
	body, err := json.Marshal(rreq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/federation/revoke", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("federation: shard %s revoke answered %d", s.name, resp.StatusCode)
	}
	var res RevokeResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Record implements ShardClient: GET /v1/jobs/{id}; 404 means unknown.
func (s *HTTPShard) Record(ctx context.Context, id string) (service.Record, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return service.Record{}, false, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return service.Record{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return service.Record{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return service.Record{}, false, fmt.Errorf("federation: shard %s record answered %d", s.name, resp.StatusCode)
	}
	var rec service.Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rec); err != nil {
		return service.Record{}, false, err
	}
	return rec, true, nil
}

// Ping implements ShardClient.
func (s *HTTPShard) Ping(ctx context.Context) (*PingResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/federation/ping", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("federation: shard %s ping answered %d", s.name, resp.StatusCode)
	}
	var pr PingResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&pr); err != nil {
		return nil, err
	}
	return &pr, nil
}
