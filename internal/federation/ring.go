package federation

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring partitioning the job flow across shards.
// Each shard gets Replicas virtual points (FNV-1a of "name#i"); a job ID
// hashes to a point and walks clockwise. The walk order is the job's
// preference list: the first live shard on it owns the job, so a shard
// death moves only that shard's keys (spread across survivors), and its
// recovery moves them back — no global reshuffle.
type Ring struct {
	points []ringPoint // sorted by hash
	shards []string    // sorted names
}

type ringPoint struct {
	hash  uint64
	shard string
}

// DefaultReplicas is the virtual-point count per shard; 64 keeps the load
// split within a few percent for small fleets while staying cheap to walk.
const DefaultReplicas = 64

// NewRing builds a ring over the named shards. replicas ≤ 0 uses
// DefaultReplicas. Shard names must be unique and non-empty.
func NewRing(shards []string, replicas int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("federation: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]struct{}, len(shards))
	r := &Ring{shards: append([]string(nil), shards...)}
	sort.Strings(r.shards)
	for _, s := range r.shards {
		if s == "" {
			return nil, fmt.Errorf("federation: empty shard name")
		}
		if _, dup := seen[s]; dup {
			return nil, fmt.Errorf("federation: duplicate shard name %q", s)
		}
		seen[s] = struct{}{}
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", s, i)), shard: s})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions between virtual points resolve by name so the
		// ring is a pure function of the shard set.
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// Shards returns the shard names, sorted.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Owner returns key's primary shard.
func (r *Ring) Owner(key string) string { return r.Walk(key)[0] }

// Walk returns key's full preference list: every shard exactly once, in
// clockwise ring order starting at the key's point. Dispatch takes the
// first shard on the list that is alive and breaker-admitted, which is
// what keeps surviving shards admitting while a shard is down.
func (r *Ring) Walk(key string) []string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.shards))
	seen := make(map[string]struct{}, len(r.shards))
	for n := 0; n < len(r.points) && len(out) < len(r.shards); n++ {
		p := r.points[(i+n)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue
		}
		seen[p.shard] = struct{}{}
		out = append(out, p.shard)
	}
	return out
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ringHash is fnv1a with a splitmix64 finalizer. Plain FNV-1a has weak
// avalanche in its low bits for short strings that differ only in a
// suffix ("s0#1", "s0#2", …), which skews the virtual-point spread badly;
// the finalizer restores a uniform ring.
func ringHash(s string) uint64 {
	h := fnv1a(s)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
