package experiments

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/metasched"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// LocalPassing (E11) implements the simulation study the paper's §5 names
// as future work: "Inseparability condition for the resources requires
// additional advanced research and simulation approach of local job
// passing", and "advance reservations have impact on the quality of
// service".
//
// The experiment takes the schedules the VO produced with guaranteed
// advance reservations, then REPLAYS every job through per-node local
// FCFS queues with no reservations at all: each task is submitted to its
// planned node the moment its predecessors finish and its data arrives,
// and waits like any local job. The comparison quantifies what the
// reservation guarantee buys: the share of jobs still meeting their
// deadline, and the lateness distribution.
func LocalPassing(cfg Fig4Config) (*Report, error) {
	r := newReport("local-passing",
		"advance reservations vs queued local passing (§5 future work: reservations guarantee QoS)")

	// Phase 1: the reservation-backed VO run (no background load, so the
	// replay differences come from queueing alone).
	gen := workload.New(fig4Workload(cfg.Seed))
	env := gen.Environment(cfg.Domains)
	engine := sim.New()
	vo := metasched.NewVO(engine, env, metasched.Config{
		Objective: criticalworks.MinCost,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Telemetry: cfg.Telemetry,
		NoRepair:  cfg.NoRepair,
	})
	flow := gen.Flow(0, cfg.Jobs, 0)
	for _, a := range flow {
		vo.Submit(a.Job, strategy.S1, a.At)
	}
	engine.Run()

	var completed []*metasched.JobResult
	for _, res := range vo.Results() {
		if res.State == metasched.StateCompleted {
			completed = append(completed, res)
		}
	}
	if len(completed) == 0 {
		return nil, fmt.Errorf("experiments: local-passing VO run completed no jobs")
	}

	// Phase 2: replay the same placements through per-node FCFS queues.
	finishes, err := replayThroughQueues(env, completed)
	if err != nil {
		return nil, err
	}

	met := 0
	var lateness metrics.Series
	for i, res := range completed {
		fin := finishes[i]
		if fin <= res.Job.Deadline {
			met++
		} else {
			lateness.AddInt(int64(fin - res.Job.Deadline))
		}
	}
	reservedShare := 1.0 // by construction: reservations guarantee the plan
	queuedShare := float64(met) / float64(len(completed))

	r.addLine("%-24s %14s %12s", "mode", "met-deadline", "mean-lateness")
	r.addLine("%-24s %14s %12s", "advance-reservations", metrics.Ratio(reservedShare), "0.0")
	r.addLine("%-24s %14s %12.1f", "queued-local-passing", metrics.Ratio(queuedShare), lateness.Mean())
	r.addLine("(%d completed jobs replayed through per-node FCFS queues)", len(completed))
	r.Values["met-reserved"] = reservedShare
	r.Values["met-queued"] = queuedShare
	r.Values["mean-lateness"] = lateness.Mean()
	r.Values["jobs"] = float64(len(completed))
	return r, nil
}

// replayThroughQueues executes every completed job's tasks on per-node
// single-processor FCFS clusters: a task is submitted when its
// predecessors have finished and its data has arrived, with its planned
// reservation length as both walltime and runtime. Returns each job's
// replayed finish time.
func replayThroughQueues(env *resource.Environment, jobs []*metasched.JobResult) ([]simtime.Time, error) {
	engine := sim.New()
	type taskDone struct {
		ji  int
		id  dag.TaskID
		end simtime.Time
	}
	var completeTask func(d taskDone)
	clusters := make(map[resource.NodeID]*batch.Cluster, env.NumNodes())
	for _, n := range env.Nodes() {
		c := batch.NewCluster(engine, 1, batch.Policy{})
		c.OnComplete = func(o batch.Outcome) {
			var ji int
			var id int
			if _, err := fmt.Sscanf(o.ID, "%d/%d", &ji, &id); err != nil {
				panic("experiments: bad replay task id " + o.ID)
			}
			completeTask(taskDone{ji: ji, id: dag.TaskID(id), end: o.End})
		}
		clusters[n.ID] = c
	}

	finishes := make([]simtime.Time, len(jobs))
	type taskKey struct {
		job  int
		task dag.TaskID
	}
	// Count unfinished predecessors per task; submit when it hits zero
	// and the latest data arrival has passed.
	waiting := make(map[taskKey]int)
	dataReady := make(map[taskKey]simtime.Time)
	done := make(map[taskKey]bool)
	remaining := make([]int, len(jobs))

	submit := func(ji int, id dag.TaskID, at simtime.Time) {
		res := jobs[ji]
		p := res.Placements[id]
		dur := p.Window.Len()
		engine.At(at, "submit-replay", func() {
			clusters[p.Node].Submit(batch.Request{
				ID:       fmt.Sprintf("%d/%d", ji, id),
				Nodes:    1,
				Walltime: dur,
				Runtime:  dur,
			})
		})
	}

	completeTask = func(d taskDone) {
		key := taskKey{d.ji, d.id}
		if done[key] {
			return
		}
		done[key] = true
		if d.end > finishes[d.ji] {
			finishes[d.ji] = d.end
		}
		remaining[d.ji]--
		// Release successors whose other predecessors are also done.
		scheduled := jobs[d.ji].Scheduled
		for _, e := range scheduled.Out(d.id) {
			sk := taskKey{d.ji, e.To}
			waiting[sk]--
			arrive := d.end + e.BaseTime
			if arrive > dataReady[sk] {
				dataReady[sk] = arrive
			}
			if waiting[sk] == 0 {
				at := dataReady[sk]
				if now := engine.Now(); at < now {
					at = now
				}
				submit(d.ji, e.To, at)
			}
		}
	}

	for ji, res := range jobs {
		scheduled := res.Scheduled
		remaining[ji] = scheduled.NumTasks()
		for _, t := range scheduled.Tasks() {
			key := taskKey{ji, t.ID}
			waiting[key] = len(scheduled.In(t.ID))
			dataReady[key] = res.Arrival
			if waiting[key] == 0 {
				submit(ji, t.ID, res.Arrival)
			}
		}
	}
	engine.Run()
	for ji, rem := range remaining {
		if rem != 0 {
			return nil, fmt.Errorf("experiments: replay deadlocked on job %d (%d tasks left)", ji, rem)
		}
	}
	return finishes, nil
}
