package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestFig2ReproducesPaperStructure(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// §3: four critical works of lengths 12, 11, 10, 9.
	for i, want := range []float64{12, 11, 10, 9} {
		if got := r.Value(fmt.Sprintf("chain%d", i+1)); got != want {
			t.Errorf("chain %d length = %v, want %v", i+1, got, want)
		}
	}
	// Fig. 2(b)'s essence: the cheapest distribution is NOT the fastest
	// one (CF2=37 beat CF1=CF3=41 by not racing).
	if r.Value("cheapest-level") == r.Value("fastest-level") {
		t.Error("cheapest and fastest distributions coincide; no CF trade-off visible")
	}
	if r.Value("cheapest-cf") >= r.Value("fastest-cf") {
		t.Errorf("cheapest CF %v not below fastest CF %v",
			r.Value("cheapest-cf"), r.Value("fastest-cf"))
	}
	// The P4/P5-style collision on the constrained environment.
	if r.Value("collisions") < 1 {
		t.Error("no collision reproduced on the constrained environment")
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	cfg := DefaultFig3(1, 200)
	a, err := Fig3a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 3a ordering: S1 (38%) ≥ S2 (37%) > S3 (33%).
	s1, s2, s3 := a.Value("admissible-S1"), a.Value("admissible-S2"), a.Value("admissible-S3")
	if !(s1 >= s2 && s2 > s3) {
		t.Errorf("admissibility ordering broken: S1=%v S2=%v S3=%v", s1, s2, s3)
	}
	if s1 == 0 || s3 == 0 {
		t.Error("degenerate admissibility rates")
	}

	b, err := Fig3b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 3b ordering of the fast-node share: S1 (32%) < S2 (56%)
	// < S3 (74%).
	f1, f2, f3 := b.Value("fast-S1"), b.Value("fast-S2"), b.Value("fast-S3")
	if !(f1 < f2 && f2 < f3) {
		t.Errorf("collision fast-share ordering broken: S1=%v S2=%v S3=%v", f1, f2, f3)
	}
	// S1's collisions predominantly on slow nodes, as in the paper.
	if b.Value("slow-S1") < 0.5 {
		t.Errorf("S1 slow-node collision share = %v, want majority", b.Value("slow-S1"))
	}
}

func TestFig3Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	cfg := DefaultFig3(7, 60)
	a1, err := Fig3a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Fig3a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a1.Values {
		if a2.Values[k] != v {
			t.Errorf("value %q differs across identical runs: %v vs %v", k, v, a2.Values[k])
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	cfg := DefaultFig4(1, 150)
	a, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 4a: S1 occupies slow nodes, S3 the fastest ones.
	if a.Value("slow-S1") <= a.Value("fast-S1") {
		t.Errorf("S1 load: slow %v not above fast %v", a.Value("slow-S1"), a.Value("fast-S1"))
	}
	if a.Value("fast-S3") <= a.Value("slow-S3") {
		t.Errorf("S3 load: fast %v not above slow %v", a.Value("fast-S3"), a.Value("slow-S3"))
	}
	// S3 leans harder on fast nodes than S1 does.
	if a.Value("fast-S3") <= a.Value("fast-S1") {
		t.Errorf("S3 fast load %v not above S1's %v", a.Value("fast-S3"), a.Value("fast-S1"))
	}

	b, err := Fig4b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 4b: the lowest-cost strategies are the slowest ones (S3);
	// MS1's tasks run at least as long as S2's.
	if b.Value("cost-S3") >= b.Value("cost-S2") {
		t.Errorf("S3 relative cost %v not below S2 %v", b.Value("cost-S3"), b.Value("cost-S2"))
	}
	if b.Value("task-S3") != 1 {
		t.Errorf("S3 relative task time = %v, want the maximum (1)", b.Value("task-S3"))
	}
	if b.Value("task-MS1") < b.Value("task-S2") {
		t.Errorf("MS1 relative task time %v below S2 %v", b.Value("task-MS1"), b.Value("task-S2"))
	}

	c, err := Fig4c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 4c: cheap slow strategies like S3 are the most
	// persistent; sparse MS1 is less persistent and less accurate than S3.
	if c.Value("ttl-S3") < c.Value("ttl-MS1") {
		t.Errorf("S3 TTL %v below MS1 %v", c.Value("ttl-S3"), c.Value("ttl-MS1"))
	}
	if c.Value("dev-MS1") <= c.Value("dev-S3") {
		t.Errorf("MS1 deviation %v not above S3 %v", c.Value("dev-MS1"), c.Value("dev-S3"))
	}
}

func TestPoliciesShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	r, err := Policies(DefaultPolicies(1, 500))
	if err != nil {
		t.Fatal(err)
	}
	// §5: "Backfilling decreases this [queue waiting] time."
	if r.Value("wait-FCFS+easy-backfill") >= r.Value("wait-FCFS") {
		t.Errorf("easy backfill wait %v not below FCFS %v",
			r.Value("wait-FCFS+easy-backfill"), r.Value("wait-FCFS"))
	}
	if r.Value("wait-FCFS+conservative-backfill") >= r.Value("wait-FCFS") {
		t.Error("conservative backfill did not reduce wait")
	}
	// §5: "preliminary reservation nearly always increases queue waiting
	// time."
	if r.Value("wait-FCFS+reservations") <= r.Value("wait-FCFS") {
		t.Errorf("reservations wait %v not above plain FCFS %v",
			r.Value("wait-FCFS+reservations"), r.Value("wait-FCFS"))
	}
	// LWF trades tail for mean: its worst-case wait (starvation) exceeds
	// FCFS's.
	if r.Value("maxwait-LWF") <= r.Value("maxwait-FCFS") {
		t.Errorf("LWF max wait %v not above FCFS %v",
			r.Value("maxwait-LWF"), r.Value("maxwait-FCFS"))
	}
	// Gang admits immediately: its mean wait stays below plain FCFS's.
	if r.Value("wait-gang") >= r.Value("wait-FCFS") {
		t.Errorf("gang wait %v not below FCFS %v", r.Value("wait-gang"), r.Value("wait-FCFS"))
	}
}

func TestAblationCollisionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	r, err := AblationCollision(DefaultFig3(1, 120))
	if err != nil {
		t.Fatal(err)
	}
	// Economic reallocation must dominate the pinned-node delay baseline
	// on admissibility — this is the design choice E8 isolates.
	if r.Value("admissible-economic-reallocation") <= r.Value("admissible-pinned-node-delay") {
		t.Errorf("reallocation admissibility %v not above delay %v",
			r.Value("admissible-economic-reallocation"), r.Value("admissible-pinned-node-delay"))
	}
}

func TestAblationLevelsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	r, err := AblationLevels(DefaultAblationLevels(1, 120))
	if err != nil {
		t.Fatal(err)
	}
	// MS1 must be cheaper to generate but cover fewer admissible levels.
	if r.Value("evaluations-MS1") >= r.Value("evaluations-S1") {
		t.Errorf("MS1 evaluations %v not below S1 %v",
			r.Value("evaluations-MS1"), r.Value("evaluations-S1"))
	}
	if r.Value("levels-MS1") >= r.Value("levels-S1") {
		t.Errorf("MS1 coverage %v not below S1 %v",
			r.Value("levels-MS1"), r.Value("levels-S1"))
	}
}

func TestComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	r, err := Comparison(DefaultFig3(1, 120))
	if err != nil {
		t.Fatal(err)
	}
	// The cost-targeted critical works run must be far cheaper than any
	// ECT heuristic (which cannot trade promptness for cost at all), while
	// staying usefully admissible; and the promptness-targeted run must be
	// at least as cheap as min-min.
	if r.Value("cf-critical-works-mincost") >= r.Value("cf-min-min") {
		t.Errorf("mincost CF %v not below min-min %v",
			r.Value("cf-critical-works-mincost"), r.Value("cf-min-min"))
	}
	if r.Value("admissible-critical-works-mincost") < 0.3 {
		t.Errorf("mincost admissibility collapsed: %v", r.Value("admissible-critical-works-mincost"))
	}
	if r.Value("cf-critical-works") > r.Value("cf-min-min") {
		t.Errorf("critical works CF %v above min-min %v",
			r.Value("cf-critical-works"), r.Value("cf-min-min"))
	}
	// OLB is the known-weak baseline: everything beats it on admissibility.
	if r.Value("admissible-olb") >= r.Value("admissible-critical-works") {
		t.Errorf("OLB admissibility %v not below critical works %v",
			r.Value("admissible-olb"), r.Value("admissible-critical-works"))
	}
}

func TestFig4Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	cfg := DefaultFig4(3, 40)
	a1, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a1.Values {
		if a2.Values[k] != v {
			t.Errorf("value %q differs across identical runs: %v vs %v", k, v, a2.Values[k])
		}
	}
}

func TestLocalPassingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	r, err := LocalPassing(DefaultFig4(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	// §5: reservations guarantee the plan; queued local passing loses a
	// substantial share of deadlines.
	if r.Value("met-reserved") != 1 {
		t.Errorf("reserved share = %v", r.Value("met-reserved"))
	}
	if r.Value("met-queued") >= r.Value("met-reserved") {
		t.Errorf("queued share %v not below reserved %v",
			r.Value("met-queued"), r.Value("met-reserved"))
	}
	if r.Value("met-queued") > 0 && r.Value("mean-lateness") <= 0 && r.Value("met-queued") < 1 {
		t.Error("late jobs exist but lateness is zero")
	}
}

func TestReportWriteTo(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== fig2:") || !strings.Contains(out, "critical works") {
		t.Errorf("unexpected report rendering:\n%s", out)
	}
}

func TestReportValuePanicsOnUnknownKey(t *testing.T) {
	r := newReport("x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown key did not panic")
		}
	}()
	r.Value("nope")
}

func TestAvailabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	cfg := DefaultAvailability(1, 60)
	cfg.Levels = []float64{1.0, 0.9, 0.8}
	r, err := Availability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{"S1", "S2", "S3"} {
		base := r.Value("miss-" + typ + "-1.00")
		worst := r.Value("miss-" + typ + "-0.80")
		// The fault-free baseline must be the best case: an unreliable
		// environment cannot lower the QoS-miss rate.
		if worst < base {
			t.Errorf("%s: miss rate at 80%% availability (%v) below baseline (%v)",
				typ, worst, base)
		}
		// The baseline runs with faults disabled: no failure machinery fires.
		if r.Value("failures-"+typ+"-1.00") != 0 || r.Value("retries-"+typ+"-1.00") != 0 {
			t.Errorf("%s: fault counters nonzero in the fault-free baseline", typ)
		}
		// Degraded runs actually exercise the recovery ladder.
		if r.Value("failures-"+typ+"-0.80") == 0 {
			t.Errorf("%s: no task failures at 80%% availability", typ)
		}
	}
}

func TestAvailabilityDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment")
	}
	cfg := DefaultAvailability(3, 30)
	cfg.Levels = []float64{0.9}
	a, err := Availability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Availability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Values {
		if b.Values[k] != v {
			t.Errorf("value %q differs across identical faulty runs: %v vs %v", k, v, b.Values[k])
		}
	}
}
