// Package experiments contains one runner per artifact of the paper's
// evaluation (§3 Fig. 2, §4 Fig. 3–4), the §5 local-policy claims, and two
// ablations of the method's design choices. Each runner returns a Report
// holding both the printable table and the raw values the tests and
// benchmarks assert against; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is one experiment's outcome.
type Report struct {
	// ID is the experiment identifier (e.g. "fig3a").
	ID string
	// Title describes the paper artifact being regenerated.
	Title string
	// Lines is the formatted table, one row per line.
	Lines []string
	// Values holds the raw numbers keyed by row/series name.
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Report) addLine(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// WriteTo prints the report in the harness's standard layout.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Value returns the named value, panicking on unknown keys so that typos
// in tests and benchmarks fail loudly.
func (r *Report) Value(key string) float64 {
	v, ok := r.Values[key]
	if !ok {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		panic(fmt.Sprintf("experiments: report %s has no value %q (have %v)", r.ID, key, keys))
	}
	return v
}
