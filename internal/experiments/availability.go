package experiments

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/faults"
	"repro/internal/metasched"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// AvailabilityConfig parameterizes the fault-injection sweep (E12): one VO
// run per (strategy family, node availability level), the same workload
// and fault seed at every level so only the outage intensity varies.
type AvailabilityConfig struct {
	Seed    uint64
	Jobs    int
	Domains int

	// Levels are the steady-state node availabilities to sweep, from 1.0
	// (faults off, the seed baseline) downward.
	Levels []float64
	// MTTR is the mean outage duration; MTBF is derived per level as
	// MTTR·a/(1−a).
	MTTR float64
	// TaskFailRate and MaxRetries tune the mid-run failure ladder.
	TaskFailRate float64
	MaxRetries   int
}

// DefaultAvailability returns the calibrated sweep configuration.
func DefaultAvailability(seed uint64, jobs int) AvailabilityConfig {
	return AvailabilityConfig{
		Seed:         seed,
		Jobs:         jobs,
		Domains:      2,
		Levels:       []float64{1.0, 0.98, 0.95, 0.9, 0.8},
		MTTR:         20,
		TaskFailRate: 0.05,
		MaxRetries:   2,
	}
}

// availOutcome aggregates one (type, availability) run.
type availOutcome struct {
	missRate  float64
	meanTTL   float64
	fallbacks int
	reallocs  int
	stats     *metrics.FaultStats
}

// runAvailability executes one VO run with the outage process tuned to
// the given availability. No background (external) load: the sweep
// isolates the fault model's effect.
func runAvailability(cfg AvailabilityConfig, typ strategy.Type, avail float64) (*availOutcome, error) {
	gen := workload.New(fig4Workload(cfg.Seed))
	env := gen.Environment(cfg.Domains)
	engine := sim.New()

	flow := gen.Flow(0, cfg.Jobs, 0)
	var until int64
	if len(flow) > 0 {
		until = flow[len(flow)-1].At + 200
	}
	mtbf, mttr := faults.ForAvailability(avail, cfg.MTTR)
	fcfg := faults.Config{
		MTBF:             mtbf,
		MTTR:             mttr,
		DomainOutageProb: 0.1,
		TaskFailRate:     cfg.TaskFailRate,
		MaxRetries:       cfg.MaxRetries,
		Until:            until,
		Seed:             cfg.Seed,
	}
	if avail >= 1 {
		fcfg = faults.Config{}
	}
	vo := metasched.NewVO(engine, env, metasched.Config{
		Objective: criticalworks.MinCost,
		Seed:      cfg.Seed,
		Faults:    fcfg,
	})
	for _, a := range flow {
		vo.Submit(a.Job, typ, a.At)
	}
	engine.Run()

	out := &availOutcome{stats: vo.FaultStats()}
	var ttl metrics.Series
	total, rejected := 0, 0
	for _, r := range vo.Results() {
		total++
		out.fallbacks += r.Fallbacks
		out.reallocs += r.Reallocations
		for _, t := range r.TTLs {
			ttl.AddInt(int64(t))
		}
		if r.State != metasched.StateCompleted {
			rejected++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: availability %v/%v ran no jobs", typ, avail)
	}
	out.missRate = float64(rejected) / float64(total)
	out.meanTTL = ttl.Mean()
	return out, nil
}

// Availability runs the fault-injection sweep: QoS-miss rate and mean
// strategy time-to-live versus node availability, per strategy family
// S1–S3. As availability drops, the miss rate must rise (within noise)
// and plans live shorter — the quantitative cost of an unreliable
// environment that the supporting-schedule machinery absorbs.
func Availability(cfg AvailabilityConfig) (*Report, error) {
	types := []strategy.Type{strategy.S1, strategy.S2, strategy.S3}
	r := newReport("availability",
		"QoS-miss rate and strategy TTL vs node availability (fault-injection sweep)")
	r.addLine("%-6s %7s %10s %10s %10s %9s %9s %9s %8s", "type", "avail",
		"miss-rate", "mean-ttl", "failures", "retries", "fallbk", "realloc", "outages")
	for _, typ := range types {
		for _, avail := range cfg.Levels {
			o, err := runAvailability(cfg, typ, avail)
			if err != nil {
				return nil, err
			}
			r.addLine("%-6s %7.2f %10s %10.1f %10d %9d %9d %9d %8d",
				typ, avail, metrics.Ratio(o.missRate), o.meanTTL,
				o.stats.TaskFailures, o.stats.Retries,
				o.fallbacks, o.reallocs, o.stats.NodeOutages)
			key := fmt.Sprintf("%s-%.2f", typ, avail)
			r.Values["miss-"+key] = o.missRate
			r.Values["ttl-"+key] = o.meanTTL
			r.Values["failures-"+key] = float64(o.stats.TaskFailures)
			r.Values["retries-"+key] = float64(o.stats.Retries)
			r.Values["reallocs-"+key] = float64(o.reallocs)
		}
	}
	return r, nil
}
