package experiments

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/criticalworks"
	"repro/internal/faults"
	"repro/internal/metasched"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// AvailabilityConfig parameterizes the fault-injection sweep (E12): one VO
// run per (strategy family, node availability level), the same workload
// and fault seed at every level so only the outage intensity varies.
type AvailabilityConfig struct {
	Seed    uint64
	Jobs    int
	Domains int

	// Levels are the steady-state node availabilities to sweep, from 1.0
	// (faults off, the seed baseline) downward.
	Levels []float64
	// MTTR is the mean outage duration; MTBF is derived per level as
	// MTTR·a/(1−a).
	MTTR float64
	// TaskFailRate and MaxRetries tune the mid-run failure ladder.
	TaskFailRate float64
	MaxRetries   int

	// Workers bounds the pool running the (family × availability) cells;
	// ≤ 0 means one worker per CPU, 1 forces the sequential path. Cells
	// are independent VO runs, so any worker count produces byte-identical
	// reports and traces.
	Workers int
	// Trace, when set, receives every cell's JSONL VO trace, flushed in
	// cell (row) order after the pool drains.
	Trace io.Writer
	// Telemetry, when non-nil, receives the hierarchy's runtime metrics
	// from every cell. Observe-only: reports and traces stay byte-identical.
	Telemetry *telemetry.Registry
	// NoRepair forwards metasched.Config.NoRepair: disable incremental
	// strategy repair and run every fallback re-anchor as a full rebuild.
	// Reports and traces are byte-identical either way (the repair
	// differential suite pins this).
	NoRepair bool
}

// DefaultAvailability returns the calibrated sweep configuration.
func DefaultAvailability(seed uint64, jobs int) AvailabilityConfig {
	return AvailabilityConfig{
		Seed:         seed,
		Jobs:         jobs,
		Domains:      2,
		Levels:       []float64{1.0, 0.98, 0.95, 0.9, 0.8},
		MTTR:         20,
		TaskFailRate: 0.05,
		MaxRetries:   2,
	}
}

// availOutcome aggregates one (type, availability) run.
type availOutcome struct {
	missRate  float64
	meanTTL   float64
	fallbacks int
	reallocs  int
	stats     *metrics.FaultStats
}

// runAvailability executes one VO run with the outage process tuned to
// the given availability. No background (external) load: the sweep
// isolates the fault model's effect. tracer may be nil.
func runAvailability(cfg AvailabilityConfig, typ strategy.Type, avail float64, tracer metasched.Tracer) (*availOutcome, error) {
	gen := workload.New(fig4Workload(cfg.Seed))
	env := gen.Environment(cfg.Domains)
	engine := sim.New()

	flow := gen.Flow(0, cfg.Jobs, 0)
	var until int64
	if len(flow) > 0 {
		until = flow[len(flow)-1].At + 200
	}
	mtbf, mttr := faults.ForAvailability(avail, cfg.MTTR)
	fcfg := faults.Config{
		MTBF:             mtbf,
		MTTR:             mttr,
		DomainOutageProb: 0.1,
		TaskFailRate:     cfg.TaskFailRate,
		MaxRetries:       cfg.MaxRetries,
		Until:            until,
		Seed:             cfg.Seed,
	}
	if avail >= 1 {
		fcfg = faults.Config{}
	}
	vo := metasched.NewVO(engine, env, metasched.Config{
		Objective: criticalworks.MinCost,
		Seed:      cfg.Seed,
		Faults:    fcfg,
		Workers:   cfg.Workers,
		Tracer:    tracer,
		Telemetry: cfg.Telemetry,
		NoRepair:  cfg.NoRepair,
	})
	for _, a := range flow {
		vo.Submit(a.Job, typ, a.At)
	}
	engine.Run()

	out := &availOutcome{stats: vo.FaultStats()}
	var ttl metrics.Series
	total, rejected := 0, 0
	for _, r := range vo.Results() {
		total++
		out.fallbacks += r.Fallbacks
		out.reallocs += r.Reallocations
		for _, t := range r.TTLs {
			ttl.AddInt(int64(t))
		}
		if r.State != metasched.StateCompleted {
			rejected++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: availability %v/%v ran no jobs", typ, avail)
	}
	out.missRate = float64(rejected) / float64(total)
	out.meanTTL = ttl.Mean()
	return out, nil
}

// Availability runs the fault-injection sweep: QoS-miss rate and mean
// strategy time-to-live versus node availability, per strategy family
// S1–S3. As availability drops, the miss rate must rise (within noise)
// and plans live shorter — the quantitative cost of an unreliable
// environment that the supporting-schedule machinery absorbs.
func Availability(cfg AvailabilityConfig) (*Report, error) {
	types := []strategy.Type{strategy.S1, strategy.S2, strategy.S3}
	r := newReport("availability",
		"QoS-miss rate and strategy TTL vs node availability (fault-injection sweep)")
	r.addLine("%-6s %7s %10s %10s %10s %9s %9s %9s %8s", "type", "avail",
		"miss-rate", "mean-ttl", "failures", "retries", "fallbk", "realloc", "outages")

	// The sweep grid is one independent VO run per (family, availability)
	// cell; the cells fan out across the pool and the report rows (and
	// traces) are emitted in grid order afterwards.
	type cell struct {
		typ   strategy.Type
		avail float64
	}
	var grid []cell
	for _, typ := range types {
		for _, avail := range cfg.Levels {
			grid = append(grid, cell{typ: typ, avail: avail})
		}
	}
	traces := make([]bytes.Buffer, len(grid))
	outs, err := parallel.Map(cfg.Workers, len(grid), func(i int) (*availOutcome, error) {
		var tracer metasched.Tracer
		if cfg.Trace != nil {
			tracer = metasched.NewJSONLTracer(&traces[i])
		}
		return runAvailability(cfg, grid[i].typ, grid[i].avail, tracer)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range grid {
		o := outs[i]
		if cfg.Trace != nil {
			if _, err := cfg.Trace.Write(traces[i].Bytes()); err != nil {
				return nil, fmt.Errorf("experiments: availability trace: %w", err)
			}
		}
		r.addLine("%-6s %7.2f %10s %10.1f %10d %9d %9d %9d %8d",
			c.typ, c.avail, metrics.Ratio(o.missRate), o.meanTTL,
			o.stats.TaskFailures, o.stats.Retries,
			o.fallbacks, o.reallocs, o.stats.NodeOutages)
		key := fmt.Sprintf("%s-%.2f", c.typ, c.avail)
		r.Values["miss-"+key] = o.missRate
		r.Values["ttl-"+key] = o.meanTTL
		r.Values["failures-"+key] = float64(o.stats.TaskFailures)
		r.Values["retries-"+key] = float64(o.stats.Retries)
		r.Values["reallocs-"+key] = float64(o.reallocs)
	}
	return r, nil
}
