package experiments

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// PoliciesConfig parameterizes the §5 local-queue study: the paper's
// conclusions compare FCFS, LWF and backfilling, and observe that advance
// reservations "nearly always increase queue waiting time" while
// "backfilling decreases this time".
type PoliciesConfig struct {
	Seed     uint64
	Jobs     int
	Nodes    int
	MeanGap  float64 // mean inter-arrival
	WallLo   simtime.Time
	WallHi   simtime.Time
	RunLo    float64 // runtime as a fraction of walltime, lower bound
	RunHi    float64
	MaxNodes int // per-request node demand bound
	// ReservedShare is the fraction of jobs submitted as advance
	// reservations in the +reservations scenario.
	ReservedShare float64
	// ReserveLead is how far ahead reservations book their start.
	ReserveLead simtime.Time
	// GangQuantum is the gang scheduler's time slice.
	GangQuantum simtime.Time
}

// DefaultPolicies returns the calibrated configuration.
func DefaultPolicies(seed uint64, jobs int) PoliciesConfig {
	return PoliciesConfig{
		Seed:          seed,
		Jobs:          jobs,
		Nodes:         16,
		MeanGap:       9,
		WallLo:        5,
		WallHi:        60,
		RunLo:         0.5,
		RunHi:         1.0,
		MaxNodes:      8,
		ReservedShare: 0.2,
		ReserveLead:   30,
		GangQuantum:   5,
	}
}

// policyStream builds the request stream shared by every policy run.
type policyArrival struct {
	req batch.Request
	at  simtime.Time
}

func policyStream(cfg PoliciesConfig) []policyArrival {
	r := rng.New(cfg.Seed).Split(0x90)
	out := make([]policyArrival, cfg.Jobs)
	t := 0.0
	for i := range out {
		t += r.Exp(cfg.MeanGap)
		wall := simtime.Time(r.Int64Between(int64(cfg.WallLo), int64(cfg.WallHi)))
		run := simtime.Time(float64(wall) * r.Float64Between(cfg.RunLo, cfg.RunHi))
		if run < 1 {
			run = 1
		}
		out[i] = policyArrival{
			req: batch.Request{
				ID:       fmt.Sprintf("j%05d", i),
				Nodes:    r.IntBetween(1, cfg.MaxNodes),
				Walltime: wall,
				Runtime:  run,
			},
			at: simtime.Time(t),
		}
	}
	return out
}

// policyStats summarizes one run.
type policyStats struct {
	meanWait, p95Wait, maxWait float64
	meanErr                    float64
	meanResponse               float64
	killed                     int
}

func runPolicy(cfg PoliciesConfig, mk func(e *sim.Engine) batch.System, reservedShare float64) policyStats {
	e := sim.New()
	sys := mk(e)
	rr := rng.New(cfg.Seed).Split(0x91)
	for _, a := range policyStream(cfg) {
		a := a
		reserved := rr.Float64() < reservedShare
		e.At(a.at, "submit "+a.req.ID, func() {
			if reserved {
				if c, ok := sys.(*batch.Cluster); ok {
					if c.SubmitReservation(a.req, e.Now()+cfg.ReserveLead) {
						return
					}
				}
			}
			sys.Submit(a.req)
		})
	}
	e.Run()
	var wait, errs, resp metrics.Series
	st := policyStats{}
	for _, o := range sys.Outcomes() {
		if o.Reserved {
			continue // the study measures the queued jobs' waits
		}
		wait.AddInt(int64(o.Wait()))
		errs.AddInt(int64(o.ForecastError()))
		resp.AddInt(int64(o.End - o.Arrival))
		if o.Killed {
			st.killed++
		}
	}
	st.meanWait = wait.Mean()
	st.p95Wait = wait.Percentile(95)
	st.maxWait = wait.Max()
	st.meanErr = errs.Mean()
	st.meanResponse = resp.Mean()
	return st
}

// Policies regenerates the §5 local-policy comparison (E7): queue waiting
// time and start-forecast error per policy, the backfilling gain, and the
// advance-reservation penalty.
func Policies(cfg PoliciesConfig) (*Report, error) {
	r := newReport("policies", "local batch policies (paper §5: backfilling shrinks waits, reservations grow them)")
	type entry struct {
		name string
		mk   func(e *sim.Engine) batch.System
		res  float64
	}
	entries := []entry{
		{"FCFS", func(e *sim.Engine) batch.System { return batch.NewCluster(e, cfg.Nodes, batch.Policy{}) }, 0},
		{"LWF", func(e *sim.Engine) batch.System {
			return batch.NewCluster(e, cfg.Nodes, batch.Policy{Discipline: batch.LWF})
		}, 0},
		{"FCFS+easy-backfill", func(e *sim.Engine) batch.System {
			return batch.NewCluster(e, cfg.Nodes, batch.Policy{Backfill: batch.EasyBackfill})
		}, 0},
		{"FCFS+conservative-backfill", func(e *sim.Engine) batch.System {
			return batch.NewCluster(e, cfg.Nodes, batch.Policy{Backfill: batch.ConservativeBackfill})
		}, 0},
		{"FCFS+reservations", func(e *sim.Engine) batch.System {
			return batch.NewCluster(e, cfg.Nodes, batch.Policy{})
		}, cfg.ReservedShare},
		{"gang", func(e *sim.Engine) batch.System { return batch.NewGang(e, cfg.Nodes, cfg.GangQuantum) }, 0},
	}
	r.addLine("%-28s %10s %10s %10s %12s %12s", "policy", "mean-wait", "p95-wait", "max-wait", "mean-error", "mean-resp")
	for _, en := range entries {
		st := runPolicy(cfg, en.mk, en.res)
		r.addLine("%-28s %10.1f %10.1f %10.1f %12.1f %12.1f",
			en.name, st.meanWait, st.p95Wait, st.maxWait, st.meanErr, st.meanResponse)
		r.Values["wait-"+en.name] = st.meanWait
		r.Values["maxwait-"+en.name] = st.maxWait
		r.Values["error-"+en.name] = st.meanErr
		r.Values["response-"+en.name] = st.meanResponse
	}
	return r, nil
}
