package experiments

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Fig3Config parameterizes the §4 application-level study: strategies are
// generated per job against resources carrying random background load from
// independent flows, without job-flow coordination.
type Fig3Config struct {
	Seed uint64
	// Jobs is the corpus size; the paper used "more than 12000".
	Jobs int
	// BackgroundPerNode is the mean number of background reservations per
	// node in each job's snapshot.
	BackgroundPerNode float64
	// BackgroundDurLo/Hi bound each background reservation's length.
	BackgroundDurLo, BackgroundDurHi simtime.Time
	// BackgroundSpan is the horizon background load is scattered over.
	BackgroundSpan simtime.Time
	// DeadlineFactor overrides the workload's deadline stretch (0 keeps
	// the workload default). Tighter deadlines push strategies with heavy
	// data-transfer penalties onto fast nodes.
	DeadlineFactor float64
	// TransferLo/Hi override the workload's transfer-time range (0 keeps
	// the default). Heavier transfers widen the gap between the data
	// policies, which is what separates the strategies' collision
	// profiles.
	TransferLo, TransferHi simtime.Time
	// MinWidth/MaxWidth override the job parallelism degree (0 keeps the
	// default). §4 conformed the node count to the task parallelism.
	MinWidth, MaxWidth int
	// MinLayers/MaxLayers override the job depth (0 keeps the default).
	MinLayers, MaxLayers int
	// PipelineProb/MaxPipeline override the linear-run structure (0 keeps
	// the defaults). Long pipelines make coarse-grain macro tasks dominate
	// the critical path, forcing S3 onto the fastest nodes.
	PipelineProb float64
	MaxPipeline  int
	// Workers bounds the pool fanning per-job strategy builds across
	// goroutines; ≤ 0 means one worker per CPU, 1 forces the sequential
	// path. Every worker count produces byte-identical reports: each job
	// draws from its own pre-split RNG stream and the per-job tallies are
	// merged in job order.
	Workers int
	// Telemetry, when non-nil, receives grid_strategy_* and
	// grid_criticalworks_* runtime metrics from every build. Observe-only:
	// reports are byte-identical with or without it, at any worker count.
	Telemetry *telemetry.Registry
}

// DefaultFig3 returns the calibrated configuration (see EXPERIMENTS.md for
// the calibration trail: the collision split is most sensitive to the
// transfer weight and pipeline length, the admissibility rates to the
// deadline factor and background volume).
func DefaultFig3(seed uint64, jobs int) Fig3Config {
	return Fig3Config{
		Seed:              seed,
		Jobs:              jobs,
		BackgroundPerNode: 10,
		BackgroundDurLo:   10,
		BackgroundDurHi:   25,
		BackgroundSpan:    250,
		DeadlineFactor:    1.2,
		TransferLo:        2,
		TransferHi:        8,
		MinWidth:          2,
		MaxWidth:          4,
		MinLayers:         3,
		MaxLayers:         5,
		PipelineProb:      0.8,
		MaxPipeline:       5,
	}
}

// fig3Strategies are the families of the application-level study.
var fig3Strategies = []strategy.Type{strategy.S1, strategy.S2, strategy.S3}

// loadedCalendars builds one job's background-load snapshot: every node
// receives a random number of external reservations scattered over the
// background span.
func loadedCalendars(env *resource.Environment, r *rng.Source, cfg Fig3Config) criticalworks.Calendars {
	cals := criticalworks.EmptyCalendars(env)
	for _, n := range env.Nodes() {
		count := int(cfg.BackgroundPerNode)
		if r.Float64() < cfg.BackgroundPerNode-float64(count) {
			count++
		}
		for k := 0; k < count; k++ {
			start := simtime.Time(r.Int64n(int64(cfg.BackgroundSpan)))
			dur := simtime.Time(r.Int64Between(int64(cfg.BackgroundDurLo), int64(cfg.BackgroundDurHi)))
			// Conflicting background windows are simply dropped.
			_ = cals[n.ID].Reserve(simtime.Interval{Start: start, End: start + dur}, resource.External)
		}
	}
	return cals
}

// fig3Run holds the per-strategy aggregates of one corpus pass.
type fig3Run struct {
	admissible map[strategy.Type]int
	collisions map[strategy.Type]*metrics.Counter
	total      int
}

// fig3WorkloadConfig translates the experiment config into workload
// overrides.
func fig3WorkloadConfig(cfg Fig3Config) workload.Config {
	wcfg := workload.Default(cfg.Seed)
	if cfg.DeadlineFactor > 0 {
		wcfg.DeadlineFactor = cfg.DeadlineFactor
	}
	if cfg.TransferHi > 0 {
		wcfg.TransferLo, wcfg.TransferHi = cfg.TransferLo, cfg.TransferHi
	}
	if cfg.MaxWidth > 0 {
		wcfg.MinWidth, wcfg.MaxWidth = cfg.MinWidth, cfg.MaxWidth
	}
	if cfg.MaxLayers > 0 {
		wcfg.MinLayers, wcfg.MaxLayers = cfg.MinLayers, cfg.MaxLayers
	}
	if cfg.MaxPipeline > 0 {
		wcfg.PipelineProb, wcfg.MaxPipeline = cfg.PipelineProb, cfg.MaxPipeline
	}
	return wcfg
}

// fig3Background returns the root source for per-job background snapshots.
func fig3Background(cfg Fig3Config) *rng.Source {
	return rng.New(cfg.Seed).Split(0xB6)
}

// fig3JobTally is one job's contribution to the corpus aggregates, indexed
// by position in fig3Strategies. Units fill tallies independently; the
// merge walks them in job order, so the aggregates are identical at any
// worker count.
type fig3JobTally struct {
	admissible [3]bool
	fast, slow [3]int
}

// runFig3 generates each job's strategy for every family against identical
// background snapshots and tallies admissibility and collision placement.
// The per-job builds fan out across cfg.Workers goroutines: each job's
// background snapshot comes from its own pre-split RNG stream, and the
// tallies are merged in job order after the pool drains.
func runFig3(cfg Fig3Config) (*fig3Run, error) {
	gen := workload.New(fig3WorkloadConfig(cfg))
	env := gen.Environment(1)
	streams := fig3Background(cfg).SplitN(cfg.Jobs)

	// MinCost reproduces the paper's economics: strategies drift to the
	// cheapest (slowest) nodes their deadline and data policy allow, which
	// is what shapes both the admissibility rates and the collision split.
	sgen := &strategy.Generator{Env: env, Objective: criticalworks.MinCost, Telemetry: cfg.Telemetry}

	tallies, err := parallel.Map(cfg.Workers, cfg.Jobs, func(i int) (fig3JobTally, error) {
		var tally fig3JobTally
		job := gen.Job(i)
		cals := loadedCalendars(env, streams[i], cfg)
		for ti, typ := range fig3Strategies {
			st, err := sgen.Generate(job, typ, cals, 0)
			if err != nil {
				return tally, fmt.Errorf("experiments: fig3 job %d type %v: %w", i, typ, err)
			}
			tally.admissible[ti] = st.Admissible()
			// Fig. 3b counts the conflicts of the supporting schedules the
			// strategy actually consists of — the admissible distributions
			// (attempts at levels that end up infeasible are not part of
			// the strategy). The two-way split is "fast" nodes
			// (performance 0.66–1) versus the slower rest.
			for _, d := range st.Distributions {
				if !d.Admissible {
					continue
				}
				for _, c := range d.Schedule.Collisions {
					if env.Node(c.Node).Group() == resource.GroupFast {
						tally.fast[ti]++
					} else {
						tally.slow[ti]++
					}
				}
			}
		}
		return tally, nil
	})
	if err != nil {
		return nil, err
	}

	run := &fig3Run{
		admissible: make(map[strategy.Type]int),
		collisions: make(map[strategy.Type]*metrics.Counter),
		total:      cfg.Jobs,
	}
	for _, typ := range fig3Strategies {
		run.collisions[typ] = metrics.NewCounter()
	}
	for _, tally := range tallies {
		for ti, typ := range fig3Strategies {
			if tally.admissible[ti] {
				run.admissible[typ]++
			}
			run.collisions[typ].Inc("fast", tally.fast[ti])
			run.collisions[typ].Inc("slow", tally.slow[ti])
		}
	}
	return run, nil
}

// Fig3a regenerates Fig. 3(a): the percentage of jobs with at least one
// admissible application-level schedule per strategy family (paper: S1
// 38%, S2 37%, S3 33%).
func Fig3a(cfg Fig3Config) (*Report, error) {
	run, err := runFig3(cfg)
	if err != nil {
		return nil, err
	}
	r := newReport("fig3a", "admissible application-level schedules (paper Fig. 3a: S1 38%, S2 37%, S3 33%)")
	r.addLine("%-6s %12s  (over %d jobs)", "type", "admissible", run.total)
	for _, typ := range fig3Strategies {
		share := float64(run.admissible[typ]) / float64(run.total)
		r.addLine("%-6s %12s", typ, metrics.Ratio(share))
		r.Values["admissible-"+typ.String()] = share
	}
	return r, nil
}

// Fig3b regenerates Fig. 3(b): where collisions between critical works
// land — fast versus slow nodes (paper: S1 32/68, S2 56/44, S3 74/26).
func Fig3b(cfg Fig3Config) (*Report, error) {
	run, err := runFig3(cfg)
	if err != nil {
		return nil, err
	}
	r := newReport("fig3b", "collision split across node speeds (paper Fig. 3b: S1 32/68, S2 56/44, S3 74/26)")
	r.addLine("%-6s %8s %8s %10s", "type", "fast", "slow", "collisions")
	for _, typ := range fig3Strategies {
		c := run.collisions[typ]
		r.addLine("%-6s %8s %8s %10d", typ,
			metrics.Ratio(c.Share("fast")), metrics.Ratio(c.Share("slow")), c.Total())
		r.Values["fast-"+typ.String()] = c.Share("fast")
		r.Values["slow-"+typ.String()] = c.Share("slow")
		r.Values["total-"+typ.String()] = float64(c.Total())
	}
	return r, nil
}
