package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// The repair differential gate: incremental strategy repair (DESIGN.md
// §14) must be invisible in every byte the experiments emit. Each case
// runs the same configuration twice — repair on (the default) and
// NoRepair (every fallback re-anchor a full rebuild) — and requires
// byte-identical reports, identical raw value maps, and byte-identical
// traces. The availability sweep is the sharp case: outages void
// reservations mid-run, so the fallback path (the only consumer of the
// repair memos) fires constantly.

func TestRepairMatchesFullRebuild(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}

	cases := []struct {
		name string
		run  func(t *testing.T, seed uint64, noRepair bool) diffOutcome
	}{
		{"availability", func(t *testing.T, seed uint64, noRepair bool) diffOutcome {
			var trace bytes.Buffer
			cfg := DefaultAvailability(seed, 12)
			cfg.Levels = []float64{1.0, 0.95, 0.8}
			cfg.Trace = &trace
			cfg.NoRepair = noRepair
			r, err := Availability(cfg)
			return capture(t, r, err, &trace)
		}},
		{"fig4", func(t *testing.T, seed uint64, noRepair bool) diffOutcome {
			var trace bytes.Buffer
			cfg := DefaultFig4(seed, 25)
			cfg.Trace = &trace
			cfg.NoRepair = noRepair
			r, err := Fig4c(cfg)
			return capture(t, r, err, &trace)
		}},
		{"local-passing", func(t *testing.T, seed uint64, noRepair bool) diffOutcome {
			cfg := DefaultFig4(seed, 25)
			cfg.NoRepair = noRepair
			r, err := LocalPassing(cfg)
			return capture(t, r, err, nil)
		}},
	}

	for _, tc := range cases {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				on := tc.run(t, seed, false)
				off := tc.run(t, seed, true)
				if !bytes.Equal(on.report, off.report) {
					t.Errorf("report bytes differ between repair and -no-repair\nrepair:\n%s\nno-repair:\n%s",
						on.report, off.report)
				}
				if !reflect.DeepEqual(on.values, off.values) {
					t.Errorf("raw values differ between repair and -no-repair:\nrepair:    %v\nno-repair: %v",
						on.values, off.values)
				}
				if !bytes.Equal(on.trace, off.trace) {
					t.Errorf("trace bytes differ between repair and -no-repair (%d vs %d bytes)",
						len(on.trace), len(off.trace))
				}
			})
		}
	}
}

// TestRepairActuallyFires pins the differential suite against vacuity:
// under the availability sweep the repair path must serve a non-zero
// number of fallback re-anchors from memos (replays or splices), and
// with NoRepair the counters must not even be registered. Without this,
// byte-equality above could silently mean "repair never ran".
func TestRepairActuallyFires(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultAvailability(3, 12)
	cfg.Levels = []float64{1.0, 0.95, 0.8}
	cfg.Telemetry = reg
	if _, err := Availability(cfg); err != nil {
		t.Fatal(err)
	}
	hits := reg.Counter("grid_repair_hits_total", "").Value()
	splices := reg.Counter("grid_repair_splices_total", "").Value()
	misses := reg.Counter("grid_repair_misses_total", "").Value()
	rebuilds := reg.Counter("grid_repair_full_rebuilds_total", "").Value()
	t.Logf("repair counters: hits=%d splices=%d misses=%d full_rebuilds=%d", hits, splices, misses, rebuilds)
	if hits+splices == 0 {
		t.Error("repair never served a fallback re-anchor: the differential gate is vacuous")
	}
	if hits+splices+rebuilds == 0 {
		t.Error("no fallback builds at all: the sweep no longer exercises the fallback path")
	}

	off := telemetry.NewRegistry()
	cfg.Telemetry = off
	cfg.NoRepair = true
	if _, err := Availability(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := off.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("grid_repair_")) {
		t.Error("NoRepair run registered grid_repair_* counters")
	}
}
