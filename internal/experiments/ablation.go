package experiments

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// AblationCollision (E8) isolates the paper's collision-resolution design
// choice (§3): resolving a blocked critical work by economic reallocation
// — the DP is free to pay for another node — versus the naive baseline
// that only ever delays the task on its ideal node.
func AblationCollision(cfg Fig3Config) (*Report, error) {
	r := newReport("ablation-collision",
		"collision resolution: economic reallocation vs pinned-node delay (§3 design choice)")
	wcfg := fig3WorkloadConfig(cfg)
	gen := workload.New(wcfg)
	env := gen.Environment(1)

	type stats struct {
		admissible int
		finish     metrics.Series
		cost       metrics.Series
	}
	// Each job is an independent unit; the per-job outcomes are merged into
	// the Series in job order so the float accumulation (and therefore the
	// report bytes) is identical at any worker count.
	type jobOutcome struct {
		admissible bool
		finish     int64
		cost       int64
	}
	run := func(mode criticalworks.CollisionMode) (*stats, error) {
		sgen := &strategy.Generator{Env: env, Objective: criticalworks.MinCost, Mode: mode, Telemetry: cfg.Telemetry}
		streams := fig3Background(cfg).SplitN(cfg.Jobs)
		outs, err := parallel.Map(cfg.Workers, cfg.Jobs, func(i int) (jobOutcome, error) {
			job := gen.Job(i)
			cals := loadedCalendars(env, streams[i], cfg)
			s, err := sgen.Generate(job, strategy.S2, cals, 0)
			if err != nil || !s.Admissible() {
				return jobOutcome{}, nil
			}
			d := s.CheapestAdmissible()
			return jobOutcome{admissible: true, finish: int64(d.Finish), cost: d.BareCF}, nil
		})
		if err != nil {
			return nil, err
		}
		st := &stats{}
		for _, o := range outs {
			if !o.admissible {
				continue
			}
			st.admissible++
			st.finish.AddInt(o.finish)
			st.cost.AddInt(o.cost)
		}
		return st, nil
	}

	realloc, err := run(criticalworks.ResolveReallocate)
	if err != nil {
		return nil, err
	}
	delay, err := run(criticalworks.ResolveDelay)
	if err != nil {
		return nil, err
	}
	r.addLine("%-22s %12s %12s %10s", "mode", "admissible", "mean-finish", "mean-CF")
	for _, row := range []struct {
		name string
		st   *stats
	}{{"economic-reallocation", realloc}, {"pinned-node-delay", delay}} {
		share := float64(row.st.admissible) / float64(cfg.Jobs)
		r.addLine("%-22s %12s %12.1f %10.1f", row.name, metrics.Ratio(share),
			row.st.finish.Mean(), row.st.cost.Mean())
		r.Values["admissible-"+row.name] = share
		r.Values["finish-"+row.name] = row.st.finish.Mean()
		r.Values["cf-"+row.name] = row.st.cost.Mean()
	}
	return r, nil
}

// DefaultAblationLevels returns the E9 configuration: the Fig. 3 corpus
// with looser deadlines, so that the intermediate estimation levels are
// actually admissible and the S1-vs-MS1 coverage difference is visible.
func DefaultAblationLevels(seed uint64, jobs int) Fig3Config {
	cfg := DefaultFig3(seed, jobs)
	cfg.DeadlineFactor = 1.9
	cfg.BackgroundPerNode = 4
	return cfg
}

// AblationLevels (E9) quantifies §4's S1-vs-MS1 trade-off: sweeping only
// the best- and worst-case estimation levels (MS1) is cheaper to generate
// but covers fewer environment events than the full sweep (S1).
func AblationLevels(cfg Fig3Config) (*Report, error) {
	r := newReport("ablation-levels",
		"strategy breadth: full level sweep (S1) vs best/worst only (MS1) (§4)")
	wcfg := fig3WorkloadConfig(cfg)
	gen := workload.New(wcfg)
	env := gen.Environment(1)
	sgen := &strategy.Generator{Env: env, Objective: criticalworks.MinCost, Telemetry: cfg.Telemetry}

	type stats struct {
		admissible  int
		evaluations int64
		dists       int
	}
	ablationTypes := []strategy.Type{strategy.S1, strategy.MS1}
	type jobOutcome struct {
		admissible  [2]bool
		evaluations [2]int64
		dists       [2]int
	}
	streams := fig3Background(cfg).SplitN(cfg.Jobs)
	outs, err := parallel.Map(cfg.Workers, cfg.Jobs, func(i int) (jobOutcome, error) {
		var o jobOutcome
		job := gen.Job(i)
		cals := loadedCalendars(env, streams[i], cfg)
		for ti, typ := range ablationTypes {
			s, err := sgen.Generate(job, typ, cals, 0)
			if err != nil {
				return o, fmt.Errorf("experiments: ablation-levels job %d: %w", i, err)
			}
			o.admissible[ti] = s.Admissible()
			o.evaluations[ti] = s.Evaluations
			for _, d := range s.Distributions {
				if d.Admissible {
					o.dists[ti]++
				}
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[strategy.Type]*stats{strategy.S1: {}, strategy.MS1: {}}
	for _, o := range outs {
		for ti, typ := range ablationTypes {
			st := out[typ]
			if o.admissible[ti] {
				st.admissible++
			}
			st.evaluations += o.evaluations[ti]
			st.dists += o.dists[ti]
		}
	}
	r.addLine("%-6s %12s %16s %18s", "type", "admissible", "DP-evaluations", "admissible-levels")
	for _, typ := range []strategy.Type{strategy.S1, strategy.MS1} {
		st := out[typ]
		share := float64(st.admissible) / float64(cfg.Jobs)
		r.addLine("%-6s %12s %16d %18.2f", typ, metrics.Ratio(share),
			st.evaluations, float64(st.dists)/float64(cfg.Jobs))
		r.Values["admissible-"+typ.String()] = share
		r.Values["evaluations-"+typ.String()] = float64(st.evaluations)
		r.Values["levels-"+typ.String()] = float64(st.dists) / float64(cfg.Jobs)
	}
	return r, nil
}
