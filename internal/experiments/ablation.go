package experiments

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/metrics"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// AblationCollision (E8) isolates the paper's collision-resolution design
// choice (§3): resolving a blocked critical work by economic reallocation
// — the DP is free to pay for another node — versus the naive baseline
// that only ever delays the task on its ideal node.
func AblationCollision(cfg Fig3Config) (*Report, error) {
	r := newReport("ablation-collision",
		"collision resolution: economic reallocation vs pinned-node delay (§3 design choice)")
	wcfg := fig3WorkloadConfig(cfg)
	gen := workload.New(wcfg)
	env := gen.Environment(1)

	type stats struct {
		admissible int
		finish     metrics.Series
		cost       metrics.Series
	}
	run := func(mode criticalworks.CollisionMode) *stats {
		sgen := &strategy.Generator{Env: env, Objective: criticalworks.MinCost, Mode: mode}
		bg := fig3Background(cfg)
		st := &stats{}
		for i := 0; i < cfg.Jobs; i++ {
			job := gen.Job(i)
			cals := loadedCalendars(env, bg.Split(uint64(i)), cfg)
			s, err := sgen.Generate(job, strategy.S2, cals, 0)
			if err != nil {
				continue
			}
			if !s.Admissible() {
				continue
			}
			st.admissible++
			d := s.CheapestAdmissible()
			st.finish.AddInt(int64(d.Finish))
			st.cost.AddInt(d.BareCF)
		}
		return st
	}

	realloc := run(criticalworks.ResolveReallocate)
	delay := run(criticalworks.ResolveDelay)
	r.addLine("%-22s %12s %12s %10s", "mode", "admissible", "mean-finish", "mean-CF")
	for _, row := range []struct {
		name string
		st   *stats
	}{{"economic-reallocation", realloc}, {"pinned-node-delay", delay}} {
		share := float64(row.st.admissible) / float64(cfg.Jobs)
		r.addLine("%-22s %12s %12.1f %10.1f", row.name, metrics.Ratio(share),
			row.st.finish.Mean(), row.st.cost.Mean())
		r.Values["admissible-"+row.name] = share
		r.Values["finish-"+row.name] = row.st.finish.Mean()
		r.Values["cf-"+row.name] = row.st.cost.Mean()
	}
	return r, nil
}

// DefaultAblationLevels returns the E9 configuration: the Fig. 3 corpus
// with looser deadlines, so that the intermediate estimation levels are
// actually admissible and the S1-vs-MS1 coverage difference is visible.
func DefaultAblationLevels(seed uint64, jobs int) Fig3Config {
	cfg := DefaultFig3(seed, jobs)
	cfg.DeadlineFactor = 1.9
	cfg.BackgroundPerNode = 4
	return cfg
}

// AblationLevels (E9) quantifies §4's S1-vs-MS1 trade-off: sweeping only
// the best- and worst-case estimation levels (MS1) is cheaper to generate
// but covers fewer environment events than the full sweep (S1).
func AblationLevels(cfg Fig3Config) (*Report, error) {
	r := newReport("ablation-levels",
		"strategy breadth: full level sweep (S1) vs best/worst only (MS1) (§4)")
	wcfg := fig3WorkloadConfig(cfg)
	gen := workload.New(wcfg)
	env := gen.Environment(1)
	sgen := &strategy.Generator{Env: env, Objective: criticalworks.MinCost}

	type stats struct {
		admissible  int
		evaluations int64
		dists       int
	}
	out := map[strategy.Type]*stats{strategy.S1: {}, strategy.MS1: {}}
	bg := fig3Background(cfg)
	for i := 0; i < cfg.Jobs; i++ {
		job := gen.Job(i)
		cals := loadedCalendars(env, bg.Split(uint64(i)), cfg)
		for _, typ := range []strategy.Type{strategy.S1, strategy.MS1} {
			s, err := sgen.Generate(job, typ, cals, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation-levels job %d: %w", i, err)
			}
			st := out[typ]
			if s.Admissible() {
				st.admissible++
			}
			st.evaluations += s.Evaluations
			for _, d := range s.Distributions {
				if d.Admissible {
					st.dists++
				}
			}
		}
	}
	r.addLine("%-6s %12s %16s %18s", "type", "admissible", "DP-evaluations", "admissible-levels")
	for _, typ := range []strategy.Type{strategy.S1, strategy.MS1} {
		st := out[typ]
		share := float64(st.admissible) / float64(cfg.Jobs)
		r.addLine("%-6s %12s %16d %18.2f", typ, metrics.Ratio(share),
			st.evaluations, float64(st.dists)/float64(cfg.Jobs))
		r.Values["admissible-"+typ.String()] = share
		r.Values["evaluations-"+typ.String()] = float64(st.evaluations)
		r.Values["levels-"+typ.String()] = float64(st.dists) / float64(cfg.Jobs)
	}
	return r, nil
}
