package experiments

import (
	"errors"

	"repro/internal/baseline"
	"repro/internal/criticalworks"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Comparison (E10) pits the critical works method against the classic
// list-scheduling heuristics of the [13] family (Min-Min, Max-Min,
// Sufferage, OLB) on the Fig. 3 corpus: same jobs, same background load,
// same substrates — only the allocation logic differs. The method's claim
// to earn its complexity is higher deadline admissibility (its DP search
// plus collision reallocation) at comparable or better economic cost.
func Comparison(cfg Fig3Config) (*Report, error) {
	r := newReport("comparison",
		"critical works vs classic heuristics ([13] family) on the Fig. 3 corpus")
	gen := workload.New(fig3WorkloadConfig(cfg))
	env := gen.Environment(1)

	names := []string{"critical-works", "critical-works-mincost"}
	for _, h := range baseline.Heuristics {
		names = append(names, h.String())
	}
	out := make(map[string]*comparisonStats, len(names))
	for _, n := range names {
		out[n] = &comparisonStats{}
	}

	// One unit per job: every scheduler runs against a clone of the job's
	// background snapshot, and the per-scheduler outcomes come back in a
	// fixed slot order. The merge walks jobs in index order so the Series
	// accumulation matches the sequential run exactly.
	type schedOutcome struct {
		ok     bool
		finish int64
		cost   int64
	}
	streams := fig3Background(cfg).SplitN(cfg.Jobs)
	jobOuts, err := parallel.Map(cfg.Workers, cfg.Jobs, func(i int) ([]schedOutcome, error) {
		job := gen.Job(i)
		cals := loadedCalendars(env, streams[i], cfg)
		outs := make([]schedOutcome, len(names))
		record := func(slot int, s *criticalworks.Schedule, ok bool) {
			if !ok || s == nil {
				return
			}
			outs[slot] = schedOutcome{ok: true, finish: int64(s.Finish), cost: s.BareCF}
		}

		// The critical works method, remote-access policy (S2's), so the
		// comparison is free of replication advantages.
		cw, err := criticalworks.Build(env, cloneCalendarsView(cals), job, criticalworks.Options{
			Catalog: data.NewCatalog(data.RemoteAccess, 0),
		})
		record(0, cw, err == nil && cw != nil && cw.MeetsDeadline())
		if err != nil {
			var inf *criticalworks.InfeasibleError
			if !errors.As(err, &inf) {
				return nil, err
			}
		}

		// The MinCost variant — deadline-constrained cost minimization —
		// is the capability the ECT heuristics cannot express at all.
		cwc, err := criticalworks.Build(env, cloneCalendarsView(cals), job, criticalworks.Options{
			Catalog:   data.NewCatalog(data.RemoteAccess, 0),
			Objective: criticalworks.MinCost,
		})
		record(1, cwc, err == nil && cwc != nil && cwc.MeetsDeadline())
		if err != nil {
			var inf *criticalworks.InfeasibleError
			if !errors.As(err, &inf) {
				return nil, err
			}
		}

		for hi, h := range baseline.Heuristics {
			s, err := baseline.Build(env, cloneCalendarsView(cals), job, h, baseline.Options{
				Catalog: data.NewCatalog(data.RemoteAccess, 0),
			})
			record(2+hi, s, err == nil && s.MeetsDeadline())
			if err != nil {
				var inf *baseline.InfeasibleError
				if !errors.As(err, &inf) {
					return nil, err
				}
			}
		}
		return outs, nil
	})
	if err != nil {
		return nil, err
	}
	for _, outs := range jobOuts {
		for slot, o := range outs {
			if !o.ok {
				continue
			}
			st := out[names[slot]]
			st.admissible++
			st.finish.AddInt(o.finish)
			st.cost.AddInt(o.cost)
		}
	}

	r.addLine("%-16s %12s %12s %10s", "scheduler", "admissible", "mean-finish", "mean-CF")
	for _, n := range names {
		st := out[n]
		share := float64(st.admissible) / float64(cfg.Jobs)
		r.addLine("%-16s %12s %12.1f %10.1f", n, metrics.Ratio(share), st.finish.Mean(), st.cost.Mean())
		r.Values["admissible-"+n] = share
		r.Values["finish-"+n] = st.finish.Mean()
		r.Values["cf-"+n] = st.cost.Mean()
	}
	return r, nil
}

// comparisonStats accumulates one scheduler's outcomes.
type comparisonStats struct {
	admissible int
	finish     metrics.Series
	cost       metrics.Series
}

func cloneCalendarsView(cals criticalworks.Calendars) criticalworks.Calendars {
	out := make(criticalworks.Calendars, len(cals))
	for id, c := range cals {
		out[id] = c.Clone()
	}
	return out
}
