package experiments

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/parallel"
	"repro/internal/resource"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// Fig2Job builds the paper's Fig. 2(a) example: tasks P1..P6 with the §3
// estimation table (T_i1 = 2,3,1,2,1,2; V = 20,30,10,20,10,20), transfers
// D1..D8 with unit base times so the four critical works measure 12, 11,
// 10 and 9 time units on type-1 nodes, and the Gantt charts' 20-tick
// horizon as the deadline.
func Fig2Job() *dag.Job {
	b := dag.NewBuilder("fig2").Deadline(20)
	b.Task("P1", 2, 20)
	b.Task("P2", 3, 30)
	b.Task("P3", 1, 10)
	b.Task("P4", 2, 20)
	b.Task("P5", 1, 10)
	b.Task("P6", 2, 20)
	b.Edge("D1", "P1", "P2", 1, 10)
	b.Edge("D2", "P1", "P3", 1, 10)
	b.Edge("D3", "P2", "P4", 1, 10)
	b.Edge("D4", "P2", "P5", 1, 10)
	b.Edge("D5", "P3", "P4", 1, 10)
	b.Edge("D6", "P3", "P5", 1, 10)
	b.Edge("D7", "P4", "P6", 1, 10)
	b.Edge("D8", "P5", "P6", 1, 10)
	return b.MustBuild()
}

// Fig2Env builds the example's node set: one node per §3 estimation tier
// (types 1..4), priced by performance.
func Fig2Env() *resource.Environment {
	perfs := []float64{1.0, 0.5, 0.33, 0.25}
	nodes := make([]*resource.Node, len(perfs))
	for i, p := range perfs {
		nodes[i] = resource.NewNode(resource.NodeID(i), fmt.Sprintf("node-%d", i+1), p, p, "example")
	}
	return resource.NewEnvironment(nodes)
}

// Fig2 regenerates the paper's worked example: the four critical works of
// Fig. 2(a) and a strategy whose supporting schedules reproduce the
// structure of Fig. 2(b) — several alternative Distributions where the
// cheapest one (the paper's CF2 = 37 < CF1 = CF3 = 41) is NOT the fastest.
func Fig2() (*Report, error) { return Fig2With(1) }

// Fig2With is Fig2 with the strategy's per-level builds bounded by the
// given worker count (≤ 0 means one worker per CPU). Every worker count
// produces the byte-identical report.
func Fig2With(workers int) (*Report, error) { return Fig2Telemetry(workers, nil) }

// Fig2Telemetry is Fig2With with the builds additionally reporting into
// reg (nil disables metrics). Telemetry never changes the report: output
// is byte-identical with reg nil or set, at any worker count.
func Fig2Telemetry(workers int, reg *telemetry.Registry) (*Report, error) {
	r := newReport("fig2", "worked example: critical works and distributions (paper §3, Fig. 2)")
	job := Fig2Job()
	env := Fig2Env()

	chains := job.AllChains(dag.WeightFunc{})
	r.addLine("critical works (type-1 estimates, transfers included):")
	for i, c := range chains {
		names := make([]string, len(c.Tasks))
		for k, id := range c.Tasks {
			names[k] = job.Task(id).Name
		}
		r.addLine("  %d. %s  length %d", i+1, joinTasks(names), c.Length)
		r.Values[fmt.Sprintf("chain%d", i+1)] = float64(c.Length)
	}

	// The MinFinish objective exposes the Fig. 2(b) trade-off across the
	// strategy's levels: the level-1 schedule races on the fastest nodes
	// (the paper's CF1 = CF3 = 41 class), while the higher levels run on
	// slower, cheaper nodes (the CF2 = 37 class). The deadline is relaxed
	// from the Gantt's 20 to 24 so more than one estimation level is
	// feasible and the strategy actually contains alternatives (with four
	// nodes and full transfers, the tier-2 level needs 21 ticks).
	gen := &strategy.Generator{Env: env, Workers: parallel.Resolve(workers), Telemetry: reg}
	st, err := gen.Generate(job.WithDeadline(24), strategy.S2, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		return nil, err
	}
	r.addLine("distributions (one per estimation level):")
	for _, d := range st.Distributions {
		r.addLine("  level %d: CF=%d finish=%d admissible=%v  %s",
			d.Level, d.BareCF, d.Finish, d.Admissible, renderAllocations(job, env, d))
		r.Values[fmt.Sprintf("cf-level%d", d.Level)] = float64(d.BareCF)
		r.Values[fmt.Sprintf("finish-level%d", d.Level)] = float64(d.Finish)
		if d.Admissible {
			r.Values[fmt.Sprintf("admissible-level%d", d.Level)] = 1
		}
	}
	cheap := st.CheapestAdmissible()
	fast := st.FastestAdmissible()
	if cheap == nil || fast == nil {
		return nil, fmt.Errorf("experiments: fig2 strategy has no admissible distribution")
	}
	r.addLine("cheapest admissible: level %d (CF=%d); fastest: level %d (CF=%d)",
		cheap.Level, cheap.BareCF, fast.Level, fast.BareCF)
	r.Values["cheapest-cf"] = float64(cheap.BareCF)
	r.Values["fastest-cf"] = float64(fast.BareCF)
	r.Values["cheapest-level"] = float64(cheap.Level)
	r.Values["fastest-level"] = float64(fast.Level)

	// The paper's P4/P5 collision on node 3: reproduce it on a constrained
	// environment where both branch tasks prefer the same node.
	constrained := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "node-3", 0.33, 0.33, "example"),
		resource.NewNode(1, "node-4", 0.25, 0.25, "example"),
	})
	sched, err := criticalworks.Build(constrained, criticalworks.EmptyCalendars(constrained),
		job.WithDeadline(80), criticalworks.Options{Telemetry: reg})
	if err != nil {
		return nil, err
	}
	r.Values["collisions"] = float64(len(sched.Collisions))
	for _, c := range sched.Collisions {
		r.addLine("collision: task %s wanted %v on %s (held by %s) — resolved by reallocation",
			job.Task(c.Task).Name, c.Window, constrained.Node(c.Node).Name, c.Holder.Task)
	}
	return r, nil
}

func joinTasks(names []string) string {
	out := names[0]
	for _, n := range names[1:] {
		out += "-" + n
	}
	return out
}

func renderAllocations(job *dag.Job, env *resource.Environment, d strategy.Distribution) string {
	out := ""
	for i := 0; i < job.NumTasks(); i++ {
		p := d.Placements[dag.TaskID(i)]
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s/%d[%d,%d)", job.Task(p.Task).Name, p.Node+1, p.Window.Start, p.Window.End)
	}
	return out
}
