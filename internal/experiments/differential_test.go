package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// The differential equivalence suite: every experiment that fans out
// across the worker pool must produce byte-identical reports, identical
// raw value maps, and byte-identical traces at any worker count. Each
// case runs once sequentially (workers=1, the pre-pool code path) and
// once wide (workers=8, oversubscribed on small machines on purpose),
// across several seeds.

// diffOutcome captures everything an experiment emits.
type diffOutcome struct {
	report []byte
	values map[string]float64
	trace  []byte
}

func capture(t *testing.T, r *Report, err error, trace *bytes.Buffer) diffOutcome {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := diffOutcome{report: buf.Bytes(), values: r.Values}
	if trace != nil {
		out.trace = trace.Bytes()
	}
	return out
}

func TestParallelMatchesSequential(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}

	cases := []struct {
		name string
		run  func(t *testing.T, seed uint64, workers int) diffOutcome
	}{
		{"fig2", func(t *testing.T, seed uint64, workers int) diffOutcome {
			// Fig2 is seed-free; the seed loop still exercises it so a
			// regression shows up in every row.
			r, err := Fig2With(workers)
			return capture(t, r, err, nil)
		}},
		{"fig3a", func(t *testing.T, seed uint64, workers int) diffOutcome {
			cfg := DefaultFig3(seed, 40)
			cfg.Workers = workers
			r, err := Fig3a(cfg)
			return capture(t, r, err, nil)
		}},
		{"fig3b", func(t *testing.T, seed uint64, workers int) diffOutcome {
			cfg := DefaultFig3(seed, 40)
			cfg.Workers = workers
			r, err := Fig3b(cfg)
			return capture(t, r, err, nil)
		}},
		{"fig4", func(t *testing.T, seed uint64, workers int) diffOutcome {
			var trace bytes.Buffer
			cfg := DefaultFig4(seed, 25)
			cfg.Workers = workers
			cfg.Trace = &trace
			r, err := Fig4a(cfg)
			return capture(t, r, err, &trace)
		}},
		{"availability", func(t *testing.T, seed uint64, workers int) diffOutcome {
			var trace bytes.Buffer
			cfg := DefaultAvailability(seed, 12)
			cfg.Levels = []float64{1.0, 0.9}
			cfg.Workers = workers
			cfg.Trace = &trace
			r, err := Availability(cfg)
			return capture(t, r, err, &trace)
		}},
	}

	for _, tc := range cases {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				seq := tc.run(t, seed, 1)
				par := tc.run(t, seed, 8)
				if !bytes.Equal(seq.report, par.report) {
					t.Errorf("report bytes differ between workers=1 and workers=8\nsequential:\n%s\nparallel:\n%s",
						seq.report, par.report)
				}
				if !reflect.DeepEqual(seq.values, par.values) {
					t.Errorf("raw values differ between workers=1 and workers=8:\nsequential: %v\nparallel:   %v",
						seq.values, par.values)
				}
				if !bytes.Equal(seq.trace, par.trace) {
					t.Errorf("trace bytes differ between workers=1 and workers=8 (%d vs %d bytes)",
						len(seq.trace), len(par.trace))
				}
			})
		}
	}
}
