package experiments

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/criticalworks"
	"repro/internal/metasched"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Fig4Config parameterizes the coordinated job-flow study of Fig. 4: one
// virtual organization run per strategy family over identical workload and
// background-event streams.
type Fig4Config struct {
	Seed    uint64
	Jobs    int
	Domains int

	// External (background) load injection.
	ExternalMeanGap              float64
	ExternalLead                 simtime.Time
	ExternalDurLo, ExternalDurHi simtime.Time
	ExternalUntil                simtime.Time

	// Workers bounds the pool running the per-family VO cells (and, inside
	// each cell, the per-level strategy builds); ≤ 0 means one worker per
	// CPU, 1 forces the sequential path. Each cell owns its engine,
	// environment and calendars, so any worker count produces byte-identical
	// reports and traces.
	Workers int
	// Trace, when set, receives every cell's JSONL VO trace. Cells write
	// into private buffers while running; the buffers are flushed to Trace
	// in cell order after the pool drains, so the stream is identical at
	// any worker count.
	Trace io.Writer
	// Telemetry, when non-nil, receives the whole hierarchy's runtime
	// metrics (grid_metasched_*, grid_strategy_*, grid_criticalworks_*)
	// from every cell. Observe-only: reports and traces stay byte-identical.
	Telemetry *telemetry.Registry
	// NoRepair forwards metasched.Config.NoRepair: disable incremental
	// strategy repair and run every fallback re-anchor as a full rebuild.
	// Reports and traces are byte-identical either way (the repair
	// differential suite pins this).
	NoRepair bool
}

// DefaultFig4 returns the calibrated configuration.
func DefaultFig4(seed uint64, jobs int) Fig4Config {
	return Fig4Config{
		Seed:            seed,
		Jobs:            jobs,
		Domains:         2,
		ExternalMeanGap: 5,
		ExternalLead:    8,
		ExternalDurLo:   10,
		ExternalDurHi:   30,
		ExternalUntil:   0, // derived from the flow length when zero
	}
}

// fig4Outcome aggregates one VO run.
type fig4Outcome struct {
	typ        strategy.Type
	load       map[resource.Group]float64
	meanCF     float64
	meanTask   float64
	meanTTL    float64
	meanDevRat float64
	completed  int
	rejected   int
	fallbacks  int
	reallocs   int
}

// fig4Workload mirrors the fig3 calibration so the two studies share one
// corpus shape.
func fig4Workload(seed uint64) workload.Config {
	cfg := workload.Default(seed)
	// Looser deadlines than the Fig. 3 study: the job-flow experiment
	// needs strategies with several admissible supporting schedules so
	// that eviction → fallback → completion actually happens; jobs are
	// also smaller and arrive more slowly, keeping the VO out of
	// permanent overload.
	cfg.DeadlineFactor = 1.8
	cfg.TransferLo, cfg.TransferHi = 2, 8
	cfg.PipelineProb, cfg.MaxPipeline = 0.6, 3
	cfg.MinWidth, cfg.MaxWidth = 2, 3
	cfg.MinLayers, cfg.MaxLayers = 3, 4
	cfg.MeanInterarrival = 12
	return cfg
}

// runFig4Type runs the full hierarchy (metascheduler → job managers →
// local calendars) for one strategy family. tracer may be nil.
func runFig4Type(cfg Fig4Config, typ strategy.Type, tracer metasched.Tracer) (*fig4Outcome, error) {
	gen := workload.New(fig4Workload(cfg.Seed))
	env := gen.Environment(cfg.Domains)
	engine := sim.New()

	flow := gen.Flow(0, cfg.Jobs, 0)
	until := cfg.ExternalUntil
	if until == 0 && len(flow) > 0 {
		until = flow[len(flow)-1].At + 200
	}
	vo := metasched.NewVO(engine, env, metasched.Config{
		ExternalMeanGap: cfg.ExternalMeanGap,
		ExternalLead:    cfg.ExternalLead,
		ExternalDurLo:   cfg.ExternalDurLo,
		ExternalDurHi:   cfg.ExternalDurHi,
		ExternalUntil:   until,
		Objective:       criticalworks.MinCost,
		Seed:            cfg.Seed,
		Workers:         cfg.Workers,
		Tracer:          tracer,
		Telemetry:       cfg.Telemetry,
		NoRepair:        cfg.NoRepair,
	})
	for _, a := range flow {
		vo.Submit(a.Job, typ, a.At)
	}
	end := engine.Run()

	out := &fig4Outcome{typ: typ, load: vo.NodeLoad(simtime.Interval{Start: 0, End: end + 1})}
	var cf, task, ttl, dev metrics.Series
	for _, r := range vo.Results() {
		out.fallbacks += r.Fallbacks
		out.reallocs += r.Reallocations
		// Every activated plan's time-to-live counts, whether the job
		// ultimately completed or not — the paper's TTL is a property of
		// the schedules, not of the job outcome.
		for _, t := range r.TTLs {
			ttl.AddInt(int64(t))
		}
		if r.State != metasched.StateCompleted {
			out.rejected++
			continue
		}
		out.completed++
		cf.AddInt(r.BareCF)
		task.Add(r.MeanTaskTime)
		if rt := r.RunTime(); rt > 0 {
			dev.Add(float64(r.StartDeviation()) / float64(rt))
		}
	}
	if out.completed == 0 {
		return nil, fmt.Errorf("experiments: fig4 %v completed no jobs", typ)
	}
	out.meanCF = cf.Mean()
	out.meanTask = task.Mean()
	out.meanTTL = ttl.Mean()
	out.meanDevRat = dev.Mean()
	return out, nil
}

// runFig4 executes one VO run per family. The families are independent
// cells (each owns its engine, environment and calendars), so they fan out
// across the pool; traces buffer per cell and flush in family order.
func runFig4(cfg Fig4Config, types []strategy.Type) (map[strategy.Type]*fig4Outcome, error) {
	traces := make([]bytes.Buffer, len(types))
	outs, err := parallel.Map(cfg.Workers, len(types), func(i int) (*fig4Outcome, error) {
		var tracer metasched.Tracer
		if cfg.Trace != nil {
			tracer = metasched.NewJSONLTracer(&traces[i])
		}
		return runFig4Type(cfg, types[i], tracer)
	})
	if err != nil {
		return nil, err
	}
	if cfg.Trace != nil {
		for i := range traces {
			if _, err := cfg.Trace.Write(traces[i].Bytes()); err != nil {
				return nil, fmt.Errorf("experiments: fig4 trace: %w", err)
			}
		}
	}
	out := make(map[strategy.Type]*fig4Outcome, len(types))
	for i, typ := range types {
		out[typ] = outs[i]
	}
	return out, nil
}

// Fig4a regenerates Fig. 4(a): average node load level per performance
// group under coordinated scheduling (paper: S2 balances the groups, S1
// occupies the slow nodes, S3 the fastest ones).
func Fig4a(cfg Fig4Config) (*Report, error) {
	types := []strategy.Type{strategy.S1, strategy.S2, strategy.S3}
	outs, err := runFig4(cfg, types)
	if err != nil {
		return nil, err
	}
	r := newReport("fig4a", "node load level by performance group (paper Fig. 4a: S1→slow, S2 balanced, S3→fast)")
	r.addLine("%-6s %8s %8s %8s %10s %9s", "type", "fast", "medium", "slow", "completed", "rejected")
	for _, typ := range types {
		o := outs[typ]
		r.addLine("%-6s %8s %8s %8s %10d %9d", typ,
			metrics.Ratio(o.load[resource.GroupFast]),
			metrics.Ratio(o.load[resource.GroupMedium]),
			metrics.Ratio(o.load[resource.GroupSlow]),
			o.completed, o.rejected)
		r.Values["fast-"+typ.String()] = o.load[resource.GroupFast]
		r.Values["medium-"+typ.String()] = o.load[resource.GroupMedium]
		r.Values["slow-"+typ.String()] = o.load[resource.GroupSlow]
		r.Values["completed-"+typ.String()] = float64(o.completed)
	}
	return r, nil
}

// fig4bcTypes are the families of Fig. 4(b,c).
var fig4bcTypes = []strategy.Type{strategy.MS1, strategy.S2, strategy.S3}

// Fig4b regenerates Fig. 4(b): relative job completion cost and relative
// task execution time (paper: the lowest-cost strategies are the slowest
// ones like S3; MS1's tasks run longer than S2's).
func Fig4b(cfg Fig4Config) (*Report, error) {
	outs, err := runFig4(cfg, fig4bcTypes)
	if err != nil {
		return nil, err
	}
	cost := map[string]float64{}
	task := map[string]float64{}
	for typ, o := range outs {
		cost[typ.String()] = o.meanCF
		task[typ.String()] = o.meanTask
	}
	relCost, relTask := metrics.Normalize(cost), metrics.Normalize(task)
	r := newReport("fig4b", "relative job cost and task execution time (paper Fig. 4b: S3 cheapest and slowest)")
	r.addLine("%-6s %10s %10s %12s %12s", "type", "rel-cost", "rel-task", "mean-CF", "mean-task")
	for _, typ := range fig4bcTypes {
		name := typ.String()
		r.addLine("%-6s %10.2f %10.2f %12.1f %12.1f", typ, relCost[name], relTask[name],
			outs[typ].meanCF, outs[typ].meanTask)
		r.Values["cost-"+name] = relCost[name]
		r.Values["task-"+name] = relTask[name]
	}
	return r, nil
}

// Fig4c regenerates Fig. 4(c): relative strategy time-to-live and start
// deviation ratio (paper: slow strategies like S3 are the most persistent;
// fast accurate ones like S2 the least).
func Fig4c(cfg Fig4Config) (*Report, error) {
	outs, err := runFig4(cfg, fig4bcTypes)
	if err != nil {
		return nil, err
	}
	ttl := map[string]float64{}
	dev := map[string]float64{}
	for typ, o := range outs {
		ttl[typ.String()] = o.meanTTL
		dev[typ.String()] = o.meanDevRat
	}
	relTTL, relDev := metrics.Normalize(ttl), metrics.Normalize(dev)
	r := newReport("fig4c", "relative time-to-live and start deviation (paper Fig. 4c)")
	r.addLine("%-6s %10s %10s %12s %14s %10s %9s", "type", "rel-ttl", "rel-dev", "mean-ttl", "mean-dev-ratio", "fallbacks", "reallocs")
	for _, typ := range fig4bcTypes {
		name := typ.String()
		o := outs[typ]
		r.addLine("%-6s %10.2f %10.2f %12.1f %14.3f %10d %9d", typ, relTTL[name], relDev[name],
			o.meanTTL, o.meanDevRat, o.fallbacks, o.reallocs)
		r.Values["ttl-"+name] = relTTL[name]
		r.Values["dev-"+name] = relDev[name]
	}
	return r, nil
}
