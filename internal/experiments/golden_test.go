package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/criticalworks"
	"repro/internal/metasched"
	"repro/internal/sim"
	"repro/internal/strategy"
)

var update = flag.Bool("update", false, "regenerate the golden files under testdata/")

// compareGolden checks got against the named golden file byte for byte;
// with -update it regenerates the file instead.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestFig2Golden -update` to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the first differing line so the mismatch is readable.
	gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("%s differs at line %d:\n  got:  %s\n  want: %s\n(%d vs %d bytes total; -update regenerates)",
				path, i+1, g, w, len(got), len(want))
		}
	}
	t.Fatalf("%s differs (%d vs %d bytes)", path, len(got), len(want))
}

// fig2TraceRun replays the §3 worked example through the full VO
// hierarchy with a JSONL tracer attached and returns the trace bytes.
// The deadline is relaxed to 24 as in Fig2With, so the strategy holds
// more than one admissible supporting schedule.
func fig2TraceRun(t *testing.T, workers int) []byte {
	t.Helper()
	var trace bytes.Buffer
	engine := sim.New()
	env := Fig2Env()
	vo := metasched.NewVO(engine, env, metasched.Config{
		Objective: criticalworks.MinCost,
		Seed:      1,
		Workers:   workers,
		Tracer:    metasched.NewJSONLTracer(&trace),
	})
	vo.Submit(Fig2Job().WithDeadline(24), strategy.S2, 0)
	engine.Run()
	results := vo.Results()
	if len(results) != 1 {
		t.Fatalf("fig2 VO run produced %d results, want 1", len(results))
	}
	if results[0].State != metasched.StateCompleted {
		t.Fatalf("fig2 VO run ended in state %v, want completed", results[0].State)
	}
	return trace.Bytes()
}

// TestFig2Golden pins the §3 worked example byte for byte: the printed
// Distribution table and the full JSONL event trace of a VO run over the
// same job. Any change to the scheduling pipeline that moves a single
// reservation, collision, or trace field shows up here as a one-line
// diff. Regenerate with -update after intentional changes.
func TestFig2Golden(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			r, err := Fig2With(workers)
			if err != nil {
				t.Fatal(err)
			}
			var report bytes.Buffer
			if _, err := r.WriteTo(&report); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, "fig2_report.golden", report.Bytes())
			compareGolden(t, "fig2_trace.golden", fig2TraceRun(t, workers))
		})
	}
}
