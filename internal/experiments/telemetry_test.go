package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// The telemetry differential suite: enabling the metrics registry must be
// pure observation. For each instrumented experiment, every report byte,
// raw value, and trace byte must be identical with telemetry off (nil
// registry) and on, at both the sequential and the wide worker count —
// the PR's headline invariant.

func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	workerCounts := []int{1, 8}

	cases := []struct {
		name string
		run  func(t *testing.T, workers int, reg *telemetry.Registry) diffOutcome
	}{
		{"fig2", func(t *testing.T, workers int, reg *telemetry.Registry) diffOutcome {
			r, err := Fig2Telemetry(workers, reg)
			return capture(t, r, err, nil)
		}},
		{"fig3a", func(t *testing.T, workers int, reg *telemetry.Registry) diffOutcome {
			cfg := DefaultFig3(3, 40)
			cfg.Workers = workers
			cfg.Telemetry = reg
			r, err := Fig3a(cfg)
			return capture(t, r, err, nil)
		}},
		{"fig4", func(t *testing.T, workers int, reg *telemetry.Registry) diffOutcome {
			var trace bytes.Buffer
			cfg := DefaultFig4(3, 25)
			cfg.Workers = workers
			cfg.Telemetry = reg
			cfg.Trace = &trace
			r, err := Fig4a(cfg)
			return capture(t, r, err, &trace)
		}},
	}

	for _, tc := range cases {
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("%s/workers%d", tc.name, workers), func(t *testing.T) {
				t.Parallel()
				off := tc.run(t, workers, nil)
				reg := telemetry.NewRegistry()
				on := tc.run(t, workers, reg)

				if !bytes.Equal(off.report, on.report) {
					t.Errorf("report bytes differ with telemetry on\noff:\n%s\non:\n%s",
						off.report, on.report)
				}
				if !reflect.DeepEqual(off.values, on.values) {
					t.Errorf("raw values differ with telemetry on:\noff: %v\non:  %v",
						off.values, on.values)
				}
				if !bytes.Equal(off.trace, on.trace) {
					t.Errorf("trace bytes differ with telemetry on (%d vs %d bytes)",
						len(off.trace), len(on.trace))
				}

				// And the run must actually have been observed: a registry
				// that stayed empty means the plumbing silently fell off.
				var prom bytes.Buffer
				if err := reg.WritePrometheus(&prom); err != nil {
					t.Fatal(err)
				}
				if prom.Len() == 0 {
					t.Error("telemetry registry is empty after an instrumented run")
				}
			})
		}
	}
}

// TestTelemetryRegistryIndependentOfWorkers: the counters themselves (not
// just the reports) must agree between worker counts — the same builds
// happen, only scheduled differently. Duration histograms are exempt
// (wall time is nondeterministic); counter families must match exactly.
func TestTelemetryRegistryIndependentOfWorkers(t *testing.T) {
	countersAt := func(workers int) map[string]uint64 {
		reg := telemetry.NewRegistry()
		cfg := DefaultFig3(2, 30)
		cfg.Workers = workers
		cfg.Telemetry = reg
		if _, err := Fig3a(cfg); err != nil {
			t.Fatal(err)
		}
		got := map[string]uint64{}
		for _, family := range []string{
			"grid_criticalworks_evaluations_total",
			"grid_criticalworks_collisions_total",
		} {
			got[family] = reg.Counter(family, "").Value()
		}
		for _, result := range []string{"ok", "error"} {
			got["builds:"+result] = reg.Counter("grid_criticalworks_builds_total", "",
				telemetry.L("result", result)).Value()
		}
		return got
	}
	seq := countersAt(1)
	par := countersAt(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("counter totals differ between workers=1 and workers=8:\nseq: %v\npar: %v", seq, par)
	}
	if seq["builds:ok"] == 0 {
		t.Fatal("no successful builds counted — instrumentation fell off the fig3 path")
	}
}
