// Package parallel provides the simulator's deterministic fan-out
// substrate: a bounded worker pool that runs independent units of work —
// per-job strategy builds, per-level distribution builds, per-config
// experiment cells — across goroutines while keeping every observable
// result byte-identical to the sequential execution.
//
// Determinism rests on two rules the callers follow:
//
//  1. Units never share mutable state. Randomized units receive their own
//     pre-split RNG stream (rng.Source.SplitN), derived in index order
//     BEFORE the fan-out, so the stream a unit sees is a function of its
//     index alone, not of goroutine scheduling.
//  2. Results land in index-ordered slots (Map) and are merged, printed or
//     traced strictly in index order AFTER the pool drains. Floating-point
//     accumulation, trace emission and report formatting therefore happen
//     in the same order at every worker count.
//
// With workers == 1 the pool degenerates to a plain loop on the calling
// goroutine — the old sequential path, byte for byte.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count knob: values < 1 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)).
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// PanicError wraps a panic recovered from a unit of work, so that one
// misbehaving unit fails the run as an ordinary error instead of killing
// the process with goroutines in flight.
type PanicError struct {
	// Index is the unit that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: unit %d panicked: %v", e.Index, e.Value)
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (Resolve applied, capped at n). A panicking unit is recovered into a
// *PanicError. After the first failure the pool stops dispatching new
// units, waits for in-flight ones, and returns the error of the
// lowest-indexed failed unit; unit 0 is always dispatched before any
// failure can be observed, so a run in which every unit fails reports
// unit 0's error at any worker count.
//
// With one worker the units run in index order on the calling goroutine
// and the first error aborts the loop immediately — the sequential path.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// no further unit is dispatched and the call returns ctx.Err() (unless a
// lower-indexed unit already failed — the lowest-indexed error still
// wins). Units already in flight run to completion; long-running units
// that want finer-grained interruption must watch ctx themselves. With a
// never-cancelled context the dispatch order, result slots and returned
// error are byte-identical to ForEach at any worker count.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runUnit(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		ctxErr   error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	cancelled := func() bool {
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if ctxErr == nil {
				ctxErr = err
			}
			mu.Unlock()
			stop.Store(true)
			return true
		}
		return false
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if cancelled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runUnit(i, fn); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctxErr
}

// runUnit executes one unit with panic containment.
func runUnit(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Map runs fn for every index and collects the results into index-ordered
// slots: out[i] holds fn(i)'s value regardless of which goroutine computed
// it or when it finished. On error the partial results are discarded and
// the lowest-indexed failure is returned (see ForEach).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cooperative cancellation (see ForEachCtx).
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
