package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachRunsEveryUnitOnce hammers the pool across GOMAXPROCS values
// and worker counts (1, 2, N, 4N) and corpus sizes including zero,
// asserting every unit runs exactly once. Run under -race this is the
// concurrency stress scenario of the pool.
func TestForEachRunsEveryUnitOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		n := runtime.GOMAXPROCS(0)
		for _, workers := range []int{1, 2, n, 4 * n} {
			for _, units := range []int{0, 1, 7, 100, 1000} {
				name := fmt.Sprintf("procs=%d/workers=%d/units=%d", procs, workers, units)
				t.Run(name, func(t *testing.T) {
					counts := make([]atomic.Int32, units)
					err := ForEach(workers, units, func(i int) error {
						counts[i].Add(1)
						return nil
					})
					if err != nil {
						t.Fatalf("ForEach: %v", err)
					}
					for i := range counts {
						if got := counts[i].Load(); got != 1 {
							t.Fatalf("unit %d ran %d times", i, got)
						}
					}
				})
			}
		}
	}
}

// TestMapCollectsIndexOrdered asserts out[i] == fn(i) at every worker
// count: results land in their slots no matter which goroutine computed
// them.
func TestMapCollectsIndexOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(workers, 500, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestPanicRecoveredIntoError asserts a panicking unit surfaces as a
// *PanicError instead of crashing the run, sequentially and in parallel.
func TestPanicRecoveredIntoError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 50, func(i int) error {
			if i == 17 {
				panic("unit exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 17 {
			t.Fatalf("workers=%d: panic index = %d, want 17", workers, pe.Index)
		}
		if pe.Value != "unit exploded" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic detail lost: %+v", workers, pe)
		}
	}
}

// TestErrorsReportLowestIndex asserts the deterministic error contract: a
// single failing unit is reported by its index, and a run where every unit
// fails reports unit 0 at any worker count.
func TestErrorsReportLowestIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if i == 42 {
				return fmt.Errorf("unit %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) || err.Error() != "unit 42: boom" {
			t.Fatalf("workers=%d: err = %v, want unit 42", workers, err)
		}

		err = ForEach(workers, 100, func(i int) error {
			return fmt.Errorf("unit %d: %w", i, sentinel)
		})
		if !errors.Is(err, sentinel) || err.Error() != "unit 0: boom" {
			t.Fatalf("workers=%d: all-fail err = %v, want unit 0", workers, err)
		}
	}
}

// TestMapDiscardsResultsOnError asserts errored runs return nil results.
func TestMapDiscardsResultsOnError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out = %v, err = %v; want nil results and an error", out, err)
	}
}

// TestResolve pins the knob semantics: < 1 means one worker per CPU.
func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d, want 5", got)
	}
}

// TestZeroUnits asserts the degenerate corpus is a no-op at any width.
func TestZeroUnits(t *testing.T) {
	called := false
	if err := ForEach(8, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("unit ran on an empty corpus")
	}
	out, err := Map(8, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map on empty corpus: out=%v err=%v", out, err)
	}
}

// BenchmarkMapOverhead measures the pool's dispatch cost on trivial units.
func BenchmarkMapOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Map(4, 256, func(i int) (int, error) { return i, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	// Pre-cancelled context: nothing runs, ctx.Err comes back.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d units ran under a pre-cancelled context", ran.Load())
	}

	// Sequential path honours cancellation between units.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var seq int
	err = ForEachCtx(ctx2, 1, 100, func(i int) error {
		seq++
		if i == 4 {
			cancel2()
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
	if seq != 5 {
		t.Fatalf("sequential ran %d units after cancel at 5", seq)
	}

	// Mid-flight cancellation stops dispatch; in-flight units finish.
	ctx3, cancel3 := context.WithCancel(context.Background())
	var ran3 atomic.Int64
	release := make(chan struct{})
	err = ForEachCtx(ctx3, 2, 1000, func(i int) error {
		ran3.Add(1)
		if ran3.Load() == 2 {
			cancel3()
			close(release)
		} else {
			<-release
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("mid-flight err = %v, want context.Canceled", err)
	}
	if n := ran3.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (%d units ran)", n)
	}

	// A unit error that precedes cancellation wins over ctx.Err.
	ctx4, cancel4 := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err = ForEachCtx(ctx4, 1, 10, func(i int) error {
		if i == 0 {
			cancel4()
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want unit error to win", err)
	}
}

func TestMapCtxMatchesMapWithoutCancellation(t *testing.T) {
	// A background context must reproduce Map exactly at any worker count.
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := Map(1, 64, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := MapCtx(context.Background(), w, 64, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d slot %d: %d != %d", w, i, got[i], want[i])
			}
		}
	}
}
