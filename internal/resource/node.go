// Package resource models the distributed computing environment of the
// paper: autonomous heterogeneous processor nodes grouped into domains,
// each with a reservation calendar managed by its local batch system.
//
// Node performance follows §4 of the paper: relative performance in (0,1],
// with three reporting groups — "fast" (0.66–1.0), "medium" (0.33–0.66) and
// "slow" (exactly the 0.33 floor) — and four estimation tiers matching the
// §3 estimation table columns T_i1..T_i4 (a type-k node runs a task k times
// slower than the type-1 reference).
package resource

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// NodeID identifies a node within an Environment.
type NodeID int

// Group is the paper's performance-band classification used in Fig. 3b and
// Fig. 4a reporting.
type Group int

// Performance groups in §4's terms.
const (
	GroupFast   Group = iota // relative performance 0.66–1.0
	GroupMedium              // 0.33–0.66
	GroupSlow                // 0.33 ("slow" nodes)
)

// String returns the paper's name for the group.
func (g Group) String() string {
	switch g {
	case GroupFast:
		return "fast"
	case GroupMedium:
		return "medium"
	case GroupSlow:
		return "slow"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// GroupOf classifies a relative performance value per §4: the third group
// sits exactly at the 0.33 floor, everything up to 0.66 is medium, and the
// rest is fast.
func GroupOf(perf float64) Group {
	switch {
	case perf <= 0.34:
		return GroupSlow
	case perf <= 0.66:
		return GroupMedium
	default:
		return GroupFast
	}
}

// Tier is the estimation-table column (1 = fastest reference nodes,
// 4 = slowest) of §3's user estimation table.
type Tier int

// NumTiers is the number of estimation levels in the §3 table.
const NumTiers = 4

// TierOf maps relative performance to the nearest estimation tier: a node
// with performance p runs a task in about BaseTime/p, and tier k's estimate
// is k×BaseTime, so k = round(1/p) clamped to [1, NumTiers].
func TierOf(perf float64) Tier {
	if perf <= 0 {
		return NumTiers
	}
	k := int(1.0/perf + 0.5)
	if k < 1 {
		k = 1
	}
	if k > NumTiers {
		k = NumTiers
	}
	return Tier(k)
}

// Node is one autonomous processor node. Perf is relative performance in
// (0,1]; Price is the economic rate in conventional units per tick of
// reserved time (faster nodes cost more, §3's "user should pay additional
// cost in order to use more powerful resource").
type Node struct {
	ID     NodeID
	Name   string
	Perf   float64
	Price  float64
	Domain string

	cal *Calendar

	// Fault-injection state. downDepth counts nested outage causes (an
	// individual node crash and a whole-domain outage may overlap); the
	// node is up iff the depth is zero.
	downDepth int
	downSince simtime.Time
	downtime  simtime.Time
	outages   []simtime.Interval
}

// NewNode creates a node with an empty calendar. Perf must lie in (0, 1].
func NewNode(id NodeID, name string, perf float64, price float64, domain string) *Node {
	if perf <= 0 || perf > 1 {
		panic(fmt.Sprintf("resource: node %q has performance %v outside (0,1]", name, perf))
	}
	return &Node{ID: id, Name: name, Perf: perf, Price: price, Domain: domain, cal: NewCalendar()}
}

// Group returns the node's performance group.
func (n *Node) Group() Group { return GroupOf(n.Perf) }

// Tier returns the node's estimation tier.
func (n *Node) Tier() Tier { return TierOf(n.Perf) }

// Calendar returns the node's reservation calendar.
func (n *Node) Calendar() *Calendar { return n.cal }

// Up reports whether the node is currently available. A fresh node is up.
func (n *Node) Up() bool { return n.downDepth == 0 }

// MarkDown records an outage cause starting at now. Outage causes nest:
// a node inside a domain-wide outage that also crashed individually only
// comes back up once both causes have been marked up. It reports whether
// this call transitioned the node from up to down.
func (n *Node) MarkDown(now simtime.Time) bool {
	n.downDepth++
	if n.downDepth == 1 {
		n.downSince = now
		return true
	}
	return false
}

// MarkUp removes one outage cause at now, reporting whether the node
// transitioned back to up. Calling MarkUp on an up node panics: it always
// indicates an unbalanced fault schedule.
func (n *Node) MarkUp(now simtime.Time) bool {
	if n.downDepth == 0 {
		panic(fmt.Sprintf("resource: MarkUp on up node %q", n.Name))
	}
	n.downDepth--
	if n.downDepth == 0 {
		n.downtime += now - n.downSince
		n.outages = append(n.outages, simtime.Interval{Start: n.downSince, End: now})
		return true
	}
	return false
}

// Downtime returns the cumulative model time the node has spent down, the
// open outage (if any) counted up to now.
func (n *Node) Downtime(now simtime.Time) simtime.Time {
	d := n.downtime
	if n.downDepth > 0 && now > n.downSince {
		d += now - n.downSince
	}
	return d
}

// Outages returns the closed outage windows recorded so far, in order.
func (n *Node) Outages() []simtime.Interval {
	return append([]simtime.Interval(nil), n.outages...)
}

// AvailableIn reports whether the node is up and no recorded outage
// overlaps iv — the availability-window check placement uses before
// trusting a reservation on this node.
func (n *Node) AvailableIn(iv simtime.Interval) bool {
	if n.downDepth > 0 {
		return false
	}
	for _, o := range n.outages {
		if o.Overlaps(iv) {
			return false
		}
	}
	return true
}

// ExecTime converts a type-1 base estimate into this node's execution time:
// ceil(base / Perf), at least 1 tick for positive base times.
func (n *Node) ExecTime(base simtime.Time) simtime.Time {
	if base <= 0 {
		return 0
	}
	t := simtime.Time(float64(base)/n.Perf + 0.9999999)
	if t < base {
		t = base // performance never exceeds the type-1 reference
	}
	return t
}

// Environment is the full set of nodes in the virtual organization.
type Environment struct {
	nodes []*Node
}

// NewEnvironment wraps the given nodes; IDs must be dense 0..n-1.
func NewEnvironment(nodes []*Node) *Environment {
	for i, n := range nodes {
		if int(n.ID) != i {
			panic(fmt.Sprintf("resource: node %q has ID %d at index %d", n.Name, n.ID, i))
		}
	}
	return &Environment{nodes: nodes}
}

// NumNodes returns the number of nodes.
func (e *Environment) NumNodes() int { return len(e.nodes) }

// Node returns the node with the given ID.
func (e *Environment) Node(id NodeID) *Node { return e.nodes[id] }

// Nodes returns all nodes in ID order. The slice is shared; callers must
// not modify it.
func (e *Environment) Nodes() []*Node { return e.nodes }

// ByGroup returns the nodes of one performance group, in ID order.
func (e *Environment) ByGroup(g Group) []*Node {
	var out []*Node
	for _, n := range e.nodes {
		if n.Group() == g {
			out = append(out, n)
		}
	}
	return out
}

// ByDomain returns the nodes of one domain, in ID order.
func (e *Environment) ByDomain(domain string) []*Node {
	var out []*Node
	for _, n := range e.nodes {
		if n.Domain == domain {
			out = append(out, n)
		}
	}
	return out
}

// Domains returns the sorted list of distinct domain names.
func (e *Environment) Domains() []string {
	seen := make(map[string]bool)
	var out []string
	for _, n := range e.nodes {
		if !seen[n.Domain] {
			seen[n.Domain] = true
			out = append(out, n.Domain)
		}
	}
	sort.Strings(out)
	return out
}

// FastestFirst returns node IDs sorted by descending performance (ties by
// ascending ID), the order in which the critical works method prefers
// candidates.
func (e *Environment) FastestFirst() []NodeID {
	ids := make([]NodeID, len(e.nodes))
	for i := range e.nodes {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		na, nb := e.nodes[ids[a]], e.nodes[ids[b]]
		if na.Perf != nb.Perf {
			return na.Perf > nb.Perf
		}
		return na.ID < nb.ID
	})
	return ids
}

// UpNodes returns the currently available nodes, in ID order.
func (e *Environment) UpNodes() []*Node {
	var out []*Node
	for _, n := range e.nodes {
		if n.Up() {
			out = append(out, n)
		}
	}
	return out
}

// DomainUp reports whether at least one node of the domain is available.
func (e *Environment) DomainUp(domain string) bool {
	for _, n := range e.nodes {
		if n.Domain == domain && n.Up() {
			return true
		}
	}
	return false
}

// Reset clears every node calendar and fault state (between experiment
// repetitions).
func (e *Environment) Reset() {
	for _, n := range e.nodes {
		n.cal = NewCalendar()
		n.downDepth = 0
		n.downSince = 0
		n.downtime = 0
		n.outages = nil
	}
}
