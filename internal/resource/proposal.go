package resource

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// This file is the commit half of the shared-state optimistic concurrent
// placement model (DESIGN.md §12). A placer builds a set of Claims
// against a versioned snapshot of the calendars; the Proposal records
// which calendar generations the snapshot carried (its read-set). At
// commit time the claims are validated against the live books: when a
// book's generation is unchanged since the snapshot the claim is known
// good without re-scanning, otherwise the claimed window is re-checked
// against the current reservations. Winners apply atomically; a losing
// proposal reports the conflicting reservations so the arbiter can apply
// the paper's collision-resolution rules and retry against fresh state.

// Claim is one advance reservation a proposal wants to place.
type Claim struct {
	Node   NodeID
	Window simtime.Interval
	Owner  Owner
}

// Conflict reports a claim that cannot be applied and the existing
// reservation (on the claim's node) it collides with.
type Conflict struct {
	Claim    Claim
	Existing Reservation
}

func (c Conflict) String() string {
	return fmt.Sprintf("claim node %d %v by %s/%s vs reservation %v held by %s/%s",
		c.Claim.Node, c.Claim.Window, c.Claim.Owner.Job, c.Claim.Owner.Task,
		c.Existing.Interval, c.Existing.Owner.Job, c.Existing.Owner.Task)
}

// CalendarView resolves a node to its calendar, or nil when the node is
// unknown. Both live books and snapshot clones satisfy it.
type CalendarView func(NodeID) *Calendar

// Proposal is a placement built optimistically against a snapshot:
// the claims to apply plus the generation of every calendar the build
// read (the read-set).
type Proposal struct {
	// Reads maps each node whose calendar the build observed to the
	// generation it had in the snapshot. A claim on a node whose live
	// generation still matches needs no window re-validation.
	Reads map[NodeID]uint64
	// Claims are the reservations to apply, all-or-nothing.
	Claims []Claim
}

// Validate checks the proposal against view without mutating anything.
// It returns every detected conflict: claims with empty windows, claims
// on nodes the view cannot resolve, claims overlapping each other, and
// claims overlapping existing reservations. For a node whose generation
// matches the recorded read the existing-reservation scan is skipped —
// the snapshot already proved those windows free.
func (p *Proposal) Validate(view CalendarView) []Conflict {
	var out []Conflict

	// Self-disjointness: two claims of one proposal must not overlap on
	// the same node, whatever the books say.
	byNode := map[NodeID][]Claim{}
	for _, cl := range p.Claims {
		if cl.Window.Empty() {
			out = append(out, Conflict{Claim: cl})
			continue
		}
		byNode[cl.Node] = append(byNode[cl.Node], cl)
	}
	nodes := make([]NodeID, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	for _, n := range nodes {
		claims := byNode[n]
		sort.Slice(claims, func(i, j int) bool {
			if claims[i].Window.Start != claims[j].Window.Start {
				return claims[i].Window.Start < claims[j].Window.Start
			}
			return claims[i].Window.End < claims[j].Window.End
		})
		for i := 1; i < len(claims); i++ {
			if claims[i].Window.Overlaps(claims[i-1].Window) {
				out = append(out, Conflict{
					Claim:    claims[i],
					Existing: Reservation{Interval: claims[i-1].Window, Owner: claims[i-1].Owner},
				})
			}
		}

		cal := view(n)
		if cal == nil {
			for _, cl := range claims {
				out = append(out, Conflict{Claim: cl})
			}
			continue
		}
		if gen, ok := p.Reads[n]; ok && gen == cal.Gen() {
			continue // book unchanged since the snapshot: windows proven free
		}
		for _, cl := range claims {
			if existing, busy := cal.ConflictWith(cl.Window); busy {
				out = append(out, Conflict{Claim: cl, Existing: existing})
			}
		}
	}
	return out
}

// Commit validates the proposal against view and, when clean, applies
// every claim. The application is atomic: if a Reserve fails despite the
// validation (possible only when the generation fast path was fed a
// stale read-set by the caller), every already-applied claim is released
// and the conflict is reported. Commit never panics on adversarial
// input; it returns nil exactly when all claims are now reserved.
func (p *Proposal) Commit(view CalendarView) []Conflict {
	if conflicts := p.Validate(view); len(conflicts) != 0 {
		return conflicts
	}
	for i, cl := range p.Claims {
		if err := view(cl.Node).Reserve(cl.Window, cl.Owner); err != nil {
			// Roll back the claims applied so far, restoring the books.
			for _, done := range p.Claims[:i] {
				view(done.Node).Release(done.Window, done.Owner)
			}
			if conflict, ok := err.(*ErrConflict); ok {
				return []Conflict{{Claim: cl, Existing: conflict.Existing}}
			}
			return []Conflict{{Claim: cl}}
		}
	}
	return nil
}
