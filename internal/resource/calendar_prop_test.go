package resource

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func TestReserveEmptyIntervalSentinel(t *testing.T) {
	c := NewCalendar()
	err := c.Reserve(simtime.Interval{Start: 5, End: 5}, Owner{Job: "j"})
	if !errors.Is(err, ErrEmptyInterval) {
		t.Fatalf("empty reservation error = %v, want ErrEmptyInterval", err)
	}
	var conflict *ErrConflict
	if errors.As(err, &conflict) {
		t.Fatal("empty-interval error matched *ErrConflict")
	}
	if c.Len() != 0 {
		t.Fatal("empty reservation modified the calendar")
	}

	// A genuine overlap still yields *ErrConflict, not the sentinel.
	if err := c.Reserve(simtime.Interval{Start: 0, End: 10}, Owner{Job: "a"}); err != nil {
		t.Fatal(err)
	}
	err = c.Reserve(simtime.Interval{Start: 5, End: 8}, Owner{Job: "b"})
	if !errors.As(err, &conflict) {
		t.Fatalf("overlap error = %v, want *ErrConflict", err)
	}
	if errors.Is(err, ErrEmptyInterval) {
		t.Fatal("conflict error matched ErrEmptyInterval")
	}
}

// checkInvariants asserts the calendar's structural invariants: sorted by
// start, pairwise non-overlapping, and utilization within [0,1].
func checkInvariants(t *testing.T, c *Calendar, step int) {
	t.Helper()
	res := c.Reservations()
	for i := 1; i < len(res); i++ {
		if res[i-1].Interval.Start > res[i].Interval.Start {
			t.Fatalf("step %d: reservations out of order: %v before %v",
				step, res[i-1].Interval, res[i].Interval)
		}
		if res[i-1].Interval.Overlaps(res[i].Interval) {
			t.Fatalf("step %d: reservations overlap: %v and %v",
				step, res[i-1].Interval, res[i].Interval)
		}
	}
	for _, span := range []simtime.Interval{
		{Start: 0, End: 1}, {Start: 0, End: 50}, {Start: 25, End: 75}, {Start: 0, End: 1000},
	} {
		if u := c.UtilizationIn(span); u < 0 || u > 1 {
			t.Fatalf("step %d: utilization in %v = %v outside [0,1]", step, span, u)
		}
	}
}

func TestCalendarInvariantsUnderRandomOps(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			c := NewCalendar()
			var booked []Reservation
			for step := 0; step < 600; step++ {
				switch r.Intn(7) {
				case 0, 1, 2: // Reserve — the most common operation
					start := simtime.Time(r.Intn(900))
					iv := simtime.Interval{Start: start, End: start + simtime.Time(r.Intn(30))}
					owner := Owner{Job: fmt.Sprintf("job-%d", r.Intn(8)), Task: fmt.Sprintf("t%d", r.Intn(3))}
					err := c.Reserve(iv, owner)
					switch {
					case iv.Empty():
						if !errors.Is(err, ErrEmptyInterval) {
							t.Fatalf("step %d: empty reserve error = %v", step, err)
						}
					case err == nil:
						booked = append(booked, Reservation{Interval: iv, Owner: owner})
					default:
						var conflict *ErrConflict
						if !errors.As(err, &conflict) {
							t.Fatalf("step %d: reserve error = %v", step, err)
						}
					}
				case 3: // Release one exact booking
					if len(booked) > 0 {
						i := r.Intn(len(booked))
						c.Release(booked[i].Interval, booked[i].Owner)
						booked = append(booked[:i], booked[i+1:]...)
					}
				case 4: // ReleaseOwner
					c.ReleaseOwner(Owner{Job: fmt.Sprintf("job-%d", r.Intn(8)), Task: fmt.Sprintf("t%d", r.Intn(3))})
					booked = nil // conservatively resync below
					booked = append(booked, c.Reservations()...)
				case 5: // ReleaseJob
					c.ReleaseJob(fmt.Sprintf("job-%d", r.Intn(8)))
					booked = append(booked[:0], c.Reservations()...)
				case 6: // PruneBefore
					c.PruneBefore(simtime.Time(r.Intn(1000)))
					booked = append(booked[:0], c.Reservations()...)
				}
				checkInvariants(t, c, step)
			}
		})
	}
}

func TestCalendarVoid(t *testing.T) {
	c := NewCalendar()
	for i := 0; i < 5; i++ {
		iv := simtime.Interval{Start: simtime.Time(i * 10), End: simtime.Time(i*10 + 5)}
		if err := c.Reserve(iv, Owner{Job: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	voided := c.Void()
	if len(voided) != 5 {
		t.Fatalf("voided %d reservations, want 5", len(voided))
	}
	for i := 1; i < len(voided); i++ {
		if voided[i-1].Interval.Start > voided[i].Interval.Start {
			t.Fatal("voided reservations not in start order")
		}
	}
	if c.Len() != 0 {
		t.Fatalf("calendar holds %d reservations after Void", c.Len())
	}
	// The book is usable again after a crash.
	if err := c.Reserve(simtime.Interval{Start: 0, End: 100}, External); err != nil {
		t.Fatal(err)
	}
}

func TestNodeUpDownDepthAndDowntime(t *testing.T) {
	n := NewNode(0, "n0", 1.0, 1.0, "dom")
	if !n.Up() {
		t.Fatal("fresh node not up")
	}
	if !n.MarkDown(10) {
		t.Fatal("first MarkDown did not transition")
	}
	if n.MarkDown(12) {
		t.Fatal("nested MarkDown reported a transition")
	}
	if n.Up() {
		t.Fatal("node up while two causes pending")
	}
	if n.MarkUp(20) {
		t.Fatal("first MarkUp transitioned with a cause still pending")
	}
	if !n.MarkUp(25) {
		t.Fatal("final MarkUp did not transition")
	}
	if !n.Up() {
		t.Fatal("node not up after balanced MarkUp")
	}
	if got := n.Downtime(100); got != 15 {
		t.Errorf("downtime = %d, want 15", got)
	}
	if len(n.Outages()) != 1 || n.Outages()[0] != (simtime.Interval{Start: 10, End: 25}) {
		t.Errorf("outages = %v", n.Outages())
	}
	if n.AvailableIn(simtime.Interval{Start: 12, End: 14}) {
		t.Error("AvailableIn true across a recorded outage")
	}
	if !n.AvailableIn(simtime.Interval{Start: 30, End: 40}) {
		t.Error("AvailableIn false outside outages")
	}

	// Open outage counts up to now; unbalanced MarkUp panics.
	n.MarkDown(50)
	if got := n.Downtime(60); got != 25 {
		t.Errorf("downtime with open outage = %d, want 25", got)
	}
	n.MarkUp(60)
	defer func() {
		if recover() == nil {
			t.Error("MarkUp on up node did not panic")
		}
	}()
	n.MarkUp(70)
}

func TestEnvironmentUpNodesAndReset(t *testing.T) {
	env := NewEnvironment([]*Node{
		NewNode(0, "a", 1.0, 1.0, "d0"),
		NewNode(1, "b", 0.5, 0.5, "d0"),
		NewNode(2, "c", 0.33, 0.33, "d1"),
	})
	env.Node(0).MarkDown(5)
	env.Node(1).MarkDown(5)
	if got := len(env.UpNodes()); got != 1 {
		t.Errorf("UpNodes = %d, want 1", got)
	}
	if env.DomainUp("d0") {
		t.Error("d0 reported up with every node down")
	}
	if !env.DomainUp("d1") {
		t.Error("d1 reported down")
	}
	env.Reset()
	if got := len(env.UpNodes()); got != 3 {
		t.Errorf("UpNodes after Reset = %d, want 3", got)
	}
	if env.Node(0).Downtime(100) != 0 || len(env.Node(0).Outages()) != 0 {
		t.Error("Reset did not clear fault state")
	}
}
