package resource

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// viewOver adapts a plain calendar map to a CalendarView.
func viewOver(cals map[NodeID]*Calendar) CalendarView {
	return func(id NodeID) *Calendar { return cals[id] }
}

// cloneAll deep-copies a calendar map (snapshot semantics).
func cloneAll(cals map[NodeID]*Calendar) map[NodeID]*Calendar {
	out := make(map[NodeID]*Calendar, len(cals))
	for id, c := range cals {
		out[id] = c.Clone()
	}
	return out
}

// gensOf records every calendar's generation (a proposal read-set).
func gensOf(cals map[NodeID]*Calendar) map[NodeID]uint64 {
	out := make(map[NodeID]uint64, len(cals))
	for id, c := range cals {
		out[id] = c.Gen()
	}
	return out
}

// checkDisjoint asserts every calendar holds pairwise-disjoint, sorted
// reservations — the book's structural invariant.
func checkDisjoint(t *testing.T, cals map[NodeID]*Calendar, ctx string) {
	t.Helper()
	for id, c := range cals {
		res := c.Reservations()
		for i := 1; i < len(res); i++ {
			if res[i-1].Interval.Overlaps(res[i].Interval) {
				t.Fatalf("%s: node %d reservations overlap: %v(%s) and %v(%s)",
					ctx, id, res[i-1].Interval, res[i-1].Owner.Job, res[i].Interval, res[i].Owner.Job)
			}
			if res[i-1].Interval.Start > res[i].Interval.Start {
				t.Fatalf("%s: node %d reservations out of order", ctx, id)
			}
		}
	}
}

func TestGenMonotonicAndBumpedExactlyOnMutation(t *testing.T) {
	r := rng.New(7)
	c := NewCalendar()
	var held []Reservation
	for step := 0; step < 2000; step++ {
		before := c.Gen()
		mutated := false
		switch r.Intn(5) {
		case 0, 1: // Reserve
			start := simtime.Time(r.Int64n(200))
			iv := simtime.Interval{Start: start, End: start + simtime.Time(r.Int64n(20))}
			owner := Owner{Job: fmt.Sprintf("j%d", r.Intn(8))}
			if err := c.Reserve(iv, owner); err == nil {
				mutated = true
				held = append(held, Reservation{Interval: iv, Owner: owner})
			}
		case 2: // Release a held reservation (or a miss)
			if len(held) > 0 && r.Bool(0.7) {
				i := r.Intn(len(held))
				if c.Release(held[i].Interval, held[i].Owner) {
					mutated = true
					held = append(held[:i], held[i+1:]...)
				}
			} else if c.Release(simtime.Interval{Start: 9999, End: 10000}, Owner{Job: "nobody"}) {
				t.Fatal("released a reservation that was never made")
			}
		case 3: // PruneBefore
			if c.PruneBefore(simtime.Time(r.Int64n(100))) > 0 {
				mutated = true
				held = held[:0]
				held = append(held, c.Reservations()...)
			}
		case 4: // ReleaseJob
			if c.ReleaseJob(fmt.Sprintf("j%d", r.Intn(8))) > 0 {
				mutated = true
				held = held[:0]
				held = append(held, c.Reservations()...)
			}
		}
		after := c.Gen()
		if after < before {
			t.Fatalf("step %d: generation went backwards: %d -> %d", step, before, after)
		}
		if mutated && after == before {
			t.Fatalf("step %d: mutation did not bump the generation", step)
		}
		if !mutated && after != before {
			t.Fatalf("step %d: generation bumped without a mutation", step)
		}
	}
	if got := c.Clone().Gen(); got != c.Gen() {
		t.Fatalf("clone generation %d, source %d", got, c.Gen())
	}
}

// randomProposal builds a proposal of 1–3 claims against the snapshot's
// free windows (so it is valid against the snapshot, like a real placer's
// plan), carrying the snapshot generations as its read-set.
func randomProposal(r *rng.Source, snap map[NodeID]*Calendar, owner Owner) *Proposal {
	p := &Proposal{Reads: gensOf(snap)}
	n := 1 + r.Intn(3)
	for k := 0; k < n; k++ {
		node := NodeID(r.Intn(len(snap)))
		length := simtime.Time(1 + r.Int64n(10))
		start, ok := snap[node].FirstFree(simtime.Time(r.Int64n(100)), length, 1_000)
		if !ok {
			continue
		}
		iv := simtime.Interval{Start: start, End: start + length}
		p.Claims = append(p.Claims, Claim{Node: node, Window: iv, Owner: owner})
		// Keep the proposal self-consistent the way a DP plan is: later
		// claims of the same plan see the earlier ones as busy.
		if err := snap[node].Reserve(iv, owner); err != nil {
			panic(err)
		}
	}
	return p
}

// TestProposalInterleavings drives random batches of snapshot-built
// proposals through Commit in random order and asserts the optimistic
// invariants: books stay disjoint, generations never move backwards, no
// committed or pre-existing reservation is lost, failed commits change
// nothing, and two proposals claiming overlapping windows never both
// succeed.
func TestProposalInterleavings(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			live := map[NodeID]*Calendar{}
			for id := NodeID(0); id < 4; id++ {
				live[id] = NewCalendar()
			}
			// Pre-existing background load.
			for k := 0; k < 10; k++ {
				node := NodeID(r.Intn(len(live)))
				start := simtime.Time(r.Int64n(150))
				_ = live[node].Reserve(simtime.Interval{Start: start, End: start + simtime.Time(1+r.Int64n(15))}, External)
			}
			view := viewOver(live)

			for round := 0; round < 30; round++ {
				// All proposals of a round share one snapshot: the
				// shared-state model's concurrent builders.
				snapGens := gensOf(live)
				props := make([]*Proposal, 4)
				for i := range props {
					snap := cloneAll(live) // each builder plans independently
					props[i] = randomProposal(r, snap, Owner{Job: fmt.Sprintf("r%d-p%d", round, i)})
					props[i].Reads = snapGens
				}

				before := map[NodeID][]Reservation{}
				for id, c := range live {
					before[id] = c.Reservations()
				}
				committed := make([]bool, len(props))
				for _, i := range r.Perm(len(props)) {
					preRes := map[NodeID][]Reservation{}
					preGen := map[NodeID]uint64{}
					for id, c := range live {
						preRes[id] = c.Reservations()
						preGen[id] = c.Gen()
					}
					conflicts := props[i].Commit(view)
					committed[i] = len(conflicts) == 0
					if !committed[i] {
						// Failed commit must leave every book untouched.
						for id, c := range live {
							if !reflect.DeepEqual(preRes[id], c.Reservations()) {
								t.Fatalf("failed commit mutated node %d", id)
							}
							if c.Gen() != preGen[id] {
								t.Fatalf("failed commit bumped node %d generation", id)
							}
						}
						continue
					}
					for id, c := range live {
						if c.Gen() < preGen[id] {
							t.Fatalf("commit moved node %d generation backwards", id)
						}
					}
				}
				checkDisjoint(t, live, fmt.Sprintf("round %d", round))

				// No lost reservation: everything present before the round
				// plus every committed claim is in the books.
				for id, res := range before {
					have := map[Reservation]bool{}
					for _, rr := range live[id].Reservations() {
						have[rr] = true
					}
					for _, rr := range res {
						if !have[rr] {
							t.Fatalf("round %d: node %d lost reservation %v/%s", round, id, rr.Interval, rr.Owner.Job)
						}
					}
				}
				for i, p := range props {
					if !committed[i] {
						continue
					}
					for _, cl := range p.Claims {
						found := false
						for _, rr := range live[cl.Node].Reservations() {
							if rr.Interval == cl.Window && rr.Owner == cl.Owner {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("round %d: committed claim %v lost", round, cl)
						}
					}
				}
				// Conflicting commits never both succeed.
				for i := 0; i < len(props); i++ {
					for j := i + 1; j < len(props); j++ {
						if !committed[i] || !committed[j] {
							continue
						}
						for _, a := range props[i].Claims {
							for _, b := range props[j].Claims {
								if a.Node == b.Node && a.Window.Overlaps(b.Window) {
									t.Fatalf("round %d: proposals %d and %d both committed overlapping claims %v / %v",
										round, i, j, a.Window, b.Window)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestProposalStaleReadSetRevalidates poisons the fast path: a proposal
// carries a read-set claiming the book is unchanged when it is not. The
// window re-validation in Commit's Reserve loop must still refuse the
// overlap and roll back atomically.
func TestProposalStaleReadSetRevalidates(t *testing.T) {
	live := map[NodeID]*Calendar{0: NewCalendar(), 1: NewCalendar()}
	view := viewOver(live)

	// The book mutates after the "snapshot"...
	if err := live[0].Reserve(simtime.Interval{Start: 10, End: 20}, Owner{Job: "winner"}); err != nil {
		t.Fatal(err)
	}
	// ...but the adversarial proposal lies: Reads claims the current
	// generation, so Validate's fast path trusts the snapshot.
	p := &Proposal{
		Reads: map[NodeID]uint64{0: live[0].Gen(), 1: live[1].Gen()},
		Claims: []Claim{
			{Node: 1, Window: simtime.Interval{Start: 0, End: 5}, Owner: Owner{Job: "liar"}},
			{Node: 0, Window: simtime.Interval{Start: 15, End: 25}, Owner: Owner{Job: "liar"}},
		},
	}
	conflicts := p.Commit(view)
	if len(conflicts) == 0 {
		t.Fatal("commit succeeded over an existing reservation")
	}
	if live[1].Len() != 0 {
		t.Fatal("rollback left a partial claim on node 1")
	}
	if got := live[0].Reservations(); len(got) != 1 || got[0].Owner.Job != "winner" {
		t.Fatalf("node 0 book corrupted: %v", got)
	}
}

func TestProposalValidateRejectsMalformedClaims(t *testing.T) {
	live := map[NodeID]*Calendar{0: NewCalendar()}
	view := viewOver(live)
	cases := []struct {
		name string
		p    Proposal
	}{
		{"empty window", Proposal{Claims: []Claim{{Node: 0, Window: simtime.Interval{Start: 5, End: 5}}}}},
		{"inverted window", Proposal{Claims: []Claim{{Node: 0, Window: simtime.Interval{Start: 9, End: 3}}}}},
		{"unknown node", Proposal{Claims: []Claim{{Node: 99, Window: simtime.Interval{Start: 0, End: 5}}}}},
		{"self overlap", Proposal{Claims: []Claim{
			{Node: 0, Window: simtime.Interval{Start: 0, End: 10}},
			{Node: 0, Window: simtime.Interval{Start: 5, End: 15}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Commit(view); len(got) == 0 {
				t.Fatalf("%s committed", tc.name)
			}
			if live[0].Len() != 0 {
				t.Fatalf("%s left reservations behind", tc.name)
			}
		})
	}
}

// TestProposalConcurrentBuildersSingleArbiter is the -race guard for the
// shared-state model: many goroutines build proposals against private
// snapshot clones while a single arbiter goroutine commits them against
// the live books — the exact sharing discipline of metasched's placer
// pool (concurrent pure builds, serialized commits).
func TestProposalConcurrentBuildersSingleArbiter(t *testing.T) {
	live := map[NodeID]*Calendar{}
	for id := NodeID(0); id < 3; id++ {
		live[id] = NewCalendar()
	}
	view := viewOver(live)

	const builders = 8
	const rounds = 25
	for round := 0; round < rounds; round++ {
		snap := cloneAll(live)
		gens := gensOf(live)
		props := make([]*Proposal, builders)
		var wg sync.WaitGroup
		for i := 0; i < builders; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each builder works on its own clone of the shared
				// snapshot; the snapshot itself is only ever read.
				mine := cloneAll(snap)
				r := rng.New(uint64(round*builders + i + 1))
				props[i] = randomProposal(r, mine, Owner{Job: fmt.Sprintf("b%d-r%d", i, round)})
				props[i].Reads = gens
			}()
		}
		wg.Wait()
		for _, p := range props {
			p.Commit(view) // win or lose; the invariant is the books' shape
		}
		checkDisjoint(t, live, fmt.Sprintf("round %d", round))
	}
	total := 0
	for _, c := range live {
		total += c.Len()
	}
	if total == 0 {
		t.Fatal("no proposal ever committed")
	}
}
