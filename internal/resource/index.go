package resource

import (
	"repro/internal/simtime"
)

// calIndex is the augmented search structure a Calendar keeps alongside
// its sorted reservation slice (DESIGN.md §14). It answers the window
// queries that used to walk the whole book in O(log n):
//
//   - prefix holds the cumulative reserved ticks, so BusyIn is two
//     binary searches plus edge clipping;
//   - gap is an implicit max-segment-tree over the free gap following
//     each reservation (gap after the last one is Infinity), so
//     FirstFree descends to the first sufficiently large gap instead of
//     scanning every reservation before it.
//
// The index is derived data: it is built lazily on first query, thrown
// away (atomically) by every mutation, and shared by clones — it is
// immutable once published, so concurrent cloners and readers need no
// lock. Reservations are sorted by Start and pairwise disjoint, which
// makes their Ends strictly increasing; every binary search below leans
// on that invariant.
type calIndex struct {
	prefix []simtime.Time // prefix[i] = reserved ticks in res[:i]
	gap    []simtime.Time // implicit segment tree: max free gap per leaf range
	size   int            // leaf span of the tree (power of two ≥ n)
	n      int            // number of reservations indexed
}

// buildIndex constructs the index for a sorted, disjoint reservation
// slice.
func buildIndex(res []Reservation) *calIndex {
	n := len(res)
	ix := &calIndex{n: n, prefix: make([]simtime.Time, n+1)}
	for i, r := range res {
		ix.prefix[i+1] = ix.prefix[i] + r.Interval.Len()
	}
	if n == 0 {
		return ix
	}
	size := 1
	for size < n {
		size <<= 1
	}
	ix.size = size
	ix.gap = make([]simtime.Time, 2*size)
	for i := 0; i < n-1; i++ {
		ix.gap[size+i] = res[i+1].Interval.Start - res[i].Interval.End
	}
	// The room after the last reservation is unbounded; padding leaves
	// beyond n keep gap 0, so no positive-length search ever lands there.
	ix.gap[size+n-1] = simtime.Infinity
	for i := size - 1; i >= 1; i-- {
		l, r := ix.gap[2*i], ix.gap[2*i+1]
		if l >= r {
			ix.gap[i] = l
		} else {
			ix.gap[i] = r
		}
	}
	return ix
}

// firstGapAtLeast returns the smallest j ≥ from whose following gap is at
// least length, or -1 when no such gap exists (possible only when length
// exceeds Infinity).
func (ix *calIndex) firstGapAtLeast(from int, length simtime.Time) int {
	if from < 0 {
		from = 0
	}
	if from >= ix.n {
		return -1
	}
	i := ix.size + from
	for {
		if ix.gap[i] >= length {
			// Descend to the leftmost qualifying leaf of this subtree.
			for i < ix.size {
				i <<= 1
				if ix.gap[i] < length {
					i++
				}
			}
			j := i - ix.size
			if j >= ix.n {
				return -1 // padding leaf; unreachable for length > 0
			}
			return j
		}
		// Climb to the lowest ancestor that has an unvisited right
		// sibling, then step into it. Reaching the root means every gap
		// at or after `from` is too small.
		for i&1 == 1 {
			i >>= 1
		}
		if i <= 1 {
			return -1
		}
		i++
	}
}

// busyIn returns the reserved ticks of res that fall inside span, using
// the prefix sums: whole-sum of the overlapped run minus the clipped
// edges.
func (ix *calIndex) busyIn(res []Reservation, span simtime.Interval) simtime.Time {
	if span.Empty() || ix.n == 0 {
		return 0
	}
	// a: first reservation ending after span.Start (Ends are strictly
	// increasing). b: first reservation starting at or after span.End.
	a := searchRes(res, func(r *Reservation) bool { return r.Interval.End > span.Start })
	b := searchRes(res, func(r *Reservation) bool { return r.Interval.Start >= span.End })
	if a >= b {
		return 0
	}
	total := ix.prefix[b] - ix.prefix[a]
	if head := res[a].Interval.Start; head < span.Start {
		total -= span.Start - head
	}
	if tail := res[b-1].Interval.End; tail > span.End {
		total -= tail - span.End
	}
	return total
}

// searchRes is sort.Search specialized to the reservation slice; pred
// must be monotone over the sorted slice.
func searchRes(res []Reservation, pred func(*Reservation) bool) int {
	lo, hi := 0, len(res)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pred(&res[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
