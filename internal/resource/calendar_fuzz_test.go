package resource

import (
	"encoding/binary"
	"testing"

	"repro/internal/simtime"
)

// FuzzCalendarIndex feeds an arbitrary operation program to the indexed
// Calendar and the naive linear reference model and demands identical
// behavior: every mutation result, every window-query answer, the
// reservation listing and the generation counter. The corpus is seeded
// with books shaped like the paper's figures — Fig. 2's sparse
// 6-reservation Gantt rows and Fig. 4's dense availability-sweep books —
// plus the degenerate empty program.
//
// Program encoding, per op: 1 opcode byte followed by two little-endian
// uint16 operands (a, b). Times derive from the operands modulo a 1<<13
// universe, which keeps all arithmetic far from int64 overflow while
// still producing dense, overlapping traffic.
func FuzzCalendarIndex(f *testing.F) {
	prog := func(ops ...[3]uint16) []byte {
		var out []byte
		for _, op := range ops {
			out = append(out, byte(op[0]))
			out = binary.LittleEndian.AppendUint16(out, op[1])
			out = binary.LittleEndian.AppendUint16(out, op[2])
		}
		return out
	}

	f.Add([]byte{})
	// Fig. 2-shaped book: a handful of task reservations with gaps, then
	// window probes around the reserved run.
	f.Add(prog(
		[3]uint16{0, 0, 30}, [3]uint16{0, 40, 25}, [3]uint16{0, 70, 50},
		[3]uint16{0, 130, 20}, [3]uint16{0, 160, 35}, [3]uint16{0, 220, 15},
		[3]uint16{6, 10, 200}, [3]uint16{7, 35, 12}, [3]uint16{6, 0, 8000},
	))
	// Fig. 4-shaped book: dense back-to-back reservations (availability
	// sweep load), interleaved with releases, prunes and a void.
	f.Add(prog(
		[3]uint16{0, 0, 10}, [3]uint16{0, 10, 10}, [3]uint16{0, 20, 10},
		[3]uint16{0, 30, 10}, [3]uint16{0, 50, 10}, [3]uint16{0, 60, 10},
		[3]uint16{0, 80, 10}, [3]uint16{0, 100, 10}, [3]uint16{0, 110, 10},
		[3]uint16{7, 0, 25}, [3]uint16{1, 2, 0}, [3]uint16{4, 35, 0},
		[3]uint16{6, 0, 120}, [3]uint16{5, 0, 0}, [3]uint16{0, 5, 40},
	))
	// Ownership churn: same windows cycling through owners and jobs.
	f.Add(prog(
		[3]uint16{0, 0, 20}, [3]uint16{0, 25, 20}, [3]uint16{0, 50, 20},
		[3]uint16{2, 1, 0}, [3]uint16{3, 2, 0}, [3]uint16{0, 25, 20},
		[3]uint16{8, 0, 0}, [3]uint16{0, 10, 10},
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		const universe = 1 << 13
		c, ref := NewCalendar(), &refCalendar{}
		owners := []Owner{
			{Job: "job-a", Task: "t0"}, {Job: "job-a", Task: "t1"},
			{Job: "job-b", Task: "t0"}, {Job: "job-c"}, External,
		}
		step := 0
		for len(data) >= 5 && step < 512 {
			opcode, a16, b16 := data[0], binary.LittleEndian.Uint16(data[1:3]), binary.LittleEndian.Uint16(data[3:5])
			data = data[5:]
			a := simtime.Time(a16) % universe
			b := simtime.Time(b16)
			switch opcode % 9 {
			case 0: // Reserve [a, a+b%64)
				iv := simtime.Interval{Start: a, End: a + b%64}
				o := owners[int(b)%len(owners)]
				errC, errR := c.Reserve(iv, o), ref.Reserve(iv, o)
				if (errC == nil) != (errR == nil) {
					t.Fatalf("step %d: Reserve(%v) err %v, reference %v", step, iv, errC, errR)
				}
			case 1: // Release the a-th existing booking
				res := ref.Reservations()
				if len(res) == 0 {
					break
				}
				pick := res[int(a)%len(res)]
				if got, want := c.Release(pick.Interval, pick.Owner), ref.Release(pick.Interval, pick.Owner); got != want {
					t.Fatalf("step %d: Release(%v) = %v, reference %v", step, pick.Interval, got, want)
				}
			case 2: // ReleaseOwner
				o := owners[int(a)%len(owners)]
				if got, want := c.ReleaseOwner(o), ref.ReleaseOwner(o); got != want {
					t.Fatalf("step %d: ReleaseOwner(%v) = %d, reference %d", step, o, got, want)
				}
			case 3: // ReleaseJob
				o := owners[int(a)%len(owners)]
				if got, want := c.ReleaseJob(o.Job), ref.ReleaseJob(o.Job); got != want {
					t.Fatalf("step %d: ReleaseJob(%q) = %d, reference %d", step, o.Job, got, want)
				}
			case 4: // PruneBefore
				if got, want := c.PruneBefore(a), ref.PruneBefore(a); got != want {
					t.Fatalf("step %d: PruneBefore(%d) = %d, reference %d", step, a, got, want)
				}
			case 5: // Void
				if got, want := c.Void(), ref.Void(); !sameReservations(got, want) {
					t.Fatalf("step %d: Void() = %v, reference %v", step, got, want)
				}
			case 6: // FirstFree probe batch at (a, lengths..., horizon a+b)
				for _, length := range []simtime.Time{1, b % universe, b} {
					for _, horizon := range []simtime.Time{a + b, universe, simtime.Infinity} {
						gt, gok := c.FirstFree(a, length, horizon)
						wt, wok := ref.FirstFree(a, length, horizon)
						if gt != wt || gok != wok {
							t.Fatalf("step %d: FirstFree(%d,%d,%d) = (%d,%v), reference (%d,%v)",
								step, a, length, horizon, gt, gok, wt, wok)
						}
					}
				}
			case 7: // window probes over [a, a+b)
				span := simtime.Interval{Start: a, End: a + b}
				if got, want := c.ConflictsWith(span), ref.ConflictsWith(span); !sameReservations(got, want) {
					t.Fatalf("step %d: ConflictsWith(%v) = %v, reference %v", step, span, got, want)
				}
				if got, want := c.BusyIn(span), ref.BusyIn(span); got != want {
					t.Fatalf("step %d: BusyIn(%v) = %d, reference %d", step, span, got, want)
				}
				if got, want := c.FreeWindows(span), ref.FreeWindows(span); !sameIntervals(got, want) {
					t.Fatalf("step %d: FreeWindows(%v) = %v, reference %v", step, span, got, want)
				}
			case 8: // Clone both and continue on the clones
				c, ref = c.Clone(), ref.Clone()
			}
			compareCalendars(t, step, c, ref, []simtime.Time{0, a, a + b%universe})
			step++
		}
	})
}
