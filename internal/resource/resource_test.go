package resource

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func TestGroupOf(t *testing.T) {
	tests := []struct {
		perf float64
		want Group
	}{
		{1.0, GroupFast},
		{0.80, GroupFast},
		{0.67, GroupFast},
		{0.66, GroupMedium},
		{0.50, GroupMedium},
		{0.35, GroupMedium},
		{0.33, GroupSlow},
		{0.10, GroupSlow},
	}
	for _, tt := range tests {
		if got := GroupOf(tt.perf); got != tt.want {
			t.Errorf("GroupOf(%v) = %v, want %v", tt.perf, got, tt.want)
		}
	}
}

func TestGroupString(t *testing.T) {
	if GroupFast.String() != "fast" || GroupSlow.String() != "slow" || GroupMedium.String() != "medium" {
		t.Error("group names diverge from the paper's terms")
	}
}

func TestTierOf(t *testing.T) {
	tests := []struct {
		perf float64
		want Tier
	}{
		{1.0, 1},
		{0.9, 1},
		{0.5, 2},
		{0.45, 2},
		{0.33, 3},
		{0.25, 4},
		{0.1, 4}, // clamped
		{0, 4},
	}
	for _, tt := range tests {
		if got := TierOf(tt.perf); got != tt.want {
			t.Errorf("TierOf(%v) = %d, want %d", tt.perf, got, tt.want)
		}
	}
}

func TestNodeExecTime(t *testing.T) {
	fast := NewNode(0, "n0", 1.0, 1, "d")
	half := NewNode(1, "n1", 0.5, 1, "d")
	slow := NewNode(2, "n2", 0.33, 1, "d")
	tests := []struct {
		n    *Node
		base simtime.Time
		want simtime.Time
	}{
		{fast, 2, 2},
		{fast, 0, 0},
		{half, 2, 4},
		{half, 3, 6},
		{slow, 1, 4}, // ceil(1/0.33) = 4 (3.03 rounds up)
		{slow, 3, 10},
	}
	for _, tt := range tests {
		if got := tt.n.ExecTime(tt.base); got != tt.want {
			t.Errorf("%s.ExecTime(%d) = %d, want %d", tt.n.Name, tt.base, got, tt.want)
		}
	}
}

func TestNewNodePanicsOnBadPerf(t *testing.T) {
	for _, perf := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNode with perf %v did not panic", perf)
				}
			}()
			NewNode(0, "bad", perf, 1, "d")
		}()
	}
}

func newEnv() *Environment {
	return NewEnvironment([]*Node{
		NewNode(0, "f1", 1.0, 4, "alpha"),
		NewNode(1, "f2", 0.8, 3, "alpha"),
		NewNode(2, "m1", 0.5, 2, "beta"),
		NewNode(3, "s1", 0.33, 1, "beta"),
	})
}

func TestEnvironmentQueries(t *testing.T) {
	e := newEnv()
	if e.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", e.NumNodes())
	}
	if got := e.ByGroup(GroupFast); len(got) != 2 {
		t.Errorf("fast nodes = %d, want 2", len(got))
	}
	if got := e.ByGroup(GroupSlow); len(got) != 1 || got[0].Name != "s1" {
		t.Errorf("slow nodes = %v", got)
	}
	if got := e.ByDomain("beta"); len(got) != 2 {
		t.Errorf("beta nodes = %d, want 2", len(got))
	}
	doms := e.Domains()
	if len(doms) != 2 || doms[0] != "alpha" || doms[1] != "beta" {
		t.Errorf("Domains = %v", doms)
	}
	ff := e.FastestFirst()
	if ff[0] != 0 || ff[1] != 1 || ff[2] != 2 || ff[3] != 3 {
		t.Errorf("FastestFirst = %v", ff)
	}
}

func TestEnvironmentIDCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-dense IDs accepted")
		}
	}()
	NewEnvironment([]*Node{NewNode(5, "x", 1, 1, "d")})
}

func TestCalendarReserveAndConflict(t *testing.T) {
	c := NewCalendar()
	ow := Owner{Job: "j1", Task: "t1"}
	if err := c.Reserve(simtime.Interval{Start: 10, End: 20}, ow); err != nil {
		t.Fatal(err)
	}
	err := c.Reserve(simtime.Interval{Start: 15, End: 25}, Owner{Job: "j2"})
	var conflict *ErrConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("overlap accepted: %v", err)
	}
	if conflict.Existing.Owner != ow {
		t.Errorf("conflict owner = %+v", conflict.Existing.Owner)
	}
	// Touching windows are fine (half-open).
	if err := c.Reserve(simtime.Interval{Start: 20, End: 30}, ow); err != nil {
		t.Errorf("adjacent reservation rejected: %v", err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCalendarRejectsEmpty(t *testing.T) {
	c := NewCalendar()
	if err := c.Reserve(simtime.Interval{Start: 5, End: 5}, Owner{}); err == nil {
		t.Error("empty reservation accepted")
	}
}

func TestCalendarRelease(t *testing.T) {
	c := NewCalendar()
	ow := Owner{Job: "j", Task: "a"}
	iv := simtime.Interval{Start: 0, End: 10}
	if err := c.Reserve(iv, ow); err != nil {
		t.Fatal(err)
	}
	if c.Release(iv, Owner{Job: "j", Task: "b"}) {
		t.Error("released with wrong owner")
	}
	if !c.Release(iv, ow) {
		t.Error("release failed")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after release", c.Len())
	}
}

func TestCalendarReleaseJobAndOwner(t *testing.T) {
	c := NewCalendar()
	mk := func(s, e simtime.Time, job, task string) {
		t.Helper()
		if err := c.Reserve(simtime.Interval{Start: s, End: e}, Owner{Job: job, Task: task}); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, 5, "j1", "a")
	mk(5, 10, "j1", "b")
	mk(10, 15, "j2", "a")
	if got := c.ReleaseOwner(Owner{Job: "j1", Task: "a"}); got != 1 {
		t.Errorf("ReleaseOwner removed %d", got)
	}
	if got := c.ReleaseJob("j1"); got != 1 {
		t.Errorf("ReleaseJob removed %d", got)
	}
	if c.Len() != 1 || c.Reservations()[0].Owner.Job != "j2" {
		t.Errorf("remaining = %v", c.Reservations())
	}
}

func TestCalendarFirstFree(t *testing.T) {
	c := NewCalendar()
	must := func(s, e simtime.Time) {
		t.Helper()
		if err := c.Reserve(simtime.Interval{Start: s, End: e}, Owner{Job: "bg"}); err != nil {
			t.Fatal(err)
		}
	}
	must(10, 20)
	must(25, 30)
	tests := []struct {
		earliest, length simtime.Time
		want             simtime.Time
		ok               bool
	}{
		{0, 10, 0, true},
		{0, 11, 30, true}, // gap [0,10) too small, [20,25) too small
		{5, 5, 5, true},
		{5, 6, 30, true},
		{12, 5, 20, true},
		{12, 6, 30, true},
		{0, 100, 30, true},
	}
	for _, tt := range tests {
		got, ok := c.FirstFree(tt.earliest, tt.length, 1000)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("FirstFree(%d,%d) = (%d,%v), want (%d,%v)",
				tt.earliest, tt.length, got, ok, tt.want, tt.ok)
		}
	}
	if _, ok := c.FirstFree(0, 11, 35); ok {
		t.Error("FirstFree ignored horizon")
	}
	if _, ok := c.FirstFree(0, 0, 100); ok {
		t.Error("FirstFree accepted zero length")
	}
}

func TestCalendarFreeWindows(t *testing.T) {
	c := NewCalendar()
	if err := c.Reserve(simtime.Interval{Start: 10, End: 20}, Owner{}); err != nil {
		t.Fatal(err)
	}
	ws := c.FreeWindows(simtime.Interval{Start: 0, End: 30})
	if len(ws) != 2 || ws[0] != (simtime.Interval{Start: 0, End: 10}) || ws[1] != (simtime.Interval{Start: 20, End: 30}) {
		t.Errorf("FreeWindows = %v", ws)
	}
}

func TestCalendarUtilization(t *testing.T) {
	c := NewCalendar()
	if err := c.Reserve(simtime.Interval{Start: 0, End: 25}, Owner{}); err != nil {
		t.Fatal(err)
	}
	span := simtime.Interval{Start: 0, End: 100}
	if got := c.UtilizationIn(span); got != 0.25 {
		t.Errorf("UtilizationIn = %v, want 0.25", got)
	}
	if got := c.BusyIn(simtime.Interval{Start: 20, End: 30}); got != 5 {
		t.Errorf("BusyIn = %d, want 5", got)
	}
}

func TestCalendarCloneIsolated(t *testing.T) {
	c := NewCalendar()
	if err := c.Reserve(simtime.Interval{Start: 0, End: 10}, Owner{Job: "j"}); err != nil {
		t.Fatal(err)
	}
	cp := c.Clone()
	if err := cp.Reserve(simtime.Interval{Start: 10, End: 20}, Owner{Job: "k"}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || cp.Len() != 2 {
		t.Errorf("clone not isolated: orig %d, clone %d", c.Len(), cp.Len())
	}
}

func TestCalendarPruneBefore(t *testing.T) {
	c := NewCalendar()
	mk := func(s, e simtime.Time) {
		t.Helper()
		if err := c.Reserve(simtime.Interval{Start: s, End: e}, Owner{Job: "j"}); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, 5)
	mk(5, 50) // long window starting early, still live at t=20
	mk(60, 70)
	if got := c.PruneBefore(20); got != 1 {
		t.Errorf("removed %d, want 1 (only [0,5))", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	// The long window straddling t must survive.
	if free := c.Free(simtime.Interval{Start: 20, End: 25}); free {
		t.Error("straddling reservation was pruned")
	}
	if got := c.PruneBefore(1000); got != 2 || c.Len() != 0 {
		t.Errorf("final prune removed %d, len %d", got, c.Len())
	}
	if got := c.PruneBefore(1000); got != 0 {
		t.Errorf("idempotent prune removed %d", got)
	}
}

func TestEnvironmentReset(t *testing.T) {
	e := newEnv()
	if err := e.Node(0).Calendar().Reserve(simtime.Interval{Start: 0, End: 5}, Owner{}); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.Node(0).Calendar().Len() != 0 {
		t.Error("Reset did not clear calendars")
	}
}

func TestQuickCalendarNeverOverlaps(t *testing.T) {
	// Any sequence of Reserve attempts leaves a pairwise-disjoint calendar,
	// and accepted reservations exactly match a reference occupancy bitmap.
	f := func(seed uint64, nOps uint8) bool {
		r := rng.New(seed)
		c := NewCalendar()
		var ref [128]bool
		for op := 0; op < int(nOps%40)+5; op++ {
			s := simtime.Time(r.Intn(120))
			l := simtime.Time(r.IntBetween(1, 8))
			iv := simtime.Interval{Start: s, End: s + l}
			overlap := false
			for p := iv.Start; p < iv.End; p++ {
				if ref[p] {
					overlap = true
				}
			}
			err := c.Reserve(iv, Owner{Job: "j", Task: "t"})
			if overlap && err == nil {
				return false // accepted a conflicting window
			}
			if !overlap && err != nil {
				return false // rejected a free window
			}
			if err == nil {
				for p := iv.Start; p < iv.End; p++ {
					ref[p] = true
				}
			}
		}
		res := c.Reservations()
		for i := 1; i < len(res); i++ {
			if res[i-1].Interval.Overlaps(res[i].Interval) || res[i-1].Interval.Start > res[i].Interval.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickFirstFreeIsFreeAndEarliest(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := NewCalendar()
		for i := 0; i < 10; i++ {
			s := simtime.Time(r.Intn(100))
			iv := simtime.Interval{Start: s, End: s + simtime.Time(r.IntBetween(1, 6))}
			_ = c.Reserve(iv, Owner{Job: "bg"}) // conflicts allowed to fail
		}
		earliest := simtime.Time(r.Intn(50))
		length := simtime.Time(r.IntBetween(1, 10))
		got, ok := c.FirstFree(earliest, length, 500)
		if !ok {
			return false // horizon 500 always has room
		}
		if got < earliest {
			return false
		}
		if !c.Free(simtime.Interval{Start: got, End: got + length}) {
			return false
		}
		// No earlier feasible start: check every candidate in [earliest, got).
		for cand := earliest; cand < got; cand++ {
			if c.Free(simtime.Interval{Start: cand, End: cand + length}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
