package resource

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/simtime"
)

// Owner labels who holds a reservation, so that collision statistics can
// distinguish tasks of the same job, other jobs of the flow, and external
// background load.
type Owner struct {
	Job  string
	Task string
}

// External is the owner label for background-load reservations injected by
// the environment (other virtual organizations' flows).
var External = Owner{Job: "<external>"}

// Reservation is one advance reservation of a node for a wall-time window,
// as placed into the local batch system at resource-request time (§3).
type Reservation struct {
	Interval simtime.Interval
	Owner    Owner
}

// Calendar is a node's reservation book: a set of non-overlapping advance
// reservations. The zero value is not usable; call NewCalendar.
//
// The book is versioned: every mutation bumps a monotonic generation
// counter, which the optimistic concurrent placement machinery
// (Proposal, DESIGN.md §12) uses as the read-set of a placement built
// against a snapshot — an unchanged generation proves the snapshot is
// still exact, so a proposal's claims can commit without re-scanning.
type Calendar struct {
	res []Reservation // sorted by Interval.Start, pairwise disjoint
	gen uint64        // bumped on every mutation of res

	// idx caches the derived window-query index (prefix busy sums and a
	// max-gap tree, see index.go). It is built lazily, dropped by every
	// mutation, and shared with clones; the atomic publication makes
	// concurrent Clone/query traffic on a shared snapshot race-free —
	// a duplicate lazy build is benign, both results are identical.
	idx atomic.Pointer[calIndex]
}

// NewCalendar returns an empty calendar.
func NewCalendar() *Calendar { return &Calendar{} }

// ErrEmptyInterval reports a reservation attempt with an empty window.
// Callers use errors.Is to distinguish it from a *ErrConflict overlap.
var ErrEmptyInterval = errors.New("resource: empty reservation interval")

// ErrConflict reports a reservation attempt that overlaps an existing one.
type ErrConflict struct {
	Wanted   simtime.Interval
	Existing Reservation
}

func (e *ErrConflict) Error() string {
	return fmt.Sprintf("resource: interval %v conflicts with reservation %v held by %s/%s",
		e.Wanted, e.Existing.Interval, e.Existing.Owner.Job, e.Existing.Owner.Task)
}

// Len returns the number of reservations.
func (c *Calendar) Len() int { return len(c.res) }

// Gen returns the book's generation: a counter that increases on every
// mutation and never decreases. Two reads returning the same generation
// bracket a span in which the book did not change.
func (c *Calendar) Gen() uint64 { return c.gen }

// mutated invalidates the derived index; call sites bump gen alongside.
func (c *Calendar) mutated() { c.idx.Store(nil) }

// index returns the calendar's window-query index, building it on first
// use after a mutation.
func (c *Calendar) index() *calIndex {
	if ix := c.idx.Load(); ix != nil {
		return ix
	}
	ix := buildIndex(c.res)
	c.idx.Store(ix)
	return ix
}

// Reservations returns a copy of all reservations in start order.
func (c *Calendar) Reservations() []Reservation {
	return append([]Reservation(nil), c.res...)
}

// ConflictWith returns the first existing reservation overlapping iv, if any.
func (c *Calendar) ConflictWith(iv simtime.Interval) (Reservation, bool) {
	if iv.Empty() {
		return Reservation{}, false
	}
	i := sort.Search(len(c.res), func(i int) bool { return c.res[i].Interval.End > iv.Start })
	if i < len(c.res) && c.res[i].Interval.Overlaps(iv) {
		return c.res[i], true
	}
	return Reservation{}, false
}

// ConflictsWith returns every reservation overlapping iv, in start order.
func (c *Calendar) ConflictsWith(iv simtime.Interval) []Reservation {
	if iv.Empty() {
		return nil
	}
	// Ends are strictly increasing (sorted + disjoint), so the overlap
	// run is contiguous: from the first reservation ending after iv.Start
	// up to the first one starting at or after iv.End.
	var out []Reservation
	i := searchRes(c.res, func(r *Reservation) bool { return r.Interval.End > iv.Start })
	for ; i < len(c.res) && c.res[i].Interval.Start < iv.End; i++ {
		out = append(out, c.res[i])
	}
	return out
}

// Free reports whether iv overlaps no reservation.
func (c *Calendar) Free(iv simtime.Interval) bool {
	_, busy := c.ConflictWith(iv)
	return !busy
}

// Reserve books iv for owner. It returns *ErrConflict when the window
// overlaps an existing reservation, leaving the calendar unchanged.
func (c *Calendar) Reserve(iv simtime.Interval, owner Owner) error {
	if iv.Empty() {
		return fmt.Errorf("%w: %v", ErrEmptyInterval, iv)
	}
	if existing, busy := c.ConflictWith(iv); busy {
		return &ErrConflict{Wanted: iv, Existing: existing}
	}
	i := sort.Search(len(c.res), func(i int) bool { return c.res[i].Interval.Start >= iv.Start })
	c.res = append(c.res, Reservation{})
	copy(c.res[i+1:], c.res[i:])
	c.res[i] = Reservation{Interval: iv, Owner: owner}
	c.gen++
	c.mutated()
	return nil
}

// Release removes the reservation exactly matching iv and owner. It reports
// whether a reservation was removed.
func (c *Calendar) Release(iv simtime.Interval, owner Owner) bool {
	for i, r := range c.res {
		if r.Interval == iv && r.Owner == owner {
			c.res = append(c.res[:i], c.res[i+1:]...)
			c.gen++
			c.mutated()
			return true
		}
	}
	return false
}

// ReleaseOwner removes every reservation held by owner and returns how many
// were removed. Used when a supporting schedule is abandoned.
func (c *Calendar) ReleaseOwner(owner Owner) int {
	out := c.res[:0]
	removed := 0
	for _, r := range c.res {
		if r.Owner == owner {
			removed++
			continue
		}
		out = append(out, r)
	}
	c.res = out
	if removed > 0 {
		c.gen++
		c.mutated()
	}
	return removed
}

// ReleaseJob removes every reservation whose owner belongs to job.
func (c *Calendar) ReleaseJob(job string) int {
	out := c.res[:0]
	removed := 0
	for _, r := range c.res {
		if r.Owner.Job == job {
			removed++
			continue
		}
		out = append(out, r)
	}
	c.res = out
	if removed > 0 {
		c.gen++
		c.mutated()
	}
	return removed
}

// FirstFree returns the earliest start t >= earliest such that [t, t+length)
// is free, searching up to the horizon. ok is false when no such window
// exists before the horizon.
//
// Equivalent to walking the book linearly — skip reservations ending by t,
// stop at the first gap of `length` ticks — but answered through the
// max-gap tree: find the first reservation ending after `earliest`; if its
// start already leaves room, start at `earliest`, otherwise descend to the
// first following gap that fits.
func (c *Calendar) FirstFree(earliest, length, horizon simtime.Time) (simtime.Time, bool) {
	if length <= 0 || earliest >= horizon {
		return 0, false
	}
	t := earliest
	i := searchRes(c.res, func(r *Reservation) bool { return r.Interval.End > earliest })
	if i < len(c.res) && c.res[i].Interval.Start < earliest+length {
		j := c.index().firstGapAtLeast(i, length)
		if j < 0 {
			j = len(c.res) - 1 // length > Infinity: walk past everything
		}
		t = c.res[j].Interval.End
	}
	if t+length <= horizon {
		return t, true
	}
	return 0, false
}

// FreeWindows returns the free gaps within the given span, in start
// order, or nil when the span is fully reserved (or empty). The gaps are
// derived directly from the sorted reservation slice — the book's
// disjointness means the in-span reservations form one contiguous run,
// so no interval-set materialization is needed.
func (c *Calendar) FreeWindows(span simtime.Interval) []simtime.Interval {
	if span.Empty() {
		return nil
	}
	var out []simtime.Interval
	cursor := span.Start
	i := searchRes(c.res, func(r *Reservation) bool { return r.Interval.End > span.Start })
	for ; i < len(c.res) && c.res[i].Interval.Start < span.End; i++ {
		r := c.res[i].Interval
		if r.Start > cursor {
			out = append(out, simtime.Interval{Start: cursor, End: r.Start})
		}
		cursor = r.End
	}
	if cursor < span.End {
		out = append(out, simtime.Interval{Start: cursor, End: span.End})
	}
	return out
}

// BusyIn returns the number of reserved ticks inside span.
func (c *Calendar) BusyIn(span simtime.Interval) simtime.Time {
	return c.index().busyIn(c.res, span)
}

// UtilizationIn returns the fraction of span covered by reservations.
func (c *Calendar) UtilizationIn(span simtime.Interval) float64 {
	if span.Len() == 0 {
		return 0
	}
	return float64(c.BusyIn(span)) / float64(span.Len())
}

// PruneBefore drops every reservation that ends at or before t, returning
// how many were removed. Long-running simulations call this periodically:
// past reservations can never affect future fits, but they linger in the
// book and slow the linear scans down.
func (c *Calendar) PruneBefore(t simtime.Time) int {
	kept := c.res[:0]
	removed := 0
	for _, r := range c.res {
		if r.Interval.End <= t {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	c.res = kept
	if removed > 0 {
		c.gen++
		c.mutated()
	}
	return removed
}

// Void removes every reservation and returns them in start order — the
// node's local batch system losing its book when the node crashes. The
// caller decides each voided owner's fate (evict, retry, drop).
func (c *Calendar) Void() []Reservation {
	out := c.res
	c.res = nil
	if len(out) > 0 {
		c.gen++
		c.mutated()
	}
	return out
}

// Clone returns a deep copy of the calendar, used for what-if scheduling
// passes that must not disturb the live book. The clone carries the
// source's generation, so a proposal built against it can later prove the
// live book unchanged (Proposal.Reads).
func (c *Calendar) Clone() *Calendar {
	cp := &Calendar{res: make([]Reservation, len(c.res)), gen: c.gen}
	copy(cp.res, c.res)
	// The index is derived from the reservation values alone, which the
	// clone shares; publishing the same immutable index saves rebuilding
	// it on every what-if pass over a snapshot.
	cp.idx.Store(c.idx.Load())
	return cp
}
