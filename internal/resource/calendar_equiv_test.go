package resource

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// refCalendar is the naive linear reference model for the indexed
// Calendar: a verbatim copy of the pre-index implementation, every query
// a full walk over the sorted slice. The equivalence suite drives both
// implementations with identical operation sequences and demands
// identical answers to every query — the index must never change a
// single result (DESIGN.md §14).
type refCalendar struct {
	res []Reservation
	gen uint64
}

func (c *refCalendar) Len() int { return len(c.res) }

func (c *refCalendar) Gen() uint64 { return c.gen }

func (c *refCalendar) Reservations() []Reservation {
	return append([]Reservation(nil), c.res...)
}

func (c *refCalendar) ConflictWith(iv simtime.Interval) (Reservation, bool) {
	if iv.Empty() {
		return Reservation{}, false
	}
	for _, r := range c.res {
		if r.Interval.End <= iv.Start {
			continue
		}
		if r.Interval.Overlaps(iv) {
			return r, true
		}
		break
	}
	return Reservation{}, false
}

func (c *refCalendar) ConflictsWith(iv simtime.Interval) []Reservation {
	var out []Reservation
	if iv.Empty() {
		return nil
	}
	for _, r := range c.res {
		if r.Interval.Start >= iv.End {
			break
		}
		if r.Interval.Overlaps(iv) {
			out = append(out, r)
		}
	}
	return out
}

func (c *refCalendar) Free(iv simtime.Interval) bool {
	_, busy := c.ConflictWith(iv)
	return !busy
}

func (c *refCalendar) Reserve(iv simtime.Interval, owner Owner) error {
	if iv.Empty() {
		return fmt.Errorf("%w: %v", ErrEmptyInterval, iv)
	}
	if existing, busy := c.ConflictWith(iv); busy {
		return &ErrConflict{Wanted: iv, Existing: existing}
	}
	i := 0
	for i < len(c.res) && c.res[i].Interval.Start < iv.Start {
		i++
	}
	c.res = append(c.res, Reservation{})
	copy(c.res[i+1:], c.res[i:])
	c.res[i] = Reservation{Interval: iv, Owner: owner}
	c.gen++
	return nil
}

func (c *refCalendar) Release(iv simtime.Interval, owner Owner) bool {
	for i, r := range c.res {
		if r.Interval == iv && r.Owner == owner {
			c.res = append(c.res[:i], c.res[i+1:]...)
			c.gen++
			return true
		}
	}
	return false
}

func (c *refCalendar) ReleaseOwner(owner Owner) int {
	out := c.res[:0]
	removed := 0
	for _, r := range c.res {
		if r.Owner == owner {
			removed++
			continue
		}
		out = append(out, r)
	}
	c.res = out
	if removed > 0 {
		c.gen++
	}
	return removed
}

func (c *refCalendar) ReleaseJob(job string) int {
	out := c.res[:0]
	removed := 0
	for _, r := range c.res {
		if r.Owner.Job == job {
			removed++
			continue
		}
		out = append(out, r)
	}
	c.res = out
	if removed > 0 {
		c.gen++
	}
	return removed
}

func (c *refCalendar) FirstFree(earliest, length, horizon simtime.Time) (simtime.Time, bool) {
	if length <= 0 || earliest >= horizon {
		return 0, false
	}
	t := earliest
	for _, r := range c.res {
		if r.Interval.End <= t {
			continue
		}
		if r.Interval.Start >= t+length {
			break
		}
		t = r.Interval.End
	}
	if t+length <= horizon {
		return t, true
	}
	return 0, false
}

func (c *refCalendar) FreeWindows(span simtime.Interval) []simtime.Interval {
	busy := simtime.NewSet()
	for _, r := range c.res {
		busy.Add(r.Interval)
	}
	return busy.Complement(span).Intervals()
}

func (c *refCalendar) BusyIn(span simtime.Interval) simtime.Time {
	var total simtime.Time
	for _, r := range c.res {
		total += r.Interval.Intersect(span).Len()
	}
	return total
}

func (c *refCalendar) UtilizationIn(span simtime.Interval) float64 {
	if span.Len() == 0 {
		return 0
	}
	return float64(c.BusyIn(span)) / float64(span.Len())
}

func (c *refCalendar) PruneBefore(t simtime.Time) int {
	kept := c.res[:0]
	removed := 0
	for _, r := range c.res {
		if r.Interval.End <= t {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	c.res = kept
	if removed > 0 {
		c.gen++
	}
	return removed
}

func (c *refCalendar) Void() []Reservation {
	out := c.res
	c.res = nil
	if len(out) > 0 {
		c.gen++
	}
	return out
}

func (c *refCalendar) Clone() *refCalendar {
	cp := &refCalendar{res: make([]Reservation, len(c.res)), gen: c.gen}
	copy(cp.res, c.res)
	return cp
}

// failer abstracts *testing.T so the fuzz target can reuse the
// comparison helpers.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

func sameReservations(a, b []Reservation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameIntervals(a, b []simtime.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareCalendars cross-examines the indexed calendar against the
// reference on the full query surface, over a battery of windows derived
// from the current book plus the probe values supplied by the driver.
func compareCalendars(t failer, step int, c *Calendar, ref *refCalendar, probes []simtime.Time) {
	t.Helper()
	if c.Len() != ref.Len() {
		t.Fatalf("step %d: Len %d != reference %d", step, c.Len(), ref.Len())
	}
	if c.Gen() != ref.Gen() {
		t.Fatalf("step %d: Gen %d != reference %d", step, c.Gen(), ref.Gen())
	}
	if !sameReservations(c.Reservations(), ref.Reservations()) {
		t.Fatalf("step %d: reservation listing diverged:\n  indexed:   %v\n  reference: %v",
			step, c.Reservations(), ref.Reservations())
	}
	spans := make([]simtime.Interval, 0, len(probes)*len(probes)/2+4)
	for i := 0; i < len(probes); i++ {
		for j := i; j < len(probes); j++ {
			spans = append(spans, simtime.Interval{Start: probes[i], End: probes[j]})
		}
	}
	// Edge windows: empty, inverted, and book-straddling.
	spans = append(spans,
		simtime.Interval{Start: 0, End: 0},
		simtime.Interval{Start: 100, End: 50},
		simtime.Interval{Start: -50, End: 1 << 40},
	)
	for _, span := range spans {
		if got, want := c.ConflictsWith(span), ref.ConflictsWith(span); !sameReservations(got, want) {
			t.Fatalf("step %d: ConflictsWith(%v) = %v, reference %v", step, span, got, want)
		}
		gr, gb := c.ConflictWith(span)
		wr, wb := ref.ConflictWith(span)
		if gr != wr || gb != wb {
			t.Fatalf("step %d: ConflictWith(%v) = (%v,%v), reference (%v,%v)", step, span, gr, gb, wr, wb)
		}
		if got, want := c.Free(span), ref.Free(span); got != want {
			t.Fatalf("step %d: Free(%v) = %v, reference %v", step, span, got, want)
		}
		if got, want := c.BusyIn(span), ref.BusyIn(span); got != want {
			t.Fatalf("step %d: BusyIn(%v) = %d, reference %d", step, span, got, want)
		}
		if got, want := c.UtilizationIn(span), ref.UtilizationIn(span); got != want {
			t.Fatalf("step %d: UtilizationIn(%v) = %v, reference %v", step, span, got, want)
		}
		if got, want := c.FreeWindows(span), ref.FreeWindows(span); !sameIntervals(got, want) {
			t.Fatalf("step %d: FreeWindows(%v) = %v, reference %v", step, span, got, want)
		}
	}
	for _, earliest := range probes {
		for _, length := range []simtime.Time{0, 1, 3, 17, 64, 1 << 20} {
			for _, horizon := range []simtime.Time{earliest, earliest + 100, 1 << 30, simtime.Infinity} {
				gt, gok := c.FirstFree(earliest, length, horizon)
				wt, wok := ref.FirstFree(earliest, length, horizon)
				if gt != wt || gok != wok {
					t.Fatalf("step %d: FirstFree(%d,%d,%d) = (%d,%v), reference (%d,%v)",
						step, earliest, length, horizon, gt, gok, wt, wok)
				}
			}
		}
	}
}

// equivStep applies one randomized operation to both implementations and
// demands identical mutation results. Returns probe points for the query
// comparison.
func equivStep(t failer, step int, r *rng.Source, c *Calendar, ref *refCalendar) (*Calendar, *refCalendar) {
	t.Helper()
	owner := func() Owner {
		return Owner{Job: fmt.Sprintf("job-%d", r.Intn(6)), Task: fmt.Sprintf("t%d", r.Intn(3))}
	}
	switch r.Intn(10) {
	case 0, 1, 2, 3: // Reserve dominates real traffic
		start := simtime.Time(r.Intn(2000))
		iv := simtime.Interval{Start: start, End: start + simtime.Time(r.Intn(40))}
		o := owner()
		errC, errR := c.Reserve(iv, o), ref.Reserve(iv, o)
		if (errC == nil) != (errR == nil) {
			t.Fatalf("step %d: Reserve(%v) err %v, reference %v", step, iv, errC, errR)
		}
	case 4: // Release an existing booking (or a miss)
		res := ref.Reservations()
		var iv simtime.Interval
		var o Owner
		if len(res) > 0 && r.Intn(4) > 0 {
			pick := res[r.Intn(len(res))]
			iv, o = pick.Interval, pick.Owner
		} else {
			start := simtime.Time(r.Intn(2000))
			iv, o = simtime.Interval{Start: start, End: start + 5}, owner()
		}
		if got, want := c.Release(iv, o), ref.Release(iv, o); got != want {
			t.Fatalf("step %d: Release(%v) = %v, reference %v", step, iv, got, want)
		}
	case 5:
		o := owner()
		if got, want := c.ReleaseOwner(o), ref.ReleaseOwner(o); got != want {
			t.Fatalf("step %d: ReleaseOwner(%v) = %d, reference %d", step, o, got, want)
		}
	case 6:
		job := fmt.Sprintf("job-%d", r.Intn(6))
		if got, want := c.ReleaseJob(job), ref.ReleaseJob(job); got != want {
			t.Fatalf("step %d: ReleaseJob(%q) = %d, reference %d", step, job, got, want)
		}
	case 7:
		at := simtime.Time(r.Intn(2200))
		if got, want := c.PruneBefore(at), ref.PruneBefore(at); got != want {
			t.Fatalf("step %d: PruneBefore(%d) = %d, reference %d", step, at, got, want)
		}
	case 8:
		got, want := c.Void(), ref.Void()
		if !sameReservations(got, want) {
			t.Fatalf("step %d: Void() = %v, reference %v", step, got, want)
		}
	case 9: // Clone and continue on the clones (or the originals)
		cc, rc := c.Clone(), ref.Clone()
		compareCalendars(t, step, cc, rc, []simtime.Time{0, 100, 500})
		if r.Intn(2) == 0 {
			return cc, rc
		}
	}
	return c, ref
}

func TestCalendarIndexEquivalenceRandomOps(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rng.New(seed)
			c, ref := NewCalendar(), &refCalendar{}
			for step := 0; step < 400; step++ {
				c, ref = equivStep(t, step, r, c, ref)
				probes := []simtime.Time{
					0,
					simtime.Time(r.Intn(2200)),
					simtime.Time(r.Intn(2200)),
					simtime.Time(r.Intn(2200)),
				}
				compareCalendars(t, step, c, ref, probes)
			}
		})
	}
}

// TestCalendarIndexSharedSnapshotRace exercises the concurrent pattern
// the optimistic placer produces: many goroutines cloning one shared
// snapshot calendar and querying their clones (plus the shared original)
// while the index is built lazily. Run under -race this proves the
// atomic index publication is sound; every goroutine must also see
// identical answers.
func TestCalendarIndexSharedSnapshotRace(t *testing.T) {
	shared := NewCalendar()
	ref := &refCalendar{}
	r := rng.New(42)
	for i := 0; i < 200; i++ {
		start := simtime.Time(r.Intn(4000))
		iv := simtime.Interval{Start: start, End: start + 1 + simtime.Time(r.Intn(20))}
		o := Owner{Job: fmt.Sprintf("j%d", i)}
		errC, errR := shared.Reserve(iv, o), ref.Reserve(iv, o)
		if (errC == nil) != (errR == nil) {
			t.Fatalf("setup reserve diverged at %d", i)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gr := rng.New(uint64(1000 + g))
			for k := 0; k < 50; k++ {
				cal := shared
				if k%2 == 0 {
					cal = shared.Clone()
				}
				earliest := simtime.Time(gr.Intn(4200))
				length := simtime.Time(1 + gr.Intn(30))
				gt, gok := cal.FirstFree(earliest, length, simtime.Infinity)
				wt, wok := ref.FirstFree(earliest, length, simtime.Infinity)
				if gt != wt || gok != wok {
					errs[g] = fmt.Errorf("goroutine %d: FirstFree(%d,%d) = (%d,%v), reference (%d,%v)",
						g, earliest, length, gt, gok, wt, wok)
					return
				}
				span := simtime.Interval{Start: earliest, End: earliest + 300}
				if cal.BusyIn(span) != ref.BusyIn(span) {
					errs[g] = fmt.Errorf("goroutine %d: BusyIn(%v) diverged", g, span)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFreeWindowsAllocs pins the FreeWindows rewrite: deriving gaps from
// the sorted slice must not materialize a per-call interval set. One
// growing output slice is the only permitted allocation (≤ 5 appends'
// worth of growth for a book with ~32 in-span gaps).
func TestFreeWindowsAllocs(t *testing.T) {
	c := NewCalendar()
	for i := 0; i < 64; i++ {
		iv := simtime.Interval{Start: simtime.Time(i * 10), End: simtime.Time(i*10 + 5)}
		if err := c.Reserve(iv, Owner{Job: "j"}); err != nil {
			t.Fatal(err)
		}
	}
	span := simtime.Interval{Start: 0, End: 640}
	if got := len(c.FreeWindows(span)); got != 64 {
		t.Fatalf("free windows = %d, want 64", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.FreeWindows(span)
	})
	// append-doubling from nil to 64 elements: 1,2,4,...,64 → 7 allocs.
	if allocs > 8 {
		t.Fatalf("FreeWindows allocates %.1f objects/op; the slice-derived version must stay ≤ 8", allocs)
	}
	// The old implementation built a simtime.Set (64 Add calls, each
	// allocating a fresh merged slice) — well over 8 allocations. Guard
	// the dense-probe case too: a span overlapping nothing must not
	// allocate at all.
	if allocs := testing.AllocsPerRun(100, func() {
		c.FreeWindows(simtime.Interval{Start: 10, End: 15})
	}); allocs != 0 {
		t.Fatalf("FreeWindows over a fully reserved span allocates %.1f objects/op, want 0", allocs)
	}
}
