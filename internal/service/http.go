package service

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobio"
	"repro/internal/journal"
)

// SubmitRequest is the POST /v1/jobs body: the jobio wire form of the job
// plus service-level fields. Deadline is a relative QoS budget in model
// ticks (the absolute deadline is arrival + deadline).
type SubmitRequest struct {
	jobio.Job
	// Strategy selects the family ("S1", "S2", "S3", "MS1"); empty = S1.
	Strategy string `json:"strategy,omitempty"`
	// Priority orders overload shedding; higher survives longer.
	Priority int `json:"priority,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Code   string `json:"code,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs      — submit a job (202, or 400/409/422/429/503)
//	GET  /v1/jobs      — list all job records
//	GET  /v1/jobs/{id} — one job record (404 when unknown)
//	GET  /v1/metrics   — counters snapshot (JSON, legacy)
//	GET  /metrics      — Prometheus text format, streamed from the registry
//	GET  /healthz      — liveness + journal/recovery detail (always 200)
//	GET  /readyz       — readiness (503 + Retry-After while draining)
//
// Backpressure responses (429 queue full, 503 draining) carry a
// Retry-After header so clients back off instead of hammering a daemon
// that is overloaded or restarting.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			setRetryAfter(w, s.cfg.retryAfter())
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// healthzBody is the GET /healthz response: liveness plus, when a journal
// is configured, its activity stats and the outcome of startup recovery.
// QueueWaitP50/P99 estimate the admission-latency distribution (seconds
// spent in the queue) from the service histogram; they are omitted until
// at least one job has been dequeued.
type healthzBody struct {
	Status       string         `json:"status"`
	QueueWaitP50 *float64       `json:"queueWaitP50,omitempty"`
	QueueWaitP99 *float64       `json:"queueWaitP99,omitempty"`
	Journal      *journal.Stats `json:"journal,omitempty"`
	Recovery     *RecoveryStats `json:"recovery,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthzBody{Status: "ok", Recovery: s.Recovery()}
	// NaN (empty histogram) does not marshal; only finite estimates ship.
	if p50 := s.th.queueWait.Quantile(0.5); !math.IsNaN(p50) {
		body.QueueWaitP50 = &p50
	}
	if p99 := s.th.queueWait.Quantile(0.99); !math.IsNaN(p99) {
		body.QueueWaitP99 = &p99
	}
	if s.cfg.Journal != nil {
		st := s.cfg.Journal.Stats()
		body.Journal = &st
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request", Code: CodeInvalid, Reason: err.Error()})
		return
	}
	rec, err := s.Submit(req.Job, req.Strategy, req.Priority)
	if err != nil {
		se, ok := err.(*SubmitError)
		if !ok {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		status := http.StatusBadRequest
		switch se.Code {
		case CodeDuplicate:
			status = http.StatusConflict
		case CodeInfeasible:
			status = http.StatusUnprocessableEntity
		case CodeOverloaded:
			status = http.StatusTooManyRequests
		case CodeDraining:
			status = http.StatusServiceUnavailable
		case CodeInternal:
			status = http.StatusInternalServerError
		}
		if se.RetryAfter > 0 {
			setRetryAfter(w, se.RetryAfter)
		}
		writeJSON(w, status, errorBody{Error: "rejected", Code: se.Code, Reason: se.Reason})
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

// setRetryAfter renders the backoff hint in whole seconds, rounded up so a
// sub-second hint never becomes "retry immediately".
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job", Reason: id})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handlePrometheus streams the registry in Prometheus text format. Unlike
// the legacy JSON handler it builds no intermediate document per scrape:
// WritePrometheus walks the live atomics straight into a buffered writer.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.telem.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
