package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/jobio"
)

// SubmitRequest is the POST /v1/jobs body: the jobio wire form of the job
// plus service-level fields. Deadline is a relative QoS budget in model
// ticks (the absolute deadline is arrival + deadline).
type SubmitRequest struct {
	jobio.Job
	// Strategy selects the family ("S1", "S2", "S3", "MS1"); empty = S1.
	Strategy string `json:"strategy,omitempty"`
	// Priority orders overload shedding; higher survives longer.
	Priority int `json:"priority,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Code   string `json:"code,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs      — submit a job (202, or 400/409/422/429/503)
//	GET  /v1/jobs      — list all job records
//	GET  /v1/jobs/{id} — one job record (404 when unknown)
//	GET  /v1/metrics   — counters snapshot (JSON, legacy)
//	GET  /metrics      — Prometheus text format, streamed from the registry
//	GET  /healthz      — liveness (always 200 while the process runs)
//	GET  /readyz       — readiness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request", Code: CodeInvalid, Reason: err.Error()})
		return
	}
	rec, err := s.Submit(req.Job, req.Strategy, req.Priority)
	if err != nil {
		se, ok := err.(*SubmitError)
		if !ok {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		status := http.StatusBadRequest
		switch se.Code {
		case CodeDuplicate:
			status = http.StatusConflict
		case CodeInfeasible:
			status = http.StatusUnprocessableEntity
		case CodeOverloaded:
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(se.RetryAfter.Seconds()+0.5)))
		case CodeDraining:
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorBody{Error: "rejected", Code: se.Code, Reason: se.Reason})
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job", Reason: id})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handlePrometheus streams the registry in Prometheus text format. Unlike
// the legacy JSON handler it builds no intermediate document per scrape:
// WritePrometheus walks the live atomics straight into a buffered writer.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.telem.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
