package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postJob(t *testing.T, ts *httptest.Server, req SubmitRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPLifecycle(t *testing.T) {
	s := newServer(t, Config{QueueCap: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Health and readiness while serving.
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Submit: accepted.
	resp := postJob(t, ts, SubmitRequest{Job: wireJob("h1", 60), Strategy: "S2", Priority: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var rec Record
	decodeInto(t, resp, &rec)
	if rec.ID != "h1" || rec.State != StateQueued || rec.Strategy != "S2" {
		t.Fatalf("record: %+v", rec)
	}

	// Duplicate → 409.
	resp = postJob(t, ts, SubmitRequest{Job: wireJob("h1", 60)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate = %d", resp.StatusCode)
	}

	// Infeasible deadline → 422.
	resp = postJob(t, ts, SubmitRequest{Job: wireJob("h-tight", 3)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible = %d", resp.StatusCode)
	}

	// Malformed body → 400.
	raw, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(`{"bogus":`)))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed = %d", raw.StatusCode)
	}

	// Fill the queue, then overflow → 429 with Retry-After.
	resp = postJob(t, ts, SubmitRequest{Job: wireJob("h2", 60)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fill = %d", resp.StatusCode)
	}
	resp = postJob(t, ts, SubmitRequest{Job: wireJob("h3", 60)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eb errorBody
	decodeInto(t, resp, &eb)
	if eb.Code != CodeOverloaded {
		t.Fatalf("error body: %+v", eb)
	}

	// Drive the queue in manual mode, then read the results back.
	s.Process(-1)
	s.Quiesce()
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/h1")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &rec)
	if rec.State != StateCompleted {
		t.Fatalf("h1 state = %q (%s)", rec.State, rec.Reason)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d", resp.StatusCode)
	}

	var list []Record
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &list)
	if len(list) != 3 { // h1, h-tight (rejected), h2
		t.Fatalf("list = %d records: %+v", len(list), list)
	}

	var m Metrics
	resp, err = ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &m)
	if m.Completed != 2 || m.Overloaded != 1 || m.Infeasible != 1 {
		t.Fatalf("metrics: %+v", m)
	}

	// Drain flips readiness and refuses new work with 503.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", resp.StatusCode)
	}
	resp = postJob(t, ts, SubmitRequest{Job: wireJob("h-late", 60)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d", resp.StatusCode)
	}
}

func TestHTTPConcurrentSubmitAndPoll(t *testing.T) {
	s := newServer(t, Config{QueueCap: 32})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 10; i++ {
				resp := postJob(t, ts, SubmitRequest{Job: wireJob(fmt.Sprintf("c%d-%d", w, i), 80)})
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusTooManyRequests {
					done <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
				r, err := ts.Client().Get(ts.URL + "/v1/metrics")
				if err != nil {
					done <- err
					return
				}
				r.Body.Close()
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, rec := range s.Jobs() {
		if !Terminal(rec.State) {
			t.Errorf("%s: non-terminal %q after drain", rec.ID, rec.State)
		}
	}
}

// TestHTTPRetryAfterAndHealthz: backpressure responses (429 and 503) must
// carry Retry-After, and /healthz must surface journal activity and the
// startup recovery outcome.
func TestHTTPRetryAfterAndHealthz(t *testing.T) {
	dir := t.TempDir()

	// Seed the journal with a crashed predecessor: one completed, one queued.
	victim, _ := newJournaledServer(t, dir)
	for _, name := range []string{"w1", "w2"} {
		if _, err := victim.Submit(wireJob(name, 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	victim.Process(1)
	victim.Quiesce()

	s, stats := newJournaledServer(t, dir)
	if stats.Requeued != 1 || stats.Terminal != 1 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var hb healthzBody
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &hb)
	if hb.Status != "ok" || hb.Journal == nil || hb.Recovery == nil {
		t.Fatalf("healthz body: %+v", hb)
	}
	if hb.Journal.Appends == 0 || hb.Recovery.Requeued != 1 || hb.Recovery.Terminal != 1 {
		t.Fatalf("healthz detail: journal=%+v recovery=%+v", hb.Journal, hb.Recovery)
	}

	// Drain, then both the submit 503 and the readyz 503 must say when to
	// come back.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = postJob(t, ts, SubmitRequest{Job: wireJob("late", 60)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 submit without Retry-After header")
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("readyz while draining: status=%d Retry-After=%q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
