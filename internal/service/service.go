// Package service turns the deterministic VO/metascheduler engine into a
// long-running scheduler service: a bounded admission queue with
// backpressure and priority shedding, deadline-feasibility admission
// control, per-domain circuit breakers, per-job build deadlines, and a
// graceful drain that snapshots still-queued work to disk in the jobio
// wire format.
//
// # Threading model
//
// The simulation engine, the VO and the circuit breakers are confined to
// ONE goroutine (the engine loop started by Start); they are never touched
// from HTTP handlers. Handlers only push into the admission queue and read
// the job registry, both guarded by one mutex. Virtual model time advances
// only inside the engine loop: a submission is mapped to an arrival one
// tick after the engine's current time, the engine runs just past the
// arrival (so the strategy is built and the reservations are booked while
// later start/finish events stay pending), and whenever the queue is empty
// the engine runs to quiescence, completing everything in flight.
//
// # Job lifecycle
//
// A submission is rejected before it enters the queue when the service is
// draining, the wire form is invalid, the ID was seen before, or the
// deadline is provably unmeetable (shorter than the job's task-only
// critical path on the fastest node tier). A valid job waits in the
// bounded queue ("queued"), is handed to the VO ("scheduled"), and ends in
// exactly one terminal state: "completed", "rejected" (with a reason:
// infeasible, shed under overload, or no feasible allocation), or
// "drained" (written to the shutdown snapshot). A full queue sheds the
// lowest-priority queued job when a strictly more important one arrives;
// otherwise the newcomer is refused with a retry hint (HTTP 429).
package service

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/breaker"
	"repro/internal/dag"
	"repro/internal/jobio"
	"repro/internal/journal"
	"repro/internal/metasched"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// Job lifecycle states as reported by the API.
const (
	StateQueued    = "queued"
	StateScheduled = "scheduled"
	StateCompleted = "completed"
	StateRejected  = "rejected"
	StateDrained   = "drained"
	// StateRevoked is terminal at THIS shard only: a federated router took
	// the job back (still queued, or tombstoned before arrival) to run it
	// elsewhere. The ledger entry persists so the job's idempotency key is
	// refused as a duplicate forever — the guarantee the cross-shard
	// exactly-once argument rests on.
	StateRevoked = "revoked"
)

// Terminal reports whether a state is final.
func Terminal(state string) bool {
	return state == StateCompleted || state == StateRejected ||
		state == StateDrained || state == StateRevoked
}

// Config tunes the service.
type Config struct {
	// Env is the processor-node environment the VO schedules on. Required.
	Env *resource.Environment
	// Sched is the base VO configuration. The service overwrites Tracer
	// (wrapping any configured one), DomainFilter and BuildCtx to install
	// its own hooks.
	Sched metasched.Config
	// QueueCap bounds the admission queue. Default 64.
	QueueCap int
	// BuildTimeout bounds the wall-clock time spent building (and
	// re-building, through retries and fallbacks) any one job's strategy.
	// Zero means unbounded.
	BuildTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight jobs before
	// cancelling their builds. Default 10s.
	DrainTimeout time.Duration
	// Breaker, when non-nil, arms a per-domain circuit breaker: a domain
	// whose jobs repeatedly fail stops receiving placements until its open
	// window expires.
	Breaker *breaker.Config
	// SnapshotPath is where Drain writes still-queued jobs (jobio wire
	// format). Empty disables the snapshot; drained jobs are still marked.
	SnapshotPath string
	// RetryAfter is the hint returned with backpressure rejections.
	// Default 1s.
	RetryAfter time.Duration
	// Telemetry is the metrics registry backing GET /metrics. nil makes
	// New create a private one, so the endpoint always works. The same
	// registry is forwarded to the VO hierarchy (Sched.Telemetry) and the
	// circuit breakers unless those configs already carry their own.
	Telemetry *telemetry.Registry
	// Journal, when non-nil, makes the job lifecycle crash-safe: every
	// transition (queued, scheduled, completed, rejected, drained) is
	// appended — and made durable under the journal's fsync policy —
	// before it is acknowledged. On startup, Restore replays a recovered
	// journal so accepted jobs survive SIGKILL, OOM and power loss. nil
	// keeps the pre-journal behavior byte-identical.
	Journal *journal.Journal
	// HoldRecovered parks non-terminal jobs found by Restore instead of
	// re-enqueueing them: a federated shard must not re-execute recovered
	// work until the router's join handshake confirms it still owns each
	// job (ResumeHeld) or revokes it (Revoke). false keeps the standalone
	// behavior: recovered jobs go straight back into the queue.
	HoldRecovered bool
	// Gate, when non-nil, is consulted before the engine loop dequeues
	// work: a false return pauses scheduling (already-scheduled jobs still
	// complete). A federated shard gates on its router lease so a
	// partitioned shard stops starting new jobs, keeping them revocable.
	// The gate runs under the server's internal lock: it must be fast and
	// must not call back into the Server (use Kick from elsewhere to
	// re-evaluate it). nil means always open.
	Gate func() bool
	// OnTerminal, when non-nil, is called exactly once per job the moment
	// its record reaches a terminal state (completed, rejected or
	// drained), with a copy of the record. It is the push-based
	// terminal-state stream the scale harness (cmd/gridload) uses to
	// measure goodput without polling the job registry. The callback runs
	// synchronously on the goroutine driving the transition while the
	// service's internal lock is held: it must return quickly and must
	// not call back into the Server. Jobs restored from the journal
	// already in a terminal state do not re-fire; terminal transitions
	// that happen during Restore (invalid payloads rejected) do.
	OnTerminal func(Record)
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 64
	}
	return c.QueueCap
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 10 * time.Second
	}
	return c.DrainTimeout
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

// SubmitError is a typed admission failure; the HTTP layer maps Code to a
// status.
type SubmitError struct {
	Code   string // "invalid", "duplicate", "infeasible", "overloaded", "draining"
	Reason string
	// RetryAfter is set for overloaded rejections.
	RetryAfter time.Duration
}

// Error implements error.
func (e *SubmitError) Error() string { return fmt.Sprintf("service: %s: %s", e.Code, e.Reason) }

// The SubmitError codes.
const (
	CodeInvalid    = "invalid"
	CodeDuplicate  = "duplicate"
	CodeInfeasible = "infeasible"
	CodeOverloaded = "overloaded"
	CodeDraining   = "draining"
	// CodeInternal covers admission failures inside the service itself —
	// today only a journal append that could not be made durable, in which
	// case the job is NOT accepted (an unjournaled accept could be lost).
	CodeInternal = "internal"
)

// Record is one job's service-side ledger entry.
type Record struct {
	ID       string       `json:"id"`
	Strategy string       `json:"strategy"`
	Priority int          `json:"priority"`
	State    string       `json:"state"`
	Reason   string       `json:"reason,omitempty"`
	Domain   string       `json:"domain,omitempty"`
	Arrival  simtime.Time `json:"arrival,omitempty"`
	Finish   simtime.Time `json:"finish,omitempty"`
	Level    int          `json:"level,omitempty"`
	Retries  int          `json:"retries,omitempty"`
	// Epoch is the federation reallocation round that placed (or revoked)
	// this job on this shard; always 0 outside federation. Revocation
	// tombstones keep the epoch they were planted at, and RevokeEpoch /
	// Resurrect use it to tell a stale replay of an old binding from a
	// deliberate router decision.
	Epoch int    `json:"epoch,omitempty"`
	Seq   uint64 `json:"seq"`
}

// Metrics is a point-in-time counters snapshot.
type Metrics struct {
	Submitted      uint64            `json:"submitted"`
	Accepted       uint64            `json:"accepted"`
	Completed      uint64            `json:"completed"`
	Rejected       uint64            `json:"rejected"`
	Shed           uint64            `json:"shed"`
	Infeasible     uint64            `json:"infeasible"`
	Overloaded     uint64            `json:"overloaded"`
	Drained        uint64            `json:"drained"`
	Revoked        uint64            `json:"revoked,omitempty"`
	Resurrected    uint64            `json:"resurrected,omitempty"`
	Held           int               `json:"held,omitempty"`
	QueueDepth     int               `json:"queueDepth"`
	QueueHighWater int               `json:"queueHighWater"`
	EngineNow      simtime.Time      `json:"engineNow"`
	EventsFired    uint64            `json:"eventsFired"`
	BreakerTrips   int               `json:"breakerTrips"`
	Breakers       map[string]string `json:"breakers,omitempty"`
	Draining       bool              `json:"draining"`
	// JournalErrors counts lifecycle transitions that could not be
	// journaled (the job still progresses in memory; only durability of
	// that transition is degraded). Always 0 without a journal.
	JournalErrors uint64 `json:"journalErrors,omitempty"`
}

// RecoveryStats summarizes one journal Restore: how the remembered jobs
// were dispositioned. Surfaced on /healthz.
type RecoveryStats struct {
	// Restored is the total ledger records rebuilt from the journal.
	Restored int `json:"restored"`
	// Requeued is how many non-terminal jobs went back into the admission
	// queue to be scheduled again.
	Requeued int `json:"requeued"`
	// Held is how many non-terminal jobs were parked (Config.HoldRecovered)
	// awaiting the federation join handshake instead of being requeued.
	Held int `json:"held,omitempty"`
	// Terminal is how many jobs were already terminal; they are ledgered
	// so the duplicate-submit guard holds across the restart but are never
	// re-executed.
	Terminal int `json:"terminal"`
	// DuplicatesSuppressed counts journal entries skipped because the ID
	// was already ledgered (a second Restore, or overlapping histories).
	DuplicatesSuppressed int `json:"duplicatesSuppressed"`
	// Invalid counts non-terminal journal entries whose payload no longer
	// builds (or carried no wire form); they are ledgered as rejected.
	Invalid int `json:"invalid"`
	// TornBytes is carried over from the journal replay: trailing bytes
	// discarded as a torn tail.
	TornBytes int64 `json:"tornBytes,omitempty"`
	// LastLSN is the journal position recovery caught up to.
	LastLSN uint64 `json:"lastLSN"`
	// ReplaySeconds is the wall-clock cost of Restore.
	ReplaySeconds float64 `json:"replaySeconds"`
}

// entry is one queued submission.
type entry struct {
	rec  *Record
	job  *dag.Job // deadline still relative; rebased at arrival
	wire jobio.Job
	typ  strategy.Type
	enq  time.Time // wall-clock enqueue instant, for the queue-wait histogram
}

// Server is the long-running scheduler service.
type Server struct {
	cfg      Config
	engine   *sim.Engine
	vo       *metasched.VO
	breakers *breaker.Set // nil when disabled; engine goroutine only

	telem *telemetry.Registry // never nil after New
	spans *telemetry.Tracer   // nil unless Sched.Spans configured
	th    telemetryHandles

	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*entry
	held    map[string]*entry // parked recovered jobs (Config.HoldRecovered)
	records map[string]*Record
	order   []string // record IDs in submission order
	seq     uint64
	met     Metrics
	// engineNow/engineFired are the engine clock as of the last completed
	// processing step, published under mu because the live engine is owned
	// by the loop goroutine and must not be read from handlers.
	engineNow   simtime.Time
	engineFired uint64
	draining    bool
	buildCtxs   map[string]context.CancelFunc // per scheduled job
	recovery    *RecoveryStats                // set by Restore; nil before

	// drainDone is closed (and drainErr set) when the first Drain call
	// finishes; later callers wait on it instead of racing the first.
	drainDone chan struct{}
	drainErr  error

	loopDone chan struct{} // closed when the engine loop exits; nil before Start
}

// telemetryHandles caches the service's registry handles so every counter
// bump is one atomic op — the registry map is never consulted on the
// request or engine path.
type telemetryHandles struct {
	submitted, accepted, completed, rejected *telemetry.Counter
	shed, infeasible, overloaded, drained    *telemetry.Counter
	revoked                                  *telemetry.Counter
	queueDepth, queueHighWater               *telemetry.Gauge
	engineNow, eventsFired                   *telemetry.Gauge
	queueWait                                *telemetry.Histogram
	journalErrors                            *telemetry.Counter
	recoveredRequeued, recoveredTerminal     *telemetry.Gauge
	recoveryDuplicates                       *telemetry.Gauge
	replaySeconds                            *telemetry.Histogram
}

func newTelemetryHandles(reg *telemetry.Registry) telemetryHandles {
	c := func(name, help string) *telemetry.Counter { return reg.Counter(name, help) }
	g := func(name, help string) *telemetry.Gauge { return reg.Gauge(name, help) }
	return telemetryHandles{
		submitted:      c("grid_service_submitted_total", "jobs offered to the admission queue"),
		accepted:       c("grid_service_accepted_total", "jobs admitted into the queue"),
		completed:      c("grid_service_completed_total", "jobs that ran to plan"),
		rejected:       c("grid_service_rejected_total", "jobs that ended rejected (any reason)"),
		shed:           c("grid_service_shed_total", "queued jobs displaced by higher-priority arrivals"),
		infeasible:     c("grid_service_infeasible_total", "submissions rejected by deadline admission control"),
		overloaded:     c("grid_service_overloaded_total", "submissions refused with backpressure"),
		drained:        c("grid_service_drained_total", "queued jobs snapshotted at shutdown"),
		revoked:        c("grid_service_revoked_total", "jobs revoked by the federation router (incl. tombstones)"),
		queueDepth:     g("grid_service_queue_depth", "current admission-queue length"),
		queueHighWater: g("grid_service_queue_high_water", "maximum admission-queue length observed"),
		engineNow:      g("grid_service_engine_now", "model time as of the last completed step"),
		eventsFired:    g("grid_service_engine_events_fired", "simulation events fired so far"),
		queueWait: reg.Histogram("grid_service_queue_wait_seconds",
			"wall time jobs spent in the admission queue", nil),
		journalErrors:      c("grid_service_journal_errors_total", "lifecycle transitions that failed to journal"),
		recoveredRequeued:  g("grid_service_recovered_requeued", "non-terminal jobs re-enqueued by the last journal restore"),
		recoveredTerminal:  g("grid_service_recovered_terminal", "terminal jobs re-ledgered by the last journal restore"),
		recoveryDuplicates: g("grid_service_recovery_duplicates_suppressed", "journal entries skipped as duplicates during restore"),
		replaySeconds: reg.Histogram("grid_journal_replay_seconds",
			"wall time spent replaying the journal into the service", nil),
	}
}

// New builds a server over env. The engine loop is not started; call Start,
// or drive the server manually with Process/Quiesce in tests.
func New(cfg Config) (*Server, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("service: Config.Env is required")
	}
	s := &Server{
		cfg:       cfg,
		engine:    sim.New(),
		records:   make(map[string]*Record),
		held:      make(map[string]*entry),
		buildCtxs: make(map[string]context.CancelFunc),
	}
	s.cond = sync.NewCond(&s.mu)
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	s.telem = cfg.Telemetry
	if s.telem == nil {
		s.telem = telemetry.NewRegistry()
	}
	s.th = newTelemetryHandles(s.telem)
	s.spans = cfg.Sched.Spans
	if cfg.Breaker != nil {
		bc := *cfg.Breaker
		if bc.Telemetry == nil {
			bc.Telemetry = s.telem
		}
		s.breakers = breaker.NewSet(bc)
	}

	sched := cfg.Sched
	if sched.Telemetry == nil {
		sched.Telemetry = s.telem
	}
	userTracer := sched.Tracer
	sched.Tracer = metasched.TracerFunc(func(e metasched.Event) {
		s.onEvent(e)
		if userTracer != nil {
			userTracer.Trace(e)
		}
	})
	if s.breakers != nil {
		sched.DomainFilter = func(domain string) bool {
			return s.breakers.Allow(domain, s.engine.Now())
		}
	}
	sched.BuildCtx = s.jobBuildCtx
	s.vo = metasched.NewVO(s.engine, cfg.Env, sched)
	return s, nil
}

// jobBuildCtx hands the VO the job's build-bounding context. Runs on the
// engine goroutine.
func (s *Server) jobBuildCtx(jobName string) context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx := s.rootCtx
	var cancel context.CancelFunc
	if s.cfg.BuildTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.BuildTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	if old, ok := s.buildCtxs[jobName]; ok {
		old()
	}
	s.buildCtxs[jobName] = cancel
	return ctx
}

// onEvent is the service's tracer hook: it keeps the registry current and
// feeds the circuit breakers. Runs on the engine goroutine.
func (s *Server) onEvent(e metasched.Event) {
	now := e.At
	if s.breakers != nil {
		switch e.Kind {
		case metasched.EventComplete:
			if e.Domain != "" {
				s.breakers.Success(e.Domain, now)
			}
		case metasched.EventTaskFailed:
			if e.Domain != "" {
				s.breakers.Failure(e.Domain, now)
			}
		case metasched.EventNodeDown:
			if e.Domain != "" {
				// A whole-domain outage is a definitive failure signal.
				s.breakers.Failure(e.Domain, now)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[e.Job]
	if !ok {
		return
	}
	switch e.Kind {
	case metasched.EventActivate:
		rec.Domain = e.Domain
		rec.Level = e.Level
	case metasched.EventReallocate:
		rec.Domain = e.Domain
	case metasched.EventRetry:
		rec.Retries = e.Level
	case metasched.EventComplete:
		rec.State = StateCompleted
		rec.Finish = now
		s.met.Completed++
		s.th.completed.Inc()
		_ = s.journalLocked(journal.Record{Job: rec.ID, State: StateCompleted})
		s.notifyTerminalLocked(rec)
		s.releaseBuildCtxLocked(rec.ID)
	case metasched.EventReject:
		rec.State = StateRejected
		rec.Reason = "no feasible allocation"
		rec.Finish = now
		s.met.Rejected++
		s.th.rejected.Inc()
		_ = s.journalLocked(journal.Record{Job: rec.ID, State: StateRejected, Reason: rec.Reason})
		s.notifyTerminalLocked(rec)
		s.releaseBuildCtxLocked(rec.ID)
	}
}

// journalLocked appends one lifecycle transition to the write-ahead
// journal; callers hold s.mu so the per-job record order on disk matches
// the in-memory transition order. The admission path refuses the job on
// error (an unjournaled accept could be silently lost); engine-side
// callers ignore the error — the transition already happened — and it is
// surfaced through the JournalErrors counter instead.
func (s *Server) journalLocked(rec journal.Record) error {
	if s.cfg.Journal == nil {
		return nil
	}
	if _, err := s.cfg.Journal.Append(rec); err != nil {
		s.met.JournalErrors++
		s.th.journalErrors.Inc()
		return err
	}
	return nil
}

// notifyTerminalLocked fires the terminal-state stream for rec; callers
// hold s.mu and must invoke it exactly once, at the transition into the
// terminal state.
func (s *Server) notifyTerminalLocked(rec *Record) {
	if s.cfg.OnTerminal != nil {
		s.cfg.OnTerminal(*rec)
	}
}

func (s *Server) releaseBuildCtxLocked(jobName string) {
	if cancel, ok := s.buildCtxs[jobName]; ok {
		cancel()
		delete(s.buildCtxs, jobName)
	}
}

// minDeadline is the provable lower bound on a job's makespan: the
// task-only critical path under the fastest (tier-1) estimates. Transfers
// are excluded because S3-family clustering can elide them; a deadline
// below even this optimistic bound can never be met.
func minDeadline(job *dag.Job) simtime.Time {
	return job.CriticalPathLength(dag.WeightFunc{
		Edge: func(dag.Edge) simtime.Time { return 0 },
	})
}

// Submit validates and admits one wire-form job. The wire Deadline is a
// relative QoS budget: the absolute deadline becomes arrival + Deadline
// when the job is handed to the engine. priority orders overload shedding
// (higher is more important).
func (s *Server) Submit(wire jobio.Job, strategyName string, priority int) (*Record, error) {
	if s.spans == nil {
		return s.submit(wire, strategyName, priority)
	}
	sp := s.spans.Start("service.submit", 0)
	sp.SetStr("job", wire.Name)
	rec, err := s.submit(wire, strategyName, priority)
	outcome := "accepted"
	if err != nil {
		outcome = "error"
		if se, ok := err.(*SubmitError); ok {
			outcome = se.Code
		}
	}
	sp.SetStr("outcome", outcome).End()
	return rec, err
}

// submit is Submit without the admission span.
func (s *Server) submit(wire jobio.Job, strategyName string, priority int) (*Record, error) {
	typ, err := strategy.ParseType(strategyName)
	if err != nil {
		return nil, &SubmitError{Code: CodeInvalid, Reason: err.Error()}
	}
	job, err := wire.ToJob()
	if err != nil {
		return nil, &SubmitError{Code: CodeInvalid, Reason: err.Error()}
	}
	if bound := minDeadline(job); simtime.Time(wire.Deadline) < bound {
		rec := s.recordRejection(wire, typ, priority,
			fmt.Sprintf("infeasible: deadline %d is below the fastest-tier critical path %d", wire.Deadline, bound))
		if rec == nil {
			return nil, &SubmitError{Code: CodeDuplicate, Reason: fmt.Sprintf("job %q was already submitted", wire.Name)}
		}
		s.mu.Lock()
		s.met.Submitted++
		s.met.Infeasible++
		s.met.Rejected++
		s.mu.Unlock()
		s.th.submitted.Inc()
		s.th.infeasible.Inc()
		s.th.rejected.Inc()
		return rec, &SubmitError{Code: CodeInfeasible, Reason: rec.Reason}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.Submitted++
	s.th.submitted.Inc()
	if s.draining {
		return nil, &SubmitError{
			Code:       CodeDraining,
			Reason:     "service is draining; not accepting work",
			RetryAfter: s.cfg.retryAfter(),
		}
	}
	if _, ok := s.records[wire.Name]; ok {
		return nil, &SubmitError{Code: CodeDuplicate, Reason: fmt.Sprintf("job %q was already submitted", wire.Name)}
	}
	if len(s.queue) >= s.cfg.queueCap() {
		victim := s.shedCandidateLocked(priority)
		if victim < 0 {
			s.met.Overloaded++
			s.th.overloaded.Inc()
			return nil, &SubmitError{
				Code:       CodeOverloaded,
				Reason:     fmt.Sprintf("admission queue full (%d)", s.cfg.queueCap()),
				RetryAfter: s.cfg.retryAfter(),
			}
		}
		s.shedLocked(victim)
	}
	// Write-ahead: the accept is journaled (and made durable under the
	// journal's fsync policy) before the job exists anywhere in memory, so
	// an acknowledged submission survives any crash.
	if err := s.journalLocked(journal.Record{
		Job: wire.Name, State: StateQueued,
		Strategy: typ.String(), Priority: priority, Wire: &wire,
	}); err != nil {
		return nil, &SubmitError{Code: CodeInternal,
			Reason: fmt.Sprintf("journal append failed, job not accepted: %v", err)}
	}
	rec := s.newRecordLocked(wire.Name, typ, priority, StateQueued)
	s.met.Accepted++
	s.th.accepted.Inc()
	s.queue = append(s.queue, &entry{rec: rec, job: job, wire: wire, typ: typ, enq: time.Now()})
	s.th.queueDepth.Set(float64(len(s.queue)))
	if d := len(s.queue); d > s.met.QueueHighWater {
		s.met.QueueHighWater = d
		s.th.queueHighWater.Set(float64(d))
	}
	s.cond.Signal()
	return rec.clone(), nil
}

// recordRejection ledgers an admission-time rejection (infeasible). It
// returns nil when the ID already exists.
func (s *Server) recordRejection(wire jobio.Job, typ strategy.Type, priority int, reason string) *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.records[wire.Name]; ok {
		return nil
	}
	// Ledger the rejection durably too: the duplicate-submit guard must
	// give the same answer for this ID after a restart.
	_ = s.journalLocked(journal.Record{
		Job: wire.Name, State: StateRejected, Reason: reason,
		Strategy: typ.String(), Priority: priority,
	})
	rec := s.newRecordLocked(wire.Name, typ, priority, StateRejected)
	rec.Reason = reason
	s.notifyTerminalLocked(rec)
	return rec.clone()
}

func (s *Server) newRecordLocked(id string, typ strategy.Type, priority int, state string) *Record {
	s.seq++
	rec := &Record{ID: id, Strategy: typ.String(), Priority: priority, State: state, Seq: s.seq}
	s.records[id] = rec
	s.order = append(s.order, id)
	return rec
}

// shedCandidateLocked returns the queue index of the job to shed for an
// arrival of the given priority: the lowest-priority queued job, newest
// first among ties — and only if it is strictly less important than the
// newcomer. -1 means nobody yields.
func (s *Server) shedCandidateLocked(priority int) int {
	best := -1
	for i, e := range s.queue {
		if best < 0 ||
			e.rec.Priority < s.queue[best].rec.Priority ||
			(e.rec.Priority == s.queue[best].rec.Priority && e.rec.Seq > s.queue[best].rec.Seq) {
			best = i
		}
	}
	if best >= 0 && s.queue[best].rec.Priority < priority {
		return best
	}
	return -1
}

// shedLocked removes queue[i] as an overload victim.
func (s *Server) shedLocked(i int) {
	e := s.queue[i]
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
	e.rec.State = StateRejected
	e.rec.Reason = "shed: displaced by higher-priority work under overload"
	_ = s.journalLocked(journal.Record{Job: e.rec.ID, State: StateRejected, Reason: e.rec.Reason})
	s.notifyTerminalLocked(e.rec)
	s.met.Shed++
	s.met.Rejected++
	s.th.shed.Inc()
	s.th.rejected.Inc()
	s.th.queueDepth.Set(float64(len(s.queue)))
}

// dequeueLocked pops the most important queued entry (highest priority,
// oldest among ties).
func (s *Server) dequeueLocked() *entry {
	best := -1
	for i, e := range s.queue {
		if best < 0 ||
			e.rec.Priority > s.queue[best].rec.Priority ||
			(e.rec.Priority == s.queue[best].rec.Priority && e.rec.Seq < s.queue[best].rec.Seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	e := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	s.th.queueDepth.Set(float64(len(s.queue)))
	return e
}

// dequeueBatchLocked pops up to max entries in dequeue order, forming one
// arrival batch for the concurrent placer pool (placers > 1).
func (s *Server) dequeueBatchLocked(max int) []*entry {
	var out []*entry
	for len(out) < max {
		e := s.dequeueLocked()
		if e == nil {
			break
		}
		out = append(out, e)
	}
	return out
}

// placers returns the effective concurrent-placement width (≥ 1).
func (s *Server) placers() int {
	if s.cfg.Sched.Placers < 1 {
		return 1
	}
	return s.cfg.Sched.Placers
}

// Start launches the engine loop. Call at most once.
func (s *Server) Start() {
	s.loopDone = make(chan struct{})
	go s.loop()
}

// loop is the engine goroutine: it owns the simulation engine, the VO and
// the breakers for the server's whole life.
func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		s.mu.Lock()
		for (len(s.queue) == 0 || !s.gateOpenLocked()) && !s.draining {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		batch := s.dequeueBatchLocked(s.placers())
		s.mu.Unlock()
		if len(batch) == 1 {
			s.process(batch[0])
		} else {
			s.processBatch(batch)
		}
		s.mu.Lock()
		idle := len(s.queue) == 0
		s.mu.Unlock()
		if idle {
			// Nothing waiting: fast-forward the virtual clock so everything
			// in flight completes.
			s.engine.Run()
		}
		s.publishEngineStats()
	}
}

// gateOpenLocked evaluates the optional dequeue gate under s.mu.
func (s *Server) gateOpenLocked() bool {
	return s.cfg.Gate == nil || s.cfg.Gate()
}

// Kick re-evaluates the dequeue gate: call it whenever the gate's input
// changes (e.g. a router lease refresh) so a paused engine loop wakes up.
func (s *Server) Kick() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// publishEngineStats copies the engine clock into the locked snapshot
// fields; engine goroutine (or manual-mode driver) only.
func (s *Server) publishEngineStats() {
	now, fired := s.engine.Now(), s.engine.Fired()
	s.mu.Lock()
	s.engineNow = now
	s.engineFired = fired
	s.mu.Unlock()
	s.th.engineNow.Set(float64(now))
	s.th.eventsFired.Set(float64(fired))
}

// process hands one dequeued job to the VO and advances the engine just
// past its arrival: the strategy is built and its windows reserved, while
// the start/finish events stay pending so the job is genuinely in flight.
// Engine goroutine only (or the test driver in manual mode).
func (s *Server) process(e *entry) {
	if !e.enq.IsZero() {
		s.th.queueWait.Observe(telemetry.Since(e.enq))
	}
	sp := s.spans.Start("service.process", 0)
	sp.SetStr("job", e.rec.ID)
	arrival := s.engine.Now() + 1
	job := e.job.WithDeadline(arrival + simtime.Time(e.wire.Deadline))
	s.mu.Lock()
	e.rec.State = StateScheduled
	e.rec.Arrival = arrival
	_ = s.journalLocked(journal.Record{Job: e.rec.ID, State: StateScheduled})
	s.mu.Unlock()
	if err := s.vo.Submit(job, e.typ, arrival); err != nil {
		s.mu.Lock()
		e.rec.State = StateRejected
		e.rec.Reason = err.Error()
		s.met.Rejected++
		_ = s.journalLocked(journal.Record{Job: e.rec.ID, State: StateRejected, Reason: e.rec.Reason})
		s.notifyTerminalLocked(e.rec)
		s.mu.Unlock()
		s.th.rejected.Inc()
		sp.SetStr("result", "rejected").End()
		return
	}
	s.engine.RunUntil(arrival + 1)
	sp.SetStr("result", "scheduled").End()
}

// processBatch is process for a whole arrival batch when concurrent
// placement is enabled: every entry shares one arrival tick, so the VO
// batches them through the optimistic placer pool (metasched.SubmitPrio),
// with each record's admission priority carried into the commit arbiter's
// collision-resolution order. Engine goroutine only.
func (s *Server) processBatch(batch []*entry) {
	sp := s.spans.Start("service.process_batch", 0)
	sp.SetInt("jobs", int64(len(batch)))
	arrival := s.engine.Now() + 1
	for _, e := range batch {
		if !e.enq.IsZero() {
			s.th.queueWait.Observe(telemetry.Since(e.enq))
		}
		job := e.job.WithDeadline(arrival + simtime.Time(e.wire.Deadline))
		s.mu.Lock()
		e.rec.State = StateScheduled
		e.rec.Arrival = arrival
		_ = s.journalLocked(journal.Record{Job: e.rec.ID, State: StateScheduled})
		s.mu.Unlock()
		if err := s.vo.SubmitPrio(job, e.typ, arrival, e.rec.Priority); err != nil {
			s.mu.Lock()
			e.rec.State = StateRejected
			e.rec.Reason = err.Error()
			s.met.Rejected++
			_ = s.journalLocked(journal.Record{Job: e.rec.ID, State: StateRejected, Reason: e.rec.Reason})
			s.notifyTerminalLocked(e.rec)
			s.mu.Unlock()
			s.th.rejected.Inc()
		}
	}
	s.engine.RunUntil(arrival + 1)
	sp.SetStr("result", "scheduled").End()
}

// Process dequeues and schedules up to n queued jobs synchronously (all of
// them when n < 0) and reports how many it handled. With placers > 1 the
// dequeued jobs form arrival batches of up to the placer width. Manual-mode
// driver for deterministic tests; never call concurrently with Start.
func (s *Server) Process(n int) int {
	done := 0
	for n < 0 || done < n {
		max := s.placers()
		if n >= 0 && n-done < max {
			max = n - done
		}
		s.mu.Lock()
		batch := s.dequeueBatchLocked(max)
		s.mu.Unlock()
		if len(batch) == 0 {
			break
		}
		if len(batch) == 1 {
			s.process(batch[0])
		} else {
			s.processBatch(batch)
		}
		done += len(batch)
	}
	s.publishEngineStats()
	return done
}

// Quiesce runs the engine until no events remain. Manual-mode counterpart
// of the loop's idle fast-forward.
func (s *Server) Quiesce() simtime.Time {
	t := s.engine.Run()
	s.publishEngineStats()
	return t
}

// ErrInFlight is returned by Revoke for a job the engine already owns: it
// was dequeued (scheduled or about to be), so it can no longer be taken
// back — it will reach a terminal state here.
var ErrInFlight = fmt.Errorf("service: job is in flight and cannot be revoked")

// Revoke takes a job back on behalf of a federation router so it can be
// reallocated to another shard. The outcome is encoded in the returned
// record's state:
//
//   - still queued (or held from recovery): removed and marked revoked —
//     the shard will never execute it;
//   - never seen: a terminal "revoked" tombstone is planted under the ID,
//     so a delayed handoff that arrives later is refused as a duplicate
//     (this closes the reorder race that would double-execute);
//   - already terminal: the existing record is returned unchanged;
//   - dequeued by the engine: ErrInFlight — the router must keep the job
//     bound to this shard and wait for its terminal state.
//
// Revoke is idempotent: repeating it returns the same terminal record.
func (s *Server) Revoke(id, reason string) (Record, error) {
	return s.RevokeEpoch(id, reason, 0)
}

// RevokeEpoch is Revoke carrying the router's reallocation epoch. The
// epoch makes revocation safe against replayed RPCs once Resurrect
// exists: a record placed at a higher epoch than the request's was bound
// here by a NEWER router decision, so the (necessarily stale) revocation
// is refused with ErrInFlight instead of yanking a legitimate placement.
// Revoking an already-revoked tombstone raises the tombstone's epoch to
// the request's, so stale handoff replays of the just-revoked binding
// stay refused.
func (s *Server) RevokeEpoch(id, reason string, epoch int) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.held[id]; ok {
		if e.rec.Epoch > epoch {
			return *e.rec, ErrInFlight
		}
		delete(s.held, id)
		s.revokeEntryLocked(e.rec, reason, epoch)
		return *e.rec, nil
	}
	for i, e := range s.queue {
		if e.rec.ID != id {
			continue
		}
		if e.rec.Epoch > epoch {
			return *e.rec, ErrInFlight
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.th.queueDepth.Set(float64(len(s.queue)))
		s.revokeEntryLocked(e.rec, reason, epoch)
		return *e.rec, nil
	}
	if rec, ok := s.records[id]; ok {
		if rec.State == StateRevoked {
			if epoch > rec.Epoch {
				rec.Epoch = epoch
				rec.Reason = reason
				_ = s.journalLocked(journal.Record{Job: id, State: StateRevoked, Reason: reason, Epoch: epoch})
			}
			return *rec, nil
		}
		if Terminal(rec.State) {
			return *rec, nil
		}
		return *rec, ErrInFlight
	}
	// Tombstone: ledger the ID as revoked before any handoff ever landed.
	rec := s.newRecordLocked(id, strategy.Type(0), 0, StateRevoked)
	rec.Reason = "revoked before arrival: " + reason
	rec.Epoch = epoch
	_ = s.journalLocked(journal.Record{Job: id, State: StateRevoked, Reason: rec.Reason, Epoch: epoch})
	s.met.Revoked++
	s.th.revoked.Inc()
	s.notifyTerminalLocked(rec)
	return *rec, nil
}

// revokeEntryLocked marks one reclaimed entry's record revoked.
func (s *Server) revokeEntryLocked(rec *Record, reason string, epoch int) {
	rec.State = StateRevoked
	rec.Reason = reason
	if epoch > rec.Epoch {
		rec.Epoch = epoch
	}
	_ = s.journalLocked(journal.Record{Job: rec.ID, State: StateRevoked, Reason: reason, Epoch: rec.Epoch})
	s.met.Revoked++
	s.th.revoked.Inc()
	s.notifyTerminalLocked(rec)
}

// ErrNotRevoked is returned by Resurrect when the job's ledger entry is
// not a resurrectable tombstone (missing, active, terminal another way,
// or placed at an epoch at or above the caller's).
var ErrNotRevoked = fmt.Errorf("service: record is not a resurrectable tombstone")

// Resurrect re-admits a job whose ledger entry is a revoked (or drained)
// tombstone — the service half of the federation recovery ladder's final
// rung. After a router has confirmed revocation of a job on every shard,
// the job is provably running nowhere, so a deliberate re-handoff
// carrying a reallocation epoch strictly above the tombstone's may turn
// the tombstone back into a queued admission; stale replays of a revoked
// binding carry the tombstone's own epoch or lower and are refused. The
// record keeps its identity and Seq and remembers the placement epoch;
// the re-admission is journaled write-ahead like any accept. An
// infeasible resurrection flips the tombstone to a rejected ledger entry
// instead, so definitive rejections stay shard-ledgered.
func (s *Server) Resurrect(wire jobio.Job, strategyName string, priority, epoch int) (*Record, error) {
	typ, err := strategy.ParseType(strategyName)
	if err != nil {
		return nil, &SubmitError{Code: CodeInvalid, Reason: err.Error()}
	}
	job, err := wire.ToJob()
	if err != nil {
		return nil, &SubmitError{Code: CodeInvalid, Reason: err.Error()}
	}
	infeasible := ""
	if bound := minDeadline(job); simtime.Time(wire.Deadline) < bound {
		infeasible = fmt.Sprintf("infeasible: deadline %d is below the fastest-tier critical path %d", wire.Deadline, bound)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[wire.Name]
	if !ok {
		return nil, ErrNotRevoked
	}
	if (rec.State != StateRevoked && rec.State != StateDrained) || epoch <= rec.Epoch {
		return rec.clone(), ErrNotRevoked
	}
	if s.draining {
		return nil, &SubmitError{Code: CodeDraining,
			Reason: "service is draining; not accepting work", RetryAfter: s.cfg.retryAfter()}
	}
	if infeasible != "" {
		rec.State = StateRejected
		rec.Reason = infeasible
		rec.Strategy, rec.Priority, rec.Epoch = typ.String(), priority, epoch
		_ = s.journalLocked(journal.Record{Job: wire.Name, State: StateRejected,
			Reason: infeasible, Strategy: typ.String(), Priority: priority, Epoch: epoch})
		s.met.Rejected++
		s.th.rejected.Inc()
		s.notifyTerminalLocked(rec)
		return rec.clone(), &SubmitError{Code: CodeInfeasible, Reason: infeasible}
	}
	if len(s.queue) >= s.cfg.queueCap() {
		return nil, &SubmitError{Code: CodeOverloaded,
			Reason:     fmt.Sprintf("admission queue full (%d)", s.cfg.queueCap()),
			RetryAfter: s.cfg.retryAfter()}
	}
	if err := s.journalLocked(journal.Record{
		Job: wire.Name, State: StateQueued,
		Strategy: typ.String(), Priority: priority, Wire: &wire, Epoch: epoch,
	}); err != nil {
		return nil, &SubmitError{Code: CodeInternal,
			Reason: fmt.Sprintf("journal append failed, job not resurrected: %v", err)}
	}
	rec.State = StateQueued
	rec.Reason = ""
	rec.Strategy, rec.Priority, rec.Epoch = typ.String(), priority, epoch
	s.met.Resurrected++
	s.queue = append(s.queue, &entry{rec: rec, job: job, wire: wire, typ: typ, enq: time.Now()})
	s.th.queueDepth.Set(float64(len(s.queue)))
	if d := len(s.queue); d > s.met.QueueHighWater {
		s.met.QueueHighWater = d
		s.th.queueHighWater.Set(float64(d))
	}
	s.cond.Signal()
	return rec.clone(), nil
}

// Held returns the IDs of recovered jobs parked by Restore under
// Config.HoldRecovered, sorted.
func (s *Server) Held() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.held))
	for id := range s.held {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ResumeHeld releases parked recovered jobs back into the admission queue
// — the router's join handshake confirmed this shard still owns them.
// Unknown or already-released IDs are ignored; the count moved is
// returned.
func (s *Server) ResumeHeld(ids []string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	moved := 0
	for _, id := range ids {
		e, ok := s.held[id]
		if !ok {
			continue
		}
		delete(s.held, id)
		s.queue = append(s.queue, e)
		moved++
	}
	if moved > 0 {
		s.th.queueDepth.Set(float64(len(s.queue)))
		if d := len(s.queue); d > s.met.QueueHighWater {
			s.met.QueueHighWater = d
			s.th.queueHighWater.Set(float64(d))
		}
		s.cond.Broadcast()
	}
	return moved
}

// Drain gracefully shuts the service down: admissions stop, the engine
// loop exits, still-queued jobs are snapshotted to disk (jobio wire form)
// and marked drained, and in-flight jobs are run to completion — bounded
// by ctx and the configured DrainTimeout, after which their builds are
// cancelled and the engine is given one last chance to settle. The VO is
// closed at the end.
//
// Drain is idempotent: concurrent or repeated calls never snapshot twice
// or race the first — later callers wait for the first drain to finish
// (or their own ctx) and return its error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		done := s.drainDone
		s.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
		s.mu.Lock()
		err := s.drainErr
		s.mu.Unlock()
		return err
	}
	s.draining = true
	s.drainDone = make(chan struct{})
	s.cond.Broadcast()
	s.mu.Unlock()
	err := s.drain(ctx)
	s.mu.Lock()
	s.drainErr = err
	s.mu.Unlock()
	close(s.drainDone)
	return err
}

// drain is the single-flight body of Drain.
func (s *Server) drain(ctx context.Context) error {
	sp := s.spans.Start("service.drain", 0)
	defer sp.End()

	// Wait for the engine loop to exit; afterwards this goroutine is the
	// engine's sole owner (the channel close is the happens-before edge).
	if s.loopDone != nil {
		select {
		case <-s.loopDone:
		case <-ctx.Done():
			// The loop only blocks inside a build; cut it and keep waiting —
			// builds observe cancellation at their next checkpoint.
			s.rootCancel()
			<-s.loopDone
		}
	}

	if err := s.snapshotQueued(); err != nil {
		return err
	}

	// Finish what is in flight, within the drain budget.
	timer := time.AfterFunc(s.cfg.drainTimeout(), s.rootCancel)
	s.engine.Run()
	timer.Stop()
	s.publishEngineStats()

	s.mu.Lock()
	for id, cancel := range s.buildCtxs {
		cancel()
		delete(s.buildCtxs, id)
	}
	s.mu.Unlock()
	s.vo.Close()
	s.rootCancel()
	// Fold the final states into a compaction snapshot so the journal
	// directory is a handful of files after a clean shutdown.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Compact(); err != nil {
			return fmt.Errorf("service: journal compact on drain: %w", err)
		}
	}
	return nil
}

// snapshotQueued writes every still-queued job to the snapshot file and
// marks it drained. With no SnapshotPath the jobs are only marked. The
// write is atomic and durable (temp file, fsync, rename, dir fsync): a
// crash mid-drain leaves either no snapshot or a complete one, never a
// truncated file.
func (s *Server) snapshotQueued() error {
	s.mu.Lock()
	// Held recovered jobs drain like queued ones: they are accepted work
	// this shard still owes an answer for.
	for id, e := range s.held {
		s.queue = append(s.queue, e)
		delete(s.held, id)
	}
	sort.Slice(s.queue, func(a, b int) bool { return s.queue[a].rec.Seq < s.queue[b].rec.Seq })
	var wires []jobio.Job
	for _, e := range s.queue {
		wires = append(wires, e.wire)
		e.rec.State = StateDrained
		e.rec.Reason = "drained to snapshot on shutdown"
		_ = s.journalLocked(journal.Record{Job: e.rec.ID, State: StateDrained, Reason: e.rec.Reason})
		s.notifyTerminalLocked(e.rec)
		s.met.Drained++
		s.th.drained.Inc()
	}
	s.queue = nil
	path := s.cfg.SnapshotPath
	s.mu.Unlock()
	s.th.queueDepth.Set(0)
	if len(wires) == 0 || path == "" {
		return nil
	}
	if err := atomicfile.WriteFile(path, func(w io.Writer) error {
		return jobio.WriteJobs(w, wires)
	}); err != nil {
		return fmt.Errorf("service: snapshot: %w", err)
	}
	return nil
}

// Restore rebuilds the service's state from a journal recovery. Call it
// after New and before Start (or any Submit). Terminal jobs are ledgered
// so the duplicate-submit guard survives the restart but are never
// re-executed; non-terminal jobs (queued or scheduled when the process
// died) are re-enqueued through the same duplicate guard as client
// submissions — so across any crash/restart sequence an accepted job
// reaches a terminal state exactly once. Restore itself is idempotent: a
// second call finds every ID already ledgered and suppresses it.
func (s *Server) Restore(rec *journal.Recovery) (RecoveryStats, error) {
	if rec == nil {
		return RecoveryStats{}, nil
	}
	start := time.Now()
	stats := RecoveryStats{TornBytes: rec.TornBytes, LastLSN: rec.LastLSN}

	s.mu.Lock()
	for _, js := range rec.Jobs {
		if _, ok := s.records[js.Job]; ok {
			stats.DuplicatesSuppressed++
			continue
		}
		typ, terr := strategy.ParseType(js.Strategy)
		if Terminal(js.State) {
			r := s.newRecordLocked(js.Job, typ, js.Priority, js.State)
			r.Reason = js.Reason
			r.Epoch = js.Epoch
			stats.Restored++
			stats.Terminal++
			continue
		}
		// Non-terminal: rebuild and re-enqueue. A journal entry that can
		// no longer build (lost wire form, unknown strategy, invalid
		// graph) is ledgered as rejected rather than dropped silently.
		reject := func(reason string) {
			r := s.newRecordLocked(js.Job, typ, js.Priority, StateRejected)
			r.Reason = reason
			_ = s.journalLocked(journal.Record{Job: js.Job, State: StateRejected, Reason: reason})
			s.notifyTerminalLocked(r)
			s.met.Rejected++
			s.th.rejected.Inc()
			stats.Restored++
			stats.Invalid++
		}
		if js.Wire == nil {
			reject("recovery: journal entry has no wire payload")
			continue
		}
		if terr != nil {
			reject(fmt.Sprintf("recovery: %v", terr))
			continue
		}
		job, err := js.Wire.ToJob()
		if err != nil {
			reject(fmt.Sprintf("recovery: %v", err))
			continue
		}
		r := s.newRecordLocked(js.Job, typ, js.Priority, StateQueued)
		r.Epoch = js.Epoch
		e := &entry{rec: r, job: job, wire: *js.Wire, typ: typ}
		if s.cfg.HoldRecovered {
			// Park it: the federation join handshake decides whether this
			// shard still owns the job (ResumeHeld) or lost it while down
			// (Revoke). Until then it must not execute.
			s.held[js.Job] = e
			stats.Held++
		} else {
			s.queue = append(s.queue, e)
			stats.Requeued++
		}
		// Re-journal the accept: after the post-restore compaction the
		// journal stays self-contained even though the original admission
		// record is gone.
		_ = s.journalLocked(journal.Record{
			Job: js.Job, State: StateQueued,
			Strategy: typ.String(), Priority: js.Priority, Wire: js.Wire, Epoch: js.Epoch,
		})
		s.met.Accepted++
		s.th.accepted.Inc()
		stats.Restored++
	}
	s.th.queueDepth.Set(float64(len(s.queue)))
	if d := len(s.queue); d > s.met.QueueHighWater {
		s.met.QueueHighWater = d
		s.th.queueHighWater.Set(float64(d))
	}
	s.cond.Broadcast()
	stats.ReplaySeconds = time.Since(start).Seconds()
	s.recovery = &stats
	s.mu.Unlock()

	s.th.recoveredRequeued.Set(float64(stats.Requeued))
	s.th.recoveredTerminal.Set(float64(stats.Terminal))
	s.th.recoveryDuplicates.Set(float64(stats.DuplicatesSuppressed))
	s.th.replaySeconds.Observe(stats.ReplaySeconds)

	// Fold the restored state into a fresh snapshot: replay cost stays
	// bounded no matter how many crash/restart cycles the journal lived
	// through.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Compact(); err != nil {
			return stats, fmt.Errorf("service: compact after restore: %w", err)
		}
	}
	return stats, nil
}

// Recovery returns the stats of the last Restore, or nil when none ran.
func (s *Server) Recovery() *RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovery == nil {
		return nil
	}
	cp := *s.recovery
	return &cp
}

// Job returns a copy of the record for id.
func (s *Server) Job(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Jobs returns copies of every record in submission order.
func (s *Server) Jobs() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.records[id])
	}
	return out
}

// Metrics returns a counters snapshot. Breaker states are reported only
// between engine-loop activity (they live on the engine goroutine); the
// snapshot reflects the last completed processing step.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.met
	m.QueueDepth = len(s.queue)
	m.Held = len(s.held)
	m.EngineNow = s.engineNow
	m.EventsFired = s.engineFired
	m.Draining = s.draining
	return m
}

// BreakerStates returns every domain breaker's state. Engine goroutine (or
// manual mode) only — see Metrics for the handler-safe view.
func (s *Server) BreakerStates() map[string]string {
	if s.breakers == nil {
		return nil
	}
	out := s.breakers.States(s.engine.Now())
	trips := 0
	for _, name := range s.breakers.Names() {
		trips += s.breakers.Get(name).Trips()
	}
	s.mu.Lock()
	s.met.Breakers = out
	s.met.BreakerTrips = trips
	s.mu.Unlock()
	return out
}

// Telemetry returns the server's metrics registry (never nil): the one
// from Config, or the private registry New created. GET /metrics renders
// it in Prometheus text format.
func (s *Server) Telemetry() *telemetry.Registry { return s.telem }

// Draining reports whether the service has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Results exposes the VO's finished-job records; safe only after Drain (or
// between manual-mode steps).
func (s *Server) Results() []*metasched.JobResult { return s.vo.Results() }

// clone copies a record for return to callers outside the lock.
func (r *Record) clone() *Record {
	cp := *r
	return &cp
}

// SortRecordsByID orders records deterministically for reports.
func SortRecordsByID(recs []Record) {
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
}
