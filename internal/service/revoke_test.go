package service

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/metasched"
)

// TestRevokeQueued takes a still-queued job back and checks the terminal
// revoked ledger entry plus the duplicate guard.
func TestRevokeQueued(t *testing.T) {
	s := newServer(t, Config{})
	if _, err := s.Submit(wireJob("j1", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Revoke("j1", "rebalance")
	if err != nil {
		t.Fatalf("revoke queued: %v", err)
	}
	if rec.State != StateRevoked {
		t.Fatalf("state = %q, want revoked", rec.State)
	}
	if !Terminal(StateRevoked) {
		t.Fatal("revoked must be terminal")
	}
	// Idempotent: a second revoke returns the same terminal record.
	rec2, err := s.Revoke("j1", "again")
	if err != nil || rec2.State != StateRevoked {
		t.Fatalf("second revoke = (%v, %v), want revoked", rec2.State, err)
	}
	// The ID stays burned: resubmission is refused.
	if _, err := s.Submit(wireJob("j1", 60), "S1", 0); err == nil {
		t.Fatal("resubmit of revoked job accepted")
	}
	// Nothing left to schedule.
	if n := s.Process(-1); n != 0 {
		t.Fatalf("processed %d jobs after revoke, want 0", n)
	}
	if m := s.Metrics(); m.Revoked != 1 {
		t.Fatalf("Revoked = %d, want 1", m.Revoked)
	}
}

// TestRevokeUnknownPlantsTombstone pins the reorder-race defense: revoking
// an ID the shard never saw leaves a terminal tombstone, so a delayed
// handoff arriving later is refused as a duplicate and never executes.
func TestRevokeUnknownPlantsTombstone(t *testing.T) {
	s := newServer(t, Config{})
	rec, err := s.Revoke("ghost", "handoff gave up")
	if err != nil {
		t.Fatalf("tombstone revoke: %v", err)
	}
	if rec.State != StateRevoked {
		t.Fatalf("tombstone state = %q, want revoked", rec.State)
	}
	_, err = s.Submit(wireJob("ghost", 60), "S1", 0)
	var se *SubmitError
	if !errors.As(err, &se) || se.Code != CodeDuplicate {
		t.Fatalf("late handoff after tombstone: err = %v, want duplicate", err)
	}
	got, _ := s.Job("ghost")
	if got.State != StateRevoked {
		t.Fatalf("ledger state after late handoff = %q, want revoked", got.State)
	}
}

// TestRevokeInFlight refuses to revoke a job the engine already owns.
func TestRevokeInFlight(t *testing.T) {
	s := newServer(t, Config{})
	if _, err := s.Submit(wireJob("j1", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	s.Process(1) // dequeue + schedule: now in flight
	if _, err := s.Revoke("j1", "too late"); !errors.Is(err, ErrInFlight) {
		t.Fatalf("revoke in-flight: err = %v, want ErrInFlight", err)
	}
	s.Quiesce()
	rec, _ := s.Job("j1")
	if rec.State != StateCompleted {
		t.Fatalf("in-flight job ended %q, want completed", rec.State)
	}
	// Terminal now: revoke reports the existing terminal state unchanged.
	rec2, err := s.Revoke("j1", "late again")
	if err != nil || rec2.State != StateCompleted {
		t.Fatalf("revoke after terminal = (%q, %v), want completed", rec2.State, err)
	}
}

// TestHoldRecovered restores a crashed journal with HoldRecovered and
// checks that parked jobs do not run until resumed, and that revoked ones
// never run.
func TestHoldRecovered(t *testing.T) {
	dir := t.TempDir()
	open := func() (*journal.Journal, *journal.Recovery) {
		j, rec, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncNever, IsTerminal: Terminal})
		if err != nil {
			t.Fatal(err)
		}
		return j, rec
	}
	j1, _ := open()
	s1 := newServer(t, Config{Journal: j1})
	for _, id := range []string{"a", "b", "c"} {
		if _, err := s1.Submit(wireJob(id, 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close() // simulate a crash: jobs journaled queued, never scheduled

	j2, rec := open()
	defer j2.Close()
	s2 := newServer(t, Config{Journal: j2, HoldRecovered: true})
	stats, err := s2.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Held != 3 || stats.Requeued != 0 {
		t.Fatalf("restore held=%d requeued=%d, want 3/0", stats.Held, stats.Requeued)
	}
	if got := s2.Held(); len(got) != 3 {
		t.Fatalf("Held() = %v, want 3 ids", got)
	}
	// Nothing runs while parked.
	if n := s2.Process(-1); n != 0 {
		t.Fatalf("parked jobs processed: %d", n)
	}
	// The router says: b was reallocated away, a and c are still ours.
	if rec, err := s2.Revoke("b", "reallocated to shard-2"); err != nil || rec.State != StateRevoked {
		t.Fatalf("revoke held = (%q, %v)", rec.State, err)
	}
	if n := s2.ResumeHeld([]string{"a", "c", "b", "nope"}); n != 2 {
		t.Fatalf("ResumeHeld moved %d, want 2", n)
	}
	if n := s2.Process(-1); n != 2 {
		t.Fatalf("processed %d resumed jobs, want 2", n)
	}
	s2.Quiesce()
	for id, want := range map[string]string{"a": StateCompleted, "b": StateRevoked, "c": StateCompleted} {
		if got, _ := s2.Job(id); got.State != want {
			t.Fatalf("job %s = %q, want %q", id, got.State, want)
		}
	}
}

// TestDequeueGate pauses the engine loop while the gate is closed and
// resumes it on Kick — the lease-gating mechanism a partitioned shard
// uses to stop starting new work.
func TestDequeueGate(t *testing.T) {
	var open atomic.Bool
	s := newServer(t, Config{Gate: func() bool { return open.Load() }})
	s.Start()
	defer s.Drain(context.Background())
	if _, err := s.Submit(wireJob("j1", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if rec, _ := s.Job("j1"); rec.State != StateQueued {
		t.Fatalf("gated job state = %q, want queued", rec.State)
	}
	open.Store(true)
	s.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rec, _ := s.Job("j1"); Terminal(rec.State) {
			if rec.State != StateCompleted {
				t.Fatalf("job ended %q, want completed", rec.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never ran after the gate opened")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHeldDrainedOnShutdown checks held jobs are snapshotted and marked
// drained like queued ones.
func TestHeldDrainedOnShutdown(t *testing.T) {
	dir := t.TempDir()
	j1, _, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncNever, IsTerminal: Terminal})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newServer(t, Config{Journal: j1})
	if _, err := s1.Submit(wireJob("a", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	j2, rec, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncNever, IsTerminal: Terminal})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap := filepath.Join(t.TempDir(), "snap.json")
	s2 := newServer(t, Config{Journal: j2, HoldRecovered: true, SnapshotPath: snap,
		Sched: metasched.Config{Seed: 1}})
	if _, err := s2.Restore(rec); err != nil {
		t.Fatal(err)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := s2.Job("a")
	if got.State != StateDrained {
		t.Fatalf("held job after drain = %q, want drained", got.State)
	}
}
