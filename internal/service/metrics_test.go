package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusEndpoint scrapes GET /metrics after a short job lifecycle
// and checks the exposition: correct content type, the service counters
// present with the values the legacy JSON snapshot agrees with, and the
// scheduler-layer families showing up through the shared registry.
func TestPrometheusEndpoint(t *testing.T) {
	s := newServer(t, Config{QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(wireJob("m1", 60), "S1", 0); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := s.Submit(wireJob("m2", 60), "S1", 0); err != nil {
		t.Fatalf("submit: %v", err)
	}
	s.Process(2)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	met := s.Metrics()
	for line, want := range map[string]uint64{
		"grid_service_submitted_total": met.Submitted,
		"grid_service_accepted_total":  met.Accepted,
		"grid_service_completed_total": met.Completed,
	} {
		wantLine := line + " " + strconv.FormatUint(want, 10) + "\n"
		if !strings.Contains(text, wantLine) {
			t.Errorf("exposition missing %q (legacy snapshot says %d)\n%s", wantLine, want, text)
		}
	}
	// The scheduler layer reports into the same registry the server owns.
	for _, family := range []string{
		"grid_metasched_events_total",
		"grid_criticalworks_builds_total",
		"grid_service_queue_wait_seconds_count",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing scheduler family %q\n%s", family, text)
		}
	}
}

// BenchmarkMetricsScrape backs the rebuild-per-scrape fix: the Prometheus
// endpoint streams straight from the registry's live atomics into the
// response writer — no intermediate metrics document is rebuilt per poll,
// so scrape cost is a function of series count only, never of how much
// traffic moved the counters. The allocs/op figure is the regression
// guard; it must stay bounded as instrumentation grows.
func BenchmarkMetricsScrape(b *testing.B) {
	s, err := New(Config{Env: testEnv(), QueueCap: 64})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := s.Submit(wireJob(benchName(i), 60), "S1", i%3); err != nil {
			b.Fatalf("submit: %v", err)
		}
	}
	s.Process(32)
	h := s.Handler()
	req := httptest.NewRequest("GET", "/metrics", nil)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("scrape = %d", rec.Code)
		}
	}
}

// BenchmarkLegacyJSON measures the old JSON handler, which re-marshals
// its whole counters struct on every poll — kept as the baseline the
// Prometheus endpoint's per-series cost is judged against (the registry
// exposes ~20× more series than the legacy snapshot's eight fields).
func BenchmarkLegacyJSON(b *testing.B) {
	s, err := New(Config{Env: testEnv(), QueueCap: 64})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := s.Submit(wireJob(benchName(i), 60), "S1", i%3); err != nil {
			b.Fatalf("submit: %v", err)
		}
	}
	s.Process(32)
	h := s.Handler()
	req := httptest.NewRequest("GET", "/v1/metrics", nil)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("scrape = %d", rec.Code)
		}
	}
}

func benchName(i int) string { return "bench-" + strconv.Itoa(i) }
