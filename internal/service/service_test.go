package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/faults"
	"repro/internal/jobio"
	"repro/internal/metasched"
	"repro/internal/resource"
)

// testEnv builds the usual two-domain, four-tier environment.
func testEnv() *resource.Environment {
	perfs := []float64{1.0, 0.5, 0.33, 0.27}
	var nodes []*resource.Node
	id := 0
	for d := 0; d < 2; d++ {
		for _, p := range perfs {
			nodes = append(nodes, resource.NewNode(resource.NodeID(id),
				fmt.Sprintf("n%d", id), p, p, fmt.Sprintf("dom-%d", d)))
			id++
		}
	}
	return resource.NewEnvironment(nodes)
}

// wireJob is a two-task job whose fastest-tier critical path is 5 ticks.
func wireJob(name string, deadline int64) jobio.Job {
	return jobio.Job{
		Name:     name,
		Deadline: deadline,
		Tasks: []jobio.Task{
			{Name: "A", BaseTime: 2, Volume: 10},
			{Name: "B", BaseTime: 3, Volume: 15},
		},
		Edges: []jobio.Edge{{Name: "d", From: "A", To: "B", BaseTime: 1, Volume: 5}},
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Env == nil {
		cfg.Env = testEnv()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submitCode(err error) string {
	var se *SubmitError
	if errors.As(err, &se) {
		return se.Code
	}
	return ""
}

func TestManualModeCompletesJobs(t *testing.T) {
	s := newServer(t, Config{})
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", 0); err != nil {
			t.Fatalf("submit j%d: %v", i, err)
		}
	}
	if n := s.Process(-1); n != 5 {
		t.Fatalf("processed %d, want 5", n)
	}
	s.Quiesce()
	for _, rec := range s.Jobs() {
		if rec.State != StateCompleted {
			t.Errorf("%s: state %q (%s), want completed", rec.ID, rec.State, rec.Reason)
		}
		if rec.Domain == "" || rec.Finish == 0 {
			t.Errorf("%s: record not filled in: %+v", rec.ID, rec)
		}
	}
	m := s.Metrics()
	if m.Completed != 5 || m.Accepted != 5 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestAdmissionControl(t *testing.T) {
	s := newServer(t, Config{})

	// Invalid wire form.
	bad := wireJob("bad", 60)
	bad.Tasks[1].Name = "A" // duplicate task name
	if _, err := s.Submit(bad, "S1", 0); submitCode(err) != CodeInvalid {
		t.Fatalf("duplicate task name: err = %v", err)
	}
	// Unknown strategy family.
	if _, err := s.Submit(wireJob("s9", 60), "S9", 0); submitCode(err) != CodeInvalid {
		t.Fatal("unknown strategy accepted")
	}
	// Provably-unmeetable deadline: critical path is 5.
	rec, err := s.Submit(wireJob("tight", 4), "S1", 0)
	if submitCode(err) != CodeInfeasible {
		t.Fatalf("infeasible deadline: err = %v", err)
	}
	if rec == nil || rec.State != StateRejected {
		t.Fatalf("infeasible job not ledgered as rejected: %+v", rec)
	}
	// The boundary deadline is admitted.
	if _, err := s.Submit(wireJob("exact", 5), "S1", 0); err != nil {
		t.Fatalf("boundary deadline rejected: %v", err)
	}
	// Duplicate IDs: of a queued job, and of a terminal one.
	if _, err := s.Submit(wireJob("exact", 60), "S1", 0); submitCode(err) != CodeDuplicate {
		t.Fatal("duplicate of queued job accepted")
	}
	if _, err := s.Submit(wireJob("tight", 60), "S1", 0); submitCode(err) != CodeDuplicate {
		t.Fatal("duplicate of rejected job accepted")
	}
	m := s.Metrics()
	if m.Infeasible != 1 || m.Rejected != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestOverloadBoundAndShedding drives the queue past its bound without
// processing anything: the depth must never exceed the cap, equal-or-lower
// priority arrivals must bounce with a retry hint, and a higher-priority
// arrival must displace the least important queued job.
func TestOverloadBoundAndShedding(t *testing.T) {
	scenario := func() ([]Record, Metrics) {
		s := newServer(t, Config{QueueCap: 4})
		for i := 0; i < 4; i++ {
			if _, err := s.Submit(wireJob(fmt.Sprintf("base%d", i), 60), "S1", 1); err != nil {
				t.Fatalf("fill %d: %v", i, err)
			}
			if d := s.Metrics().QueueDepth; d > 4 {
				t.Fatalf("queue depth %d exceeds cap", d)
			}
		}
		// Same priority: refused with backpressure, nothing shed.
		_, err := s.Submit(wireJob("equal", 60), "S1", 1)
		var se *SubmitError
		if !errors.As(err, &se) || se.Code != CodeOverloaded {
			t.Fatalf("equal-priority overflow: err = %v", err)
		}
		if se.RetryAfter <= 0 {
			t.Fatal("overloaded rejection carries no retry hint")
		}
		// Lower priority: also refused.
		if _, err := s.Submit(wireJob("lower", 60), "S1", 0); submitCode(err) != CodeOverloaded {
			t.Fatalf("lower-priority overflow: err = %v", err)
		}
		// Higher priority: admitted by shedding the newest of the least
		// important queued jobs (base3).
		if _, err := s.Submit(wireJob("vip", 60), "S1", 9); err != nil {
			t.Fatalf("vip refused: %v", err)
		}
		m := s.Metrics()
		if m.QueueDepth != 4 || m.QueueHighWater != 4 {
			t.Fatalf("queue depth/highwater = %d/%d, want 4/4", m.QueueDepth, m.QueueHighWater)
		}
		if m.Shed != 1 || m.Overloaded != 2 {
			t.Fatalf("shed/overloaded = %d/%d", m.Shed, m.Overloaded)
		}
		shed, ok := s.Job("base3")
		if !ok || shed.State != StateRejected || shed.Reason == "" {
			t.Fatalf("shed victim record: %+v", shed)
		}
		// The survivors complete; the VIP goes first.
		s.Process(-1)
		s.Quiesce()
		return s.Jobs(), s.Metrics()
	}
	recs1, m1 := scenario()
	recs2, m2 := scenario()
	if fmt.Sprintf("%+v", recs1) != fmt.Sprintf("%+v", recs2) ||
		fmt.Sprintf("%+v", m1) != fmt.Sprintf("%+v", m2) {
		t.Fatal("overload outcome is not deterministic across identical runs")
	}
	for _, rec := range recs1 {
		if !Terminal(rec.State) {
			t.Errorf("%s: non-terminal state %q", rec.ID, rec.State)
		}
	}
	vip, _ := s0(recs1, "vip")
	base0, _ := s0(recs1, "base0")
	if vip.Arrival == 0 || base0.Arrival == 0 || vip.Arrival > base0.Arrival {
		t.Errorf("vip arrival %d not before base0 arrival %d", vip.Arrival, base0.Arrival)
	}
}

func s0(recs []Record, id string) (Record, bool) {
	for _, r := range recs {
		if r.ID == id {
			return r, true
		}
	}
	return Record{}, false
}

// TestDrainSnapshotsQueuedAndFinishesInFlight drains a half-processed
// manual server: in-flight jobs complete, queued jobs land in the snapshot
// file, and no job is lost or double-counted.
func TestDrainSnapshotsQueuedAndFinishesInFlight(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "drain.json")
	s := newServer(t, Config{QueueCap: 16, SnapshotPath: snap})
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Process(5) // five in flight, five still queued
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var completed, drained int
	for _, rec := range s.Jobs() {
		switch rec.State {
		case StateCompleted:
			completed++
		case StateDrained:
			drained++
		default:
			t.Errorf("%s: state %q after drain", rec.ID, rec.State)
		}
	}
	if completed != 5 || drained != 5 {
		t.Fatalf("completed/drained = %d/%d, want 5/5", completed, drained)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	defer f.Close()
	jobs, err := jobio.ReadJobs(f)
	if err != nil {
		t.Fatalf("snapshot unreadable: %v", err)
	}
	if len(jobs) != 5 {
		t.Fatalf("snapshot holds %d jobs, want 5", len(jobs))
	}
	// Submissions after the drain are refused.
	if _, err := s.Submit(wireJob("late", 60), "S1", 0); submitCode(err) != CodeDraining {
		t.Fatalf("post-drain submit: err = %v", err)
	}
	if m := s.Metrics(); !m.Draining || m.Drained != 5 {
		t.Fatalf("metrics after drain: %+v", m)
	}
}

// TestChaosSoak is the acceptance soak: ≥200 jobs pushed from concurrent
// submitters through a small queue into a fault-injected VO with circuit
// breakers armed, then a graceful drain. Every accepted job must end in
// exactly one terminal state, the queue must never exceed its bound, and
// the goroutine count must return to its pre-server baseline. Run with
// -race in CI.
func TestChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	snap := filepath.Join(t.TempDir(), "soak-drain.json")
	s := newServer(t, Config{
		QueueCap:     8,
		SnapshotPath: snap,
		DrainTimeout: 5 * time.Second,
		BuildTimeout: 2 * time.Second,
		Breaker:      &breaker.Config{Threshold: 3, OpenBase: 50, OpenMax: 800, JitterFrac: 0.2, Seed: 11},
		Sched: metasched.Config{
			Seed: 42,
			Faults: faults.Config{
				MTBF:             400,
				MTTR:             60,
				DomainOutageProb: 0.15,
				TaskFailRate:     0.15,
				MaxRetries:       2,
				RetryBackoff:     4,
				JitterFrac:       0.25,
				Until:            200000,
				Seed:             43,
			},
		},
	})
	s.Start()

	const submitters = 4
	const perSubmitter = 60 // 240 jobs ≥ the 200-job floor
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, bounced := 0, 0
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				name := fmt.Sprintf("soak-%d-%d", w, i)
				for attempt := 0; ; attempt++ {
					_, err := s.Submit(wireJob(name, 80), "S1", i%3)
					if err == nil {
						mu.Lock()
						accepted++
						mu.Unlock()
						break
					}
					code := submitCode(err)
					if code == CodeOverloaded && attempt < 50 {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if code == CodeDuplicate {
						// A shed-then-retried name: its first submission
						// already owns the ledger entry.
						break
					}
					mu.Lock()
					bounced++
					mu.Unlock()
					break
				}
				if d := s.Metrics().QueueDepth; d > 8 {
					t.Errorf("queue depth %d exceeds bound 8", d)
				}
			}
		}(w)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	m := s.Metrics()
	if m.QueueHighWater > 8 {
		t.Fatalf("queue high water %d exceeds bound 8", m.QueueHighWater)
	}
	counts := map[string]int{}
	for _, rec := range s.Jobs() {
		if !Terminal(rec.State) {
			t.Errorf("%s: non-terminal state %q after drain", rec.ID, rec.State)
		}
		counts[rec.State]++
	}
	total := counts[StateCompleted] + counts[StateRejected] + counts[StateDrained]
	if total != len(s.Jobs()) {
		t.Fatalf("ledger: %d records, %d terminal (%v)", len(s.Jobs()), total, counts)
	}
	if int(m.Accepted) > total {
		t.Fatalf("lost jobs: accepted %d > terminal %d (%v)", m.Accepted, total, counts)
	}
	if counts[StateCompleted] == 0 {
		t.Fatal("soak completed zero jobs — the service never made progress")
	}
	t.Logf("soak: accepted=%d bounced=%d states=%v breaker-trips=%d engine-now=%d",
		accepted, bounced, counts, breakerTrips(s), m.EngineNow)

	// Goroutine hygiene: everything the server started must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

func breakerTrips(s *Server) int {
	states := s.BreakerStates() // safe: drain completed, engine is quiescent
	_ = states
	return s.Metrics().BreakerTrips
}

// TestBreakerQuarantinesFailingDomain checks the breaker integration end
// to end in manual mode: repeated mid-run failures in one domain open its
// breaker, and placement then avoids the quarantined domain.
func TestBreakerQuarantinesFailingDomain(t *testing.T) {
	s := newServer(t, Config{
		QueueCap: 64,
		Breaker:  &breaker.Config{Threshold: 2, OpenBase: 10000, OpenMax: 10000},
		Sched: metasched.Config{
			Seed: 1,
			Faults: faults.Config{
				TaskFailRate: 1.0, // every activation loses a task
				MaxRetries:   0,
				Seed:         7,
			},
		},
	})
	// Everything fails mid-run everywhere, so both breakers eventually
	// open; jobs arriving afterwards find no admissible domain.
	for i := 0; i < 12; i++ {
		if _, err := s.Submit(wireJob(fmt.Sprintf("f%d", i), 200), "S1", 0); err != nil {
			t.Fatal(err)
		}
		s.Process(1)
		s.Quiesce()
	}
	states := s.BreakerStates()
	openCount := 0
	for _, st := range states {
		if st == "open" {
			openCount++
		}
	}
	if openCount == 0 {
		t.Fatalf("no breaker opened under a 100%% failure rate: %v", states)
	}
	if s.Metrics().BreakerTrips == 0 {
		t.Fatal("no trips recorded")
	}
}
