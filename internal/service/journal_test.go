package service

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/journal"
	"repro/internal/metasched"
)

// openJournal opens (or reopens) a journal over dir with the service's
// terminal predicate.
func openJournal(t *testing.T, dir string) (*journal.Journal, *journal.Recovery) {
	t.Helper()
	j, rec, err := journal.Open(journal.Options{Dir: dir, IsTerminal: Terminal})
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

// newJournaledServer builds a manual-mode server over a fresh or recovered
// journal directory and restores whatever the journal remembers.
func newJournaledServer(t *testing.T, dir string) (*Server, RecoveryStats) {
	t.Helper()
	jnl, rec := openJournal(t, dir)
	t.Cleanup(func() { jnl.Close() })
	s := newServer(t, Config{Journal: jnl})
	stats, err := s.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	return s, stats
}

// TestJournalRecoveryAcrossCrash is the in-process crash: a server accepts
// work, completes some of it, and is abandoned without Drain. A successor
// over the same journal dir must remember the terminal jobs (exactly once,
// never re-executed) and re-enqueue the rest.
func TestJournalRecoveryAcrossCrash(t *testing.T) {
	dir := t.TempDir()

	victim, stats := newJournaledServer(t, dir)
	if stats.Restored != 0 {
		t.Fatalf("fresh journal restored something: %+v", stats)
	}
	for i := 0; i < 4; i++ {
		if _, err := victim.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", i); err != nil {
			t.Fatalf("submit j%d: %v", i, err)
		}
	}
	// Highest priority first: j3 then j2 get scheduled and completed.
	victim.Process(2)
	victim.Quiesce()
	// CRASH: no drain, no close. Only what the journal fsynced exists.

	heir, stats := newJournaledServer(t, dir)
	if stats.Restored != 4 || stats.Terminal != 2 || stats.Requeued != 2 || stats.DuplicatesSuppressed != 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	// Terminal jobs are ledgered, not re-run.
	for _, id := range []string{"j3", "j2"} {
		rec, ok := heir.Job(id)
		if !ok || rec.State != StateCompleted {
			t.Fatalf("%s after recovery: %+v", id, rec)
		}
	}
	// The duplicate-submit guard survived the restart for every ID.
	for i := 0; i < 4; i++ {
		_, err := heir.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", 0)
		if submitCode(err) != CodeDuplicate {
			t.Fatalf("j%d resubmit after recovery: %v", i, err)
		}
	}
	// The requeued jobs run to completion exactly once.
	heir.Process(-1)
	heir.Quiesce()
	for i := 0; i < 4; i++ {
		rec, _ := heir.Job(fmt.Sprintf("j%d", i))
		if rec.State != StateCompleted {
			t.Fatalf("j%d: %+v", i, rec)
		}
	}
	m := heir.Metrics()
	if m.Completed != 2 || m.JournalErrors != 0 {
		t.Fatalf("heir metrics (only requeued jobs complete here): %+v", m)
	}
	if rs := heir.Recovery(); rs == nil || rs.Requeued != 2 {
		t.Fatalf("Recovery() accessor: %+v", rs)
	}
}

// TestRestoreIdempotent: restoring the same recovery twice must suppress
// every entry the second time — terminal exactly once, queued exactly once.
func TestRestoreIdempotent(t *testing.T) {
	dir := t.TempDir()
	victim, _ := newJournaledServer(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := victim.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	victim.Process(1)
	victim.Quiesce()

	jnl, rec := openJournal(t, dir)
	defer jnl.Close()
	s := newServer(t, Config{Journal: jnl})
	first, err := s.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Restored != 3 || first.DuplicatesSuppressed != 0 {
		t.Fatalf("first restore: %+v", first)
	}
	second, err := s.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Restored != 0 || second.DuplicatesSuppressed != 3 {
		t.Fatalf("second restore not suppressed: %+v", second)
	}
	if depth := s.Metrics().QueueDepth; depth != 2 {
		t.Fatalf("queue depth after double restore: %d, want 2", depth)
	}

	// Concurrent duplicate submissions against the restored ledger (the
	// -race guard for the recovery/duplicate-suppression path).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := s.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", 0); submitCode(err) != CodeDuplicate {
					t.Errorf("duplicate j%d admitted: %v", i, err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestJournalDifferential: with journaling disabled the service must
// behave byte-identically; with it enabled, the client-visible records
// must still be identical — the journal is pure bookkeeping.
func TestJournalDifferential(t *testing.T) {
	scenario := func(s *Server) []Record {
		t.Helper()
		for i := 0; i < 6; i++ {
			if _, err := s.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", i%3); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Submit(wireJob("tight", 4), "S1", 0); submitCode(err) != CodeInfeasible {
			t.Fatal("infeasible not rejected")
		}
		s.Process(-1)
		s.Quiesce()
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return s.Jobs()
	}

	bare := scenario(newServer(t, Config{Sched: metasched.Config{Seed: 7}}))

	jnl, rec := openJournal(t, t.TempDir())
	defer jnl.Close()
	journaled := newServer(t, Config{Journal: jnl, Sched: metasched.Config{Seed: 7}})
	if _, err := journaled.Restore(rec); err != nil {
		t.Fatal(err)
	}
	withJournal := scenario(journaled)

	if !reflect.DeepEqual(bare, withJournal) {
		t.Fatalf("journaling changed observable behavior:\nbare: %+v\njournaled: %+v", bare, withJournal)
	}
}

// TestJournalMatchesLedger replays the journal after a full lifecycle and
// checks it agrees with the in-memory ledger job for job.
func TestJournalMatchesLedger(t *testing.T) {
	dir := t.TempDir()
	s, _ := newJournaledServer(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Process(3)
	s.Quiesce()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 5 {
		t.Fatalf("journal jobs: %d", len(rec.Jobs))
	}
	for _, js := range rec.Jobs {
		ledger, ok := s.Job(js.Job)
		if !ok {
			t.Fatalf("journal job %q unknown to ledger", js.Job)
		}
		if js.State != ledger.State {
			t.Fatalf("%s: journal %q vs ledger %q", js.Job, js.State, ledger.State)
		}
		if !Terminal(js.State) {
			t.Fatalf("%s: non-terminal after drain: %q", js.Job, js.State)
		}
	}
	// Drain compacted: the directory must be a snapshot plus one (empty)
	// active segment's worth of replay work.
	if rec.Records != 0 || rec.SnapshotLSN == 0 {
		t.Fatalf("drain did not compact: %+v", rec)
	}
}

// TestRestoreRejectsUnbuildableEntries: a journal whose live entry cannot
// be rebuilt (no wire payload) is ledgered as rejected, not dropped and
// not crashed on.
func TestRestoreRejectsUnbuildableEntries(t *testing.T) {
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)
	if _, err := jnl.Append(journal.Record{Job: "ghost", State: StateQueued, Strategy: "S1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := jnl.Append(journal.Record{Job: "alien", State: StateQueued, Strategy: "S9"}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, rec := openJournal(t, dir)
	defer jnl2.Close()
	s := newServer(t, Config{Journal: jnl2})
	stats, err := s.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Invalid != 2 || stats.Requeued != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	for _, id := range []string{"ghost", "alien"} {
		r, ok := s.Job(id)
		if !ok || r.State != StateRejected {
			t.Fatalf("%s: %+v", id, r)
		}
	}
}

// TestDrainIdempotentConcurrent: many concurrent Drain calls must produce
// exactly one drain — no double snapshot, no race on the engine — and all
// return the first drain's (nil) error.
func TestDrainIdempotentConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Config{SnapshotPath: dir + "/drain.json"})
	s.Start()
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(wireJob(fmt.Sprintf("j%d", i), 60), "S1", 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = s.Drain(context.Background())
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("drain %d: %v", g, err)
		}
	}
	m := s.Metrics()
	if m.Drained+m.Completed != 4 {
		t.Fatalf("jobs lost across concurrent drains: %+v", m)
	}
	// And a sequential repeat is still clean.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
