package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/metasched"
)

// The kill-restart chaos harness. The test binary re-execs itself as a
// miniature gridd (TestMain dispatches on GRIDD_CRASH_CHILD): the child
// opens the write-ahead journal, restores, and serves the HTTP API; the
// parent submits jobs, hard-kills the child with SIGKILL at randomized
// points in the lifecycle, restarts it against the same journal
// directory, and checks the two crash-safety invariants after every
// kill:
//
//  1. zero accepted-job loss — every ID that got a 202 is in the journal
//     after the kill and reaches a terminal state by the end of the run;
//  2. zero double-execution — once a job is observed terminal, every
//     later incarnation reports the same terminal state, and
//     resubmitting any accepted ID is always refused as a duplicate.

const (
	crashChildEnv = "GRIDD_CRASH_CHILD"
	crashDirEnv   = "GRIDD_CRASH_DIR"
	crashAddrEnv  = "GRIDD_CRASH_ADDR_FILE"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		crashChild()
		return
	}
	os.Exit(m.Run())
}

// crashChild is the re-exec'd server: journal + restore + HTTP on an
// ephemeral port, address published through a rename so the parent never
// reads a half-written file. It runs until SIGKILLed (most cycles) or
// drains on SIGTERM (the final one).
func crashChild() {
	dir := os.Getenv(crashDirEnv)
	addrFile := os.Getenv(crashAddrEnv)

	jnl, recovered, err := journal.Open(journal.Options{
		Dir:        dir,
		Fsync:      journal.FsyncAlways, // a 202 must mean "on disk"
		IsTerminal: Terminal,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: open journal: %v\n", err)
		os.Exit(1)
	}
	s, err := New(Config{Env: testEnv(), QueueCap: 64, Journal: jnl, Sched: metasched.Config{Seed: 1}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: new server: %v\n", err)
		os.Exit(1)
	}
	if _, err := s.Restore(recovered); err != nil {
		fmt.Fprintf(os.Stderr, "child: restore: %v\n", err)
		os.Exit(1)
	}
	s.Start()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: listen: %v\n", err)
		os.Exit(1)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(l.Addr().String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "child: addr file: %v\n", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintf(os.Stderr, "child: addr file: %v\n", err)
		os.Exit(1)
	}
	go http.Serve(l, s.Handler())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	<-sigc
	if err := s.Drain(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "child: drain: %v\n", err)
		os.Exit(1)
	}
	if err := jnl.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "child: close journal: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// crashRun is one child incarnation managed by the parent.
type crashRun struct {
	cmd  *exec.Cmd
	addr string
	out  bytes.Buffer
}

func spawnChild(t *testing.T, dir, addrFile string) *crashRun {
	t.Helper()
	os.Remove(addrFile)
	r := &crashRun{}
	// -test.run=NONE: if the child env dispatch ever broke, the re-exec'd
	// binary must not recursively run this test suite.
	r.cmd = exec.Command(os.Args[0], "-test.run=NONE")
	r.cmd.Env = append(os.Environ(),
		crashChildEnv+"=1", crashDirEnv+"="+dir, crashAddrEnv+"="+addrFile)
	r.cmd.Stdout = &r.out
	r.cmd.Stderr = &r.out
	if err := r.cmd.Start(); err != nil {
		t.Fatalf("spawn child: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil {
			r.addr = string(b)
			return r
		}
		time.Sleep(2 * time.Millisecond)
	}
	r.cmd.Process.Kill()
	r.cmd.Wait()
	t.Fatalf("child never published its address; output:\n%s", r.out.String())
	return nil
}

func (r *crashRun) submit(t *testing.T, id string) int {
	t.Helper()
	body, _ := json.Marshal(SubmitRequest{Job: wireJob(id, 60), Strategy: "S1"})
	resp, err := http.Post("http://"+r.addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		// The kill races the request; a torn connection is not a protocol
		// violation, it just means this submit was never acknowledged.
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

func (r *crashRun) kill(t *testing.T) {
	t.Helper()
	if err := r.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL child: %v", err)
	}
	r.cmd.Wait()
}

// TestCrashRestartChaos runs seeded SIGKILL/restart cycles against one
// journal directory. Override the defaults with GRIDD_CRASH_CYCLES and
// GRIDD_CRASH_SEED (the CI soak job turns the cycle count up).
func TestCrashRestartChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos harness skipped in -short")
	}
	cycles := 20
	if v := os.Getenv("GRIDD_CRASH_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("GRIDD_CRASH_CYCLES: %v", err)
		}
		cycles = n
	}
	seed := int64(1)
	if v := os.Getenv("GRIDD_CRASH_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("GRIDD_CRASH_SEED: %v", err)
		}
		seed = n
	}
	rng := rand.New(rand.NewSource(seed))

	dir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	accepted := map[string]bool{}       // every ID that ever got a 202
	terminalSeen := map[string]string{} // first terminal state observed per ID
	acceptedOrder := []string{}

	for cycle := 0; cycle < cycles; cycle++ {
		r := spawnChild(t, dir, addrFile)

		// Submit a seeded burst of fresh jobs.
		for i, n := 0, 3+rng.Intn(6); i < n; i++ {
			id := fmt.Sprintf("c%d-j%d", cycle, i)
			switch code := r.submit(t, id); code {
			case http.StatusAccepted:
				accepted[id] = true
				acceptedOrder = append(acceptedOrder, id)
			case 0, http.StatusTooManyRequests:
				// torn by the kill race, or backpressure — either way the
				// job was never acknowledged, so it owes us nothing
			default:
				t.Fatalf("cycle %d: submit %s = %d\nchild output:\n%s", cycle, id, code, r.out.String())
			}
		}
		// Zero double-execution, part one: an accepted ID stays refused
		// forever, across any number of restarts.
		if len(acceptedOrder) > 0 {
			dup := acceptedOrder[rng.Intn(len(acceptedOrder))]
			if code := r.submit(t, dup); code != http.StatusConflict && code != 0 {
				t.Fatalf("cycle %d: resubmit of accepted %s = %d, want 409", cycle, dup, code)
			}
		}

		// Let the engine get somewhere unpredictable, then pull the plug.
		time.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
		r.kill(t)

		// Read the journal the child left behind, with no process holding it.
		rec, err := journal.Recover(dir)
		if err != nil {
			t.Fatalf("cycle %d: journal unreadable after SIGKILL: %v", cycle, err)
		}
		onDisk := map[string]string{}
		for _, js := range rec.Jobs {
			onDisk[js.Job] = js.State
		}
		// Zero accepted-job loss: a 202 means the accept was fsynced first.
		for id := range accepted {
			if _, ok := onDisk[id]; !ok {
				t.Fatalf("cycle %d: accepted job %s missing from journal after SIGKILL", cycle, id)
			}
		}
		// Zero double-execution, part two: terminal states are final.
		for id, state := range onDisk {
			if prev, ok := terminalSeen[id]; ok {
				if state != prev {
					t.Fatalf("cycle %d: %s was terminal %q, now %q", cycle, id, prev, state)
				}
			} else if Terminal(state) {
				terminalSeen[id] = state
			}
		}
	}

	// Final incarnation: everything ever accepted must converge to a
	// terminal state, then the child drains cleanly on SIGTERM.
	r := spawnChild(t, dir, addrFile)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + r.addr + "/v1/jobs")
		if err != nil {
			t.Fatalf("final poll: %v", err)
		}
		var jobs []Record
		if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
			t.Fatalf("final poll: %v", err)
		}
		resp.Body.Close()
		states := map[string]string{}
		for _, rec := range jobs {
			states[rec.ID] = rec.State
		}
		pending := 0
		for id := range accepted {
			st, ok := states[id]
			if !ok {
				t.Fatalf("accepted job %s lost by final incarnation", id)
			}
			if !Terminal(st) {
				pending++
			}
		}
		if pending == 0 {
			for id, prev := range terminalSeen {
				if states[id] != prev {
					t.Fatalf("final: %s was terminal %q, now %q", id, prev, states[id])
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d accepted jobs still non-terminal at deadline", pending)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := r.cmd.Wait(); err != nil {
		t.Fatalf("final drain failed: %v\nchild output:\n%s", err, r.out.String())
	}
	t.Logf("chaos: %d cycles, %d accepted, %d observed terminal mid-run",
		cycles, len(accepted), len(terminalSeen))
}
