package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// postWire submits one wire job over HTTP and returns the response; the
// body is decoded into out when non-nil.
func postWire(t *testing.T, client *http.Client, url string, req SubmitRequest, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %d response: %v", resp.StatusCode, err)
		}
	}
	return resp
}

// mustParseRetryAfter asserts the response carries a parseable, positive
// whole-seconds Retry-After header and returns it.
func mustParseRetryAfter(t *testing.T, resp *http.Response) int {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("status %d response has no Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("status %d Retry-After %q is not an integer: %v", resp.StatusCode, ra, err)
	}
	if secs < 1 {
		t.Fatalf("status %d Retry-After %d < 1 invites an immediate retry storm", resp.StatusCode, secs)
	}
	return secs
}

// checkHealthz asserts GET /healthz returns 200 with status ok.
func checkHealthz(t *testing.T, client *http.Client, url string) {
	t.Helper()
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("/healthz body: %v", err)
	}
	if body.Status != "ok" {
		t.Fatalf("/healthz status = %q", body.Status)
	}
}

// TestOverloadEndToEnd drives the service's overload path through the real
// HTTP stack with an open-loop burst far beyond the queue bound (the
// manual-mode server never dequeues during the burst, so the queue cannot
// drain). It asserts the full backpressure contract:
//
//   - every 429 carries a parseable Retry-After ≥ 1s;
//   - the shed and overloaded counters exactly match what clients saw;
//   - /healthz stays 200 throughout the overload and while draining;
//   - after Drain, submissions get 503 — also with Retry-After.
func TestOverloadEndToEnd(t *testing.T) {
	const queueCap = 4
	s := newServer(t, Config{QueueCap: queueCap})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const burst = 40
	var got429, accepted int
	for i := 0; i < burst; i++ {
		resp := postWire(t, client, ts.URL, SubmitRequest{
			Job:      wireJob(fmt.Sprintf("burst-%02d", i), 60),
			Strategy: "S1",
		}, nil)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			got429++
			mustParseRetryAfter(t, resp)
		default:
			t.Fatalf("burst-%02d: unexpected status %d", i, resp.StatusCode)
		}
		// The daemon must stay live while refusing work.
		if i%8 == 0 {
			checkHealthz(t, client, ts.URL)
		}
	}
	if accepted != queueCap {
		t.Errorf("accepted %d, want the queue bound %d", accepted, queueCap)
	}
	if got429 != burst-queueCap {
		t.Errorf("client saw %d 429s, want %d", got429, burst-queueCap)
	}

	// Same-priority arrivals never shed; higher-priority ones displace
	// exactly as many queued jobs, each observed by the terminal stream
	// consistency check below.
	var got202High int
	for i := 0; i < 3; i++ {
		resp := postWire(t, client, ts.URL, SubmitRequest{
			Job:      wireJob(fmt.Sprintf("vip-%d", i), 60),
			Strategy: "S1",
			Priority: 5,
		}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("vip-%d: status %d, want 202 via shedding", i, resp.StatusCode)
		}
		got202High++
	}

	m := s.Metrics()
	if m.Overloaded != uint64(got429) {
		t.Errorf("overloaded counter %d != client-observed 429s %d", m.Overloaded, got429)
	}
	if m.Shed != uint64(got202High) {
		t.Errorf("shed counter %d != displacements %d", m.Shed, got202High)
	}
	shedRecords := 0
	for _, rec := range s.Jobs() {
		if rec.State == StateRejected && rec.Reason != "" && rec.Priority == 0 {
			shedRecords++
		}
	}
	if shedRecords != got202High {
		t.Errorf("%d shed ledger records, want %d", shedRecords, got202High)
	}

	// Drain under load (the queue is still full): /healthz stays 200,
	// further submits are 503 with Retry-After, and /readyz flips to 503.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	checkHealthz(t, client, ts.URL)
	var errBody errorBody
	resp := postWire(t, client, ts.URL, SubmitRequest{Job: wireJob("late", 60), Strategy: "S1"}, &errBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	mustParseRetryAfter(t, resp)
	if errBody.Code != CodeDraining {
		t.Errorf("draining error code = %q", errBody.Code)
	}
	ready, err := client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", ready.StatusCode)
	}
	mustParseRetryAfter(t, ready)
	checkHealthz(t, client, ts.URL)
}
