package service

import (
	"reflect"
	"testing"

	"repro/internal/metasched"
)

// placersServiceRun drives one deterministic manual-mode run with batched
// concurrent placement: submit everything, schedule with Process(-1)
// (which dequeues in groups of Sched.Placers), then quiesce.
func placersServiceRun(t *testing.T, placers int) ([]Record, Metrics) {
	t.Helper()
	s := newServer(t, Config{
		QueueCap: 64,
		Sched:    metasched.Config{Seed: 7, Placers: placers},
	})
	for i := 0; i < 24; i++ {
		deadline := int64(200)
		if i%8 == 7 {
			// Passes admission (fastest-tier critical path is 5) but is
			// unmeetable once earlier batch members hold the fast nodes,
			// pinning the in-batch rejection path.
			deadline = 5
		}
		if _, err := s.Submit(wireJob(jobName(i), deadline), "S1", i%3); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	s.Process(-1)
	s.Quiesce()
	return s.Jobs(), s.Metrics()
}

func jobName(i int) string {
	return "pj-" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}

// TestServicePlacersDeterministic: with -placers=4 the whole service run —
// per-job records and counters — must be a pure function of the seed.
// This covers the full stack the gridload -expect-identical CI gate
// relies on: batched dequeue, shared-tick arrival, optimistic commit.
func TestServicePlacersDeterministic(t *testing.T) {
	ja, ma := placersServiceRun(t, 4)
	jb, mb := placersServiceRun(t, 4)
	if !reflect.DeepEqual(ja, jb) {
		t.Fatal("two identical placers=4 service runs produced different records")
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("metrics diverged: %+v vs %+v", ma, mb)
	}
	completed := 0
	for _, r := range ja {
		if r.State == "completed" {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("run completed no jobs — batch path never activated anything")
	}
}
