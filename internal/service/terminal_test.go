package service

import (
	"context"
	"fmt"
	"testing"
)

// TestOnTerminalStream drives every terminal path the service has —
// completion, infeasible admission rejection, overload shedding and a
// drain of still-queued work — and asserts the terminal-state stream
// fires exactly once per job with a state matching the ledger.
func TestOnTerminalStream(t *testing.T) {
	var events []Record
	s := newServer(t, Config{
		QueueCap:   2,
		OnTerminal: func(r Record) { events = append(events, r) },
	})

	// Two jobs complete normally.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(wireJob(fmt.Sprintf("ok%d", i), 60), "S1", 0); err != nil {
			t.Fatalf("submit ok%d: %v", i, err)
		}
	}
	s.Process(-1)
	s.Quiesce()

	// One infeasible rejection at admission (critical path is 5).
	if _, err := s.Submit(wireJob("tight", 3), "S1", 0); submitCode(err) != CodeInfeasible {
		t.Fatalf("tight: err = %v", err)
	}

	// Fill the queue, then shed the low-priority job with a higher one.
	if _, err := s.Submit(wireJob("low", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(wireJob("mid", 60), "S1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(wireJob("high", 60), "S1", 2); err != nil {
		t.Fatal(err)
	}

	// Drain with "mid" and "high" still queued: both stream as drained.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	want := map[string]string{
		"ok0":   StateCompleted,
		"ok1":   StateCompleted,
		"tight": StateRejected,
		"low":   StateRejected, // shed
		"mid":   StateDrained,
		"high":  StateDrained,
	}
	seen := map[string]int{}
	for _, ev := range events {
		seen[ev.ID]++
		if !Terminal(ev.State) {
			t.Errorf("%s: streamed non-terminal state %q", ev.ID, ev.State)
		}
		if wantState, ok := want[ev.ID]; !ok || ev.State != wantState {
			t.Errorf("%s: streamed state %q, want %q", ev.ID, ev.State, wantState)
		}
	}
	for id := range want {
		if seen[id] != 1 {
			t.Errorf("%s: terminal stream fired %d times, want exactly 1", id, seen[id])
		}
	}
	// The stream must agree with the ledger.
	for _, rec := range s.Jobs() {
		if Terminal(rec.State) && seen[rec.ID] != 1 {
			t.Errorf("%s: terminal in ledger (%s) but streamed %d times", rec.ID, rec.State, seen[rec.ID])
		}
	}
}

// TestOnTerminalNotFiredForRestoredTerminal: jobs already terminal in the
// journal are re-ledgered on Restore but must not re-fire the stream.
func TestOnTerminalNotFiredForRestoredTerminal(t *testing.T) {
	dir := t.TempDir()
	jnl, _ := openJournal(t, dir)
	var first []Record
	s1 := newServer(t, Config{Journal: jnl, OnTerminal: func(r Record) { first = append(first, r) }})
	if _, err := s1.Submit(wireJob("done", 60), "S1", 0); err != nil {
		t.Fatal(err)
	}
	s1.Process(-1)
	s1.Quiesce()
	if len(first) != 1 || first[0].State != StateCompleted {
		t.Fatalf("first life events = %+v", first)
	}
	jnl.Close()

	jnl2, recovery := openJournal(t, dir)
	defer jnl2.Close()
	var second []Record
	s2 := newServer(t, Config{Journal: jnl2, OnTerminal: func(r Record) { second = append(second, r) }})
	if _, err := s2.Restore(recovery); err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Errorf("restored terminal job re-fired the stream: %+v", second)
	}
}
