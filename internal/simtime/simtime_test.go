package simtime

import (
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	tests := []struct {
		name     string
		iv       Interval
		wantLen  Time
		wantEmpt bool
	}{
		{"normal", Interval{2, 7}, 5, false},
		{"point-empty", Interval{3, 3}, 0, true},
		{"inverted-empty", Interval{5, 1}, 0, true},
		{"unit", Interval{0, 1}, 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.iv.Len(); got != tt.wantLen {
				t.Errorf("Len() = %d, want %d", got, tt.wantLen)
			}
			if got := tt.iv.Empty(); got != tt.wantEmpt {
				t.Errorf("Empty() = %v, want %v", got, tt.wantEmpt)
			}
		})
	}
}

func TestNewIntervalPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInterval(5, 2) did not panic")
		}
	}()
	NewInterval(5, 2)
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{10, 20}
	for _, tc := range []struct {
		t    Time
		want bool
	}{{9, false}, {10, true}, {15, true}, {19, true}, {20, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	tests := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 5}, Interval{5, 10}, false}, // touching half-open
		{Interval{0, 5}, Interval{4, 10}, true},
		{Interval{0, 5}, Interval{6, 10}, false},
		{Interval{0, 10}, Interval{3, 4}, true}, // nested
		{Interval{3, 3}, Interval{0, 10}, false},
		{Interval{0, 10}, Interval{3, 3}, false}, // empty never overlaps
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b); got != tt.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(tt.a); got != tt.want {
			t.Errorf("overlap not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 15}
	got := a.Intersect(b)
	if got != (Interval{5, 10}) {
		t.Errorf("Intersect = %v, want [5,10)", got)
	}
	c := Interval{20, 30}
	if !a.Intersect(c).Empty() {
		t.Errorf("disjoint Intersect not empty: %v", a.Intersect(c))
	}
}

func TestIntervalShift(t *testing.T) {
	if got := (Interval{3, 8}).Shift(10); got != (Interval{13, 18}) {
		t.Errorf("Shift = %v", got)
	}
	if got := (Interval{3, 8}).Shift(-3); got != (Interval{0, 5}) {
		t.Errorf("Shift negative = %v", got)
	}
}

func TestSetAddMerges(t *testing.T) {
	s := NewSet(Interval{0, 5}, Interval{10, 15})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Add(Interval{5, 10}) // adjacent to both: everything merges
	if s.Len() != 1 {
		t.Fatalf("after bridging Add, Len = %d, want 1; set=%v", s.Len(), s)
	}
	if got := s.Intervals()[0]; got != (Interval{0, 15}) {
		t.Errorf("merged interval = %v, want [0,15)", got)
	}
}

func TestSetAddIgnoresEmpty(t *testing.T) {
	s := NewSet()
	s.Add(Interval{5, 5})
	s.Add(Interval{7, 2})
	if s.Len() != 0 {
		t.Errorf("empty adds changed set: %v", s)
	}
}

func TestSetRemoveSplits(t *testing.T) {
	s := NewSet(Interval{0, 100})
	s.Remove(Interval{40, 60})
	want := []Interval{{0, 40}, {60, 100}}
	got := s.Intervals()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("after Remove: %v, want %v", got, want)
	}
	if s.Total() != 80 {
		t.Errorf("Total = %d, want 80", s.Total())
	}
}

func TestSetRemoveEdges(t *testing.T) {
	s := NewSet(Interval{10, 20})
	s.Remove(Interval{0, 10}) // touches start, no overlap
	if s.Total() != 10 {
		t.Fatalf("prefix remove changed set: %v", s)
	}
	s.Remove(Interval{15, 30}) // removes tail
	if got := s.Intervals(); len(got) != 1 || got[0] != (Interval{10, 15}) {
		t.Errorf("tail remove: %v", got)
	}
}

func TestSetCovers(t *testing.T) {
	s := NewSet(Interval{0, 10}, Interval{20, 30})
	tests := []struct {
		iv   Interval
		want bool
	}{
		{Interval{0, 10}, true},
		{Interval{2, 8}, true},
		{Interval{8, 12}, false},
		{Interval{20, 30}, true},
		{Interval{15, 16}, false},
		{Interval{5, 5}, true}, // empty covered by convention
	}
	for _, tt := range tests {
		if got := s.Covers(tt.iv); got != tt.want {
			t.Errorf("Covers(%v) = %v, want %v", tt.iv, got, tt.want)
		}
	}
}

func TestSetFirstFit(t *testing.T) {
	s := NewSet(Interval{0, 5}, Interval{10, 20})
	tests := []struct {
		earliest, length Time
		wantT            Time
		wantOK           bool
	}{
		{0, 3, 0, true},
		{0, 6, 10, true},  // does not fit in [0,5)
		{3, 3, 10, true},  // only 2 ticks left in first interval
		{12, 5, 12, true}, // inside second
		{12, 9, 0, false}, // nothing long enough
		{25, 1, 0, false}, // past everything
	}
	for _, tt := range tests {
		gotT, ok := s.FirstFit(tt.earliest, tt.length)
		if ok != tt.wantOK || (ok && gotT != tt.wantT) {
			t.Errorf("FirstFit(%d,%d) = (%d,%v), want (%d,%v)",
				tt.earliest, tt.length, gotT, ok, tt.wantT, tt.wantOK)
		}
	}
}

func TestSetComplement(t *testing.T) {
	s := NewSet(Interval{10, 20}, Interval{30, 40})
	c := s.Complement(Interval{0, 50})
	want := []Interval{{0, 10}, {20, 30}, {40, 50}}
	got := c.Intervals()
	if len(got) != len(want) {
		t.Fatalf("Complement = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Complement[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetComplementOfEmpty(t *testing.T) {
	c := NewSet().Complement(Interval{5, 9})
	if c.Total() != 4 || c.Len() != 1 {
		t.Errorf("Complement of empty = %v", c)
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet(Interval{0, 10})
	c := s.Clone()
	c.Remove(Interval{0, 5})
	if s.Total() != 10 {
		t.Errorf("Clone aliases original: %v", s)
	}
}

// normalize maps raw quick-generated values into small bounded intervals so
// that overlaps are frequent enough to exercise the merge logic.
func normIv(a, b int64) Interval {
	const m = 64
	s, e := a%m, b%m
	if s < 0 {
		s = -s
	}
	if e < 0 {
		e = -e
	}
	if s > e {
		s, e = e, s
	}
	return Interval{Start: s, End: e}
}

func TestQuickSetInvariants(t *testing.T) {
	// After any sequence of Adds and Removes, the set's intervals must be
	// sorted, disjoint, non-adjacent and non-empty, and point membership
	// must match a reference bitmap.
	f := func(ops []struct {
		A, B int64
		Del  bool
	}) bool {
		s := NewSet()
		var ref [64]bool
		for _, op := range ops {
			iv := normIv(op.A, op.B)
			if op.Del {
				s.Remove(iv)
			} else {
				s.Add(iv)
			}
			for t := iv.Start; t < iv.End && t < 64; t++ {
				ref[t] = !op.Del
			}
		}
		ivs := s.Intervals()
		for i, iv := range ivs {
			if iv.Empty() {
				return false
			}
			if i > 0 && ivs[i-1].End >= iv.Start {
				return false // must be disjoint and non-adjacent
			}
		}
		for p := Time(0); p < 64; p++ {
			if s.ContainsPoint(p) != ref[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickFirstFitIsCovered(t *testing.T) {
	// Whatever FirstFit returns must actually be covered and must respect
	// the earliest bound.
	f := func(a, b, c, d int64, earliest, length uint8) bool {
		s := NewSet(normIv(a, b), normIv(c, d))
		e, l := Time(earliest%64), Time(length%16)
		start, ok := s.FirstFit(e, l)
		if !ok {
			return true
		}
		return start >= e && s.Covers(Interval{Start: start, End: start + l})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementPartition(t *testing.T) {
	// Set and its complement within a universe partition the universe.
	f := func(a, b, c, d int64) bool {
		s := NewSet(normIv(a, b), normIv(c, d))
		u := Interval{0, 64}
		comp := s.Complement(u)
		for p := Time(0); p < 64; p++ {
			in, out := s.ContainsPoint(p), comp.ContainsPoint(p)
			if in == out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
