// Package simtime defines the discrete model-time domain used by the whole
// simulator: integer ticks, half-open intervals, and interval algebra.
//
// The paper (Toporkov, PaCT 2009, §3) treats all schedule times as integer
// "wall time" units defined at reservation time, so the simulation uses
// int64 ticks rather than time.Duration: arithmetic is exact, deterministic
// and cheap to compare.
package simtime

import (
	"fmt"
	"sort"
)

// Time is a point in model time, measured in abstract integer ticks.
type Time = int64

// Infinity is a time point later than any schedulable event.
const Infinity Time = 1<<62 - 1

// Interval is a half-open time interval [Start, End).
// An Interval with End <= Start is empty.
type Interval struct {
	Start Time
	End   Time
}

// NewInterval returns the interval [start, end). It panics if end < start,
// which always indicates a programming error in the caller.
func NewInterval(start, end Time) Interval {
	if end < start {
		panic(fmt.Sprintf("simtime: invalid interval [%d,%d)", start, end))
	}
	return Interval{Start: start, End: end}
}

// Len returns the length of the interval, or 0 if it is empty.
func (iv Interval) Len() Time {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether t lies inside [Start, End).
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// ContainsInterval reports whether other lies fully inside iv.
// An empty other is contained in any non-empty interval that contains its
// start point; by convention an empty interval is contained everywhere.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return other.Start >= iv.Start && other.End <= iv.End
}

// Overlaps reports whether the two half-open intervals share any point.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the common part of the two intervals. The result is
// empty (Len()==0) when they do not overlap.
func (iv Interval) Intersect(other Interval) Interval {
	s := max64(iv.Start, other.Start)
	e := min64(iv.End, other.End)
	if e < s {
		return Interval{Start: s, End: s}
	}
	return Interval{Start: s, End: e}
}

// Shift returns the interval translated by d ticks.
func (iv Interval) Shift(d Time) Interval {
	return Interval{Start: iv.Start + d, End: iv.End + d}
}

// String renders the interval as "[start,end)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

// Set is an ordered collection of disjoint, non-empty intervals.
// The zero value is an empty set ready to use.
type Set struct {
	ivs []Interval // sorted by Start, pairwise disjoint, all non-empty
}

// NewSet builds a Set from arbitrary intervals, merging overlaps and
// adjacent intervals and dropping empty ones.
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Len returns the number of disjoint intervals in the set.
func (s *Set) Len() int { return len(s.ivs) }

// Total returns the total number of ticks covered by the set.
func (s *Set) Total() Time {
	var t Time
	for _, iv := range s.ivs {
		t += iv.Len()
	}
	return t
}

// Intervals returns a copy of the set's intervals in ascending order.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Covers reports whether every point of iv is in the set.
func (s *Set) Covers(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// ContainsPoint reports whether t lies in any interval of the set.
func (s *Set) ContainsPoint(t Time) bool {
	return s.Covers(Interval{Start: t, End: t + 1})
}

// Overlaps reports whether any interval of the set overlaps iv.
func (s *Set) Overlaps(iv Interval) bool {
	if iv.Empty() {
		return false
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].Overlaps(iv)
}

// Add inserts iv into the set, merging with any overlapping or adjacent
// intervals. Empty intervals are ignored.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find first interval whose End >= iv.Start (candidate to merge).
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= iv.Start })
	j := i
	merged := iv
	for j < len(s.ivs) && s.ivs[j].Start <= merged.End {
		merged.Start = min64(merged.Start, s.ivs[j].Start)
		merged.End = max64(merged.End, s.ivs[j].End)
		j++
	}
	out := make([]Interval, 0, len(s.ivs)-(j-i)+1)
	out = append(out, s.ivs[:i]...)
	out = append(out, merged)
	out = append(out, s.ivs[j:]...)
	s.ivs = out
}

// Remove deletes every point of iv from the set, splitting intervals that
// straddle its boundaries.
func (s *Set) Remove(iv Interval) {
	if iv.Empty() || len(s.ivs) == 0 {
		return
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	for _, cur := range s.ivs {
		if !cur.Overlaps(iv) {
			out = append(out, cur)
			continue
		}
		if cur.Start < iv.Start {
			out = append(out, Interval{Start: cur.Start, End: iv.Start})
		}
		if cur.End > iv.End {
			out = append(out, Interval{Start: iv.End, End: cur.End})
		}
	}
	s.ivs = out
}

// FirstFit returns the earliest start time t >= earliest such that
// [t, t+length) is fully covered by the set, and true on success.
// A zero length fits at the earliest covered point at or after earliest
// (or at earliest itself if the set is unbounded there).
func (s *Set) FirstFit(earliest, length Time) (Time, bool) {
	if length < 0 {
		return 0, false
	}
	for _, iv := range s.ivs {
		start := max64(iv.Start, earliest)
		if start+length <= iv.End {
			return start, true
		}
	}
	return 0, false
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	cp := &Set{ivs: make([]Interval, len(s.ivs))}
	copy(cp.ivs, s.ivs)
	return cp
}

// Complement returns the gaps of the set inside the universe interval.
func (s *Set) Complement(universe Interval) *Set {
	out := &Set{}
	cursor := universe.Start
	for _, iv := range s.ivs {
		if iv.End <= universe.Start {
			continue
		}
		if iv.Start >= universe.End {
			break
		}
		if iv.Start > cursor {
			out.Add(Interval{Start: cursor, End: min64(iv.Start, universe.End)})
		}
		cursor = max64(cursor, iv.End)
	}
	if cursor < universe.End {
		out.Add(Interval{Start: cursor, End: universe.End})
	}
	return out
}

// String renders the set as a list of intervals.
func (s *Set) String() string {
	out := "{"
	for i, iv := range s.ivs {
		if i > 0 {
			out += " "
		}
		out += iv.String()
	}
	return out + "}"
}

func min64(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

func max64(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
