// Package metasched implements the job-flow level of the paper's
// hierarchical scheduling framework (Fig. 1): a metascheduler distributes
// user job flows between processor-node domains; one job manager per
// domain generates and maintains strategies against its local calendars;
// and a dynamic-environment injector models the independent background
// load that invalidates supporting schedules.
//
// Lifecycle of one job:
//
//  1. The metascheduler assigns the job to the least-loaded domain.
//  2. The domain's job manager generates the strategy (strategy.Generate)
//     and activates the cheapest admissible distribution, reserving its
//     windows in the live node calendars.
//  3. While the job is still waiting to start, an external reservation may
//     claim one of its windows: the plan is evicted, its time-to-live
//     recorded, and the manager re-anchors the next supporting level at
//     the current time (§2's "special reallocation mechanism ... executed
//     on the higher-level manager or on the metascheduler-level").
//  4. A job whose manager runs out of levels is handed back to the
//     metascheduler for reallocation to another domain; if that fails too,
//     the job is rejected — a QoS miss.
//  5. Once the first task starts, the allocation is guaranteed (advance
//     reservations, §5) and the job runs to its planned finish — unless
//     fault injection is enabled, in which case a node outage or a mid-run
//     task failure can kill the running job and send it through the
//     recovery ladder below.
//
// Fault injection (Config.Faults, see internal/faults) breaks the benign
// model deliberately: node and domain outages void the affected calendars
// and evict every plan touching them, and running jobs can lose a task
// mid-execution. A failed running job escalates through
//
//	retry (same domain, exponential backoff, ≤ MaxRetries)
//	→ fallback (remaining supporting levels)
//	→ cross-domain reallocation
//	→ rejection (QoS miss).
//
// With a zero fault config none of these paths is armed and a run is
// byte-identical to the fault-free simulator.
package metasched

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// Config tunes the virtual organization simulation.
type Config struct {
	// Domains is the number of job-manager domains the environment's
	// nodes are partitioned into (by their Node.Domain labels).
	// Informational; the actual split follows the labels.

	// ExternalMeanGap is the mean model-time gap between background-load
	// reservation attempts (exponential). Zero disables the injector.
	ExternalMeanGap float64
	// ExternalLead is how far in the future an external window starts.
	ExternalLead simtime.Time
	// ExternalDurLo/Hi bound the external window length (uniform).
	ExternalDurLo, ExternalDurHi simtime.Time
	// ExternalUntil stops the injector at this model time.
	ExternalUntil simtime.Time

	// Pricing prices node time; defaults to the bare CF.
	Pricing economy.Pricing
	// Objective is the DP target for all strategy generation.
	Objective criticalworks.Objective

	// Placement selects the metascheduler's flow-distribution rule;
	// default PlaceLeastLoaded.
	Placement PlacementPolicy

	// DomainFilter, when set, lets an outer control layer veto placement
	// domains — the service layer points it at a per-domain circuit
	// breaker so a domain whose strategies repeatedly die stops receiving
	// work. Returning false excludes the domain from flow distribution and
	// reallocation exactly like a fully-down domain. nil admits every
	// domain (the simulation default).
	DomainFilter func(domain string) bool

	// BuildCtx, when set, supplies a per-job context bounding all strategy
	// generation work done on the job's behalf (initial builds, retries,
	// fallback re-anchoring). A cancelled context makes the in-progress
	// build abort at its next checkpoint and the job fail its current
	// recovery step. nil means unbounded builds — the simulation default,
	// byte-identical to runs before the hook existed.
	BuildCtx func(jobName string) context.Context

	// Tracer, when set, receives every VO lifecycle event.
	Tracer Tracer

	// Telemetry, when non-nil, receives runtime metrics from the whole
	// hierarchy: grid_metasched_* event counters and generation latency
	// here, grid_strategy_* and grid_criticalworks_* from the layers
	// below (the registry is forwarded to every domain's generator).
	// Telemetry only observes — a run with it enabled is byte-identical
	// to one without, and nil costs the simulation path nothing.
	Telemetry *telemetry.Registry
	// Spans, when non-nil, traces the scheduling work: metasched.adopt
	// and metasched.fallback spans with the strategy/critical-works
	// build spans beneath them. nil disables tracing at zero cost.
	Spans *telemetry.Tracer

	// Seed drives the injector's randomness.
	Seed uint64

	// Workers bounds the concurrent per-level builds inside strategy
	// generation (a read-only construction pass over calendar snapshots).
	// The simulation loop itself stays single-threaded and the live
	// calendars keep a single writer: parallelism never touches them.
	// Values ≤ 1 keep generation fully sequential; any value produces
	// byte-identical runs.
	Workers int

	// Faults configures deterministic fault injection (node/domain
	// outages and mid-run task failures). The zero value disables it
	// entirely and reproduces the fault-free simulator exactly.
	Faults faults.Config

	// Placers enables shared-state optimistic concurrent placement
	// (DESIGN.md §12): same-tick arrivals are batched, up to Placers
	// goroutines build placement proposals against one versioned
	// calendar snapshot, and a deterministic commit arbiter applies the
	// winners and retries the losers against refreshed state. Values
	// ≤ 1 keep the single-writer loop byte-identical to previous
	// releases; any value yields the same terminal state per job
	// (equivalence up to ordering, pinned by the differential suite).
	Placers int
	// PlacerRounds bounds the optimistic rounds a contended batch gets
	// before its remaining jobs fall back to the guaranteed sequential
	// path. 0 means 3.
	PlacerRounds int

	// NoRepair disables incremental strategy repair on the fallback path:
	// every supporting-level re-anchor runs the full critical-works build
	// even when the previous build's memo could be replayed or spliced.
	// Repair is on by default and provably byte-identical to the full
	// rebuild (the repair differential and fuzz suites pin this); the
	// flag is the escape hatch and the differential baseline.
	NoRepair bool
}

// PlacementPolicy selects how the metascheduler distributes arriving jobs
// between domains.
type PlacementPolicy int

const (
	// PlaceLeastLoaded assigns each job to the domain whose nodes carry
	// the fewest reserved future ticks.
	PlaceLeastLoaded PlacementPolicy = iota
	// PlaceRoundRobin cycles through the domains in name order — the
	// baseline distribution rule.
	PlaceRoundRobin
)

// State is a job's lifecycle phase.
type State int

// Job lifecycle states.
const (
	StatePlanned State = iota
	StateExecuting
	StateCompleted
	StateRejected
)

// String names the state.
func (s State) String() string {
	switch s {
	case StatePlanned:
		return "planned"
	case StateExecuting:
		return "executing"
	case StateCompleted:
		return "completed"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// JobResult is the full record of one job's passage through the VO.
type JobResult struct {
	Job *dag.Job
	// Scheduled is the DAG the placements refer to: the job itself, or
	// its coarse clustering for S3 strategies.
	Scheduled *dag.Job
	Type      strategy.Type
	Domain    string
	State     State

	// Admissible records whether the initially generated strategy had any
	// admissible distribution (the Fig. 3a criterion).
	Admissible bool

	Arrival simtime.Time
	Finish  simtime.Time

	// InitialLevel and FinalLevel are the estimation levels of the first
	// and last activated distributions.
	InitialLevel, FinalLevel resource.Tier

	// Cost/BareCF of the finally executed distribution.
	Cost   float64
	BareCF int64

	// MeanTaskTime is the average reserved task duration of the final
	// distribution (Fig. 4b's task execution time).
	MeanTaskTime float64

	// TTLs holds each activated plan's time-to-live: eviction−activation
	// for invalidated plans, completion−activation for the survivor.
	TTLs []simtime.Time

	// PlannedStart is the job's first-task start under the FIRST activated
	// plan; ActualStart is the start it finally got. Their difference over
	// the run time is Fig. 4c's start deviation ratio.
	PlannedStart, ActualStart simtime.Time

	// Fallbacks counts in-domain re-anchored levels; Reallocations counts
	// metascheduler-level domain moves.
	Fallbacks, Reallocations int

	// TaskFailures counts mid-run failures (task deaths and node crashes
	// under a running job); Retries counts the backoff-delayed recovery
	// attempts they triggered. Zero without fault injection.
	TaskFailures, Retries int
	// Downtime is the model time the job spent failed: from each failure
	// to its next successful activation (or terminal rejection).
	Downtime simtime.Time

	// Collisions aggregated over all generation passes, by node.
	Collisions []criticalworks.Collision

	// Placements of the finally executed distribution.
	Placements map[dag.TaskID]criticalworks.Placement

	// Evaluations spent generating (and re-generating) strategies.
	Evaluations int64
}

// RunTime returns the executed span (finish − actual start), or 0.
func (r *JobResult) RunTime() simtime.Time {
	if r.State != StateCompleted {
		return 0
	}
	return r.Finish - r.ActualStart
}

// StartDeviation returns actual−planned first start (≥ 0 in this model:
// replans only ever push a job later).
func (r *JobResult) StartDeviation() simtime.Time {
	d := r.ActualStart - r.PlannedStart
	if d < 0 {
		return -d
	}
	return d
}

// activeJob is the manager-side state of a job in flight.
type activeJob struct {
	result        *JobResult
	strat         *strategy.Strategy
	manager       *JobManager
	used          map[resource.Tier]bool
	current       *strategy.Distribution
	activate      simtime.Time // when the current plan was activated
	everActivated bool
	finishEv      sim.Handle
	startEv       sim.Handle
	failEv        sim.Handle
	triedDom      map[string]bool
	retries       int          // recovery attempts consumed
	failedAt      simtime.Time // last unrecovered failure time, -1 if none
}

// JobManager owns one domain's nodes and keeps its jobs' strategies alive.
type JobManager struct {
	vo     *VO
	domain string
	pool   []resource.NodeID
	gen    *strategy.Generator
}

// Domain returns the manager's domain name.
func (m *JobManager) Domain() string { return m.domain }

// VO is the virtual organization: environment, metascheduler, domain
// managers and the background-load injector.
type VO struct {
	engine   *sim.Engine
	env      *resource.Environment
	cfg      Config
	managers []*JobManager
	byDomain map[string]*JobManager
	active   map[string]*activeJob // by job name
	results  []*JobResult
	extRng   *rng.Source
	extOn    bool
	rrNext   int // round-robin cursor

	submitted map[string]bool // job names ever submitted, for duplicate detection
	closed    bool            // Close called; no further submissions

	pending  map[simtime.Time][]pendingArrival // same-tick batches, placers > 1 only
	batchSeq int                               // submission order across batches
	pm       placerMetrics
	rm       *strategy.RepairMetrics

	failRng   *rng.Source // mid-run task-failure draws, nil when disabled
	jitterRng *rng.Source // retry-backoff jitter draws, nil when disabled
	fstats    metrics.FaultStats
}

// NewVO builds the hierarchy over env: one job manager per distinct node
// domain label.
func NewVO(engine *sim.Engine, env *resource.Environment, cfg Config) *VO {
	if cfg.Pricing == nil {
		cfg.Pricing = economy.FlatPricing{PerTick: 1}
	}
	vo := &VO{
		engine:    engine,
		env:       env,
		cfg:       cfg,
		byDomain:  make(map[string]*JobManager),
		active:    make(map[string]*activeJob),
		submitted: make(map[string]bool),
		pending:   make(map[simtime.Time][]pendingArrival),
		extRng:    rng.New(cfg.Seed).Split(0xE7),
	}
	if cfg.Telemetry != nil && cfg.Placers > 1 {
		vo.pm.register(cfg.Telemetry)
	}
	if cfg.Telemetry != nil && !cfg.NoRepair {
		vo.rm = strategy.NewRepairMetrics(cfg.Telemetry)
	}
	if cfg.Faults.JitterFrac > 0 {
		vo.jitterRng = rng.New(cfg.Faults.Seed).Split(0x717E)
	}
	for _, dom := range env.Domains() {
		var pool []resource.NodeID
		for _, n := range env.ByDomain(dom) {
			pool = append(pool, n.ID)
		}
		m := &JobManager{
			vo:     vo,
			domain: dom,
			pool:   pool,
			gen: &strategy.Generator{
				Env:          env,
				Pricing:      cfg.Pricing,
				Pool:         pool,
				StorageNode:  pool[0],
				Objective:    cfg.Objective,
				Workers:      cfg.Workers,
				Telemetry:    cfg.Telemetry,
				Spans:        cfg.Spans,
				CaptureMemos: !cfg.NoRepair,
				Repair:       vo.rm,
			},
		}
		vo.managers = append(vo.managers, m)
		vo.byDomain[dom] = m
	}
	if cfg.ExternalMeanGap > 0 {
		vo.extOn = true
		vo.scheduleNextExternal()
	}
	if cfg.Faults.TaskFailRate > 0 {
		vo.failRng = rng.New(cfg.Faults.Seed).Split(0xF417)
	}
	for _, o := range faults.Schedule(cfg.Faults, env) {
		o := o
		vo.engine.At(o.Interval.Start, "node-down", func() { vo.outageDown(o) })
		vo.engine.At(o.Interval.End, "node-up", func() { vo.outageUp(o) })
	}
	return vo
}

// FaultStats returns the run's aggregated fault-injection record; all
// zeros when fault injection is disabled.
func (vo *VO) FaultStats() *metrics.FaultStats { return &vo.fstats }

// Managers returns the domain managers in domain-name order.
func (vo *VO) Managers() []*JobManager { return vo.managers }

// Results returns all finished (completed or rejected) job records.
func (vo *VO) Results() []*JobResult { return vo.results }

// Submit schedules a job of the given strategy family for arrival at `at`.
// It rejects — with an error, before any engine state changes — duplicate
// job names (a second submission would corrupt the active-job registry,
// which is keyed by name), arrivals scheduled in the engine's past, and
// submissions after Close: all three used to corrupt state silently or
// panic deep inside the engine.
func (vo *VO) Submit(job *dag.Job, typ strategy.Type, at simtime.Time) error {
	return vo.SubmitPrio(job, typ, at, 0)
}

// SubmitPrio is Submit with an explicit priority for the concurrent
// placement arbiter: when optimistic placement is enabled (Config.Placers
// > 1) and several jobs arrive at the same tick, commit-time collisions
// are resolved in favor of the higher priority (ties by submission
// order), per the paper's priority/QoS collision-resolution rules. With
// placers ≤ 1 the priority is irrelevant — jobs place one at a time in
// submission order, exactly as before.
func (vo *VO) SubmitPrio(job *dag.Job, typ strategy.Type, at simtime.Time, prio int) error {
	if vo.closed {
		return fmt.Errorf("metasched: job %q submitted after the VO was closed", job.Name)
	}
	if vo.submitted[job.Name] {
		return fmt.Errorf("metasched: duplicate job %q already submitted", job.Name)
	}
	if at < vo.engine.Now() {
		return fmt.Errorf("metasched: job %q arrival %d is in the past (now %d)", job.Name, at, vo.engine.Now())
	}
	vo.submitted[job.Name] = true
	if vo.cfg.Placers <= 1 {
		vo.engine.At(at, "arrive "+job.Name, func() { vo.arrive(job, typ) })
		return nil
	}
	if len(vo.pending[at]) == 0 {
		vo.engine.At(at, "arrive-batch", func() { vo.arriveBatch(at) })
	}
	vo.pending[at] = append(vo.pending[at], pendingArrival{job: job, typ: typ, prio: prio, seq: vo.batchSeq})
	vo.batchSeq++
	return nil
}

// Close marks the VO finished: every later Submit fails with an error.
// The engine and results remain readable; closing is idempotent. The
// service layer closes the VO when a drain completes so that a straggling
// submission cannot revive a drained engine.
func (vo *VO) Close() {
	vo.closed = true
}

// arrive implements the metascheduler's flow distribution: pick the least
// loaded domain and hand the job to its manager. With every domain down
// (fault injection) the job is rejected on arrival.
func (vo *VO) arrive(job *dag.Job, typ strategy.Type) {
	m := vo.placeJob(nil)
	res := &JobResult{
		Job:     job,
		Type:    typ,
		Arrival: vo.engine.Now(),
		State:   StateRejected, // until proven otherwise
	}
	aj := &activeJob{
		result:   res,
		used:     make(map[resource.Tier]bool),
		triedDom: map[string]bool{},
		failedAt: -1,
	}
	if m == nil {
		vo.trace(EventArrive, job.Name, "", nil)
		vo.finalize(aj, StateRejected)
		return
	}
	res.Domain = m.domain
	aj.manager = m
	aj.triedDom[m.domain] = true
	if vo.cfg.Telemetry != nil {
		vo.cfg.Telemetry.Counter("grid_metasched_placements_total",
			"jobs placed by the metascheduler, per domain", telemetry.L("domain", m.domain)).Inc()
	}
	vo.trace(EventArrive, job.Name, m.domain, nil)
	vo.active[job.Name] = aj
	m.adopt(aj, true)
}

// domainAllowed consults the configured DomainFilter; nil admits all.
func (vo *VO) domainAllowed(domain string) bool {
	return vo.cfg.DomainFilter == nil || vo.cfg.DomainFilter(domain)
}

// buildCtx returns the job's build-bounding context, or Background.
func (vo *VO) buildCtx(jobName string) context.Context {
	if vo.cfg.BuildCtx == nil {
		return context.Background()
	}
	if ctx := vo.cfg.BuildCtx(jobName); ctx != nil {
		return ctx
	}
	return context.Background()
}

// placeJob applies the configured placement policy, excluding `except`,
// domains vetoed by the DomainFilter (circuit breaker) and (degraded-mode
// placement) domains whose every node is down.
func (vo *VO) placeJob(except map[string]bool) *JobManager {
	if vo.cfg.Placement == PlaceRoundRobin {
		for i := 0; i < len(vo.managers); i++ {
			m := vo.managers[(vo.rrNext+i)%len(vo.managers)]
			if except[m.domain] || !vo.env.DomainUp(m.domain) || !vo.domainAllowed(m.domain) {
				continue
			}
			vo.rrNext = (vo.rrNext + i + 1) % len(vo.managers)
			return m
		}
		return nil
	}
	return vo.leastLoaded(except)
}

// leastLoaded returns the manager whose pool has the fewest reserved
// future ticks, excluding domains in `except` and fully-down domains.
func (vo *VO) leastLoaded(except map[string]bool) *JobManager {
	now := vo.engine.Now()
	span := simtime.Interval{Start: now, End: now + 1000}
	var best *JobManager
	var bestLoad float64
	for _, m := range vo.managers {
		if except[m.domain] || !vo.env.DomainUp(m.domain) || !vo.domainAllowed(m.domain) {
			continue
		}
		var load float64
		for _, id := range m.pool {
			load += float64(vo.env.Node(id).Calendar().BusyIn(span))
		}
		load /= float64(len(m.pool))
		if best == nil || load < bestLoad || (load == bestLoad && m.domain < best.domain) {
			best = m
			bestLoad = load
		}
	}
	return best
}

// adopt generates (or regenerates) the job's strategy in this domain and
// activates the cheapest admissible distribution. initial marks the very
// first generation, which defines the job's admissibility record.
func (m *JobManager) adopt(aj *activeJob, initial bool) {
	vo := m.vo
	now := vo.engine.Now()
	snap := criticalworks.Snapshot(vo.env)
	ctx := vo.buildCtx(aj.result.Job.Name)
	var sp *telemetry.Span
	var t0 time.Time
	if vo.cfg.Telemetry != nil || vo.cfg.Spans != nil {
		t0 = time.Now()
		sp = vo.cfg.Spans.Start("metasched.adopt", telemetry.SpanFromContext(ctx))
		if sp != nil {
			sp.SetStr("job", aj.result.Job.Name).SetStr("domain", m.domain)
			if initial {
				sp.SetInt("initial", 1)
			}
			ctx = telemetry.ContextWithSpan(ctx, sp.ID())
		}
	}
	st, err := m.gen.GenerateCtx(ctx, aj.result.Job, aj.result.Type, snap, now)
	if vo.cfg.Telemetry != nil {
		vo.cfg.Telemetry.Histogram("grid_metasched_adopt_seconds",
			"wall time of one adopt (strategy generation) pass", nil).Observe(telemetry.Since(t0))
	}
	if sp != nil {
		if err != nil {
			sp.SetStr("result", "error")
		} else {
			sp.SetStr("result", "ok")
		}
		sp.End()
	}
	if err != nil {
		// Structural failures cannot happen for generator-produced jobs;
		// treat as rejection rather than crash the simulation.
		m.vo.finalize(aj, StateRejected)
		return
	}
	aj.strat = st
	aj.result.Scheduled = st.Scheduled
	aj.used = make(map[resource.Tier]bool)
	aj.result.Evaluations += st.Evaluations
	aj.result.Collisions = append(aj.result.Collisions, st.Collisions()...)
	if initial {
		aj.result.Admissible = st.Admissible()
	}
	d := st.CheapestAdmissible()
	if d == nil {
		m.vo.reallocate(aj)
		return
	}
	m.activate(aj, d)
}

// activate reserves the distribution's windows in the live calendars and
// schedules the job's start and finish events. The very first activation
// (in whichever domain it happens) defines the job's planned start for the
// Fig. 4c deviation metric.
func (m *JobManager) activate(aj *activeJob, d *strategy.Distribution) {
	owner := func(task dag.TaskID) resource.Owner {
		return resource.Owner{Job: aj.result.Job.Name, Task: aj.strat.Scheduled.Task(task).Name}
	}
	for id, p := range d.Placements {
		if err := m.vo.env.Node(p.Node).Calendar().Reserve(p.Window, owner(id)); err != nil {
			// The plan was built against a snapshot taken this instant, so
			// a conflict is an internal bug.
			panic(fmt.Sprintf("metasched: activation conflict for %s: %v", aj.result.Job.Name, err))
		}
	}
	m.activateReserved(aj, d)
}

// activateReserved is activate after the reservations are already in the
// live books: the optimistic commit path (placer.go) applies a plan's
// windows atomically through resource.Proposal.Commit and then runs the
// exact bookkeeping the single-writer path runs after its Reserve loop.
func (m *JobManager) activateReserved(aj *activeJob, d *strategy.Distribution) {
	now := m.vo.engine.Now()
	aj.current = d
	aj.activate = now
	aj.used[d.Level] = true
	if !aj.everActivated {
		aj.everActivated = true
		aj.result.InitialLevel = d.Level
		aj.result.PlannedStart = d.Start
	}
	if aj.failedAt >= 0 {
		// The job was down since its last failure; this activation ends
		// the outage-induced wait.
		aj.result.Downtime += now - aj.failedAt
		aj.failedAt = -1
	}
	aj.result.FinalLevel = d.Level
	aj.result.ActualStart = d.Start
	m.vo.trace(EventActivate, aj.result.Job.Name, m.domain, func(e *Event) {
		e.Level = int(d.Level)
		e.Start, e.End = d.Start, d.Finish
	})
	aj.startEv = m.vo.engine.At(d.Start, "start "+aj.result.Job.Name, func() {
		aj.result.State = StateExecuting
		m.vo.trace(EventStart, aj.result.Job.Name, m.domain, nil)
	})
	aj.finishEv = m.vo.engine.At(d.Finish, "finish "+aj.result.Job.Name, func() {
		m.complete(aj)
	})
	m.armTaskFailure(aj, d)
	aj.result.State = StatePlanned
	if d.Start <= now {
		aj.result.State = StateExecuting
	}
}

// armTaskFailure draws, at activation time, whether this plan will lose a
// task mid-run and schedules the failure if so. Drawing here keeps the
// failure stream a deterministic function of the activation sequence.
func (m *JobManager) armTaskFailure(aj *activeJob, d *strategy.Distribution) {
	vo := m.vo
	if vo.failRng == nil {
		return
	}
	span := d.Finish - d.Start
	if span < 2 || !vo.failRng.Bool(vo.cfg.Faults.TaskFailRate) {
		return
	}
	// The task dies strictly inside the execution window, after the start
	// event of its tick (start events precede failure events in the queue).
	at := d.Start + 1 + vo.failRng.Int64n(int64(span-1))
	aj.failEv = vo.engine.At(at, "task-fail "+aj.result.Job.Name, func() {
		m.taskFailed(aj, "task died mid-run")
	})
}

// complete finalizes a job that ran to plan.
func (m *JobManager) complete(aj *activeJob) {
	d := aj.current
	aj.result.Finish = d.Finish
	aj.result.Cost = d.Cost
	aj.result.BareCF = d.BareCF
	aj.result.TTLs = append(aj.result.TTLs, d.Finish-aj.activate)
	aj.result.Placements = d.Placements
	var total simtime.Time
	for _, p := range d.Placements {
		total += p.Window.Len()
	}
	aj.result.MeanTaskTime = 0
	if len(d.Placements) > 0 {
		aj.result.MeanTaskTime = float64(total) / float64(len(d.Placements))
	}
	if aj.result.TaskFailures > 0 {
		m.vo.fstats.Recoveries++
	}
	m.vo.finalize(aj, StateCompleted)
}

// release removes the job's current plan from the calendars, cancels its
// pending events and records the plan's time-to-live. The caller decides
// what happens next (fallback, retry, rejection).
func (m *JobManager) release(aj *activeJob) {
	now := m.vo.engine.Now()
	aj.result.TTLs = append(aj.result.TTLs, now-aj.activate)
	aj.startEv.Cancel()
	aj.finishEv.Cancel()
	aj.failEv.Cancel()
	for _, id := range m.pool {
		m.vo.env.Node(id).Calendar().ReleaseJob(aj.result.Job.Name)
	}
	aj.current = nil
	aj.result.State = StatePlanned
}

// teardown is an eviction: the plan of a not-yet-started job is removed
// because the environment claimed one of its windows.
func (m *JobManager) teardown(aj *activeJob) {
	m.vo.trace(EventEvict, aj.result.Job.Name, m.domain, nil)
	m.release(aj)
}

// taskFailed handles a running job losing a task (mid-run failure or a
// node crashing under it): the broken plan is released and the job enters
// the recovery ladder — bounded retry with exponential backoff re-anchoring
// the strategy in the same domain, then the remaining supporting levels,
// then cross-domain reallocation, then rejection.
func (m *JobManager) taskFailed(aj *activeJob, detail string) {
	vo := m.vo
	now := vo.engine.Now()
	aj.result.TaskFailures++
	vo.fstats.TaskFailures++
	vo.trace(EventTaskFailed, aj.result.Job.Name, m.domain, func(e *Event) {
		e.Detail = detail
	})
	m.release(aj)
	aj.failedAt = now
	if aj.retries < vo.cfg.Faults.MaxRetries {
		aj.retries++
		aj.result.Retries++
		vo.fstats.Retries++
		at := now + vo.cfg.Faults.JitteredBackoff(aj.retries, vo.jitterRng)
		vo.trace(EventRetry, aj.result.Job.Name, m.domain, func(e *Event) {
			e.Level = aj.retries
			e.Start = at
		})
		vo.engine.At(at, "retry "+aj.result.Job.Name, func() {
			m.adopt(aj, false)
		})
		return
	}
	m.fallback(aj)
}

// fallback re-anchors the next supporting level at the current time; when
// the strategy is exhausted the job goes back to the metascheduler.
func (m *JobManager) fallback(aj *activeJob) {
	vo := m.vo
	now := vo.engine.Now()
	var sp *telemetry.Span
	tried := 0
	if vo.cfg.Spans != nil {
		sp = vo.cfg.Spans.Start("metasched.fallback", 0)
		sp.SetStr("job", aj.result.Job.Name).SetStr("domain", m.domain)
		defer func() { sp.SetInt("levels_tried", int64(tried)).End() }()
	}
	gens := func(id resource.NodeID) uint64 { return vo.env.Node(id).Calendar().Gen() }
	snap := func() criticalworks.Calendars { return criticalworks.Snapshot(vo.env) }
	// lastMemo carries the most recent level build's memo across loop
	// passes: the live books don't change between them, and consecutive
	// levels shrink the candidate set (the tier filter), so the previous
	// build can often be replayed or spliced instead of re-run.
	var lastMemo *criticalworks.BuildMemo
	// Try remaining levels in the cost order of the original generation.
	for {
		next := aj.strat.AdmissibleAfter(aj.used)
		if next == nil {
			vo.reallocate(aj)
			return
		}
		aj.used[next.Level] = true
		tried++
		// buildCtx is re-acquired per level: each call arms a fresh
		// build-timeout for the job, exactly as before instrumentation.
		ctx := vo.buildCtx(aj.result.Job.Name)
		if sp != nil {
			ctx = telemetry.ContextWithSpan(ctx, sp.ID())
		}
		var d *strategy.Distribution
		var partial *criticalworks.Schedule
		var err error
		repaired := false
		if !vo.cfg.NoRepair {
			// Two memo sources, cheapest-to-validate first: the build this
			// loop just ran, then the level's original distribution (only
			// live when the books haven't moved since generation).
			for _, memo := range []*criticalworks.BuildMemo{lastMemo, next.Memo()} {
				if memo == nil {
					continue
				}
				rd, outcome := m.gen.RepairLevelCtx(ctx, aj.strat.Scheduled, aj.result.Job.Name, aj.result.Type, next.Level, memo, now, gens, snap)
				vo.rm.Observe(outcome)
				if outcome == criticalworks.RepairStale {
					continue
				}
				d, repaired = rd, true
				break
			}
		}
		if !repaired {
			if !vo.cfg.NoRepair {
				vo.rm.FullRebuild()
			}
			d, partial, err = m.gen.BuildLevelCtx(ctx, aj.strat.Scheduled, aj.result.Job.Name, aj.result.Type, next.Level, snap(), now)
		}
		if d != nil && d.Memo() != nil {
			lastMemo = d.Memo()
		}
		if err != nil || d == nil || !d.Admissible {
			if partial != nil {
				aj.result.Evaluations += partial.Evaluations
				aj.result.Collisions = append(aj.result.Collisions, partial.Collisions...)
			}
			continue
		}
		aj.result.Evaluations += d.Schedule.Evaluations
		aj.result.Collisions = append(aj.result.Collisions, d.Schedule.Collisions...)
		aj.result.Fallbacks++
		m.vo.trace(EventFallback, aj.result.Job.Name, m.domain, func(e *Event) {
			e.Level = int(d.Level)
		})
		m.activate(aj, d)
		return
	}
}

// reallocate moves the job to another domain (Fig. 1's job reallocation);
// with no domains left, the job is rejected.
func (vo *VO) reallocate(aj *activeJob) {
	next := vo.placeJob(aj.triedDom)
	if next == nil {
		vo.finalize(aj, StateRejected)
		return
	}
	aj.triedDom[next.domain] = true
	aj.result.Reallocations++
	aj.result.Domain = next.domain
	aj.manager = next
	vo.trace(EventReallocate, aj.result.Job.Name, next.domain, nil)
	next.adopt(aj, false)
}

// finalize records the job's terminal state.
func (vo *VO) finalize(aj *activeJob, st State) {
	aj.result.State = st
	kind := EventComplete
	if st == StateRejected {
		aj.result.Finish = vo.engine.Now()
		kind = EventReject
	}
	if aj.failedAt >= 0 {
		aj.result.Downtime += vo.engine.Now() - aj.failedAt
		aj.failedAt = -1
	}
	if aj.result.TaskFailures > 0 {
		vo.fstats.Downtime.Add(float64(aj.result.Downtime))
	}
	vo.trace(kind, aj.result.Job.Name, aj.result.Domain, nil)
	delete(vo.active, aj.result.Job.Name)
	vo.results = append(vo.results, aj.result)
	// Keep the calendars lean on long runs: finished reservations cannot
	// affect any future fit.
	if len(vo.results)%64 == 0 {
		now := vo.engine.Now()
		for _, n := range vo.env.Nodes() {
			n.Calendar().PruneBefore(now)
		}
	}
}

// outageDown applies one fault-schedule outage: every affected node is
// marked down and its reservation book voided FIRST (so recovery never
// replans onto a sibling node dying in the same event), then the evicted
// jobs recover in deterministic name order. Running jobs whose unfinished
// windows were voided go through the task-failure ladder; waiting jobs
// through the ordinary eviction/fallback path.
func (vo *VO) outageDown(o faults.Outage) {
	now := vo.engine.Now()
	ids := []resource.NodeID{o.Node}
	if o.Domain != "" {
		ids = ids[:0]
		for _, n := range vo.env.ByDomain(o.Domain) {
			ids = append(ids, n.ID)
		}
	}
	vo.fstats.NodeOutages++
	if o.Domain != "" {
		vo.fstats.DomainOutages++
	}
	vo.trace(EventNodeDown, "", o.Domain, func(e *Event) {
		e.Node = int(o.Node)
		e.Start, e.End = o.Interval.Start, o.Interval.End
	})
	victims := make(map[string]*activeJob)
	for _, id := range ids {
		n := vo.env.Node(id)
		n.MarkDown(now)
		for _, r := range n.Calendar().Void() {
			if r.Owner == resource.External {
				continue
			}
			// A window that already finished did its work before the
			// crash; only unfinished windows break the owning job.
			if r.Interval.End <= now {
				continue
			}
			if aj, ok := vo.active[r.Owner.Job]; ok && aj.current != nil {
				victims[r.Owner.Job] = aj
			}
		}
	}
	names := make([]string, 0, len(victims))
	for name := range victims {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		aj := victims[name]
		if aj.result.State == StateExecuting {
			aj.manager.taskFailed(aj, "node down under running task")
			continue
		}
		aj.manager.teardown(aj)
		aj.manager.fallback(aj)
	}
}

// outageUp ends one outage window.
func (vo *VO) outageUp(o faults.Outage) {
	now := vo.engine.Now()
	ids := []resource.NodeID{o.Node}
	if o.Domain != "" {
		ids = ids[:0]
		for _, n := range vo.env.ByDomain(o.Domain) {
			ids = append(ids, n.ID)
		}
	}
	for _, id := range ids {
		vo.env.Node(id).MarkUp(now)
	}
	vo.trace(EventNodeUp, "", o.Domain, func(e *Event) {
		e.Node = int(o.Node)
	})
}

// scheduleNextExternal arms the background-load injector.
func (vo *VO) scheduleNextExternal() {
	gap := simtime.Time(vo.extRng.Exp(vo.cfg.ExternalMeanGap)) + 1
	at := vo.engine.Now() + gap
	if vo.cfg.ExternalUntil > 0 && at > vo.cfg.ExternalUntil {
		return
	}
	vo.engine.At(at, "external-load", func() {
		vo.injectExternal()
		vo.scheduleNextExternal()
	})
}

// injectExternal books one random background job: a random node, the
// earliest window after the lead time that the local system can grant.
func (vo *VO) injectExternal() {
	now := vo.engine.Now()
	n := resource.NodeID(vo.extRng.Intn(vo.env.NumNodes()))
	dur := simtime.Time(vo.extRng.Int64Between(int64(vo.cfg.ExternalDurLo), int64(vo.cfg.ExternalDurHi)))
	if dur <= 0 {
		return
	}
	vo.InjectExternalLoad(n, dur, now+vo.cfg.ExternalLead)
}

// InjectExternalLoad models an independent local batch job arriving at a
// node: the local system places it at the earliest window at or after
// `earliest` that avoids guaranteed reservations (running/started grid
// jobs, other locals), and — exercising the local system's autonomy — it
// outranks grid reservations whose jobs have not started yet: those plans
// are evicted and replan. It returns the booked window.
func (vo *VO) InjectExternalLoad(node resource.NodeID, dur, earliest simtime.Time) (simtime.Interval, bool) {
	if dur <= 0 {
		return simtime.Interval{}, false
	}
	if !vo.env.Node(node).Up() {
		// The node's local batch system is down; the arrival is lost.
		return simtime.Interval{}, false
	}
	cal := vo.env.Node(node).Calendar()
	start := earliest
	for iter := 0; iter < 10000; iter++ {
		iv := simtime.Interval{Start: start, End: start + dur}
		blocked := simtime.Time(-1)
		for _, c := range cal.ConflictsWith(iv) {
			if vo.isProtected(c.Owner) && c.Interval.End > blocked {
				blocked = c.Interval.End
			}
		}
		if blocked >= 0 {
			start = blocked
			continue
		}
		if vo.InjectExternal(node, iv) {
			return iv, true
		}
		return simtime.Interval{}, false
	}
	return simtime.Interval{}, false
}

// isProtected reports whether a reservation owner cannot be preempted by
// local load: externals and grid jobs that already started.
func (vo *VO) isProtected(owner resource.Owner) bool {
	if owner == resource.External {
		return true
	}
	aj, ok := vo.active[owner.Job]
	return !ok || aj.result.State != StatePlanned
}

// InjectExternal attempts one background reservation on the given node and
// window, applying the eviction rules: plans of jobs that have not started
// yet yield to it (and get evicted); executing jobs and other externals
// win, and the event is dropped. It reports whether the reservation was
// booked. Exposed for deterministic scenario construction.
func (vo *VO) InjectExternal(node resource.NodeID, iv simtime.Interval) bool {
	n := vo.env.Node(node)
	conflicts := n.Calendar().ConflictsWith(iv)
	var victims []*activeJob
	for _, c := range conflicts {
		if c.Owner == resource.External {
			return false // externals do not fight each other
		}
		aj, ok := vo.active[c.Owner.Job]
		if !ok || aj.result.State != StatePlanned {
			return false // executing (or unknown) jobs are protected
		}
		victims = append(victims, aj)
	}
	// Deduplicate victims while keeping deterministic order.
	sort.Slice(victims, func(a, b int) bool {
		return victims[a].result.Job.Name < victims[b].result.Job.Name
	})
	seen := map[*activeJob]bool{}
	var evictees []*activeJob
	for _, v := range victims {
		if !seen[v] {
			seen[v] = true
			evictees = append(evictees, v)
		}
	}
	// Tear every victim down first so the external's booking cannot fail,
	// then let the victims replan against the post-event state.
	for _, v := range evictees {
		v.manager.teardown(v)
	}
	if err := n.Calendar().Reserve(iv, resource.External); err != nil {
		panic(fmt.Sprintf("metasched: external booking failed after eviction: %v", err))
	}
	vo.traceExternal(node, iv)
	for _, v := range evictees {
		v.manager.fallback(v)
	}
	return true
}

// NodeLoad aggregates, per performance group, the fraction of the span
// each group's nodes spent executing completed jobs' tasks (Fig. 4a).
// External load is excluded: the figure reports the strategies' own usage
// pattern.
func (vo *VO) NodeLoad(span simtime.Interval) map[resource.Group]float64 {
	busy := make(map[resource.NodeID]simtime.Time)
	for _, r := range vo.results {
		if r.State != StateCompleted {
			continue
		}
		for _, p := range r.Placements {
			busy[p.Node] += p.Window.Intersect(span).Len()
		}
	}
	groupBusy := make(map[resource.Group]simtime.Time)
	groupCap := make(map[resource.Group]simtime.Time)
	for _, n := range vo.env.Nodes() {
		groupBusy[n.Group()] += busy[n.ID]
		groupCap[n.Group()] += span.Len()
	}
	out := make(map[resource.Group]float64)
	for g, c := range groupCap {
		if c > 0 {
			out[g] = float64(groupBusy[g]) / float64(c)
		}
	}
	return out
}
