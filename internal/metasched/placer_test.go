package metasched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// placerRun drives one deterministic VO run: `jobs` corpus jobs submitted
// in same-tick groups of `group` (one arrival batch each when placers >
// 1), priorities cycling 0..2, deadlines re-anchored at each group's
// tick. stretch scales the corpus deadlines (1 keeps the generator's
// default). Every `doomEvery`-th job (0 disables) instead gets a 1-tick
// deadline no schedule can meet, pinning the rejection path. Returns the
// terminal results in finalization order.
func placerRun(seed uint64, placers, jobs, group int, gap simtime.Time, stretch float64, doomEvery int) []*JobResult {
	e := sim.New()
	cfg := workload.Default(seed)
	cfg.DeadlineFactor *= stretch
	gen := workload.New(cfg)
	env := gen.Environment(3)
	vo := NewVO(e, env, Config{Seed: seed, Placers: placers})
	for i := 0; i < jobs; i++ {
		j := gen.Job(i)
		at := simtime.Time(i/group) * gap
		if doomEvery > 0 && i%doomEvery == doomEvery-1 {
			j = j.WithDeadline(at + 1) // infeasible whatever the contention
		} else {
			j = j.WithDeadline(at + j.Deadline)
		}
		if err := vo.SubmitPrio(j, strategy.S1, at, i%3); err != nil {
			panic(err)
		}
	}
	e.Run()
	return vo.Results()
}

// TestPlacerDifferentialEquivalence is the concurrent-placement analogue
// of the PR 2 workers-differential: for five seeds, -placers=1 and
// -placers=8 must give every job the same terminal state and identical
// QoS-miss/goodput totals. The comparison is ordering-independent (by
// job name): the optimistic arbiter may activate batch members in a
// different sequence, but it must not change any job's fate.
func TestPlacerDifferentialEquivalence(t *testing.T) {
	const jobs, group = 36, 6
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			seq := placerRun(seed, 1, jobs, group, 150, 3, 9)
			con := placerRun(seed, 8, jobs, group, 150, 3, 9)
			if len(seq) != jobs || len(con) != jobs {
				t.Fatalf("results: sequential %d, concurrent %d, want %d", len(seq), len(con), jobs)
			}
			states := func(rs []*JobResult) (map[string]State, int, int) {
				byName := make(map[string]State, len(rs))
				completed, rejected := 0, 0
				for _, r := range rs {
					byName[r.Job.Name] = r.State
					switch r.State {
					case StateCompleted:
						completed++
					case StateRejected:
						rejected++
					default:
						t.Fatalf("%s: non-terminal state %v", r.Job.Name, r.State)
					}
				}
				return byName, completed, rejected
			}
			sA, compA, rejA := states(seq)
			sB, compB, rejB := states(con)
			for name, st := range sA {
				if sB[name] != st {
					t.Errorf("%s: placers=1 %v, placers=8 %v", name, st, sB[name])
				}
			}
			if compA != compB || rejA != rejB {
				t.Errorf("totals: placers=1 completed=%d rejected=%d, placers=8 completed=%d rejected=%d",
					compA, rejA, compB, rejB)
			}
		})
	}
}

// TestPlacerSingletonBatchesMatchSequential pins the byte-identical
// guarantee from the other side: when every arrival batch holds exactly
// one job, the placers>1 configuration must reproduce the single-writer
// run in full — same results in the same order with the same plans.
func TestPlacerSingletonBatchesMatchSequential(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		a := placerRun(seed, 1, 18, 1, 40, 1, 0)
		b := placerRun(seed, 4, 18, 1, 40, 1, 0)
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d vs %d results", seed, len(a), len(b))
		}
		for i := range a {
			x, y := a[i], b[i]
			if x.Job.Name != y.Job.Name || x.State != y.State || x.Finish != y.Finish ||
				x.Cost != y.Cost || x.BareCF != y.BareCF || x.Domain != y.Domain ||
				x.InitialLevel != y.InitialLevel || x.FinalLevel != y.FinalLevel ||
				!reflect.DeepEqual(x.Placements, y.Placements) {
				t.Fatalf("seed %d: result %d diverged:\nplacers=1: %+v\nplacers=4: %+v", seed, i, x, y)
			}
		}
	}
}

// TestPlacerDeterministicAcrossRuns: at a fixed placer width, a whole run
// is a pure function of the seed — the parallel builds must not leak
// scheduling noise into the results.
func TestPlacerDeterministicAcrossRuns(t *testing.T) {
	a := placerRun(3, 8, 36, 6, 150, 1, 0)
	b := placerRun(3, 8, 36, 6, 150, 1, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical placers=8 runs diverged")
	}
}

// TestPlacerCompletedPlacementsNeverOverlap re-checks the live books'
// invariant under the concurrent path: completed jobs' reservations are
// pairwise disjoint per node — commits that raced must not have
// double-booked a window.
func TestPlacerCompletedPlacementsNeverOverlap(t *testing.T) {
	results := placerRun(9, 8, 36, 9, 120, 1, 0)
	type win struct {
		iv  simtime.Interval
		job string
	}
	byNode := map[resource.NodeID][]win{}
	for _, r := range results {
		if r.State != StateCompleted {
			continue
		}
		for _, p := range r.Placements {
			byNode[p.Node] = append(byNode[p.Node], win{p.Window, r.Job.Name})
		}
	}
	for node, wins := range byNode {
		for i := 0; i < len(wins); i++ {
			for j := i + 1; j < len(wins); j++ {
				if wins[i].iv.Overlaps(wins[j].iv) {
					t.Errorf("node %d: %s %v overlaps %s %v",
						node, wins[i].job, wins[i].iv, wins[j].job, wins[j].iv)
				}
			}
		}
	}
}
