package metasched

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func TestMemoryTracerCapturesLifecycle(t *testing.T) {
	e := sim.New()
	env := twoDomainEnv()
	tr := &MemoryTracer{}
	vo := NewVO(e, env, Config{Tracer: tr})
	vo.Submit(simpleJob("traced", 50), strategy.S1, 5)
	e.Run()

	for _, want := range []EventKind{EventArrive, EventActivate, EventStart, EventComplete} {
		if tr.Count(want) != 1 {
			t.Errorf("%s events = %d, want 1", want, tr.Count(want))
		}
	}
	if tr.Count(EventEvict) != 0 || tr.Count(EventReject) != 0 {
		t.Error("spurious evict/reject events")
	}
	// Event ordering: arrive before activate before start before complete.
	order := map[EventKind]int{}
	for i, ev := range tr.Events() {
		if ev.Job == "traced" {
			order[ev.Kind] = i
		}
	}
	if !(order[EventArrive] < order[EventActivate] &&
		order[EventActivate] < order[EventStart] &&
		order[EventStart] < order[EventComplete]) {
		t.Errorf("event order wrong: %v", order)
	}
}

func TestTracerSeesEvictionChain(t *testing.T) {
	// The deterministic eviction scenario from the lifecycle tests, now
	// observed through the tracer.
	e := sim.New()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "fast", 1.0, 1.0, "dom"),
		resource.NewNode(1, "slow", 0.27, 0.27, "dom"),
	})
	tr := &MemoryTracer{}
	vo := NewVO(e, env, Config{Objective: criticalworks.MinCost, Tracer: tr})
	if !vo.InjectExternal(1, simtime.Interval{Start: 0, End: 10}) {
		t.Fatal("pre-load rejected")
	}
	b := dag.NewBuilder("victim").Deadline(80)
	b.Task("T", 4, 16)
	vo.Submit(b.MustBuild(), strategy.S1, 0)
	e.At(2, "attack", func() {
		vo.InjectExternal(1, simtime.Interval{Start: 12, End: 30})
	})
	e.Run()

	if tr.Count(EventEvict) != 1 {
		t.Errorf("evict events = %d, want 1", tr.Count(EventEvict))
	}
	if tr.Count(EventFallback) != 1 {
		t.Errorf("fallback events = %d, want 1", tr.Count(EventFallback))
	}
	if tr.Count(EventExternal) != 2 {
		t.Errorf("external events = %d, want 2", tr.Count(EventExternal))
	}
	if tr.Count(EventComplete) != 1 {
		t.Errorf("complete events = %d, want 1", tr.Count(EventComplete))
	}
}

func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	e := sim.New()
	env := twoDomainEnv()
	vo := NewVO(e, env, Config{Tracer: tr})
	vo.Submit(simpleJob("j", 50), strategy.S2, 0)
	e.Run()
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("JSONL lines = %d, want ≥ 4", len(lines))
	}
	for _, l := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", l, err)
		}
		if ev.Kind == "" {
			t.Errorf("event without kind: %q", l)
		}
	}
}

func TestTracerFuncAdapter(t *testing.T) {
	var got []EventKind
	tr := TracerFunc(func(e Event) { got = append(got, e.Kind) })
	tr.Trace(Event{Kind: EventArrive})
	if len(got) != 1 || got[0] != EventArrive {
		t.Errorf("TracerFunc got %v", got)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	e := sim.New()
	env := twoDomainEnv()
	vo := NewVO(e, env, Config{Placement: PlaceRoundRobin})
	for i := 0; i < 4; i++ {
		vo.Submit(simpleJob(strings.Repeat("x", i+1), 200), strategy.S1, simtime.Time(i))
	}
	e.Run()
	counts := map[string]int{}
	for _, r := range vo.Results() {
		if r.Reallocations == 0 { // only count the original placement
			counts[r.Domain]++
		}
	}
	// Four jobs over two domains, strictly alternating.
	if counts["dom-0"] != 2 || counts["dom-1"] != 2 {
		t.Errorf("round-robin distribution = %v, want 2/2", counts)
	}
}

func TestRoundRobinSkipsExcluded(t *testing.T) {
	e := sim.New()
	env := twoDomainEnv()
	vo := NewVO(e, env, Config{Placement: PlaceRoundRobin})
	// Deadline 1 is infeasible anywhere: the job is placed, fails, and
	// must try the OTHER domain exactly once before rejection.
	vo.Submit(simpleJob("tight", 1), strategy.S1, 0)
	e.Run()
	r := vo.Results()[0]
	if r.State != StateRejected || r.Reallocations != 1 {
		t.Errorf("state=%v reallocs=%d, want rejected after 1 reallocation", r.State, r.Reallocations)
	}
}

func TestDefaultWorkloadThroughTracerSmoke(t *testing.T) {
	// A loaded run with the tracer on: event stream stays consistent
	// (every activate is eventually matched by evict/complete/reject).
	e := sim.New()
	gen := workload.New(workload.Default(5))
	env := gen.Environment(2)
	tr := &MemoryTracer{}
	vo := NewVO(e, env, Config{
		ExternalMeanGap: 9,
		ExternalLead:    3,
		ExternalDurLo:   4,
		ExternalDurHi:   12,
		ExternalUntil:   800,
		Tracer:          tr,
		Seed:            5,
	})
	for _, a := range gen.Flow(0, 25, 0) {
		vo.Submit(a.Job, strategy.S1, a.At)
	}
	e.Run()
	if tr.Count(EventArrive) != 25 {
		t.Errorf("arrive events = %d", tr.Count(EventArrive))
	}
	terminal := tr.Count(EventComplete) + tr.Count(EventReject)
	if terminal != 25 {
		t.Errorf("terminal events = %d, want 25", terminal)
	}
	// Each eviction must have had a preceding activation.
	if tr.Count(EventEvict) > tr.Count(EventActivate) {
		t.Error("more evictions than activations")
	}
}
