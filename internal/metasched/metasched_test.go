package metasched

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// twoDomainEnv builds a small VO environment: two domains, four tiers in
// each.
func twoDomainEnv() *resource.Environment {
	perfs := []float64{1.0, 0.5, 0.33, 0.27}
	var nodes []*resource.Node
	id := 0
	for d := 0; d < 2; d++ {
		for _, p := range perfs {
			nodes = append(nodes, resource.NewNode(resource.NodeID(id),
				fmt.Sprintf("n%d", id), p, p, fmt.Sprintf("dom-%d", d)))
			id++
		}
	}
	return resource.NewEnvironment(nodes)
}

func simpleJob(name string, deadline simtime.Time) *dag.Job {
	b := dag.NewBuilder(name).Deadline(deadline)
	b.Task("A", 2, 10)
	b.Task("B", 3, 15)
	b.Edge("d", "A", "B", 1, 5)
	return b.MustBuild()
}

func TestSingleJobCompletes(t *testing.T) {
	e := sim.New()
	env := twoDomainEnv()
	vo := NewVO(e, env, Config{})
	job := simpleJob("j1", 50)
	vo.Submit(job, strategy.S1, 5)
	e.Run()

	results := vo.Results()
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.State != StateCompleted {
		t.Fatalf("state = %v", r.State)
	}
	if !r.Admissible {
		t.Error("job not admissible")
	}
	if r.Finish > 50+5 {
		t.Errorf("finish = %d beyond release+deadline window", r.Finish)
	}
	if r.StartDeviation() != 0 {
		t.Errorf("deviation = %d with no dynamics", r.StartDeviation())
	}
	if len(r.TTLs) != 1 || r.TTLs[0] != r.Finish-r.Arrival {
		t.Errorf("TTLs = %v (finish %d, arrival %d)", r.TTLs, r.Finish, r.Arrival)
	}
	if r.Fallbacks != 0 || r.Reallocations != 0 {
		t.Errorf("fallbacks/reallocations = %d/%d", r.Fallbacks, r.Reallocations)
	}
	if len(r.Placements) != 2 {
		t.Errorf("placements = %d", len(r.Placements))
	}
	if r.MeanTaskTime <= 0 || r.Cost <= 0 || r.BareCF <= 0 {
		t.Errorf("metrics not recorded: %+v", r)
	}
}

func TestDeadlineZeroRejected(t *testing.T) {
	e := sim.New()
	env := twoDomainEnv()
	vo := NewVO(e, env, Config{})
	// Deadline 1 cannot fit task A (2 ticks minimum).
	vo.Submit(simpleJob("tight", 1), strategy.S1, 0)
	e.Run()
	r := vo.Results()[0]
	if r.State != StateRejected {
		t.Fatalf("state = %v, want rejected", r.State)
	}
	if r.Admissible {
		t.Error("inadmissible job marked admissible")
	}
	// The metascheduler tried the other domain before giving up.
	if r.Reallocations != 1 {
		t.Errorf("reallocations = %d, want 1", r.Reallocations)
	}
}

func TestMetaschedulerBalancesDomains(t *testing.T) {
	e := sim.New()
	env := twoDomainEnv()
	vo := NewVO(e, env, Config{})
	vo.Submit(simpleJob("a", 100), strategy.S1, 0)
	vo.Submit(simpleJob("b", 100), strategy.S1, 0)
	e.Run()
	doms := map[string]int{}
	for _, r := range vo.Results() {
		if r.State != StateCompleted {
			t.Fatalf("job %s state %v", r.Job.Name, r.State)
		}
		doms[r.Domain]++
	}
	if len(doms) != 2 {
		t.Errorf("both jobs landed in the same domain: %v", doms)
	}
}

func TestAllTypesRunThroughVO(t *testing.T) {
	for _, typ := range strategy.AllTypes {
		e := sim.New()
		env := twoDomainEnv()
		vo := NewVO(e, env, Config{})
		vo.Submit(simpleJob("j-"+typ.String(), 60), typ, 0)
		e.Run()
		r := vo.Results()[0]
		if r.State != StateCompleted {
			t.Errorf("%v: state = %v", typ, r.State)
		}
		if r.Type != typ {
			t.Errorf("recorded type = %v", r.Type)
		}
	}
}

func TestExternalLoadCausesDynamics(t *testing.T) {
	// Aggressive background load against a steady flow: every job must
	// reach a terminal state, and at least some dynamics (fallbacks,
	// reallocations or eviction TTLs) must appear.
	e := sim.New()
	gen := workload.New(workload.Default(41))
	env := gen.Environment(3)
	vo := NewVO(e, env, Config{
		ExternalMeanGap: 4,
		ExternalLead:    3,
		ExternalDurLo:   5,
		ExternalDurHi:   20,
		ExternalUntil:   2500,
		Seed:            41,
	})
	flow := gen.Flow(0, 60, 0)
	for _, a := range flow {
		vo.Submit(a.Job, strategy.S2, a.At)
	}
	e.Run()
	results := vo.Results()
	if len(results) != 60 {
		t.Fatalf("results = %d, want 60", len(results))
	}
	dynamics := 0
	for _, r := range results {
		if r.State != StateCompleted && r.State != StateRejected {
			t.Fatalf("job %s in non-terminal state %v", r.Job.Name, r.State)
		}
		dynamics += r.Fallbacks + r.Reallocations
		if r.State == StateCompleted && r.StartDeviation() > 0 && len(r.TTLs) < 2 {
			t.Errorf("job %s deviated without recorded evictions", r.Job.Name)
		}
	}
	if dynamics == 0 {
		t.Error("no fallbacks or reallocations under aggressive external load")
	}
}

func TestCompletedPlacementsNeverOverlap(t *testing.T) {
	e := sim.New()
	gen := workload.New(workload.Default(17))
	env := gen.Environment(3)
	vo := NewVO(e, env, Config{
		ExternalMeanGap: 10,
		ExternalLead:    2,
		ExternalDurLo:   3,
		ExternalDurHi:   10,
		ExternalUntil:   1500,
		Seed:            17,
	})
	for _, a := range gen.Flow(1, 40, 0) {
		vo.Submit(a.Job, strategy.S1, a.At)
	}
	e.Run()
	type slot struct {
		iv  simtime.Interval
		job string
	}
	byNode := map[resource.NodeID][]slot{}
	for _, r := range vo.Results() {
		if r.State != StateCompleted {
			continue
		}
		for _, p := range r.Placements {
			byNode[p.Node] = append(byNode[p.Node], slot{p.Window, r.Job.Name})
		}
	}
	for n, slots := range byNode {
		for i := range slots {
			for j := i + 1; j < len(slots); j++ {
				if slots[i].iv.Overlaps(slots[j].iv) {
					t.Fatalf("node %d: %s %v overlaps %s %v", n,
						slots[i].job, slots[i].iv, slots[j].job, slots[j].iv)
				}
			}
		}
	}
}

func TestNodeLoadWithinBounds(t *testing.T) {
	e := sim.New()
	gen := workload.New(workload.Default(23))
	env := gen.Environment(2)
	vo := NewVO(e, env, Config{})
	for _, a := range gen.Flow(0, 30, 0) {
		vo.Submit(a.Job, strategy.S3, a.At)
	}
	end := e.Run()
	load := vo.NodeLoad(simtime.Interval{Start: 0, End: end + 1})
	if len(load) == 0 {
		t.Fatal("no load recorded")
	}
	for g, v := range load {
		if v < 0 || v > 1 {
			t.Errorf("group %v load = %v", g, v)
		}
	}
}

func TestDeterministicEvictionFallback(t *testing.T) {
	// One domain: a fast node and a slow node. The job's cheapest plan
	// lands on the cheap slow node, delayed behind a pre-existing external
	// reservation; a second external then claims the planned window. The
	// job must fall back to another supporting level and still complete.
	e := sim.New()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "fast", 1.0, 1.0, "dom"),
		resource.NewNode(1, "slow", 0.27, 0.27, "dom"),
	})
	vo := NewVO(e, env, Config{Objective: criticalworks.MinCost})

	// The slow node is busy [0,10): the plan must start at 10 — in the
	// future, so the job stays in StatePlanned and is evictable.
	if !vo.InjectExternal(1, simtime.Interval{Start: 0, End: 10}) {
		t.Fatal("pre-load rejected")
	}
	b := dag.NewBuilder("victim").Deadline(80)
	b.Task("T", 4, 16) // level 4: 16 ticks on the slow node, CF ceil(16/16)=1
	job := b.MustBuild()
	vo.Submit(job, strategy.S1, 0)

	evicted := false
	e.At(2, "attack", func() {
		// Claim [12,30) on the slow node: overlaps the planned [10,26).
		evicted = vo.InjectExternal(1, simtime.Interval{Start: 12, End: 30})
	})
	e.Run()

	if !evicted {
		t.Fatal("attack external was rejected — eviction path not exercised")
	}
	r := vo.Results()[0]
	if r.State != StateCompleted {
		t.Fatalf("state = %v", r.State)
	}
	if r.Fallbacks == 0 {
		t.Errorf("no fallback recorded: %+v", r)
	}
	if len(r.TTLs) != 2 {
		t.Errorf("TTLs = %v, want evicted plan + survivor", r.TTLs)
	}
	if r.StartDeviation() == 0 {
		t.Error("fallback did not register a start deviation")
	}
	if r.InitialLevel == r.FinalLevel && r.ActualStart == r.PlannedStart {
		t.Errorf("fallback changed nothing: %+v", r)
	}
}

func TestStateString(t *testing.T) {
	if StatePlanned.String() != "planned" || StateExecuting.String() != "executing" ||
		StateCompleted.String() != "completed" || StateRejected.String() != "rejected" {
		t.Error("state names changed")
	}
}

func TestQuickVODeterministicAndTerminal(t *testing.T) {
	run := func(seed uint64) (completed, rejected int, cost float64) {
		e := sim.New()
		gen := workload.New(workload.Default(seed))
		env := gen.Environment(2)
		vo := NewVO(e, env, Config{
			ExternalMeanGap: 8,
			ExternalLead:    2,
			ExternalDurLo:   2,
			ExternalDurHi:   12,
			ExternalUntil:   600,
			Seed:            seed,
		})
		for _, a := range gen.Flow(0, 15, 0) {
			vo.Submit(a.Job, strategy.AllTypes[seed%4], a.At)
		}
		e.Run()
		for _, r := range vo.Results() {
			switch r.State {
			case StateCompleted:
				completed++
				cost += r.Cost
			case StateRejected:
				rejected++
			default:
				return -1, -1, 0
			}
		}
		return completed, rejected, cost
	}
	f := func(seed uint64) bool {
		c1, r1, cost1 := run(seed)
		c2, r2, cost2 := run(seed)
		if c1 < 0 || c1+r1 != 15 {
			return false
		}
		return c1 == c2 && r1 == r2 && cost1 == cost2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestSubmitGuards(t *testing.T) {
	e := sim.New()
	vo := NewVO(e, twoDomainEnv(), Config{})
	if err := vo.Submit(simpleJob("dup", 50), strategy.S1, 5); err != nil {
		t.Fatalf("first submission rejected: %v", err)
	}
	if err := vo.Submit(simpleJob("dup", 60), strategy.S2, 7); err == nil {
		t.Error("duplicate job name accepted")
	}
	e.Run()
	// Only one "dup" passed through the pipeline.
	if n := len(vo.Results()); n != 1 {
		t.Fatalf("got %d results, want 1", n)
	}

	// Arrivals in the engine's past must error, not panic.
	if err := vo.Submit(simpleJob("late", 90), strategy.S1, e.Now()-1); err == nil {
		t.Error("past arrival accepted")
	}

	vo.Close()
	if err := vo.Submit(simpleJob("after", 200), strategy.S1, e.Now()+10); err == nil {
		t.Error("submission after Close accepted")
	}
	vo.Close() // idempotent
}

func TestDomainFilterExcludesDomains(t *testing.T) {
	// With dom-0 vetoed, every job must land in dom-1; with both vetoed the
	// job is rejected on arrival.
	e := sim.New()
	vo := NewVO(e, twoDomainEnv(), Config{
		DomainFilter: func(d string) bool { return d != "dom-0" },
	})
	if err := vo.Submit(simpleJob("a", 100), strategy.S1, 0); err != nil {
		t.Fatal(err)
	}
	e.Run()
	r := vo.Results()[0]
	if r.State != StateCompleted || r.Domain != "dom-1" {
		t.Fatalf("job ended %v in %q, want completed in dom-1", r.State, r.Domain)
	}

	e2 := sim.New()
	vo2 := NewVO(e2, twoDomainEnv(), Config{
		DomainFilter: func(string) bool { return false },
	})
	if err := vo2.Submit(simpleJob("b", 100), strategy.S1, 0); err != nil {
		t.Fatal(err)
	}
	e2.Run()
	if vo2.Results()[0].State != StateRejected {
		t.Fatal("job placed despite every domain vetoed")
	}
}

func TestBuildCtxCancellationRejectsJob(t *testing.T) {
	// A job whose build context is already cancelled can never activate a
	// strategy: it must be rejected cleanly, not wedge or panic.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := sim.New()
	vo := NewVO(e, twoDomainEnv(), Config{
		BuildCtx: func(name string) context.Context {
			if name == "doomed" {
				return ctx
			}
			return context.Background()
		},
	})
	if err := vo.Submit(simpleJob("doomed", 100), strategy.S1, 0); err != nil {
		t.Fatal(err)
	}
	if err := vo.Submit(simpleJob("fine", 100), strategy.S1, 0); err != nil {
		t.Fatal(err)
	}
	e.Run()
	byName := map[string]State{}
	for _, r := range vo.Results() {
		byName[r.Job.Name] = r.State
	}
	if byName["doomed"] != StateRejected {
		t.Errorf("doomed job ended %v, want rejected", byName["doomed"])
	}
	if byName["fine"] != StateCompleted {
		t.Errorf("unaffected job ended %v, want completed", byName["fine"])
	}
}
