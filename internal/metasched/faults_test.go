package metasched

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/faults"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// faultyConfig is an aggressive-but-survivable fault setup used by the
// stochastic tests below.
func faultyConfig(seed uint64, until simtime.Time) faults.Config {
	return faults.Config{
		MTBF:             150,
		MTTR:             15,
		DomainOutageProb: 0.2,
		TaskFailRate:     0.1,
		MaxRetries:       2,
		Until:            until,
		Seed:             seed,
	}
}

func TestZeroFaultConfigMatchesSeedBehavior(t *testing.T) {
	// A VO with an explicitly zero fault config must produce a trace
	// byte-identical to one predating fault support: no extra events, no
	// shifted randomness.
	run := func(cfg Config) []Event {
		e := sim.New()
		gen := workload.New(workload.Default(11))
		env := gen.Environment(2)
		var tr MemoryTracer
		cfg.ExternalMeanGap = 8
		cfg.ExternalLead = 2
		cfg.ExternalDurLo = 2
		cfg.ExternalDurHi = 12
		cfg.ExternalUntil = 600
		cfg.Seed = 11
		cfg.Tracer = &tr
		vo := NewVO(e, env, cfg)
		for _, a := range gen.Flow(0, 20, 0) {
			vo.Submit(a.Job, strategy.S1, a.At)
		}
		e.Run()
		return tr.Events()
	}
	plain := run(Config{})
	zeroed := run(Config{Faults: faults.Config{}})
	if !reflect.DeepEqual(plain, zeroed) {
		t.Fatal("zero fault config changed the event stream")
	}
	for _, ev := range plain {
		switch ev.Kind {
		case EventNodeDown, EventNodeUp, EventTaskFailed, EventRetry:
			t.Fatalf("fault event %v in a fault-free run", ev.Kind)
		}
	}
}

func TestNodeOutageEvictsPlannedJob(t *testing.T) {
	// One domain, three tiers. The job's cheapest plan lands on the
	// discounted slow node, delayed behind an external reservation; the
	// node then crashes before the job starts. The plan must be evicted
	// and the job must recover on an up node of another tier.
	e := sim.New()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "fast", 1.0, 1.0, "dom"),
		resource.NewNode(1, "medium", 0.5, 0.5, "dom"),
		resource.NewNode(2, "slow", 0.27, 0.2, "dom"), // discounted: strictly cheapest
	})
	var tr MemoryTracer
	vo := NewVO(e, env, Config{Objective: criticalworks.MinCost, Tracer: &tr})

	// Delay the slow node so the plan starts in the future (evictable).
	if !vo.InjectExternal(2, simtime.Interval{Start: 0, End: 10}) {
		t.Fatal("pre-load rejected")
	}
	b := dag.NewBuilder("victim").Deadline(80)
	b.Task("T", 4, 16)
	vo.Submit(b.MustBuild(), strategy.S1, 0)

	// Crash the slow node at t=2, before the planned start at t=10.
	e.At(2, "crash", func() {
		vo.outageDown(faults.Outage{Node: 2, Interval: simtime.Interval{Start: 2, End: 40}})
	})
	e.At(40, "repair", func() {
		vo.outageUp(faults.Outage{Node: 2, Interval: simtime.Interval{Start: 2, End: 40}})
	})
	e.Run()

	r := vo.Results()[0]
	if r.State != StateCompleted {
		t.Fatalf("state = %v", r.State)
	}
	if r.TaskFailures != 0 {
		t.Errorf("planned job recorded %d task failures", r.TaskFailures)
	}
	if r.Fallbacks == 0 {
		t.Error("no fallback after outage eviction")
	}
	if tr.Count(EventNodeDown) != 1 || tr.Count(EventEvict) != 1 {
		t.Errorf("events: node-down=%d evict=%d", tr.Count(EventNodeDown), tr.Count(EventEvict))
	}
	// The recovery plan must avoid the down node.
	for _, p := range r.Placements {
		if p.Node == 2 {
			t.Errorf("task placed on the crashed node: %+v", p)
		}
	}
	if env.Node(2).Downtime(e.Now()) != 38 {
		t.Errorf("downtime = %d, want 38", env.Node(2).Downtime(e.Now()))
	}
}

func TestNodeOutageKillsRunningJobAndRetries(t *testing.T) {
	// The job starts immediately on the only fast node; the node crashes
	// mid-run. The job must record a task failure, retry with backoff and
	// complete after the node recovers.
	e := sim.New()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "fast", 1.0, 1.0, "dom"),
	})
	var tr MemoryTracer
	vo := NewVO(e, env, Config{
		Tracer: &tr,
		// Backoff 5 outlasts the 4-tick outage: the single retry lands
		// after the node is repaired.
		Faults: faults.Config{TaskFailRate: 0, MaxRetries: 3, RetryBackoff: 5},
	})
	b := dag.NewBuilder("runner").Deadline(60)
	b.Task("T", 10, 20)
	vo.Submit(b.MustBuild(), strategy.S1, 0)

	out := faults.Outage{Node: 0, Interval: simtime.Interval{Start: 4, End: 8}}
	e.At(4, "crash", func() { vo.outageDown(out) })
	e.At(8, "repair", func() { vo.outageUp(out) })
	e.Run()

	r := vo.Results()[0]
	if r.State != StateCompleted {
		t.Fatalf("state = %v", r.State)
	}
	if r.TaskFailures != 1 || r.Retries != 1 {
		t.Errorf("failures/retries = %d/%d, want 1/1", r.TaskFailures, r.Retries)
	}
	if r.Downtime <= 0 {
		t.Errorf("downtime = %d, want > 0", r.Downtime)
	}
	if tr.Count(EventTaskFailed) != 1 || tr.Count(EventRetry) != 1 {
		t.Errorf("events: task-failed=%d retry=%d", tr.Count(EventTaskFailed), tr.Count(EventRetry))
	}
	stats := vo.FaultStats()
	if stats.TaskFailures != 1 || stats.Retries != 1 || stats.Recoveries != 1 {
		t.Errorf("fault stats = %+v", stats)
	}
	// The retry fired after the backoff: the job's actual start moved
	// past the repair at t=8.
	if r.ActualStart < 8 {
		t.Errorf("actual start %d precedes the repair", r.ActualStart)
	}
}

func TestDomainOutageForcesReallocation(t *testing.T) {
	// Two domains; the victim's domain goes fully dark for a long window
	// shortly after the job starts there. In-domain recovery is impossible
	// (every candidate down), so the metascheduler must move the job.
	e := sim.New()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "a-fast", 1.0, 1.0, "dom-a"),
		resource.NewNode(1, "a-slow", 0.27, 0.27, "dom-a"),
		resource.NewNode(2, "b-fast", 1.0, 1.0, "dom-b"),
		resource.NewNode(3, "b-slow", 0.27, 0.27, "dom-b"),
	})
	var tr MemoryTracer
	vo := NewVO(e, env, Config{Objective: criticalworks.MinCost, Tracer: &tr})

	// Pre-load dom-b so dom-a is the least-loaded domain and takes the
	// job; the blackout then forces it back out to dom-b.
	if !vo.InjectExternal(2, simtime.Interval{Start: 0, End: 8}) ||
		!vo.InjectExternal(3, simtime.Interval{Start: 0, End: 8}) {
		t.Fatal("pre-load rejected")
	}
	b := dag.NewBuilder("mover").Deadline(100)
	b.Task("T", 4, 16)
	vo.Submit(b.MustBuild(), strategy.S1, 0)

	out := faults.Outage{Node: 0, Domain: "dom-a", Interval: simtime.Interval{Start: 2, End: 90}}
	e.At(2, "blackout", func() { vo.outageDown(out) })
	e.At(90, "repair", func() { vo.outageUp(out) })
	e.Run()

	r := vo.Results()[0]
	if r.State != StateCompleted {
		t.Fatalf("state = %v", r.State)
	}
	if r.Domain != "dom-b" {
		t.Errorf("final domain = %s, want dom-b", r.Domain)
	}
	if r.Reallocations != 1 {
		t.Errorf("reallocations = %d, want 1", r.Reallocations)
	}
	if vo.FaultStats().DomainOutages != 1 {
		t.Errorf("domain outages = %d", vo.FaultStats().DomainOutages)
	}
}

func TestMidRunTaskFailureFromRate(t *testing.T) {
	// With TaskFailRate 1 every activation that runs ≥ 2 ticks dies; with
	// MaxRetries 0 the job must exhaust levels/domains and reject.
	e := sim.New()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "fast", 1.0, 1.0, "dom"),
	})
	vo := NewVO(e, env, Config{
		Faults: faults.Config{TaskFailRate: 1, MaxRetries: 0, Seed: 1},
	})
	b := dag.NewBuilder("doomed").Deadline(50)
	b.Task("T", 10, 20)
	vo.Submit(b.MustBuild(), strategy.S1, 0)
	e.Run()

	r := vo.Results()[0]
	if r.State != StateRejected {
		t.Fatalf("state = %v, want rejected (every run dies)", r.State)
	}
	if r.TaskFailures == 0 {
		t.Error("no task failures recorded")
	}
	if r.Retries != 0 {
		t.Errorf("retries = %d with MaxRetries 0", r.Retries)
	}
}

// runFaultyVO executes one full faulty run and returns the JSONL trace
// bytes and results.
func runFaultyVO(t *testing.T, seed uint64) ([]byte, []*JobResult) {
	t.Helper()
	e := sim.New()
	gen := workload.New(workload.Default(seed))
	env := gen.Environment(2)
	var buf bytes.Buffer
	tracer := NewJSONLTracer(&buf)
	flow := gen.Flow(0, 30, 0)
	until := flow[len(flow)-1].At + 200
	vo := NewVO(e, env, Config{
		ExternalMeanGap: 10,
		ExternalLead:    3,
		ExternalDurLo:   4,
		ExternalDurHi:   15,
		ExternalUntil:   until,
		Objective:       criticalworks.MinCost,
		Seed:            seed,
		Tracer:          tracer,
		Faults:          faultyConfig(seed, until),
	})
	for _, a := range flow {
		vo.Submit(a.Job, strategy.S2, a.At)
	}
	e.Run()
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), vo.Results()
}

func TestFaultInjectionDeterministic(t *testing.T) {
	// Two runs with the same seed and fault schedule must produce
	// byte-identical trace streams and identical JobResult records.
	trace1, res1 := runFaultyVO(t, 5)
	trace2, res2 := runFaultyVO(t, 5)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("trace streams differ across identical faulty runs")
	}
	if len(res1) != len(res2) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(res2))
	}
	for i := range res1 {
		a, b := *res1[i], *res2[i]
		// Pointer-valued fields compare by content.
		if a.Job.Name != b.Job.Name || a.State != b.State || a.Finish != b.Finish ||
			a.Cost != b.Cost || a.TaskFailures != b.TaskFailures || a.Retries != b.Retries ||
			a.Downtime != b.Downtime || a.Fallbacks != b.Fallbacks ||
			a.Reallocations != b.Reallocations || !reflect.DeepEqual(a.TTLs, b.TTLs) ||
			!reflect.DeepEqual(a.Placements, b.Placements) {
			t.Fatalf("result %d differs:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

func TestFaultyRunAllJobsTerminal(t *testing.T) {
	_, results := runFaultyVO(t, 9)
	if len(results) != 30 {
		t.Fatalf("results = %d, want 30", len(results))
	}
	failures := 0
	for _, r := range results {
		if r.State != StateCompleted && r.State != StateRejected {
			t.Fatalf("job %s in non-terminal state %v", r.Job.Name, r.State)
		}
		failures += r.TaskFailures
		if r.Downtime < 0 {
			t.Errorf("job %s negative downtime %d", r.Job.Name, r.Downtime)
		}
	}
	if failures == 0 {
		t.Error("aggressive fault config produced no task failures")
	}
}

func TestCompletedPlacementsAvoidVoidedWindows(t *testing.T) {
	// No completed job's task window may overlap an outage of the node it
	// ran on: crashes void those reservations and force replanning.
	_, results := runFaultyVO(t, 13)
	gen := workload.New(workload.Default(13))
	env := gen.Environment(2)
	// Recompute the outage schedule the run used.
	flow := gen.Flow(0, 30, 0)
	until := flow[len(flow)-1].At + 200
	outages := faults.Schedule(faultyConfig(13, until), env)
	downs := map[resource.NodeID][]simtime.Interval{}
	for _, o := range outages {
		ids := []resource.NodeID{o.Node}
		if o.Domain != "" {
			ids = ids[:0]
			for _, n := range env.ByDomain(o.Domain) {
				ids = append(ids, n.ID)
			}
		}
		for _, id := range ids {
			downs[id] = append(downs[id], o.Interval)
		}
	}
	for _, r := range results {
		if r.State != StateCompleted {
			continue
		}
		for _, p := range r.Placements {
			for _, iv := range downs[p.Node] {
				// Only a window still unfinished at outage start would
				// have been voided; overlap implies the run kept a
				// reservation through a crash.
				if p.Window.Overlaps(iv) && p.Window.End > iv.Start {
					t.Errorf("job %s task window %v on node %d overlaps outage %v",
						r.Job.Name, p.Window, p.Node, iv)
				}
			}
		}
	}
}
