package metasched

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/resource"
	"repro/internal/simtime"
)

// fuzzProposal is one decoded adversarial proposal with its arbiter key.
type fuzzProposal struct {
	key  commitKey
	prop *resource.Proposal
}

// decodeCommitInput turns fuzz bytes into a set of proposals: 6 bytes per
// claim — node, start, length, proposal slot, priority, read-set poison.
// Claims sharing a slot form one proposal; windows freely overlap each
// other, existing load and the other proposals (that is the point), and
// the poison byte fabricates a stale-or-lying generation read-set.
func decodeCommitInput(data []byte) []*fuzzProposal {
	byIdx := map[int]*fuzzProposal{}
	for off := 0; off+6 <= len(data); off += 6 {
		b := data[off : off+6]
		idx := int(b[3] % 8)
		p, ok := byIdx[idx]
		if !ok {
			p = &fuzzProposal{
				key:  commitKey{seq: idx, name: fmt.Sprintf("f%d", idx)},
				prop: &resource.Proposal{Reads: map[resource.NodeID]uint64{}},
			}
			byIdx[idx] = p
		}
		p.key.prio = int(b[4] % 4)
		node := resource.NodeID(b[0] % 4)
		start := simtime.Time(b[1] % 64)
		p.prop.Claims = append(p.prop.Claims, resource.Claim{
			Node:   node,
			Window: simtime.Interval{Start: start, End: start + simtime.Time(b[2]%16)}, // may be empty: adversarial
			Owner:  resource.Owner{Job: p.key.name, Task: fmt.Sprintf("t%d", off/6)},
		})
		// The read-set lies freely: b[5] sometimes matches the live
		// generation (an unearned fast path), sometimes not (forced
		// re-validation), and odd offsets drop the read entirely.
		if b[5]%3 != 0 {
			p.prop.Reads[node] = uint64(b[5] % 5)
		}
	}
	out := make([]*fuzzProposal, 0, len(byIdx))
	for _, p := range byIdx {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key.seq < out[j].key.seq })
	return out
}

// fuzzWorld builds the fixed pre-existing load the proposals fight over.
func fuzzWorld() map[resource.NodeID]*resource.Calendar {
	world := map[resource.NodeID]*resource.Calendar{}
	for id := resource.NodeID(0); id < 4; id++ {
		world[id] = resource.NewCalendar()
	}
	ext := resource.External
	// Fig. 2-shaped background: staggered busy windows per node.
	_ = world[0].Reserve(simtime.Interval{Start: 0, End: 10}, ext)
	_ = world[1].Reserve(simtime.Interval{Start: 10, End: 20}, ext)
	_ = world[2].Reserve(simtime.Interval{Start: 20, End: 30}, ext)
	_ = world[3].Reserve(simtime.Interval{Start: 5, End: 15}, ext)
	return world
}

// FuzzCommitConflicts feeds adversarial overlapping proposals to the
// commit arbiter's ordering and resource.Proposal.Commit, asserting:
//
//   - the collision-resolution order is total (any two distinct keys
//     compare in exactly one direction) and the sort is deterministic,
//   - committing the same proposal set twice over identical worlds gives
//     identical outcomes and identical final books (determinism per seed),
//   - the books stay pairwise disjoint and no commit is partial,
//   - two committed proposals never hold overlapping windows,
//   - nothing ever panics, whatever the bytes say.
func FuzzCommitConflicts(f *testing.F) {
	// Fig. 2-like corpus: three proposals whose claims chain across nodes
	// 0–2 at the worked example's window boundaries.
	f.Add([]byte{
		0, 10, 10, 0, 2, 1,
		1, 20, 10, 0, 2, 1,
		1, 20, 10, 1, 1, 0,
		2, 30, 10, 1, 1, 4,
		0, 10, 5, 2, 3, 2,
	})
	// Fig. 4-like corpus: dense same-node contention — every proposal
	// wants the same early window on node 3 plus a private tail.
	f.Add([]byte{
		3, 15, 10, 0, 0, 0,
		3, 15, 10, 1, 1, 1,
		3, 15, 10, 2, 2, 2,
		3, 40, 8, 0, 0, 3,
		3, 50, 8, 1, 1, 4,
		3, 60, 8, 2, 2, 5,
	})
	// Degenerate claims: empty windows, unknown-node poison via modulo
	// wrap, duplicated claims inside one proposal.
	f.Add([]byte{
		0, 5, 0, 0, 0, 0,
		0, 5, 0, 0, 0, 0,
		2, 63, 15, 7, 3, 4,
		2, 63, 15, 7, 3, 4,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		props := decodeCommitInput(data)
		if len(props) == 0 {
			return
		}

		// Totality of the arbiter's order.
		for i := range props {
			for j := range props {
				if i == j {
					continue
				}
				ab := commitBefore(props[i].key, props[j].key)
				ba := commitBefore(props[j].key, props[i].key)
				if ab && ba {
					t.Fatalf("order not antisymmetric: %+v vs %+v", props[i].key, props[j].key)
				}
				if props[i].key != props[j].key && !ab && !ba {
					t.Fatalf("order not total: %+v vs %+v", props[i].key, props[j].key)
				}
			}
		}

		run := func() ([]bool, map[resource.NodeID][]resource.Reservation) {
			world := fuzzWorld()
			view := func(id resource.NodeID) *resource.Calendar { return world[id] }
			order := make([]int, len(props))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				return commitBefore(props[order[a]].key, props[order[b]].key)
			})
			committed := make([]bool, len(props))
			for _, i := range order {
				committed[i] = len(props[i].prop.Commit(view)) == 0
			}
			books := map[resource.NodeID][]resource.Reservation{}
			for id, c := range world {
				books[id] = c.Reservations()
			}
			return committed, books
		}

		c1, b1 := run()
		c2, b2 := run()
		if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(b1, b2) {
			t.Fatal("identical worlds, identical proposals, different outcomes")
		}

		// Books disjoint; commits all-or-nothing.
		for id, res := range b1 {
			for i := 1; i < len(res); i++ {
				if res[i-1].Interval.Overlaps(res[i].Interval) {
					t.Fatalf("node %d books overlap after arbitration: %v / %v", id, res[i-1], res[i])
				}
			}
		}
		inBooks := func(cl resource.Claim) bool {
			for _, r := range b1[cl.Node] {
				if r.Interval == cl.Window && r.Owner == cl.Owner {
					return true
				}
			}
			return false
		}
		for i, p := range props {
			for _, cl := range p.prop.Claims {
				if got := inBooks(cl); got != c1[i] {
					// Duplicate claims within one committed proposal both
					// match the same reservation, so presence can only be
					// asserted one way: a committed claim must be present.
					if c1[i] && !got {
						t.Fatalf("proposal %d committed but claim %v missing", i, cl)
					}
					if !c1[i] && got {
						t.Fatalf("proposal %d failed but claim %v applied", i, cl)
					}
				}
			}
		}
		// Winners never overlap each other.
		for i := range props {
			for j := i + 1; j < len(props); j++ {
				if !c1[i] || !c1[j] {
					continue
				}
				for _, a := range props[i].prop.Claims {
					for _, b := range props[j].prop.Claims {
						if a.Node == b.Node && a.Window.Overlaps(b.Window) {
							t.Fatalf("proposals %d and %d both committed overlapping claims", i, j)
						}
					}
				}
			}
		}
	})
}
