package metasched

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/resource"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// EventKind classifies a trace event.
type EventKind string

// The VO lifecycle events.
const (
	EventArrive     EventKind = "arrive"
	EventActivate   EventKind = "activate"
	EventStart      EventKind = "start"
	EventEvict      EventKind = "evict"
	EventFallback   EventKind = "fallback"
	EventReallocate EventKind = "reallocate"
	EventComplete   EventKind = "complete"
	EventReject     EventKind = "reject"
	EventExternal   EventKind = "external"

	// Fault-injection events (see internal/faults). EventNodeDown/Up mark
	// outage boundaries (Domain set on whole-domain outages); EventTaskFailed
	// records a running job losing a task; EventRetry records its
	// backoff-delayed recovery attempt (Level carries the attempt number,
	// Start the scheduled recovery time).
	EventNodeDown   EventKind = "node-down"
	EventNodeUp     EventKind = "node-up"
	EventTaskFailed EventKind = "task-failed"
	EventRetry      EventKind = "retry"
)

// Event is one VO occurrence, suitable for JSONL export and offline
// analysis of a run.
type Event struct {
	At     simtime.Time `json:"at"`
	Kind   EventKind    `json:"kind"`
	Job    string       `json:"job,omitempty"`
	Domain string       `json:"domain,omitempty"`
	Level  int          `json:"level,omitempty"`
	Node   int          `json:"node,omitempty"`
	Start  simtime.Time `json:"start,omitempty"`
	End    simtime.Time `json:"end,omitempty"`
	Detail string       `json:"detail,omitempty"`
}

// Tracer receives VO events as they happen. Implementations must be cheap;
// they run inside the simulation loop.
type Tracer interface {
	Trace(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Trace implements Tracer.
func (f TracerFunc) Trace(e Event) { f(e) }

// JSONLTracer streams events as JSON lines to a writer. Safe for
// concurrent use, though the simulation itself is single-threaded.
type JSONLTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLTracer wraps w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{enc: json.NewEncoder(w)}
}

// Trace implements Tracer; the first write error sticks and is reported by
// Err.
func (t *JSONLTracer) Trace(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(e)
}

// Err returns the first write error, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// MemoryTracer collects events in memory, for tests and small runs.
type MemoryTracer struct {
	events []Event
}

// Trace implements Tracer.
func (t *MemoryTracer) Trace(e Event) { t.events = append(t.events, e) }

// Events returns a copy of everything collected so far.
func (t *MemoryTracer) Events() []Event { return append([]Event(nil), t.events...) }

// Count returns how many events of the kind were seen (all kinds when
// kind is empty).
func (t *MemoryTracer) Count(kind EventKind) int {
	n := 0
	for _, e := range t.events {
		if kind == "" || e.Kind == kind {
			n++
		}
	}
	return n
}

// trace emits an event if a tracer is configured. The telemetry counter
// fires regardless of the Tracer, so /metrics shows lifecycle rates even
// when nobody captures the full event stream.
func (vo *VO) trace(kind EventKind, job, domain string, f func(*Event)) {
	if vo.cfg.Telemetry != nil {
		vo.cfg.Telemetry.Counter("grid_metasched_events_total",
			"VO lifecycle events by kind", telemetry.L("kind", string(kind))).Inc()
	}
	if vo.cfg.Tracer == nil {
		return
	}
	e := Event{At: vo.engine.Now(), Kind: kind, Job: job, Domain: domain}
	if f != nil {
		f(&e)
	}
	vo.cfg.Tracer.Trace(e)
}

// traceExternal records a booked background reservation.
func (vo *VO) traceExternal(node resource.NodeID, iv simtime.Interval) {
	vo.trace(EventExternal, "", "", func(e *Event) {
		e.Node = int(node)
		e.Start, e.End = iv.Start, iv.End
	})
}
