package metasched

import (
	"context"
	"sort"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/parallel"
	"repro/internal/resource"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// This file implements shared-state optimistic concurrent placement
// (DESIGN.md §12). With Config.Placers > 1, jobs arriving at the same
// tick form a batch. Each round of a batch:
//
//  1. takes one versioned snapshot of every calendar
//     (criticalworks.SnapshotVersioned — the shared state),
//  2. builds every job's strategy concurrently against that snapshot
//     (up to Placers goroutines; builds are pure functions of the
//     snapshot, so the parallelism cannot leak into the results),
//  3. commits sequentially in the arbiter's total order — the paper's
//     collision-resolution rule: priority first, then submission
//     order — validating each plan's read-set (calendar generations)
//     against the live books via resource.Proposal,
//  4. carries commit losers into the next round against refreshed
//     state; after PlacerRounds rounds the stragglers take the
//     guaranteed sequential path (JobManager.adopt), which cannot
//     conflict because it holds the only writer.
//
// The placers ≤ 1 configuration never reaches this file: Submit
// schedules the classic per-job arrival events and the run is
// byte-identical to the single-writer scheduler.

// pendingArrival is one same-tick submission waiting for its batch event.
type pendingArrival struct {
	job  *dag.Job
	typ  strategy.Type
	prio int
	seq  int
}

// placerJob is one batch member still looking for a committed plan.
type placerJob struct {
	aj      *activeJob
	prio    int
	seq     int
	initial bool // first generation defines the admissibility record
}

func (w *placerJob) key() commitKey {
	return commitKey{prio: w.prio, seq: w.seq, name: w.aj.result.Job.Name}
}

// commitKey orders proposals at the commit step. The order is total:
// any two distinct submissions differ in seq, and the name breaks ties
// for synthetic keys (fuzzing) that reuse a seq.
type commitKey struct {
	prio int
	seq  int
	name string
}

// commitBefore is the arbiter's collision-resolution order: higher
// priority first (QoS), then earlier submission, then job name.
func commitBefore(a, b commitKey) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.name < b.name
}

// placerMetrics holds the optimistic-commit counters; all nil (and every
// observation a no-op) unless telemetry is enabled with Placers > 1.
type placerMetrics struct {
	commits   *telemetry.Counter
	conflicts *telemetry.Counter
	retries   *telemetry.Counter
	fallbacks *telemetry.Counter
}

func (pm *placerMetrics) register(reg *telemetry.Registry) {
	pm.commits = reg.Counter("grid_placer_commits_total",
		"placement proposals committed by the optimistic arbiter")
	pm.conflicts = reg.Counter("grid_placer_conflicts_total",
		"placement proposals refused at commit time (read-set or window conflict)")
	pm.retries = reg.Counter("grid_placer_retries_total",
		"jobs carried into another optimistic round after losing every level")
	pm.fallbacks = reg.Counter("grid_placer_sequential_fallbacks_total",
		"jobs that exhausted the optimistic rounds and placed sequentially")
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// placers returns the effective placer count (≥ 1).
func (vo *VO) placers() int {
	if vo.cfg.Placers < 1 {
		return 1
	}
	return vo.cfg.Placers
}

// liveView resolves node IDs to the live calendars for proposal commits.
func (vo *VO) liveView() resource.CalendarView {
	return func(id resource.NodeID) *resource.Calendar {
		if int(id) < 0 || int(id) >= vo.env.NumNodes() {
			return nil
		}
		return vo.env.Node(id).Calendar()
	}
}

// arriveBatch fires once per tick that has pending submissions: it runs
// the metascheduler's flow distribution for every batch member (spreading
// a batch across domains the way sequential arrivals would) and hands the
// placeable ones to the optimistic placer pool.
func (vo *VO) arriveBatch(at simtime.Time) {
	batch := vo.pending[at]
	delete(vo.pending, at)
	counts := make(map[string]int)
	work := make([]*placerJob, 0, len(batch))
	for _, p := range batch {
		m := vo.placeJobBatch(nil, counts)
		res := &JobResult{
			Job:     p.job,
			Type:    p.typ,
			Arrival: vo.engine.Now(),
			State:   StateRejected, // until proven otherwise
		}
		aj := &activeJob{
			result:   res,
			used:     make(map[resource.Tier]bool),
			triedDom: map[string]bool{},
			failedAt: -1,
		}
		if m == nil {
			vo.trace(EventArrive, p.job.Name, "", nil)
			vo.finalize(aj, StateRejected)
			continue
		}
		counts[m.domain]++
		res.Domain = m.domain
		aj.manager = m
		aj.triedDom[m.domain] = true
		if vo.cfg.Telemetry != nil {
			vo.cfg.Telemetry.Counter("grid_metasched_placements_total",
				"jobs placed by the metascheduler, per domain", telemetry.L("domain", m.domain)).Inc()
		}
		vo.trace(EventArrive, p.job.Name, m.domain, nil)
		vo.active[p.job.Name] = aj
		work = append(work, &placerJob{aj: aj, prio: p.prio, seq: p.seq, initial: true})
	}
	vo.placeConcurrent(work)
}

// placeJobBatch is placeJob with batch awareness: least-loaded placement
// also counts the jobs this batch already assigned to each domain, so a
// batch spreads out instead of piling onto the domain that was lightest
// before any of them landed. Round-robin needs no correction — the
// cursor advances per call.
func (vo *VO) placeJobBatch(except map[string]bool, counts map[string]int) *JobManager {
	if vo.cfg.Placement == PlaceRoundRobin {
		return vo.placeJob(except)
	}
	return vo.leastLoadedWith(except, counts)
}

// leastLoadedWith is leastLoaded ordered by (jobs assigned this batch,
// reserved future ticks, domain name).
func (vo *VO) leastLoadedWith(except map[string]bool, counts map[string]int) *JobManager {
	now := vo.engine.Now()
	span := simtime.Interval{Start: now, End: now + 1000}
	var best *JobManager
	var bestLoad float64
	bestCount := 0
	for _, m := range vo.managers {
		if except[m.domain] || !vo.env.DomainUp(m.domain) || !vo.domainAllowed(m.domain) {
			continue
		}
		var load float64
		for _, id := range m.pool {
			load += float64(vo.env.Node(id).Calendar().BusyIn(span))
		}
		load /= float64(len(m.pool))
		c := counts[m.domain]
		better := best == nil || c < bestCount ||
			(c == bestCount && (load < bestLoad || (load == bestLoad && m.domain < best.domain)))
		if better {
			best, bestLoad, bestCount = m, load, c
		}
	}
	return best
}

// placeConcurrent drives a batch through optimistic rounds until every
// job committed a plan, was rejected, or fell back. The sequential
// fallback is the progress guarantee: a single job cannot conflict with
// itself, and adopt is today's single-writer path.
func (vo *VO) placeConcurrent(work []*placerJob) {
	maxRounds := vo.cfg.PlacerRounds
	if maxRounds <= 0 {
		maxRounds = 3
	}
	for round := 0; len(work) > 0; round++ {
		if round >= maxRounds || len(work) == 1 {
			for _, w := range work {
				if round > 0 {
					inc(vo.pm.fallbacks)
				}
				w.aj.manager.adopt(w.aj, w.initial)
			}
			return
		}
		work = vo.placeRound(work)
	}
}

// placeRound runs one optimistic round: snapshot, concurrent strategy
// builds, then deterministic arbitration and commit. It returns the jobs
// that lost every admissible level at commit time and should retry
// against the refreshed state.
func (vo *VO) placeRound(work []*placerJob) []*placerJob {
	now := vo.engine.Now()
	snap, gens := criticalworks.SnapshotVersioned(vo.env)

	// Build contexts are acquired sequentially: the service's BuildCtx
	// hook arms per-job timers and is not required to be goroutine-safe.
	ctxs := make([]context.Context, len(work))
	for i, w := range work {
		ctxs[i] = vo.buildCtx(w.aj.result.Job.Name)
	}
	type buildOut struct {
		st  *strategy.Strategy
		err error
	}
	outs, err := parallel.Map(vo.placers(), len(work), func(i int) (buildOut, error) {
		w := work[i]
		st, gerr := w.aj.manager.gen.GenerateCtx(ctxs[i], w.aj.result.Job, w.aj.result.Type, snap, now)
		return buildOut{st: st, err: gerr}, nil
	})
	if err != nil {
		// The builders only ever return nil errors; Map can fail solely by
		// a worker panicking, which must not be swallowed.
		panic(err)
	}

	// The arbiter's total order: the paper's priority/QoS collision
	// resolution, independent of build completion order.
	order := make([]int, len(work))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return commitBefore(work[order[a]].key(), work[order[b]].key())
	})

	view := vo.liveView()
	var carry []*placerJob
	for _, i := range order {
		w, out := work[i], outs[i]
		aj := w.aj
		if out.err != nil {
			// Structural failures cannot happen for generator-produced
			// jobs; treat as rejection exactly like the sequential path.
			vo.finalize(aj, StateRejected)
			continue
		}
		st := out.st
		aj.strat = st
		aj.result.Scheduled = st.Scheduled
		aj.used = make(map[resource.Tier]bool)
		aj.result.Evaluations += st.Evaluations
		aj.result.Collisions = append(aj.result.Collisions, st.Collisions()...)
		if w.initial {
			aj.result.Admissible = st.Admissible()
			w.initial = false
		}
		if !st.Admissible() {
			vo.reallocate(aj)
			continue
		}
		// Walk the admissible levels cheapest-first, proposing each until
		// one commits. Commit losses stay in a round-local set: a level
		// blocked by this round's winners may fit next round, so it must
		// not be burned in aj.used the way activated levels are.
		tried := make(map[resource.Tier]bool)
		committed := false
		for {
			d := st.AdmissibleAfter(tried)
			if d == nil {
				break
			}
			tried[d.Level] = true
			prop := &resource.Proposal{
				Reads:  gens,
				Claims: d.Claims(st.Scheduled, aj.result.Job.Name),
			}
			if conflicts := prop.Commit(view); len(conflicts) != 0 {
				inc(vo.pm.conflicts)
				continue
			}
			inc(vo.pm.commits)
			aj.manager.activateReserved(aj, d)
			committed = true
			break
		}
		if committed {
			continue
		}
		inc(vo.pm.retries)
		carry = append(carry, w)
	}
	return carry
}
