// Package journal is an append-only, segmented write-ahead log for the
// scheduler service's job lifecycle. Every lifecycle transition (accepted,
// scheduled, completed, rejected, drained, ...) is one JSONL record with a
// per-record CRC32 and a monotonically increasing LSN; an acknowledgement
// is only sent to the client after the record is durable under the
// configured fsync policy, so a SIGKILL, OOM kill or power loss can never
// lose an accepted job.
//
// # On-disk layout
//
// A journal directory holds segment files and snapshot files:
//
//	wal-%016x.log   — JSONL records; the name is the segment's first LSN
//	snap-%016x.json — folded per-job state through the named LSN
//
// Each record line is the envelope {"crc":C,"rec":R} where C is the IEEE
// CRC32 of the exact bytes of R. Segments rotate at Options.SegmentBytes.
// Compaction folds the per-job state (terminal jobs lose their jobio wire
// payload, keeping only the ledger entry that makes the duplicate-submit
// guard durable) into a snapshot written atomically via atomicfile, then
// deletes the dead segments — so replay cost is bounded by the live job
// count plus the records since the last compaction, not by history.
//
// # Recovery semantics
//
// Replay loads the newest snapshot, then applies segment records in LSN
// order with strict +1 continuity. An invalid record (bad JSON, CRC
// mismatch, missing trailing newline) in the *final* segment is a torn
// tail: everything from it onward is discarded and, when opening for
// write, truncated away. An invalid record anywhere else is hard
// corruption and fails recovery with an error naming the file and byte
// offset — silent data loss is never an option in the middle of the log.
package journal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/jobio"
	"repro/internal/telemetry"
)

// FsyncPolicy selects how eagerly appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged record is
	// durable. The default, and the only policy under which the service's
	// exactly-once guarantee covers power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Options.FsyncInterval).
	// A crash can lose up to one interval of acknowledged records; process
	// kills (SIGKILL, OOM) lose nothing because appends still hit the OS.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache. Fastest; survives
	// process death but not power loss.
	FsyncNever
)

// ParseFsyncPolicy parses the -fsync flag values "always", "interval" and
// "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always|interval|never)", s)
}

// String renders the flag form.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return "always"
	}
}

// Options configures a journal.
type Options struct {
	// Dir is the journal directory; created if missing. Required.
	Dir string
	// Fsync is the durability policy. Default FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval.
	// Default 100ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 4 MiB.
	SegmentBytes int64
	// CompactEvery triggers a compaction after this many jobs newly reach
	// a terminal state. 0 means compaction only happens when Compact is
	// called explicitly (the service compacts after recovery and on drain).
	CompactEvery int
	// IsTerminal classifies job states for compaction: terminal jobs keep
	// only their ledger entry in snapshots, live jobs keep the full wire
	// form. nil treats every state as live.
	IsTerminal func(state string) bool
	// Telemetry receives append/fsync/rotation/compaction counters and the
	// LSN gauge. nil disables.
	Telemetry *telemetry.Registry
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 4 << 20
	}
	return o.SegmentBytes
}

func (o Options) fsyncInterval() time.Duration {
	if o.FsyncInterval <= 0 {
		return 100 * time.Millisecond
	}
	return o.FsyncInterval
}

// Record is one job lifecycle transition. Wire, Strategy and Priority are
// set on admission records (state "queued") so recovery can rebuild and
// re-enqueue the job; later transitions carry only the state change.
type Record struct {
	LSN      uint64     `json:"lsn"`
	Job      string     `json:"job"`
	State    string     `json:"state"`
	Reason   string     `json:"reason,omitempty"`
	Strategy string     `json:"strategy,omitempty"`
	Priority int        `json:"priority,omitempty"`
	Wire     *jobio.Job `json:"wire,omitempty"`
	// Shard names the metascheduler shard a federated router has bound the
	// job to ("" outside federation). It tracks the newest record that sets
	// it, so recovery knows which shard may still own an in-doubt handoff.
	Shard string `json:"shard,omitempty"`
	// Epoch is a federated router's reallocation round for the job (0
	// outside federation). It rises by one each time a confirmed
	// revocation voids a binding, and persisting it keeps re-handoffs
	// monotonically above every tombstone the job left behind.
	Epoch int `json:"epoch,omitempty"`
}

// JobState is the folded, latest-record-wins view of one job, as stored in
// snapshots and returned by recovery.
type JobState struct {
	Job      string     `json:"job"`
	State    string     `json:"state"`
	Reason   string     `json:"reason,omitempty"`
	Strategy string     `json:"strategy,omitempty"`
	Priority int        `json:"priority,omitempty"`
	Wire     *jobio.Job `json:"wire,omitempty"`
	Shard    string     `json:"shard,omitempty"`
	Epoch    int        `json:"epoch,omitempty"`
	FirstLSN uint64     `json:"firstLSN"`
	LastLSN  uint64     `json:"lastLSN"`
}

// Stats is a point-in-time snapshot of journal activity.
type Stats struct {
	NextLSN     uint64 `json:"nextLSN"`
	SnapshotLSN uint64 `json:"snapshotLSN"`
	Appends     uint64 `json:"appends"`
	Fsyncs      uint64 `json:"fsyncs"`
	Rotations   uint64 `json:"rotations"`
	Compactions uint64 `json:"compactions"`
	Jobs        int    `json:"jobs"`
	Live        int    `json:"live"`
}

// Journal is the write handle. Safe for concurrent use.
type Journal struct {
	opts Options

	mu            sync.Mutex
	f             *os.File
	segBytes      int64
	nextLSN       uint64
	snapLSN       uint64
	state         map[string]*JobState
	order         []string // job IDs by first-seen LSN
	terminalSince int
	stats         Stats
	closed        bool

	stopc chan struct{} // interval syncer; nil unless FsyncInterval
	syncg sync.WaitGroup

	appends, fsyncs, rotations, compactions *telemetry.Counter
	lsnGauge                                *telemetry.Gauge
}

// Open recovers the journal directory (truncating a torn tail) and opens
// it for appending. The returned Recovery is the folded job state the
// caller should restore before accepting new work.
func Open(opts Options) (*Journal, *Recovery, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec, err := Recover(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	if rec.tornPath != "" {
		// Cut the torn tail so the next segment scan sees only valid
		// records; the file itself is synced before we append past it.
		if err := truncateFile(rec.tornPath, rec.tornOffset); err != nil {
			return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}

	j := &Journal{
		opts:    opts,
		nextLSN: rec.LastLSN + 1,
		snapLSN: rec.SnapshotLSN,
		state:   make(map[string]*JobState, len(rec.Jobs)),
	}
	for _, js := range rec.Jobs {
		cp := *js
		j.state[js.Job] = &cp
		j.order = append(j.order, js.Job)
	}
	if reg := opts.Telemetry; reg != nil {
		j.appends = reg.Counter("grid_journal_appends_total", "journal records appended")
		j.fsyncs = reg.Counter("grid_journal_fsyncs_total", "journal fsync calls")
		j.rotations = reg.Counter("grid_journal_rotations_total", "journal segment rotations")
		j.compactions = reg.Counter("grid_journal_compactions_total", "journal compactions")
		j.lsnGauge = reg.Gauge("grid_journal_lsn", "highest assigned journal LSN")
	}
	if err := j.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	if opts.Fsync == FsyncInterval {
		j.stopc = make(chan struct{})
		j.syncg.Add(1)
		go j.syncLoop()
	}
	return j, rec, nil
}

func truncateFile(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// openSegmentLocked opens the active segment named after nextLSN. The name
// can already exist in exactly one benign case — a torn tail truncated the
// whole segment away — in which case appending to the now-empty file is
// precisely right, so O_APPEND without O_EXCL.
func (j *Journal) openSegmentLocked() error {
	path := segmentPath(j.opts.Dir, j.nextLSN)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: stat segment: %w", err)
	}
	j.f = f
	j.segBytes = info.Size()
	if err := atomicfile.SyncDir(j.opts.Dir); err != nil {
		return err
	}
	return nil
}

func segmentPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", first))
}

func snapshotPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.json", lsn))
}

// Append writes one record, assigns its LSN, and makes it durable under
// the fsync policy before returning. The returned LSN is the record's.
func (j *Journal) Append(rec Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: closed")
	}
	rec.LSN = j.nextLSN
	line, err := encodeRecord(&rec)
	if err != nil {
		return 0, err
	}
	if _, err := j.f.Write(line); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	j.nextLSN++
	j.segBytes += int64(len(line))
	j.stats.Appends++
	if j.appends != nil {
		j.appends.Inc()
		j.lsnGauge.Set(float64(rec.LSN))
	}
	wasTerminal := false
	if js, ok := j.state[rec.Job]; ok && j.opts.IsTerminal != nil {
		wasTerminal = j.opts.IsTerminal(js.State)
	}
	foldRecord(j.state, &j.order, &rec)
	if j.opts.IsTerminal != nil && !wasTerminal && j.opts.IsTerminal(rec.State) {
		j.terminalSince++
	}

	if j.opts.Fsync == FsyncAlways {
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	}
	if j.segBytes >= j.opts.segmentBytes() {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if n := j.opts.CompactEvery; n > 0 && j.terminalSince >= n {
		if err := j.compactLocked(); err != nil {
			return 0, err
		}
	}
	return rec.LSN, nil
}

func (j *Journal) syncLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.stats.Fsyncs++
	if j.fsyncs != nil {
		j.fsyncs.Inc()
	}
	return nil
}

// Sync forces the active segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	return j.syncLocked()
}

// rotateLocked seals the active segment and starts a new one named after
// the next LSN to be assigned.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	j.stats.Rotations++
	if j.rotations != nil {
		j.rotations.Inc()
	}
	return j.openSegmentLocked()
}

// Compact folds the current per-job state into a snapshot and deletes the
// segments (and older snapshots) it supersedes. Terminal jobs are stripped
// to their ledger entry — ID, state, reason — which is all the durable
// duplicate-submit guard needs; live jobs keep the full wire form so
// recovery can re-enqueue them.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	// Seal the active segment first: after this, every record on disk is
	// covered by the snapshot we are about to write.
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	snapLSN := j.nextLSN - 1

	snap := snapshotFile{LSN: snapLSN, Jobs: make([]*JobState, 0, len(j.order))}
	for _, id := range j.order {
		js := j.state[id]
		if j.opts.IsTerminal != nil && j.opts.IsTerminal(js.State) {
			js.Wire = nil // fold: terminal jobs keep only the ledger entry
		}
		snap.Jobs = append(snap.Jobs, js)
	}
	if err := atomicfile.WriteFile(snapshotPath(j.opts.Dir, snapLSN), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&snap)
	}); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}

	// Everything sealed is now dead: every segment (all records <=
	// snapLSN) and every older snapshot. A crash between these removes and
	// the new segment is safe — replay skips records at or below the
	// snapshot LSN.
	names, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	for _, e := range names {
		name := e.Name()
		if first, ok := parseSegmentName(name); ok && first <= snapLSN {
			os.Remove(filepath.Join(j.opts.Dir, name))
		} else if lsn, ok := parseSnapshotName(name); ok && lsn < snapLSN {
			os.Remove(filepath.Join(j.opts.Dir, name))
		}
	}
	j.snapLSN = snapLSN
	j.terminalSince = 0
	j.stats.Compactions++
	if j.compactions != nil {
		j.compactions.Inc()
	}
	return j.openSegmentLocked()
}

// syncLoop is the FsyncInterval background syncer.
func (j *Journal) syncLoop() {
	defer j.syncg.Done()
	t := time.NewTicker(j.opts.fsyncInterval())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if !j.closed {
				_ = j.syncLocked()
			}
			j.mu.Unlock()
		case <-j.stopc:
			return
		}
	}
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	if j.stopc != nil {
		close(j.stopc)
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.closed = true
	j.mu.Unlock()
	j.syncg.Wait()
	return err
}

// Stats returns a snapshot of journal activity.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.NextLSN = j.nextLSN
	st.SnapshotLSN = j.snapLSN
	st.Jobs = len(j.state)
	for _, js := range j.state {
		if j.opts.IsTerminal == nil || !j.opts.IsTerminal(js.State) {
			st.Live++
		}
	}
	return st
}

// envelope is the on-disk line form: CRC over the exact bytes of Rec.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// snapshotFile is the on-disk compaction snapshot.
type snapshotFile struct {
	LSN  uint64      `json:"lsn"`
	Jobs []*JobState `json:"jobs"`
}

// encodeRecord renders one record as its envelope line, newline included.
func encodeRecord(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	crc := crc32.ChecksumIEEE(payload)
	line := make([]byte, 0, len(payload)+24)
	line = append(line, fmt.Sprintf(`{"crc":%d,"rec":`, crc)...)
	line = append(line, payload...)
	line = append(line, '}', '\n')
	return line, nil
}

// decodeRecord parses and verifies one envelope line (sans newline).
func decodeRecord(line []byte) (*Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("bad envelope: %w", err)
	}
	if got := crc32.ChecksumIEEE(env.Rec); got != env.CRC {
		return nil, fmt.Errorf("crc mismatch: record says %08x, content is %08x", env.CRC, got)
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return nil, fmt.Errorf("bad record: %w", err)
	}
	return &rec, nil
}

// foldRecord applies one record to the latest-wins state map. Admission
// fields (wire, strategy, priority) stick from the record that carries
// them; state and reason always track the newest record.
func foldRecord(state map[string]*JobState, order *[]string, rec *Record) {
	js, ok := state[rec.Job]
	if !ok {
		js = &JobState{Job: rec.Job, FirstLSN: rec.LSN}
		state[rec.Job] = js
		*order = append(*order, rec.Job)
	}
	js.State = rec.State
	js.Reason = rec.Reason
	js.LastLSN = rec.LSN
	if rec.Strategy != "" {
		js.Strategy = rec.Strategy
	}
	if rec.Priority != 0 {
		js.Priority = rec.Priority
	}
	if rec.Wire != nil {
		js.Wire = rec.Wire
	}
	if rec.Shard != "" {
		js.Shard = rec.Shard
	}
	if rec.Epoch != 0 {
		js.Epoch = rec.Epoch
	}
}
