package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecoverSegment throws arbitrary bytes at the segment replayer as the
// final (tail) segment: recovery must never panic, and whatever it accepts
// must survive a write-mode Open (torn-tail truncation) followed by a
// second, byte-identical replay.
func FuzzRecoverSegment(f *testing.F) {
	// Valid single records, hand-built via the real encoder.
	for _, rec := range []Record{
		{Job: "a", State: "queued", Strategy: "S1", Priority: 1, Wire: testWire("a")},
		{Job: "a", State: "completed"},
		{Job: "b", State: "rejected", Reason: "shed: displaced under overload"},
	} {
		rec.LSN = 1
		line, err := encodeRecord(&rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"crc":0,"rec":{"lsn":1,"job":"x","state":"queued"}}` + "\n")) // wrong CRC
	f.Add([]byte(`{"crc":12,"rec":` + "\n"))                                     // torn envelope
	f.Add([]byte("\x00\x00half-written"))                                        // garbage tail
	f.Add([]byte(`{"crc":1,"rec":{"lsn":7,"job":"gap","state":"queued"}}` + "\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			return // precise rejection is a valid outcome
		}
		// Whatever replayed must re-replay identically after truncation.
		j, rec2, err := Open(Options{Dir: dir, IsTerminal: terminal})
		if err != nil {
			t.Fatalf("Open rejected what Recover accepted: %v", err)
		}
		defer j.Close()
		if rec2.LastLSN != rec.LastLSN || len(rec2.Jobs) != len(rec.Jobs) {
			t.Fatalf("replay diverged: %+v vs %+v", rec, rec2)
		}
		// Open truncated any torn tail, so a fresh replay must be clean.
		rec3, err := Recover(dir)
		if err != nil {
			t.Fatalf("replay after truncation failed: %v", err)
		}
		if rec3.TornBytes != 0 || rec3.LastLSN != rec.LastLSN {
			t.Fatalf("tail survived truncation: %+v", rec3)
		}
		// Appending after recovery keeps LSN continuity.
		lsn, err := j.Append(Record{Job: "post", State: "queued"})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != rec.LastLSN+1 {
			t.Fatalf("append LSN %d, want %d", lsn, rec.LastLSN+1)
		}
	})
}

// FuzzRecoverDir mixes a valid prefix with a fuzzed tail segment so the
// multi-segment paths (snapshot skip, continuity checks) stay panic-free.
func FuzzRecoverDir(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add([]byte(`{"crc":3,"rec":{"lsn":3,"job":"c","state":"queued"}}` + "\n"))
	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		j, _, err := Open(Options{Dir: dir, IsTerminal: terminal})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Append(Record{Job: "a", State: "queued", Wire: testWire("a")}); err != nil {
			t.Fatal(err)
		}
		if _, err := j.Append(Record{Job: "a", State: "completed"}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000003.log"), tail, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			return
		}
		if rec.LastLSN < 2 {
			t.Fatalf("valid prefix lost: %+v", rec)
		}
	})
}
