package journal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobio"
	"repro/internal/telemetry"
)

// terminal mirrors the service's terminal-state predicate without
// importing it (service imports journal).
func terminal(state string) bool {
	return state == "completed" || state == "rejected" || state == "drained"
}

func testWire(name string) *jobio.Job {
	return &jobio.Job{
		Name:     name,
		Deadline: 60,
		Tasks:    []jobio.Task{{Name: "A", BaseTime: 2, Volume: 10}},
	}
}

func mustOpen(t *testing.T, opts Options) (*Journal, *Recovery) {
	t.Helper()
	if opts.IsTerminal == nil {
		opts.IsTerminal = terminal
	}
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

func mustAppend(t *testing.T, j *Journal, rec Record) uint64 {
	t.Helper()
	lsn, err := j.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Jobs) != 0 || rec.LastLSN != 0 {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
	mustAppend(t, j, Record{Job: "a", State: "queued", Strategy: "S1", Priority: 2, Wire: testWire("a")})
	mustAppend(t, j, Record{Job: "b", State: "queued", Strategy: "S2", Wire: testWire("b")})
	mustAppend(t, j, Record{Job: "a", State: "scheduled"})
	mustAppend(t, j, Record{Job: "a", State: "completed"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastLSN != 4 || got.Records != 4 || got.TornBytes != 0 {
		t.Fatalf("recovery: %+v", got)
	}
	if len(got.Jobs) != 2 {
		t.Fatalf("jobs: %d, want 2", len(got.Jobs))
	}
	a, b := got.Jobs[0], got.Jobs[1]
	if a.Job != "a" || a.State != "completed" || a.Strategy != "S1" || a.Priority != 2 || a.Wire == nil {
		t.Fatalf("job a: %+v", a)
	}
	if a.FirstLSN != 1 || a.LastLSN != 4 {
		t.Fatalf("job a LSNs: %+v", a)
	}
	if b.Job != "b" || b.State != "queued" || b.Wire == nil || b.Wire.Name != "b" {
		t.Fatalf("job b: %+v", b)
	}
}

// TestReopenContinuesLSN proves Open picks up exactly where the previous
// handle stopped, across multiple sessions.
func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		j, rec := mustOpen(t, Options{Dir: dir})
		if want := uint64(i * 2); rec.LastLSN != want {
			t.Fatalf("session %d: LastLSN %d, want %d", i, rec.LastLSN, want)
		}
		id := fmt.Sprintf("j%d", i)
		if lsn := mustAppend(t, j, Record{Job: id, State: "queued", Wire: testWire(id)}); lsn != uint64(i*2+1) {
			t.Fatalf("session %d: lsn %d", i, lsn)
		}
		mustAppend(t, j, Record{Job: id, State: "completed"})
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastLSN != 6 || len(rec.Jobs) != 3 {
		t.Fatalf("final recovery: %+v", rec)
	}
}

func TestRotationAndSegmentNames(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 1}) // rotate after every append
	for i := 0; i < 5; i++ {
		mustAppend(t, j, Record{Job: fmt.Sprintf("j%d", i), State: "queued", Wire: testWire("x")})
	}
	if st := j.Stats(); st.Rotations != 5 {
		t.Fatalf("rotations: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 6 { // 5 sealed + 1 empty active
		t.Fatalf("segments: %v", segs)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastLSN != 5 || len(rec.Jobs) != 5 || rec.Segments != 6 {
		t.Fatalf("recovery: %+v", rec)
	}
}

func TestCompactionFoldsTerminalAndDeletesDeadSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 1})
	mustAppend(t, j, Record{Job: "done", State: "queued", Strategy: "S1", Wire: testWire("done")})
	mustAppend(t, j, Record{Job: "done", State: "completed"})
	mustAppend(t, j, Record{Job: "live", State: "queued", Strategy: "S1", Wire: testWire("live")})
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("dead segments not deleted: %v", segs)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.json"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}

	// Appends continue after compaction and recovery sees both worlds.
	mustAppend(t, j, Record{Job: "live", State: "scheduled"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotLSN != 3 || rec.LastLSN != 4 || rec.Records != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	byID := map[string]*JobState{}
	for _, js := range rec.Jobs {
		byID[js.Job] = js
	}
	if d := byID["done"]; d == nil || d.State != "completed" || d.Wire != nil {
		t.Fatalf("terminal job not folded to ledger entry: %+v", d)
	}
	if l := byID["live"]; l == nil || l.State != "scheduled" || l.Wire == nil {
		t.Fatalf("live job lost its wire form: %+v", l)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, CompactEvery: 2})
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("j%d", i)
		mustAppend(t, j, Record{Job: id, State: "queued", Wire: testWire(id)})
		mustAppend(t, j, Record{Job: id, State: "completed"})
	}
	if st := j.Stats(); st.Compactions != 2 {
		t.Fatalf("compactions: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 5 || rec.LastLSN != 10 {
		t.Fatalf("recovery: %+v", rec)
	}
}

// lastSegment returns the path of the newest segment with content.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	var best string
	var bestFirst uint64
	for _, s := range segs {
		info, err := os.Stat(s)
		if err != nil || info.Size() == 0 {
			continue
		}
		first, _ := parseSegmentName(filepath.Base(s))
		if best == "" || first > bestFirst {
			best, bestFirst = s, first
		}
	}
	if best == "" {
		t.Fatal("no non-empty segment")
	}
	return best
}

func writeJournal(t *testing.T, dir string, n int, segBytes int64) {
	t.Helper()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: segBytes})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j%d", i)
		mustAppend(t, j, Record{Job: id, State: "queued", Wire: testWire(id)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedRecord(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 3, 0)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half: a crash mid-append.
	if err := os.WriteFile(seg, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes == 0 || !strings.Contains(rec.TornReason, "no trailing newline") {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	if rec.LastLSN != 2 || len(rec.Jobs) != 2 {
		t.Fatalf("did not recover to last valid record: %+v", rec)
	}

	// Opening for write truncates the tail and appends continue cleanly.
	j, rec2 := mustOpen(t, Options{Dir: dir})
	if rec2.LastLSN != 2 {
		t.Fatalf("open after tear: %+v", rec2)
	}
	mustAppend(t, j, Record{Job: "j9", State: "queued", Wire: testWire("j9")})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec3, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TornBytes != 0 || rec3.LastLSN != 3 || len(rec3.Jobs) != 3 {
		t.Fatalf("after truncate+append: %+v", rec3)
	}
}

func TestTornTailBitFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 4, 0)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the third record's payload; the CRC catches it and
	// replay recovers exactly the records before the flip.
	lines := bytes.SplitAfter(data, []byte("\n"))
	target := lines[2]
	target[len(target)/2] ^= 0x40
	if err := os.WriteFile(seg, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes == 0 {
		t.Fatalf("bit flip not detected: %+v", rec)
	}
	if rec.LastLSN != 2 || len(rec.Jobs) != 2 {
		t.Fatalf("did not recover to last valid record: %+v", rec)
	}
}

// TestCorruptionMidJournalIsHardError: damage anywhere but the final
// segment's tail must fail recovery with a precise error, never silently
// drop the middle of history.
func TestCorruptionMidJournalIsHardError(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 4, 1) // one record per segment
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	// Corrupt the second segment (not the last).
	var victim string
	for _, s := range segs {
		if first, _ := parseSegmentName(filepath.Base(s)); first == 2 {
			victim = s
		}
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Recover(dir)
	if err == nil {
		t.Fatal("mid-journal corruption went undetected")
	}
	if !strings.Contains(err.Error(), victim) || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error lacks file/offset detail: %v", err)
	}
}

func TestHalfWrittenSegmentGarbage(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 2, 0)
	// Simulate a half-written follow-on segment: allocated, filled with
	// garbage that never formed a record.
	if err := os.WriteFile(segmentPath(dir, 3), []byte("\x00\x00\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastLSN != 2 || rec.TornBytes == 0 {
		t.Fatalf("garbage tail segment: %+v", rec)
	}

	// And an empty pre-allocated segment is simply skipped.
	j, rec2 := mustOpen(t, Options{Dir: dir})
	if rec2.LastLSN != 2 {
		t.Fatalf("reopen: %+v", rec2)
	}
	mustAppend(t, j, Record{Job: "after", State: "queued", Wire: testWire("after")})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLSNGapIsHardError(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 3, 1)
	// Delete the middle segment: history has a hole.
	for _, s := range mustGlob(t, filepath.Join(dir, "wal-*.log")) {
		if first, _ := parseSegmentName(filepath.Base(s)); first == 2 {
			os.Remove(s)
		}
	}
	_, err := Recover(dir)
	if err == nil || !strings.Contains(err.Error(), "continuity") {
		t.Fatalf("gap not detected: %v", err)
	}
}

func mustGlob(t *testing.T, pattern string) []string {
	t.Helper()
	out, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCorruptSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	mustAppend(t, j, Record{Job: "a", State: "queued", Wire: testWire("a")})
	mustAppend(t, j, Record{Job: "a", State: "completed"})
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snaps := mustGlob(t, filepath.Join(dir, "snap-*.json"))
	if err := os.WriteFile(snaps[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt snapshot accepted: %v", err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy FsyncPolicy
	}{
		{"always", FsyncAlways},
		{"interval", FsyncInterval},
		{"never", FsyncNever},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := mustOpen(t, Options{Dir: dir, Fsync: tc.policy, FsyncInterval: 5 * time.Millisecond})
			mustAppend(t, j, Record{Job: "a", State: "queued", Wire: testWire("a")})
			if tc.policy == FsyncInterval {
				time.Sleep(25 * time.Millisecond) // let the syncer tick
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.LastLSN != 1 {
				t.Fatalf("%s: %+v", tc.name, rec)
			}
			st := j.Stats()
			if tc.policy == FsyncAlways && st.Fsyncs == 0 {
				t.Fatal("always policy never fsynced")
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseFsyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("%s: %v %v", s, p, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, Telemetry: reg, SegmentBytes: 1})
	mustAppend(t, j, Record{Job: "a", State: "queued", Wire: testWire("a")})
	mustAppend(t, j, Record{Job: "a", State: "completed"})
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("grid_journal_appends_total", "").Value(); v != 2 {
		t.Fatalf("appends counter: %d", v)
	}
	if v := reg.Counter("grid_journal_rotations_total", "").Value(); v == 0 {
		t.Fatal("rotations counter never moved")
	}
	if v := reg.Counter("grid_journal_compactions_total", "").Value(); v != 1 {
		t.Fatalf("compactions counter: %d", v)
	}
}

func TestClosedJournalRefusesWrites(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir()})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Job: "x", State: "queued"}); err == nil {
		t.Fatal("append on closed journal succeeded")
	}
	if err := j.Sync(); err == nil {
		t.Fatal("sync on closed journal succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestPropertyRoundTrip drives seeded random lifecycle histories —
// duplicate follow-up records, rotations, compactions and reopen cycles
// included — and checks the replayed fold matches an independently
// maintained model, with LSNs strictly continuous.
func TestPropertyRoundTrip(t *testing.T) {
	states := []string{"queued", "scheduled", "completed", "rejected", "drained"}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			model := make(map[string]*JobState)
			var modelOrder []string
			var lsn uint64

			sessions := 2 + rng.Intn(3)
			for sess := 0; sess < sessions; sess++ {
				j, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: int64(1 + rng.Intn(400))})
				if rec.LastLSN != lsn {
					t.Fatalf("session %d: LastLSN %d, want %d", sess, rec.LastLSN, lsn)
				}
				n := 5 + rng.Intn(40)
				for i := 0; i < n; i++ {
					r := Record{
						Job:   fmt.Sprintf("job-%d", rng.Intn(12)),
						State: states[rng.Intn(len(states))],
					}
					if rng.Intn(2) == 0 {
						r.Wire = testWire(r.Job)
						r.Strategy = "S1"
						r.Priority = rng.Intn(3)
					}
					if rng.Intn(5) == 0 {
						r.Reason = "because"
					}
					got := mustAppend(t, j, r)
					lsn++
					if got != lsn {
						t.Fatalf("lsn %d, want %d", got, lsn)
					}
					r.LSN = got
					foldRecord(model, &modelOrder, &r)
				}
				if rng.Intn(3) == 0 {
					if err := j.Compact(); err != nil {
						t.Fatal(err)
					}
					// Mirror compaction in the model: terminal jobs fold to
					// ledger entries, losing their wire payload.
					for _, js := range model {
						if terminal(js.State) {
							js.Wire = nil
						}
					}
				}
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
			}

			rec, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.LastLSN != lsn {
				t.Fatalf("LastLSN %d, want %d", rec.LastLSN, lsn)
			}
			if len(rec.Jobs) != len(model) {
				t.Fatalf("job count %d, want %d", len(rec.Jobs), len(model))
			}
			for _, js := range rec.Jobs {
				want := model[js.Job]
				if want == nil {
					t.Fatalf("unexpected job %q", js.Job)
				}
				if js.State != want.State || js.Reason != want.Reason ||
					js.Strategy != want.Strategy || js.LastLSN != want.LastLSN {
					t.Fatalf("job %q: got %+v want %+v", js.Job, js, want)
				}
				// The final Recover does not compact, so wire presence must
				// match the model exactly (the model mirrors mid-run
				// compaction stripping above).
				if (js.Wire == nil) != (want.Wire == nil) {
					t.Fatalf("job %q: wire presence diverged: got %v want %v",
						js.Job, js.Wire != nil, want.Wire != nil)
				}
			}
		})
	}
}
