package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Recovery is the result of replaying a journal directory: the folded
// per-job state in first-accepted order, plus forensic detail about what
// was read and what (if anything) was discarded from the tail.
type Recovery struct {
	// Jobs is the latest-record-wins state of every job the journal
	// remembers, ordered by first-accepted LSN.
	Jobs []*JobState
	// LastLSN is the highest valid LSN replayed (0 for an empty journal).
	LastLSN uint64
	// SnapshotLSN is the LSN of the compaction snapshot replay started
	// from (0 when none existed).
	SnapshotLSN uint64
	// Segments and Records count the segment files scanned and the live
	// records replayed past the snapshot.
	Segments int
	Records  int
	// TornBytes is how many trailing bytes of the final segment were
	// discarded as a torn tail; TornReason says why. Opening the journal
	// for write truncates them away.
	TornBytes  int64
	TornReason string

	tornPath   string
	tornOffset int64
}

// Recover replays a journal directory read-only. An empty or missing
// directory yields an empty recovery. Corruption anywhere but the tail of
// the final segment is a hard error naming the file and byte offset.
func Recover(dir string) (*Recovery, error) {
	rec := &Recovery{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: recover: %w", err)
	}

	var segs []segmentInfo
	var snaps []uint64
	for _, e := range entries {
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{path: filepath.Join(dir, e.Name()), first: first})
		} else if lsn, ok := parseSnapshotName(e.Name()); ok {
			snaps = append(snaps, lsn)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].first < segs[b].first })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })

	state := make(map[string]*JobState)
	var order []string
	if len(snaps) > 0 {
		lsn := snaps[len(snaps)-1]
		if err := loadSnapshot(snapshotPath(dir, lsn), lsn, state, &order); err != nil {
			return nil, err
		}
		rec.SnapshotLSN = lsn
	}
	rec.LastLSN = rec.SnapshotLSN

	for i, seg := range segs {
		rec.Segments++
		last := i == len(segs)-1
		if err := replaySegment(seg, last, rec, state, &order); err != nil {
			return nil, err
		}
		if rec.tornPath != "" {
			break // tail discarded; nothing follows by definition of "last"
		}
	}

	rec.Jobs = make([]*JobState, 0, len(order))
	for _, id := range order {
		rec.Jobs = append(rec.Jobs, state[id])
	}
	sort.SliceStable(rec.Jobs, func(a, b int) bool { return rec.Jobs[a].FirstLSN < rec.Jobs[b].FirstLSN })
	return rec, nil
}

type segmentInfo struct {
	path  string
	first uint64
}

// replaySegment folds one segment's records into state. In the final
// segment an invalid record marks a torn tail (recorded, not fatal); in
// any earlier segment it is hard corruption.
func replaySegment(seg segmentInfo, last bool, rec *Recovery, state map[string]*JobState, order *[]string) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("journal: recover: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("journal: recover: %w", err)
	}
	size := info.Size()

	br := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	tear := func(reason string) error {
		if !last {
			return fmt.Errorf("journal: %s: corrupt record at offset %d: %s", seg.path, offset, reason)
		}
		rec.TornBytes = size - offset
		rec.TornReason = reason
		rec.tornPath = seg.path
		rec.tornOffset = offset
		return nil
	}

	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			return nil
		}
		if err == io.EOF {
			// Bytes after the last newline: a half-written append.
			return tear("truncated record (no trailing newline)")
		}
		if err != nil {
			return fmt.Errorf("journal: %s: read: %w", seg.path, err)
		}
		r, derr := decodeRecord(line[:len(line)-1])
		if derr != nil {
			return tear(derr.Error())
		}
		if r.LSN <= rec.SnapshotLSN {
			// Already folded into the snapshot (a compaction crashed
			// before deleting this segment).
			offset += int64(len(line))
			continue
		}
		if r.LSN != rec.LastLSN+1 {
			return fmt.Errorf("journal: %s: offset %d: LSN %d breaks continuity (want %d)",
				seg.path, offset, r.LSN, rec.LastLSN+1)
		}
		foldRecord(state, order, r)
		rec.LastLSN = r.LSN
		rec.Records++
		offset += int64(len(line))
	}
}

// loadSnapshot reads one compaction snapshot into the state map.
func loadSnapshot(path string, lsn uint64, state map[string]*JobState, order *[]string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	defer f.Close()
	var snap snapshotFile
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("journal: snapshot %s is corrupt: %w", path, err)
	}
	if snap.LSN != lsn {
		return fmt.Errorf("journal: snapshot %s: header LSN %d does not match file name LSN %d", path, snap.LSN, lsn)
	}
	for _, js := range snap.Jobs {
		if js.Job == "" {
			return fmt.Errorf("journal: snapshot %s: entry with empty job ID", path)
		}
		cp := *js
		state[js.Job] = &cp
		*order = append(*order, js.Job)
	}
	return nil
}

func parseSegmentName(name string) (uint64, bool) {
	return parseHexName(name, "wal-", ".log")
}

func parseSnapshotName(name string) (uint64, bool) {
	return parseHexName(name, "snap-", ".json")
}

func parseHexName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
