package estimate

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/resource"
	"repro/internal/simtime"
)

func paperJob(t testing.TB) *dag.Job {
	t.Helper()
	b := dag.NewBuilder("fig2")
	b.Task("P1", 2, 20)
	b.Task("P2", 3, 30)
	b.Task("P3", 1, 10)
	b.Task("P4", 2, 20)
	b.Task("P5", 1, 10)
	b.Task("P6", 2, 20)
	return b.MustBuild()
}

func TestDeriveMatchesPaperTable(t *testing.T) {
	// §3's table: Ti1 = {2,3,1,2,1,2}, Ti2 = 2×, Ti3 = 3×, Ti4 = 4×,
	// V = {20,30,10,20,10,20}.
	job := paperJob(t)
	tab := Derive(job)
	wantT1 := []simtime.Time{2, 3, 1, 2, 1, 2}
	wantV := []int64{20, 30, 10, 20, 10, 20}
	for i := 0; i < job.NumTasks(); i++ {
		id := dag.TaskID(i)
		for k := resource.Tier(1); k <= resource.NumTiers; k++ {
			want := wantT1[i] * simtime.Time(k)
			if got := tab.Time(id, k); got != want {
				t.Errorf("T_%d%d = %d, want %d", i+1, k, got, want)
			}
		}
		if got := tab.Volume(id); got != wantV[i] {
			t.Errorf("V_%d = %d, want %d", i+1, got, wantV[i])
		}
	}
}

func TestBestWorst(t *testing.T) {
	tab := Derive(paperJob(t))
	p2 := dag.TaskID(1)
	if tab.Best(p2) != 3 || tab.Worst(p2) != 12 {
		t.Errorf("Best/Worst = %d/%d, want 3/12", tab.Best(p2), tab.Worst(p2))
	}
}

func TestTimeClampsTier(t *testing.T) {
	tab := Derive(paperJob(t))
	if tab.Time(0, 0) != tab.Time(0, 1) {
		t.Error("tier < 1 not clamped")
	}
	if tab.Time(0, 99) != tab.Time(0, resource.NumTiers) {
		t.Error("tier > NumTiers not clamped")
	}
}

func TestTimeOnNode(t *testing.T) {
	tab := Derive(paperJob(t))
	fast := resource.NewNode(0, "f", 1.0, 1, "d")
	slow := resource.NewNode(1, "s", 0.33, 1, "d")
	if got := tab.TimeOnNode(0, fast); got != 2 {
		t.Errorf("fast estimate = %d, want 2", got)
	}
	if got := tab.TimeOnNode(0, slow); got != 6 { // tier 3 → 3×2
		t.Errorf("slow estimate = %d, want 6", got)
	}
}

func TestSetRowValidation(t *testing.T) {
	tab := New()
	bad := []Row{
		{Times: [resource.NumTiers]simtime.Time{0, 1, 2, 3}, Volume: 1},
		{Times: [resource.NumTiers]simtime.Time{4, 3, 5, 6}, Volume: 1},
		{Times: [resource.NumTiers]simtime.Time{1, 2, 3, 4}, Volume: -1},
	}
	for i, row := range bad {
		if err := tab.SetRow(0, row); err == nil {
			t.Errorf("bad row %d accepted", i)
		}
	}
	good := Row{Times: [resource.NumTiers]simtime.Time{2, 2, 5, 5}, Volume: 0}
	if err := tab.SetRow(0, good); err != nil {
		t.Errorf("plateau row rejected: %v", err)
	}
	if !tab.Has(0) || tab.Has(1) {
		t.Error("Has is wrong")
	}
}

func TestCoversJob(t *testing.T) {
	job := paperJob(t)
	tab := Derive(job)
	if err := tab.CoversJob(job); err != nil {
		t.Errorf("derived table does not cover its job: %v", err)
	}
	partial := New()
	if err := partial.CoversJob(job); err == nil {
		t.Error("empty table claims to cover job")
	}
}

func TestPanicsOnMissingRow(t *testing.T) {
	tab := New()
	for _, fn := range []func(){
		func() { tab.Time(7, 1) },
		func() { tab.Volume(7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("missing-row access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuickDeriveMonotone(t *testing.T) {
	// For any base time, derived estimates are positive and non-decreasing
	// in tier, and the tier-1 estimate equals the base.
	f := func(base uint16) bool {
		bt := simtime.Time(base%500) + 1
		b := dag.NewBuilder("q")
		b.Task("T", bt, 5)
		job := b.MustBuild()
		tab := Derive(job)
		if tab.Time(0, 1) != bt {
			return false
		}
		for k := resource.Tier(2); k <= resource.NumTiers; k++ {
			if tab.Time(0, k) < tab.Time(0, k-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
