// Package estimate models the user estimations of §3: for every task of a
// compound job, an execution-time estimate per processor-node type
// (T_i1..T_i4, tier 1 = fastest) and a relative computation volume V_i.
//
// Planning (strategy construction, reservations) always uses these
// tier-quantized user estimates; the actual execution time on a concrete
// node is derived from its continuous relative performance and generally
// differs, which is exactly the forecast error the paper studies in
// Fig. 4c ("actual solving time Ti for a task can be different from user
// estimation Tij").
package estimate

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/resource"
	"repro/internal/simtime"
)

// Row is one line of the estimation table: the per-tier time estimates and
// the computation volume of a single task.
type Row struct {
	Times  [resource.NumTiers]simtime.Time
	Volume int64
}

// Table is a job's complete estimation table.
type Table struct {
	rows map[dag.TaskID]Row
}

// Derive builds the canonical table from a job's base estimates the way the
// paper's Fig. 2 table is built: T_ik = k × T_i1, V from the task volume.
func Derive(job *dag.Job) *Table {
	t := &Table{rows: make(map[dag.TaskID]Row, job.NumTasks())}
	for _, task := range job.Tasks() {
		var row Row
		for k := 0; k < resource.NumTiers; k++ {
			row.Times[k] = task.BaseTime * simtime.Time(k+1)
		}
		row.Volume = task.Volume
		t.rows[task.ID] = row
	}
	return t
}

// New returns an empty table; rows must be added with SetRow.
func New() *Table {
	return &Table{rows: make(map[dag.TaskID]Row)}
}

// SetRow installs or replaces the estimates for one task. Estimates must be
// positive and non-decreasing across tiers (a slower node type can never
// have a smaller estimate).
func (t *Table) SetRow(id dag.TaskID, row Row) error {
	for k := 0; k < resource.NumTiers; k++ {
		if row.Times[k] <= 0 {
			return fmt.Errorf("estimate: task %d tier %d has non-positive time %d", id, k+1, row.Times[k])
		}
		if k > 0 && row.Times[k] < row.Times[k-1] {
			return fmt.Errorf("estimate: task %d estimates decrease from tier %d to %d", id, k, k+1)
		}
	}
	if row.Volume < 0 {
		return fmt.Errorf("estimate: task %d has negative volume", id)
	}
	t.rows[id] = row
	return nil
}

// Has reports whether the table has a row for the task.
func (t *Table) Has(id dag.TaskID) bool {
	_, ok := t.rows[id]
	return ok
}

// Time returns the user estimate for the task on a node of the given tier.
// It panics when the task has no row — the table must cover the whole job.
func (t *Table) Time(id dag.TaskID, tier resource.Tier) simtime.Time {
	row, ok := t.rows[id]
	if !ok {
		panic(fmt.Sprintf("estimate: no row for task %d", id))
	}
	if tier < 1 {
		tier = 1
	}
	if tier > resource.NumTiers {
		tier = resource.NumTiers
	}
	return row.Times[tier-1]
}

// TimeOnNode returns the user estimate applied to a concrete node: the
// estimate of the node's tier.
func (t *Table) TimeOnNode(id dag.TaskID, n *resource.Node) simtime.Time {
	return t.Time(id, n.Tier())
}

// Volume returns the task's computation volume V_i.
func (t *Table) Volume(id dag.TaskID) int64 {
	row, ok := t.rows[id]
	if !ok {
		panic(fmt.Sprintf("estimate: no row for task %d", id))
	}
	return row.Volume
}

// Best returns the fastest (tier-1) estimate for the task, the weight used
// when searching critical works.
func (t *Table) Best(id dag.TaskID) simtime.Time { return t.Time(id, 1) }

// Worst returns the slowest (tier-NumTiers) estimate.
func (t *Table) Worst(id dag.TaskID) simtime.Time { return t.Time(id, resource.NumTiers) }

// CoversJob verifies that every task of the job has a row.
func (t *Table) CoversJob(job *dag.Job) error {
	for _, task := range job.Tasks() {
		if !t.Has(task.ID) {
			return fmt.Errorf("estimate: table missing task %q", task.Name)
		}
	}
	return nil
}
