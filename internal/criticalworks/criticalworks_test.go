package criticalworks

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/economy"
	"repro/internal/estimate"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// fig2Job is the paper's Fig. 2(a) example (see dag tests for the chain
// length derivation).
func fig2Job(deadline simtime.Time) *dag.Job {
	b := dag.NewBuilder("fig2").Deadline(deadline)
	b.Task("P1", 2, 20)
	b.Task("P2", 3, 30)
	b.Task("P3", 1, 10)
	b.Task("P4", 2, 20)
	b.Task("P5", 1, 10)
	b.Task("P6", 2, 20)
	b.Edge("D1", "P1", "P2", 1, 10)
	b.Edge("D2", "P1", "P3", 1, 10)
	b.Edge("D3", "P2", "P4", 1, 10)
	b.Edge("D4", "P2", "P5", 1, 10)
	b.Edge("D5", "P3", "P4", 1, 10)
	b.Edge("D6", "P3", "P5", 1, 10)
	b.Edge("D7", "P4", "P6", 1, 10)
	b.Edge("D8", "P5", "P6", 1, 10)
	return b.MustBuild()
}

// paperEnv is the Fig. 2 node set: four nodes of types 1..4 (performance
// 1, 0.5, 0.33, 0.25).
func paperEnv() *resource.Environment {
	return resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "n1", 1.0, 1, "d"),
		resource.NewNode(1, "n2", 0.5, 1, "d"),
		resource.NewNode(2, "n3", 0.33, 1, "d"),
		resource.NewNode(3, "n4", 0.25, 1, "d"),
	})
}

// checkValid asserts the schedule's structural invariants: everything
// placed, precedence + transfer times respected, deadline semantics
// consistent, windows on one node disjoint.
func checkValid(t *testing.T, env *resource.Environment, s *Schedule, cat *data.Catalog) {
	t.Helper()
	job := s.Job
	if len(s.Placements) != job.NumTasks() {
		t.Fatalf("placed %d of %d tasks", len(s.Placements), job.NumTasks())
	}
	for _, e := range job.Edges() {
		from, to := s.Placements[e.From], s.Placements[e.To]
		tt := cat.TransferTime(job.Name, job.Task(e.From).Name, e.BaseTime, from.Node, to.Node)
		if to.Window.Start < from.Window.End+tt {
			t.Errorf("edge %s: to starts %d, from ends %d + transfer %d", e.Name, to.Window.Start, from.Window.End, tt)
		}
	}
	byNode := map[resource.NodeID][]simtime.Interval{}
	for _, p := range s.Placements {
		byNode[p.Node] = append(byNode[p.Node], p.Window)
	}
	for n, ivs := range byNode {
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].Overlaps(ivs[j]) {
					t.Errorf("node %d has overlapping windows %v %v", n, ivs[i], ivs[j])
				}
			}
		}
	}
}

func TestSingleTaskPicksCheapestFeasible(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(100)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	env := paperEnv()

	s, err := Build(env, EmptyCalendars(env), job, Options{Objective: MinCost})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Placements[0]
	// Under MinCost with a loose deadline, the cheapest node wins: slowest
	// (type 4, dur 8, charge ceil(20/8)=3) beats fast (dur 2, charge 10).
	if p.Node != 3 {
		t.Errorf("placed on node %d, want the type-4 node 3", p.Node)
	}
	if s.BareCF != 3 {
		t.Errorf("BareCF = %d, want 3", s.BareCF)
	}
	if !s.MeetsDeadline() {
		t.Error("missed a loose deadline")
	}
}

func TestSingleTaskTightDeadlineForcesFastNode(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(2)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	env := paperEnv()

	s, err := Build(env, EmptyCalendars(env), job, Options{Objective: MinCost})
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Placements[0]; p.Node != 0 {
		t.Errorf("placed on node %d, want fast node 0", p.Node)
	}
	if s.BareCF != 10 {
		t.Errorf("BareCF = %d, want 10 (paying for speed)", s.BareCF)
	}
}

func TestInfeasibleDeadline(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(1)
	b.Task("T", 2, 20) // even the fastest node needs 2 ticks
	job := b.MustBuild()
	env := paperEnv()

	_, err := Build(env, EmptyCalendars(env), job, Options{})
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want InfeasibleError", err)
	}
}

func TestDeadlineBeforeRelease(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(5)
	b.Task("T", 1, 1)
	job := b.MustBuild()
	env := paperEnv()
	_, err := Build(env, EmptyCalendars(env), job, Options{Release: 10})
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want InfeasibleError", err)
	}
}

func TestNoCandidates(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(50)
	b.Task("T", 1, 1)
	job := b.MustBuild()
	env := paperEnv()
	_, err := Build(env, EmptyCalendars(env), job, Options{Candidates: []resource.NodeID{}})
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestFig2FullBuild(t *testing.T) {
	job := fig2Job(20)
	env := paperEnv()
	cat := data.NewCatalog(data.RemoteAccess, 0)
	s, err := Build(env, EmptyCalendars(env), job, Options{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, env, s, cat)
	if !s.MeetsDeadline() {
		t.Errorf("fig2 misses deadline: finish %d > 20", s.Finish)
	}
	if s.BareCF <= 0 || s.Cost <= 0 {
		t.Errorf("costs not computed: CF=%d cost=%v", s.BareCF, s.Cost)
	}
}

func TestFig2TightDeadlineStillFeasible(t *testing.T) {
	// The critical path is 12 on type-1 nodes (transfers included); under
	// the MinFinish objective the method finds a 12-tick schedule, so a
	// deadline of 14 is feasible despite the branch contention.
	job := fig2Job(14)
	env := paperEnv()
	cat := data.NewCatalog(data.RemoteAccess, 0)
	s, err := Build(env, EmptyCalendars(env), job, Options{Catalog: cat})
	if err != nil {
		t.Fatalf("deadline 14 should be feasible: %v", err)
	}
	checkValid(t, env, s, cat)
	if s.Finish > 14 {
		t.Errorf("finish %d > deadline 14", s.Finish)
	}
}

func TestFig2MinCostHeuristicMayFail(t *testing.T) {
	// The MinCost objective is a heuristic: with a tight deadline its
	// greedy first chain can strand later critical works, which surfaces
	// as a clean InfeasibleError rather than a broken schedule. (The
	// paper's own admissibility rates — 33–38% — reflect exactly such
	// misses.)
	job := fig2Job(14)
	env := paperEnv()
	_, err := Build(env, EmptyCalendars(env), job, Options{Objective: MinCost})
	if err != nil {
		var inf *InfeasibleError
		if !errors.As(err, &inf) {
			t.Fatalf("unexpected error type: %v", err)
		}
	}
}

func TestCollisionDetectedOnContendedNode(t *testing.T) {
	// Fork: S -> A, S -> B with identical estimates, a single candidate
	// node. The second critical work's ideal slot overlaps the first's
	// reservation: exactly one collision, held by the same job.
	b := dag.NewBuilder("fork").Deadline(40)
	b.Task("S", 2, 8)
	b.Task("A", 4, 16)
	b.Task("B", 4, 16)
	b.Edge("dA", "S", "A", 1, 1)
	b.Edge("dB", "S", "B", 1, 1)
	job := b.MustBuild()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "only", 1.0, 1, "d"),
	})
	s, err := Build(env, EmptyCalendars(env), job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Collisions) != 1 {
		t.Fatalf("collisions = %d, want 1 (%v)", len(s.Collisions), s.Collisions)
	}
	c := s.Collisions[0]
	if c.Node != 0 {
		t.Errorf("collision on node %d", c.Node)
	}
	if c.Holder.Job != "fork" {
		t.Errorf("collision holder = %+v, want own job", c.Holder)
	}
}

func TestCollisionAgainstExternalReservation(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(50)
	b.Task("T", 4, 4)
	job := b.MustBuild()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "only", 1.0, 1, "d"),
	})
	cals := EmptyCalendars(env)
	// Background load occupies the ideal window [0,4).
	if err := cals[0].Reserve(simtime.Interval{Start: 0, End: 10}, resource.External); err != nil {
		t.Fatal(err)
	}
	s, err := Build(env, cals, job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Collisions) != 1 || s.Collisions[0].Holder != resource.External {
		t.Fatalf("collisions = %+v, want one external", s.Collisions)
	}
	if s.Placements[0].Window.Start < 10 {
		t.Errorf("task starts %d inside external reservation", s.Placements[0].Window.Start)
	}
}

func TestReallocateBeatsDelay(t *testing.T) {
	// Two equal parallel tasks, two identical nodes. Reallocation runs them
	// simultaneously on different nodes; the delay baseline queues both on
	// the shared ideal node.
	build := func(mode CollisionMode) *Schedule {
		b := dag.NewBuilder("par").Deadline(100)
		b.Task("A", 10, 10)
		b.Task("B", 10, 10)
		job := b.MustBuild()
		env := resource.NewEnvironment([]*resource.Node{
			resource.NewNode(0, "n0", 1.0, 1, "d"),
			resource.NewNode(1, "n1", 1.0, 1, "d"),
		})
		s, err := Build(env, EmptyCalendars(env), job, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	re := build(ResolveReallocate)
	de := build(ResolveDelay)
	if re.Finish >= de.Finish {
		t.Errorf("reallocate finish %d not better than delay finish %d", re.Finish, de.Finish)
	}
	if de.Finish != 20 {
		t.Errorf("delay mode finish = %d, want 20 (serialized)", de.Finish)
	}
	if re.Finish != 10 {
		t.Errorf("reallocate finish = %d, want 10 (parallel)", re.Finish)
	}
}

func TestCandidateRestriction(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(100)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	env := paperEnv()
	s, err := Build(env, EmptyCalendars(env), job, Options{
		Candidates: []resource.NodeID{1}, // only the type-2 node
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[0].Node != 1 {
		t.Errorf("placed on %d despite restriction", s.Placements[0].Node)
	}
	if got := s.Placements[0].Window.Len(); got != 4 { // tier-2 estimate 2×2
		t.Errorf("duration = %d, want 4", got)
	}
}

func TestPerformancePricingPullsTowardSlowNodes(t *testing.T) {
	// With performance pricing, fast nodes cost strictly more per charge
	// unit; the bare CF already prefers slow nodes, and weighted cost must
	// amplify that: weighted cost on node 0 > on node 3 for the same task.
	b := dag.NewBuilder("one").Deadline(100)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	env := paperEnv()
	s, err := Build(env, EmptyCalendars(env), job, Options{
		Pricing:   economy.PerformancePricing{Base: 10},
		Objective: MinCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[0].Node != 3 {
		t.Errorf("placed on node %d, want cheapest slow node", s.Placements[0].Node)
	}
}

func TestReleaseShiftsSchedule(t *testing.T) {
	b := dag.NewBuilder("one").Deadline(200)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	env := paperEnv()
	s, err := Build(env, EmptyCalendars(env), job, Options{Release: 50})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start < 50 {
		t.Errorf("started at %d before release 50", s.Start)
	}
}

func TestActiveReplicationReducesMakespanOrCost(t *testing.T) {
	// Diamond with heavy transfers: replication at least never does worse
	// than remote access. With transfers this heavy the remote-access run
	// may be outright infeasible for the heuristic — that is the sharpest
	// form of replication's advantage.
	mk := func(p data.Policy) (*Schedule, error) {
		b := dag.NewBuilder("dia").Deadline(200)
		b.Task("S", 2, 10)
		b.Task("A", 2, 10)
		b.Task("B", 2, 10)
		b.Task("T", 2, 10)
		b.Edge("d1", "S", "A", 8, 8)
		b.Edge("d2", "S", "B", 8, 8)
		b.Edge("d3", "A", "T", 8, 8)
		b.Edge("d4", "B", "T", 8, 8)
		job := b.MustBuild()
		env := paperEnv()
		return Build(env, EmptyCalendars(env), job, Options{
			Catalog: data.NewCatalog(p, 0),
		})
	}
	rep, errRep := mk(data.ActiveReplication)
	if errRep != nil {
		t.Fatalf("replication infeasible: %v", errRep)
	}
	rem, errRem := mk(data.RemoteAccess)
	if errRem == nil && rep.Finish > rem.Finish {
		t.Errorf("replication finish %d worse than remote %d", rep.Finish, rem.Finish)
	}
}

func TestScheduleAccountingMatchesPlacements(t *testing.T) {
	job := fig2Job(24)
	env := paperEnv()
	s, err := Build(env, EmptyCalendars(env), job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cf int64
	var start, finish simtime.Time = simtime.Infinity, 0
	tab := estimate.Derive(job)
	for id, p := range s.Placements {
		cf += economy.TaskCharge(tab.Volume(id), p.Window.Len())
		if p.Window.Start < start {
			start = p.Window.Start
		}
		if p.Window.End > finish {
			finish = p.Window.End
		}
	}
	if cf != s.BareCF {
		t.Errorf("BareCF = %d, recomputed %d", s.BareCF, cf)
	}
	if start != s.Start || finish != s.Finish {
		t.Errorf("bounds = [%d,%d], recomputed [%d,%d]", s.Start, s.Finish, start, finish)
	}
	if s.Makespan() != finish-start {
		t.Errorf("Makespan = %d", s.Makespan())
	}
}

// randomEnv builds 2..6 nodes across the performance range.
func randomEnv(r *rng.Source) *resource.Environment {
	n := r.IntBetween(2, 6)
	nodes := make([]*resource.Node, n)
	perfs := []float64{1.0, 0.8, 0.5, 0.4, 0.33, 0.25}
	for i := 0; i < n; i++ {
		nodes[i] = resource.NewNode(resource.NodeID(i), "n", perfs[r.Intn(len(perfs))], 1, "d")
	}
	return resource.NewEnvironment(nodes)
}

func randomJob(r *rng.Source) *dag.Job {
	n := r.IntBetween(1, 8)
	b := dag.NewBuilder("rand")
	names := make([]string, n)
	var span simtime.Time
	for i := range names {
		names[i] = string(rune('A' + i))
		bt := simtime.Time(r.IntBetween(1, 6))
		span += bt * 4
		b.Task(names[i], bt, int64(r.IntBetween(0, 30)))
	}
	for to := 1; to < n; to++ {
		for from := 0; from < to; from++ {
			if r.Bool(0.3) {
				tt := simtime.Time(r.IntBetween(0, 3))
				span += tt
				b.Edge(names[from]+names[to], names[from], names[to], tt, 1)
			}
		}
	}
	b.Deadline(span + simtime.Time(r.IntBetween(0, 20)))
	return b.MustBuild()
}

func TestQuickBuildInvariants(t *testing.T) {
	// Whenever Build succeeds: all tasks placed, precedence + transfers
	// hold, no node double-booked, finish within deadline, reservations in
	// the view match placements exactly.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		env := randomEnv(r)
		job := randomJob(r)
		cat := data.NewCatalog(data.Policy(r.Intn(3)), 0)
		cals := EmptyCalendars(env)
		// Random background load.
		for i := 0; i < r.Intn(5); i++ {
			n := resource.NodeID(r.Intn(env.NumNodes()))
			st := simtime.Time(r.Intn(40))
			_ = cals[n].Reserve(simtime.Interval{Start: st, End: st + simtime.Time(r.IntBetween(1, 10))}, resource.External)
		}
		s, err := Build(env, cals, job, Options{Catalog: cat, Mode: CollisionMode(r.Intn(2))})
		if err != nil {
			var inf *InfeasibleError
			return errors.As(err, &inf) // only this failure is legitimate
		}
		if len(s.Placements) != job.NumTasks() {
			return false
		}
		if s.Finish > job.Deadline {
			return false
		}
		for _, e := range job.Edges() {
			from, to := s.Placements[e.From], s.Placements[e.To]
			tt := cat.TransferTime(job.Name, job.Task(e.From).Name, e.BaseTime, from.Node, to.Node)
			if to.Window.Start < from.Window.End+tt {
				return false
			}
		}
		// Every placement must be present in the calendar view.
		for id, p := range s.Placements {
			found := false
			for _, res := range cals[p.Node].Reservations() {
				if res.Interval == p.Window && res.Owner.Task == job.Task(id).Name {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeterministic(t *testing.T) {
	// Same inputs produce the identical schedule.
	f := func(seed uint64) bool {
		mk := func() (*Schedule, error) {
			r := rng.New(seed)
			env := randomEnv(r)
			job := randomJob(r)
			return Build(env, EmptyCalendars(env), job, Options{})
		}
		a, errA := mk()
		b, errB := mk()
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		if a.BareCF != b.BareCF || a.Finish != b.Finish || a.Start != b.Start {
			return false
		}
		for id, pa := range a.Placements {
			pb := b.Placements[id]
			if pa != pb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDelayNeverBeatsReallocate(t *testing.T) {
	// For a single-chain job, the economic reallocation (full DP) never
	// produces a later finish than the pinned-node delay baseline, and
	// whenever delay succeeds, reallocate succeeds. (Multi-chain jobs can
	// couple through earlier placements, so the guarantee is per chain.)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		env := randomEnv(r)
		n := r.IntBetween(1, 6)
		b := dag.NewBuilder("line")
		var span simtime.Time
		prev := ""
		for i := 0; i < n; i++ {
			name := string(rune('A' + i))
			bt := simtime.Time(r.IntBetween(1, 6))
			span += bt * 4
			b.Task(name, bt, int64(r.IntBetween(0, 30)))
			if prev != "" {
				tt := simtime.Time(r.IntBetween(0, 3))
				span += tt
				b.Edge(prev+name, prev, name, tt, 1)
			}
			prev = name
		}
		b.Deadline(span + simtime.Time(r.IntBetween(0, 20)))
		job := b.MustBuild()
		re, errRe := Build(env, EmptyCalendars(env), job, Options{Mode: ResolveReallocate})
		de, errDe := Build(env, EmptyCalendars(env), job, Options{Mode: ResolveDelay})
		if errDe == nil && errRe != nil {
			return false
		}
		if errRe != nil || errDe != nil {
			return true
		}
		return re.Finish <= de.Finish
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
