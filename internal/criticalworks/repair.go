package criticalworks

// Incremental strategy repair (DESIGN.md §14). A Build run with
// Options.CaptureMemo leaves a BuildMemo on its Schedule: the effective
// options it ran under, the calendar generation each candidate's book
// carried when it started (its read-set), and the margin-1 construction
// trace chain by chain. TryRepair uses the memo to answer a *later* build
// request over a shrunken candidate set without re-running the whole
// multiphase procedure:
//
//   - full replay: when no memoized placement touches a removed node, the
//     memoized schedule IS the schedule the full build would produce, so
//     it is returned without even snapshotting the calendars;
//   - splice: otherwise the untouched prefix of critical works is
//     re-applied verbatim (reservations, collisions, catalog commits) and
//     the DP resumes from the first touched chain;
//   - stale: whenever the memo cannot *prove* equivalence — any key
//     mismatch, a changed generation, a new candidate, an infeasible
//     resume — the caller must fall back to the full Build.
//
// Why a replayed/spliced result is byte-identical to the full rebuild it
// replaces (the subset-optimality argument):
//
// The chain sequence is candidate-independent — LongestChain weighs tasks
// by the estimate table and edges by base transfer time — so a rebuild
// walks the same critical works in the same order while its placements
// match the memo's. Within one chain, removing candidate columns from the
// DP can only shrink each cell's option set, so every cell's value weakly
// worsens; a cell on the memoized winning path is computed from on-path
// predecessors only, hence unchanged by induction. The argmin (both the
// per-cell transition and the terminal selection) replaces its incumbent
// only on a strict improvement, so the original winner — strictly better
// than the running best over earlier columns, never beaten by later ones
// — still wins against weakly-worsened rivals whose relative order an
// order-preserving subsequence keeps intact. Therefore, as long as a
// chain's ideal and actual placements avoid every removed node, the
// rebuild reproduces them exactly, along with the collisions (functions
// of the ideal slots and the — identical — calendar view) and the catalog
// commits (functions of the placements). The first chain that does touch
// a removed node is where the proof stops and the live DP takes over.
//
// Evaluations are the one deliberate divergence: a memoized chain's probe
// count includes the removed columns' probes, which the counterfactual
// rebuild would not perform. The count is kept as recorded (it measures
// work the method *did* spend building the plan) and never reaches any
// report, trace or wire format on the fallback path that uses repair.

import (
	"reflect"

	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/economy"
	"repro/internal/estimate"
	"repro/internal/resource"
	"repro/internal/simtime"
)

// ChainMemo is one critical work's slice of the construction trace: the
// chain's tasks in placement order, the actual placements reserved, every
// node either DP phase placed on (the repair-safety frontier), and the
// collisions and probe count the chain contributed.
type ChainMemo struct {
	Tasks   []dag.TaskID
	Actual  []Placement
	Touched []resource.NodeID
	Colls   []Collision
	Evals   int64
}

// BuildMemo records one memoized margin-1 build: enough to prove a later
// build over a subsequence of its candidates would reproduce it, and to
// resume the DP from the first chain the shrinkage touches.
type BuildMemo struct {
	// The effective (normalized) option key of the memoized build.
	JobName   string
	Release   simtime.Time
	Deadline  simtime.Time
	Horizon   simtime.Time
	Objective Objective

	// Candidates is the memoized candidate order; Reads the generation
	// each candidate's reservation book carried when the build started.
	Candidates []resource.NodeID
	Reads      map[resource.NodeID]uint64

	// Chains is the margin-1 construction trace, one entry per critical
	// work in placement order; Schedule the build's (complete) result.
	Chains   []ChainMemo
	Schedule *Schedule

	// Context identity beyond the plain key: the estimate table (derived
	// tables are deterministic, caller tables must be pointer-equal), the
	// pricing model, and the starting catalog (policy, storage anchor,
	// and emptiness — two fresh catalogs of the same shape price every
	// transfer identically).
	tableDerived bool
	table        *estimate.Table
	pricing      economy.Pricing
	policy       data.Policy
	storage      resource.NodeID
	catalogEmpty bool
}

// newMemo starts a memo from a build's normalized options and the
// read-set captured from its input calendar view.
func newMemo(opt Options, tableDerived bool, reads map[resource.NodeID]uint64) *BuildMemo {
	return &BuildMemo{
		JobName:      opt.JobName,
		Release:      opt.Release,
		Deadline:     opt.Deadline,
		Horizon:      opt.Horizon,
		Objective:    opt.Objective,
		Candidates:   append([]resource.NodeID(nil), opt.Candidates...),
		Reads:        reads,
		tableDerived: tableDerived,
		table:        opt.Table,
		pricing:      opt.Pricing,
		policy:       opt.Catalog.Policy(),
		storage:      opt.Catalog.Storage(),
		catalogEmpty: opt.Catalog.Empty(),
	}
}

// RepairOutcome classifies a TryRepair attempt.
type RepairOutcome int

const (
	// RepairStale means the memo could not prove equivalence; the caller
	// must run the full Build.
	RepairStale RepairOutcome = iota
	// RepairReplayed means the memoized schedule was returned whole: no
	// placement touched a removed candidate, no calendar was read.
	RepairReplayed
	// RepairSpliced means the untouched prefix of critical works was
	// replayed and the DP re-solved the rest against a fresh snapshot.
	RepairSpliced
)

// String names the outcome for telemetry and tests.
func (o RepairOutcome) String() string {
	switch o {
	case RepairReplayed:
		return "replayed"
	case RepairSpliced:
		return "spliced"
	default:
		return "stale"
	}
}

// usable validates the memo against a prospective build's normalized
// options and live calendar generations, returning the splice point: the
// index of the first memoized chain whose placements touch a removed
// candidate. splice == len(m.Chains) means the whole schedule replays.
func (m *BuildMemo) usable(job *dag.Job, opt Options, tableDerived bool, gens func(resource.NodeID) uint64) (int, bool) {
	if m == nil || m.Schedule == nil || m.Schedule.Partial || m.Schedule.Job != job {
		return 0, false
	}
	if opt.Mode != ResolveReallocate {
		return 0, false
	}
	if opt.JobName != m.JobName || opt.Release != m.Release || opt.Deadline != m.Deadline ||
		opt.Horizon != m.Horizon || opt.Objective != m.Objective {
		return 0, false
	}
	if tableDerived != m.tableDerived || (!tableDerived && opt.Table != m.table) {
		return 0, false
	}
	if !reflect.DeepEqual(opt.Pricing, m.pricing) {
		return 0, false
	}
	if opt.Catalog.Policy() != m.policy || opt.Catalog.Storage() != m.storage ||
		!opt.Catalog.Empty() || !m.catalogEmpty {
		return 0, false
	}
	// The new candidates must be an order-preserving subsequence of the
	// memoized ones (the subset-optimality argument needs the surviving
	// columns in their original relative order), and every survivor's
	// book generation must still match the memoized read.
	removed := make(map[resource.NodeID]bool)
	j := 0
	for _, id := range m.Candidates {
		if j < len(opt.Candidates) && opt.Candidates[j] == id {
			g, ok := m.Reads[id]
			if !ok || gens(id) != g {
				return 0, false
			}
			j++
			continue
		}
		removed[id] = true
	}
	if j != len(opt.Candidates) {
		return 0, false // a candidate the memoized build never saw
	}
	// Defensive: the trace must cover the whole job, or the resume loop
	// would re-place memoized tasks.
	total := 0
	for _, cm := range m.Chains {
		total += len(cm.Tasks)
	}
	if total != job.NumTasks() {
		return 0, false
	}
	for i, cm := range m.Chains {
		for _, n := range cm.Touched {
			if removed[n] {
				return i, true
			}
		}
	}
	return len(m.Chains), true
}

// replay re-applies one memoized chain to the builder exactly as
// placeChain recorded it: probe count, collisions, reservations,
// placements and catalog commits, in placeChain's order.
func (b *builder) replay(cm ChainMemo) error {
	b.evals += cm.Evals
	b.colls = append(b.colls, cm.Colls...)
	for _, p := range cm.Actual {
		owner := resource.Owner{Job: b.opt.JobName, Task: b.job.Task(p.Task).Name}
		if err := b.cals[p.Node].Reserve(p.Window, owner); err != nil {
			return err // generations matched, so the slot must be free
		}
		b.placed[p.Task] = p
	}
	for _, e := range b.job.Edges() {
		from, okF := b.placed[e.From]
		to, okT := b.placed[e.To]
		if okF && okT {
			b.opt.Catalog.Commit(b.opt.JobName, b.job.Task(e.From).Name, from.Node, to.Node)
		}
	}
	return nil
}

// TryRepair attempts to satisfy a build request from a prior build's
// memo. gens resolves a node's live calendar generation (the memo's
// read-set is validated against it); snap supplies a fresh calendar
// snapshot and is only invoked when a splice actually needs calendars —
// a full replay touches none. On RepairStale the returned schedule is nil
// and nothing was mutated: the caller runs the full Build, whose result
// then stands on its own. On success the schedule is exactly — placement
// for placement, collision for collision, cost for cost — what
// Build(env, snap(), job, opt) would have returned, opt.Catalog (when
// non-nil) carries the adopted replica state, and the snapshot (if taken)
// holds the plan's reservations like Build's view would.
func TryRepair(env *resource.Environment, job *dag.Job, opt Options, memo *BuildMemo, gens func(resource.NodeID) uint64, snap func() Calendars) (*Schedule, RepairOutcome) {
	nopt, tableDerived, err := normalize(env, job, opt)
	if err != nil {
		return nil, RepairStale
	}
	at, ok := memo.usable(job, nopt, tableDerived, gens)
	if !ok || at == 0 {
		// at == 0 would resume from scratch — no cheaper than Build, and
		// Build's margin ladder handles the infeasible case properly.
		return nil, RepairStale
	}

	if at == len(memo.Chains) {
		// Full hit: hand back the memoized schedule (shallow copy; its
		// maps and slices are never mutated after construction). The memo
		// rides along — it proves the same facts about this schedule.
		// The caller's catalog still gets the replica state Build would
		// have adopted: the final state is the idempotent union of one
		// commit per edge, which a complete schedule covers entirely.
		for _, e := range job.Edges() {
			from, okF := memo.Schedule.Placements[e.From]
			to, okT := memo.Schedule.Placements[e.To]
			if okF && okT {
				nopt.Catalog.Commit(nopt.JobName, job.Task(e.From).Name, from.Node, to.Node)
			}
		}
		cp := *memo.Schedule
		return &cp, RepairReplayed
	}

	// Splice: replay the untouched prefix into a fresh snapshot, then let
	// the ordinary margin-1 machinery place the remaining critical works.
	cals := snap()
	if cals == nil {
		return nil, RepairStale
	}
	attempt := nopt
	attempt.Catalog = nopt.Catalog.Clone()
	b := &builder{
		env:     env,
		cals:    cals,
		job:     job,
		opt:     attempt,
		margin:  1,
		placed:  make(map[dag.TaskID]Placement, job.NumTasks()),
		capture: nopt.CaptureMemo,
		span:    attempt.ParentSpan,
	}
	b.computeBounds()
	for _, cm := range memo.Chains[:at] {
		if err := b.replay(cm); err != nil {
			return nil, RepairStale
		}
	}
	for len(b.placed) < b.job.NumTasks() {
		if err := b.cancelled(); err != nil {
			return nil, RepairStale
		}
		chain, ok := b.job.LongestChain(b.chainWeights(), func(id dag.TaskID) bool {
			_, done := b.placed[id]
			return !done
		})
		if !ok {
			break // cannot happen while placed < NumTasks; defensive
		}
		if err := b.placeChain(chain); err != nil {
			// Margin 1 ran dry (or the context fired): the full Build's
			// retry ladder is the correct continuation, not a patch.
			return nil, RepairStale
		}
	}
	sched, err := b.finish()
	if err != nil {
		return nil, RepairStale
	}
	if b.capture {
		// Captured before the catalog adoption below: the memo must record
		// the caller's catalog as Build saw it (empty), not the adopted
		// replica state. The spliced build read the same generations the
		// memo proved live, so its memo inherits them, restricted to the
		// survivors.
		reads := make(map[resource.NodeID]uint64, len(nopt.Candidates))
		for _, id := range nopt.Candidates {
			reads[id] = memo.Reads[id]
		}
		m2 := newMemo(nopt, tableDerived, reads)
		m2.Chains = append(append([]ChainMemo(nil), memo.Chains[:at]...), b.chains...)
		m2.Schedule = sched
		sched.memo = m2
	}
	*nopt.Catalog = *attempt.Catalog
	return sched, RepairSpliced
}
