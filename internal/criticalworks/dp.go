package criticalworks

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/economy"
	"repro/internal/resource"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// placeChain schedules one critical work: it computes the chain's ideal
// placement on empty calendars (the placement the chain "attempts"), the
// actual placement against the live calendar view, records a collision for
// every task whose ideal slot is already reserved, and books the actual
// reservations.
func (b *builder) placeChain(chain dag.Chain) error {
	var chainSpan *telemetry.Span
	if b.opt.Spans != nil {
		evals0 := b.evals
		chainSpan = b.opt.Spans.Start("criticalworks.chain", b.span)
		chainSpan.SetInt("tasks", int64(len(chain.Tasks)))
		defer func() { chainSpan.SetInt("evaluations", b.evals-evals0).End() }()
	}
	memoEvals, memoColls := b.evals, len(b.colls)

	ideal, ok := b.dpPhase(chainSpan, "ideal", chain, true)
	if !ok {
		return &InfeasibleError{Job: b.opt.JobName, Task: b.job.Task(chain.Tasks[0]).Name}
	}
	if err := b.cancelled(); err != nil {
		return err
	}

	var actual []Placement
	switch b.opt.Mode {
	case ResolveDelay:
		actual, ok = b.delayOnIdealNodes(chain, ideal)
	default:
		actual, ok = b.dpPhase(chainSpan, "actual", chain, false)
	}
	if !ok {
		return &InfeasibleError{Job: b.opt.JobName, Task: b.job.Task(chain.Tasks[0]).Name}
	}

	// A collision is an ideal slot that the live calendar cannot grant.
	for _, p := range ideal {
		if res, busy := b.cals[p.Node].ConflictWith(p.Window); busy {
			b.colls = append(b.colls, Collision{
				Task:   p.Task,
				Node:   p.Node,
				Window: p.Window,
				Holder: res.Owner,
			})
		}
	}

	for _, p := range actual {
		owner := resource.Owner{Job: b.opt.JobName, Task: b.job.Task(p.Task).Name}
		if err := b.cals[p.Node].Reserve(p.Window, owner); err != nil {
			return err // internal bug: DP chose an occupied slot
		}
		b.placed[p.Task] = p
	}

	// Commit data placements for every edge that just became fully placed,
	// so later critical works of this job see the replicas.
	for _, e := range b.job.Edges() {
		from, okF := b.placed[e.From]
		to, okT := b.placed[e.To]
		if okF && okT {
			b.opt.Catalog.Commit(b.opt.JobName, b.job.Task(e.From).Name, from.Node, to.Node)
		}
	}

	if b.capture {
		// Touched must cover the ideal placements too: the memoized
		// collisions derive from them, so a repair may only skip this
		// chain's re-solve when no node of either phase was removed.
		touched := make(map[resource.NodeID]bool, len(actual))
		for _, p := range ideal {
			touched[p.Node] = true
		}
		for _, p := range actual {
			touched[p.Node] = true
		}
		nodes := make([]resource.NodeID, 0, len(touched))
		for n := range touched {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		b.chains = append(b.chains, ChainMemo{
			Tasks:   append([]dag.TaskID(nil), chain.Tasks...),
			Actual:  append([]Placement(nil), actual...),
			Touched: nodes,
			Colls:   append([]Collision(nil), b.colls[memoColls:]...),
			Evals:   b.evals - memoEvals,
		})
	}
	return nil
}

// dpPhase runs one DP pass under a span when tracing is on; with tracing
// off it is exactly runDP.
func (b *builder) dpPhase(parent *telemetry.Span, phase string, chain dag.Chain, ignoreCalendar bool) ([]Placement, bool) {
	if b.opt.Spans == nil {
		return b.runDP(chain, ignoreCalendar)
	}
	sp := b.opt.Spans.Start("criticalworks.dp", parent.ID())
	sp.SetStr("phase", phase)
	out, ok := b.runDP(chain, ignoreCalendar)
	if !ok {
		sp.SetStr("result", "infeasible")
	}
	sp.End()
	return out, ok
}

// cell is one DP state: the best (cost, finish) for "chain prefix ending
// with position i on node cands[c]".
type cell struct {
	ok            bool
	cost          float64
	start, finish simtime.Time
	prev          int // candidate index at position i-1, -1 at i=0
}

// betterCell orders candidate states lexicographically according to the
// configured objective: (finish, cost) for MinFinish, (cost, finish) for
// MinCost.
func (b *builder) betterCell(a, c cell) bool {
	if !c.ok {
		return a.ok
	}
	if !a.ok {
		return false
	}
	if b.opt.Objective == MinCost {
		if a.cost != c.cost {
			return a.cost < c.cost
		}
		return a.finish < c.finish
	}
	if a.finish != c.finish {
		return a.finish < c.finish
	}
	return a.cost < c.cost
}

// runDP finds the cost-minimal feasible placement of the chain. With
// ignoreCalendar the search pretends every node is free (the "ideal"
// attempt); otherwise starts come from the live calendars.
func (b *builder) runDP(chain dag.Chain, ignoreCalendar bool) ([]Placement, bool) {
	cands := b.opt.Candidates
	L := len(chain.Tasks)
	dp := make([][]cell, L)

	for i := 0; i < L; i++ {
		task := chain.Tasks[i]
		dp[i] = make([]cell, len(cands))
		var edgeIn dag.Edge
		if i > 0 {
			edgeIn = b.chainEdge(chain.Tasks[i-1], task)
		}
		for c, n := range cands {
			node := b.env.Node(n)
			dur := b.opt.Table.TimeOnNode(task, node)
			if dur <= 0 {
				continue
			}
			lft := b.lft(task, n)
			best := cell{}
			if i == 0 {
				if st, fin, ok := b.fit(n, b.est(task, n), dur, lft, ignoreCalendar); ok {
					best = cell{ok: true, cost: b.charge(task, dur, node), start: st, finish: fin, prev: -1}
				}
			} else {
				for m, pn := range cands {
					prevCell := dp[i-1][m]
					if !prevCell.ok {
						continue
					}
					earliest := prevCell.finish + b.transferTime(edgeIn, pn, n)
					if e := b.est(task, n); e > earliest {
						earliest = e
					}
					st, fin, ok := b.fit(n, earliest, dur, lft, ignoreCalendar)
					if !ok {
						continue
					}
					cand := cell{
						ok:     true,
						cost:   prevCell.cost + b.charge(task, dur, node),
						start:  st,
						finish: fin,
						prev:   m,
					}
					if b.betterCell(cand, best) {
						best = cand
					}
				}
			}
			dp[i][c] = best
		}
	}

	// Select the best terminal state and backtrack.
	final, finalIdx := cell{}, -1
	for c := range cands {
		if b.betterCell(dp[L-1][c], final) {
			final = dp[L-1][c]
			finalIdx = c
		}
	}
	if finalIdx < 0 {
		return nil, false
	}
	placements := make([]Placement, L)
	for i, c := L-1, finalIdx; i >= 0; i-- {
		st := dp[i][c]
		placements[i] = Placement{
			Task:   chain.Tasks[i],
			Node:   cands[c],
			Window: simtime.Interval{Start: st.start, End: st.finish},
		}
		c = st.prev
	}
	return placements, true
}

// delayOnIdealNodes is the E8 ablation baseline: keep every task on its
// ideal node and only push it later until the calendar has room.
func (b *builder) delayOnIdealNodes(chain dag.Chain, ideal []Placement) ([]Placement, bool) {
	out := make([]Placement, len(ideal))
	var prevFinish simtime.Time
	var prevNode resource.NodeID
	for i, p := range ideal {
		task := p.Task
		n := p.Node
		node := b.env.Node(n)
		dur := b.opt.Table.TimeOnNode(task, node)
		earliest := b.est(task, n)
		if i > 0 {
			e := b.chainEdge(chain.Tasks[i-1], task)
			if t := prevFinish + b.transferTime(e, prevNode, n); t > earliest {
				earliest = t
			}
		}
		st, fin, ok := b.fit(n, earliest, dur, b.lft(task, n), false)
		if !ok {
			return nil, false
		}
		out[i] = Placement{Task: task, Node: n, Window: simtime.Interval{Start: st, End: fin}}
		prevFinish, prevNode = fin, n
	}
	return out, true
}

// fit finds the earliest start ≥ earliest for a reservation of length dur
// on node n that finishes by lft.
func (b *builder) fit(n resource.NodeID, earliest, dur, lft simtime.Time, ignoreCalendar bool) (start, finish simtime.Time, ok bool) {
	b.evals++
	if ignoreCalendar {
		start = earliest
	} else {
		s, found := b.cals[n].FirstFree(earliest, dur, b.opt.Horizon)
		if !found {
			return 0, 0, false
		}
		start = s
	}
	finish = start + dur
	if finish > lft {
		return 0, 0, false
	}
	return start, finish, true
}

// charge is the per-task economic cost on a node.
func (b *builder) charge(task dag.TaskID, dur simtime.Time, node *resource.Node) float64 {
	return economy.WeightedTaskCharge(b.opt.Table.Volume(task), dur, b.opt.Pricing.Rate(node))
}

// est returns the earliest start of task on node n: the release time, the
// optimistic upstream bound, and the hard constraints from already-placed
// predecessors.
func (b *builder) est(task dag.TaskID, n resource.NodeID) simtime.Time {
	t := b.opt.Release + b.bestUp[task]
	for _, e := range b.job.In(task) {
		p, ok := b.placed[e.From]
		if !ok {
			continue
		}
		if cand := p.Window.End + b.transferTime(e, p.Node, n); cand > t {
			t = cand
		}
	}
	return t
}

// lft returns the latest finish of task on node n: the deadline tightened
// by the optimistic downstream bound and by already-placed successors.
func (b *builder) lft(task dag.TaskID, n resource.NodeID) simtime.Time {
	t := b.opt.Deadline - b.bestDown[task]
	for _, e := range b.job.Out(task) {
		s, ok := b.placed[e.To]
		if !ok {
			continue
		}
		if cand := s.Window.Start - b.transferTime(e, n, s.Node); cand < t {
			t = cand
		}
	}
	return t
}

// chainEdge returns the connecting edge between two consecutive chain
// tasks, preferring the cheapest transfer when parallel edges exist.
func (b *builder) chainEdge(from, to dag.TaskID) dag.Edge {
	var best dag.Edge
	found := false
	for _, e := range b.job.Out(from) {
		if e.To != to {
			continue
		}
		if !found || e.BaseTime < best.BaseTime {
			best = e
			found = true
		}
	}
	if !found {
		panic("criticalworks: chain tasks not connected") // LongestChain guarantees connectivity
	}
	return best
}
