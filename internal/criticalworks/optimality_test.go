package criticalworks

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/estimate"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// bruteForceChain exhaustively evaluates every node assignment of a linear
// job on empty calendars under earliest-start semantics and returns the
// optimal (finish, cost) under the given objective. Only usable for tiny
// instances.
func bruteForceChain(env *resource.Environment, job *dag.Job, obj Objective) (simtime.Time, float64, bool) {
	tab := estimate.Derive(job)
	order := job.TopoOrder()
	n := env.NumNodes()

	bestFinish := simtime.Infinity
	bestCost := 0.0
	found := false

	assign := make([]resource.NodeID, len(order))
	var walk func(pos int)
	walk = func(pos int) {
		if pos == len(order) {
			// Simulate earliest-start execution with remote-access
			// transfers (the default policy in Build).
			finishes := make(map[dag.TaskID]simtime.Time)
			var finish simtime.Time
			var cost float64
			for i, id := range order {
				node := env.Node(assign[i])
				dur := tab.TimeOnNode(id, node)
				var start simtime.Time
				for _, e := range job.In(id) {
					from := finishes[e.From]
					// Remote access pays the base time regardless of
					// co-location (see data.Catalog.TransferTime).
					if t := from + e.BaseTime; t > start {
						start = t
					}
				}
				end := start + dur
				finishes[id] = end
				if end > finish {
					finish = end
				}
				cost += float64((tab.Volume(id) + int64(dur) - 1) / int64(dur))
			}
			if finish > job.Deadline {
				return
			}
			better := false
			switch {
			case !found:
				better = true
			case obj == MinCost:
				better = cost < bestCost || (cost == bestCost && finish < bestFinish)
			default:
				better = finish < bestFinish || (finish == bestFinish && cost < bestCost)
			}
			if better {
				bestFinish, bestCost, found = finish, cost, true
			}
			return
		}
		for k := 0; k < n; k++ {
			assign[pos] = resource.NodeID(k)
			walk(pos + 1)
		}
	}
	walk(0)
	return bestFinish, bestCost, found
}

// linearJob builds a random chain job of up to 4 tasks.
func linearChainJob(r *rng.Source) *dag.Job {
	n := r.IntBetween(1, 4)
	b := dag.NewBuilder("chain")
	prev := ""
	var span simtime.Time
	for i := 0; i < n; i++ {
		name := string(rune('A' + i))
		bt := simtime.Time(r.IntBetween(1, 5))
		span += 4 * bt
		b.Task(name, bt, int64(r.IntBetween(1, 25)))
		if prev != "" {
			tt := simtime.Time(r.IntBetween(0, 3))
			span += tt
			b.Edge(prev+">"+name, prev, name, tt, 1)
		}
		prev = name
	}
	b.Deadline(span + simtime.Time(r.IntBetween(0, 10)))
	return b.MustBuild()
}

func smallEnv(r *rng.Source) *resource.Environment {
	perfs := []float64{1.0, 0.5, 0.33, 0.25}
	n := r.IntBetween(2, 3)
	nodes := make([]*resource.Node, n)
	for i := range nodes {
		nodes[i] = resource.NewNode(resource.NodeID(i), "n", perfs[r.Intn(len(perfs))], 1, "d")
	}
	return resource.NewEnvironment(nodes)
}

// TestQuickDPOptimalOnChains verifies the per-chain DP against exhaustive
// search: for a single-chain job on empty calendars, the DP's objective
// value must equal the brute-force optimum.
//
// The single-chain restriction matters: across chains the method is a
// greedy heuristic by design; within one chain the DP claims optimality
// over (position × node) given the earliest-start recurrence.
func TestQuickDPOptimalOnChains(t *testing.T) {
	f := func(seed uint64, costObj bool) bool {
		r := rng.New(seed)
		env := smallEnv(r)
		job := linearChainJob(r)
		obj := MinFinish
		if costObj {
			obj = MinCost
		}

		got, gotErr := Build(env, EmptyCalendars(env), job, Options{Objective: obj})
		wantFinish, wantCost, feasible := bruteForceChain(env, job, obj)

		if gotErr != nil {
			// The DP bounds are tighter than raw earliest-start, so a DP
			// failure with a feasible brute-force solution is possible
			// only through the lft tightening; for single chains the
			// bounds coincide with the recurrence, so this must agree.
			return !feasible
		}
		if !feasible {
			return false // DP found something brute force says cannot exist
		}
		if obj == MinCost {
			return got.Cost == wantCost
		}
		return got.Finish == wantFinish
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
