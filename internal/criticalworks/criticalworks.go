// Package criticalworks implements the paper's core application-level
// scheduling algorithm: the critical works method (§3, refs [21–23]).
//
// The method is a multiphase procedure over a compound job's DAG:
//
//  1. Find the next critical work — the longest (by best-case estimated
//     execution time, data transfers included) chain of still-unassigned
//     tasks.
//  2. Choose the best combination of available resources for that chain by
//     dynamic programming over (chain position × candidate node),
//     minimizing the economic cost Σ ceil(V/T)·rate subject to the job's
//     deadline and the nodes' reservation calendars.
//  3. Detect collisions — the chain's ideal placement landing on node time
//     already reserved by a task of a different critical work (the paper's
//     P4/P5 clash on node 3) — and resolve them by economic reallocation
//     (the DP simply pays for the next-best slot or node).
//  4. Repeat until every task is placed, yielding one Distribution
//     (a Schedule here).
package criticalworks

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/economy"
	"repro/internal/estimate"
	"repro/internal/resource"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// Placement is one line of a Distribution: a task bound to a node for a
// wall-time reservation window, at the user-estimated duration.
type Placement struct {
	Task   dag.TaskID
	Node   resource.NodeID
	Window simtime.Interval
}

// Collision records one resource conflict between critical works: the task
// wanted Window on Node (its ideal placement) but the slot was already held
// by Holder. Resolution is whatever placement the task actually received.
type Collision struct {
	Task   dag.TaskID
	Node   resource.NodeID
	Window simtime.Interval
	Holder resource.Owner
}

// Schedule is the paper's Distribution: a complete coordinated allocation
// of all tasks of one job.
type Schedule struct {
	Job        *dag.Job
	Placements map[dag.TaskID]Placement
	Collisions []Collision

	// Cost is the economic cost Σ ceil(V/T)·rate(node); BareCF is the same
	// sum with rate 1 — the paper's CF as printed in Fig. 2.
	Cost   float64
	BareCF int64

	// Start and Finish bound the whole job's execution window.
	Start, Finish simtime.Time

	// Evaluations counts slot-fitting probes performed by the DP — the
	// "computational expenses" of generating this distribution that §4
	// contrasts between S1 and MS1.
	Evaluations int64

	// Partial marks a schedule abandoned mid-construction because some
	// critical work had no feasible placement. Its Placements cover only
	// the chains placed before the failure; its Collisions are still
	// meaningful (the method attempted those allocations).
	Partial bool

	// memo, when the build ran with Options.CaptureMemo and succeeded at
	// margin 1, records the construction trace for incremental repair
	// (repair.go); nil otherwise.
	memo *BuildMemo
}

// Memo returns the build's repair memo, or nil when the build was not
// memoized (Options.CaptureMemo off, non-ResolveReallocate mode, or
// success only at an inflated serialization margin).
func (s *Schedule) Memo() *BuildMemo { return s.memo }

// Makespan returns Finish − Start.
func (s *Schedule) Makespan() simtime.Time { return s.Finish - s.Start }

// MeetsDeadline reports whether the schedule completes by the job deadline.
func (s *Schedule) MeetsDeadline() bool { return s.Finish <= s.Job.Deadline }

// Objective selects the DP's optimization target for each critical work.
type Objective int

const (
	// MinFinish minimizes the chain's completion time, breaking ties by
	// economic cost — the QoS-first target used when generating the fast
	// (low-tier) distributions of a strategy.
	MinFinish Objective = iota
	// MinCost minimizes economic cost, breaking ties by completion time —
	// the budget-first target. With loose deadlines it drifts to the
	// slowest feasible nodes, trading promptness for quota.
	MinCost
)

// CollisionMode selects how a blocked ideal placement is resolved; the
// non-default mode exists for the E8 ablation.
type CollisionMode int

const (
	// ResolveReallocate lets the DP move the task to any feasible node and
	// slot (the paper's economic reallocation).
	ResolveReallocate CollisionMode = iota
	// ResolveDelay pins each task to its ideal node and only ever delays it
	// there — the naive baseline the paper's mechanism improves on.
	ResolveDelay
)

// Options configures one Build run.
type Options struct {
	// JobName labels reservations; defaults to the job's own name.
	JobName string
	// Table holds user estimates; defaults to estimate.Derive(job).
	Table *estimate.Table
	// Catalog supplies data transfer times; defaults to remote access.
	Catalog *data.Catalog
	// Pricing sets node rates; defaults to FlatPricing{1} (the paper's
	// bare CF).
	Pricing economy.Pricing
	// Candidates restricts the usable nodes; nil means every node.
	Candidates []resource.NodeID
	// Release is the earliest model time any task may start.
	Release simtime.Time
	// Deadline overrides the job's deadline when non-zero.
	Deadline simtime.Time
	// Horizon bounds calendar searches; defaults to 4× the deadline span.
	Horizon simtime.Time
	// Mode selects collision resolution; default ResolveReallocate.
	Mode CollisionMode
	// Objective selects the DP target; default MinFinish.
	Objective Objective
	// Ctx, when non-nil, bounds the build's execution: cancellation is
	// checked between critical works and between DP rows, so a
	// pathological job cannot wedge the worker running it. A cancelled
	// build aborts with an error wrapping ctx.Err() (never an
	// InfeasibleError). nil means no cancellation — byte-identical to
	// builds before the hook existed.
	Ctx context.Context
	// Telemetry, when non-nil, receives the build's runtime metrics
	// (grid_criticalworks_*: outcome counters, evaluation and collision
	// totals, wall-clock latency). Telemetry only observes — results are
	// byte-identical with it on or off — and a nil registry costs the
	// build nothing (zero allocations on the hot path).
	Telemetry *telemetry.Registry
	// Spans, when non-nil, traces the build: one root span per Build,
	// a child per margin attempt, one per critical work, and one per DP
	// phase (ideal/actual). nil disables tracing at zero cost.
	Spans *telemetry.Tracer
	// CaptureMemo records the margin-1 construction trace on the returned
	// Schedule (Schedule.Memo) so a later build over a shrunken candidate
	// set can be replayed or spliced instead of re-solved (TryRepair).
	// Only margin-1 successes in ResolveReallocate mode are memoized;
	// capture never changes the build's result.
	CaptureMemo bool
	// ParentSpan links the build's root span under the caller's span;
	// when zero, the parent is read from Ctx (telemetry.SpanFromContext).
	ParentSpan telemetry.SpanID
}

// Calendars is the mutable scheduling view: one calendar per node. Build
// reserves into it, so callers pass clones (see Snapshot) when the live
// books must stay untouched.
type Calendars map[resource.NodeID]*resource.Calendar

// Snapshot clones the live calendars of every node in env.
func Snapshot(env *resource.Environment) Calendars {
	out := make(Calendars, env.NumNodes())
	for _, n := range env.Nodes() {
		out[n.ID] = n.Calendar().Clone()
	}
	return out
}

// SnapshotVersioned clones the live calendars of every node in env and
// records the generation each one carried, forming the read-set for
// optimistic placement proposals (resource.Proposal, DESIGN.md §12):
// a commit whose node generations still match needs no re-validation.
func SnapshotVersioned(env *resource.Environment) (Calendars, map[resource.NodeID]uint64) {
	out := make(Calendars, env.NumNodes())
	gens := make(map[resource.NodeID]uint64, env.NumNodes())
	for _, n := range env.Nodes() {
		cal := n.Calendar()
		out[n.ID] = cal.Clone()
		gens[n.ID] = cal.Gen()
	}
	return out, gens
}

// Live returns a view over the nodes' real calendars, without cloning.
// Build mutates whatever view it is given; pass Live only when the
// reservations should land directly in the environment.
func Live(env *resource.Environment) Calendars {
	out := make(Calendars, env.NumNodes())
	for _, n := range env.Nodes() {
		out[n.ID] = n.Calendar()
	}
	return out
}

// EmptyCalendars returns fresh calendars for every node in env.
func EmptyCalendars(env *resource.Environment) Calendars {
	out := make(Calendars, env.NumNodes())
	for _, n := range env.Nodes() {
		out[n.ID] = resource.NewCalendar()
	}
	return out
}

// InfeasibleError reports that no resource combination lets the job meet
// its deadline; Task names the first chain task that could not be placed.
type InfeasibleError struct {
	Job  string
	Task string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("criticalworks: job %q: no feasible placement for task %q", e.Job, e.Task)
}

// ErrNoCandidates reports an empty candidate node set.
var ErrNoCandidates = errors.New("criticalworks: no candidate nodes")

// builder carries one Build attempt's state.
type builder struct {
	env    *resource.Environment
	cals   Calendars
	job    *dag.Job
	opt    Options
	margin float64 // serialization margin scaling the bounds

	placed map[dag.TaskID]Placement
	colls  []Collision
	evals  int64

	// capture makes placeChain record a ChainMemo per critical work; set
	// only on the margin-1 attempt of a memoizing ResolveReallocate build.
	capture bool
	chains  []ChainMemo

	// span is the enclosing margin attempt's span ID; 0 when tracing is
	// off (per-chain and per-DP-phase spans hang under it).
	span telemetry.SpanID

	bestUp   []simtime.Time // earliest-start offset per task (margin-scaled)
	bestDown []simtime.Time // remaining time after task finish (margin-scaled)
}

// margins is the retry ladder of serialization margins. The pure best-case
// bounds (margin 1) assume unlimited fastest nodes; when parallel branches
// must serialize on a scarce resource pool, later critical works can find
// their window already pinned shut by earlier ones. Each retry inflates
// the room the bounds reserve between dependent tasks, trading schedule
// compactness for feasibility — the multiphase conflict resolution of §3
// at the whole-schedule level.
var margins = []float64{1, 1.5, 2, 3, 4}

// Build runs the critical works method for one job against the given
// calendar view and returns the resulting Distribution. The view is
// mutated: every placement is reserved under Owner{JobName, taskName}.
func Build(env *resource.Environment, cals Calendars, job *dag.Job, opt Options) (*Schedule, error) {
	if opt.Telemetry == nil && opt.Spans == nil {
		return build(env, cals, job, opt)
	}
	var start time.Time
	if opt.Telemetry != nil {
		start = time.Now()
	}
	name := opt.JobName
	if name == "" {
		name = job.Name
	}
	parent := opt.ParentSpan
	if parent == 0 && opt.Ctx != nil {
		parent = telemetry.SpanFromContext(opt.Ctx)
	}
	root := opt.Spans.Start("criticalworks.build", parent)
	root.SetStr("job", name)
	if root != nil {
		opt.ParentSpan = root.ID()
	}
	sched, err := build(env, cals, job, opt)
	var evals, colls int64
	if sched != nil {
		evals = sched.Evaluations
		colls = int64(len(sched.Collisions))
	}
	if opt.Telemetry != nil {
		opt.Telemetry.Counter("grid_criticalworks_builds_total",
			"critical-works builds by outcome", telemetry.L("result", buildResult(err))).Inc()
		opt.Telemetry.Counter("grid_criticalworks_evaluations_total",
			"DP slot-fitting probes performed").Add(uint64(evals))
		opt.Telemetry.Counter("grid_criticalworks_collisions_total",
			"resource collisions between critical works").Add(uint64(colls))
		opt.Telemetry.Histogram("grid_criticalworks_build_seconds",
			"wall-clock latency of one critical-works build", nil).Observe(telemetry.Since(start))
	}
	root.SetStr("result", buildResult(err)).SetInt("evaluations", evals).SetInt("collisions", colls).End()
	return sched, err
}

// buildResult classifies a build's outcome for the telemetry counters.
func buildResult(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		var inf *InfeasibleError
		if errors.As(err, &inf) {
			return "infeasible"
		}
		return "error"
	}
}

// normalize applies Build's option defaulting. It is shared with the
// repair path (TryRepair), which must key its memo validation on exactly
// the effective options a full build would run under. tableDerived
// reports whether the estimate table was defaulted via estimate.Derive —
// a deterministic function of the job, so two derived tables are
// interchangeable where two caller-supplied tables must be pointer-equal.
func normalize(env *resource.Environment, job *dag.Job, opt Options) (_ Options, tableDerived bool, _ error) {
	if opt.JobName == "" {
		opt.JobName = job.Name
	}
	tableDerived = opt.Table == nil
	if tableDerived {
		opt.Table = estimate.Derive(job)
	}
	if err := opt.Table.CoversJob(job); err != nil {
		return opt, tableDerived, err
	}
	if opt.Catalog == nil {
		opt.Catalog = data.NewCatalog(data.RemoteAccess, 0)
	}
	if opt.Pricing == nil {
		opt.Pricing = economy.FlatPricing{PerTick: 1}
	}
	if opt.Deadline == 0 {
		opt.Deadline = job.Deadline
	}
	if opt.Deadline <= opt.Release {
		return opt, tableDerived, &InfeasibleError{Job: opt.JobName, Task: job.Task(job.TopoOrder()[0]).Name}
	}
	if opt.Horizon == 0 {
		opt.Horizon = opt.Release + 4*(opt.Deadline-opt.Release)
	}
	if opt.Candidates == nil {
		opt.Candidates = allNodes(env)
	}
	if len(opt.Candidates) == 0 {
		return opt, tableDerived, ErrNoCandidates
	}
	return opt, tableDerived, nil
}

// build is the uninstrumented core of Build.
func build(env *resource.Environment, cals Calendars, job *dag.Job, opt Options) (*Schedule, error) {
	opt, tableDerived, err := normalize(env, job, opt)
	if err != nil {
		return nil, err
	}
	var memo *BuildMemo
	if opt.CaptureMemo && opt.Mode == ResolveReallocate {
		// The read-set is captured from the input view before any attempt
		// mutates it: the generations the build's decisions depended on.
		reads := make(map[resource.NodeID]uint64, len(opt.Candidates))
		for _, id := range opt.Candidates {
			if c, ok := cals[id]; ok {
				reads[id] = c.Gen()
			}
		}
		memo = newMemo(opt, tableDerived, reads)
	}

	var firstPartial *Schedule
	var firstErr error
	var evals int64
	for _, mg := range margins {
		attempt := opt
		attempt.Catalog = opt.Catalog.Clone()
		trial := cloneView(cals)
		b := &builder{
			env:     env,
			cals:    trial,
			job:     job,
			opt:     attempt,
			margin:  mg,
			placed:  make(map[dag.TaskID]Placement, job.NumTasks()),
			capture: memo != nil && mg == 1,
		}
		var asp *telemetry.Span
		if opt.Spans != nil {
			asp = opt.Spans.Start("criticalworks.attempt", opt.ParentSpan)
			asp.SetInt("margin_pct", int64(mg*100))
			b.span = asp.ID()
		}
		sched, err := b.buildOnce()
		asp.SetStr("result", buildResult(err)).SetInt("evaluations", b.evals).End()
		evals += b.evals
		if err == nil {
			sched.Evaluations = evals
			if b.capture {
				memo.Chains = b.chains
				memo.Schedule = sched
				sched.memo = memo
			}
			// Adopt the successful attempt's reservations and data
			// placements into the caller's view.
			for id, c := range trial {
				cals[id] = c
			}
			*opt.Catalog = *attempt.Catalog
			return sched, nil
		}
		var inf *InfeasibleError
		if !errors.As(err, &inf) {
			return nil, err
		}
		if firstPartial == nil {
			// Keep the margin-1 attempt's partial schedule: its collisions
			// reflect the method's genuine allocation attempts (Fig. 3b
			// counts them).
			firstPartial, firstErr = b.partial(), err
		}
	}
	firstPartial.Evaluations = evals
	return firstPartial, firstErr
}

// cancelled returns a build-abort error when the run's context is done.
func (b *builder) cancelled() error {
	if b.opt.Ctx == nil {
		return nil
	}
	if err := b.opt.Ctx.Err(); err != nil {
		return fmt.Errorf("criticalworks: job %q build cancelled: %w", b.opt.JobName, err)
	}
	return nil
}

// buildOnce runs the full multiphase procedure for one margin.
func (b *builder) buildOnce() (*Schedule, error) {
	b.computeBounds()
	for len(b.placed) < b.job.NumTasks() {
		if err := b.cancelled(); err != nil {
			return nil, err
		}
		chain, ok := b.job.LongestChain(b.chainWeights(), func(id dag.TaskID) bool {
			_, done := b.placed[id]
			return !done
		})
		if !ok {
			break // cannot happen while placed < NumTasks; defensive
		}
		if err := b.placeChain(chain); err != nil {
			return nil, err
		}
	}
	return b.finish()
}

// cloneView deep-copies a calendar view.
func cloneView(cals Calendars) Calendars {
	out := make(Calendars, len(cals))
	for id, c := range cals {
		out[id] = c.Clone()
	}
	return out
}

// partial packages an abandoned build: placements and collisions recorded
// so far, no cost accounting.
func (b *builder) partial() *Schedule {
	return &Schedule{
		Job:         b.job,
		Placements:  b.placed,
		Collisions:  b.colls,
		Evaluations: b.evals,
		Partial:     true,
	}
}

// chainWeights gives the critical-work metric: best-case task estimates
// plus base transfer times.
func (b *builder) chainWeights() dag.WeightFunc {
	return dag.WeightFunc{
		Task: func(t dag.Task) simtime.Time { return b.opt.Table.Best(t.ID) },
		Edge: func(e dag.Edge) simtime.Time { return e.BaseTime },
	}
}

// computeBounds fills bestUp and bestDown: the best-case (fastest-node)
// time that must elapse before a task can start and after it finishes,
// transfer times included. These bounds both constrain tasks whose
// neighbours are not yet placed and reserve room for those neighbours:
// without the transfer terms, the first critical work packs its tasks
// back-to-back and later works cannot squeeze their tasks (plus transfers)
// into the remaining windows — the idle gaps visible in the paper's Fig. 2
// Gantt charts are exactly this reserved room.
func (b *builder) computeBounds() {
	n := b.job.NumTasks()
	b.bestUp = make([]simtime.Time, n)
	b.bestDown = make([]simtime.Time, n)
	topo := b.job.TopoOrder()
	scale := func(t simtime.Time) simtime.Time {
		if b.margin <= 1 {
			return t
		}
		return simtime.Time(float64(t)*b.margin + 0.5)
	}
	for _, id := range topo {
		var up simtime.Time
		for _, e := range b.job.In(id) {
			cand := b.bestUp[e.From] + scale(b.opt.Table.Best(e.From)+e.BaseTime)
			if cand > up {
				up = cand
			}
		}
		b.bestUp[id] = up
	}
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		var down simtime.Time
		for _, e := range b.job.Out(id) {
			cand := b.bestDown[e.To] + scale(b.opt.Table.Best(e.To)+e.BaseTime)
			if cand > down {
				down = cand
			}
		}
		b.bestDown[id] = down
	}
}

func allNodes(env *resource.Environment) []resource.NodeID {
	ids := make([]resource.NodeID, env.NumNodes())
	for i := range ids {
		ids[i] = resource.NodeID(i)
	}
	return ids
}

// finish assembles the Schedule, prices it, commits data placements and
// verifies precedence consistency (a violation is an internal bug).
func (b *builder) finish() (*Schedule, error) {
	s := &Schedule{
		Job:         b.job,
		Placements:  b.placed,
		Collisions:  b.colls,
		Start:       simtime.Infinity,
		Evaluations: b.evals,
	}
	for id, p := range b.placed {
		dur := p.Window.Len()
		vol := b.opt.Table.Volume(id)
		s.BareCF += economy.TaskCharge(vol, dur)
		s.Cost += economy.WeightedTaskCharge(vol, dur, b.opt.Pricing.Rate(b.env.Node(p.Node)))
		if p.Window.Start < s.Start {
			s.Start = p.Window.Start
		}
		if p.Window.End > s.Finish {
			s.Finish = p.Window.End
		}
	}
	for _, e := range b.job.Edges() {
		from, to := b.placed[e.From], b.placed[e.To]
		tt := b.transferTime(e, from.Node, to.Node)
		if to.Window.Start < from.Window.End+tt {
			return nil, fmt.Errorf("criticalworks: internal error: edge %s violates precedence (%v + %d > %v)",
				e.Name, from.Window, tt, to.Window)
		}
		b.opt.Catalog.Commit(b.opt.JobName, b.job.Task(e.From).Name, from.Node, to.Node)
	}
	sort.Slice(s.Collisions, func(i, j int) bool {
		a, c := s.Collisions[i], s.Collisions[j]
		if a.Window.Start != c.Window.Start {
			return a.Window.Start < c.Window.Start
		}
		return a.Task < c.Task
	})
	return s, nil
}

// transferTime is the policy-aware transfer time for edge e between nodes.
func (b *builder) transferTime(e dag.Edge, from, to resource.NodeID) simtime.Time {
	return b.opt.Catalog.TransferTime(b.opt.JobName, b.job.Task(e.From).Name, e.BaseTime, from, to)
}
