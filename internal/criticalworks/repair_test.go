package criticalworks

import (
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/economy"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// memoizedBuild runs a CaptureMemo build of job against a clone of live and
// returns the schedule (whose memo reads live's generations) plus the
// catalog the build adopted into.
func memoizedBuild(t *testing.T, env *resource.Environment, live Calendars, job *dag.Job, opt Options) (*Schedule, *data.Catalog) {
	t.Helper()
	if opt.Catalog == nil {
		opt.Catalog = data.NewCatalog(data.RemoteAccess, 0)
	}
	opt.CaptureMemo = true
	s, err := Build(env, cloneView(live), job, opt)
	if err != nil {
		t.Fatalf("memoized build: %v", err)
	}
	if s.Memo() == nil {
		t.Fatal("build succeeded above margin 1: no memo to test against")
	}
	return s, opt.Catalog
}

// sameSchedule asserts byte-identical schedule content: placements,
// collisions, cost accounting and bounds. Evaluations are deliberately
// excluded (repair.go documents the divergence).
func sameSchedule(t *testing.T, got, want *Schedule) {
	t.Helper()
	if got.Partial != want.Partial {
		t.Fatalf("Partial = %v, want %v", got.Partial, want.Partial)
	}
	if !reflect.DeepEqual(got.Placements, want.Placements) {
		t.Errorf("placements differ:\n got %v\nwant %v", got.Placements, want.Placements)
	}
	if !reflect.DeepEqual(got.Collisions, want.Collisions) {
		t.Errorf("collisions differ:\n got %v\nwant %v", got.Collisions, want.Collisions)
	}
	if got.Cost != want.Cost || got.BareCF != want.BareCF {
		t.Errorf("cost = (%v,%d), want (%v,%d)", got.Cost, got.BareCF, want.Cost, want.BareCF)
	}
	if got.Start != want.Start || got.Finish != want.Finish {
		t.Errorf("bounds = [%d,%d], want [%d,%d]", got.Start, got.Finish, want.Start, want.Finish)
	}
}

// liveGens resolves generations from the test's stand-in live books.
func liveGens(live Calendars) func(resource.NodeID) uint64 {
	return func(id resource.NodeID) uint64 { return live[id].Gen() }
}

// snapOf returns a snapshot closure over the test's live books.
func snapOf(live Calendars) func() Calendars {
	return func() Calendars { return cloneView(live) }
}

// noSnap fails the test if the repair path snapshots calendars: a full
// replay must not read any.
func noSnap(t *testing.T) func() Calendars {
	return func() Calendars {
		t.Fatal("full replay took a calendar snapshot")
		return nil
	}
}

func TestRepairFullReplay(t *testing.T) {
	job := fig2Job(20)
	env := paperEnv()
	live := EmptyCalendars(env)
	s, cat := memoizedBuild(t, env, live, job, Options{})

	cat2 := data.NewCatalog(data.RemoteAccess, 0)
	got, out := TryRepair(env, job, Options{CaptureMemo: true, Catalog: cat2}, s.Memo(), liveGens(live), noSnap(t))
	if out != RepairReplayed {
		t.Fatalf("outcome = %v, want replayed", out)
	}
	sameSchedule(t, got, s)
	if got.Evaluations != s.Evaluations {
		t.Errorf("replay evaluations = %d, want the memoized %d", got.Evaluations, s.Evaluations)
	}
	if !reflect.DeepEqual(cat, cat2) {
		t.Error("replayed catalog state differs from the build's")
	}
	if got.Memo() == nil {
		t.Error("replayed schedule dropped its memo")
	}
}

func TestRepairSplice(t *testing.T) {
	// Two independent critical works: the A-chain (the longer one, placed
	// first) and the lone task B, which lands on the second fast node
	// because the first is taken. Removing that node forces a genuine
	// splice — the A-chain replays, B re-solves with plenty of slack.
	// (fig2's second chain is sandwiched between first-chain placements,
	// so removing its node makes margin 1 infeasible and the repair goes
	// legitimately stale instead; TestRepairStaleOnFirstChainRemoval and
	// the fuzz target cover that regime.)
	b := dag.NewBuilder("splice").Deadline(100)
	b.Task("A1", 2, 20)
	b.Task("A2", 2, 20)
	b.Task("B", 2, 10)
	b.Edge("d", "A1", "A2", 1, 10)
	job := b.MustBuild()
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "n0", 1.0, 1, "d"),
		resource.NewNode(1, "n1", 1.0, 1, "d"),
		resource.NewNode(2, "n2", 0.5, 1, "d"),
	})
	live := EmptyCalendars(env)
	s, _ := memoizedBuild(t, env, live, job, Options{})
	memo := s.Memo()

	// Find a node first touched by a non-first chain: removing it forces a
	// genuine splice (replayed prefix + resumed DP).
	target, wantAt := resource.NodeID(0), 0
	for i := 1; i < len(memo.Chains) && wantAt == 0; i++ {
	scan:
		for _, n := range memo.Chains[i].Touched {
			for j := 0; j < i; j++ {
				for _, m := range memo.Chains[j].Touched {
					if m == n {
						continue scan
					}
				}
			}
			target, wantAt = n, i
			break
		}
	}
	if wantAt == 0 {
		t.Fatal("fig2 build left no node to splice on; restructure the test job")
	}
	var survivors []resource.NodeID
	for _, id := range memo.Candidates {
		if id != target {
			survivors = append(survivors, id)
		}
	}

	var spliceView Calendars
	snap := func() Calendars { spliceView = cloneView(live); return spliceView }
	cat := data.NewCatalog(data.RemoteAccess, 0)
	got, out := TryRepair(env, job, Options{CaptureMemo: true, Catalog: cat, Candidates: survivors}, memo, liveGens(live), snap)
	if out != RepairSpliced {
		t.Fatalf("outcome = %v, want spliced (removed node %d, splice at %d)", out, target, wantAt)
	}

	// The hard contract: the spliced schedule, its catalog and its calendar
	// view are exactly what a from-scratch Build over the survivors returns.
	refCat := data.NewCatalog(data.RemoteAccess, 0)
	refView := cloneView(live)
	want, err := Build(env, refView, job, Options{Catalog: refCat, Candidates: survivors})
	if err != nil {
		t.Fatalf("reference build failed where splice succeeded: %v", err)
	}
	sameSchedule(t, got, want)
	if !reflect.DeepEqual(cat, refCat) {
		t.Error("spliced catalog state differs from the reference build's")
	}
	for _, id := range survivors {
		if !reflect.DeepEqual(spliceView[id].Reservations(), refView[id].Reservations()) {
			t.Errorf("node %d reservations differ after splice", id)
		}
	}

	// The spliced build memoizes itself: repairing again over the same
	// survivors replays it whole.
	if got.Memo() == nil {
		t.Fatal("spliced schedule carries no memo")
	}
	again, out := TryRepair(env, job, Options{Candidates: survivors, Catalog: data.NewCatalog(data.RemoteAccess, 0)},
		got.Memo(), liveGens(live), noSnap(t))
	if out != RepairReplayed {
		t.Fatalf("re-repair outcome = %v, want replayed", out)
	}
	sameSchedule(t, again, got)
}

func TestRepairStaleOnFirstChainRemoval(t *testing.T) {
	job := fig2Job(20)
	env := paperEnv()
	live := EmptyCalendars(env)
	s, _ := memoizedBuild(t, env, live, job, Options{})
	memo := s.Memo()

	// Removing a node the FIRST chain touched would splice at 0 — no
	// cheaper than Build — so the memo must report stale.
	target := memo.Chains[0].Touched[0]
	var survivors []resource.NodeID
	for _, id := range memo.Candidates {
		if id != target {
			survivors = append(survivors, id)
		}
	}
	if _, out := TryRepair(env, job, Options{Candidates: survivors}, memo, liveGens(live), snapOf(live)); out != RepairStale {
		t.Fatalf("outcome = %v, want stale", out)
	}
}

func TestRepairStaleCases(t *testing.T) {
	job := fig2Job(20)
	env := paperEnv()
	live := EmptyCalendars(env)
	s, _ := memoizedBuild(t, env, live, job, Options{})
	memo := s.Memo()

	cases := []struct {
		name string
		opt  Options
		gens func(resource.NodeID) uint64
	}{
		{name: "nil memo"},
		{name: "release mismatch", opt: Options{Release: 1}},
		{name: "deadline mismatch", opt: Options{Deadline: 25}},
		{name: "objective mismatch", opt: Options{Objective: MinCost}},
		{name: "delay mode", opt: Options{Mode: ResolveDelay}},
		{name: "pricing mismatch", opt: Options{Pricing: economy.PerformancePricing{Base: 10}}},
		{name: "unknown candidate", opt: Options{Candidates: []resource.NodeID{0, 1, 2, 9}}},
		{name: "reordered candidates", opt: Options{Candidates: []resource.NodeID{1, 0, 2, 3}}},
		{name: "generation moved", gens: func(id resource.NodeID) uint64 { return live[id].Gen() + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := memo
			if tc.name == "nil memo" {
				m = nil
			}
			gens := tc.gens
			if gens == nil {
				gens = liveGens(live)
			}
			if _, out := TryRepair(env, job, tc.opt, m, gens, snapOf(live)); out != RepairStale {
				t.Fatalf("outcome = %v, want stale", out)
			}
		})
	}

	t.Run("dirty catalog", func(t *testing.T) {
		cat := data.NewCatalog(data.RemoteAccess, 0)
		cat.Commit("other", "X", 0, 1)
		if _, out := TryRepair(env, job, Options{Catalog: cat}, memo, liveGens(live), snapOf(live)); out != RepairStale {
			t.Fatalf("outcome = %v, want stale", out)
		}
	})

	t.Run("live reservation bumps generation", func(t *testing.T) {
		bumped := cloneView(live)
		if err := bumped[0].Reserve(simtime.Interval{Start: 100, End: 110}, resource.External); err != nil {
			t.Fatal(err)
		}
		if _, out := TryRepair(env, job, Options{}, memo, liveGens(bumped), snapOf(bumped)); out != RepairStale {
			t.Fatalf("outcome = %v, want stale", out)
		}
	})
}

func TestMemoCaptureGating(t *testing.T) {
	job := fig2Job(20)
	env := paperEnv()

	s, err := Build(env, EmptyCalendars(env), job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Memo() != nil {
		t.Error("memo captured without CaptureMemo")
	}

	s, err = Build(env, EmptyCalendars(env), job, Options{CaptureMemo: true, Mode: ResolveDelay})
	if err != nil {
		t.Fatal(err)
	}
	if s.Memo() != nil {
		t.Error("memo captured in ResolveDelay mode")
	}
}

// FuzzRepairSplice drives random (environment, job, background load,
// candidate subset) tuples through TryRepair and pins the hard contract:
// whenever repair reports replayed or spliced, the schedule, the adopted
// catalog and the calendar view are identical — placement for placement,
// collision for collision — to a from-scratch Build over the same
// survivors and snapshot. Stale is always a legal answer; Evaluations are
// the one field allowed to differ.
func FuzzRepairSplice(f *testing.F) {
	for seed := uint64(1); seed <= 24; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := rng.New(seed)
		env := randomEnv(r)
		job := randomJob(r)
		live := EmptyCalendars(env)
		for i := 0; i < r.Intn(4); i++ {
			n := resource.NodeID(r.Intn(env.NumNodes()))
			st := simtime.Time(r.Intn(30))
			_ = live[n].Reserve(simtime.Interval{Start: st, End: st + simtime.Time(r.IntBetween(1, 8))}, resource.External)
		}
		policy := data.Policy(r.Intn(3))
		opt := Options{
			Objective:   Objective(r.Intn(2)),
			Catalog:     data.NewCatalog(policy, 0),
			CaptureMemo: true,
		}
		s, err := Build(env, cloneView(live), job, opt)
		if err != nil || s.Memo() == nil {
			return // infeasible, or feasible only above margin 1: nothing to repair
		}
		memo := s.Memo()

		// An order-preserving random subsequence of the memoized candidates.
		var survivors []resource.NodeID
		for _, id := range memo.Candidates {
			if !r.Bool(0.35) {
				survivors = append(survivors, id)
			}
		}
		if len(survivors) == 0 {
			return
		}

		var spliceView Calendars
		snap := func() Calendars { spliceView = cloneView(live); return spliceView }
		cat := data.NewCatalog(policy, 0)
		got, out := TryRepair(env, job, Options{Catalog: cat, Candidates: survivors}, memo, liveGens(live), snap)
		if out == RepairStale {
			if got != nil {
				t.Fatal("stale repair returned a schedule")
			}
			return
		}

		refCat := data.NewCatalog(policy, 0)
		refView := cloneView(live)
		want, err := Build(env, refView, job, Options{Catalog: refCat, Candidates: survivors})
		if err != nil {
			t.Fatalf("seed %d: repair %v but reference build failed: %v", seed, out, err)
		}
		sameSchedule(t, got, want)
		if !reflect.DeepEqual(cat, refCat) {
			t.Errorf("seed %d: catalog state diverged after %v", seed, out)
		}
		if out == RepairSpliced {
			for _, id := range survivors {
				if !reflect.DeepEqual(spliceView[id].Reservations(), refView[id].Reservations()) {
					t.Errorf("seed %d: node %d reservations differ after splice", seed, id)
				}
			}
		}
	})
}
