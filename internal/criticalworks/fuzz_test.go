package criticalworks

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dag"
	"repro/internal/resource"
	"repro/internal/simtime"
)

// fuzzReader decodes the fuzzer's byte stream into bounded scheduling
// inputs; exhausted input reads as zero, so every byte slice decodes to
// some valid (job, environment, calendar) triple.
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

// fuzzPerfs are the §3 estimation tiers the decoder assigns to nodes.
var fuzzPerfs = []float64{1.0, 0.5, 0.33, 0.25}

// decodeFuzzInput maps raw bytes to a small DAG (≤ 6 tasks; edges only go
// from lower to higher task index, so the graph is acyclic by
// construction), a node set (≤ 4 nodes), pre-existing background
// reservations, and Build options.
func decodeFuzzInput(data []byte) (*dag.Job, *resource.Environment, Calendars, Options) {
	r := &fuzzReader{data: data}

	nt := 1 + int(r.next()%6)
	b := dag.NewBuilder("fuzz")
	for i := 0; i < nt; i++ {
		baseTime := simtime.Time(1 + r.next()%4)
		volume := int64(10 * (1 + r.next()%4))
		b.Task(fmt.Sprintf("T%d", i), baseTime, volume)
	}
	for i := 0; i < nt; i++ {
		for j := i + 1; j < nt; j++ {
			if r.next()%4 != 0 {
				continue
			}
			baseTime := simtime.Time(1 + r.next()%3)
			b.Edge(fmt.Sprintf("E%d-%d", i, j),
				fmt.Sprintf("T%d", i), fmt.Sprintf("T%d", j), baseTime, 10)
		}
	}

	nn := 1 + int(r.next()%4)
	deadline := simtime.Time(10 + r.next()%80)
	release := simtime.Time(r.next() % 6)
	var objective Objective
	if r.next()%2 == 1 {
		objective = MinCost
	}
	var mode CollisionMode
	if r.next()%2 == 1 {
		mode = ResolveDelay
	}

	b.Deadline(deadline)
	job := b.MustBuild()

	nodes := make([]*resource.Node, nn)
	for i := 0; i < nn; i++ {
		p := fuzzPerfs[i%len(fuzzPerfs)]
		nodes[i] = resource.NewNode(resource.NodeID(i), fmt.Sprintf("node-%d", i+1), p, p, "fuzz")
	}
	env := resource.NewEnvironment(nodes)

	cals := EmptyCalendars(env)
	for i := 0; i < nn; i++ {
		k := int(r.next() % 3)
		for q := 0; q < k; q++ {
			start := simtime.Time(r.next() % 40)
			dur := simtime.Time(1 + r.next()%10)
			// Overlapping background windows are simply skipped; the decoder
			// never needs to produce an invalid calendar.
			_ = cals[resource.NodeID(i)].Reserve(
				simtime.Interval{Start: start, End: start + dur},
				resource.Owner{Job: "external", Task: fmt.Sprintf("bg-%d-%d", i, q)})
		}
	}

	return job, env, cals, Options{Release: release, Objective: objective, Mode: mode}
}

// fig2SeedBytes encodes the paper's Fig. 2 worked example through
// decodeFuzzInput's layout, seeding the corpus with the one input whose
// correct behaviour is known exactly.
func fig2SeedBytes() []byte {
	var out []byte
	out = append(out, 5) // 1+5%6 = 6 tasks
	// (baseTime-1, volume/10-1) per task: T=2,3,1,2,1,2; V=20,30,10,20,10,20.
	out = append(out, 1, 1, 2, 2, 0, 0, 1, 1, 0, 0, 1, 1)
	// Edge selector per i<j pair (0 ⇒ edge present, then its baseTime-1 byte;
	// 1 ⇒ absent). Fig. 2's edges: 01,02,13,14,23,24,35,45, all baseTime 1.
	out = append(out,
		0, 0, // 0-1
		0, 0, // 0-2
		1, 1, 1, // 0-3, 0-4, 0-5
		1,    // 1-2
		0, 0, // 1-3
		0, 0, // 1-4
		1,    // 1-5
		0, 0, // 2-3
		0, 0, // 2-4
		1,    // 2-5
		1,    // 3-4
		0, 0, // 3-5
		0, 0, // 4-5
	)
	out = append(out, 3)          // 1+3%4 = 4 nodes
	out = append(out, 10)         // deadline 10+10 = 20
	out = append(out, 0)          // release 0
	out = append(out, 0, 0)       // MinFinish, ResolveReallocate
	out = append(out, 0, 0, 0, 0) // no background reservations
	return out
}

// FuzzBuildSchedule drives the critical works method over random small
// DAGs and calendars and checks the safety invariants every Distribution
// must satisfy — including partial (abandoned) ones:
//
//   - no task starts before the release time, and none is reserved beyond
//     the search horizon;
//   - no node slot is double-booked, neither between tasks nor against the
//     pre-existing background reservations;
//   - DAG precedence holds: a successor never starts before its
//     predecessor's reservation ends;
//   - a schedule claiming MeetsDeadline actually finishes by the deadline.
func FuzzBuildSchedule(f *testing.F) {
	f.Add(fig2SeedBytes())
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{2, 3, 3, 0, 0, 0, 1, 0, 1, 20, 2, 1, 1, 2, 1, 5, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		job, env, cals, opt := decodeFuzzInput(data)

		// The background load, recorded before Build mutates the view.
		background := make(map[resource.NodeID][]simtime.Interval)
		for id, c := range cals {
			for _, res := range c.Reservations() {
				background[id] = append(background[id], res.Interval)
			}
		}

		s, err := Build(env, cals, job, opt)
		if err != nil {
			var inf *InfeasibleError
			if !errors.As(err, &inf) {
				t.Fatalf("Build returned a non-infeasibility error: %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("Build returned nil schedule and nil error")
		}

		deadline := job.Deadline
		overlaps := func(a, b simtime.Interval) bool {
			return a.Start < b.End && b.Start < a.End
		}

		byNode := make(map[resource.NodeID][]Placement)
		for id, p := range s.Placements {
			if p.Task != id {
				t.Errorf("placement keyed %d names task %d", id, p.Task)
			}
			if p.Window.Start < opt.Release {
				t.Errorf("task %d starts at %d before release %d", id, p.Window.Start, opt.Release)
			}
			if p.Window.End <= p.Window.Start {
				t.Errorf("task %d has empty window %v", id, p.Window)
			}
			byNode[p.Node] = append(byNode[p.Node], p)
		}

		for node, ps := range byNode {
			for i := 0; i < len(ps); i++ {
				for j := i + 1; j < len(ps); j++ {
					if overlaps(ps[i].Window, ps[j].Window) {
						t.Errorf("node %d double-booked: task %d %v vs task %d %v",
							node, ps[i].Task, ps[i].Window, ps[j].Task, ps[j].Window)
					}
				}
				for _, bg := range background[node] {
					if overlaps(ps[i].Window, bg) {
						t.Errorf("node %d: task %d %v overlaps background reservation %v",
							node, ps[i].Task, ps[i].Window, bg)
					}
				}
			}
		}

		for _, e := range job.Edges() {
			from, okF := s.Placements[e.From]
			to, okT := s.Placements[e.To]
			if !okF || !okT {
				continue // partial schedules may have placed only one end
			}
			if to.Window.Start < from.Window.End {
				t.Errorf("precedence violated: edge %s→%s but successor starts %d before predecessor ends %d",
					job.Task(e.From).Name, job.Task(e.To).Name, to.Window.Start, from.Window.End)
			}
		}

		if !s.Partial {
			if len(s.Placements) != job.NumTasks() {
				t.Errorf("complete schedule placed %d of %d tasks", len(s.Placements), job.NumTasks())
			}
			for _, p := range s.Placements {
				if p.Window.End > s.Finish {
					t.Errorf("task %d ends at %d after schedule finish %d", p.Task, p.Window.End, s.Finish)
				}
			}
			if s.MeetsDeadline() && s.Finish > deadline {
				t.Errorf("MeetsDeadline but finish %d > deadline %d", s.Finish, deadline)
			}
		}
	})
}
