package strategy

import (
	"repro/internal/criticalworks"
	"repro/internal/telemetry"
)

// RepairMetrics holds the incremental-repair counters (DESIGN.md §14),
// shared by the generation sweep (deeper levels repaired from the first
// level's memo) and the metascheduler's fallback path. A nil receiver —
// repair disabled, or telemetry off — makes every observation a no-op.
// Every level build that goes through the repair decision lands in exactly
// one of hits/splices/fullRebuilds; misses counts memo validations that
// found the memo stale along the way (there can be several per build).
type RepairMetrics struct {
	hits         *telemetry.Counter
	misses       *telemetry.Counter
	splices      *telemetry.Counter
	fullRebuilds *telemetry.Counter
}

// NewRepairMetrics registers the grid_repair_* counters.
func NewRepairMetrics(reg *telemetry.Registry) *RepairMetrics {
	return &RepairMetrics{
		hits: reg.Counter("grid_repair_hits_total",
			"level builds served by replaying a memoized build whole"),
		misses: reg.Counter("grid_repair_misses_total",
			"repair memo validations that found the memo stale"),
		splices: reg.Counter("grid_repair_splices_total",
			"level builds that replayed a prefix and re-solved the rest"),
		fullRebuilds: reg.Counter("grid_repair_full_rebuilds_total",
			"repair-eligible level builds that ran the full critical-works build"),
	}
}

// Observe records one repair attempt's outcome: a replay or splice is
// terminal, a stale validation is a miss (the caller then either tries
// another memo or falls back to the full build, recording FullRebuild).
func (rm *RepairMetrics) Observe(outcome criticalworks.RepairOutcome) {
	if rm == nil {
		return
	}
	switch outcome {
	case criticalworks.RepairReplayed:
		rm.hits.Inc()
	case criticalworks.RepairSpliced:
		rm.splices.Inc()
	default:
		rm.misses.Inc()
	}
}

// FullRebuild records a repair-eligible build that fell through to the
// full critical-works run.
func (rm *RepairMetrics) FullRebuild() {
	if rm != nil {
		rm.fullRebuilds.Inc()
	}
}
