package strategy

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func fig2Job(deadline simtime.Time) *dag.Job {
	b := dag.NewBuilder("fig2").Deadline(deadline)
	b.Task("P1", 2, 20)
	b.Task("P2", 3, 30)
	b.Task("P3", 1, 10)
	b.Task("P4", 2, 20)
	b.Task("P5", 1, 10)
	b.Task("P6", 2, 20)
	b.Edge("D1", "P1", "P2", 1, 10)
	b.Edge("D2", "P1", "P3", 1, 10)
	b.Edge("D3", "P2", "P4", 1, 10)
	b.Edge("D4", "P2", "P5", 1, 10)
	b.Edge("D5", "P3", "P4", 1, 10)
	b.Edge("D6", "P3", "P5", 1, 10)
	b.Edge("D7", "P4", "P6", 1, 10)
	b.Edge("D8", "P5", "P6", 1, 10)
	return b.MustBuild()
}

// mixedEnv covers all four estimation tiers: perf 1.0 and 0.8 are tier 1,
// 0.5 tier 2, 0.33 tier 3, 0.25 tier 4.
func mixedEnv() *resource.Environment {
	return resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "t1a", 1.0, 1, "d"),
		resource.NewNode(1, "t1b", 0.8, 1, "d"),
		resource.NewNode(2, "t2", 0.5, 1, "d"),
		resource.NewNode(3, "t3", 0.33, 1, "d"),
		resource.NewNode(4, "t4", 0.25, 1, "d"),
	})
}

func TestTypeMetadata(t *testing.T) {
	tests := []struct {
		typ    Type
		name   string
		policy data.Policy
		coarse bool
		levels int
	}{
		{S1, "S1", data.ActiveReplication, false, 4},
		{S2, "S2", data.RemoteAccess, false, 4},
		{S3, "S3", data.StaticStorage, true, 4},
		{MS1, "MS1", data.ActiveReplication, false, 2},
	}
	for _, tt := range tests {
		if tt.typ.String() != tt.name {
			t.Errorf("String = %s", tt.typ.String())
		}
		if tt.typ.DataPolicy() != tt.policy {
			t.Errorf("%s policy = %v", tt.name, tt.typ.DataPolicy())
		}
		if tt.typ.CoarseGrain() != tt.coarse {
			t.Errorf("%s coarse = %v", tt.name, tt.typ.CoarseGrain())
		}
		if got := tt.typ.Levels(); len(got) != tt.levels {
			t.Errorf("%s levels = %v", tt.name, got)
		}
	}
	if lv := MS1.Levels(); lv[0] != 1 || lv[1] != resource.NumTiers {
		t.Errorf("MS1 levels = %v, want best and worst", lv)
	}
}

func TestGenerateS1Fig2(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	s, err := g.Generate(fig2Job(40), S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Type != S1 || s.Scheduled != s.Job {
		t.Error("S1 must schedule the original fine-grain job")
	}
	if len(s.Distributions)+len(s.FailedLevels) != 4 {
		t.Errorf("levels accounted = %d + %d, want 4", len(s.Distributions), len(s.FailedLevels))
	}
	if !s.Admissible() {
		t.Error("fig2 with deadline 40 must be admissible")
	}
	// Level-1 distribution uses all nodes and must finish earliest.
	if s.Distributions[0].Level != 1 {
		t.Fatalf("first distribution level = %d", s.Distributions[0].Level)
	}
	for _, d := range s.Distributions[1:] {
		if d.Admissible && d.Finish < s.Distributions[0].Finish {
			t.Errorf("level %d finishes at %d, before level 1's %d", d.Level, d.Finish, s.Distributions[0].Finish)
		}
	}
	if s.Evaluations <= 0 {
		t.Error("Evaluations not accumulated")
	}
}

func TestLevelRestrictsNodes(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	b := dag.NewBuilder("one").Deadline(100)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	s, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Distributions {
		node := env.Node(d.Placements[0].Node)
		if node.Tier() < d.Level {
			t.Errorf("level %d used tier-%d node", d.Level, node.Tier())
		}
	}
}

func TestCheapestAdmissiblePrefersSlowLevels(t *testing.T) {
	// Single task, loose deadline: every level admissible; the level-4
	// distribution (slowest node, longest T, smallest ceil(V/T)) is
	// cheapest.
	env := mixedEnv()
	g := &Generator{Env: env}
	b := dag.NewBuilder("one").Deadline(100)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	s, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Distributions) != 4 {
		t.Fatalf("distributions = %d, want 4", len(s.Distributions))
	}
	cheap := s.CheapestAdmissible()
	if cheap == nil || cheap.Level != 4 {
		t.Fatalf("cheapest = %+v, want level 4", cheap)
	}
	fast := s.FastestAdmissible()
	if fast == nil || fast.Level != 1 {
		t.Fatalf("fastest = %+v, want level 1", fast)
	}
	if fast.Cost <= cheap.Cost {
		t.Errorf("fast cost %v not above cheap cost %v — paying for speed is the point", fast.Cost, cheap.Cost)
	}
}

func TestTightDeadlineDropsSlowLevels(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	b := dag.NewBuilder("one").Deadline(2)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	s, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Admissible() {
		t.Fatal("level 1 must be admissible at deadline 2")
	}
	for _, d := range s.Distributions {
		if d.Level > 1 && d.Admissible {
			t.Errorf("level %d admissible at deadline 2 (duration ≥ %d)", d.Level, 2*d.Level)
		}
	}
}

func TestMS1CheaperToGenerateThanS1(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	job := fig2Job(40)
	s1, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	ms1, err := g.Generate(job, MS1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms1.Evaluations >= s1.Evaluations {
		t.Errorf("MS1 evaluations %d not below S1's %d", ms1.Evaluations, s1.Evaluations)
	}
	if len(ms1.Distributions)+len(ms1.FailedLevels) != 2 {
		t.Errorf("MS1 levels = %d", len(ms1.Distributions)+len(ms1.FailedLevels))
	}
}

func TestS3SchedulesCoarseJob(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	b := dag.NewBuilder("line").Deadline(100)
	b.Task("A", 2, 10)
	b.Task("B", 3, 10)
	b.Task("C", 2, 10)
	b.Edge("e1", "A", "B", 4, 5)
	b.Edge("e2", "B", "C", 4, 5)
	job := b.MustBuild()
	s, err := g.Generate(job, S3, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Clustering == nil || s.Scheduled == s.Job {
		t.Fatal("S3 did not coarsen")
	}
	if s.Scheduled.NumTasks() != 1 {
		t.Errorf("coarse job has %d tasks, want 1", s.Scheduled.NumTasks())
	}
	if !s.Admissible() {
		t.Error("coarse linear job inadmissible at loose deadline")
	}
}

func TestAdmissibleAfterSkipsUsedLevels(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	b := dag.NewBuilder("one").Deadline(100)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	s, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	used := map[resource.Tier]bool{}
	var picked []resource.Tier
	for {
		d := s.AdmissibleAfter(used)
		if d == nil {
			break
		}
		picked = append(picked, d.Level)
		used[d.Level] = true
	}
	if len(picked) != 4 {
		t.Fatalf("fallback sequence = %v, want all 4 levels", picked)
	}
	seen := map[resource.Tier]bool{}
	for _, lv := range picked {
		if seen[lv] {
			t.Fatalf("level %d picked twice: %v", lv, picked)
		}
		seen[lv] = true
	}
	// Costs must be non-decreasing along the fallback order.
	var lastCost float64 = -1
	for i, lv := range picked {
		for _, d := range s.Distributions {
			if d.Level == lv {
				if d.Cost < lastCost {
					t.Errorf("fallback %d (level %d) cost %v below previous %v", i, lv, d.Cost, lastCost)
				}
				lastCost = d.Cost
			}
		}
	}
}

func TestBestWithinBudget(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	b := dag.NewBuilder("one").Deadline(100)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	s, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	cheap := s.CheapestAdmissible()
	fast := s.FastestAdmissible()
	if cheap.Cost >= fast.Cost {
		t.Skip("no cost spread to exercise")
	}
	// An unlimited budget buys the fastest distribution.
	if got := s.BestWithinBudget(fast.Cost + 1); got.Level != fast.Level {
		t.Errorf("rich budget picked level %d, want %d", got.Level, fast.Level)
	}
	// A budget exactly at the cheapest only affords the cheapest.
	if got := s.BestWithinBudget(cheap.Cost); got.Level != cheap.Level {
		t.Errorf("tight budget picked level %d, want %d", got.Level, cheap.Level)
	}
	// Below the cheapest, nothing fits.
	if got := s.BestWithinBudget(cheap.Cost - 0.5); got != nil {
		t.Errorf("impossible budget returned level %d", got.Level)
	}
	// Intermediate budgets buy the fastest affordable option.
	mid := s.BestWithinBudget(fast.Cost - 0.5)
	if mid == nil || mid.Cost > fast.Cost-0.5 {
		t.Errorf("mid budget pick = %+v", mid)
	}
	if mid.Finish < fast.Finish {
		t.Errorf("mid budget finish %d beats the unconstrained fastest %d", mid.Finish, fast.Finish)
	}
}

func TestGenerateDoesNotMutateBase(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	base := criticalworks.EmptyCalendars(env)
	if _, err := g.Generate(fig2Job(40), S1, base, 0); err != nil {
		t.Fatal(err)
	}
	for id, c := range base {
		if c.Len() != 0 {
			t.Errorf("base calendar of node %d mutated: %d reservations", id, c.Len())
		}
	}
}

func TestCollisionsByGroupCountsAtContendedNodes(t *testing.T) {
	// Only one fast node: the level-1 distribution of a fork job must
	// collide there.
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "fast", 1.0, 1, "d"),
		resource.NewNode(1, "slow", 0.25, 1, "d"),
	})
	g := &Generator{Env: env}
	b := dag.NewBuilder("fork").Deadline(60)
	b.Task("S", 2, 8)
	b.Task("A", 4, 16)
	b.Task("B", 4, 16)
	b.Edge("dA", "S", "A", 1, 1)
	b.Edge("dB", "S", "B", 1, 1)
	job := b.MustBuild()
	s, err := g.Generate(job, S2, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	byGroup := s.CollisionsByGroup(env)
	total := 0
	for _, n := range byGroup {
		total += n
	}
	if total == 0 {
		t.Fatal("no collisions recorded on a contended environment")
	}
	if len(s.Collisions()) != total {
		t.Errorf("Collisions() length %d != group total %d", len(s.Collisions()), total)
	}
}

func TestFailedLevelsWhenNoCandidates(t *testing.T) {
	// Environment with only tier-1 nodes: levels 2..4 have no candidates.
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "f", 1.0, 1, "d"),
	})
	g := &Generator{Env: env}
	b := dag.NewBuilder("one").Deadline(50)
	b.Task("T", 2, 20)
	job := b.MustBuild()
	s, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Distributions) != 1 || len(s.FailedLevels) != 3 {
		t.Errorf("distributions=%d failed=%v", len(s.Distributions), s.FailedLevels)
	}
}

func TestQuickGenerateDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		mk := func() *Strategy {
			r := rng.New(seed)
			env := mixedEnv()
			b := dag.NewBuilder("q").Deadline(simtime.Time(r.IntBetween(10, 120)))
			n := r.IntBetween(1, 6)
			names := make([]string, n)
			for i := range names {
				names[i] = string(rune('A' + i))
				b.Task(names[i], simtime.Time(r.IntBetween(1, 5)), int64(r.IntBetween(1, 30)))
			}
			for to := 1; to < n; to++ {
				for from := 0; from < to; from++ {
					if r.Bool(0.3) {
						b.Edge(names[from]+names[to], names[from], names[to], simtime.Time(r.Intn(3)), 1)
					}
				}
			}
			job := b.MustBuild()
			typ := AllTypes[r.Intn(len(AllTypes))]
			g := &Generator{Env: env}
			s, err := g.Generate(job, typ, criticalworks.EmptyCalendars(env), 0)
			if err != nil {
				return nil
			}
			return s
		}
		a, c := mk(), mk()
		if (a == nil) != (c == nil) {
			return false
		}
		if a == nil {
			return true
		}
		if len(a.Distributions) != len(c.Distributions) || a.Evaluations != c.Evaluations {
			return false
		}
		for i := range a.Distributions {
			da, dc := a.Distributions[i], c.Distributions[i]
			if da.Level != dc.Level || da.Cost != dc.Cost || da.Finish != dc.Finish || da.Admissible != dc.Admissible {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickAdmissibleMeansDeadlineMet(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		env := mixedEnv()
		b := dag.NewBuilder("q").Deadline(simtime.Time(r.IntBetween(5, 80)))
		b.Task("A", simtime.Time(r.IntBetween(1, 6)), 10)
		b.Task("B", simtime.Time(r.IntBetween(1, 6)), 10)
		b.Edge("e", "A", "B", simtime.Time(r.Intn(4)), 1)
		job := b.MustBuild()
		g := &Generator{Env: env}
		s, err := g.Generate(job, AllTypes[r.Intn(4)], criticalworks.EmptyCalendars(env), 0)
		if err != nil {
			return false
		}
		for _, d := range s.Distributions {
			if d.Admissible != (d.Finish <= job.Deadline) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGenerateCtxCancellation(t *testing.T) {
	env := mixedEnv()
	g := &Generator{Env: env}
	job := fig2Job(40)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.GenerateCtx(ctx, job, S1, criticalworks.EmptyCalendars(env), 0); err == nil {
		t.Fatal("cancelled context produced a strategy")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}

	// A live context reproduces Generate byte for byte.
	want, err := g.Generate(job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.GenerateCtx(context.Background(), job, S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Distributions) != len(want.Distributions) || got.Evaluations != want.Evaluations {
		t.Fatal("GenerateCtx with background context diverged from Generate")
	}
	for i := range want.Distributions {
		w, g2 := want.Distributions[i], got.Distributions[i]
		if w.Level != g2.Level || w.Cost != g2.Cost || w.Finish != g2.Finish {
			t.Fatalf("level %d differs", i)
		}
	}
}
