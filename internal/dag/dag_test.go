package dag

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// fig2Job reproduces the paper's Fig. 2(a) example: tasks P1..P6, transfers
// D1..D8, with the §3 estimation table (Ti1 = 2,3,1,2,1,2; V = 20,30,10,20,
// 10,20) and unit transfer times chosen so the four critical works measure
// 12, 11, 10 and 9 time units on type-1 nodes.
func fig2Job(t testing.TB) *Job {
	t.Helper()
	b := NewBuilder("fig2").Deadline(20)
	b.Task("P1", 2, 20)
	b.Task("P2", 3, 30)
	b.Task("P3", 1, 10)
	b.Task("P4", 2, 20)
	b.Task("P5", 1, 10)
	b.Task("P6", 2, 20)
	// Unit transfer times make the four chains measure exactly
	// P1-P2-P4-P6 = 2+1+3+1+2+1+2 = 12, P1-P2-P5-P6 = 11,
	// P1-P3-P4-P6 = 10, P1-P3-P5-P6 = 9 (type-1 task times + transfers).
	b.Edge("D1", "P1", "P2", 1, 10)
	b.Edge("D2", "P1", "P3", 1, 10)
	b.Edge("D3", "P2", "P4", 1, 10)
	b.Edge("D4", "P2", "P5", 1, 10)
	b.Edge("D5", "P3", "P4", 1, 10)
	b.Edge("D6", "P3", "P5", 1, 10)
	b.Edge("D7", "P4", "P6", 1, 10)
	b.Edge("D8", "P5", "P6", 1, 10)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	j := fig2Job(t)
	if j.NumTasks() != 6 || j.NumEdges() != 8 {
		t.Fatalf("got %d tasks, %d edges", j.NumTasks(), j.NumEdges())
	}
	p3, ok := j.TaskByName("P3")
	if !ok || p3.BaseTime != 1 || p3.Volume != 10 {
		t.Errorf("P3 = %+v, ok=%v", p3, ok)
	}
	if _, ok := j.TaskByName("P9"); ok {
		t.Error("found nonexistent task")
	}
	if j.TotalVolume() != 110 {
		t.Errorf("TotalVolume = %d, want 110", j.TotalVolume())
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"dup task", func() {
			b := NewBuilder("x")
			b.Task("A", 1, 1)
			b.Task("A", 1, 1)
		}},
		{"zero base time", func() { NewBuilder("x").Task("A", 0, 1) }},
		{"negative volume", func() { NewBuilder("x").Task("A", 1, -1) }},
		{"unknown edge endpoint", func() {
			b := NewBuilder("x")
			b.Task("A", 1, 1)
			b.Edge("e", "A", "B", 1, 1)
		}},
		{"self loop", func() {
			b := NewBuilder("x")
			b.Task("A", 1, 1)
			b.Edge("e", "A", "A", 1, 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("empty job built without error")
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	b := NewBuilder("cyc")
	b.Task("A", 1, 1)
	b.Task("B", 1, 1)
	b.Task("C", 1, 1)
	b.Edge("e1", "A", "B", 1, 1)
	b.Edge("e2", "B", "C", 1, 1)
	b.Edge("e3", "C", "A", 1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("cyclic job built without error")
	}
}

func TestTopoOrderValid(t *testing.T) {
	j := fig2Job(t)
	order := j.TopoOrder()
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != j.NumTasks() {
		t.Fatalf("topo order has %d entries", len(order))
	}
	for _, e := range j.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s violates topo order", e.Name)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	j := fig2Job(t)
	if s := j.Sources(); len(s) != 1 || j.Task(s[0]).Name != "P1" {
		t.Errorf("Sources = %v", s)
	}
	if s := j.Sinks(); len(s) != 1 || j.Task(s[0]).Name != "P6" {
		t.Errorf("Sinks = %v", s)
	}
}

func TestInOut(t *testing.T) {
	j := fig2Job(t)
	p2, _ := j.TaskByName("P2")
	out := j.Out(p2.ID)
	if len(out) != 2 {
		t.Fatalf("P2 out-degree = %d", len(out))
	}
	in := j.In(p2.ID)
	if len(in) != 1 || in[0].Name != "D1" {
		t.Errorf("P2 in = %v", in)
	}
}

func TestFig2CriticalWorks(t *testing.T) {
	// The paper (§3): "there are four critical works 12, 11, 10, and 9 time
	// units long (including data transfer time) on fastest processor nodes".
	j := fig2Job(t)
	chains := j.AllChains(WeightFunc{})
	if len(chains) != 4 {
		t.Fatalf("got %d chains, want 4", len(chains))
	}
	wantLens := []simtime.Time{12, 11, 10, 9}
	wantPaths := [][]string{
		{"P1", "P2", "P4", "P6"},
		{"P1", "P2", "P5", "P6"},
		{"P1", "P3", "P4", "P6"},
		{"P1", "P3", "P5", "P6"},
	}
	for i, c := range chains {
		if c.Length != wantLens[i] {
			t.Errorf("chain %d length = %d, want %d", i, c.Length, wantLens[i])
		}
		for k, id := range c.Tasks {
			if got := j.Task(id).Name; got != wantPaths[i][k] {
				t.Errorf("chain %d task %d = %s, want %s", i, k, got, wantPaths[i][k])
			}
		}
	}
}

func TestLongestChainMatchesAllChains(t *testing.T) {
	j := fig2Job(t)
	c, ok := j.LongestChain(WeightFunc{}, nil)
	if !ok {
		t.Fatal("no chain found")
	}
	if c.Length != 12 {
		t.Errorf("LongestChain length = %d, want 12", c.Length)
	}
	if got := j.CriticalPathLength(WeightFunc{}); got != 12 {
		t.Errorf("CriticalPathLength = %d, want 12", got)
	}
}

func TestLongestChainWithExclusions(t *testing.T) {
	j := fig2Job(t)
	p2, _ := j.TaskByName("P2")
	// Excluding P2 removes both 12 and 11 chains; longest remaining full
	// chain is P1-P3-P4-P6 = 10.
	c, ok := j.LongestChain(WeightFunc{}, func(id TaskID) bool { return id != p2.ID })
	if !ok {
		t.Fatal("no chain found")
	}
	if c.Length != 10 {
		t.Errorf("length = %d, want 10", c.Length)
	}
	for _, id := range c.Tasks {
		if id == p2.ID {
			t.Error("excluded task appears in chain")
		}
	}
}

func TestLongestChainAllExcluded(t *testing.T) {
	j := fig2Job(t)
	if _, ok := j.LongestChain(WeightFunc{}, func(TaskID) bool { return false }); ok {
		t.Error("found chain with all tasks excluded")
	}
}

func TestLongestChainCustomWeights(t *testing.T) {
	j := fig2Job(t)
	// Doubling every task time and zeroing transfers: critical work is the
	// path maximizing task time only: P1,P2,P4,P6 = 2*(2+3+2+2)=18.
	w := WeightFunc{
		Task: func(tk Task) simtime.Time { return 2 * tk.BaseTime },
		Edge: func(Edge) simtime.Time { return 0 },
	}
	c, _ := j.LongestChain(w, nil)
	if c.Length != 18 {
		t.Errorf("weighted length = %d, want 18", c.Length)
	}
}

func TestLongestChainSingleTask(t *testing.T) {
	b := NewBuilder("single")
	b.Task("only", 7, 3)
	j := b.MustBuild()
	c, ok := j.LongestChain(WeightFunc{}, nil)
	if !ok || c.Length != 7 || len(c.Tasks) != 1 {
		t.Errorf("single-task chain = %+v ok=%v", c, ok)
	}
}

func TestCoarsenLinearChain(t *testing.T) {
	// A-B-C linear: collapses into a single macro task with summed time and
	// volume, no edges.
	b := NewBuilder("line").Deadline(50)
	b.Task("A", 2, 10)
	b.Task("B", 3, 20)
	b.Task("C", 4, 30)
	b.Edge("e1", "A", "B", 5, 1)
	b.Edge("e2", "B", "C", 5, 1)
	j := b.MustBuild()
	c, err := Coarsen(j)
	if err != nil {
		t.Fatal(err)
	}
	if c.Job.NumTasks() != 1 || c.Job.NumEdges() != 0 {
		t.Fatalf("coarse job has %d tasks %d edges", c.Job.NumTasks(), c.Job.NumEdges())
	}
	mt := c.Job.Task(0)
	// 2+3+4 task time plus the two internal 5-tick handoffs.
	if mt.BaseTime != 19 || mt.Volume != 60 {
		t.Errorf("macro task = %+v, want time 19 volume 60", mt)
	}
	if c.Job.Deadline != 50 {
		t.Errorf("deadline not carried: %d", c.Job.Deadline)
	}
	if len(c.Members[0]) != 3 {
		t.Errorf("members = %v", c.Members[0])
	}
}

func TestCoarsenFig2(t *testing.T) {
	// Fig. 2's diamond has no linear runs (P1 has 2 successors, P6 has 2
	// predecessors, middles have branching), so coarsening is identity in
	// shape.
	j := fig2Job(t)
	c, err := Coarsen(j)
	if err != nil {
		t.Fatal(err)
	}
	if c.Job.NumTasks() != 6 {
		t.Errorf("fig2 coarse tasks = %d, want 6", c.Job.NumTasks())
	}
	if c.Job.NumEdges() != 8 {
		t.Errorf("fig2 coarse edges = %d, want 8", c.Job.NumEdges())
	}
}

func TestCoarsenMixed(t *testing.T) {
	// Fork-join with a 2-run on one branch:
	//   S -> A -> B -> T  and  S -> C -> T
	// A-B is a linear run (A single succ, B single pred) => merges.
	b := NewBuilder("mixed")
	b.Task("S", 1, 1)
	b.Task("A", 2, 2)
	b.Task("B", 3, 3)
	b.Task("C", 4, 4)
	b.Task("T", 1, 1)
	b.Edge("e1", "S", "A", 1, 1)
	b.Edge("e2", "A", "B", 9, 9)
	b.Edge("e3", "B", "T", 1, 1)
	b.Edge("e4", "S", "C", 1, 1)
	b.Edge("e5", "C", "T", 1, 1)
	j := b.MustBuild()
	c, err := Coarsen(j)
	if err != nil {
		t.Fatal(err)
	}
	if c.Job.NumTasks() != 4 {
		t.Fatalf("coarse tasks = %d, want 4 (S, A+B, C, T)", c.Job.NumTasks())
	}
	if c.Job.NumEdges() != 4 {
		t.Errorf("coarse edges = %d, want 4", c.Job.NumEdges())
	}
	a, _ := j.TaskByName("A")
	bID, _ := j.TaskByName("B")
	if c.Macro[a.ID] != c.Macro[bID.ID] {
		t.Error("A and B not merged into the same macro task")
	}
	macro := c.Job.Task(c.Macro[a.ID])
	// 2+3 task time plus the internal 9-tick handoff.
	if macro.BaseTime != 14 || macro.Volume != 5 {
		t.Errorf("A+B macro = %+v, want time 14 volume 5", macro)
	}
}

// randomJob builds a random layered DAG for property tests.
func randomJob(r *rng.Source, maxTasks int) *Job {
	n := r.IntBetween(1, maxTasks)
	b := NewBuilder("rand")
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = "T" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		b.Task(names[i], simtime.Time(r.IntBetween(1, 12)), int64(r.IntBetween(0, 40)))
	}
	// Edges only from lower to higher index: guaranteed acyclic.
	for to := 1; to < n; to++ {
		for from := 0; from < to; from++ {
			if r.Bool(0.25) {
				b.Edge(names[from]+">"+names[to], names[from], names[to],
					simtime.Time(r.IntBetween(0, 5)), int64(r.IntBetween(0, 10)))
			}
		}
	}
	return b.MustBuild()
}

func TestQuickTopoOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		j := randomJob(rng.New(seed), 14)
		pos := make(map[TaskID]int)
		for i, id := range j.TopoOrder() {
			pos[id] = i
		}
		if len(pos) != j.NumTasks() {
			return false
		}
		for _, e := range j.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLongestChainDominatesAllChains(t *testing.T) {
	// LongestChain must equal the max over the exhaustive enumeration.
	f := func(seed uint64) bool {
		j := randomJob(rng.New(seed), 9)
		all := j.AllChains(WeightFunc{})
		best, ok := j.LongestChain(WeightFunc{}, nil)
		if !ok {
			return len(all) == 0
		}
		if len(all) == 0 {
			return false
		}
		return best.Length == all[0].Length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickChainIsRealPath(t *testing.T) {
	// Every consecutive pair in the reported chain must be joined by an edge.
	f := func(seed uint64) bool {
		j := randomJob(rng.New(seed), 12)
		c, ok := j.LongestChain(WeightFunc{}, nil)
		if !ok {
			return false
		}
		for i := 0; i+1 < len(c.Tasks); i++ {
			found := false
			for _, e := range j.Out(c.Tasks[i]) {
				if e.To == c.Tasks[i+1] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoarsenPreservesTotals(t *testing.T) {
	// Coarsening preserves total compute volume, never decreases total
	// base time (internal handoffs become serial time), and never
	// increases task or edge counts.
	f := func(seed uint64) bool {
		j := randomJob(rng.New(seed), 14)
		c, err := Coarsen(j)
		if err != nil {
			return false
		}
		if c.Job.NumTasks() > j.NumTasks() || c.Job.NumEdges() > j.NumEdges() {
			return false
		}
		if c.Job.TotalVolume() != j.TotalVolume() {
			return false
		}
		var bt, cbt simtime.Time
		for _, tk := range j.Tasks() {
			bt += tk.BaseTime
		}
		for _, tk := range c.Job.Tasks() {
			cbt += tk.BaseTime
		}
		if cbt < bt {
			return false
		}
		// Every original task maps to a valid macro task.
		for id := 0; id < j.NumTasks(); id++ {
			m, ok := c.Macro[TaskID(id)]
			if !ok || int(m) >= c.Job.NumTasks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoarsenAcyclicAndConsistent(t *testing.T) {
	// Macro membership partitions the original tasks.
	f := func(seed uint64) bool {
		j := randomJob(rng.New(seed), 14)
		c, err := Coarsen(j)
		if err != nil {
			return false
		}
		seen := make(map[TaskID]bool)
		for _, ms := range c.Members {
			for _, m := range ms {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == j.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
