// Package dag models compound jobs as directed acyclic graphs of tasks
// connected by data-transfer edges, following §3 of Toporkov (PaCT 2009):
// vertices P1..PN are tasks, D1..DM are data transfers. The package provides
// validation, topological ordering, chain (critical-work) enumeration and
// the chain clustering used by coarse-grain strategies.
package dag

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// TaskID identifies a task inside one Job; IDs are dense indices 0..N-1.
type TaskID int

// Task is a single unit of computation. BaseTime is the user's execution
// time estimate on a reference (fastest, type-1) node; Volume is the
// relative computation volume V_i used by the cost function CF.
type Task struct {
	ID       TaskID
	Name     string
	BaseTime simtime.Time
	Volume   int64
}

// Edge is a data transfer between two tasks. BaseTime is the transfer time
// between two distinct nodes under the neutral (remote-access) data policy;
// Volume is the transferred data volume.
type Edge struct {
	Name     string
	From, To TaskID
	BaseTime simtime.Time
	Volume   int64
}

// Job is an immutable compound job: a validated DAG of tasks and transfers
// with a required completion deadline (the paper's "fixed completion time").
type Job struct {
	Name     string
	Deadline simtime.Time

	tasks []Task
	edges []Edge

	succ [][]int // task -> indices into edges (outgoing)
	pred [][]int // task -> indices into edges (incoming)
	topo []TaskID
}

// Builder assembles a Job. Methods panic on structural misuse (duplicate
// task names, unknown endpoints) because job construction in this codebase
// is always programmatic; Build returns an error for graph-level problems
// (cycles, emptiness) that can depend on runtime data.
type Builder struct {
	name     string
	deadline simtime.Time
	tasks    []Task
	edges    []Edge
	byName   map[string]TaskID
}

// NewBuilder starts a job named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]TaskID)}
}

// Deadline sets the job's required completion time.
func (b *Builder) Deadline(d simtime.Time) *Builder {
	b.deadline = d
	return b
}

// Task adds a task and returns its ID. baseTime must be positive and volume
// non-negative.
func (b *Builder) Task(name string, baseTime simtime.Time, volume int64) TaskID {
	if _, dup := b.byName[name]; dup {
		panic(fmt.Sprintf("dag: duplicate task %q", name))
	}
	if baseTime <= 0 {
		panic(fmt.Sprintf("dag: task %q has non-positive base time %d", name, baseTime))
	}
	if volume < 0 {
		panic(fmt.Sprintf("dag: task %q has negative volume %d", name, volume))
	}
	id := TaskID(len(b.tasks))
	b.tasks = append(b.tasks, Task{ID: id, Name: name, BaseTime: baseTime, Volume: volume})
	b.byName[name] = id
	return id
}

// Edge adds a data transfer from task `from` to task `to` (by name).
func (b *Builder) Edge(name, from, to string, baseTime simtime.Time, volume int64) *Builder {
	f, ok := b.byName[from]
	if !ok {
		panic(fmt.Sprintf("dag: edge %q references unknown task %q", name, from))
	}
	t, ok := b.byName[to]
	if !ok {
		panic(fmt.Sprintf("dag: edge %q references unknown task %q", name, to))
	}
	if f == t {
		panic(fmt.Sprintf("dag: edge %q is a self-loop on %q", name, from))
	}
	if baseTime < 0 || volume < 0 {
		panic(fmt.Sprintf("dag: edge %q has negative weight", name))
	}
	b.edges = append(b.edges, Edge{Name: name, From: f, To: t, BaseTime: baseTime, Volume: volume})
	return b
}

// Build validates the graph and returns the immutable Job.
func (b *Builder) Build() (*Job, error) {
	if len(b.tasks) == 0 {
		return nil, fmt.Errorf("dag: job %q has no tasks", b.name)
	}
	j := &Job{
		Name:     b.name,
		Deadline: b.deadline,
		tasks:    append([]Task(nil), b.tasks...),
		edges:    append([]Edge(nil), b.edges...),
	}
	j.succ = make([][]int, len(j.tasks))
	j.pred = make([][]int, len(j.tasks))
	for i, e := range j.edges {
		j.succ[e.From] = append(j.succ[e.From], i)
		j.pred[e.To] = append(j.pred[e.To], i)
	}
	topo, err := j.computeTopo()
	if err != nil {
		return nil, err
	}
	j.topo = topo
	return j, nil
}

// MustBuild is Build that panics on error, for statically known-good graphs.
func (b *Builder) MustBuild() *Job {
	j, err := b.Build()
	if err != nil {
		panic(err)
	}
	return j
}

// computeTopo returns a deterministic topological order (Kahn's algorithm,
// ties broken by ascending TaskID) or an error naming a task on a cycle.
func (j *Job) computeTopo() ([]TaskID, error) {
	indeg := make([]int, len(j.tasks))
	for _, e := range j.edges {
		indeg[e.To]++
	}
	var ready []TaskID
	for id := range j.tasks {
		if indeg[id] == 0 {
			ready = append(ready, TaskID(id))
		}
	}
	var order []TaskID
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, ei := range j.succ[id] {
			to := j.edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if len(order) != len(j.tasks) {
		for id, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("dag: job %q has a cycle through task %q", j.Name, j.tasks[id].Name)
			}
		}
	}
	return order, nil
}

// WithDeadline returns a copy of the job that differs only in its
// deadline; the underlying immutable graph is shared.
func (j *Job) WithDeadline(d simtime.Time) *Job {
	cp := *j
	cp.Deadline = d
	return &cp
}

// NumTasks returns the number of tasks in the job.
func (j *Job) NumTasks() int { return len(j.tasks) }

// NumEdges returns the number of data-transfer edges.
func (j *Job) NumEdges() int { return len(j.edges) }

// Task returns the task with the given ID.
func (j *Job) Task(id TaskID) Task { return j.tasks[id] }

// Tasks returns all tasks in ID order (a copy).
func (j *Job) Tasks() []Task { return append([]Task(nil), j.tasks...) }

// Edges returns all edges (a copy).
func (j *Job) Edges() []Edge { return append([]Edge(nil), j.edges...) }

// TaskByName returns the task with the given name.
func (j *Job) TaskByName(name string) (Task, bool) {
	for _, t := range j.tasks {
		if t.Name == name {
			return t, true
		}
	}
	return Task{}, false
}

// TopoOrder returns a deterministic topological order of the task IDs.
func (j *Job) TopoOrder() []TaskID { return append([]TaskID(nil), j.topo...) }

// Out returns the outgoing edges of a task.
func (j *Job) Out(id TaskID) []Edge {
	out := make([]Edge, 0, len(j.succ[id]))
	for _, ei := range j.succ[id] {
		out = append(out, j.edges[ei])
	}
	return out
}

// In returns the incoming edges of a task.
func (j *Job) In(id TaskID) []Edge {
	in := make([]Edge, 0, len(j.pred[id]))
	for _, ei := range j.pred[id] {
		in = append(in, j.edges[ei])
	}
	return in
}

// Sources returns tasks with no predecessors, in ID order.
func (j *Job) Sources() []TaskID {
	var out []TaskID
	for id := range j.tasks {
		if len(j.pred[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// Sinks returns tasks with no successors, in ID order.
func (j *Job) Sinks() []TaskID {
	var out []TaskID
	for id := range j.tasks {
		if len(j.succ[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// TotalVolume returns the sum of task computation volumes.
func (j *Job) TotalVolume() int64 {
	var v int64
	for _, t := range j.tasks {
		v += t.Volume
	}
	return v
}

// Chain is a source-to-sink path through the job: the unit the critical
// works method schedules. Length is the chain's estimated duration under
// the weight function used to find it.
type Chain struct {
	Tasks  []TaskID
	Length simtime.Time
}

// WeightFunc gives the estimated duration of a task and of a transfer edge
// for chain-length purposes. Either function may be nil, meaning "use the
// base estimate".
type WeightFunc struct {
	Task func(Task) simtime.Time
	Edge func(Edge) simtime.Time
}

func (w WeightFunc) task(t Task) simtime.Time {
	if w.Task == nil {
		return t.BaseTime
	}
	return w.Task(t)
}

func (w WeightFunc) edge(e Edge) simtime.Time {
	if w.Edge == nil {
		return e.BaseTime
	}
	return w.Edge(e)
}

// LongestChain returns the longest (by weight) chain through the tasks for
// which include returns true (include==nil means all tasks). Edges to or
// from excluded tasks still contribute their transfer weight when both
// endpoints are included; chains never pass through excluded tasks.
// Returns ok=false when no included task exists.
//
// This is the "next critical work" search of the method's phase loop:
// weights are the fastest-node estimates plus data transfer times, and
// already-assigned tasks are excluded.
func (j *Job) LongestChain(w WeightFunc, include func(TaskID) bool) (Chain, bool) {
	incl := func(id TaskID) bool { return include == nil || include(id) }
	// dist[id] = best chain length ending at id (inclusive of id's weight);
	// prev[id] = predecessor on that chain, or -1.
	dist := make([]simtime.Time, len(j.tasks))
	prev := make([]int, len(j.tasks))
	any := false
	for i := range prev {
		prev[i] = -1
		dist[i] = -1
	}
	for _, id := range j.topo {
		if !incl(id) {
			continue
		}
		any = true
		base := w.task(j.tasks[id])
		if dist[id] < base {
			dist[id] = base
			prev[id] = -1
		}
		for _, ei := range j.succ[id] {
			e := j.edges[ei]
			if !incl(e.To) {
				continue
			}
			cand := dist[id] + w.edge(e) + w.task(j.tasks[e.To])
			if cand > dist[e.To] || (cand == dist[e.To] && better(prev[e.To], int(id))) {
				dist[e.To] = cand
				prev[e.To] = int(id)
			}
		}
	}
	if !any {
		return Chain{}, false
	}
	// Pick the best terminal deterministically: max length, then min ID.
	best := -1
	for id := range j.tasks {
		if !incl(TaskID(id)) || dist[id] < 0 {
			continue
		}
		if best == -1 || dist[id] > dist[best] || (dist[id] == dist[best] && id < best) {
			best = id
		}
	}
	var rev []TaskID
	for cur := best; cur != -1; cur = prev[cur] {
		rev = append(rev, TaskID(cur))
	}
	tasks := make([]TaskID, len(rev))
	for i := range rev {
		tasks[i] = rev[len(rev)-1-i]
	}
	return Chain{Tasks: tasks, Length: dist[best]}, true
}

// better is the deterministic tie-break for equal-length chains: prefer the
// smaller predecessor ID (with -1 meaning "no predecessor", preferred last).
func better(old, cand int) bool {
	if old == -1 {
		return false
	}
	return cand < old
}

// AllChains enumerates every source-to-sink chain with its weighted length,
// sorted by descending length (ties by lexicographic task order). The
// number of chains can be exponential in the DAG size; callers use this
// only on small graphs (e.g. the paper's Fig. 2 example) and in tests.
func (j *Job) AllChains(w WeightFunc) []Chain {
	var out []Chain
	var walk func(id TaskID, path []TaskID, length simtime.Time)
	walk = func(id TaskID, path []TaskID, length simtime.Time) {
		path = append(path, id)
		length += w.task(j.tasks[id])
		if len(j.succ[id]) == 0 {
			out = append(out, Chain{Tasks: append([]TaskID(nil), path...), Length: length})
			return
		}
		for _, ei := range j.succ[id] {
			e := j.edges[ei]
			walk(e.To, path, length+w.edge(e))
		}
	}
	for _, s := range j.Sources() {
		walk(s, nil, 0)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Length != out[b].Length {
			return out[a].Length > out[b].Length
		}
		return lessTaskSeq(out[a].Tasks, out[b].Tasks)
	})
	return out
}

func lessTaskSeq(a, b []TaskID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// CriticalPathLength returns the weight of the longest chain in the whole
// job — the lower bound on the job's makespan on unlimited fastest nodes.
func (j *Job) CriticalPathLength(w WeightFunc) simtime.Time {
	c, ok := j.LongestChain(w, nil)
	if !ok {
		return 0
	}
	return c.Length
}
