package dag

import (
	"fmt"

	"repro/internal/simtime"
)

// Clustering is the result of coarse-graining a job: a new Job whose tasks
// are merged linear runs of the original tasks, plus the mapping from each
// original task to its macro-task.
//
// Coarse-grain strategies (the paper's S3 family) schedule fewer, larger
// tasks: every maximal linear run — consecutive tasks where each has exactly
// one successor and the next has exactly one predecessor — collapses into a
// single macro-task whose base time is the run's serial execution time plus
// the in-run transfer times, and whose volume is the sum of run volumes.
// Transfers internal to a run disappear (the data never leaves the node).
type Clustering struct {
	Job     *Job
	Macro   map[TaskID]TaskID // original task -> macro task in Job
	Members map[TaskID][]TaskID
}

// Coarsen builds the chain clustering of j. The deadline carries over.
// A macro task's base time is the serial sum of its members' base times
// plus the in-run transfer times; its volume is the members' total.
func Coarsen(j *Job) (*Clustering, error) {
	n := j.NumTasks()
	// head[i] == true when task i starts a run: it is not absorbed into its
	// single predecessor's run.
	mergeWithPred := make([]bool, n)
	for id := 0; id < n; id++ {
		in := j.In(TaskID(id))
		if len(in) != 1 {
			continue
		}
		pred := in[0].From
		if len(j.Out(pred)) == 1 {
			mergeWithPred[id] = true
		}
	}
	// Walk in topo order assigning run representatives.
	rep := make([]TaskID, n)
	for _, id := range j.topo {
		if mergeWithPred[id] {
			rep[id] = rep[j.In(id)[0].From]
		} else {
			rep[id] = id
		}
	}
	// Gather members per representative, in topo order within the run.
	members := make(map[TaskID][]TaskID)
	for _, id := range j.topo {
		members[rep[id]] = append(members[rep[id]], id)
	}
	b := NewBuilder(j.Name + "/coarse").Deadline(j.Deadline)
	macroName := make(map[TaskID]string)
	macroOf := make(map[TaskID]TaskID)
	// Create macro tasks in topo order of their representatives for
	// deterministic IDs.
	for _, id := range j.topo {
		if rep[id] != id {
			continue
		}
		var bt simtime.Time
		var vol int64
		// A macro task serializes its members AND their internal data
		// handoffs: coarse granularity hides the pipeline from the
		// scheduler, but the stage-to-stage data movement still takes
		// wall time inside the block (under S3's static storage the data
		// still stages through the storage node between stages).
		for i, m := range members[id] {
			t := j.Task(m)
			bt += t.BaseTime
			vol += t.Volume
			if i > 0 {
				for _, e := range j.In(m) {
					if e.From == members[id][i-1] {
						bt += e.BaseTime
						break
					}
				}
			}
		}
		name := j.Task(id).Name
		if len(members[id]) > 1 {
			name = fmt.Sprintf("%s+%d", name, len(members[id])-1)
		}
		macroName[id] = name
		mid := b.Task(name, bt, vol)
		macroOf[id] = mid
	}
	// Re-create edges whose endpoints land in different macro tasks.
	// Multiple original edges between the same macro pair accumulate.
	type key struct{ f, t TaskID }
	acc := make(map[key]*Edge)
	var order []key
	for _, e := range j.Edges() {
		rf, rt := rep[e.From], rep[e.To]
		if rf == rt {
			continue
		}
		k := key{rf, rt}
		if a, ok := acc[k]; ok {
			a.BaseTime += e.BaseTime
			a.Volume += e.Volume
			a.Name += "+" + e.Name
		} else {
			ec := e
			acc[k] = &ec
			order = append(order, k)
		}
	}
	for _, k := range order {
		e := acc[k]
		b.Edge(e.Name, macroName[k.f], macroName[k.t], e.BaseTime, e.Volume)
	}
	cj, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dag: coarsen %q: %w", j.Name, err)
	}
	c := &Clustering{Job: cj, Macro: make(map[TaskID]TaskID), Members: make(map[TaskID][]TaskID)}
	for id := 0; id < n; id++ {
		c.Macro[TaskID(id)] = macroOf[rep[TaskID(id)]]
	}
	for r, ms := range members {
		c.Members[macroOf[r]] = ms
	}
	return c, nil
}
