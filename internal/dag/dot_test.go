package dag

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	j := fig2Job(t)
	var b strings.Builder
	if err := j.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "fig2" {`,
		`"P1" [label="P1\nT=2 V=20"]`,
		`"P1" -> "P2" [label="D1 (1)"]`,
		`"P5" -> "P6" [label="D8 (1)"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Every task and edge appears.
	if got := strings.Count(out, "->"); got != j.NumEdges() {
		t.Errorf("edges rendered = %d, want %d", got, j.NumEdges())
	}
}
