package dag

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the job as a Graphviz digraph in the style of the
// paper's Fig. 2(a): task vertices labelled with name, type-1 estimate and
// volume; transfer edges labelled with name and base time.
func (j *Job) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", j.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for _, t := range j.tasks {
		fmt.Fprintf(&b, "  %q [label=\"%s\\nT=%d V=%d\"];\n", t.Name, t.Name, t.BaseTime, t.Volume)
	}
	for _, e := range j.edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s (%d)\"];\n",
			j.tasks[e.From].Name, j.tasks[e.To].Name, e.Name, e.BaseTime)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
