package faults

import (
	"reflect"
	"testing"

	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func testEnv() *resource.Environment {
	perfs := []float64{1.0, 0.5, 0.33, 0.27, 0.8, 0.4}
	nodes := make([]*resource.Node, len(perfs))
	for i, p := range perfs {
		dom := "dom-0"
		if i >= 3 {
			dom = "dom-1"
		}
		nodes[i] = resource.NewNode(resource.NodeID(i), "n", p, p, dom)
	}
	return resource.NewEnvironment(nodes)
}

func TestZeroConfigDisabled(t *testing.T) {
	var cfg Config
	if cfg.Enabled() || cfg.OutagesEnabled() {
		t.Error("zero config not disabled")
	}
	if got := Schedule(cfg, testEnv()); got != nil {
		t.Errorf("zero config produced outages: %v", got)
	}
	if cfg.Availability() != 1 {
		t.Errorf("zero-config availability = %v, want 1", cfg.Availability())
	}
}

func TestScheduleDeterministicSortedAndBounded(t *testing.T) {
	cfg := Config{MTBF: 50, MTTR: 10, DomainOutageProb: 0.3, Until: 1000, Seed: 9}
	env := testEnv()
	a, b := Schedule(cfg, env), Schedule(cfg, env)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("schedule not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no outages generated")
	}
	for i, o := range a {
		if o.Interval.Start >= cfg.Until {
			t.Errorf("outage %d starts at %d, beyond horizon %d", i, o.Interval.Start, cfg.Until)
		}
		if o.Interval.Len() < 1 {
			t.Errorf("outage %d has empty window %v", i, o.Interval)
		}
		if i > 0 && a[i-1].Interval.Start > o.Interval.Start {
			t.Errorf("outages out of order at %d", i)
		}
	}
}

func TestSchedulePerNodeStreamsIndependent(t *testing.T) {
	// A node's outage stream must not shift when the config changes only
	// the horizon: the first outages of a longer schedule are a superset
	// prefix per node.
	env := testEnv()
	short := Schedule(Config{MTBF: 40, MTTR: 8, Until: 500, Seed: 3}, env)
	long := Schedule(Config{MTBF: 40, MTTR: 8, Until: 2000, Seed: 3}, env)
	inLong := make(map[Outage]bool, len(long))
	for _, o := range long {
		inLong[o] = true
	}
	for _, o := range short {
		if !inLong[o] {
			t.Errorf("outage %+v of the short schedule missing from the long one", o)
		}
	}
}

func TestDomainOutageProbability(t *testing.T) {
	env := testEnv()
	all := Schedule(Config{MTBF: 30, MTTR: 5, DomainOutageProb: 1, Until: 2000, Seed: 1}, env)
	for _, o := range all {
		if o.Domain == "" {
			t.Fatalf("prob 1 produced node-only outage %+v", o)
		}
	}
	none := Schedule(Config{MTBF: 30, MTTR: 5, DomainOutageProb: 0, Until: 2000, Seed: 1}, env)
	for _, o := range none {
		if o.Domain != "" {
			t.Fatalf("prob 0 produced domain outage %+v", o)
		}
	}
}

func TestAvailabilityRoundTrip(t *testing.T) {
	for _, want := range []float64{0.99, 0.9, 0.75, 0.5} {
		mtbf, mttr := ForAvailability(want, 20)
		cfg := Config{MTBF: mtbf, MTTR: mttr}
		if got := cfg.Availability(); got < want-1e-9 || got > want+1e-9 {
			t.Errorf("availability(%v) round-tripped to %v", want, got)
		}
	}
	if mtbf, _ := ForAvailability(1.0, 20); mtbf != 0 {
		t.Errorf("availability 1 gave MTBF %v, want 0 (disabled)", mtbf)
	}
}

func TestBackoffDoublesAndSaturates(t *testing.T) {
	cfg := Config{RetryBackoff: 3}
	for i, want := range []simtime.Time{3, 6, 12, 24} {
		if got := cfg.Backoff(i + 1); got != want {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, want)
		}
	}
	var def Config
	if def.Backoff(1) != DefaultBackoff {
		t.Errorf("default base = %d, want %d", def.Backoff(1), DefaultBackoff)
	}
	// A pathological attempt count must saturate, not wrap negative.
	if got := def.Backoff(200); got <= 0 {
		t.Errorf("backoff(200) = %d, wrapped", got)
	}
}

func TestExpBackoffCapAndEdgeCases(t *testing.T) {
	cases := []struct {
		base    simtime.Time
		attempt int
		max     simtime.Time
		want    simtime.Time
	}{
		{4, 1, 1 << 20, 4},
		{4, 3, 1 << 20, 16},
		{4, 0, 1 << 20, 4},              // attempt below 1 treated as 1
		{4, -5, 1 << 20, 4},             // ditto
		{4, 19, 1 << 20, 1 << 20},       // overshoots → cap
		{4, 64, 1 << 20, 1 << 20},       // shift ≥ width → cap, no wrap
		{4, 1 << 30, 1 << 20, 1 << 20},  // absurd attempt → cap
		{3, 62, BackoffCap, BackoffCap}, // near-int64 shift saturates
		{1 << 40, 30, BackoffCap, BackoffCap},
		{100, 5, 50, 50},                     // base already ≥ max
		{0, 3, 1 << 20, DefaultBackoff << 2}, // zero base → default
		{4, 10, 0, 4 << 9},                   // zero max → BackoffCap fallback
	}
	for _, tc := range cases {
		got := ExpBackoff(tc.base, tc.attempt, tc.max)
		if got != tc.want {
			t.Errorf("ExpBackoff(%d, %d, %d) = %d, want %d", tc.base, tc.attempt, tc.max, got, tc.want)
		}
		if got <= 0 {
			t.Errorf("ExpBackoff(%d, %d, %d) = %d, non-positive", tc.base, tc.attempt, tc.max, got)
		}
	}
	// Every (base, attempt) combination stays positive and monotone up to
	// the cap — the overflow class the unguarded shift used to hit.
	for attempt := 1; attempt < 300; attempt++ {
		d := ExpBackoff(7, attempt, BackoffCap)
		if d <= 0 || d > BackoffCap {
			t.Fatalf("attempt %d: delay %d out of range", attempt, d)
		}
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	r := rng.New(42)
	const d, frac = 1000, 0.25
	lo, hi := simtime.Time(750), simtime.Time(1250)
	for i := 0; i < 200; i++ {
		got := Jitter(d, frac, r)
		if got < lo || got > hi {
			t.Fatalf("jitter %d outside [%d,%d]", got, lo, hi)
		}
	}
	// Zero fraction or nil source must return d exactly without drawing.
	before := rng.New(7)
	if Jitter(d, 0, before) != d {
		t.Error("zero frac altered the delay")
	}
	if before.Uint64() != rng.New(7).Uint64() {
		t.Error("zero frac consumed randomness")
	}
	if Jitter(d, frac, nil) != d {
		t.Error("nil source altered the delay")
	}
	// Same seed → same sequence.
	a, b := rng.New(9), rng.New(9)
	for i := 0; i < 50; i++ {
		if Jitter(d, frac, a) != Jitter(d, frac, b) {
			t.Fatal("jitter not deterministic per seed")
		}
	}
	// Tiny delays never jitter below 1 tick.
	small := rng.New(3)
	for i := 0; i < 100; i++ {
		if got := Jitter(2, 1.0, small); got < 1 {
			t.Fatalf("jitter %d below 1 tick", got)
		}
	}
}

func TestJitteredBackoffZeroFracIdentical(t *testing.T) {
	cfg := Config{RetryBackoff: 8}
	r := rng.New(1)
	for k := 1; k <= 6; k++ {
		if cfg.JitteredBackoff(k, r) != cfg.Backoff(k) {
			t.Fatalf("attempt %d: zero JitterFrac changed the delay", k)
		}
	}
	jcfg := Config{RetryBackoff: 8, JitterFrac: 0.5}
	saw := false
	for k := 1; k <= 6; k++ {
		d := jcfg.JitteredBackoff(k, r)
		base := jcfg.Backoff(k)
		if d < base/2 || d > base+base/2 {
			t.Fatalf("attempt %d: jittered delay %d outside ±50%% of %d", k, d, base)
		}
		if d != base {
			saw = true
		}
	}
	if !saw {
		t.Error("jitter never moved any delay")
	}
}
