package faults

import (
	"reflect"
	"testing"

	"repro/internal/resource"
	"repro/internal/simtime"
)

func testEnv() *resource.Environment {
	perfs := []float64{1.0, 0.5, 0.33, 0.27, 0.8, 0.4}
	nodes := make([]*resource.Node, len(perfs))
	for i, p := range perfs {
		dom := "dom-0"
		if i >= 3 {
			dom = "dom-1"
		}
		nodes[i] = resource.NewNode(resource.NodeID(i), "n", p, p, dom)
	}
	return resource.NewEnvironment(nodes)
}

func TestZeroConfigDisabled(t *testing.T) {
	var cfg Config
	if cfg.Enabled() || cfg.OutagesEnabled() {
		t.Error("zero config not disabled")
	}
	if got := Schedule(cfg, testEnv()); got != nil {
		t.Errorf("zero config produced outages: %v", got)
	}
	if cfg.Availability() != 1 {
		t.Errorf("zero-config availability = %v, want 1", cfg.Availability())
	}
}

func TestScheduleDeterministicSortedAndBounded(t *testing.T) {
	cfg := Config{MTBF: 50, MTTR: 10, DomainOutageProb: 0.3, Until: 1000, Seed: 9}
	env := testEnv()
	a, b := Schedule(cfg, env), Schedule(cfg, env)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("schedule not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no outages generated")
	}
	for i, o := range a {
		if o.Interval.Start >= cfg.Until {
			t.Errorf("outage %d starts at %d, beyond horizon %d", i, o.Interval.Start, cfg.Until)
		}
		if o.Interval.Len() < 1 {
			t.Errorf("outage %d has empty window %v", i, o.Interval)
		}
		if i > 0 && a[i-1].Interval.Start > o.Interval.Start {
			t.Errorf("outages out of order at %d", i)
		}
	}
}

func TestSchedulePerNodeStreamsIndependent(t *testing.T) {
	// A node's outage stream must not shift when the config changes only
	// the horizon: the first outages of a longer schedule are a superset
	// prefix per node.
	env := testEnv()
	short := Schedule(Config{MTBF: 40, MTTR: 8, Until: 500, Seed: 3}, env)
	long := Schedule(Config{MTBF: 40, MTTR: 8, Until: 2000, Seed: 3}, env)
	inLong := make(map[Outage]bool, len(long))
	for _, o := range long {
		inLong[o] = true
	}
	for _, o := range short {
		if !inLong[o] {
			t.Errorf("outage %+v of the short schedule missing from the long one", o)
		}
	}
}

func TestDomainOutageProbability(t *testing.T) {
	env := testEnv()
	all := Schedule(Config{MTBF: 30, MTTR: 5, DomainOutageProb: 1, Until: 2000, Seed: 1}, env)
	for _, o := range all {
		if o.Domain == "" {
			t.Fatalf("prob 1 produced node-only outage %+v", o)
		}
	}
	none := Schedule(Config{MTBF: 30, MTTR: 5, DomainOutageProb: 0, Until: 2000, Seed: 1}, env)
	for _, o := range none {
		if o.Domain != "" {
			t.Fatalf("prob 0 produced domain outage %+v", o)
		}
	}
}

func TestAvailabilityRoundTrip(t *testing.T) {
	for _, want := range []float64{0.99, 0.9, 0.75, 0.5} {
		mtbf, mttr := ForAvailability(want, 20)
		cfg := Config{MTBF: mtbf, MTTR: mttr}
		if got := cfg.Availability(); got < want-1e-9 || got > want+1e-9 {
			t.Errorf("availability(%v) round-tripped to %v", want, got)
		}
	}
	if mtbf, _ := ForAvailability(1.0, 20); mtbf != 0 {
		t.Errorf("availability 1 gave MTBF %v, want 0 (disabled)", mtbf)
	}
}

func TestBackoffDoublesAndSaturates(t *testing.T) {
	cfg := Config{RetryBackoff: 3}
	for i, want := range []simtime.Time{3, 6, 12, 24} {
		if got := cfg.Backoff(i + 1); got != want {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, want)
		}
	}
	var def Config
	if def.Backoff(1) != DefaultBackoff {
		t.Errorf("default base = %d, want %d", def.Backoff(1), DefaultBackoff)
	}
	// A pathological attempt count must saturate, not wrap negative.
	if got := def.Backoff(200); got <= 0 {
		t.Errorf("backoff(200) = %d, wrapped", got)
	}
}
