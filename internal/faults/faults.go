// Package faults generates deterministic fault schedules for the VO
// simulation: node outages (a node's local batch system crashes and loses
// its reservation book), domain outages (every node of a job-manager
// domain down at once), and mid-run task failures (a running task dies,
// breaking the advance-reservation guarantee).
//
// The paper treats "the environment changes" as the reason supporting
// schedules exist at all; this package makes those changes reproducible.
// A schedule is a pure function of (Config, environment shape): the
// injector in internal/metasched replays it through the simulation engine,
// so two runs with the same seed produce byte-identical traces.
//
// The per-node outage process is an alternating renewal process: up spans
// drawn exponential with mean MTBF, down spans exponential with mean MTTR
// (floored at 1 tick). Steady-state availability is therefore
// MTBF/(MTBF+MTTR). With probability DomainOutageProb a node outage
// escalates to its whole domain — the failure mode that forces
// metascheduler-level job reallocation rather than in-domain fallback.
package faults

import (
	"sort"

	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Config tunes fault injection. The zero value disables everything: a VO
// run with a zero Config is byte-identical to one without fault support.
type Config struct {
	// MTBF is the mean model time a node stays up between outages.
	// Zero disables node and domain outages.
	MTBF float64
	// MTTR is the mean outage duration; outages last at least 1 tick.
	// Ignored when MTBF is zero.
	MTTR float64
	// DomainOutageProb is the probability that a node outage takes its
	// whole domain down with it.
	DomainOutageProb float64
	// TaskFailRate is the per-activation probability that a running job
	// loses a task mid-run. Zero disables task failures.
	TaskFailRate float64
	// MaxRetries bounds the retry/backoff recovery attempts after a
	// failure kills a running job; past it the job escalates to the
	// remaining supporting levels, then cross-domain reallocation, then
	// rejection.
	MaxRetries int
	// RetryBackoff is the base backoff delay; attempt k waits
	// RetryBackoff << (k-1). Zero defaults to DefaultBackoff.
	RetryBackoff simtime.Time
	// JitterFrac spreads each backoff delay uniformly over
	// [d−frac·d, d+frac·d] from a seeded stream, de-synchronizing retry
	// storms after a shared outage. Zero (the default) keeps the delays
	// exact and runs byte-identical to builds without jitter support.
	JitterFrac float64
	// Until is the model-time horizon of the outage schedule; no outage
	// starts at or after it. Required (>0) when MTBF is set.
	Until simtime.Time
	// Seed drives schedule generation and task-failure draws.
	Seed uint64
}

// DefaultBackoff is the base retry backoff when Config.RetryBackoff is 0.
const DefaultBackoff simtime.Time = 4

// Enabled reports whether any fault mechanism is switched on.
func (c Config) Enabled() bool { return c.MTBF > 0 || c.TaskFailRate > 0 }

// OutagesEnabled reports whether the outage process is switched on.
func (c Config) OutagesEnabled() bool { return c.MTBF > 0 && c.Until > 0 }

// BackoffCap bounds every exponential backoff delay: large attempt counts
// saturate here instead of overflowing int64 into negative durations.
const BackoffCap = simtime.Infinity / 2

// Backoff returns the delay before retry attempt k (1-based), doubling
// per attempt from the configured base and saturating at BackoffCap.
func (c Config) Backoff(attempt int) simtime.Time {
	base := c.RetryBackoff
	if base <= 0 {
		base = DefaultBackoff
	}
	return ExpBackoff(base, attempt, BackoffCap)
}

// JitteredBackoff is Backoff with the configured JitterFrac applied from
// r's stream. With a zero JitterFrac (or nil r) it is exactly Backoff and
// draws nothing, so runs without jitter stay byte-identical.
func (c Config) JitteredBackoff(attempt int, r *rng.Source) simtime.Time {
	return Jitter(c.Backoff(attempt), c.JitterFrac, r)
}

// ExpBackoff returns base·2^(attempt−1) clamped to [base, max]. The shift
// count is capped before it can wrap: any attempt that would overflow
// int64 — or merely exceed max — saturates at max. attempt values below 1
// are treated as 1; a non-positive max falls back to BackoffCap.
func ExpBackoff(base simtime.Time, attempt int, max simtime.Time) simtime.Time {
	if base <= 0 {
		base = DefaultBackoff
	}
	if max <= 0 {
		max = BackoffCap
	}
	if base >= max {
		return max
	}
	if attempt < 1 {
		attempt = 1
	}
	// base < max ≤ int64 range, so the saturation point is the first shift
	// where base ≥ max>>shift; testing against max>>shift avoids ever
	// computing an overflowing base<<shift.
	shift := uint(attempt - 1)
	if shift >= 63 || base > max>>shift {
		return max
	}
	return base << shift
}

// Jitter spreads d uniformly over [d−frac·d, d+frac·d] using r's stream,
// never returning less than 1 tick. frac ≤ 0 or a nil r returns d exactly
// (and draws nothing); frac is clamped to 1. Both the recovery ladder's
// retry delays and the circuit breaker's open windows share this helper,
// so a single seeded stream de-correlates them consistently.
func Jitter(d simtime.Time, frac float64, r *rng.Source) simtime.Time {
	if frac <= 0 || r == nil || d <= 0 {
		return d
	}
	if frac > 1 {
		frac = 1
	}
	spread := simtime.Time(frac * float64(d))
	if spread <= 0 {
		return d
	}
	out := d - spread + simtime.Time(r.Int64n(2*int64(spread)+1))
	if out < 1 {
		out = 1
	}
	return out
}

// Availability returns the steady-state node availability implied by the
// outage process, or 1 when outages are disabled.
func (c Config) Availability() float64 {
	if c.MTBF <= 0 {
		return 1
	}
	mttr := c.MTTR
	if mttr < 1 {
		mttr = 1
	}
	return c.MTBF / (c.MTBF + mttr)
}

// ForAvailability returns the (MTBF, MTTR) pair realizing the given
// steady-state availability with the given mean repair time. Availability
// at or above 1 disables outages (MTBF 0).
func ForAvailability(avail, mttr float64) (mtbf, repair float64) {
	if avail >= 1 || avail <= 0 {
		return 0, mttr
	}
	return mttr * avail / (1 - avail), mttr
}

// Outage is one scheduled unavailability window. Domain is empty for an
// individual node crash; a non-empty Domain means every node of that
// domain is down for the interval (Node then names the node whose failure
// escalated).
type Outage struct {
	Node     resource.NodeID
	Domain   string
	Interval simtime.Interval
}

// Schedule generates the full outage list for env, sorted by start time
// (ties by node ID, domain outages after node outages at the same
// instant). Each node's process draws from its own seeded stream, so the
// schedule is independent of node iteration order and stable under
// environment growth.
func Schedule(cfg Config, env *resource.Environment) []Outage {
	if !cfg.OutagesEnabled() {
		return nil
	}
	mttr := cfg.MTTR
	if mttr < 1 {
		mttr = 1
	}
	var out []Outage
	for _, n := range env.Nodes() {
		r := rng.New(cfg.Seed).Split(0xFA17).Split(uint64(n.ID) + 1)
		t := simtime.Time(r.Exp(cfg.MTBF)) + 1
		for t < cfg.Until {
			dur := simtime.Time(r.Exp(mttr)) + 1
			o := Outage{Node: n.ID, Interval: simtime.Interval{Start: t, End: t + dur}}
			if r.Bool(cfg.DomainOutageProb) {
				o.Domain = n.Domain
			}
			out = append(out, o)
			t = o.Interval.End + simtime.Time(r.Exp(cfg.MTBF)) + 1
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Interval.Start != out[b].Interval.Start {
			return out[a].Interval.Start < out[b].Interval.Start
		}
		if (out[a].Domain == "") != (out[b].Domain == "") {
			return out[a].Domain == ""
		}
		return out[a].Node < out[b].Node
	})
	return out
}
