// Package workload generates the synthetic environments and job corpora of
// the paper's §4 experiments: 20–30 heterogeneous nodes in three relative
// performance bands, and randomized compound jobs whose task estimates,
// computation volumes and transfer parameters are uniformly distributed
// with a 2–3× spread, each with a fixed completion time (deadline).
package workload

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Config parameterizes generation. The defaults reproduce §4's stated
// setup; the spread between a distribution's Lo and Hi is the paper's
// "difference equal to 2...3" between task parameters.
type Config struct {
	Seed uint64

	// Environment shape.
	MinNodes, MaxNodes int // §4: varied from 20 to 30

	// Job shape: layered DAGs whose width matches a task parallelism
	// degree conformable with the node count.
	MinLayers, MaxLayers int
	MinWidth, MaxWidth   int
	CrossEdgeProb        float64 // extra edges between adjacent layers
	// PipelineProb is the chance each layer element extends into a linear
	// run of up to MaxPipeline extra tasks — the "computational
	// granularity" structure that coarse-grain (S3) strategies cluster.
	PipelineProb float64
	MaxPipeline  int

	// Task parameters (uniform, spread 2–3×).
	BaseTimeLo, BaseTimeHi simtime.Time
	VolumeLo, VolumeHi     int64
	TransferLo, TransferHi simtime.Time
	TransferVolLo, VolHi   int64

	// DeadlineFactor stretches the best-case critical path into the job's
	// fixed completion time: deadline = release + factor × criticalPath.
	DeadlineFactor float64

	// MeanInterarrival is the mean of the exponential job inter-arrival
	// time used by Flow.
	MeanInterarrival float64
}

// Default returns the §4 configuration.
func Default(seed uint64) Config {
	return Config{
		Seed:             seed,
		MinNodes:         20,
		MaxNodes:         30,
		MinLayers:        3,
		MaxLayers:        5,
		MinWidth:         2,
		MaxWidth:         4,
		CrossEdgeProb:    0.35,
		PipelineProb:     0.5,
		MaxPipeline:      2,
		BaseTimeLo:       2,
		BaseTimeHi:       6, // 3× spread
		VolumeLo:         10,
		VolumeHi:         30,
		TransferLo:       1,
		TransferHi:       3,
		TransferVolLo:    5,
		VolHi:            15,
		DeadlineFactor:   1.6,
		MeanInterarrival: 12,
	}
}

// Generator produces environments, jobs and flows deterministically from
// the config seed. Job(i) and Flow(s, …) are pure functions of (seed, i)
// and (seed, s): repeated calls return identical results.
type Generator struct {
	cfg  Config
	env  *rng.Source
	base uint64
}

// New creates a generator for the config.
func New(cfg Config) *Generator {
	root := rng.New(cfg.Seed)
	env := root.Split(1)
	return &Generator{
		cfg:  cfg,
		env:  env,
		base: rng.New(cfg.Seed).Split(2).Uint64(),
	}
}

// jobRNG derives the idx-th job's private stream without mutating shared
// state.
func (g *Generator) jobRNG(idx uint64) *rng.Source {
	return rng.New(g.base ^ (idx+1)*0x9e3779b97f4a7c15)
}

// Environment builds the §4 node set: a node count in [MinNodes, MaxNodes]
// split into three groups — "fast" with relative performance 0.66–1.0,
// medium 0.34–0.66, and "slow" 0.25–0.34 (the paper pins the slow group at
// the 0.33 floor; we widen it slightly downward so all four estimation
// tiers of §3's table are populated). Nodes are spread round-robin across
// `domains` job-manager domains, and priced proportionally to performance.
func (g *Generator) Environment(domains int) *resource.Environment {
	if domains < 1 {
		domains = 1
	}
	n := g.env.IntBetween(g.cfg.MinNodes, g.cfg.MaxNodes)
	// The first four nodes pin one representative per estimation tier so
	// every strategy level always has at least one candidate; the rest are
	// drawn uniformly from their group's band.
	anchors := []float64{1.0, 0.5, 0.33, 0.27}
	nodes := make([]*resource.Node, n)
	for i := 0; i < n; i++ {
		var perf float64
		if i < len(anchors) {
			perf = anchors[i]
		} else {
			switch i % 3 {
			case 0:
				perf = g.env.Float64Between(0.67, 1.0)
			case 1:
				perf = g.env.Float64Between(0.35, 0.66)
			default:
				perf = g.env.Float64Between(0.25, 0.34)
			}
		}
		// Group domains in contiguous blocks of three so every domain gets
		// a mix of the three performance bands (the band cycles with i%3;
		// using i%domains here would segregate domains by speed).
		dom := fmt.Sprintf("domain-%d", (i/3)%domains)
		nodes[i] = resource.NewNode(resource.NodeID(i), fmt.Sprintf("node-%02d", i), perf, perf, dom)
	}
	return resource.NewEnvironment(nodes)
}

// Job generates the idx-th random compound job: a layered DAG where every
// non-source task has at least one predecessor in the previous layer and
// every non-sink at least one successor, so the graph is a single weakly
// connected component with full parallel structure.
func (g *Generator) Job(idx int) *dag.Job {
	r := g.jobRNG(uint64(idx))
	name := fmt.Sprintf("job-%05d", idx)
	b := dag.NewBuilder(name)

	newTask := func(taskNo int) string {
		name := fmt.Sprintf("P%d", taskNo)
		b.Task(name,
			simtime.Time(r.Int64Between(int64(g.cfg.BaseTimeLo), int64(g.cfg.BaseTimeHi))),
			r.Int64Between(g.cfg.VolumeLo, g.cfg.VolumeHi))
		return name
	}

	// Each layer element is a small pipeline: a head task optionally
	// extended by a linear run. Incoming edges attach to the head,
	// outgoing edges leave from the tail — the linear runs are what
	// coarse-grain (S3) clustering merges into macro tasks.
	type element struct{ head, tail string }
	layers := r.IntBetween(g.cfg.MinLayers, g.cfg.MaxLayers)
	var rows [][]element
	taskNo := 0
	edgeNo := 0
	var pipeEdges []struct{ from, to string }
	for l := 0; l < layers; l++ {
		width := 1
		if l > 0 && l < layers-1 {
			width = r.IntBetween(g.cfg.MinWidth, g.cfg.MaxWidth)
		}
		row := make([]element, width)
		for w := 0; w < width; w++ {
			taskNo++
			head := newTask(taskNo)
			tail := head
			if g.cfg.MaxPipeline > 0 && r.Bool(g.cfg.PipelineProb) {
				for k := r.IntBetween(1, g.cfg.MaxPipeline); k > 0; k-- {
					taskNo++
					next := newTask(taskNo)
					pipeEdges = append(pipeEdges, struct{ from, to string }{tail, next})
					tail = next
				}
			}
			row[w] = element{head: head, tail: tail}
		}
		rows = append(rows, row)
	}
	hasEdge := make(map[string]bool) // "from>to" pairs already connected
	outDeg := make(map[string]int)
	addEdge := func(from, to string) {
		key := from + ">" + to
		if hasEdge[key] {
			return
		}
		hasEdge[key] = true
		outDeg[from]++
		edgeNo++
		b.Edge(fmt.Sprintf("D%d", edgeNo), from, to,
			simtime.Time(r.Int64Between(int64(g.cfg.TransferLo), int64(g.cfg.TransferHi))),
			r.Int64Between(g.cfg.TransferVolLo, g.cfg.VolHi))
	}
	for _, pe := range pipeEdges {
		addEdge(pe.from, pe.to)
	}
	for l := 1; l < len(rows); l++ {
		prev, cur := rows[l-1], rows[l]
		// Guarantee connectivity both ways: heads consume, tails produce.
		for _, to := range cur {
			addEdge(prev[r.Intn(len(prev))].tail, to.head)
		}
		for _, from := range prev {
			if outDeg[from.tail] == 0 {
				addEdge(from.tail, cur[r.Intn(len(cur))].head)
			}
		}
		// Extra cross edges for data-dependency richness.
		for _, from := range prev {
			for _, to := range cur {
				if r.Bool(g.cfg.CrossEdgeProb) {
					addEdge(from.tail, to.head)
				}
			}
		}
	}

	job := b.MustBuild()
	// Fixed completion time: factor × best-case critical path (transfers
	// included), at least 1 tick of slack.
	cp := job.CriticalPathLength(dag.WeightFunc{})
	deadline := simtime.Time(g.cfg.DeadlineFactor*float64(cp) + 0.5)
	if deadline <= cp {
		deadline = cp + 1
	}
	return job.WithDeadline(deadline)
}

// Arrival is one job of a flow with its submission time.
type Arrival struct {
	Job *dag.Job
	At  simtime.Time
}

// Flow generates n jobs with exponential inter-arrival times starting at
// `start`. The stream index decorrelates parallel flows. Each job's fixed
// completion time is re-anchored at its arrival: deadline = arrival +
// DeadlineFactor × critical path. Flow is the Poisson case of FlowWith
// (byte-identical, guarded by TestFlowWithPoissonMatchesFlow).
func (g *Generator) Flow(stream, n int, start simtime.Time) []Arrival {
	return g.FlowWith(ArrivalSpec{Kind: ProcPoisson}, stream, n, start)
}
