package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/simtime"
)

var allKinds = []ProcessKind{ProcPoisson, ProcBursty, ProcDiurnal}

func TestParseProcess(t *testing.T) {
	for _, k := range allKinds {
		got, err := ParseProcess(k.String())
		if err != nil || got != k {
			t.Errorf("ParseProcess(%q) = %v, %v", k.String(), got, err)
		}
	}
	if got, err := ParseProcess(""); err != nil || got != ProcPoisson {
		t.Errorf("ParseProcess(\"\") = %v, %v; want poisson default", got, err)
	}
	if _, err := ParseProcess("weibull"); err == nil {
		t.Error("ParseProcess accepted an unknown process")
	}
}

func TestFlowWithPoissonMatchesFlow(t *testing.T) {
	// Flow is specified to be the Poisson case of FlowWith; the
	// differential and golden suites depend on its stream not shifting.
	g := New(Default(21))
	a := g.Flow(2, 40, 50)
	b := New(Default(21)).FlowWith(ArrivalSpec{Kind: ProcPoisson}, 2, 40, 50)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Job.Deadline != b[i].Job.Deadline {
			t.Fatalf("arrival %d differs: (%d,%d) vs (%d,%d)",
				i, a[i].At, a[i].Job.Deadline, b[i].At, b[i].Job.Deadline)
		}
	}
}

// TestFlowWithEmpiricalRate checks that every process hits its configured
// long-run rate: the mean inter-arrival time over a long flow must land
// within tolerance of Config.MeanInterarrival.
func TestFlowWithEmpiricalRate(t *testing.T) {
	const n = 4000
	cfg := Default(3)
	for _, k := range allKinds {
		g := New(cfg)
		flow := g.FlowWith(ArrivalSpec{Kind: k}, 0, n, 0)
		span := float64(flow[n-1].At - flow[0].At)
		mean := span / float64(n-1)
		// Bursty and diurnal have heavier inter-arrival variance than
		// Poisson; 15% over 4000 samples holds with margin for all three.
		if rel := mean/cfg.MeanInterarrival - 1; rel < -0.15 || rel > 0.15 {
			t.Errorf("%v: empirical mean inter-arrival %.2f, configured %.2f (%.1f%% off)",
				k, mean, cfg.MeanInterarrival, 100*rel)
		}
	}
}

// TestFlowWithProperties quick-checks the invariants shared by all three
// processes: same seed → byte-identical flows, monotone arrivals that
// never precede the start, and the deadline re-anchoring invariant
// (absolute deadline − arrival == the job's intrinsic relative deadline).
func TestFlowWithProperties(t *testing.T) {
	for _, k := range allKinds {
		k := k
		f := func(seed uint64, streamRaw uint8) bool {
			stream := int(streamRaw % 4)
			const n, start = 25, 100
			spec := ArrivalSpec{Kind: k}
			g := New(Default(seed))
			flow := g.FlowWith(spec, stream, n, start)
			again := New(Default(seed)).FlowWith(spec, stream, n, start)
			if len(flow) != n || len(again) != n {
				return false
			}
			last := simtime.Time(start)
			for i, a := range flow {
				// Determinism: identical times, deadlines and task params.
				b := again[i]
				if a.At != b.At || a.Job.Deadline != b.Job.Deadline || a.Job.NumTasks() != b.Job.NumTasks() {
					return false
				}
				for tid := 0; tid < a.Job.NumTasks(); tid++ {
					if a.Job.Task(dag.TaskID(tid)) != b.Job.Task(dag.TaskID(tid)) {
						return false
					}
				}
				// Monotone, never before start.
				if a.At < last {
					return false
				}
				last = a.At
				// Re-anchoring: the absolute deadline is arrival + the
				// relative deadline of the underlying generated job.
				rel := g.Job(stream*1_000_000 + i).Deadline
				if a.Job.Deadline != a.At+rel {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestFlowWithStreamsDecorrelated(t *testing.T) {
	for _, k := range allKinds {
		g := New(Default(17))
		a := g.FlowWith(ArrivalSpec{Kind: k}, 0, 20, 0)
		b := g.FlowWith(ArrivalSpec{Kind: k}, 1, 20, 0)
		same := true
		for i := range a {
			if a[i].At != b[i].At {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: streams 0 and 1 produced identical arrival times", k)
		}
	}
}

func TestArrivalSpecDefaults(t *testing.T) {
	sp := ArrivalSpec{Kind: ProcBursty}.withDefaults(10)
	if sp.OnMean != 50 || sp.OffMean != 50 || sp.Period != 400 || sp.Amplitude != 0.8 {
		t.Errorf("defaults = %+v", sp)
	}
	// Amplitude must stay below 1 for thinning to terminate.
	sp = ArrivalSpec{Kind: ProcDiurnal, Amplitude: 3}.withDefaults(10)
	if sp.Amplitude >= 1 {
		t.Errorf("amplitude not clamped: %v", sp.Amplitude)
	}
}
