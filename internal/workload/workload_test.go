package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/resource"
)

func TestEnvironmentShape(t *testing.T) {
	g := New(Default(1))
	env := g.Environment(3)
	if n := env.NumNodes(); n < 20 || n > 30 {
		t.Errorf("node count = %d, want 20..30 (§4)", n)
	}
	// All three paper groups must be populated.
	for _, grp := range []resource.Group{resource.GroupFast, resource.GroupMedium, resource.GroupSlow} {
		if len(env.ByGroup(grp)) == 0 {
			t.Errorf("group %v empty", grp)
		}
	}
	// All four estimation tiers must be reachable so every strategy level
	// has candidates.
	tiers := map[resource.Tier]int{}
	for _, n := range env.Nodes() {
		tiers[n.Tier()]++
	}
	for k := resource.Tier(1); k <= resource.NumTiers; k++ {
		if tiers[k] == 0 {
			t.Errorf("tier %d unpopulated: %v", k, tiers)
		}
	}
	if len(env.Domains()) != 3 {
		t.Errorf("domains = %v", env.Domains())
	}
}

func TestEnvironmentDeterministic(t *testing.T) {
	a := New(Default(7)).Environment(2)
	b := New(Default(7)).Environment(2)
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("node counts differ for same seed")
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(resource.NodeID(i)), b.Node(resource.NodeID(i))
		if na.Perf != nb.Perf || na.Domain != nb.Domain {
			t.Fatalf("node %d differs: %+v vs %+v", i, na, nb)
		}
	}
}

func TestJobShape(t *testing.T) {
	g := New(Default(3))
	job := g.Job(0)
	if job.NumTasks() < 3 {
		t.Errorf("tasks = %d", job.NumTasks())
	}
	if len(job.Sources()) == 0 || len(job.Sinks()) == 0 {
		t.Error("no sources or sinks")
	}
	cp := job.CriticalPathLength(dag.WeightFunc{})
	if job.Deadline <= cp {
		t.Errorf("deadline %d not beyond critical path %d", job.Deadline, cp)
	}
}

func TestJobSpreadWithinConfig(t *testing.T) {
	cfg := Default(5)
	g := New(cfg)
	for i := 0; i < 50; i++ {
		job := g.Job(i)
		for _, task := range job.Tasks() {
			if task.BaseTime < cfg.BaseTimeLo || task.BaseTime > cfg.BaseTimeHi {
				t.Fatalf("task base time %d outside [%d,%d]", task.BaseTime, cfg.BaseTimeLo, cfg.BaseTimeHi)
			}
			if task.Volume < cfg.VolumeLo || task.Volume > cfg.VolumeHi {
				t.Fatalf("task volume %d outside bounds", task.Volume)
			}
		}
		for _, e := range job.Edges() {
			if e.BaseTime < cfg.TransferLo || e.BaseTime > cfg.TransferHi {
				t.Fatalf("transfer time %d outside bounds", e.BaseTime)
			}
		}
	}
}

func TestJobsDiffer(t *testing.T) {
	g := New(Default(9))
	a, b := g.Job(1), g.Job(2)
	if a.NumTasks() == b.NumTasks() && a.NumEdges() == b.NumEdges() && a.Deadline == b.Deadline {
		// Same shape can legitimately collide; require some difference in
		// task parameters then.
		same := true
		for i := 0; i < a.NumTasks(); i++ {
			if a.Task(dag.TaskID(i)).BaseTime != b.Task(dag.TaskID(i)).BaseTime {
				same = false
				break
			}
		}
		if same {
			t.Error("jobs 1 and 2 are identical")
		}
	}
}

func TestJobDeterministicByIndex(t *testing.T) {
	a := New(Default(11)).Job(42)
	b := New(Default(11)).Job(42)
	if a.NumTasks() != b.NumTasks() || a.Deadline != b.Deadline {
		t.Fatal("same-index jobs differ")
	}
	for i := 0; i < a.NumTasks(); i++ {
		if a.Task(dag.TaskID(i)) != b.Task(dag.TaskID(i)) {
			t.Fatal("task parameters differ")
		}
	}
}

func TestFlow(t *testing.T) {
	g := New(Default(13))
	flow := g.Flow(0, 20, 100)
	if len(flow) != 20 {
		t.Fatalf("flow length = %d", len(flow))
	}
	last := flow[0].At
	if last < 100 {
		t.Errorf("first arrival %d before start", last)
	}
	for _, a := range flow[1:] {
		if a.At < last {
			t.Error("arrivals not monotone")
		}
		last = a.At
	}
	// Streams are decorrelated.
	other := g.Flow(1, 20, 100)
	if other[0].At == flow[0].At && other[5].At == flow[5].At {
		t.Error("streams 0 and 1 look identical")
	}
}

func TestQuickJobsAlwaysValid(t *testing.T) {
	// Every generated job is a connected DAG with a feasible deadline and
	// non-degenerate parameters.
	f := func(seed uint64, idx uint16) bool {
		g := New(Default(seed))
		job := g.Job(int(idx % 500))
		if job.NumTasks() == 0 {
			return false
		}
		// Weak connectivity: every non-source task has an in-edge, every
		// non-sink an out-edge, and there is exactly one source layer
		// element (layer 0 has width 1).
		if len(job.Sources()) != 1 || len(job.Sinks()) != 1 {
			return false
		}
		cp := job.CriticalPathLength(dag.WeightFunc{})
		return job.Deadline > cp && cp > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
