// Package metrics provides the statistics collectors behind the
// experiment harness: streaming series (mean/deviation/percentiles),
// labelled counters, and the normalization used by the paper's "relative"
// bar charts (Fig. 4), where each strategy's value is shown as a fraction
// of the maximum across strategies.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Series accumulates float64 observations.
// The zero value is an empty series ready to use.
type Series struct {
	values []float64
}

// Add appends one observation.
func (s *Series) Add(v float64) { s.values = append(s.values, v) }

// AddInt appends an integer observation.
func (s *Series) AddInt(v int64) { s.Add(float64(v)) }

// Count returns the number of observations.
func (s *Series) Count() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the population standard deviation, or 0 when fewer than two
// observations exist.
func (s *Series) Std() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.values {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Min returns the smallest observation, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank method, or 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Sum returns the total of all observations.
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum
}

// Counter tallies occurrences per string label, with deterministic
// iteration order for reports.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Inc adds n to the label's tally.
func (c *Counter) Inc(label string, n int) { c.counts[label] += n }

// Get returns the label's tally.
func (c *Counter) Get(label string) int { return c.counts[label] }

// Total returns the sum across labels.
func (c *Counter) Total() int {
	t := 0
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Share returns the label's fraction of the total, or 0 when empty.
func (c *Counter) Share(label string) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.counts[label]) / float64(t)
}

// Labels returns the labels in sorted order.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for l := range c.counts {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// FaultStats aggregates one run's fault-injection record: how often the
// environment broke and how the two scheduling levels recovered. The zero
// value is ready to use; a run without fault injection leaves it zero.
type FaultStats struct {
	// NodeOutages and DomainOutages count outage windows that began.
	NodeOutages   int
	DomainOutages int
	// TaskFailures counts mid-run task deaths (including those caused by
	// a node going down under a running job).
	TaskFailures int
	// Retries counts backoff-delayed in-domain recovery attempts.
	Retries int
	// Recoveries counts jobs that completed despite at least one failure.
	Recoveries int
	// Downtime collects per-job downtime: model time between a failure
	// and the next successful (re)activation, summed per job.
	Downtime Series
}

// Merge adds other's tallies into f.
func (f *FaultStats) Merge(other *FaultStats) {
	f.NodeOutages += other.NodeOutages
	f.DomainOutages += other.DomainOutages
	f.TaskFailures += other.TaskFailures
	f.Retries += other.Retries
	f.Recoveries += other.Recoveries
	for _, v := range other.Downtime.values {
		f.Downtime.Add(v)
	}
}

// String renders the counters on one line for reports and logs.
func (f *FaultStats) String() string {
	return fmt.Sprintf("outages=%d(domain=%d) task-failures=%d retries=%d recoveries=%d mean-downtime=%.1f",
		f.NodeOutages, f.DomainOutages, f.TaskFailures, f.Retries, f.Recoveries, f.Downtime.Mean())
}

// Normalize scales the values so the maximum becomes 1 — the paper's
// "relative" presentation in Fig. 4(b,c). An all-zero input is returned
// unchanged.
func Normalize(values map[string]float64) map[string]float64 {
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make(map[string]float64, len(values))
	for k, v := range values {
		if max == 0 {
			out[k] = 0
		} else {
			out[k] = v / max
		}
	}
	return out
}

// Ratio formats a fraction as a percentage with one decimal.
func Ratio(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
