package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Count() != 0 || s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 || s.Sum() != 0 {
		t.Error("empty series must report zeros")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Std() != 2 { // classic example with population std exactly 2
		t.Errorf("Std = %v", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Errorf("Sum = %v", s.Sum())
	}
}

func TestSeriesAddInt(t *testing.T) {
	var s Series
	s.AddInt(3)
	s.AddInt(5)
	if s.Mean() != 4 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {100, 100}, {-5, 1}, {150, 100},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("fast", 32)
	c.Inc("slow", 68)
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Share("fast") != 0.32 {
		t.Errorf("Share(fast) = %v", c.Share("fast"))
	}
	if got := c.Labels(); len(got) != 2 || got[0] != "fast" || got[1] != "slow" {
		t.Errorf("Labels = %v", got)
	}
	if c.Get("missing") != 0 {
		t.Error("missing label nonzero")
	}
}

func TestCounterEmptyShare(t *testing.T) {
	if NewCounter().Share("x") != 0 {
		t.Error("empty counter share not 0")
	}
}

func TestNormalize(t *testing.T) {
	in := map[string]float64{"S2": 10, "S3": 5, "MS1": 8}
	out := Normalize(in)
	if out["S2"] != 1 || out["S3"] != 0.5 || out["MS1"] != 0.8 {
		t.Errorf("Normalize = %v", out)
	}
	zero := Normalize(map[string]float64{"a": 0, "b": 0})
	if zero["a"] != 0 || zero["b"] != 0 {
		t.Errorf("all-zero Normalize = %v", zero)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(0.38); got != "38.0%" {
		t.Errorf("Ratio = %q", got)
	}
}

func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane: the property is about ordering, not
			// float overflow in the running sum.
			s.Add(math.Mod(v, 1e12))
		}
		if s.Count() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return s.Percentile(p1) <= s.Percentile(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeMaxIsOne(t *testing.T) {
	f := func(a, b, c uint16) bool {
		in := map[string]float64{"a": float64(a), "b": float64(b), "c": float64(c)}
		out := Normalize(in)
		var max float64
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			if v > max {
				max = v
			}
		}
		if a == 0 && b == 0 && c == 0 {
			return max == 0
		}
		return max == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFaultStatsMergeAndString(t *testing.T) {
	a := &FaultStats{NodeOutages: 2, DomainOutages: 1, TaskFailures: 3, Retries: 4, Recoveries: 2}
	a.Downtime.Add(10)
	b := &FaultStats{NodeOutages: 1, TaskFailures: 1, Retries: 1, Recoveries: 1}
	b.Downtime.Add(30)
	a.Merge(b)
	if a.NodeOutages != 3 || a.DomainOutages != 1 || a.TaskFailures != 4 ||
		a.Retries != 5 || a.Recoveries != 3 {
		t.Errorf("merged stats = %+v", a)
	}
	if a.Downtime.Count() != 2 || a.Downtime.Mean() != 20 {
		t.Errorf("merged downtime: count=%d mean=%v", a.Downtime.Count(), a.Downtime.Mean())
	}
	want := "outages=3(domain=1) task-failures=4 retries=5 recoveries=3 mean-downtime=20.0"
	if got := a.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var zero FaultStats
	if got := zero.String(); got != "outages=0(domain=0) task-failures=0 retries=0 recoveries=0 mean-downtime=0.0" {
		t.Errorf("zero String() = %q", got)
	}
}
