package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is fully deterministic for a given
// registry state: families are sorted by name and series by their
// canonical (key-sorted) label sets, so the golden-file test catches any
// format drift. A nil registry writes nothing.
//
// The writer streams series straight from the live atomic values — no
// intermediate response document is rebuilt per scrape (the fix for the
// service layer's old JSON handler, which re-marshalled its whole
// counters struct on every poll).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case KindCounter:
				writeSample(bw, f.name, "", s.labels, "", formatUint(s.c.Value()))
			case KindGauge:
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.g.Value()))
			case KindHistogram:
				var cum uint64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					writeSample(bw, f.name, "_bucket", s.labels, formatFloat(bound), formatUint(cum))
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				writeSample(bw, f.name, "_bucket", s.labels, "+Inf", formatUint(cum))
				writeSample(bw, f.name, "_sum", s.labels, "", formatFloat(s.h.Sum()))
				writeSample(bw, f.name, "_count", s.labels, "", formatUint(s.h.Count()))
			}
		}
	}
	r.mu.RUnlock()
	return bw.Flush()
}

// writeSample emits one exposition line: name+suffix{labels[,le]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders floats the way Prometheus clients expect: shortest
// round-trippable representation, `+Inf`/`-Inf` spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
