package telemetry

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same handle.
	if c2 := r.Counter("jobs_total", "jobs", L("kind", "a")); c2 != c {
		t.Fatal("re-acquiring a series returned a different handle")
	}
	// Different labels are a different series.
	if c3 := r.Counter("jobs_total", "jobs", L("kind", "b")); c3 == c {
		t.Fatal("distinct label set shares a handle")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "", L("x", "1"), L("y", "2"))
	b := r.Counter("m", "", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order changed the series identity")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestHistogramBuckets drives observations at, below, above and between
// every boundary of a small ladder and checks exactly which bucket each
// lands in. Bounds are inclusive upper limits (v ≤ bound), the implicit
// +Inf bucket catches the rest.
func TestHistogramBuckets(t *testing.T) {
	bounds := []float64{1, 2.5, 10}
	cases := []struct {
		name   string
		v      float64
		bucket int // index into counts; 3 = +Inf
	}{
		{"well below first", 0.5, 0},
		{"zero", 0, 0},
		{"negative", -3, 0},
		{"exactly first bound", 1, 0},
		{"just above first", 1.0001, 1},
		{"exactly second bound", 2.5, 1},
		{"between second and third", 5, 2},
		{"exactly last bound", 10, 2},
		{"above last bound", 10.5, 3},
		{"+Inf", math.Inf(1), 3},
		{"-Inf", math.Inf(-1), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("h", "", bounds)
			h.Observe(tc.v)
			if got := h.Count(); got != 1 {
				t.Fatalf("count = %d, want 1", got)
			}
			for i := 0; i <= len(bounds); i++ {
				want := uint64(0)
				if i == tc.bucket {
					want = 1
				}
				if got := h.BucketCount(i); got != want {
					t.Fatalf("bucket[%d] = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestHistogramRejectsNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("NaN was recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramInfSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(math.Inf(1))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if !math.IsInf(h.Sum(), 1) {
		t.Fatalf("sum = %v, want +Inf", h.Sum())
	}
}

func TestNormalizeBuckets(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"nil means defaults", nil, DefBuckets},
		{"unsorted", []float64{5, 1, 2.5}, []float64{1, 2.5, 5}},
		{"duplicates dropped", []float64{1, 1, 2}, []float64{1, 2}},
		{"NaN and +Inf dropped", []float64{math.NaN(), 1, math.Inf(1)}, []float64{1}},
		{"-Inf kept (harmless lower bound)", []float64{math.Inf(-1), 1}, []float64{math.Inf(-1), 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := normalizeBuckets(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("normalizeBuckets(%v) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("normalizeBuckets(%v) = %v, want %v", tc.in, got, tc.want)
				}
			}
		})
	}
}

// counterRegistry builds a registry whose "c" counter series hold the
// given totals, one series per value, labelled by position parity so the
// merge exercises both shared and private label sets.
func counterRegistry(vals []uint16) *Registry {
	r := NewRegistry()
	for i, v := range vals {
		lab := "even"
		if i%2 == 1 {
			lab = "odd"
		}
		r.Counter("c", "test", L("p", lab)).Add(uint64(v))
	}
	return r
}

func counterTotals(r *Registry) map[string]uint64 {
	return map[string]uint64{
		"even": r.Counter("c", "test", L("p", "even")).Value(),
		"odd":  r.Counter("c", "test", L("p", "odd")).Value(),
	}
}

// TestMergeProperties checks the algebra Merge promises: commutativity,
// associativity, and the empty registry as identity — for counters and
// (delta-semantics) gauges.
func TestMergeProperties(t *testing.T) {
	commutes := func(a, b []uint16) bool {
		ab := counterRegistry(a)
		ab.Merge(counterRegistry(b))
		ba := counterRegistry(b)
		ba.Merge(counterRegistry(a))
		x, y := counterTotals(ab), counterTotals(ba)
		return x["even"] == y["even"] && x["odd"] == y["odd"]
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Errorf("counter merge is not commutative: %v", err)
	}

	associates := func(a, b, c []uint16) bool {
		// (a ⊕ b) ⊕ c
		l := counterRegistry(a)
		l.Merge(counterRegistry(b))
		l.Merge(counterRegistry(c))
		// a ⊕ (b ⊕ c)
		rbc := counterRegistry(b)
		rbc.Merge(counterRegistry(c))
		r := counterRegistry(a)
		r.Merge(rbc)
		x, y := counterTotals(l), counterTotals(r)
		return x["even"] == y["even"] && x["odd"] == y["odd"]
	}
	if err := quick.Check(associates, nil); err != nil {
		t.Errorf("counter merge is not associative: %v", err)
	}

	identity := func(a []uint16) bool {
		r := counterRegistry(a)
		want := counterTotals(r)
		r.Merge(NewRegistry()) // right identity
		l := NewRegistry()
		l.Merge(counterRegistry(a)) // left identity
		x, y := counterTotals(r), counterTotals(l)
		return x["even"] == want["even"] && x["odd"] == want["odd"] &&
			y["even"] == want["even"] && y["odd"] == want["odd"]
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("empty registry is not a merge identity: %v", err)
	}

	gaugeAdds := func(a, b int32) bool {
		x := NewRegistry()
		x.Gauge("g", "").Set(float64(a))
		y := NewRegistry()
		y.Gauge("g", "").Set(float64(b))
		x.Merge(y)
		return x.Gauge("g", "").Value() == float64(a)+float64(b)
	}
	if err := quick.Check(gaugeAdds, nil); err != nil {
		t.Errorf("gauge merge does not add levels: %v", err)
	}
}

func TestMergeHistograms(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	bounds := []float64{1, 10}
	a.Histogram("h", "", bounds).Observe(0.5)
	a.Histogram("h", "", bounds).Observe(5)
	b.Histogram("h", "", bounds).Observe(100)
	a.Merge(b)
	h := a.Histogram("h", "", bounds)
	if h.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", h.Count())
	}
	if got := h.BucketCount(0); got != 1 {
		t.Fatalf("bucket[0] = %d, want 1", got)
	}
	if got := h.BucketCount(1); got != 1 {
		t.Fatalf("bucket[1] = %d, want 1", got)
	}
	if got := h.BucketCount(2); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
	if h.Sum() != 105.5 {
		t.Fatalf("sum = %v, want 105.5", h.Sum())
	}
}

// TestNilRegistryZeroAllocs is the hot-path guarantee: with telemetry
// disabled (nil registry, nil handles, nil tracer, nil span), every
// operation the instrumented code performs must not allocate at all.
func TestNilRegistryZeroAllocs(t *testing.T) {
	var reg *Registry
	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		c := reg.Counter("grid_x_total", "help")
		c.Inc()
		c.Add(3)
		g := reg.Gauge("grid_x", "help")
		g.Set(1)
		g.Add(2)
		h := reg.Histogram("grid_x_seconds", "help", nil)
		h.Observe(0.5)
	}); n != 0 {
		t.Fatalf("nil registry metric ops allocate %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("x", 0)
		sp.SetInt("k", 1)
		sp.SetStr("s", "v")
		_ = sp.ID()
		sp.End()
	}); n != 0 {
		t.Fatalf("nil tracer span ops allocate %v times per run, want 0", n)
	}
}

// TestHotOpsZeroAllocs: with telemetry ENABLED, the per-event cost on an
// already-acquired handle is also allocation-free (single atomics).
func TestHotOpsZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(4)
		h.Observe(0.01)
	}); n != 0 {
		t.Fatalf("handle ops allocate %v times per run, want 0", n)
	}
}

// TestRegistryStress hammers one registry from 64 goroutines mixing
// handle acquisition, all three instrument kinds and concurrent
// Prometheus rendering; run under -race this is the data-race guard for
// the whole package.
func TestRegistryStress(t *testing.T) {
	const goroutines = 64
	const iters = 500
	r := NewRegistry()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(id int) {
			defer wg.Done()
			lab := L("worker", string(rune('a'+id%8)))
			for k := 0; k < iters; k++ {
				r.Counter("stress_total", "stress", lab).Inc()
				r.Gauge("stress_level", "stress", lab).Add(1)
				r.Histogram("stress_seconds", "stress", nil, lab).Observe(float64(k) / 1000)
				if k%100 == 0 {
					var sink discard
					_ = r.WritePrometheus(&sink)
				}
			}
		}(i)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 8; i++ {
		total += r.Counter("stress_total", "stress", L("worker", string(rune('a'+i)))).Value()
	}
	if want := uint64(goroutines * iters); total != want {
		t.Fatalf("stress counter total = %d, want %d", total, want)
	}
}

// discard is io.Discard without the package import, so the stress test's
// scrape path exercises WritePrometheus's error plumbing too.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
