// Package telemetry is the repo's runtime observability layer: a
// dependency-free, race-safe metrics registry (counters, gauges,
// fixed-bucket histograms, all with label sets) plus lightweight span
// tracing with a JSONL sink. It instruments the scheduling hot paths —
// the critical works DP, strategy generation, the metascheduler's
// placement/fallback/reallocation ladder, the circuit breakers and the
// service admission queue — without perturbing them:
//
//   - A nil *Registry, nil *Tracer, nil handle or nil span is a valid
//     disabled instrument. Every method on it is a no-op that performs
//     ZERO heap allocations, so the simulation path pays nothing when
//     telemetry is off (guarded by testing.AllocsPerRun in the tests).
//   - Telemetry only observes. It never touches the RNG streams, the
//     model clock or any scheduling decision, so a run with telemetry
//     enabled produces byte-identical reports, value maps and VO traces
//     (guarded by the differential tests in internal/experiments).
//
// Handles are cheap to acquire but hot code should acquire them once and
// keep them: Counter.Add, Gauge.Set and Histogram.Observe are single
// atomic operations with no allocation.
//
// The metric naming scheme and span taxonomy are documented in
// DESIGN.md §10.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L builds a Label; telemetry.L("domain", "dom-a") reads better at call
// sites than a struct literal.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies a metric family.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing series. The zero value is unusable;
// acquire one from a Registry. A nil Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Nil-safe, allocation-free.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds 1. Nil-safe, allocation-free.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total; 0 on nil.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 series. A nil Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v. Nil-safe, allocation-free.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop). Nil-safe, allocation-free.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value; 0 on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds as in Prometheus; an implicit +Inf bucket always exists. A nil
// Histogram no-ops.
type Histogram struct {
	bounds []float64       // ascending, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    Gauge           // float64 accumulator (CAS Add)
	count  atomic.Uint64
}

// DefBuckets is the default latency bucket ladder, in seconds.
var DefBuckets = []float64{0.00025, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Observe records one observation. Zero, negative and +Inf observations
// are counted (+Inf lands in the implicit +Inf bucket and drives the sum
// to +Inf, per the Prometheus convention); NaN is rejected as meaningless.
// Nil-safe, allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound admits v; bounds are short (tens at
	// most), so a linear scan beats sort.SearchFloat64s' call overhead.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation total; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// BucketCount returns the count of bucket i (0 ≤ i ≤ len(bounds), the
// last being +Inf); 0 on nil or out of range.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// family is one named metric with its per-labelset series.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64          // histograms only
	series  map[string]*series // by canonical label key
}

// series is one labelset instance of a family.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and hands out handles. All methods are
// safe for concurrent use. A nil *Registry is a valid disabled registry:
// handle acquisition returns nil handles and snapshots are empty.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter series for name and labels, registering the
// family (with help) on first use. Acquiring an existing series returns
// the same handle. Nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, nil, labels).c
}

// Gauge is Counter's gauge counterpart.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, nil, labels).g
}

// Histogram returns the histogram series for name and labels. buckets are
// ascending upper bounds (deduplicated, NaN/+Inf dropped); nil means
// DefBuckets. The family's first registration fixes the buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, buckets, labels).h
}

// lookup finds or creates the family and series.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels []Label) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[key]; ok {
			if f.kind != kind {
				r.mu.RUnlock()
				panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, kind, f.kind))
			}
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		if kind == KindHistogram {
			f.buckets = normalizeBuckets(buckets)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sortedLabels(labels)}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{
				bounds: f.buckets,
				counts: make([]atomic.Uint64, len(f.buckets)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// normalizeBuckets sorts, deduplicates and cleans a bucket spec.
func normalizeBuckets(buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, +1) {
			continue // +Inf is implicit; NaN is meaningless
		}
		out = append(out, b)
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// sortedLabels returns a key-sorted copy of labels.
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey canonicalizes a label set (sorted, NUL-separated — NUL cannot
// appear in a sane label, and escaping only matters for exposition).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// Merge folds other's series into r: counters and histogram buckets add,
// gauges add (delta semantics, so merging per-shard registries sums their
// levels). Families and series missing from r are created with other's
// help and buckets. Merging a nil registry (either side) is a no-op.
// Counter merge is commutative and associative with the empty registry as
// identity (guarded by quick.Check property tests).
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	type famCopy struct {
		name    string
		help    string
		kind    Kind
		buckets []float64
		series  []seriesSnap
	}
	other.mu.RLock()
	fams := make([]famCopy, 0, len(other.families))
	for _, f := range other.families {
		fc := famCopy{name: f.name, help: f.help, kind: f.kind, buckets: f.buckets}
		for _, s := range f.series {
			fc.series = append(fc.series, snapSeries(f, s))
		}
		fams = append(fams, fc)
	}
	other.mu.RUnlock()

	for _, fc := range fams {
		for _, sn := range fc.series {
			switch fc.kind {
			case KindCounter:
				r.Counter(fc.name, fc.help, sn.Labels...).Add(sn.Value)
			case KindGauge:
				r.Gauge(fc.name, fc.help, sn.Labels...).Add(sn.GaugeValue)
			case KindHistogram:
				h := r.Histogram(fc.name, fc.help, fc.buckets, sn.Labels...)
				h.merge(sn)
			}
		}
	}
}

// merge adds a snapshot's buckets into h. Bucket layouts are aligned by
// construction (Merge passes the source family's bounds through).
func (h *Histogram) merge(sn seriesSnap) {
	if h == nil {
		return
	}
	for i, c := range sn.Buckets {
		if i < len(h.counts) {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(sn.Sum)
	h.count.Add(sn.Count)
}

// seriesSnap is one series' frozen state.
type seriesSnap struct {
	Labels []Label
	// Value is the counter total.
	Value uint64
	// GaugeValue is the gauge level.
	GaugeValue float64
	// Buckets/Sum/Count describe a histogram.
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// snapSeries freezes one series.
func snapSeries(f *family, s *series) seriesSnap {
	sn := seriesSnap{Labels: s.labels}
	switch f.kind {
	case KindCounter:
		sn.Value = s.c.Value()
	case KindGauge:
		sn.GaugeValue = s.g.Value()
	case KindHistogram:
		sn.Buckets = make([]uint64, len(s.h.counts))
		for i := range s.h.counts {
			sn.Buckets[i] = s.h.counts[i].Load()
		}
		sn.Sum = s.h.Sum()
		sn.Count = s.h.Count()
	}
	return sn
}
