package telemetry

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	mk := func(bounds []float64, obs ...float64) *Histogram {
		r := NewRegistry()
		h := r.Histogram("q_test", "t", bounds)
		for _, v := range obs {
			h.Observe(v)
		}
		return h
	}
	approx := func(a, b float64) bool { return a == b || math.Abs(a-b) < 1e-9 }

	tests := []struct {
		name string
		h    *Histogram
		q    float64
		want float64 // NaN means "want NaN"
	}{
		{"nil histogram", nil, 0.5, math.NaN()},
		{"empty histogram", mk([]float64{1, 2}), 0.5, math.NaN()},
		{"q below range", mk([]float64{1}, 0.5), -0.1, math.NaN()},
		{"q above range", mk([]float64{1}, 0.5), 1.1, math.NaN()},
		{"q NaN", mk([]float64{1}, 0.5), math.NaN(), math.NaN()},

		// Single bucket [0,10]: uniform interpolation across the bucket.
		{"single bucket median", mk([]float64{10}, 1, 2, 3, 4), 0.5, 5},
		{"single bucket q=1", mk([]float64{10}, 1, 2, 3, 4), 1, 10},
		// q=0 lands at the lower edge of the first occupied bucket.
		{"q=0 first bucket", mk([]float64{10, 20}, 15, 15), 0, 10},

		// Two buckets, 2 obs each: median at the first bucket's upper edge.
		{"two buckets median", mk([]float64{1, 2}, 0.5, 0.5, 1.5, 1.5), 0.5, 1},
		{"two buckets p75", mk([]float64{1, 2}, 0.5, 0.5, 1.5, 1.5), 0.75, 1.5},

		// +Inf bucket: the estimate clamps to the highest finite bound.
		{"inf bucket p99", mk([]float64{1, 2}, 0.5, 5, 7, 9), 0.99, 2},
		{"all in inf bucket", mk([]float64{1, 2}, 5, 6, 7), 0.5, 2},
		// No finite buckets at all: +Inf is the only honest answer.
		{"no finite buckets", mk([]float64{}, 5, 6), 0.5, math.Inf(1)},

		// Negative-bound first bucket has no interpolation width.
		{"negative first bound", mk([]float64{-1, 1}, -2, -3), 0.5, -1},
	}
	for _, tc := range tests {
		got := tc.h.Quantile(tc.q)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Quantile(%v) = %v, want NaN", tc.name, tc.q, got)
			}
			continue
		}
		if !approx(got, tc.want) {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestQuantileMonotone: for a fixed histogram, Quantile must be
// non-decreasing in q.
func TestQuantileMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_mono", "t", DefBuckets)
	for i := 0; i < 500; i++ {
		h.Observe(float64(i%97) / 31.0)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileNilIsAllocationFree(t *testing.T) {
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() { _ = h.Quantile(0.99) }); n != 0 {
		t.Errorf("nil Quantile allocates %v times per run", n)
	}
}
