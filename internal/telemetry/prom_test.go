package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the telemetry golden files")

// goldenRegistry builds a registry covering every exposition feature:
// all three kinds, multiple label sets registered out of order, label
// escaping, help escaping, negative and fractional gauge values, and a
// histogram with observations landing in every bucket including +Inf.
func goldenRegistry() *Registry {
	r := NewRegistry()
	// Registered out of sorted order on purpose: families must render
	// name-sorted and series label-set-sorted regardless.
	r.Gauge("grid_queue_depth", "jobs waiting for admission").Set(3)
	r.Counter("grid_jobs_total", "jobs by outcome", L("result", "ok")).Add(7)
	r.Counter("grid_jobs_total", "jobs by outcome", L("result", "error")).Add(2)
	// Same family, two labels given in swapped order — one series each.
	r.Counter("grid_events_total", "events", L("kind", "arrive"), L("domain", "d0")).Inc()
	r.Counter("grid_events_total", "events", L("domain", "d1"), L("kind", "arrive")).Add(4)
	r.Gauge("grid_drift", "signed drift").Set(-1.5)
	r.Counter("grid_escapes_total", "help with \\ and\nnewline",
		L("path", `a\b"c`+"\n")).Inc()

	h := r.Histogram("grid_build_seconds", "build wall time", []float64{0.1, 1, 10})
	h.Observe(0.05)                                                   // first bucket
	h.Observe(0.1)                                                    // boundary: still first bucket
	h.Observe(0.5)                                                    // second
	h.Observe(5)                                                      // third
	h.Observe(50)                                                     // +Inf only
	r.Histogram("grid_empty_seconds", "never observed", []float64{1}) // zero series
	return r
}

// TestWritePrometheusGolden locks the exact exposition bytes. Run with
// -update to rewrite testdata/registry.prom after an intentional format
// change.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "registry.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/telemetry -update`): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("exposition drift at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("exposition drift: got %d lines, want %d", len(gl), len(wl))
}

// TestWritePrometheusDeterministic renders the same state twice and from
// a merged copy; the bytes must match exactly (map iteration order must
// never leak into the output).
func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	r := goldenRegistry()
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}

	merged := NewRegistry()
	merged.Merge(goldenRegistry())
	var c bytes.Buffer
	if err := merged.WritePrometheus(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("merged copy renders differently from the original")
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %d bytes", buf.Len())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1.5, "1.5"},
		{-2, "-2"},
		{0.00025, "0.00025"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
	}
	for _, tc := range cases {
		if got := formatFloat(tc.v); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
	}
	for _, tc := range cases {
		if got := escapeLabel(tc.in); got != tc.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
