package telemetry

import (
	"context"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a Tracer; 0 means "no span" and is
// what a nil span reports, so parent links degrade gracefully when a
// layer above runs without tracing.
type SpanID uint64

// Tracer assigns span IDs and writes finished spans as JSON lines. A nil
// *Tracer is a valid disabled tracer: Start returns a nil span whose
// every method no-ops without allocating.
//
// Each finished span is emitted with ONE Write call carrying one
// complete, newline-terminated JSON object, so a Tracer can share a
// writer with other line-oriented streams — in particular the VO's
// JSONLTracer event stream (see NewSyncWriter) — and the merged output
// stays parseable line by line.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error

	next atomic.Uint64

	// clock returns the current wall time in nanoseconds. Tests inject a
	// fake for deterministic output; the default is time.Now.
	clock func() int64
}

// NewTracer returns a tracer writing JSONL spans to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, clock: func() int64 { return time.Now().UnixNano() }}
}

// SetClock replaces the wall-clock source (nanoseconds); for tests.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil || fn == nil {
		return
	}
	t.clock = fn
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// attr is one span attribute; integer and string values are kept typed so
// hot paths never box through interface{}.
type attr struct {
	key   string
	str   string
	num   int64
	isnum bool
}

// Span is one timed operation. Acquire with Tracer.Start; a nil *Span
// no-ops everywhere and reports SpanID 0.
type Span struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  int64

	mu    sync.Mutex
	attrs []attr
	ended bool
}

// Start opens a span named name under parent (0 for a root). On a nil
// tracer it returns nil, costing nothing.
func (t *Tracer) Start(name string, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:      t,
		id:     SpanID(t.next.Add(1)),
		parent: parent,
		name:   name,
		start:  t.clock(),
	}
}

// ID returns the span's ID; 0 on nil.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetInt attaches an integer attribute. Nil-safe; returns s for chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, num: v, isnum: true})
	s.mu.Unlock()
	return s
}

// SetStr attaches a string attribute. Nil-safe; returns s for chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, str: v})
	s.mu.Unlock()
	return s
}

// End closes the span and writes its JSONL line. Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.clock()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	// Marshal by hand: attribute order is insertion order (encoding/json
	// maps would sort and box), and the whole line lands in one Write.
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"span":`...)
	buf = strconv.AppendUint(buf, uint64(s.id), 10)
	if s.parent != 0 {
		buf = append(buf, `,"parent":`...)
		buf = strconv.AppendUint(buf, uint64(s.parent), 10)
	}
	buf = append(buf, `,"name":`...)
	buf = appendJSONString(buf, s.name)
	buf = append(buf, `,"start":`...)
	buf = strconv.AppendInt(buf, s.start, 10)
	buf = append(buf, `,"end":`...)
	buf = strconv.AppendInt(buf, end, 10)
	if len(attrs) > 0 {
		buf = append(buf, `,"attrs":{`...)
		for i, a := range attrs {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, a.key)
			buf = append(buf, ':')
			if a.isnum {
				buf = strconv.AppendInt(buf, a.num, 10)
			} else {
				buf = appendJSONString(buf, a.str)
			}
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}', '\n')

	t := s.t
	t.mu.Lock()
	if t.err == nil {
		_, t.err = t.w.Write(buf)
	}
	t.mu.Unlock()
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters that matter for JSONL (quotes, backslash, control chars).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

// spanCtxKey keys the active span ID in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying id as the active span, so layers
// that only share a context (strategy → criticalworks) can still parent
// their spans. Callers should skip this when tracing is disabled — a nil
// tracer never needs the value and context.WithValue allocates.
func ContextWithSpan(ctx context.Context, id SpanID) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, id)
}

// SpanFromContext returns the active span ID, or 0. Never allocates.
func SpanFromContext(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(spanCtxKey{}).(SpanID); ok {
		return id
	}
	return 0
}

// syncWriter serializes Write calls.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w so concurrent Write calls are serialized. Share
// one between a span Tracer and a metasched JSONL event tracer to
// interleave both streams into a single file without tearing lines: both
// sinks emit exactly one Write per complete line.
func NewSyncWriter(w io.Writer) io.Writer {
	return &syncWriter{w: w}
}

// Write implements io.Writer.
func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// Since returns the seconds elapsed since start, for feeding wall-clock
// histograms. Kept here so instrumented packages need no direct time
// dependency beyond what they already have.
func Since(start time.Time) float64 { return time.Since(start).Seconds() }
