// Interleave test lives in the external package: metasched imports
// telemetry, so the shared-sink test (span Tracer + VO JSONLTracer into
// one SyncWriter) must sit outside the telemetry package proper.
package telemetry_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/metasched"
	"repro/internal/telemetry"
)

// TestSpanAndVOTraceInterleave drives a span Tracer and a metasched
// JSONLTracer into ONE shared SyncWriter from concurrent goroutines —
// the gridd -spans/-trace same-path configuration. Every line of the
// merged stream must be a complete JSON object of exactly one of the two
// schemas; a torn or interleaved line fails the Unmarshal.
func TestSpanAndVOTraceInterleave(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewSyncWriter(&buf)
	spans := telemetry.NewTracer(sink)
	events := metasched.NewJSONLTracer(sink)

	const perSide = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			spans.Start("metasched.adopt", 0).SetInt("i", int64(i)).End()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			events.Trace(metasched.Event{Kind: metasched.EventArrive, Job: "j", Domain: "d0"})
		}
	}()
	wg.Wait()

	if err := spans.Err(); err != nil {
		t.Fatalf("span tracer: %v", err)
	}
	if err := events.Err(); err != nil {
		t.Fatalf("event tracer: %v", err)
	}

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	spanLines, eventLines := 0, 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("torn line in merged stream: %v\n%q", err, sc.Text())
		}
		_, isSpan := obj["span"]
		_, isEvent := obj["kind"]
		switch {
		case isSpan && !isEvent:
			spanLines++
		case isEvent && !isSpan:
			eventLines++
		default:
			t.Fatalf("line matches neither or both schemas: %q", sc.Text())
		}
	}
	if spanLines != perSide || eventLines != perSide {
		t.Fatalf("merged stream has %d span + %d event lines, want %d each",
			spanLines, eventLines, perSide)
	}
}
