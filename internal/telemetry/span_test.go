package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

// fakeClock returns a nanosecond clock ticking by 10 per read, so span
// lines have exact, deterministic start/end values.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 10
		return t
	}
}

func TestSpanJSONLExactBytes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock())

	root := tr.Start("metasched.adopt", 0) // start=10
	root.SetStr("job", "j1").SetInt("initial", 1)
	child := tr.Start("strategy.generate", root.ID()) // start=20
	child.End()                                       // end=30
	root.End()                                        // end=40

	want := `{"span":2,"parent":1,"name":"strategy.generate","start":20,"end":30}` + "\n" +
		`{"span":1,"name":"metasched.adopt","start":10,"end":40,"attrs":{"job":"j1","initial":1}}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("span stream:\n got: %q\nwant: %q", got, want)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock())
	sp := tr.Start("x", 0)
	sp.End()
	sp.End()
	sp.End()
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 1 {
		t.Fatalf("span emitted %d lines, want 1", n)
	}
}

func TestSpanEscaping(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock())
	tr.Start(`na"me\with`+"\n\tctrl\x01", 0).SetStr("k", `v"\`+"\r").End()

	var line struct {
		Name  string            `json:"name"`
		Attrs map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("span line is not valid JSON: %v\nline: %q", err, buf.String())
	}
	if want := "na\"me\\with\n\tctrl\x01"; line.Name != want {
		t.Fatalf("name round-trip = %q, want %q", line.Name, want)
	}
	if want := "v\"\\\r"; line.Attrs["k"] != want {
		t.Fatalf("attr round-trip = %q, want %q", line.Attrs["k"], want)
	}
}

func TestSpanContextPlumbing(t *testing.T) {
	if got := SpanFromContext(nil); got != 0 {
		t.Fatalf("SpanFromContext(nil) = %d, want 0", got)
	}
	if got := SpanFromContext(context.Background()); got != 0 {
		t.Fatalf("SpanFromContext(empty) = %d, want 0", got)
	}
	ctx := ContextWithSpan(context.Background(), 42)
	if got := SpanFromContext(ctx); got != 42 {
		t.Fatalf("SpanFromContext = %d, want 42", got)
	}
	// The read side is what sits on the disabled hot path; it must never
	// allocate even on a bare context.
	if n := testing.AllocsPerRun(1000, func() {
		_ = SpanFromContext(context.Background())
	}); n != 0 {
		t.Fatalf("SpanFromContext allocates %v times per run, want 0", n)
	}
}

type failWriter struct{ calls int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.calls++
	return 0, errors.New("sink broke")
}

func TestTracerErrSticky(t *testing.T) {
	fw := &failWriter{}
	tr := NewTracer(fw)
	tr.SetClock(fakeClock())
	tr.Start("a", 0).End()
	tr.Start("b", 0).End()
	if tr.Err() == nil {
		t.Fatal("write error was swallowed")
	}
	if fw.calls != 1 {
		t.Fatalf("tracer kept writing after the first error: %d calls", fw.calls)
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines; with the
// fake clock removed timing is nondeterministic but every line must still
// be complete, parseable JSON (the one-Write-per-line contract).
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSyncWriter(&buf)
	tr := NewTracer(sink)
	var wg sync.WaitGroup
	const goroutines = 16
	const spansEach = 50
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for k := 0; k < spansEach; k++ {
				tr.Start("op", 0).SetInt("k", int64(k)).End()
			}
		}()
	}
	wg.Wait()

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("torn span line %d: %v\n%q", lines, err, sc.Text())
		}
	}
	if lines != goroutines*spansEach {
		t.Fatalf("got %d span lines, want %d", lines, goroutines*spansEach)
	}
}
