package telemetry

import "math"

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution from the fixed buckets, using linear interpolation within
// the bucket the quantile rank falls into — the same estimate
// histogram_quantile() computes from scrape data, so a p99 reported here
// matches what a Prometheus dashboard over /metrics would show.
//
// Conventions:
//   - nil histogram, no observations, or q outside [0,1] (or NaN) → NaN.
//   - The first bucket interpolates from a lower edge of 0 when its upper
//     bound is positive (latency ladders), or from the bound itself when
//     the bound is ≤ 0 (no width to interpolate over).
//   - A rank landing in the +Inf bucket returns the highest finite bound —
//     the estimate is a lower bound, as with Prometheus — or +Inf when the
//     histogram has no finite buckets at all.
//
// The bucket counts are loaded once into a local snapshot, so a Quantile
// racing concurrent Observe calls returns an estimate for some consistent
// prefix of the observation stream rather than tearing.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no upper edge to interpolate toward.
			if len(h.bounds) == 0 {
				return math.Inf(1)
			}
			return h.bounds[len(h.bounds)-1]
		}
		upper := h.bounds[i]
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		} else if upper <= 0 {
			lower = upper
		}
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0 // q=0 lands at the lower edge of the first occupied bucket
		}
		return lower + (upper-lower)*frac
	}
	// Unreachable: cum == total ≥ rank by the end of the loop.
	return math.NaN()
}
