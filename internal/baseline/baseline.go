// Package baseline implements the classic list-scheduling heuristics the
// paper positions the critical works method against (§1 cites Braun et
// al.'s comparison of eleven static heuristics for heterogeneous systems
// [13]): Min-Min, Max-Min, Sufferage, and OLB, adapted from independent
// tasks to compound-job DAGs by restricting each selection round to the
// ready set (all predecessors placed).
//
// The heuristics run against the same substrates as the core method —
// estimation tables, reservation calendars, data-policy transfer times —
// so the comparison isolates the allocation logic itself.
package baseline

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/economy"
	"repro/internal/estimate"
	"repro/internal/resource"
	"repro/internal/simtime"
)

// Heuristic selects the task-ordering rule.
type Heuristic int

// The implemented heuristics of the [13] family.
const (
	// MinMin repeatedly places the ready task with the smallest best
	// earliest-completion time.
	MinMin Heuristic = iota
	// MaxMin places the ready task with the LARGEST best completion time
	// first (big tasks claim good nodes early).
	MaxMin
	// Sufferage places the task that would suffer most from losing its
	// best node (largest second-best − best completion gap).
	Sufferage
	// OLB (opportunistic load balancing) assigns ready tasks in
	// deterministic order to the node that frees up earliest, ignoring
	// execution times.
	OLB
)

// Heuristics lists all implemented heuristics in presentation order.
var Heuristics = []Heuristic{MinMin, MaxMin, Sufferage, OLB}

// String names the heuristic as in the literature.
func (h Heuristic) String() string {
	switch h {
	case MinMin:
		return "min-min"
	case MaxMin:
		return "max-min"
	case Sufferage:
		return "sufferage"
	case OLB:
		return "olb"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Options mirrors criticalworks.Options for the shared substrates.
type Options struct {
	JobName    string
	Table      *estimate.Table
	Catalog    *data.Catalog
	Pricing    economy.Pricing
	Candidates []resource.NodeID
	Release    simtime.Time
	Deadline   simtime.Time
	Horizon    simtime.Time
}

// InfeasibleError reports that the heuristic could not place a task within
// the deadline.
type InfeasibleError struct {
	Job  string
	Task string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("baseline: job %q: no feasible placement for task %q", e.Job, e.Task)
}

// Build schedules the whole job with the given heuristic against the
// calendar view (mutated in place; pass clones to keep the originals).
// The resulting Schedule is interface-compatible with the core method's.
func Build(env *resource.Environment, cals criticalworks.Calendars, job *dag.Job, h Heuristic, opt Options) (*criticalworks.Schedule, error) {
	if opt.JobName == "" {
		opt.JobName = job.Name
	}
	if opt.Table == nil {
		opt.Table = estimate.Derive(job)
	}
	if err := opt.Table.CoversJob(job); err != nil {
		return nil, err
	}
	if opt.Catalog == nil {
		opt.Catalog = data.NewCatalog(data.RemoteAccess, 0)
	}
	if opt.Pricing == nil {
		opt.Pricing = economy.FlatPricing{PerTick: 1}
	}
	if opt.Deadline == 0 {
		opt.Deadline = job.Deadline
	}
	if opt.Deadline <= opt.Release {
		return nil, &InfeasibleError{Job: opt.JobName, Task: job.Task(job.TopoOrder()[0]).Name}
	}
	if opt.Horizon == 0 {
		opt.Horizon = opt.Release + 4*(opt.Deadline-opt.Release)
	}
	if opt.Candidates == nil {
		opt.Candidates = make([]resource.NodeID, env.NumNodes())
		for i := range opt.Candidates {
			opt.Candidates[i] = resource.NodeID(i)
		}
	}
	if len(opt.Candidates) == 0 {
		return nil, criticalworks.ErrNoCandidates
	}

	b := &builder{env: env, cals: cals, job: job, h: h, opt: opt,
		placed: make(map[dag.TaskID]criticalworks.Placement, job.NumTasks())}
	return b.run()
}

type builder struct {
	env  *resource.Environment
	cals criticalworks.Calendars
	job  *dag.Job
	h    Heuristic
	opt  Options

	placed map[dag.TaskID]criticalworks.Placement
}

// candidate is one (task, node) placement option with its completion time.
type candidate struct {
	task   dag.TaskID
	node   resource.NodeID
	window simtime.Interval
}

func (b *builder) run() (*criticalworks.Schedule, error) {
	for len(b.placed) < b.job.NumTasks() {
		ready := b.readyTasks()
		pick, ok := b.selectNext(ready)
		if !ok {
			// Some ready task has no feasible slot.
			name := b.job.Task(ready[0]).Name
			return nil, &InfeasibleError{Job: b.opt.JobName, Task: name}
		}
		owner := resource.Owner{Job: b.opt.JobName, Task: b.job.Task(pick.task).Name}
		if err := b.cals[pick.node].Reserve(pick.window, owner); err != nil {
			return nil, fmt.Errorf("baseline: internal error: %w", err)
		}
		b.placed[pick.task] = criticalworks.Placement{Task: pick.task, Node: pick.node, Window: pick.window}
		for _, e := range b.job.In(pick.task) {
			b.opt.Catalog.Commit(b.opt.JobName, b.job.Task(e.From).Name, b.placed[e.From].Node, pick.node)
		}
	}
	return b.assemble()
}

// readyTasks returns unplaced tasks whose predecessors are all placed, in
// deterministic ID order. At least one always exists in a DAG.
func (b *builder) readyTasks() []dag.TaskID {
	var out []dag.TaskID
	for _, id := range b.job.TopoOrder() {
		if _, done := b.placed[id]; done {
			continue
		}
		allIn := true
		for _, e := range b.job.In(id) {
			if _, done := b.placed[e.From]; !done {
				allIn = false
				break
			}
		}
		if allIn {
			out = append(out, id)
		}
	}
	return out
}

// selectNext applies the heuristic over the ready set.
func (b *builder) selectNext(ready []dag.TaskID) (candidate, bool) {
	type scored struct {
		best   candidate
		bestCT simtime.Time
		gap    simtime.Time // sufferage: second-best − best
		ok     bool
	}
	scores := make([]scored, len(ready))
	for i, id := range ready {
		best, second := simtime.Infinity, simtime.Infinity
		var bc candidate
		for _, n := range b.opt.Candidates {
			w, ok := b.earliestWindow(id, n)
			if !ok {
				continue
			}
			switch {
			case w.End < best:
				second = best
				best = w.End
				bc = candidate{task: id, node: n, window: w}
			case w.End < second:
				second = w.End
			}
		}
		scores[i] = scored{best: bc, bestCT: best, gap: second - best, ok: best < simtime.Infinity}
	}

	idx, found := -1, false
	switch b.h {
	case MinMin:
		for i, s := range scores {
			if s.ok && (!found || s.bestCT < scores[idx].bestCT) {
				idx, found = i, true
			}
		}
	case MaxMin:
		for i, s := range scores {
			if s.ok && (!found || s.bestCT > scores[idx].bestCT) {
				idx, found = i, true
			}
		}
	case Sufferage:
		for i, s := range scores {
			if s.ok && (!found || s.gap > scores[idx].gap) {
				idx, found = i, true
			}
		}
	case OLB:
		// First ready task in order, on the node that frees earliest.
		for i, id := range ready {
			if !scores[i].ok {
				continue
			}
			bestStart := simtime.Infinity
			var bc candidate
			for _, n := range b.opt.Candidates {
				w, ok := b.earliestWindow(id, n)
				if ok && w.Start < bestStart {
					bestStart = w.Start
					bc = candidate{task: id, node: n, window: w}
				}
			}
			return bc, true
		}
		return candidate{}, false
	}
	if !found {
		return candidate{}, false
	}
	return scores[idx].best, true
}

// earliestWindow computes the task's earliest feasible window on the node,
// honouring placed predecessors, transfers and the deadline.
func (b *builder) earliestWindow(id dag.TaskID, n resource.NodeID) (simtime.Interval, bool) {
	node := b.env.Node(n)
	dur := b.opt.Table.TimeOnNode(id, node)
	if dur <= 0 {
		return simtime.Interval{}, false
	}
	earliest := b.opt.Release
	for _, e := range b.job.In(id) {
		p := b.placed[e.From]
		tt := b.opt.Catalog.TransferTime(b.opt.JobName, b.job.Task(e.From).Name, e.BaseTime, p.Node, n)
		if t := p.Window.End + tt; t > earliest {
			earliest = t
		}
	}
	start, ok := b.cals[n].FirstFree(earliest, dur, b.opt.Horizon)
	if !ok {
		return simtime.Interval{}, false
	}
	w := simtime.Interval{Start: start, End: start + dur}
	if w.End > b.opt.Deadline {
		return simtime.Interval{}, false
	}
	return w, true
}

// assemble prices the finished schedule.
func (b *builder) assemble() (*criticalworks.Schedule, error) {
	s := &criticalworks.Schedule{
		Job:        b.job,
		Placements: b.placed,
		Start:      simtime.Infinity,
	}
	for id, p := range b.placed {
		dur := p.Window.Len()
		vol := b.opt.Table.Volume(id)
		s.BareCF += economy.TaskCharge(vol, dur)
		s.Cost += economy.WeightedTaskCharge(vol, dur, b.opt.Pricing.Rate(b.env.Node(p.Node)))
		if p.Window.Start < s.Start {
			s.Start = p.Window.Start
		}
		if p.Window.End > s.Finish {
			s.Finish = p.Window.End
		}
	}
	// Precedence verification, as in the core method.
	for _, e := range b.job.Edges() {
		from, to := b.placed[e.From], b.placed[e.To]
		tt := b.opt.Catalog.TransferTime(b.opt.JobName, b.job.Task(e.From).Name, e.BaseTime, from.Node, to.Node)
		if to.Window.Start < from.Window.End+tt {
			return nil, fmt.Errorf("baseline: internal error: edge %s violates precedence", e.Name)
		}
	}
	return s, nil
}
