package baseline

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func env4() *resource.Environment {
	return resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "n1", 1.0, 1, "d"),
		resource.NewNode(1, "n2", 0.5, 1, "d"),
		resource.NewNode(2, "n3", 0.33, 1, "d"),
		resource.NewNode(3, "n4", 0.25, 1, "d"),
	})
}

func lineJob(deadline simtime.Time) *dag.Job {
	b := dag.NewBuilder("line").Deadline(deadline)
	b.Task("A", 2, 10)
	b.Task("B", 3, 15)
	b.Task("C", 2, 10)
	b.Edge("e1", "A", "B", 1, 5)
	b.Edge("e2", "B", "C", 1, 5)
	return b.MustBuild()
}

func forkJob(deadline simtime.Time) *dag.Job {
	b := dag.NewBuilder("fork").Deadline(deadline)
	b.Task("S", 2, 10)
	b.Task("A", 6, 30)
	b.Task("B", 2, 10)
	b.Task("T", 2, 10)
	b.Edge("dA", "S", "A", 1, 5)
	b.Edge("dB", "S", "B", 1, 5)
	b.Edge("oA", "A", "T", 1, 5)
	b.Edge("oB", "B", "T", 1, 5)
	return b.MustBuild()
}

func checkValid(t *testing.T, job *dag.Job, s *criticalworks.Schedule, cat *data.Catalog) {
	t.Helper()
	if len(s.Placements) != job.NumTasks() {
		t.Fatalf("placed %d of %d", len(s.Placements), job.NumTasks())
	}
	for _, e := range job.Edges() {
		from, to := s.Placements[e.From], s.Placements[e.To]
		tt := cat.TransferTime(job.Name, job.Task(e.From).Name, e.BaseTime, from.Node, to.Node)
		if to.Window.Start < from.Window.End+tt {
			t.Errorf("edge %s violates precedence", e.Name)
		}
	}
}

func TestAllHeuristicsScheduleLinearJob(t *testing.T) {
	for _, h := range Heuristics {
		env := env4()
		cat := data.NewCatalog(data.RemoteAccess, 0)
		s, err := Build(env, criticalworks.EmptyCalendars(env), lineJob(60), h, Options{Catalog: cat})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		checkValid(t, s.Job, s, cat)
		if !s.MeetsDeadline() {
			t.Errorf("%v misses a loose deadline: finish %d", h, s.Finish)
		}
	}
}

func TestHeuristicNames(t *testing.T) {
	want := []string{"min-min", "max-min", "sufferage", "olb"}
	for i, h := range Heuristics {
		if h.String() != want[i] {
			t.Errorf("Heuristics[%d] = %s, want %s", i, h, want[i])
		}
	}
}

func TestMinMinPicksShortTaskFirst(t *testing.T) {
	// Fork with one long (A) and one short (B) branch and a single fast
	// node: min-min runs B before A on the contended fast node; max-min
	// runs A first.
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "only", 1.0, 1, "d"),
	})
	job := forkJob(100)
	minmin, err := Build(env, criticalworks.EmptyCalendars(env), job, MinMin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxmin, err := Build(env, criticalworks.EmptyCalendars(env), job, MaxMin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := job.TaskByName("A")
	bTask, _ := job.TaskByName("B")
	if !(minmin.Placements[bTask.ID].Window.Start < minmin.Placements[a.ID].Window.Start) {
		t.Errorf("min-min ran long task first: A %v, B %v",
			minmin.Placements[a.ID].Window, minmin.Placements[bTask.ID].Window)
	}
	if !(maxmin.Placements[a.ID].Window.Start < maxmin.Placements[bTask.ID].Window.Start) {
		t.Errorf("max-min ran short task first: A %v, B %v",
			maxmin.Placements[a.ID].Window, maxmin.Placements[bTask.ID].Window)
	}
}

func TestInfeasibleDeadline(t *testing.T) {
	env := env4()
	for _, h := range Heuristics {
		_, err := Build(env, criticalworks.EmptyCalendars(env), lineJob(3), h, Options{})
		var inf *InfeasibleError
		if !errors.As(err, &inf) {
			t.Errorf("%v: err = %v, want InfeasibleError", h, err)
		}
	}
}

func TestCandidateRestriction(t *testing.T) {
	env := env4()
	s, err := Build(env, criticalworks.EmptyCalendars(env), lineJob(200), MinMin, Options{
		Candidates: []resource.NodeID{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Placements {
		if p.Node != 2 {
			t.Errorf("placed on %d despite restriction", p.Node)
		}
	}
}

func TestNoCandidates(t *testing.T) {
	env := env4()
	_, err := Build(env, criticalworks.EmptyCalendars(env), lineJob(50), MinMin, Options{
		Candidates: []resource.NodeID{},
	})
	if !errors.Is(err, criticalworks.ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
}

func TestRespectsExistingReservations(t *testing.T) {
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "only", 1.0, 1, "d"),
	})
	cals := criticalworks.EmptyCalendars(env)
	if err := cals[0].Reserve(simtime.Interval{Start: 0, End: 10}, resource.External); err != nil {
		t.Fatal(err)
	}
	s, err := Build(env, cals, lineJob(60), MinMin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start < 10 {
		t.Errorf("schedule starts %d inside external reservation", s.Start)
	}
}

func randomJob(r *rng.Source) *dag.Job {
	n := r.IntBetween(1, 8)
	b := dag.NewBuilder("rand")
	names := make([]string, n)
	var span simtime.Time
	for i := range names {
		names[i] = string(rune('A' + i))
		bt := simtime.Time(r.IntBetween(1, 6))
		span += bt * 4
		b.Task(names[i], bt, int64(r.IntBetween(0, 30)))
	}
	for to := 1; to < n; to++ {
		for from := 0; from < to; from++ {
			if r.Bool(0.3) {
				tt := simtime.Time(r.IntBetween(0, 3))
				span += tt
				b.Edge(names[from]+names[to], names[from], names[to], tt, 1)
			}
		}
	}
	b.Deadline(span + simtime.Time(r.IntBetween(0, 20)))
	return b.MustBuild()
}

func TestQuickBaselineInvariants(t *testing.T) {
	// Whenever a heuristic succeeds: every task placed, precedence holds,
	// deadline met, no double-booking in the view.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		env := env4()
		job := randomJob(r)
		h := Heuristics[r.Intn(len(Heuristics))]
		cat := data.NewCatalog(data.Policy(r.Intn(3)), 0)
		cals := criticalworks.EmptyCalendars(env)
		s, err := Build(env, cals, job, h, Options{Catalog: cat})
		if err != nil {
			var inf *InfeasibleError
			return errors.As(err, &inf)
		}
		if len(s.Placements) != job.NumTasks() || s.Finish > job.Deadline {
			return false
		}
		for _, e := range job.Edges() {
			from, to := s.Placements[e.From], s.Placements[e.To]
			tt := cat.TransferTime(job.Name, job.Task(e.From).Name, e.BaseTime, from.Node, to.Node)
			if to.Window.Start < from.Window.End+tt {
				return false
			}
		}
		for _, p := range s.Placements {
			found := false
			for _, res := range cals[p.Node].Reservations() {
				if res.Interval == p.Window {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeterministic(t *testing.T) {
	f := func(seed uint64, hIdx uint8) bool {
		h := Heuristics[int(hIdx)%len(Heuristics)]
		mk := func() (*criticalworks.Schedule, error) {
			r := rng.New(seed)
			env := env4()
			return Build(env, criticalworks.EmptyCalendars(env), randomJob(r), h, Options{})
		}
		a, errA := mk()
		b, errB := mk()
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		if a.Finish != b.Finish || a.BareCF != b.BareCF {
			return false
		}
		for id, pa := range a.Placements {
			if pa != b.Placements[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
