package economy

import (
	"testing"
	"testing/quick"

	"repro/internal/resource"
	"repro/internal/simtime"
)

func TestTaskCharge(t *testing.T) {
	tests := []struct {
		v    int64
		t    simtime.Time
		want int64
	}{
		{20, 2, 10},
		{30, 3, 10},
		{10, 3, 4}, // ceil(3.33)
		{20, 6, 4}, // ceil(3.33)
		{10, 4, 3}, // ceil(2.5)
		{0, 5, 0},
		{1, 1, 1},
		{7, 2, 4},
	}
	for _, tt := range tests {
		if got := TaskCharge(tt.v, tt.t); got != tt.want {
			t.Errorf("TaskCharge(%d,%d) = %d, want %d", tt.v, tt.t, got, tt.want)
		}
	}
}

func TestTaskChargePanicsOnZeroTime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero load time")
		}
	}()
	TaskCharge(5, 0)
}

func TestPricing(t *testing.T) {
	fast := resource.NewNode(0, "f", 1.0, 0, "d")
	slow := resource.NewNode(1, "s", 0.25, 0, "d")
	flat := FlatPricing{PerTick: 1}
	if flat.Rate(fast) != 1 || flat.Rate(slow) != 1 {
		t.Error("flat pricing not flat")
	}
	perf := PerformancePricing{Base: 4}
	if perf.Rate(fast) != 4 {
		t.Errorf("perf rate fast = %v", perf.Rate(fast))
	}
	if perf.Rate(slow) != 1 {
		t.Errorf("perf rate slow = %v", perf.Rate(slow))
	}
}

func TestWeightedTaskCharge(t *testing.T) {
	if got := WeightedTaskCharge(20, 2, 1.5); got != 15 {
		t.Errorf("WeightedTaskCharge = %v, want 15", got)
	}
}

func TestBudgetLifecycle(t *testing.T) {
	b := NewBudget(100)
	if !b.CanAfford(100) || b.CanAfford(101) {
		t.Error("CanAfford wrong at boundary")
	}
	if err := b.Charge(60); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 40 || b.Spent() != 60 {
		t.Errorf("Remaining/Spent = %v/%v", b.Remaining(), b.Spent())
	}
	if err := b.Charge(50); err == nil {
		t.Error("overdraft allowed")
	}
	if err := b.Refund(10); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 50 {
		t.Errorf("after refund Remaining = %v", b.Remaining())
	}
	if err := b.Refund(100); err == nil {
		t.Error("over-refund allowed")
	}
	if err := b.Charge(-1); err == nil {
		t.Error("negative charge allowed")
	}
	if err := b.Refund(-1); err == nil {
		t.Error("negative refund allowed")
	}
	b.Grant(25)
	if b.Remaining() != 75 {
		t.Errorf("after grant Remaining = %v", b.Remaining())
	}
}

func TestGrantPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative grant did not panic")
		}
	}()
	NewBudget(1).Grant(-5)
}

func TestQuickTaskChargeCeiling(t *testing.T) {
	// TaskCharge is the exact ceiling of V/T: charge-1 < V/T <= charge.
	f := func(v uint32, tt uint16) bool {
		vol := int64(v % 100000)
		lt := simtime.Time(tt%1000) + 1
		got := TaskCharge(vol, lt)
		if got < 0 {
			return false
		}
		return got*int64(lt) >= vol && (got-1)*int64(lt) < vol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickChargeFasterCostsMore(t *testing.T) {
	// For fixed volume, a shorter load time never lowers the bare charge —
	// the paper's "pay more to run faster".
	f := func(v uint16, a, b uint8) bool {
		vol := int64(v%1000) + 1
		t1 := simtime.Time(a%50) + 1
		t2 := simtime.Time(b%50) + 1
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return TaskCharge(vol, t1) >= TaskCharge(vol, t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickBudgetNeverNegative(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBudget(50)
		for _, op := range ops {
			amt := float64(op % 30)
			if op%2 == 0 {
				_ = b.Charge(amt)
			} else {
				_ = b.Refund(amt)
			}
			if b.Remaining() < 0 || b.Spent() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
