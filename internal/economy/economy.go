// Package economy implements the virtual organization's economic model of
// resource distribution (§3, refs [14]): costs are expressed in
// conventional units ("quotas", not real money), a user pays more to use a
// more powerful resource or to start a task sooner, and the job cost
// function is
//
//	CF = Σ_i ceil(V_i / T_i) × price_i
//
// where V_i is the task's relative computation volume, T_i the real load
// time of the chosen node by the task, and price_i the node's rate (1 in
// the paper's bare model). A shorter T_i on a faster node raises the V/T
// term — paying for speed — reproducing CF2 = min in Fig. 2(b).
package economy

import (
	"fmt"

	"repro/internal/resource"
	"repro/internal/simtime"
)

// Pricing assigns per-tick rates to nodes.
type Pricing interface {
	// Rate returns the price per reserved tick of the node, in quotas.
	Rate(n *resource.Node) float64
}

// FlatPricing charges the same rate everywhere; with rate 1 the cost
// function reduces to the paper's bare Σ ceil(V/T).
type FlatPricing struct{ PerTick float64 }

// Rate implements Pricing.
func (p FlatPricing) Rate(*resource.Node) float64 { return p.PerTick }

// PerformancePricing charges proportionally to node performance:
// rate = Base × perf. The fastest node costs Base, a 0.33 node a third of
// that — the "pay more for a more powerful resource" rule.
type PerformancePricing struct{ Base float64 }

// Rate implements Pricing.
func (p PerformancePricing) Rate(n *resource.Node) float64 { return p.Base * n.Perf }

// TaskCharge is the paper's per-task cost term ceil(V/T). A zero or
// negative load time is a scheduling bug and panics.
func TaskCharge(volume int64, loadTime simtime.Time) int64 {
	if loadTime <= 0 {
		panic(fmt.Sprintf("economy: non-positive load time %d", loadTime))
	}
	return (volume + int64(loadTime) - 1) / int64(loadTime)
}

// WeightedTaskCharge applies the node's rate to the bare charge.
func WeightedTaskCharge(volume int64, loadTime simtime.Time, rate float64) float64 {
	return float64(TaskCharge(volume, loadTime)) * rate
}

// Budget tracks a user's or flow's quota account. The zero value is an
// empty account with no allowance.
type Budget struct {
	allowance float64
	spent     float64
}

// NewBudget returns a budget with the given allowance in quotas.
func NewBudget(allowance float64) *Budget {
	return &Budget{allowance: allowance}
}

// Remaining returns the unspent allowance.
func (b *Budget) Remaining() float64 { return b.allowance - b.spent }

// Spent returns the total charged so far.
func (b *Budget) Spent() float64 { return b.spent }

// CanAfford reports whether the charge fits the remaining allowance.
func (b *Budget) CanAfford(charge float64) bool { return charge <= b.Remaining() }

// Charge debits the budget. It returns an error (and debits nothing) when
// the charge exceeds the remaining allowance or is negative.
func (b *Budget) Charge(charge float64) error {
	if charge < 0 {
		return fmt.Errorf("economy: negative charge %v", charge)
	}
	if !b.CanAfford(charge) {
		return fmt.Errorf("economy: charge %.2f exceeds remaining quota %.2f", charge, b.Remaining())
	}
	b.spent += charge
	return nil
}

// Refund credits back a previously made charge (e.g. an abandoned
// supporting schedule). Refunding more than was spent is an error.
func (b *Budget) Refund(charge float64) error {
	if charge < 0 {
		return fmt.Errorf("economy: negative refund %v", charge)
	}
	if charge > b.spent {
		return fmt.Errorf("economy: refund %.2f exceeds spent %.2f", charge, b.spent)
	}
	b.spent -= charge
	return nil
}

// Grant raises the allowance (dynamic priority changes, §5).
func (b *Budget) Grant(extra float64) {
	if extra < 0 {
		panic("economy: negative grant")
	}
	b.allowance += extra
}
