// Package data models the data storage and replication policies that
// distinguish the paper's strategy families (§4):
//
//   - ActiveReplication (S1/MS1): data products are proactively replicated;
//     once a dataset has been copied to a node, later reads there are free,
//     and the replication pipeline halves the effective first-copy time.
//   - RemoteAccess (S2): every cross-node consumer pays the full transfer
//     time, every time; nothing is cached.
//   - StaticStorage (S3): all data products live on a fixed storage node;
//     a transfer between tasks on different nodes pays the producer→storage
//     and storage→consumer legs (2× base), which strongly rewards
//     co-locating tasks.
//
// The Catalog tracks replica locations per job so Cost is stateful under
// ActiveReplication, exactly the "active data replication policy" effect
// that lowers S1's collision pressure on fast nodes (Fig. 3b).
package data

import (
	"fmt"

	"repro/internal/resource"
	"repro/internal/simtime"
)

// Policy selects a data storage/replication model.
type Policy int

// The three policies of §4's strategy table.
const (
	ActiveReplication Policy = iota
	RemoteAccess
	StaticStorage
)

// String names the policy as in the paper's strategy descriptions.
func (p Policy) String() string {
	switch p {
	case ActiveReplication:
		return "active-replication"
	case RemoteAccess:
		return "remote-access"
	case StaticStorage:
		return "static-storage"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// DatasetID identifies a data product within a job. The critical-works
// scheduler uses the producing task's name, so all transfers fanning out of
// one task share a dataset: once P1's output is replicated to a node, both
// D1- and D2-style consumers there read it for free under active
// replication (the data-grid file-replica model of OptorSim/ChicSim that
// the paper compares against).
type DatasetID struct {
	Job     string
	Dataset string
}

// Catalog tracks replica placement for datasets under one policy.
// The zero value is not usable; call NewCatalog.
type Catalog struct {
	policy  Policy
	storage resource.NodeID // used by StaticStorage
	replica map[DatasetID]map[resource.NodeID]bool
}

// NewCatalog creates a catalog. storageNode is only meaningful for
// StaticStorage and names the node holding all data products.
func NewCatalog(p Policy, storageNode resource.NodeID) *Catalog {
	return &Catalog{
		policy:  p,
		storage: storageNode,
		replica: make(map[DatasetID]map[resource.NodeID]bool),
	}
}

// Policy returns the catalog's policy.
func (c *Catalog) Policy() Policy { return c.policy }

// Storage returns the static-storage anchor node (meaningful only under
// StaticStorage, but always comparable: two catalogs with equal Policy,
// Storage and Empty state price every transfer identically).
func (c *Catalog) Storage() resource.NodeID { return c.storage }

// Empty reports whether the catalog has recorded no replicas yet.
func (c *Catalog) Empty() bool { return len(c.replica) == 0 }

// TransferTime returns the planned time for moving dataset (of job
// jobName) from the producer's node to the consumer's node, given the base
// (remote-access) transfer time. It does not mutate replica state; call
// Commit when the placement is adopted.
//
// Co-locating producer and consumer does NOT waive the transfer: in the
// paper's model data transfers are explicit pipeline stages that take
// wall time wherever they run (Fig. 2(b)'s Distribution 1 shows D1
// between P1/1 and P2/1 — both on node 1 — still occupying a tick). Only
// an already-present replica (active replication) or residence on the
// static-storage node removes a leg.
func (c *Catalog) TransferTime(jobName, dataset string, base simtime.Time, from, to resource.NodeID) simtime.Time {
	switch c.policy {
	case ActiveReplication:
		ds := DatasetID{Job: jobName, Dataset: dataset}
		if c.replica[ds][to] {
			return 0 // a replica is already there
		}
		// Proactive replication overlaps part of the copy with upstream
		// execution: the consumer observes about 3/4 of the nominal time.
		return (3*base + 3) / 4
	case RemoteAccess:
		return base
	case StaticStorage:
		// producer -> storage -> consumer, half the nominal time per leg
		// (the storage node is well provisioned); co-location with the
		// storage node removes the respective leg. A full cross-node
		// transfer therefore costs about the remote-access baseline, and
		// the S3 penalty comes from coarse-grain serialization rather
		// than from transfer inflation.
		var t simtime.Time
		if from != c.storage {
			t += (base + 1) / 2
		}
		if to != c.storage {
			t += (base + 1) / 2
		}
		return t
	default:
		return base
	}
}

// Commit records that the dataset has been materialized at node `to` (and,
// under StaticStorage, at the storage node). Only ActiveReplication
// accumulates replicas that change later costs.
func (c *Catalog) Commit(jobName, dataset string, from, to resource.NodeID) {
	ds := DatasetID{Job: jobName, Dataset: dataset}
	m := c.replica[ds]
	if m == nil {
		m = make(map[resource.NodeID]bool)
		c.replica[ds] = m
	}
	m[from] = true
	m[to] = true
	if c.policy == StaticStorage {
		m[c.storage] = true
	}
}

// Clone returns a deep copy of the catalog, for what-if scheduling passes
// that must not leak replica state.
func (c *Catalog) Clone() *Catalog {
	cp := NewCatalog(c.policy, c.storage)
	for ds, nodes := range c.replica {
		m := make(map[resource.NodeID]bool, len(nodes))
		for id, v := range nodes {
			m[id] = v
		}
		cp.replica[ds] = m
	}
	return cp
}

// Replicas returns the nodes currently holding the dataset, or nil.
func (c *Catalog) Replicas(ds DatasetID) []resource.NodeID {
	m := c.replica[ds]
	if len(m) == 0 {
		return nil
	}
	out := make([]resource.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	// Deterministic order for callers that print.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Forget drops all replica records of one job (job finished or reallocated).
func (c *Catalog) Forget(jobName string) {
	for ds := range c.replica {
		if ds.Job == jobName {
			delete(c.replica, ds)
		}
	}
}
