package data

import (
	"testing"
	"testing/quick"

	"repro/internal/resource"
	"repro/internal/simtime"
)

func TestSameNodeStillPays(t *testing.T) {
	// Transfers are explicit pipeline stages (see Fig. 2(b)): co-location
	// does not waive them.
	tests := []struct {
		p    Policy
		want simtime.Time
	}{
		{ActiveReplication, 6}, // ceil(3*8/4)
		{RemoteAccess, 8},
		{StaticStorage, 8}, // two half-legs through storage node 9
	}
	for _, tt := range tests {
		c := NewCatalog(tt.p, 9)
		if got := c.TransferTime("j", "P1", 8, 3, 3); got != tt.want {
			t.Errorf("%v: same-node transfer = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestRemoteAccessAlwaysFullCost(t *testing.T) {
	c := NewCatalog(RemoteAccess, 0)
	if got := c.TransferTime("j", "P1", 6, 0, 1); got != 6 {
		t.Errorf("first transfer = %d, want 6", got)
	}
	c.Commit("j", "P1", 0, 1)
	if got := c.TransferTime("j", "P1", 6, 0, 1); got != 6 {
		t.Errorf("repeat transfer = %d, want 6 (no caching)", got)
	}
}

func TestActiveReplicationHalvesAndCaches(t *testing.T) {
	c := NewCatalog(ActiveReplication, 0)
	if got := c.TransferTime("j", "P1", 7, 0, 1); got != 6 { // ceil(3*7/4)
		t.Errorf("first transfer = %d, want 6", got)
	}
	c.Commit("j", "P1", 0, 1)
	if got := c.TransferTime("j", "P1", 7, 0, 1); got != 0 {
		t.Errorf("replicated transfer = %d, want 0", got)
	}
	// A different destination still pays.
	if got := c.TransferTime("j", "P1", 7, 0, 2); got != 6 {
		t.Errorf("new destination = %d, want 6", got)
	}
	// A different job's same-named dataset is a different dataset.
	if got := c.TransferTime("k", "P1", 7, 0, 1); got != 6 {
		t.Errorf("other job = %d, want 6", got)
	}
	// A different dataset of the same job still pays.
	if got := c.TransferTime("j", "P2", 7, 0, 1); got != 6 {
		t.Errorf("other dataset = %d, want 6", got)
	}
}

func TestFanOutSharesDataset(t *testing.T) {
	// Two consumers of P1's output on the same node: the second read is
	// free once the first transfer committed (the paper's replication win).
	c := NewCatalog(ActiveReplication, 0)
	if got := c.TransferTime("j", "P1", 10, 0, 3); got != 8 {
		t.Fatalf("first consumer pays %d, want 8", got)
	}
	c.Commit("j", "P1", 0, 3)
	if got := c.TransferTime("j", "P1", 10, 0, 3); got != 0 {
		t.Errorf("second consumer pays %d, want 0", got)
	}
}

func TestStaticStorageLegs(t *testing.T) {
	const storage = resource.NodeID(5)
	c := NewCatalog(StaticStorage, storage)
	tests := []struct {
		from, to resource.NodeID
		want     simtime.Time
	}{
		{0, 1, 4},       // two half-legs: 2 + 2
		{storage, 1, 2}, // producer on storage
		{0, storage, 2}, // consumer on storage
		{2, 2, 4},       // same node still stages through storage
		{storage, storage, 0},
	}
	for _, tt := range tests {
		if got := c.TransferTime("j", "P1", 3, tt.from, tt.to); got != tt.want {
			t.Errorf("TransferTime(%d→%d) = %d, want %d", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestCommitRegistersReplicas(t *testing.T) {
	c := NewCatalog(StaticStorage, 5)
	c.Commit("j", "P1", 0, 1)
	got := c.Replicas(DatasetID{Job: "j", Dataset: "P1"})
	want := []resource.NodeID{0, 1, 5} // includes the storage node
	if len(got) != len(want) {
		t.Fatalf("Replicas = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Replicas = %v, want %v", got, want)
		}
	}
}

func TestForget(t *testing.T) {
	c := NewCatalog(ActiveReplication, 0)
	c.Commit("j", "P1", 0, 1)
	c.Commit("k", "P1", 0, 1)
	c.Forget("j")
	if c.Replicas(DatasetID{Job: "j", Dataset: "P1"}) != nil {
		t.Error("forgotten job still has replicas")
	}
	if c.Replicas(DatasetID{Job: "k", Dataset: "P1"}) == nil {
		t.Error("Forget removed another job's replicas")
	}
	if got := c.TransferTime("j", "P1", 4, 0, 1); got != 3 {
		t.Errorf("after Forget transfer = %d, want 3", got)
	}
}

func TestPolicyString(t *testing.T) {
	if ActiveReplication.String() != "active-replication" ||
		RemoteAccess.String() != "remote-access" ||
		StaticStorage.String() != "static-storage" {
		t.Error("policy names changed")
	}
}

func TestQuickPolicyOrdering(t *testing.T) {
	// For any base time and distinct uncached nodes (none being storage):
	// replication ≤ remote, static ≈ remote (two half-legs), all
	// non-negative.
	f := func(base uint16) bool {
		b := simtime.Time(base % 1000)
		ar := NewCatalog(ActiveReplication, 99).TransferTime("j", "D", b, 0, 1)
		ra := NewCatalog(RemoteAccess, 99).TransferTime("j", "D", b, 0, 1)
		ss := NewCatalog(StaticStorage, 99).TransferTime("j", "D", b, 0, 1)
		return ar >= 0 && ar <= ra && ss <= ra+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReplicationIdempotent(t *testing.T) {
	// After Commit, transfers to the committed destination are free,
	// regardless of how many times Commit runs and where data comes from.
	f := func(base uint16, reps uint8) bool {
		b := simtime.Time(base%100) + 1
		c := NewCatalog(ActiveReplication, 0)
		for i := 0; i < int(reps%5)+1; i++ {
			c.Commit("j", "D", 0, 1)
		}
		return c.TransferTime("j", "D", b, 0, 1) == 0 && c.TransferTime("j", "D", b, 2, 1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
