// Package batch simulates the local batch-job management systems that sit
// at the bottom of the paper's hierarchy (Fig. 1). Each cluster runs a
// space-sharing queueing policy — FCFS (the paper's experimental default,
// §5), LWF (least work first), EASY or conservative backfilling — or gang
// scheduling (time-sharing), and supports the advance reservations whose
// interaction with queue waiting time §5 discusses.
package batch

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/simtime"
)

// Request is a resource request submitted to a local batch system: `Nodes`
// processors for `Walltime` ticks (the user estimate that reservations are
// sized by). Runtime is the actual duration; a job whose runtime exceeds
// its walltime is killed at the walltime boundary, as real batch systems
// do.
type Request struct {
	ID       string
	Nodes    int
	Walltime simtime.Time
	Runtime  simtime.Time
	// Priority orders the queue under the Priority discipline (higher
	// first). §5 ties it to the VO economy: a user raising the execution
	// cost they are willing to pay raises their jobs' priority.
	Priority int
}

// Outcome records the fate of one request.
type Outcome struct {
	Request
	Arrival simtime.Time
	// ForecastStart is the start time predicted at submission, used for
	// the §5 start-time forecast error comparison.
	ForecastStart simtime.Time
	Start         simtime.Time
	End           simtime.Time
	// Killed reports that the job exceeded its walltime.
	Killed bool
	// Reserved marks jobs submitted as advance reservations.
	Reserved bool
}

// Wait returns the queueing delay.
func (o Outcome) Wait() simtime.Time { return o.Start - o.Arrival }

// ForecastError returns |actual − forecast| start time.
func (o Outcome) ForecastError() simtime.Time {
	d := o.Start - o.ForecastStart
	if d < 0 {
		return -d
	}
	return d
}

// System is any local batch scheduler: the space-sharing Cluster and the
// time-sharing Gang both implement it.
type System interface {
	// Submit enqueues a request at the engine's current time.
	Submit(r Request)
	// Outcomes returns the completed jobs so far.
	Outcomes() []Outcome
	// Name identifies the policy for reports.
	Name() string
}

// Discipline orders the waiting queue.
type Discipline int

const (
	// FCFS serves in arrival order.
	FCFS Discipline = iota
	// LWF serves least work (walltime × nodes) first.
	LWF
	// Priority serves the highest Request.Priority first (FCFS within a
	// priority class); priorities may change while queued (§5's dynamic
	// priority changes driven by the VO economy).
	Priority
)

// Backfill selects the backfilling variant layered on the discipline.
type Backfill int

const (
	// NoBackfill blocks strictly on the queue head.
	NoBackfill Backfill = iota
	// EasyBackfill lets jobs jump ahead if they do not delay the head's
	// shadow reservation (EASY/Maui-style aggressive backfilling).
	EasyBackfill
	// ConservativeBackfill gives every queued job a profile reservation;
	// jumping ahead must not delay any of them.
	ConservativeBackfill
)

// Policy is a space-sharing configuration.
type Policy struct {
	Discipline Discipline
	Backfill   Backfill
}

// Name renders the policy as in the experiment tables.
func (p Policy) Name() string {
	d := "FCFS"
	switch p.Discipline {
	case LWF:
		d = "LWF"
	case Priority:
		d = "PRIO"
	}
	switch p.Backfill {
	case EasyBackfill:
		return d + "+easy-backfill"
	case ConservativeBackfill:
		return d + "+conservative-backfill"
	default:
		return d
	}
}

// queued is a waiting request with its arrival metadata.
type queued struct {
	req      Request
	arrival  simtime.Time
	forecast simtime.Time
	seq      uint64
}

// running is an executing or pre-reserved job occupying nodes.
type running struct {
	req     Request
	start   simtime.Time
	wallEnd simtime.Time // start + walltime: the reservation horizon
}

// reservation is an accepted advance reservation that has not started yet.
type reservation struct {
	req     Request
	arrival simtime.Time
	startAt simtime.Time
}

// Cluster is a space-sharing batch system over `nodes` identical
// processors, driven by a sim.Engine.
type Cluster struct {
	engine *sim.Engine
	nodes  int
	policy Policy

	queue    []*queued
	running  []*running
	reserved []*reservation
	outcomes []Outcome
	seq      uint64

	// OnComplete, when set, is called synchronously with every outcome as
	// it is recorded.
	OnComplete func(Outcome)
}

// NewCluster creates a cluster of the given size. nodes must be positive.
func NewCluster(engine *sim.Engine, nodes int, policy Policy) *Cluster {
	if nodes <= 0 {
		panic(fmt.Sprintf("batch: cluster with %d nodes", nodes))
	}
	return &Cluster{engine: engine, nodes: nodes, policy: policy}
}

// Name implements System.
func (c *Cluster) Name() string { return c.policy.Name() }

// Outcomes implements System.
func (c *Cluster) Outcomes() []Outcome { return append([]Outcome(nil), c.outcomes...) }

// QueueLength returns the number of waiting requests.
func (c *Cluster) QueueLength() int { return len(c.queue) }

// RunningCount returns the number of executing jobs.
func (c *Cluster) RunningCount() int { return len(c.running) }

// Submit implements System. Requests needing more nodes than the cluster
// has are rejected with a panic: the caller sized the request wrongly.
func (c *Cluster) Submit(r Request) {
	if r.Nodes <= 0 || r.Nodes > c.nodes {
		panic(fmt.Sprintf("batch: request %q wants %d of %d nodes", r.ID, r.Nodes, c.nodes))
	}
	if r.Walltime <= 0 || r.Runtime <= 0 {
		panic(fmt.Sprintf("batch: request %q has non-positive times", r.ID))
	}
	now := c.engine.Now()
	q := &queued{req: r, arrival: now, seq: c.seq}
	c.seq++
	q.forecast = c.forecastStart(q)
	c.queue = append(c.queue, q)
	c.dispatch()
}

// SubmitReservation books an advance reservation: the job will occupy its
// nodes from startAt for its walltime. It returns false when the profile
// cannot honour the window (already promised to other reservations or
// running jobs).
func (c *Cluster) SubmitReservation(r Request, startAt simtime.Time) bool {
	if r.Nodes <= 0 || r.Nodes > c.nodes {
		panic(fmt.Sprintf("batch: reservation %q wants %d of %d nodes", r.ID, r.Nodes, c.nodes))
	}
	now := c.engine.Now()
	if startAt < now {
		return false
	}
	// A reservation must fit against running jobs and other reservations;
	// queued jobs yield (that is what makes reservations hurt queue waits).
	p := c.baseProfile(now, false)
	if !p.fitsAt(startAt, r.Walltime, r.Nodes) {
		return false
	}
	res := &reservation{req: r, arrival: now, startAt: startAt}
	c.reserved = append(c.reserved, res)
	c.engine.At(startAt, "reservation-start "+r.ID, func() { c.startReservation(res) })
	// New blocked window may invalidate queued jobs' plans; re-dispatch.
	c.dispatch()
	return true
}

func (c *Cluster) startReservation(res *reservation) {
	for i, r := range c.reserved {
		if r == res {
			c.reserved = append(c.reserved[:i], c.reserved[i+1:]...)
			break
		}
	}
	// A reservation's forecast is its own fixed start time.
	c.start(res.req, res.arrival, res.startAt, res.startAt, true)
}

// FreeNodes returns currently idle processors.
func (c *Cluster) FreeNodes() int {
	used := 0
	for _, r := range c.running {
		used += r.req.Nodes
	}
	return c.nodes - used
}

// baseProfile builds the availability profile from running jobs (to their
// walltime horizon) and pending advance reservations; includeQueue adds
// conservative-style reservations for every queued job in policy order.
func (c *Cluster) baseProfile(now simtime.Time, includeQueue bool) *profile {
	p := newProfile(c.nodes)
	for _, r := range c.running {
		end := r.wallEnd
		if end < now {
			end = now // overdue jobs are killed at wallEnd; defensive
		}
		p.subtract(simtime.Interval{Start: now, End: end}, r.req.Nodes)
	}
	for _, res := range c.reserved {
		p.subtract(simtime.Interval{Start: res.startAt, End: res.startAt + res.req.Walltime}, res.req.Nodes)
	}
	if includeQueue {
		for _, q := range c.ordered() {
			st, ok := p.earliestFit(now, q.req.Walltime, q.req.Nodes)
			if !ok {
				continue
			}
			p.subtract(simtime.Interval{Start: st, End: st + q.req.Walltime}, q.req.Nodes)
		}
	}
	return p
}

// ordered returns the queue in the discipline's service order.
func (c *Cluster) ordered() []*queued {
	out := append([]*queued(nil), c.queue...)
	switch c.policy.Discipline {
	case LWF:
		sort.Slice(out, func(a, b int) bool {
			wa := int64(out[a].req.Walltime) * int64(out[a].req.Nodes)
			wb := int64(out[b].req.Walltime) * int64(out[b].req.Nodes)
			if wa != wb {
				return wa < wb
			}
			return out[a].seq < out[b].seq
		})
	case Priority:
		sort.Slice(out, func(a, b int) bool {
			if out[a].req.Priority != out[b].req.Priority {
				return out[a].req.Priority > out[b].req.Priority
			}
			return out[a].seq < out[b].seq
		})
	default:
		sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	}
	return out
}

// SetPriority changes a queued request's priority and re-evaluates the
// queue — the §5 dynamic priority change (a user paying more for a
// specific resource). It reports whether the request was found waiting;
// running or finished jobs are unaffected.
func (c *Cluster) SetPriority(id string, priority int) bool {
	for _, q := range c.queue {
		if q.req.ID == id {
			q.req.Priority = priority
			c.dispatch()
			return true
		}
	}
	return false
}

// forecastStart predicts when q will start, by placing the queue (in
// policy order) plus q into the current profile, conservative-style.
func (c *Cluster) forecastStart(q *queued) simtime.Time {
	now := c.engine.Now()
	p := c.baseProfile(now, true) // queue already placed in order
	st, ok := p.earliestFit(now, q.req.Walltime, q.req.Nodes)
	if !ok {
		return now
	}
	return st
}

// dispatch starts every job the policy allows right now.
func (c *Cluster) dispatch() {
	now := c.engine.Now()
	for {
		started := c.dispatchOnce(now)
		if !started {
			return
		}
	}
}

// dispatchOnce starts at most one job; it reports whether it did.
func (c *Cluster) dispatchOnce(now simtime.Time) bool {
	if len(c.queue) == 0 {
		return false
	}
	order := c.ordered()
	base := c.baseProfile(now, false)

	// The queue head starts whenever it fits the profile right now.
	head := order[0]
	if base.fitsAt(now, head.req.Walltime, head.req.Nodes) {
		c.remove(head)
		c.start(head.req, head.arrival, head.forecast, now, false)
		return true
	}

	switch c.policy.Backfill {
	case EasyBackfill:
		shadowTime, extra := base.shadow(now, head.req.Walltime, head.req.Nodes)
		for _, q := range order[1:] {
			if !base.fitsAt(now, q.req.Walltime, q.req.Nodes) {
				continue
			}
			if now+q.req.Walltime <= shadowTime || q.req.Nodes <= extra {
				c.remove(q)
				c.start(q.req, q.arrival, q.forecast, now, false)
				return true
			}
		}
	case ConservativeBackfill:
		// Walk the queue in order, assigning profile reservations; any job
		// whose reservation lands exactly now starts.
		p := c.baseProfile(now, false)
		for _, q := range order {
			st, ok := p.earliestFit(now, q.req.Walltime, q.req.Nodes)
			if !ok {
				continue
			}
			if st == now {
				c.remove(q)
				c.start(q.req, q.arrival, q.forecast, now, false)
				return true
			}
			p.subtract(simtime.Interval{Start: st, End: st + q.req.Walltime}, q.req.Nodes)
		}
	}
	return false
}

func (c *Cluster) remove(q *queued) {
	for i, cand := range c.queue {
		if cand == q {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// start launches the job now and schedules its completion (or kill).
func (c *Cluster) start(r Request, arrival, forecast, now simtime.Time, reserved bool) {
	run := &running{req: r, start: now, wallEnd: now + r.Walltime}
	c.running = append(c.running, run)
	dur := r.Runtime
	killed := false
	if dur > r.Walltime {
		dur = r.Walltime
		killed = true
	}
	c.engine.At(now+dur, "complete "+r.ID, func() {
		for i, cand := range c.running {
			if cand == run {
				c.running = append(c.running[:i], c.running[i+1:]...)
				break
			}
		}
		o := Outcome{
			Request:       r,
			Arrival:       arrival,
			ForecastStart: forecast,
			Start:         now,
			End:           c.engine.Now(),
			Killed:        killed,
			Reserved:      reserved,
		}
		c.outcomes = append(c.outcomes, o)
		if c.OnComplete != nil {
			c.OnComplete(o)
		}
		c.dispatch()
	})
}
