package batch

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simtime"
)

// Gang is a time-sharing gang scheduler (§5 names it among the local
// scheduling alternatives): jobs are packed into slots — groups whose node
// demand fits the machine — and the machine round-robins whole slots with
// a fixed quantum. Every job is admitted immediately (no queue wait); the
// price is dilated completion when many slots share the machine.
type Gang struct {
	engine  *sim.Engine
	nodes   int
	quantum simtime.Time

	slots    [][]*gangJob
	active   int
	ticking  bool
	outcomes []Outcome
}

type gangJob struct {
	req      Request
	arrival  simtime.Time
	started  bool
	start    simtime.Time
	progress simtime.Time // accumulated execution time
}

// NewGang creates a gang scheduler with the given machine size and
// time-slice quantum.
func NewGang(engine *sim.Engine, nodes int, quantum simtime.Time) *Gang {
	if nodes <= 0 || quantum <= 0 {
		panic(fmt.Sprintf("batch: gang with %d nodes, quantum %d", nodes, quantum))
	}
	return &Gang{engine: engine, nodes: nodes, quantum: quantum}
}

// Name implements System.
func (g *Gang) Name() string { return "gang" }

// Outcomes implements System.
func (g *Gang) Outcomes() []Outcome { return append([]Outcome(nil), g.outcomes...) }

// SlotCount returns the current number of gang slots.
func (g *Gang) SlotCount() int { return len(g.slots) }

// Submit implements System: the job joins the first slot with room for its
// node demand, or opens a new slot.
func (g *Gang) Submit(r Request) {
	if r.Nodes <= 0 || r.Nodes > g.nodes {
		panic(fmt.Sprintf("batch: gang request %q wants %d of %d nodes", r.ID, r.Nodes, g.nodes))
	}
	if r.Runtime <= 0 {
		panic(fmt.Sprintf("batch: gang request %q has non-positive runtime", r.ID))
	}
	j := &gangJob{req: r, arrival: g.engine.Now()}
	placed := false
	for i := range g.slots {
		if g.slotDemand(i)+r.Nodes <= g.nodes {
			g.slots[i] = append(g.slots[i], j)
			placed = true
			break
		}
	}
	if !placed {
		g.slots = append(g.slots, []*gangJob{j})
	}
	if !g.ticking {
		g.ticking = true
		g.engine.After(0, "gang-quantum", g.tick)
	}
}

func (g *Gang) slotDemand(i int) int {
	d := 0
	for _, j := range g.slots[i] {
		d += j.req.Nodes
	}
	return d
}

// tick runs one quantum for the active slot, retires finished jobs,
// rotates, and reschedules itself while work remains.
func (g *Gang) tick() {
	if len(g.slots) == 0 {
		g.ticking = false
		return
	}
	if g.active >= len(g.slots) {
		g.active = 0
	}
	now := g.engine.Now()
	slot := g.slots[g.active]
	var keep []*gangJob
	for _, j := range slot {
		if !j.started {
			j.started = true
			j.start = now
		}
		j.progress += g.quantum
		if j.progress >= j.req.Runtime {
			// Completion lands inside this quantum; bill the exact time.
			over := j.progress - j.req.Runtime
			g.outcomes = append(g.outcomes, Outcome{
				Request:       j.req,
				Arrival:       j.arrival,
				ForecastStart: j.arrival, // gang admits immediately
				Start:         j.start,
				End:           now + g.quantum - over,
			})
			continue
		}
		keep = append(keep, j)
	}
	g.slots[g.active] = keep
	// Drop empty slots; rotation simply advances over the compacted list.
	var slots [][]*gangJob
	for _, s := range g.slots {
		if len(s) > 0 {
			slots = append(slots, s)
		}
	}
	g.slots = slots
	if len(g.slots) == 0 {
		g.ticking = false
		return
	}
	g.active = (g.active + 1) % len(g.slots)
	g.engine.After(g.quantum, "gang-quantum", g.tick)
}
