package batch

import (
	"sort"

	"repro/internal/simtime"
)

// profile is a step function of node availability over time, used for
// "does this parallel job fit at time t" queries, shadow-time computation
// in EASY backfilling, reservation placement in conservative backfilling,
// and start-time forecasts.
type profile struct {
	capacity int
	deltas   map[simtime.Time]int // time -> change in used nodes
}

func newProfile(capacity int) *profile {
	return &profile{capacity: capacity, deltas: make(map[simtime.Time]int)}
}

// subtract marks `nodes` nodes busy during iv.
func (p *profile) subtract(iv simtime.Interval, nodes int) {
	if iv.Empty() || nodes <= 0 {
		return
	}
	p.deltas[iv.Start] += nodes
	p.deltas[iv.End] -= nodes
}

// times returns the sorted breakpoints.
func (p *profile) times() []simtime.Time {
	out := make([]simtime.Time, 0, len(p.deltas))
	for t := range p.deltas {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// availableAt returns free nodes at time t.
func (p *profile) availableAt(t simtime.Time) int {
	used := 0
	for bp, d := range p.deltas {
		if bp <= t {
			used += d
		}
	}
	return p.capacity - used
}

// fitsAt reports whether `nodes` nodes are free for all of [t, t+dur).
func (p *profile) fitsAt(t, dur simtime.Time, nodes int) bool {
	if nodes > p.capacity {
		return false
	}
	if dur <= 0 {
		return p.availableAt(t) >= nodes
	}
	if p.availableAt(t) < nodes {
		return false
	}
	for _, bp := range p.times() {
		if bp <= t || bp >= t+dur {
			continue
		}
		if p.availableAt(bp) < nodes {
			return false
		}
	}
	return true
}

// earliestFit returns the earliest t >= after such that `nodes` nodes stay
// free during [t, t+dur). It always terminates: past the last breakpoint
// the machine is fully idle. ok is false only when nodes > capacity.
func (p *profile) earliestFit(after, dur simtime.Time, nodes int) (simtime.Time, bool) {
	if nodes > p.capacity {
		return 0, false
	}
	candidates := []simtime.Time{after}
	for _, bp := range p.times() {
		if bp > after {
			candidates = append(candidates, bp)
		}
	}
	for _, t := range candidates {
		if p.fitsAt(t, dur, nodes) {
			return t, true
		}
	}
	// Unreachable: the candidate at or after the final breakpoint fits.
	last := after
	for _, bp := range p.times() {
		if bp > last {
			last = bp
		}
	}
	return last, true
}

// shadow returns, for a blocked head job needing `nodes` nodes with
// duration dur, the shadow time (its earliest profile start) and the number
// of extra free nodes at that moment beyond what the head will use — the
// two quantities EASY backfilling checks candidates against.
func (p *profile) shadow(after, dur simtime.Time, nodes int) (shadowTime simtime.Time, extra int) {
	st, _ := p.earliestFit(after, dur, nodes)
	return st, p.availableAt(st) - nodes
}
