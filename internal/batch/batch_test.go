package batch

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simtime"
)

func req(id string, nodes int, wall, run simtime.Time) Request {
	return Request{ID: id, Nodes: nodes, Walltime: wall, Runtime: run}
}

func outcomeByID(t *testing.T, outs []Outcome, id string) Outcome {
	t.Helper()
	for _, o := range outs {
		if o.ID == id {
			return o
		}
	}
	t.Fatalf("no outcome for %q in %v", id, outs)
	return Outcome{}
}

func TestFCFSSerializesOnOneNode(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{})
	c.Submit(req("a", 1, 10, 10))
	c.Submit(req("b", 1, 5, 5))
	e.Run()
	outs := c.Outcomes()
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	a, b := outcomeByID(t, outs, "a"), outcomeByID(t, outs, "b")
	if a.Start != 0 || a.End != 10 {
		t.Errorf("a ran [%d,%d)", a.Start, a.End)
	}
	if b.Start != 10 || b.End != 15 {
		t.Errorf("b ran [%d,%d)", b.Start, b.End)
	}
	if b.Wait() != 10 {
		t.Errorf("b wait = %d", b.Wait())
	}
}

func TestParallelJobsShareCluster(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 4, Policy{})
	c.Submit(req("a", 2, 10, 10))
	c.Submit(req("b", 2, 10, 10))
	e.Run()
	a := outcomeByID(t, c.Outcomes(), "a")
	b := outcomeByID(t, c.Outcomes(), "b")
	if a.Start != 0 || b.Start != 0 {
		t.Errorf("both should start at 0: a=%d b=%d", a.Start, b.Start)
	}
}

func TestKilledAtWalltime(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{})
	c.Submit(req("over", 1, 5, 9))
	e.Run()
	o := outcomeByID(t, c.Outcomes(), "over")
	if !o.Killed || o.End != 5 {
		t.Errorf("outcome = %+v, want killed at 5", o)
	}
}

func TestEarlyCompletionFreesNodes(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{})
	c.Submit(req("a", 1, 10, 3)) // finishes well before walltime
	c.Submit(req("b", 1, 5, 5))
	e.Run()
	b := outcomeByID(t, c.Outcomes(), "b")
	if b.Start != 3 {
		t.Errorf("b started %d, want 3 (right after a's early exit)", b.Start)
	}
}

func TestEasyBackfillsShortJob(t *testing.T) {
	run := func(p Policy) (simtime.Time, simtime.Time) {
		e := sim.New()
		c := NewCluster(e, 4, p)
		c.Submit(req("big", 3, 10, 10))  // leaves one node idle
		c.Submit(req("head", 4, 10, 10)) // blocked head
		c.Submit(req("small", 1, 2, 2))  // fits the idle node
		e.Run()
		return outcomeByID(t, c.Outcomes(), "small").Start, outcomeByID(t, c.Outcomes(), "head").Start
	}
	fcfsSmall, fcfsHead := run(Policy{})
	easySmall, easyHead := run(Policy{Backfill: EasyBackfill})
	if fcfsSmall != 20 {
		t.Errorf("FCFS small start = %d, want 20 (behind head)", fcfsSmall)
	}
	if easySmall != 0 {
		t.Errorf("EASY small start = %d, want 0 (backfilled)", easySmall)
	}
	if easyHead != fcfsHead {
		t.Errorf("backfilling delayed the head: %d vs %d", easyHead, fcfsHead)
	}
}

func TestEasyRefusesDelayingHead(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 4, Policy{Backfill: EasyBackfill})
	c.Submit(req("big", 3, 10, 10))
	c.Submit(req("head", 4, 10, 10))
	c.Submit(req("long", 1, 50, 50)) // would push the head past its shadow
	e.Run()
	long := outcomeByID(t, c.Outcomes(), "long")
	head := outcomeByID(t, c.Outcomes(), "head")
	if head.Start != 10 {
		t.Errorf("head start = %d, want 10", head.Start)
	}
	if long.Start < head.Start {
		t.Errorf("long backfilled at %d, delaying head", long.Start)
	}
}

func TestConservativeBackfill(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 4, Policy{Backfill: ConservativeBackfill})
	c.Submit(req("big", 3, 10, 10))
	c.Submit(req("head", 4, 10, 10))
	c.Submit(req("small", 1, 2, 2))
	e.Run()
	small := outcomeByID(t, c.Outcomes(), "small")
	head := outcomeByID(t, c.Outcomes(), "head")
	if small.Start != 0 {
		t.Errorf("small start = %d, want 0", small.Start)
	}
	if head.Start != 10 {
		t.Errorf("head start = %d, want 10", head.Start)
	}
}

func TestLWFReordersQueue(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{Discipline: LWF})
	c.Submit(req("runner", 1, 10, 10)) // starts immediately
	c.Submit(req("big", 1, 50, 50))
	c.Submit(req("small", 1, 2, 2))
	e.Run()
	small := outcomeByID(t, c.Outcomes(), "small")
	big := outcomeByID(t, c.Outcomes(), "big")
	if small.Start != 10 {
		t.Errorf("small start = %d, want 10 (jumped ahead)", small.Start)
	}
	if big.Start != 12 {
		t.Errorf("big start = %d, want 12", big.Start)
	}
}

func TestPriorityDiscipline(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{Discipline: Priority})
	c.Submit(req("runner", 1, 10, 10)) // occupies the node
	lo := req("low", 1, 5, 5)
	hi := req("high", 1, 5, 5)
	hi.Priority = 10
	c.Submit(lo)
	c.Submit(hi)
	e.Run()
	if got := outcomeByID(t, c.Outcomes(), "high").Start; got != 10 {
		t.Errorf("high-priority start = %d, want 10", got)
	}
	if got := outcomeByID(t, c.Outcomes(), "low").Start; got != 15 {
		t.Errorf("low-priority start = %d, want 15", got)
	}
}

func TestDynamicPriorityBump(t *testing.T) {
	// §5: a user raising the price they pay re-orders the queue while
	// their job waits.
	e := sim.New()
	c := NewCluster(e, 1, Policy{Discipline: Priority})
	c.Submit(req("runner", 1, 10, 10))
	c.Submit(req("first", 1, 5, 5))
	c.Submit(req("second", 1, 5, 5))
	e.At(3, "bump", func() {
		if !c.SetPriority("second", 100) {
			t.Error("SetPriority did not find the queued job")
		}
	})
	e.Run()
	if got := outcomeByID(t, c.Outcomes(), "second").Start; got != 10 {
		t.Errorf("bumped job start = %d, want 10", got)
	}
	if got := outcomeByID(t, c.Outcomes(), "first").Start; got != 15 {
		t.Errorf("displaced job start = %d, want 15", got)
	}
}

func TestSetPriorityOnRunningJobFails(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{Discipline: Priority})
	c.Submit(req("r", 1, 5, 5)) // starts immediately
	if c.SetPriority("r", 9) {
		t.Error("SetPriority succeeded on a running job")
	}
	if c.SetPriority("ghost", 9) {
		t.Error("SetPriority succeeded on an unknown job")
	}
	e.Run()
}

func TestPriorityPolicyName(t *testing.T) {
	if got := (Policy{Discipline: Priority}).Name(); got != "PRIO" {
		t.Errorf("Name = %q", got)
	}
	if got := (Policy{Discipline: Priority, Backfill: EasyBackfill}).Name(); got != "PRIO+easy-backfill" {
		t.Errorf("Name = %q", got)
	}
}

func TestReservationBlocksQueue(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 2, Policy{})
	if !c.SubmitReservation(req("res", 2, 10, 10), 5) {
		t.Fatal("reservation rejected")
	}
	c.Submit(req("j", 2, 8, 8)) // would overlap [5,15): must wait until 15
	e.Run()
	j := outcomeByID(t, c.Outcomes(), "j")
	if j.Start != 15 {
		t.Errorf("job start = %d, want 15 (after the reservation)", j.Start)
	}
	res := outcomeByID(t, c.Outcomes(), "res")
	if res.Start != 5 || !res.Reserved {
		t.Errorf("reservation outcome = %+v", res)
	}
}

func TestShortJobSlipsBeforeReservation(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 2, Policy{})
	if !c.SubmitReservation(req("res", 2, 10, 10), 5) {
		t.Fatal("reservation rejected")
	}
	c.Submit(req("quick", 2, 5, 5)) // fits exactly in [0,5)
	e.Run()
	quick := outcomeByID(t, c.Outcomes(), "quick")
	if quick.Start != 0 {
		t.Errorf("quick start = %d, want 0", quick.Start)
	}
}

func TestConflictingReservationRejected(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 2, Policy{})
	if !c.SubmitReservation(req("r1", 2, 10, 10), 5) {
		t.Fatal("first reservation rejected")
	}
	if c.SubmitReservation(req("r2", 1, 10, 10), 8) {
		t.Error("overlapping reservation accepted beyond capacity")
	}
	if !c.SubmitReservation(req("r3", 2, 5, 5), 15) {
		t.Error("non-overlapping reservation rejected")
	}
	e.Run()
}

func TestPastReservationRejected(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 2, Policy{})
	e.At(10, "try", func() {
		if c.SubmitReservation(req("r", 1, 5, 5), 3) {
			t.Error("reservation in the past accepted")
		}
	})
	e.Run()
}

func TestForecastExactWhenRuntimesMatchWalltimes(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{})
	for i := 0; i < 5; i++ {
		c.Submit(req(fmt.Sprintf("j%d", i), 1, 10, 10))
	}
	e.Run()
	for _, o := range c.Outcomes() {
		if o.ForecastError() != 0 {
			t.Errorf("%s forecast error = %d with exact runtimes", o.ID, o.ForecastError())
		}
	}
}

func TestForecastErrorWithEarlyCompletions(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{})
	c.Submit(req("a", 1, 10, 4))
	c.Submit(req("b", 1, 10, 10))
	e.Run()
	b := outcomeByID(t, c.Outcomes(), "b")
	if b.ForecastStart != 10 || b.Start != 4 {
		t.Errorf("b forecast %d, start %d; want 10 and 4", b.ForecastStart, b.Start)
	}
	if b.ForecastError() != 6 {
		t.Errorf("forecast error = %d", b.ForecastError())
	}
}

func TestPolicyNames(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{Policy{}, "FCFS"},
		{Policy{Discipline: LWF}, "LWF"},
		{Policy{Backfill: EasyBackfill}, "FCFS+easy-backfill"},
		{Policy{Discipline: LWF, Backfill: ConservativeBackfill}, "LWF+conservative-backfill"},
	}
	for _, tt := range tests {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 2, Policy{})
	for _, bad := range []Request{
		req("too-big", 3, 5, 5),
		req("zero-nodes", 0, 5, 5),
		req("zero-wall", 1, 0, 5),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("request %q accepted", bad.ID)
				}
			}()
			c.Submit(bad)
		}()
	}
}

func TestGangTimeSlices(t *testing.T) {
	e := sim.New()
	g := NewGang(e, 1, 5)
	g.Submit(req("a", 1, 10, 10))
	g.Submit(req("b", 1, 10, 10))
	e.Run()
	a := outcomeByID(t, g.Outcomes(), "a")
	b := outcomeByID(t, g.Outcomes(), "b")
	if a.Start != 0 || a.End != 15 {
		t.Errorf("a = [%d,%d), want [0,15)", a.Start, a.End)
	}
	if b.Start != 5 || b.End != 20 {
		t.Errorf("b = [%d,%d), want [5,20)", b.Start, b.End)
	}
}

func TestGangPacksSameSlot(t *testing.T) {
	e := sim.New()
	g := NewGang(e, 2, 5)
	g.Submit(req("a", 1, 10, 10))
	g.Submit(req("b", 1, 10, 10))
	if g.SlotCount() != 1 {
		t.Fatalf("slots = %d, want 1 (both fit the machine)", g.SlotCount())
	}
	e.Run()
	for _, id := range []string{"a", "b"} {
		o := outcomeByID(t, g.Outcomes(), id)
		if o.Start != 0 || o.End != 10 {
			t.Errorf("%s = [%d,%d), want [0,10)", id, o.Start, o.End)
		}
	}
}

func TestGangMidQuantumCompletion(t *testing.T) {
	e := sim.New()
	g := NewGang(e, 1, 5)
	g.Submit(req("a", 1, 7, 7))
	e.Run()
	a := outcomeByID(t, g.Outcomes(), "a")
	if a.End != 7 {
		t.Errorf("a ends %d, want 7 (mid-quantum)", a.End)
	}
}

func TestGangIdleThenResume(t *testing.T) {
	e := sim.New()
	g := NewGang(e, 1, 5)
	g.Submit(req("a", 1, 5, 5))
	e.At(100, "late", func() { g.Submit(req("b", 1, 5, 5)) })
	e.Run()
	b := outcomeByID(t, g.Outcomes(), "b")
	if b.Start != 100 || b.End != 105 {
		t.Errorf("b = [%d,%d), want [100,105)", b.Start, b.End)
	}
}

// capacityRespected verifies that actual executions never exceed the
// cluster size at any instant.
func capacityRespected(outs []Outcome, capacity int) bool {
	var points []simtime.Time
	for _, o := range outs {
		points = append(points, o.Start)
	}
	for _, t := range points {
		used := 0
		for _, o := range outs {
			if o.Start <= t && t < o.End {
				used += o.Nodes
			}
		}
		if used > capacity {
			return false
		}
	}
	return true
}

func randomStream(r *rng.Source, n, maxNodes int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		wall := simtime.Time(r.IntBetween(2, 30))
		run := simtime.Time(float64(wall) * r.Float64Between(0.3, 1.0))
		if run < 1 {
			run = 1
		}
		reqs[i] = Request{
			ID:       fmt.Sprintf("j%d", i),
			Nodes:    r.IntBetween(1, maxNodes),
			Walltime: wall,
			Runtime:  run,
		}
	}
	return reqs
}

func runStream(policy Policy, capacity int, reqs []Request, gap simtime.Time) []Outcome {
	e := sim.New()
	c := NewCluster(e, capacity, policy)
	for i, r := range reqs {
		r := r
		e.At(simtime.Time(i)*gap, "submit", func() { c.Submit(r) })
	}
	e.Run()
	return c.Outcomes()
}

func meanWait(outs []Outcome) float64 {
	var sum float64
	for _, o := range outs {
		sum += float64(o.Wait())
	}
	return sum / float64(len(outs))
}

func TestBackfillingReducesMeanWait(t *testing.T) {
	// §5: "Backfilling decreases this [queue waiting] time."
	reqs := randomStream(rng.New(7), 200, 8)
	fcfs := runStream(Policy{}, 8, reqs, 2)
	easy := runStream(Policy{Backfill: EasyBackfill}, 8, reqs, 2)
	if len(fcfs) != 200 || len(easy) != 200 {
		t.Fatalf("lost jobs: %d, %d", len(fcfs), len(easy))
	}
	if meanWait(easy) >= meanWait(fcfs) {
		t.Errorf("easy mean wait %.2f not below FCFS %.2f", meanWait(easy), meanWait(fcfs))
	}
}

func TestQuickCapacityNeverExceeded(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		capacity := r.IntBetween(1, 8)
		reqs := randomStream(r, 40, capacity)
		policy := Policy{
			Discipline: Discipline(r.Intn(3)),
			Backfill:   Backfill(r.Intn(3)),
		}
		outs := runStream(policy, capacity, reqs, simtime.Time(r.IntBetween(1, 5)))
		if len(outs) != len(reqs) {
			return false // every job must eventually run
		}
		for _, o := range outs {
			if o.Start < o.Arrival || o.End <= o.Start {
				return false
			}
		}
		return capacityRespected(outs, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickGangCompletesEverything(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		capacity := r.IntBetween(1, 6)
		e := sim.New()
		g := NewGang(e, capacity, simtime.Time(r.IntBetween(1, 7)))
		n := r.IntBetween(1, 30)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("j%d", i)
			nodes := r.IntBetween(1, capacity)
			run := simtime.Time(r.IntBetween(1, 25))
			at := simtime.Time(r.Intn(50))
			e.At(at, "submit", func() {
				g.Submit(Request{ID: id, Nodes: nodes, Walltime: run, Runtime: run})
			})
		}
		e.Run()
		outs := g.Outcomes()
		if len(outs) != n {
			return false
		}
		for _, o := range outs {
			// A gang job can never finish before its runtime has elapsed
			// since first start.
			if o.End < o.Start+o.Runtime || o.Start < o.Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickFCFSRespectsArrivalOrderOnUniformJobs(t *testing.T) {
	// With identical node demands and no backfilling, FCFS must start jobs
	// in arrival order.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		e := sim.New()
		c := NewCluster(e, 2, Policy{})
		n := r.IntBetween(2, 20)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("j%d", i)
			wall := simtime.Time(r.IntBetween(1, 12))
			e.At(simtime.Time(i), "submit", func() {
				c.Submit(Request{ID: id, Nodes: 1, Walltime: wall, Runtime: wall})
			})
		}
		e.Run()
		outs := c.Outcomes()
		starts := map[string]simtime.Time{}
		for _, o := range outs {
			starts[o.ID] = o.Start
		}
		for i := 1; i < n; i++ {
			if starts[fmt.Sprintf("j%d", i)] < starts[fmt.Sprintf("j%d", i-1)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
