package batch

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simtime"
)

func TestProfileAvailability(t *testing.T) {
	p := newProfile(8)
	p.subtract(simtime.Interval{Start: 0, End: 10}, 3)
	p.subtract(simtime.Interval{Start: 5, End: 15}, 4)
	tests := []struct {
		t    simtime.Time
		want int
	}{
		{-1, 8}, {0, 5}, {4, 5}, {5, 1}, {9, 1}, {10, 4}, {14, 4}, {15, 8},
	}
	for _, tt := range tests {
		if got := p.availableAt(tt.t); got != tt.want {
			t.Errorf("availableAt(%d) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestProfileSubtractIgnoresDegenerate(t *testing.T) {
	p := newProfile(4)
	p.subtract(simtime.Interval{Start: 5, End: 5}, 2)
	p.subtract(simtime.Interval{Start: 5, End: 10}, 0)
	p.subtract(simtime.Interval{Start: 5, End: 10}, -3)
	if got := p.availableAt(6); got != 4 {
		t.Errorf("degenerate subtractions changed profile: %d", got)
	}
}

func TestProfileFitsAt(t *testing.T) {
	p := newProfile(4)
	p.subtract(simtime.Interval{Start: 10, End: 20}, 3)
	tests := []struct {
		t, dur simtime.Time
		nodes  int
		want   bool
	}{
		{0, 10, 4, true},   // ends exactly when the load starts
		{0, 11, 4, false},  // overlaps one tick of the loaded window
		{10, 5, 1, true},   // fits beside the load
		{10, 5, 2, false},  // too wide beside the load
		{15, 10, 2, false}, // starts inside, ends outside
		{20, 10, 4, true},  // after the load
		{0, 5, 5, false},   // more nodes than capacity
	}
	for _, tt := range tests {
		if got := p.fitsAt(tt.t, tt.dur, tt.nodes); got != tt.want {
			t.Errorf("fitsAt(%d,%d,%d) = %v, want %v", tt.t, tt.dur, tt.nodes, got, tt.want)
		}
	}
}

func TestProfileEarliestFit(t *testing.T) {
	p := newProfile(4)
	p.subtract(simtime.Interval{Start: 0, End: 10}, 4)
	p.subtract(simtime.Interval{Start: 10, End: 20}, 2)
	tests := []struct {
		after, dur simtime.Time
		nodes      int
		want       simtime.Time
	}{
		{0, 5, 1, 10},
		{0, 5, 2, 10},
		{0, 5, 3, 20},
		{12, 3, 2, 12},
		{25, 5, 4, 25},
	}
	for _, tt := range tests {
		got, ok := p.earliestFit(tt.after, tt.dur, tt.nodes)
		if !ok || got != tt.want {
			t.Errorf("earliestFit(%d,%d,%d) = (%d,%v), want %d", tt.after, tt.dur, tt.nodes, got, ok, tt.want)
		}
	}
	if _, ok := p.earliestFit(0, 5, 5); ok {
		t.Error("fit beyond capacity accepted")
	}
}

func TestProfileShadow(t *testing.T) {
	// Head needs 4 nodes for 10; the machine runs 3 nodes until t=10.
	p := newProfile(4)
	p.subtract(simtime.Interval{Start: 0, End: 10}, 3)
	shadowTime, extra := p.shadow(0, 10, 4)
	if shadowTime != 10 {
		t.Errorf("shadow time = %d, want 10", shadowTime)
	}
	if extra != 0 {
		t.Errorf("extra = %d, want 0", extra)
	}
}

func TestQuickEarliestFitIsEarliestAndFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cap := r.IntBetween(1, 6)
		p := newProfile(cap)
		for i := 0; i < r.Intn(8); i++ {
			s := simtime.Time(r.Intn(40))
			p.subtract(simtime.Interval{Start: s, End: s + simtime.Time(r.IntBetween(1, 10))},
				r.IntBetween(1, cap))
		}
		after := simtime.Time(r.Intn(20))
		dur := simtime.Time(r.IntBetween(1, 8))
		nodes := r.IntBetween(1, cap)
		got, ok := p.earliestFit(after, dur, nodes)
		if !ok {
			return false // within capacity there is always a fit eventually
		}
		if got < after || !p.fitsAt(got, dur, nodes) {
			return false
		}
		// No earlier integer start fits.
		for cand := after; cand < got; cand++ {
			if p.fitsAt(cand, dur, nodes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnCompleteCallback(t *testing.T) {
	e := sim.New()
	c := NewCluster(e, 1, Policy{})
	var got []Outcome
	c.OnComplete = func(o Outcome) { got = append(got, o) }
	c.Submit(req("a", 1, 4, 4))
	c.Submit(req("b", 1, 3, 3))
	e.Run()
	if len(got) != 2 {
		t.Fatalf("callbacks = %d, want 2", len(got))
	}
	if got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("callback order: %s, %s", got[0].ID, got[1].ID)
	}
}
