package jobio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJobs ensures arbitrary input can never panic the decoder: it
// must either error out or produce jobs that round-trip.
func FuzzReadJobs(f *testing.F) {
	f.Add(`[{"name":"x","deadline":9,"tasks":[{"name":"A","baseTime":1,"volume":2}],"edges":[]}]`)
	f.Add(`[]`)
	f.Add(`[{"name":"x","tasks":[{"name":"A","baseTime":1},{"name":"B","baseTime":2}],` +
		`"edges":[{"name":"e","from":"A","to":"B","baseTime":1}]}]`)
	f.Add(`not json at all`)
	f.Add(`[{"tasks":[{"name":"A","baseTime":-4}]}]`)
	// Malformed submissions the service must reject without panicking:
	// duplicate task names, dangling edge endpoints, self-loops, negative
	// weights and deadlines, and overflow-scale values.
	f.Add(`[{"name":"dup","tasks":[{"name":"A","baseTime":1,"volume":1},{"name":"A","baseTime":1,"volume":1}]}]`)
	f.Add(`[{"name":"dangle","tasks":[{"name":"A","baseTime":1,"volume":1}],` +
		`"edges":[{"name":"e","from":"A","to":"ghost","baseTime":1,"volume":1}]}]`)
	f.Add(`[{"name":"loop","tasks":[{"name":"A","baseTime":1,"volume":1}],` +
		`"edges":[{"name":"e","from":"A","to":"A","baseTime":1,"volume":1}]}]`)
	f.Add(`[{"name":"neg","deadline":-7,"tasks":[{"name":"A","baseTime":1,"volume":-3}]}]`)
	f.Add(`[{"name":"big","deadline":9223372036854775807,` +
		`"tasks":[{"name":"A","baseTime":9223372036854775807,"volume":9223372036854775807}]}]`)
	f.Add(`[{"name":"zerovol","tasks":[{"name":"A","baseTime":2,"volume":0}]}]`)
	f.Add(`[{"name":"empty-name","tasks":[{"name":"","baseTime":1,"volume":1}]}]`)
	// Journal-record shapes: the write-ahead journal embeds the wire job in
	// {"crc":N,"rec":{...,"wire":<job>}} envelopes, so crash recovery can
	// feed envelope fragments and CRC-framed payloads into this decoder.
	f.Add(`{"crc":1234567890,"rec":{"lsn":1,"job":"j0","state":"queued","strategy":"S1",` +
		`"wire":{"name":"j0","deadline":60,"tasks":[{"name":"A","baseTime":2,"volume":10}]}}}`)
	f.Add(`[{"name":"j0","deadline":60,"tasks":[{"name":"A","baseTime":2,"volume":10},` +
		`{"name":"B","baseTime":3,"volume":15}],"edges":[{"name":"d","from":"A","to":"B","baseTime":1,"volume":5}]}]`)
	f.Add(`{"lsn":18446744073709551615,"job":"wrap","state":"completed"}`)
	f.Add(`{"crc":0,"rec":`) // torn tail: envelope cut mid-payload
	f.Fuzz(func(t *testing.T, in string) {
		jobs, err := ReadJobs(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, j := range jobs {
			var buf bytes.Buffer
			if err := WriteJobs(&buf, []Job{FromJob(j)}); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			back, err := ReadJobs(&buf)
			if err != nil {
				t.Fatalf("round trip failed: %v", err)
			}
			if len(back) != 1 || back[0].NumTasks() != j.NumTasks() {
				t.Fatal("round trip changed the job")
			}
		}
	})
}
