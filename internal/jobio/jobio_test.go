package jobio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/workload"
)

func TestJobRoundTrip(t *testing.T) {
	b := dag.NewBuilder("rt").Deadline(42)
	b.Task("A", 2, 10)
	b.Task("B", 3, 20)
	b.Edge("e", "A", "B", 1, 5)
	orig := b.MustBuild()

	wire := FromJob(orig)
	back, err := wire.ToJob()
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Deadline != orig.Deadline {
		t.Errorf("metadata lost: %s/%d", back.Name, back.Deadline)
	}
	if back.NumTasks() != orig.NumTasks() || back.NumEdges() != orig.NumEdges() {
		t.Errorf("shape lost: %d/%d", back.NumTasks(), back.NumEdges())
	}
	for i := 0; i < orig.NumTasks(); i++ {
		if orig.Task(dag.TaskID(i)) != back.Task(dag.TaskID(i)) {
			t.Errorf("task %d differs", i)
		}
	}
}

func TestToJobValidation(t *testing.T) {
	cases := []struct {
		name string
		job  Job
	}{
		{"no tasks", Job{Name: "x"}},
		{"bad task time", Job{Name: "x", Tasks: []Task{{Name: "A", BaseTime: 0, Volume: 1}}}},
		{"unknown edge endpoint", Job{Name: "x",
			Tasks: []Task{{Name: "A", BaseTime: 1, Volume: 1}},
			Edges: []Edge{{Name: "e", From: "A", To: "Z", BaseTime: 1}}}},
		{"cycle", Job{Name: "x",
			Tasks: []Task{{Name: "A", BaseTime: 1}, {Name: "B", BaseTime: 1}},
			Edges: []Edge{{Name: "e1", From: "A", To: "B", BaseTime: 1},
				{Name: "e2", From: "B", To: "A", BaseTime: 1}}}},
		{"duplicate task", Job{Name: "x",
			Tasks: []Task{{Name: "A", BaseTime: 1}, {Name: "A", BaseTime: 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.job.ToJob(); err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
		})
	}
}

func TestValidatePreciseErrors(t *testing.T) {
	// Each malformed wire job must be rejected with an error that names the
	// offending task or edge — the service relays these verbatim to clients.
	task := func(name string) Task { return Task{Name: name, BaseTime: 1, Volume: 1} }
	cases := []struct {
		name string
		job  Job
		want string
	}{
		{"negative deadline", Job{Name: "x", Deadline: -1, Tasks: []Task{task("A")}}, "negative deadline"},
		{"empty task name", Job{Name: "x", Tasks: []Task{{BaseTime: 1, Volume: 1}}}, "empty name"},
		{"duplicate task", Job{Name: "x", Tasks: []Task{task("A"), task("A")}}, `duplicate task name "A"`},
		{"zero base time", Job{Name: "x", Tasks: []Task{{Name: "A", Volume: 1}}}, `task "A" has non-positive base time`},
		{"negative base time", Job{Name: "x", Tasks: []Task{{Name: "A", BaseTime: -2, Volume: 1}}}, `task "A" has non-positive base time`},
		{"zero volume", Job{Name: "x", Tasks: []Task{{Name: "A", BaseTime: 1}}}, `task "A" has non-positive volume`},
		{"dangling from", Job{Name: "x", Tasks: []Task{task("A")},
			Edges: []Edge{{Name: "e", From: "Z", To: "A"}}}, `edge "e" references unknown task "Z"`},
		{"dangling to", Job{Name: "x", Tasks: []Task{task("A")},
			Edges: []Edge{{Name: "e", From: "A", To: "Z"}}}, `edge "e" references unknown task "Z"`},
		{"self loop", Job{Name: "x", Tasks: []Task{task("A")},
			Edges: []Edge{{Name: "e", From: "A", To: "A"}}}, "self-loop"},
		{"negative edge time", Job{Name: "x", Tasks: []Task{task("A"), task("B")},
			Edges: []Edge{{Name: "e", From: "A", To: "B", BaseTime: -1}}}, `edge "e" has negative base time`},
		{"negative edge volume", Job{Name: "x", Tasks: []Task{task("A"), task("B")},
			Edges: []Edge{{Name: "e", From: "A", To: "B", Volume: -1}}}, `edge "e" has negative volume`},
		{"unnamed edge", Job{Name: "x", Tasks: []Task{task("A")},
			Edges: []Edge{{From: "A", To: "Z"}}}, `edge "#0" references unknown task "Z"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.job.Validate()
			if err == nil {
				t.Fatalf("accepted malformed job")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, err := tc.job.ToJob(); err == nil {
				t.Errorf("ToJob accepted what Validate rejected")
			}
		})
	}
}

func TestJobsStreamRoundTrip(t *testing.T) {
	gen := workload.New(workload.Default(3))
	var wire []Job
	for i := 0; i < 5; i++ {
		wire = append(wire, FromJob(gen.Job(i)))
	}
	var buf bytes.Buffer
	if err := WriteJobs(&buf, wire); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Fatalf("read %d jobs", len(jobs))
	}
	for i, j := range jobs {
		orig := gen.Job(i)
		if j.NumTasks() != orig.NumTasks() || j.Deadline != orig.Deadline {
			t.Errorf("job %d mismatch", i)
		}
	}
}

func TestReadJobsRejectsGarbage(t *testing.T) {
	if _, err := ReadJobs(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJobs(strings.NewReader(`[{"name":"x","tasks":[]}]`)); err == nil {
		t.Error("empty job accepted")
	}
}

func TestEnvironmentRoundTrip(t *testing.T) {
	gen := workload.New(workload.Default(7))
	env := gen.Environment(2)
	var buf bytes.Buffer
	if err := WriteEnvironment(&buf, env); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEnvironment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != env.NumNodes() {
		t.Fatalf("nodes %d vs %d", back.NumNodes(), env.NumNodes())
	}
	for i, n := range env.Nodes() {
		bn := back.Nodes()[i]
		if bn.Perf != n.Perf || bn.Domain != n.Domain || bn.Name != n.Name {
			t.Errorf("node %d differs", i)
		}
	}
}

func TestToEnvironmentValidation(t *testing.T) {
	if _, err := ToEnvironment(nil); err == nil {
		t.Error("empty environment accepted")
	}
	if _, err := ToEnvironment([]Node{{Name: "bad", Perf: 2.0}}); err == nil {
		t.Error("performance > 1 accepted")
	}
}

func TestQuickWorkloadRoundTrip(t *testing.T) {
	// Any generated job survives a JSON round trip bit-exactly in its
	// scheduling-relevant fields.
	f := func(seed uint64, idx uint8) bool {
		gen := workload.New(workload.Default(seed))
		orig := gen.Job(int(idx))
		back, err := FromJob(orig).ToJob()
		if err != nil {
			return false
		}
		if back.NumTasks() != orig.NumTasks() || back.NumEdges() != orig.NumEdges() ||
			back.Deadline != orig.Deadline {
			return false
		}
		for i := 0; i < orig.NumTasks(); i++ {
			if orig.Task(dag.TaskID(i)) != back.Task(dag.TaskID(i)) {
				return false
			}
		}
		origEdges, backEdges := orig.Edges(), back.Edges()
		for i := range origEdges {
			if origEdges[i] != backEdges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
