package scalereport

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Report {
	return &Report{
		Schema: Schema,
		Config: RunConfig{
			Mode: "inprocess", Arrival: "poisson", Strategy: "S1", Seed: 1,
			Jobs: 100, QueueCap: 64, Domains: 2, Burst: 16, Proc: 12,
			Priorities: 3, MeanInterarrival: 12,
		},
		Deterministic: Deterministic{
			Submitted: 100, Accepted: 98, Completed: 60, Rejected: 20,
			Shed: 5, Overloaded: 2, Drained: 18, ClientAccepted: 98,
			Client429: 2, QueueHighWater: 64, EngineTicks: 500,
			GoodputPerKTicks: 120,
			TerminalByState:  map[string]uint64{"completed": 60, "rejected": 20, "drained": 18},
		},
		Wall: WallClock{
			ElapsedSeconds: 1.5, GoodputJobsPerSec: 40,
			AdmissionP50: 0.01, AdmissionP99: 0.1,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	r := sample()
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := CompareDeterministic(got, r); len(diffs) != 0 {
		t.Errorf("round trip diverged: %v", diffs)
	}
	if got.Wall != r.Wall {
		t.Errorf("wall section diverged: %+v vs %+v", got.Wall, r.Wall)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON loaded")
	}
	wrongSchema := filepath.Join(dir, "schema.json")
	os.WriteFile(wrongSchema, []byte(`{"schema":"gridload/v0"}`), 0o644)
	if _, err := Load(wrongSchema); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema: err = %v", err)
	}
}

func TestCompareDeterministic(t *testing.T) {
	a, b := sample(), sample()
	if diffs := CompareDeterministic(a, b); len(diffs) != 0 {
		t.Fatalf("identical reports diff: %v", diffs)
	}
	// Config drift short-circuits with a single loud message.
	b.Config.Seed = 2
	if diffs := CompareDeterministic(a, b); len(diffs) != 1 || !strings.Contains(diffs[0], "config differs") {
		t.Errorf("config drift: %v", diffs)
	}
	// Field drift names the field.
	b = sample()
	b.Deterministic.Completed = 59
	b.Deterministic.GoodputPerKTicks = 118
	diffs := CompareDeterministic(a, b)
	if len(diffs) != 2 {
		t.Fatalf("want 2 diffs, got %v", diffs)
	}
	if !strings.Contains(diffs[0], "completed") || !strings.Contains(diffs[1], "goodputPerKTicks") {
		t.Errorf("diff messages: %v", diffs)
	}
	// Terminal-state drift, including states present on only one side.
	b = sample()
	delete(b.Deterministic.TerminalByState, "drained")
	b.Deterministic.TerminalByState["failed"] = 1
	diffs = CompareDeterministic(a, b)
	if len(diffs) != 2 {
		t.Errorf("terminal map drift: %v", diffs)
	}
}

func TestGateWall(t *testing.T) {
	opt := GateOptions{MinGoodputRatio: 0.5, MaxP99Ratio: 2, P99FloorSeconds: 0.05}
	base := sample()

	// Exactly at both bounds: passes (bounds are inclusive).
	cur := sample()
	cur.Wall.GoodputJobsPerSec = base.Wall.GoodputJobsPerSec * 0.5
	cur.Wall.AdmissionP99 = base.Wall.AdmissionP99 * 2
	if fails := GateWall(cur, base, opt); len(fails) != 0 {
		t.Errorf("boundary run failed: %v", fails)
	}
	// Goodput just below the floor fails.
	cur.Wall.GoodputJobsPerSec = base.Wall.GoodputJobsPerSec*0.5 - 0.01
	fails := GateWall(cur, base, opt)
	if len(fails) != 1 || !strings.Contains(fails[0], "goodput") {
		t.Errorf("goodput regression not caught: %v", fails)
	}
	// p99 above ratio AND floor fails.
	cur = sample()
	cur.Wall.AdmissionP99 = 0.25
	fails = GateWall(cur, base, opt)
	if len(fails) != 1 || !strings.Contains(fails[0], "tail-latency") {
		t.Errorf("p99 regression not caught: %v", fails)
	}
	// A p99 under the noise floor never fails, even vs a tiny baseline.
	base.Wall.AdmissionP99 = 0.0001
	cur.Wall.AdmissionP99 = 0.04
	if fails := GateWall(cur, base, opt); len(fails) != 0 {
		t.Errorf("sub-floor p99 failed the gate: %v", fails)
	}
	// A zero-goodput baseline (e.g. an all-drained scenario) gates nothing.
	base = sample()
	base.Wall.GoodputJobsPerSec = 0
	cur = sample()
	cur.Wall.GoodputJobsPerSec = 0
	if fails := GateWall(cur, base, opt); len(fails) != 0 {
		t.Errorf("zero-goodput baseline failed: %v", fails)
	}
}

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	s := []float64{5, 1, 4, 2, 3}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.99, 5}, {0.2, 1},
	}
	for _, c := range cases {
		if got := Percentile(s, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated (callers keep their sample slices).
	if s[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}
