// Package scalereport defines the BENCH_scale.json artifact emitted by
// cmd/gridload and the regression comparisons cmd/scalecheck applies to
// it in CI.
//
// The report is split into two sections with different comparison rules:
//
//   - Deterministic holds everything that is a pure function of the run's
//     seed and configuration on the in-process path (admission counts,
//     terminal states, model-time goodput). Two runs with the same seed
//     must agree byte-for-byte here, and a baseline diff is an exact
//     diff: any change is a behavioral regression (or an intentional
//     scheduler change that must re-commit the baseline).
//   - Wall holds wall-clock measurements (latency percentiles, jobs per
//     second). These vary run to run and machine to machine, so the gate
//     compares them against the baseline with per-metric tolerances.
package scalereport

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema identifies the artifact version.
const Schema = "gridload/v1"

// Report is the whole BENCH_scale.json document.
type Report struct {
	Schema        string        `json:"schema"`
	Config        RunConfig     `json:"config"`
	Deterministic Deterministic `json:"deterministic"`
	Wall          WallClock     `json:"wallClock"`
}

// RunConfig echoes the generator configuration that produced the run, so
// a baseline diff against a differently-shaped run fails loudly instead
// of comparing apples to oranges.
type RunConfig struct {
	Mode             string  `json:"mode"` // "inprocess" or "http"
	Arrival          string  `json:"arrival"`
	Strategy         string  `json:"strategy"`
	Seed             uint64  `json:"seed"`
	Jobs             int     `json:"jobs"`
	QueueCap         int     `json:"queueCap"`
	Domains          int     `json:"domains"`
	Burst            int     `json:"burst"`
	Proc             int     `json:"proc"`
	Priorities       int     `json:"priorities"`
	MeanInterarrival float64 `json:"meanInterarrival"`
	// Placers is the concurrent optimistic-placement width (0/1 =
	// classic single-writer placement). Absent in pre-placer baselines,
	// which unmarshal to 0 and stay comparable.
	Placers int `json:"placers,omitempty"`
}

// Deterministic is the seed-reproducible section (see the package doc).
type Deterministic struct {
	Submitted  uint64 `json:"submitted"`
	Accepted   uint64 `json:"accepted"`
	Completed  uint64 `json:"completed"`
	Rejected   uint64 `json:"rejected"`
	Shed       uint64 `json:"shed"`
	Infeasible uint64 `json:"infeasible"`
	Overloaded uint64 `json:"overloaded"`
	Drained    uint64 `json:"drained"`

	// Client-observed admission outcomes (from SubmitError codes in
	// process, HTTP statuses over the wire).
	ClientAccepted int `json:"clientAccepted"`
	Client429      int `json:"client429"`
	Client503      int `json:"client503"`
	// RetryAfterViolations counts backpressure rejections whose retry
	// hint was missing or non-positive; the contract keeps this at 0.
	RetryAfterViolations int `json:"retryAfterViolations"`

	// TerminalByState tallies the terminal-state stream.
	TerminalByState map[string]uint64 `json:"terminalByState"`

	QueueHighWater int   `json:"queueHighWater"`
	EngineTicks    int64 `json:"engineTicks"`
	// GoodputPerKTicks is completed jobs per 1000 model ticks — the
	// scheduler's deterministic goodput, independent of host speed.
	GoodputPerKTicks float64 `json:"goodputPerKTicks"`

	// Optimistic-placement arbiter tallies (zero with placers ≤ 1, and
	// absent from pre-placer baselines). The commit order is
	// deterministic, so these are seed-reproducible like everything
	// else in this section.
	PlacerCommits   uint64 `json:"placerCommits,omitempty"`
	PlacerConflicts uint64 `json:"placerConflicts,omitempty"`
	PlacerRetries   uint64 `json:"placerRetries,omitempty"`
}

// WallClock is the host-dependent section, gated with tolerances.
type WallClock struct {
	ElapsedSeconds    float64 `json:"elapsedSeconds"`
	GoodputJobsPerSec float64 `json:"goodputJobsPerSec"`

	// Admission latency (time in the queue) percentiles in seconds,
	// estimated from the service histogram's fixed buckets.
	AdmissionP50  float64 `json:"admissionP50"`
	AdmissionP95  float64 `json:"admissionP95"`
	AdmissionP99  float64 `json:"admissionP99"`
	AdmissionP999 float64 `json:"admissionP999"`

	// Client-observed end-to-end submit latency percentiles in seconds
	// (exact, from the raw sample set).
	ClientP50  float64 `json:"clientP50"`
	ClientP95  float64 `json:"clientP95"`
	ClientP99  float64 `json:"clientP99"`
	ClientP999 float64 `json:"clientP999"`

	// Backoff behavior when honoring Retry-After (HTTP mode).
	BackoffRetries int     `json:"backoffRetries"`
	BackoffSeconds float64 `json:"backoffSeconds"`
}

// Load reads and validates one report.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Write marshals the report to path (indented, trailing newline).
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareDeterministic diffs the seed-reproducible sections of two
// reports exactly — config shape first, then every deterministic field —
// and returns one message per mismatch. An empty slice means identical.
func CompareDeterministic(cur, base *Report) []string {
	var diffs []string
	add := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }
	if cur.Config != base.Config {
		add("config differs: %+v vs %+v — regenerate the baseline with matching flags", cur.Config, base.Config)
		return diffs
	}
	a, b := cur.Deterministic, base.Deterministic
	cmp := func(name string, got, want any) {
		if got != want {
			add("%s: %v, baseline %v", name, got, want)
		}
	}
	cmp("submitted", a.Submitted, b.Submitted)
	cmp("accepted", a.Accepted, b.Accepted)
	cmp("completed", a.Completed, b.Completed)
	cmp("rejected", a.Rejected, b.Rejected)
	cmp("shed", a.Shed, b.Shed)
	cmp("infeasible", a.Infeasible, b.Infeasible)
	cmp("overloaded", a.Overloaded, b.Overloaded)
	cmp("drained", a.Drained, b.Drained)
	cmp("clientAccepted", a.ClientAccepted, b.ClientAccepted)
	cmp("client429", a.Client429, b.Client429)
	cmp("client503", a.Client503, b.Client503)
	cmp("retryAfterViolations", a.RetryAfterViolations, b.RetryAfterViolations)
	cmp("queueHighWater", a.QueueHighWater, b.QueueHighWater)
	cmp("engineTicks", a.EngineTicks, b.EngineTicks)
	cmp("goodputPerKTicks", a.GoodputPerKTicks, b.GoodputPerKTicks)
	cmp("placerCommits", a.PlacerCommits, b.PlacerCommits)
	cmp("placerConflicts", a.PlacerConflicts, b.PlacerConflicts)
	cmp("placerRetries", a.PlacerRetries, b.PlacerRetries)
	keys := map[string]bool{}
	for k := range a.TerminalByState {
		keys[k] = true
	}
	for k := range b.TerminalByState {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if a.TerminalByState[k] != b.TerminalByState[k] {
			add("terminalByState[%s]: %d, baseline %d", k, a.TerminalByState[k], b.TerminalByState[k])
		}
	}
	return diffs
}

// GateOptions are the wall-clock tolerance knobs.
type GateOptions struct {
	// MinGoodputRatio fails when the current jobs/sec drops below
	// baseline × ratio. Generous by default: CI runners are slower and
	// noisier than wherever the baseline was recorded.
	MinGoodputRatio float64
	// MaxP99Ratio fails when the current admission p99 exceeds
	// baseline × ratio AND the absolute floor below.
	MaxP99Ratio float64
	// P99FloorSeconds absorbs sub-floor noise: a p99 under the floor
	// never fails the gate no matter the ratio.
	P99FloorSeconds float64
}

// DefaultGate returns the CI tolerances.
func DefaultGate() GateOptions {
	return GateOptions{MinGoodputRatio: 0.2, MaxP99Ratio: 5, P99FloorSeconds: 0.05}
}

// GateWall applies the tolerance gate to the wall-clock section and
// returns one message per violated bound.
func GateWall(cur, base *Report, opt GateOptions) []string {
	var fails []string
	if base.Wall.GoodputJobsPerSec > 0 {
		floor := base.Wall.GoodputJobsPerSec * opt.MinGoodputRatio
		if cur.Wall.GoodputJobsPerSec < floor {
			fails = append(fails, fmt.Sprintf(
				"goodput regression: %.1f jobs/s < %.1f (baseline %.1f × ratio %.2f)",
				cur.Wall.GoodputJobsPerSec, floor, base.Wall.GoodputJobsPerSec, opt.MinGoodputRatio))
		}
	}
	if p99 := cur.Wall.AdmissionP99; p99 > opt.P99FloorSeconds {
		ceil := base.Wall.AdmissionP99 * opt.MaxP99Ratio
		if ceil < opt.P99FloorSeconds {
			ceil = opt.P99FloorSeconds
		}
		if p99 > ceil {
			fails = append(fails, fmt.Sprintf(
				"tail-latency regression: admission p99 %.4fs > %.4fs (baseline %.4fs × ratio %.1f, floor %.3fs)",
				p99, ceil, base.Wall.AdmissionP99, opt.MaxP99Ratio, opt.P99FloorSeconds))
		}
	}
	return fails
}

// Percentile returns the exact q-th percentile (0 ≤ q ≤ 1) of samples by
// sorting a copy; 0 when the sample set is empty. The nearest-rank method
// keeps it deterministic for a fixed sample multiset.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
