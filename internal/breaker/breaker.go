// Package breaker implements a per-resource circuit breaker: the service
// layer's "stop sending work there" rung on top of the metascheduler's
// retry → fallback → reallocate recovery ladder (see internal/metasched).
//
// One Breaker guards one resource — here, a job-manager domain. It is a
// three-state machine over consecutive failure observations:
//
//	closed    — healthy; work flows, consecutive failures are counted.
//	open      — quarantined after Threshold consecutive failures; all work
//	            is vetoed until the open window expires. Each consecutive
//	            trip doubles the window (seeded-jitter exponential backoff,
//	            shared with the recovery ladder via faults.ExpBackoff and
//	            faults.Jitter), so a persistently bad domain is probed
//	            geometrically less often.
//	half-open — the window expired; a single probe job is allowed through.
//	            ProbeSuccesses consecutive successes close the breaker and
//	            reset the trip count; any failure re-opens it with the next
//	            larger window.
//
// Time is the caller's model time (simtime.Time): in the in-process
// simulation the breaker advances with the engine clock, which keeps every
// transition deterministic and replayable. Breakers are safe for
// concurrent use — the federation router drives per-shard breakers from
// concurrent heartbeat and handoff handlers — and a sequential caller
// (the engine goroutine) observes exactly the unlocked behavior, so the
// deterministic simulation stays byte-identical.
package breaker

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// State is a breaker's position in the quarantine cycle.
type State int

// The breaker states.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config tunes the breaker. The zero value is usable: every field falls
// back to its default.
type Config struct {
	// Threshold is the number of consecutive failures that trips a closed
	// breaker open. Default 5.
	Threshold int
	// OpenBase is the first open window's length in model ticks; trip k
	// holds OpenBase·2^(k−1), capped at OpenMax. Default 64.
	OpenBase simtime.Time
	// OpenMax caps the exponential open window. Default 4096.
	OpenMax simtime.Time
	// JitterFrac spreads each open window by ±frac (seeded, deterministic)
	// so breakers tripped by one shared outage do not re-probe in
	// lock-step. Zero disables jitter.
	JitterFrac float64
	// ProbeSuccesses is the number of consecutive half-open successes that
	// close the breaker again. Default 1.
	ProbeSuccesses int
	// Seed drives the jitter stream. Breakers created via a Set derive a
	// per-name stream from it, so a fleet of domains jitters independently
	// but reproducibly.
	Seed uint64

	// Telemetry, when non-nil, exports each breaker's trips, observed
	// failures and current state as grid_breaker_* series labelled by the
	// breaker name. The handles are acquired once at New, so a state
	// transition costs one atomic op; nil disables export entirely.
	Telemetry *telemetry.Registry
}

func (c Config) threshold() int {
	if c.Threshold <= 0 {
		return 5
	}
	return c.Threshold
}

func (c Config) openBase() simtime.Time {
	if c.OpenBase <= 0 {
		return 64
	}
	return c.OpenBase
}

func (c Config) openMax() simtime.Time {
	if c.OpenMax <= 0 {
		return 4096
	}
	return c.OpenMax
}

func (c Config) probeSuccesses() int {
	if c.ProbeSuccesses <= 0 {
		return 1
	}
	return c.ProbeSuccesses
}

// Breaker guards one resource. Create with New or through a Set.
type Breaker struct {
	name string
	cfg  Config
	r    *rng.Source

	mu       sync.Mutex
	state    State
	fails    int          // consecutive failures while closed
	trips    int          // consecutive open episodes (resets on close)
	until    simtime.Time // open window expiry
	probes   int          // consecutive half-open successes
	inflight bool         // a half-open probe is outstanding

	// Stats.
	totalTrips    int
	totalFailures int

	// Telemetry handles, acquired once at New; all nil (and therefore
	// free no-ops) when Config.Telemetry is nil.
	tripsC *telemetry.Counter
	failsC *telemetry.Counter
	stateG *telemetry.Gauge
}

// New returns a closed breaker named name.
func New(name string, cfg Config) *Breaker {
	b := &Breaker{
		name: name,
		cfg:  cfg,
		r:    rng.New(cfg.Seed).Split(hashName(name)),
	}
	if reg := cfg.Telemetry; reg != nil {
		b.tripsC = reg.Counter("grid_breaker_trips_total",
			"times the breaker opened", telemetry.L("name", name))
		b.failsC = reg.Counter("grid_breaker_failures_total",
			"failures the breaker observed", telemetry.L("name", name))
		b.stateG = reg.Gauge("grid_breaker_state",
			"breaker state: 0 closed, 1 open, 2 half-open", telemetry.L("name", name))
	}
	return b
}

// hashName folds a name into a split label (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Name returns the guarded resource's name.
func (b *Breaker) Name() string { return b.name }

// State returns the breaker's state at model time now, resolving an
// expired open window to HalfOpen.
func (b *Breaker) State(now simtime.Time) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(now)
}

func (b *Breaker) stateLocked(now simtime.Time) State {
	if b.state == Open && now >= b.until {
		return HalfOpen
	}
	return b.state
}

// Allow reports whether work may be sent to the resource at model time
// now. In the half-open state only one probe may be outstanding at a
// time; Allow returning true for a probe marks it in flight until the
// next Success or Failure observation — under concurrency, exactly one
// of any number of simultaneous callers wins the probe slot.
func (b *Breaker) Allow(now simtime.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(now) {
	case Closed:
		return true
	case Open:
		return false
	default: // HalfOpen
		if b.state == Open {
			// The window just expired; transition for real.
			b.state = HalfOpen
			b.probes = 0
			b.inflight = false
			b.stateG.Set(2)
		}
		if b.inflight {
			return false
		}
		b.inflight = true
		return true
	}
}

// Success records a successful unit of work finishing at model time now.
func (b *Breaker) Success(now simtime.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(now) {
	case Closed:
		b.fails = 0
	case HalfOpen:
		b.state = HalfOpen
		b.inflight = false
		b.probes++
		if b.probes >= b.cfg.probeSuccesses() {
			b.state = Closed
			b.fails = 0
			b.trips = 0
			b.probes = 0
			b.stateG.Set(0)
		}
	case Open:
		// A success from work admitted before the trip; it neither closes
		// nor extends the quarantine.
	}
}

// Failure records a failed unit of work at model time now. Tripping (from
// closed after Threshold consecutive failures, or from half-open on any
// probe failure) opens the breaker for an exponentially growing,
// jittered window.
func (b *Breaker) Failure(now simtime.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.totalFailures++
	b.failsC.Inc()
	switch b.stateLocked(now) {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.threshold() {
			b.trip(now)
		}
	case HalfOpen:
		b.state = HalfOpen
		b.inflight = false
		b.trip(now)
	case Open:
		// Stale failure from work admitted before the trip; the window is
		// already in force.
	}
}

// trip opens the breaker at now with the next backoff window.
func (b *Breaker) trip(now simtime.Time) {
	b.trips++
	b.totalTrips++
	b.tripsC.Inc()
	b.stateG.Set(1)
	window := faults.ExpBackoff(b.cfg.openBase(), b.trips, b.cfg.openMax())
	window = faults.Jitter(window, b.cfg.JitterFrac, b.r)
	b.state = Open
	b.until = now + window
	b.fails = 0
	b.probes = 0
	b.inflight = false
}

// RetryAfter returns how long from now until the breaker would next admit
// work — zero when it already would.
func (b *Breaker) RetryAfter(now simtime.Time) simtime.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stateLocked(now) == Open {
		return b.until - now
	}
	return 0
}

// Trips returns how many times the breaker has ever opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totalTrips
}

// Failures returns how many failures the breaker has ever observed.
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totalFailures
}

// Set manages one breaker per named resource, created lazily with a
// shared config and per-name seeded jitter streams. Safe for concurrent
// use.
type Set struct {
	cfg Config

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewSet returns an empty set.
func NewSet(cfg Config) *Set {
	return &Set{cfg: cfg, m: make(map[string]*Breaker)}
}

// Get returns the breaker for name, creating it closed on first use.
func (s *Set) Get(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = New(name, s.cfg)
		s.m[name] = b
	}
	return b
}

// Allow is Get(name).Allow(now).
func (s *Set) Allow(name string, now simtime.Time) bool { return s.Get(name).Allow(now) }

// Success is Get(name).Success(now).
func (s *Set) Success(name string, now simtime.Time) { s.Get(name).Success(now) }

// Failure is Get(name).Failure(now).
func (s *Set) Failure(name string, now simtime.Time) { s.Get(name).Failure(now) }

// Names returns the set's resource names in sorted order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// States returns every breaker's state at now, keyed by name.
func (s *Set) States(now simtime.Time) map[string]string {
	s.mu.Lock()
	breakers := make(map[string]*Breaker, len(s.m))
	for n, b := range s.m {
		breakers[n] = b
	}
	s.mu.Unlock()
	out := make(map[string]string, len(breakers))
	for n, b := range breakers {
		out[n] = b.State(now).String()
	}
	return out
}
