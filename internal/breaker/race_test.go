package breaker

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/simtime"
)

// trip drives b from closed to open with consecutive failures at now.
func trip(b *Breaker, now simtime.Time) {
	for i := 0; i < b.cfg.threshold(); i++ {
		b.Failure(now)
	}
}

// TestHalfOpenSingleProbeConcurrent pins the half-open contract under
// concurrency: when the open window expires, any number of simultaneous
// Allow callers may race for the probe slot, but exactly one wins it —
// every additional caller is refused until the probe resolves.
func TestHalfOpenSingleProbeConcurrent(t *testing.T) {
	b := New("dom", Config{Threshold: 3, OpenBase: 10, OpenMax: 10})
	trip(b, 0)
	if b.Allow(5) {
		t.Fatal("open breaker admitted work")
	}

	after := simtime.Time(11) // past the open window: half-open
	for round := 0; round < 50; round++ {
		const callers = 32
		var admitted atomic.Int64
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(callers)
		for i := 0; i < callers; i++ {
			go func() {
				defer done.Done()
				start.Wait()
				if b.Allow(after) {
					admitted.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("round %d: %d concurrent callers admitted, want exactly 1 probe", round, got)
		}
		// Fail the probe: the breaker re-opens with a larger window; move
		// time past it so the next round races for a fresh probe slot.
		b.Failure(after)
		if b.Allow(after) {
			t.Fatalf("round %d: re-opened breaker admitted work", round)
		}
		after = after + b.RetryAfter(after) + 1
	}
}

// TestHalfOpenProbeSuccessClosesOnceConcurrent checks that a successful
// probe closes the breaker even while other goroutines hammer Allow.
func TestHalfOpenProbeSuccessClosesOnceConcurrent(t *testing.T) {
	b := New("dom", Config{Threshold: 2, OpenBase: 8, OpenMax: 8})
	trip(b, 0)
	now := simtime.Time(9)
	if !b.Allow(now) {
		t.Fatal("half-open breaker refused the first probe")
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Allow(now) // all must lose: the probe slot is taken
		}()
	}
	wg.Wait()
	b.Success(now)
	if got := b.State(now); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow(now) {
		t.Fatal("closed breaker refused work")
	}
}

// TestBreakerStress interleaves every operation from many goroutines; the
// -race detector is the assertion, plus basic sanity on the counters.
func TestBreakerStress(t *testing.T) {
	s := NewSet(Config{Threshold: 3, OpenBase: 4, OpenMax: 64, JitterFrac: 0.2, Seed: 7})
	names := []string{"a", "b", "c"}
	const workers = 24
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := names[(w+i)%len(names)]
				now := simtime.Time(i)
				if s.Allow(n, now) {
					if (w+i)%3 == 0 {
						s.Failure(n, now)
					} else {
						s.Success(n, now)
					}
				} else {
					s.Get(n).RetryAfter(now)
				}
				_ = s.States(now)
				_ = s.Names()
			}
		}(w)
	}
	wg.Wait()
	for _, n := range names {
		b := s.Get(n)
		if b.Failures() < 0 || b.Trips() < 0 {
			t.Fatalf("breaker %s: negative stats", n)
		}
	}
}

// TestSequentialDeterminism pins that two identically-seeded breakers fed
// the same sequential observation stream land in identical states — the
// locking must not perturb the deterministic path the simulation uses.
func TestSequentialDeterminism(t *testing.T) {
	run := func() []simtime.Time {
		b := New("dom", Config{Threshold: 2, OpenBase: 16, OpenMax: 256, JitterFrac: 0.3, Seed: 42})
		var windows []simtime.Time
		now := simtime.Time(0)
		for i := 0; i < 8; i++ {
			trip(b, now)
			windows = append(windows, b.RetryAfter(now))
			now += b.RetryAfter(now) + 1
			b.Allow(now)   // take the probe
			b.Failure(now) // fail it: reopen with the next window
			windows = append(windows, b.RetryAfter(now))
			now += b.RetryAfter(now) + 1
			b.Allow(now)
			b.Success(now) // close again
		}
		return windows
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d: %d vs %d — jitter stream diverged", i, a[i], b[i])
		}
	}
}
