package breaker

import (
	"testing"

	"repro/internal/simtime"
)

// step drives one scripted observation against the breaker.
type step struct {
	at      simtime.Time
	op      string // "fail", "ok", "allow", "deny"
	want    State  // expected State(at) AFTER the op
	comment string
}

func run(t *testing.T, b *Breaker, steps []step) {
	t.Helper()
	for i, s := range steps {
		switch s.op {
		case "fail":
			b.Failure(s.at)
		case "ok":
			b.Success(s.at)
		case "allow":
			if !b.Allow(s.at) {
				t.Fatalf("step %d (%s): Allow(%d) = false, want true", i, s.comment, s.at)
			}
		case "deny":
			if b.Allow(s.at) {
				t.Fatalf("step %d (%s): Allow(%d) = true, want false", i, s.comment, s.at)
			}
		default:
			t.Fatalf("step %d: bad op %q", i, s.op)
		}
		if got := b.State(s.at); got != s.want {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.comment, got, s.want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := Config{Threshold: 3, OpenBase: 10, OpenMax: 100}

	t.Run("trips after threshold consecutive failures", func(t *testing.T) {
		b := New("d", cfg)
		run(t, b, []step{
			{0, "allow", Closed, "healthy"},
			{1, "fail", Closed, "1st failure"},
			{2, "fail", Closed, "2nd failure"},
			{3, "allow", Closed, "still below threshold"},
			{4, "fail", Open, "3rd failure trips"},
			{5, "deny", Open, "quarantined"},
			{13, "deny", Open, "window 10 not yet over"},
		})
		if b.Trips() != 1 || b.Failures() != 3 {
			t.Fatalf("trips=%d failures=%d", b.Trips(), b.Failures())
		}
	})

	t.Run("success resets the consecutive count", func(t *testing.T) {
		b := New("d", cfg)
		run(t, b, []step{
			{1, "fail", Closed, "1st"},
			{2, "fail", Closed, "2nd"},
			{3, "ok", Closed, "reset"},
			{4, "fail", Closed, "count restarts at 1"},
			{5, "fail", Closed, "2nd again"},
			{6, "fail", Open, "3rd after reset trips"},
		})
	})

	t.Run("half-open probe closes on success", func(t *testing.T) {
		b := New("d", cfg)
		run(t, b, []step{
			{0, "fail", Closed, ""},
			{1, "fail", Closed, ""},
			{2, "fail", Open, "tripped at 2, window 10"},
			{12, "allow", HalfOpen, "window over: one probe"},
			{12, "deny", HalfOpen, "second probe vetoed while first in flight"},
			{15, "ok", Closed, "probe succeeded"},
			{16, "allow", Closed, "healthy again"},
		})
		if b.RetryAfter(16) != 0 {
			t.Fatalf("RetryAfter after close = %d", b.RetryAfter(16))
		}
	})

	t.Run("half-open probe failure reopens with doubled window", func(t *testing.T) {
		b := New("d", cfg)
		run(t, b, []step{
			{0, "fail", Closed, ""},
			{1, "fail", Closed, ""},
			{2, "fail", Open, "trip 1: window 10 → until 12"},
			{12, "allow", HalfOpen, "probe"},
			{13, "fail", Open, "trip 2: window 20 → until 33"},
			{32, "deny", Open, "still quarantined"},
			{33, "allow", HalfOpen, "second window over"},
			{34, "fail", Open, "trip 3: window 40 → until 74"},
			{73, "deny", Open, ""},
			{74, "allow", HalfOpen, ""},
		})
		if got := b.Trips(); got != 3 {
			t.Fatalf("trips = %d, want 3", got)
		}
	})

	t.Run("window growth caps at OpenMax", func(t *testing.T) {
		b := New("d", Config{Threshold: 1, OpenBase: 10, OpenMax: 25})
		now := simtime.Time(0)
		for k := 0; k < 10; k++ {
			b.Failure(now)
			w := b.RetryAfter(now)
			if w <= 0 || w > 25 {
				t.Fatalf("trip %d: window %d outside (0,25]", k+1, w)
			}
			now += w
			if !b.Allow(now) {
				t.Fatalf("trip %d: probe vetoed after window", k+1)
			}
		}
	})

	t.Run("multiple probe successes required", func(t *testing.T) {
		b := New("d", Config{Threshold: 1, OpenBase: 10, ProbeSuccesses: 2})
		run(t, b, []step{
			{0, "fail", Open, "trips instantly at threshold 1"},
			{10, "allow", HalfOpen, "probe 1"},
			{11, "ok", HalfOpen, "one success is not enough"},
			{11, "allow", HalfOpen, "probe 2"},
			{12, "ok", Closed, "second success closes"},
		})
	})

	t.Run("trip count resets after closing", func(t *testing.T) {
		b := New("d", Config{Threshold: 1, OpenBase: 10, OpenMax: 1000})
		run(t, b, []step{
			{0, "fail", Open, "trip 1: until 10"},
			{10, "allow", HalfOpen, ""},
			{11, "fail", Open, "trip 2: window 20, until 31"},
			{31, "allow", HalfOpen, ""},
			{32, "ok", Closed, "healed: trips reset"},
			{40, "fail", Open, "fresh trip: window back to 10"},
			{49, "deny", Open, ""},
			{50, "allow", HalfOpen, "base window again, not 40"},
		})
	})
}

func TestBreakerDefaultsAndZeroConfig(t *testing.T) {
	b := New("d", Config{})
	for i := 0; i < 4; i++ {
		b.Failure(simtime.Time(i))
		if b.State(simtime.Time(i)) != Closed {
			t.Fatalf("tripped after %d failures, default threshold is 5", i+1)
		}
	}
	b.Failure(4)
	if b.State(4) != Open {
		t.Fatal("did not trip at the default threshold")
	}
	if w := b.RetryAfter(4); w != 64 {
		t.Fatalf("default open window = %d, want 64", w)
	}
}

func TestBreakerJitterDeterministicPerSeed(t *testing.T) {
	cfg := Config{Threshold: 1, OpenBase: 100, OpenMax: 10000, JitterFrac: 0.3, Seed: 7}
	windows := func() []simtime.Time {
		b := New("dom-0", cfg)
		var out []simtime.Time
		now := simtime.Time(0)
		for k := 0; k < 6; k++ {
			b.Failure(now)
			w := b.RetryAfter(now)
			out = append(out, w)
			now += w
			if !b.Allow(now) {
				t.Fatal("probe vetoed")
			}
		}
		return out
	}
	a, b := windows(), windows()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d: %d vs %d — jitter not deterministic", i, a[i], b[i])
		}
		base := simtime.Time(100 << uint(i))
		if base > 10000 {
			base = 10000
		}
		lo := base - simtime.Time(0.3*float64(base))
		hi := base + simtime.Time(0.3*float64(base))
		if a[i] < lo || a[i] > hi {
			t.Fatalf("window %d = %d outside [%d,%d]", i, a[i], lo, hi)
		}
	}
	// Different names draw different jitter streams.
	c1, c2 := New("dom-0", cfg), New("dom-1", cfg)
	c1.Failure(0)
	c2.Failure(0)
	if c1.RetryAfter(0) == c2.RetryAfter(0) {
		t.Log("note: dom-0 and dom-1 happened to draw equal jitter (allowed, but suspicious)")
	}
}

func TestSetLazyCreationAndIteration(t *testing.T) {
	s := NewSet(Config{Threshold: 1, OpenBase: 10})
	if !s.Allow("b-dom", 0) || !s.Allow("a-dom", 0) {
		t.Fatal("fresh breakers must allow")
	}
	s.Failure("b-dom", 1)
	if s.Allow("b-dom", 2) {
		t.Fatal("tripped breaker allowed work")
	}
	if s.Allow("a-dom", 2) != true {
		t.Fatal("independent breaker affected")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a-dom" || names[1] != "b-dom" {
		t.Fatalf("Names() = %v", names)
	}
	st := s.States(2)
	if st["a-dom"] != "closed" || st["b-dom"] != "open" {
		t.Fatalf("States() = %v", st)
	}
}
