// Batchpolicies compares the local batch-queue policies named in the
// paper's conclusions (§5) on one identical request stream: FCFS, LWF,
// EASY and conservative backfilling, gang scheduling, and FCFS with a
// share of advance reservations.
package main

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simtime"
)

const (
	nodes = 8
	jobs  = 300
)

func stream() []batch.Request {
	r := rng.New(99)
	out := make([]batch.Request, jobs)
	for i := range out {
		wall := simtime.Time(r.IntBetween(4, 40))
		run := simtime.Time(float64(wall) * r.Float64Between(0.5, 1.0))
		if run < 1 {
			run = 1
		}
		out[i] = batch.Request{
			ID:       fmt.Sprintf("j%03d", i),
			Nodes:    r.IntBetween(1, nodes/2),
			Walltime: wall,
			Runtime:  run,
		}
	}
	return out
}

func run(name string, mk func(e *sim.Engine) batch.System, reserveEvery int) {
	e := sim.New()
	sys := mk(e)
	for i, req := range stream() {
		req := req
		at := simtime.Time(i * 5)
		reserve := reserveEvery > 0 && i%reserveEvery == 0
		e.At(at, "submit", func() {
			if reserve {
				if c, ok := sys.(*batch.Cluster); ok && c.SubmitReservation(req, e.Now()+40) {
					return
				}
			}
			sys.Submit(req)
		})
	}
	e.Run()

	var wait, errs metrics.Series
	for _, o := range sys.Outcomes() {
		if o.Reserved {
			continue
		}
		wait.AddInt(int64(o.Wait()))
		errs.AddInt(int64(o.ForecastError()))
	}
	fmt.Printf("  %-28s mean-wait %6.1f  p95 %6.1f  max %6.1f  forecast-err %5.1f\n",
		name, wait.Mean(), wait.Percentile(95), wait.Max(), errs.Mean())
}

func main() {
	fmt.Printf("cluster of %d nodes, %d jobs, identical stream:\n", nodes, jobs)
	run("FCFS", func(e *sim.Engine) batch.System {
		return batch.NewCluster(e, nodes, batch.Policy{})
	}, 0)
	run("LWF", func(e *sim.Engine) batch.System {
		return batch.NewCluster(e, nodes, batch.Policy{Discipline: batch.LWF})
	}, 0)
	run("FCFS+easy-backfill", func(e *sim.Engine) batch.System {
		return batch.NewCluster(e, nodes, batch.Policy{Backfill: batch.EasyBackfill})
	}, 0)
	run("FCFS+conservative-backfill", func(e *sim.Engine) batch.System {
		return batch.NewCluster(e, nodes, batch.Policy{Backfill: batch.ConservativeBackfill})
	}, 0)
	run("FCFS+20%-reservations", func(e *sim.Engine) batch.System {
		return batch.NewCluster(e, nodes, batch.Policy{})
	}, 5)
	run("gang(quantum=5)", func(e *sim.Engine) batch.System {
		return batch.NewGang(e, nodes, 5)
	}, 0)
	fmt.Println("\npaper §5 claims to check: backfilling shrinks waits; advance")
	fmt.Println("reservations inflate them; LWF trades mean wait for a starvation tail.")
}
