// Federation demonstrates fault-tolerant federated metascheduling as a
// real multi-process deployment: the parent process runs the front-tier
// router (the code behind cmd/gridfront) and re-execs itself twice as
// journaled metascheduler shards (the code behind gridd -shard), wired
// over loopback HTTP with the versioned handoff wire protocol. Mid-run it
// SIGKILLs one shard: the router's heartbeats detect the death, the
// recovery ladder revokes the dead shard's queued jobs and reallocates
// them to the survivor, and when the shard restarts against its journal
// the rejoin handshake rules on every recovered job — so every accepted
// job reaches a terminal state exactly once, which the final audit checks
// against both shard ledgers.
//
// Run it with:
//
//	go run ./examples/federation
//
// The run is wall-clock concurrent, so log interleavings vary, but the
// final audit must always pass. See DESIGN.md §13 for the protocol and
// internal/federation/chaos_test.go for the adversarial version with
// partitions, duplicated frames and 20 kill-restart cycles.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/federation"
	"repro/internal/jobio"
	"repro/internal/journal"
	"repro/internal/metasched"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/workload"
)

const (
	roleEnv   = "FEDEX_ROLE"
	nameEnv   = "FEDEX_NAME"
	addrEnv   = "FEDEX_ADDR"
	routerEnv = "FEDEX_ROUTER"
	dirEnv    = "FEDEX_DIR"
)

func shardEnv() *resource.Environment {
	return workload.New(workload.Default(42)).Environment(2)
}

func main() {
	if os.Getenv(roleEnv) == "shard" {
		runShard()
		return
	}
	if err := runRouter(); err != nil {
		log.Fatalf("federation example: %v", err)
	}
}

// runShard is the re-exec'd child: a journaled service behind the
// federation member glue, exactly the wiring `gridd -shard s0 -join URL
// -lease 2s -journal-dir DIR` performs.
func runShard() {
	name := os.Getenv(nameEnv)
	logf := func(f string, a ...any) { log.Printf("[%s] "+f, append([]any{name}, a...)...) }

	jnl, recovered, err := journal.Open(journal.Options{
		Dir: os.Getenv(dirEnv), Fsync: journal.FsyncAlways, IsTerminal: service.Terminal,
	})
	if err != nil {
		log.Fatalf("[%s] journal: %v", name, err)
	}
	lease := federation.NewLease(2 * time.Second)
	member := federation.NewMember(federation.MemberConfig{
		Shard: name, Router: os.Getenv(routerEnv), Lease: lease, Logf: logf,
	})
	svc, err := service.New(service.Config{
		Env:           shardEnv(),
		Sched:         metasched.Config{Seed: 42},
		QueueCap:      64,
		Journal:       jnl,
		HoldRecovered: true, // recovered jobs wait for the router's join ruling
		Gate:          lease.Fresh,
		OnTerminal:    member.Terminal,
	})
	if err != nil {
		log.Fatalf("[%s] service: %v", name, err)
	}
	lease.OnRefresh(svc.Kick)
	if stats, err := svc.Restore(recovered); err != nil {
		log.Fatalf("[%s] restore: %v", name, err)
	} else if stats.Restored > 0 {
		logf("recovered %d journaled jobs; holding non-terminal ones for the join ruling", stats.Restored)
	}
	svc.Start()
	member.Bind(svc)
	member.Start()

	ln, err := net.Listen("tcp", os.Getenv(addrEnv))
	if err != nil {
		log.Fatalf("[%s] listen: %v", name, err)
	}
	go http.Serve(ln, member.Handler(svc.Handler()))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	<-sigc
	member.Close()
	_ = svc.Drain(context.Background())
	_ = jnl.Close()
	os.Exit(0)
}

// runRouter is the parent: spawn the shard fleet, route jobs at it, murder
// a shard mid-run, and audit exactly-once execution at the end.
func runRouter() error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "federation-example-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The router's own HTTP endpoint (join handshakes, terminal notices).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	routerURL := "http://" + ln.Addr().String()

	// Fixed shard ports so a restarted incarnation is reachable at the
	// same address the router already knows.
	addrs := map[string]string{"s0": freeAddr(), "s1": freeAddr()}
	spawn := func(name string) *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			roleEnv+"=shard", nameEnv+"="+name, addrEnv+"="+addrs[name],
			routerEnv+"="+routerURL, dirEnv+"="+dir+"/"+name)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("spawn %s: %v", name, err)
		}
		waitHealthy(name, addrs[name])
		return cmd
	}
	procs := map[string]*exec.Cmd{"s0": spawn("s0"), "s1": spawn("s1")}

	client := &http.Client{Timeout: 3 * time.Second}
	fleet := []federation.ShardClient{
		federation.NewHTTPShard("s0", "http://"+addrs["s0"], client),
		federation.NewHTTPShard("s1", "http://"+addrs["s1"], client),
	}
	jnl, recovered, err := journal.Open(journal.Options{
		Dir: dir + "/router", Fsync: journal.FsyncAlways, IsTerminal: service.Terminal,
	})
	if err != nil {
		return err
	}
	defer jnl.Close()
	router, err := federation.New(federation.Config{
		Shards:            fleet,
		Journal:           jnl,
		Seed:              42,
		HeartbeatInterval: 150 * time.Millisecond,
		DeadAfter:         4,
		RetryBudget:       3,
		RetryBase:         50 * time.Millisecond,
		Logf:              log.Printf,
	})
	if err != nil {
		return err
	}
	if _, err := router.Restore(recovered); err != nil {
		return err
	}
	router.Start()
	go http.Serve(ln, router.Handler())
	fmt.Printf("router up at %s; shards s0=%s s1=%s\n\n", routerURL, addrs["s0"], addrs["s1"])

	// Offer a first wave of jobs: consistent hashing spreads them across
	// both shards.
	gen := workload.New(workload.Default(42))
	accepted := []string{}
	for i, a := range gen.Flow(0, 10, 0) {
		wire := jobio.FromJob(a.Job)
		wire.Name = fmt.Sprintf("wave1-%d", i)
		wire.Deadline = 120
		if _, err := router.Submit(wire, "S1", 0); err != nil {
			fmt.Printf("submit %s: %v\n", wire.Name, err)
			continue
		}
		accepted = append(accepted, wire.Name)
	}
	fmt.Printf("wave 1: %d jobs accepted\n", len(accepted))
	time.Sleep(300 * time.Millisecond)

	// Murder s0 without ceremony. Heartbeats miss, the breaker opens, the
	// death sweep revokes s0's queued jobs and reallocates them to s1.
	fmt.Printf("\n>>> SIGKILL s0 <<<\n\n")
	_ = procs["s0"].Process.Kill()
	_, _ = procs["s0"].Process.Wait()

	// The survivor keeps admitting while s0 is down.
	for i, a := range gen.Flow(0, 5, 1) {
		wire := jobio.FromJob(a.Job)
		wire.Name = fmt.Sprintf("wave2-%d", i)
		wire.Deadline = 120
		if _, err := router.Submit(wire, "S1", 0); err != nil {
			fmt.Printf("submit %s: %v\n", wire.Name, err)
			continue
		}
		accepted = append(accepted, wire.Name)
	}
	fmt.Printf("wave 2 (s0 dead): %d total accepted\n", len(accepted))
	time.Sleep(1 * time.Second)

	// Restart s0 against the same journal: it recovers its ledger, holds
	// the non-terminal jobs, and the join handshake rules on each — resume
	// what it still owns, revoke what moved while it was down.
	fmt.Printf("\n>>> restarting s0 against its journal <<<\n\n")
	procs["s0"] = spawn("s0")

	deadline := time.Now().Add(60 * time.Second)
	for {
		done := 0
		for _, id := range accepted {
			if v, ok := router.Job(id); ok && routerTerminal(v.State) {
				done++
			}
		}
		if done == len(accepted) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d of %d jobs still non-terminal", len(accepted)-done, len(accepted))
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Audit: every accepted job is terminal on the router and appears as
	// an execution on EXACTLY one shard ledger.
	fmt.Printf("\naudit: every accepted job terminal exactly once\n")
	ledgers := map[string]map[string]service.Record{}
	for name, addr := range addrs {
		var recs []service.Record
		if err := getJSON(client, "http://"+addr+"/v1/jobs", &recs); err != nil {
			return fmt.Errorf("ledger %s: %w", name, err)
		}
		byID := make(map[string]service.Record, len(recs))
		for _, rec := range recs {
			byID[rec.ID] = rec
		}
		ledgers[name] = byID
	}
	sort.Strings(accepted)
	for _, id := range accepted {
		v, _ := router.Job(id)
		holders := []string{}
		for name, recs := range ledgers {
			if rec, ok := recs[id]; ok && rec.State != service.StateRevoked {
				holders = append(holders, fmt.Sprintf("%s=%s@epoch%d", name, rec.State, rec.Epoch))
			}
		}
		if len(holders) != 1 {
			return fmt.Errorf("job %s: %d executions (%v)", id, len(holders), holders)
		}
		fmt.Printf("  %-9s %-9s on %s\n", id, v.State, holders[0])
	}
	m := router.Metrics()
	fmt.Printf("\nrouter: accepted=%d completed=%d rejected=%d revocations=%d reallocated=%d\n",
		m.Accepted, m.Completed, m.Rejected, m.Revocations, m.Reallocated)

	for _, cmd := range procs {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_, _ = cmd.Process.Wait()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = router.Drain(ctx)
	router.Close()
	return nil
}

func routerTerminal(state string) bool {
	return state == service.StateCompleted || state == service.StateRejected
}

// freeAddr grabs a loopback port the shard child will re-listen on.
func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(name, addr string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Fatalf("shard %s never became healthy at %s", name, addr)
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
