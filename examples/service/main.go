// Service example: run the metascheduler as an embedded long-running
// service — overload a tiny admission queue so backpressure and priority
// shedding kick in, watch a circuit breaker quarantine a failing domain,
// and finish with a graceful drain that snapshots still-queued work.
//
// This uses the service layer in-process (manual mode, so the run is
// deterministic); cmd/gridd wraps the same layer in an HTTP daemon.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/breaker"
	"repro/internal/faults"
	"repro/internal/jobio"
	"repro/internal/journal"
	"repro/internal/metasched"
	"repro/internal/resource"
	"repro/internal/service"
)

func main() {
	// Two domains, four node tiers each.
	perfs := []float64{1.0, 0.5, 0.33, 0.27}
	var nodes []*resource.Node
	id := 0
	for d := 0; d < 2; d++ {
		for _, p := range perfs {
			nodes = append(nodes, resource.NewNode(resource.NodeID(id),
				fmt.Sprintf("n%d", id), p, p, fmt.Sprintf("dom-%d", d)))
			id++
		}
	}
	snapshot := filepath.Join(os.TempDir(), "service-example-drain.json")

	srv, err := service.New(service.Config{
		Env:          resource.NewEnvironment(nodes),
		QueueCap:     3, // tiny on purpose: we want overload behaviour
		SnapshotPath: snapshot,
		Breaker:      &breaker.Config{Threshold: 2, OpenBase: 500},
		Sched: metasched.Config{
			Seed: 1,
			// Every third activation loses a task mid-run, so the recovery
			// ladder and the breakers have something to do.
			Faults: faults.Config{TaskFailRate: 0.33, MaxRetries: 1, Seed: 9},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	wire := func(name string, deadline int64) jobio.Job {
		return jobio.Job{
			Name: name, Deadline: deadline,
			Tasks: []jobio.Task{
				{Name: "prep", BaseTime: 3, Volume: 30},
				{Name: "solve", BaseTime: 5, Volume: 50},
			},
			Edges: []jobio.Edge{{Name: "d", From: "prep", To: "solve", BaseTime: 2, Volume: 10}},
		}
	}

	// 1. Admission control: a deadline below the fastest-tier critical
	// path (8 ticks) is rejected before it ever reaches the engine.
	_, err = srv.Submit(wire("impossible", 6), "S1", 0)
	fmt.Printf("impossible deadline: %v\n", err)

	// 2. Backpressure and shedding: overfill the 3-slot queue.
	for i := 0; i < 3; i++ {
		if _, err := srv.Submit(wire(fmt.Sprintf("batch-%d", i), 60), "S1", 1); err != nil {
			log.Fatal(err)
		}
	}
	_, err = srv.Submit(wire("walk-in", 60), "S1", 1)
	var se *service.SubmitError
	if errors.As(err, &se) {
		fmt.Printf("walk-in at equal priority: %s (retry after %s)\n", se.Code, se.RetryAfter)
	}
	if _, err := srv.Submit(wire("urgent", 60), "S1", 9); err != nil {
		log.Fatal(err)
	}
	victim, _ := srv.Job("batch-2")
	fmt.Printf("urgent admitted by shedding %s: %s\n", victim.ID, victim.Reason)

	// 3. Run the queue; the urgent job goes first.
	srv.Process(-1)
	srv.Quiesce()
	for _, rec := range srv.Jobs() {
		fmt.Printf("  %-12s %-10s prio=%d domain=%-6s finish=%d %s\n",
			rec.ID, rec.State, rec.Priority, rec.Domain, rec.Finish, rec.Reason)
	}
	fmt.Printf("breakers: %v\n", srv.BreakerStates())

	// 4. Graceful drain with work still queued: it lands in the snapshot.
	if _, err := srv.Submit(wire("left-behind", 60), "S1", 0); err != nil {
		log.Fatal(err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	rec, _ := srv.Job("left-behind")
	fmt.Printf("after drain: %s is %s (%s)\n", rec.ID, rec.State, rec.Reason)
	f, err := os.Open(snapshot)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	saved, err := jobio.ReadJobs(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %s holds %d job(s): %s\n", snapshot, len(saved), saved[0].Name)

	m := srv.Metrics()
	fmt.Printf("totals: accepted=%d completed=%d rejected=%d shed=%d drained=%d\n",
		m.Accepted, m.Completed, m.Rejected, m.Shed, m.Drained)

	// 5. Crash safety: with a write-ahead journal, an accepted job
	// survives even a kill -9 — no drain, no snapshot, no goodbye. We
	// simulate the crash by abandoning a server mid-flight and recovering
	// its journal into a brand-new one. (cmd/gridd does exactly this on
	// startup when -journal-dir is set; see the README walkthrough for
	// the live kill -9 demo.)
	crashRecovery(nodes, wire)
}

// crashRecovery demonstrates the write-ahead journal: jobs accepted by a
// server that dies without draining are replayed into its successor.
func crashRecovery(nodes []*resource.Node, wire func(string, int64) jobio.Job) {
	dir, err := os.MkdirTemp("", "service-example-journal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	jnl, recovered, err := journal.Open(journal.Options{
		Dir: dir, IsTerminal: service.Terminal,
	})
	if err != nil {
		log.Fatal(err)
	}
	victim, err := service.New(service.Config{
		Env:     resource.NewEnvironment(nodes),
		Journal: jnl,
		Sched:   metasched.Config{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := victim.Restore(recovered); err != nil {
		log.Fatal(err)
	}
	// One job completes (its terminal state is journaled), one is still
	// queued when the "crash" hits.
	for _, name := range []string{"survivor-done", "survivor-queued"} {
		if _, err := victim.Submit(wire(name, 60), "S1", 0); err != nil {
			log.Fatal(err)
		}
	}
	victim.Process(1)
	victim.Quiesce()
	// CRASH. No Drain, no snapshot — the process is simply gone. Only the
	// journal survives.

	jnl2, recovered2, err := journal.Open(journal.Options{
		Dir: dir, IsTerminal: service.Terminal,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer jnl2.Close()
	heir, err := service.New(service.Config{
		Env:     resource.NewEnvironment(nodes),
		Journal: jnl2,
		Sched:   metasched.Config{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := heir.Restore(recovered2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter simulated crash: restored=%d requeued=%d terminal=%d\n",
		stats.Restored, stats.Requeued, stats.Terminal)
	// The completed job is remembered (and still guards duplicates)...
	if _, err := heir.Submit(wire("survivor-done", 60), "S1", 0); err != nil {
		var se *service.SubmitError
		errors.As(err, &se)
		fmt.Printf("resubmitting survivor-done: %s\n", se.Code)
	}
	// ...and the queued one runs to completion on the new server.
	heir.Process(-1)
	heir.Quiesce()
	for _, name := range []string{"survivor-done", "survivor-queued"} {
		rec, _ := heir.Job(name)
		fmt.Printf("  %-16s %s\n", rec.ID, rec.State)
	}
	if err := heir.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
}
