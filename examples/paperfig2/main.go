// Paperfig2 walks through the paper's §3 worked example end to end: the
// Fig. 2(a) job graph and estimation table, the four critical works, the
// strategy's alternative distributions (Fig. 2(b)), and the P4/P5-style
// collision with its economic resolution.
package main

import (
	"fmt"
	"log"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/estimate"
	"repro/internal/experiments"
	"repro/internal/resource"
)

func main() {
	job := experiments.Fig2Job()
	env := experiments.Fig2Env()

	// 1. The user estimation table of §3 derives from the type-1 times:
	//    T_ik = k × T_i1.
	tab := estimate.Derive(job)
	fmt.Println("estimation table (rows: tasks; columns: node types 1..4; V):")
	for _, t := range job.Tasks() {
		fmt.Printf("  %-3s", t.Name)
		for k := resource.Tier(1); k <= resource.NumTiers; k++ {
			fmt.Printf(" %3d", tab.Time(t.ID, k))
		}
		fmt.Printf("   V=%d\n", tab.Volume(t.ID))
	}

	// 2. The four critical works — the paper reports lengths 12, 11, 10, 9.
	fmt.Println("\ncritical works (type-1 estimates, transfers included):")
	for _, c := range job.AllChains(dag.WeightFunc{}) {
		names := ""
		for i, id := range c.Tasks {
			if i > 0 {
				names += "-"
			}
			names += job.Task(id).Name
		}
		fmt.Printf("  %-14s length %d\n", names, c.Length)
	}

	// 3. One full scheduling run against the Fig. 2 environment.
	sched, err := criticalworks.Build(env, criticalworks.EmptyCalendars(env), job, criticalworks.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistribution: CF=%d, window [%d,%d), deadline %d\n",
		sched.BareCF, sched.Start, sched.Finish, job.Deadline)
	for _, t := range job.Tasks() {
		p := sched.Placements[t.ID]
		fmt.Printf("  %s/%d %v\n", t.Name, p.Node+1, p.Window)
	}

	// 4. The paper's collision: on a two-node environment P4 and P5 both
	//    want the same node; the loser is reallocated.
	constrained := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "node-3", 0.33, 0.33, "example"),
		resource.NewNode(1, "node-4", 0.25, 0.25, "example"),
	})
	sched2, err := criticalworks.Build(constrained, criticalworks.EmptyCalendars(constrained),
		job.WithDeadline(80), criticalworks.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncollisions on the constrained two-node environment:")
	for _, c := range sched2.Collisions {
		actual := sched2.Placements[c.Task]
		fmt.Printf("  %s wanted %v on %s (held by %s); resolved to %s %v\n",
			job.Task(c.Task).Name, c.Window, constrained.Node(c.Node).Name,
			c.Holder.Task, constrained.Node(actual.Node).Name, actual.Window)
	}
}
