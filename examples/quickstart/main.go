// Quickstart: build a compound job, generate its scheduling strategy with
// the critical works method, and pick a distribution — the minimal
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/resource"
	"repro/internal/strategy"
)

func main() {
	// A small scientific workflow: preprocess, two parallel analyses, and
	// a merge. Each task carries a type-1 (fastest node) time estimate and
	// a computation volume; each edge a transfer time and data volume.
	b := dag.NewBuilder("demo").Deadline(60)
	b.Task("prep", 3, 30)
	b.Task("analyzeA", 5, 50)
	b.Task("analyzeB", 4, 40)
	b.Task("merge", 2, 20)
	b.Edge("inA", "prep", "analyzeA", 2, 10)
	b.Edge("inB", "prep", "analyzeB", 2, 10)
	b.Edge("outA", "analyzeA", "merge", 1, 5)
	b.Edge("outB", "analyzeB", "merge", 1, 5)
	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// A heterogeneous four-node environment: one node per estimation tier
	// of the paper's §3 table (performance 1, 0.5, 0.33, 0.25).
	env := resource.NewEnvironment([]*resource.Node{
		resource.NewNode(0, "fast", 1.0, 1.0, "site"),
		resource.NewNode(1, "mid", 0.5, 0.5, "site"),
		resource.NewNode(2, "slow", 0.33, 0.33, "site"),
		resource.NewNode(3, "slower", 0.25, 0.25, "site"),
	})

	// Generate the S1 strategy (fine-grain, active data replication): one
	// supporting schedule per feasible estimation level.
	gen := &strategy.Generator{Env: env}
	st, err := gen.Generate(job, strategy.S1, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strategy %s for %q: %d supporting schedules (levels failed: %v)\n",
		st.Type, job.Name, len(st.Distributions), st.FailedLevels)
	for _, d := range st.Distributions {
		fmt.Printf("  level %d: CF=%d finish=%d admissible=%v collisions=%d\n",
			d.Level, d.BareCF, d.Finish, d.Admissible, len(d.Schedule.Collisions))
	}

	// The metascheduler's default pick is the cheapest admissible
	// distribution; a QoS-first caller would take the fastest.
	cheap := st.CheapestAdmissible()
	fast := st.FastestAdmissible()
	if cheap == nil {
		log.Fatal("no admissible distribution — tighten the environment or loosen the deadline")
	}
	fmt.Printf("\ncheapest admissible (level %d, CF=%d):\n", cheap.Level, cheap.BareCF)
	for _, t := range job.Tasks() {
		p := cheap.Placements[t.ID]
		fmt.Printf("  %-8s -> %-6s %v\n", t.Name, env.Node(p.Node).Name, p.Window)
	}
	fmt.Printf("\nfastest admissible finishes at %d (costs %.0f vs %.0f — paying for speed)\n",
		fast.Finish, fast.Cost, cheap.Cost)
}
