// Jobflow demonstrates the full Fig. 1 hierarchy: a metascheduler
// distributing three user job flows — each with its own strategy family,
// like the Si/Sj/Sk flows of the figure — across domain job managers,
// under dynamic background load that evicts planned schedules and triggers
// supporting-schedule fallback and inter-domain reallocation.
package main

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/metasched"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func main() {
	cfg := workload.Default(42)
	cfg.DeadlineFactor = 1.8
	cfg.MeanInterarrival = 20
	gen := workload.New(cfg)
	env := gen.Environment(3)
	engine := sim.New()

	fmt.Printf("environment: %d nodes in %d domains\n", env.NumNodes(), len(env.Domains()))
	for _, dom := range env.Domains() {
		fmt.Printf("  %s: %d nodes\n", dom, len(env.ByDomain(dom)))
	}

	vo := metasched.NewVO(engine, env, metasched.Config{
		ExternalMeanGap: 10,
		ExternalLead:    6,
		ExternalDurLo:   8,
		ExternalDurHi:   20,
		ExternalUntil:   1500,
		Objective:       criticalworks.MinCost,
		Seed:            42,
	})

	// Three flows with distinct strategy families, as in Fig. 1.
	flows := []struct {
		typ strategy.Type
		n   int
	}{{strategy.S1, 25}, {strategy.S2, 25}, {strategy.S3, 25}}
	for stream, f := range flows {
		for _, a := range gen.Flow(stream, f.n, 0) {
			vo.Submit(a.Job, f.typ, a.At)
		}
	}
	end := engine.Run()

	// QoS report per flow.
	type agg struct {
		completed, rejected, fallbacks, reallocs int
		cost                                     float64
	}
	byType := map[strategy.Type]*agg{}
	for _, r := range vo.Results() {
		a := byType[r.Type]
		if a == nil {
			a = &agg{}
			byType[r.Type] = a
		}
		a.fallbacks += r.Fallbacks
		a.reallocs += r.Reallocations
		if r.State == metasched.StateCompleted {
			a.completed++
			a.cost += r.Cost
		} else {
			a.rejected++
		}
	}
	fmt.Printf("\nQoS report after %d ticks:\n", end)
	fmt.Printf("  %-5s %10s %9s %10s %9s %10s\n", "flow", "completed", "rejected", "fallbacks", "reallocs", "mean-cost")
	for _, f := range flows {
		a := byType[f.typ]
		mean := 0.0
		if a.completed > 0 {
			mean = a.cost / float64(a.completed)
		}
		fmt.Printf("  %-5s %10d %9d %10d %9d %10.1f\n",
			f.typ, a.completed, a.rejected, a.fallbacks, a.reallocs, mean)
	}

	load := vo.NodeLoad(simtime.Interval{Start: 0, End: end + 1})
	fmt.Println("\nnode load by performance group (jobs only, externals excluded):")
	for g, v := range load {
		fmt.Printf("  %-7v %5.1f%%\n", g, 100*v)
	}
}
